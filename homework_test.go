package homework

import (
	"strings"
	"testing"
	"time"
)

// TestPublicAPIQuickstart exercises the README quickstart end to end
// through the public facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AutoPermit = true
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	laptop, err := rt.AddHost("laptop", "02:aa:00:00:00:01", true, Pos{X: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.JoinHost(laptop); err != nil {
		t.Fatal(err)
	}
	if !laptop.Bound() || laptop.LeaseMask() != 32 {
		t.Fatalf("bound=%v mask=/%d", laptop.Bound(), laptop.LeaseMask())
	}

	laptop.AddApp(NewApp(AppWeb, "example.com", 50_000))
	for i := 0; i < 12; i++ {
		rt.Net.Step(0.25)
		if err := rt.Settle(); err != nil {
			t.Fatal(err)
		}
	}
	rt.PollMeasure()

	view := NewBandwidthView(rt.DB)
	out, err := view.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "laptop") || !strings.Contains(out, "http") {
		t.Errorf("render:\n%s", out)
	}
}

// TestPublicAPIRemoteDB exercises the UDP RPC through the facade.
func TestPublicAPIRemoteDB(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AutoPermit = true
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	cli, err := DialDB(rt.HwdbServer.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := cli.Exec("SELECT count(*) FROM Leases")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows = %v", res.Rows)
	}
}

// TestPublicAPIParsers covers the exported helpers.
func TestPublicAPIParsers(t *testing.T) {
	if _, err := ParseMAC("02:aa:00:00:00:01"); err != nil {
		t.Error(err)
	}
	if _, err := ParseIP4("192.168.1.1"); err != nil {
		t.Error(err)
	}
	clk := NewSimulatedClock()
	before := clk.Now()
	clk.Advance(time.Minute)
	if clk.Now().Sub(before) != time.Minute {
		t.Error("simulated clock wrong")
	}
}
