package homework

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestBenchRecordParses gates the committed perf trajectory: BENCH_8.json
// (written by `make bench` via cmd/benchjson) must parse and carry real
// measurements for the headline benchmarks — fleet step scaling, settle
// latency, live telemetry — plus the traced/untraced overhead pair, so a
// PR cannot silently ship a stale or hand-edited record.
func TestBenchRecordParses(t *testing.T) {
	data, err := os.ReadFile("BENCH_8.json")
	if err != nil {
		t.Fatalf("BENCH_8.json missing (run `make bench`): %v", err)
	}
	var doc struct {
		Benchmarks []struct {
			Name       string             `json:"name"`
			Iterations int64              `json:"iterations"`
			Metrics    map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("BENCH_8.json does not parse: %v", err)
	}
	headlines := []string{
		"BenchmarkFleetStep",
		"BenchmarkSettleLatency",
		"BenchmarkFleetTelemetry",
		"BenchmarkTraceOverhead",
	}
	for _, headline := range headlines {
		found := 0
		for _, b := range doc.Benchmarks {
			if b.Name != headline && !strings.HasPrefix(b.Name, headline+"/") &&
				!strings.HasPrefix(b.Name, headline+"-") {
				continue
			}
			if b.Iterations <= 0 {
				t.Errorf("%s: iterations = %d", b.Name, b.Iterations)
			}
			if b.Metrics["ns/op"] <= 0 {
				t.Errorf("%s: ns/op = %v", b.Name, b.Metrics["ns/op"])
			}
			found++
		}
		if found == 0 {
			t.Errorf("BENCH_8.json has no %s results", headline)
		}
	}

	// The overhead pair must both be present so the ≤5% tracing budget is
	// checkable from the committed record alone.
	for _, mode := range []string{"traced", "untraced"} {
		found := false
		for _, b := range doc.Benchmarks {
			if strings.Contains(b.Name, "BenchmarkTraceOverhead/"+mode) {
				found = b.Metrics["home-steps/s"] > 0
			}
		}
		if !found {
			t.Errorf("BENCH_8.json lacks a home-steps/s figure for BenchmarkTraceOverhead/%s", mode)
		}
	}
}
