package homework

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestBenchRecordParses gates the committed perf trajectory: BENCH_10.json
// (written by `make bench` via cmd/benchjson) must parse and carry real
// measurements for the headline benchmarks — fleet step scaling across
// all three control transports (including the shardrpc remote-shard
// deployment), settle latency, live telemetry — plus the traced/untraced
// and flight-recorder attached/detached overhead pairs, so a PR cannot
// silently ship a stale or hand-edited record.
func TestBenchRecordParses(t *testing.T) {
	data, err := os.ReadFile("BENCH_10.json")
	if err != nil {
		t.Fatalf("BENCH_10.json missing (run `make bench`): %v", err)
	}
	var doc struct {
		Benchmarks []struct {
			Name       string             `json:"name"`
			Iterations int64              `json:"iterations"`
			Metrics    map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("BENCH_10.json does not parse: %v", err)
	}
	headlines := []string{
		"BenchmarkFleetStep",
		"BenchmarkSettleLatency",
		"BenchmarkFleetTelemetry",
		"BenchmarkTraceOverhead",
		"BenchmarkFlightOverhead",
	}
	for _, headline := range headlines {
		found := 0
		for _, b := range doc.Benchmarks {
			if b.Name != headline && !strings.HasPrefix(b.Name, headline+"/") &&
				!strings.HasPrefix(b.Name, headline+"-") {
				continue
			}
			if b.Iterations <= 0 {
				t.Errorf("%s: iterations = %d", b.Name, b.Iterations)
			}
			if b.Metrics["ns/op"] <= 0 {
				t.Errorf("%s: ns/op = %v", b.Name, b.Metrics["ns/op"])
			}
			found++
		}
		if found == 0 {
			t.Errorf("BENCH_10.json has no %s results", headline)
		}
	}

	// The fleet-step transport matrix must include the remote-shard
	// deployment: the in-process-vs-loopback-TCP control plane gap is
	// part of the trajectory.
	remote := false
	for _, b := range doc.Benchmarks {
		if strings.Contains(b.Name, "BenchmarkFleetStep/transport=shardrpc/") {
			remote = b.Metrics["home-steps/s"] > 0
		}
	}
	if !remote {
		t.Error("BENCH_10.json lacks a home-steps/s figure for BenchmarkFleetStep/transport=shardrpc")
	}

	// The overhead pairs must both be present so the ≤5% tracing and
	// flight-recorder budgets are checkable from the committed record
	// alone.
	pairs := map[string][]string{
		"BenchmarkTraceOverhead":  {"traced", "untraced"},
		"BenchmarkFlightOverhead": {"attached", "detached"},
	}
	for bench, modes := range pairs {
		for _, mode := range modes {
			found := false
			for _, b := range doc.Benchmarks {
				if strings.Contains(b.Name, bench+"/"+mode) {
					found = b.Metrics["home-steps/s"] > 0
				}
			}
			if !found {
				t.Errorf("BENCH_10.json lacks a home-steps/s figure for %s/%s", bench, mode)
			}
		}
	}
}
