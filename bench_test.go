// Benchmarks regenerating every figure of the paper (F1–F5) and measuring
// the quantitative behaviour of each subsystem (E1–E7), plus the design
// ablations DESIGN.md calls out (A1–A3). EXPERIMENTS.md records the
// paper-vs-measured comparison for each.
package homework

import (
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/figures"
	"repro/internal/fleet"
	"repro/internal/fleet/engine"
	"repro/internal/fleet/shardrpc"
	"repro/internal/flight"
	"repro/internal/hwdb"
	"repro/internal/netsim"
	"repro/internal/nox"
	"repro/internal/oftransport"
	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/telemetry"
)

// ---------------------------------------------------------------- figures

func benchFigure(b *testing.B, gen func() (string, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := gen()
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure1BandwidthView regenerates the per-device per-protocol
// bandwidth display end-to-end (6 devices, mixed traffic, 6 s window).
func BenchmarkFigure1BandwidthView(b *testing.B) { benchFigure(b, figures.Figure1) }

// BenchmarkFigure2Artifact regenerates the artifact's three modes.
func BenchmarkFigure2Artifact(b *testing.B) { benchFigure(b, figures.Figure2) }

// BenchmarkFigure3DHCPControl regenerates the admission interface flow.
func BenchmarkFigure3DHCPControl(b *testing.B) { benchFigure(b, figures.Figure3) }

// BenchmarkFigure4PolicyUSB regenerates the USB policy interface flow.
func BenchmarkFigure4PolicyUSB(b *testing.B) {
	benchFigure(b, func() (string, error) {
		dir, err := os.MkdirTemp("", "hw-usb-*")
		if err != nil {
			return "", err
		}
		defer os.RemoveAll(dir)
		return figures.Figure4(dir)
	})
}

// BenchmarkFigure5Architecture brings the whole platform up and verifies
// every component live.
func BenchmarkFigure5Architecture(b *testing.B) { benchFigure(b, figures.Figure5) }

// ------------------------------------------------------------- E1: hwdb

// BenchmarkE1HwdbInsert measures single-writer insert throughput into the
// Flows ring (the companion IM'11 paper's headline metric).
func BenchmarkE1HwdbInsert(b *testing.B) {
	db := hwdb.NewHomework(clock.Real{}, hwdb.DefaultRingSize)
	mac := packet.MAC{2}
	ft := packet.FiveTuple{Proto: packet.ProtoTCP, DstPort: 443}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.InsertFlow(mac, ft, 1, 1500); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1HwdbInsertParallel measures multi-writer contention.
func BenchmarkE1HwdbInsertParallel(b *testing.B) {
	db := hwdb.NewHomework(clock.Real{}, hwdb.DefaultRingSize)
	ft := packet.FiveTuple{Proto: packet.ProtoTCP, DstPort: 443}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		mac := packet.MAC{2, 1}
		for pb.Next() {
			if err := db.InsertFlow(mac, ft, 1, 1500); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ----------------------------------------------------------- E2: queries

// BenchmarkE2HwdbQuery sweeps the RANGE window of the Figure-1 GROUP BY
// query over a busy Flows table.
func BenchmarkE2HwdbQuery(b *testing.B) {
	for _, window := range []int{1, 10, 60} {
		b.Run(fmt.Sprintf("range-%ds", window), func(b *testing.B) {
			clk := clock.NewSimulated()
			db := hwdb.NewHomework(clk, hwdb.DefaultRingSize)
			// One minute of history: 6 devices x 5 flows x 100 samples.
			for s := 0; s < 100; s++ {
				for d := 0; d < 6; d++ {
					for f := 0; f < 5; f++ {
						_ = db.InsertFlow(packet.MAC{2, byte(d)},
							packet.FiveTuple{Proto: packet.ProtoTCP, DstPort: uint16(80 + f)},
							10, 15000)
					}
				}
				clk.Advance(600 * time.Millisecond)
			}
			sel, err := hwdb.Parse(fmt.Sprintf(
				"SELECT mac, dport, sum(bytes) FROM Flows [RANGE %d SECONDS] GROUP BY mac, dport", window))
			if err != nil {
				b.Fatal(err)
			}
			stmt := sel.(*hwdb.SelectStmt)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Select(stmt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ------------------------------------------------- E3: control-path RTT

// BenchmarkE3ControlPath measures the packet-in -> controller -> flow-mod
// -> barrier round trip — the reactive flow-setup cost every new home flow
// pays — over both control transports: the loopback-TCP wire path and the
// in-process channel path that skips serialization entirely.
func BenchmarkE3ControlPath(b *testing.B) {
	for _, kind := range []core.TransportKind{core.TransportTCP, core.TransportInProcess} {
		b.Run(fmt.Sprintf("transport=%s", kind), func(b *testing.B) {
			benchControlPath(b, kind)
		})
	}
}

func benchControlPath(b *testing.B, kind core.TransportKind) {
	ctl := nox.NewController()
	done := make(chan struct{}, 64)
	ctl.OnPacketIn(func(ev *nox.PacketInEvent) nox.Disposition {
		m := openflow.MatchFromFrame(ev.Decoded, ev.Msg.InPort)
		_ = ev.Switch.InstallFlow(m, 10, 1, 0, []openflow.Action{&openflow.ActionOutput{Port: 2}})
		done <- struct{}{}
		return nox.Stop
	})
	defer ctl.Close()
	joined := make(chan *nox.Switch, 1)
	ctl.OnJoin(func(ev *nox.JoinEvent) { joined <- ev.Switch })

	dp := datapath.New(datapath.Config{ID: 1})
	_ = dp.AddPort(&datapath.Port{No: 1})
	_ = dp.AddPort(&datapath.Port{No: 2})
	switch kind {
	case core.TransportTCP:
		if err := ctl.ListenAndServe("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		go func() { _ = dp.ConnectTCP(ctl.Addr()) }()
	default:
		ctlEnd, dpEnd := oftransport.Pair(0)
		go func() { _ = ctl.ServeTransport(ctlEnd) }()
		go func() { _ = dp.ConnectTransport(dpEnd) }()
	}
	defer dp.Stop()
	sw := <-joined

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Unique flows so every packet misses and punts.
		f := packet.NewTCPFrame(packet.MAC{2, 0, 0, 0, byte(i >> 8), byte(i)}, packet.MAC{3},
			packet.IP4{10, 0, byte(i >> 16), byte(i >> 8)}, packet.IP4{10, 1, 0, 1},
			uint16(i), 80, packet.TCPSyn, 0, nil).Bytes()
		dp.Receive(1, f)
		<-done
		if err := sw.Barrier(); err != nil {
			b.Fatal(err)
		}
	}
}

// ----------------------------------------------------- E4: datapath rate

// BenchmarkE4Forwarding measures per-packet forwarding cost as the flow
// table grows, exact-match vs wildcard-only tables: the datapath side of
// the paper's "every flow visible" design.
func BenchmarkE4Forwarding(b *testing.B) {
	for _, n := range []int{10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("exact-%d", n), func(b *testing.B) {
			benchForwarding(b, n, true)
		})
	}
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("wildcard-%d", n), func(b *testing.B) {
			benchForwarding(b, n, false)
		})
	}
}

func benchForwarding(b *testing.B, tableSize int, exact bool) {
	dp := datapath.New(datapath.Config{ID: 1})
	_ = dp.AddPort(&datapath.Port{No: 1})
	_ = dp.AddPort(&datapath.Port{No: 2})
	for i := 0; i < tableSize; i++ {
		var m openflow.Match
		if exact {
			f := packet.NewTCPFrame(
				packet.MAC{2, 0, 0, byte(i >> 8), byte(i), 1}, packet.MAC{3},
				packet.IP4{10, 0, byte(i >> 8), byte(i)}, packet.IP4{10, 1, 0, 1},
				uint16(1024+i%40000), 80, packet.TCPAck, 0, nil)
			var d packet.Decoded
			_ = d.Decode(f.Bytes())
			m = openflow.MatchFromFrame(&d, 1)
		} else {
			m = openflow.MatchAll()
			m.Wildcards &^= openflow.FWDLType | openflow.FWNWProto | openflow.FWTPDst
			m.DLType = packet.EtherTypeIPv4
			m.NWProto = uint8(packet.ProtoTCP)
			m.TPDst = uint16(10000 + i) // distinct, never matches the probe
		}
		_ = dp.Table().Add(&datapath.FlowEntry{
			Match: m, Priority: 10,
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
		}, false)
	}
	// The probe packet matches the last-installed exact rule, or (for the
	// wildcard table) a final catch-all appended below.
	probe := packet.NewTCPFrame(
		packet.MAC{2, 0, 0, byte((tableSize - 1) >> 8), byte(tableSize - 1), 1}, packet.MAC{3},
		packet.IP4{10, 0, byte((tableSize - 1) >> 8), byte(tableSize - 1)}, packet.IP4{10, 1, 0, 1},
		uint16(1024+(tableSize-1)%40000), 80, packet.TCPAck, 0, make([]byte, 1000)).Bytes()
	if !exact {
		last := openflow.MatchAll()
		last.Wildcards &^= openflow.FWDLType
		last.DLType = packet.EtherTypeIPv4
		_ = dp.Table().Add(&datapath.FlowEntry{Match: last, Priority: 1,
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}, false)
	}
	b.SetBytes(int64(len(probe)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dp.Receive(1, probe)
	}
}

// --------------------------------------------------- E5: DHCP handshake

// BenchmarkE5DHCPTransaction measures a full DISCOVER->OFFER->REQUEST->ACK
// handshake through datapath, punt rules and the DHCP module.
func BenchmarkE5DHCPTransaction(b *testing.B) {
	rt := startBenchRouter(b, nil)
	h, err := rt.AddHost("bench-host", "02:aa:00:00:00:01", false, netsim.Pos{})
	if err != nil {
		b.Fatal(err)
	}
	if err := rt.JoinHost(h); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Release()
		if err := rt.Settle(); err != nil {
			b.Fatal(err)
		}
		h.StartDHCP()
		for !h.Bound() {
			if err := rt.Settle(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ------------------------------------------------------ E6: DNS proxy

// BenchmarkE6DNSProxy measures resolution through the proxy: the permit
// path (forwarded upstream and relayed back) vs the denied path (answered
// NXDOMAIN locally).
func BenchmarkE6DNSProxy(b *testing.B) {
	b.Run("permit", func(b *testing.B) { benchDNS(b, false) })
	b.Run("denied", func(b *testing.B) { benchDNS(b, true) })
}

func benchDNS(b *testing.B, denied bool) {
	rt := startBenchRouter(b, nil)
	h, err := rt.AddHost("resolver", "02:aa:00:00:00:01", false, netsim.Pos{})
	if err != nil {
		b.Fatal(err)
	}
	if err := rt.JoinHost(h); err != nil {
		b.Fatal(err)
	}
	if denied {
		// A policy that only allows an unrelated site: every query below
		// is refused by the proxy without an upstream round trip.
		err := rt.Policy.Install(&Policy{
			Name: "lockdown", Devices: []string{h.MAC.String()},
			AllowedSites: []string{"allowed.example"},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	// Distinct names so the host's stub cache never short-circuits.
	for i := 0; i < 4096; i++ {
		rt.Upstream.AddZone(fmt.Sprintf("bench-%d.example", i), packet.IP4{93, 184, 0, byte(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := make(chan bool, 1)
		h.Resolve(fmt.Sprintf("bench-%d.example", i%4096), func(ip packet.IP4, ok bool) {
			got <- ok
		})
		if err := rt.Settle(); err != nil {
			b.Fatal(err)
		}
		select {
		case ok := <-got:
			if ok == denied {
				b.Fatalf("resolution ok=%v with denied=%v", ok, denied)
			}
		case <-time.After(5 * time.Second):
			b.Fatal("no DNS answer")
		}
	}
}

// ----------------------------------------------------- E7: flow setup

// BenchmarkE7FlowSetup measures end-to-end reactive flow setup: first
// packet of a brand-new flow punted, policy-checked, rule installed,
// packet released.
func BenchmarkE7FlowSetup(b *testing.B) {
	rt := startBenchRouter(b, nil)
	h, err := rt.AddHost("client", "02:aa:00:00:00:01", false, netsim.Pos{})
	if err != nil {
		b.Fatal(err)
	}
	if err := rt.JoinHost(h); err != nil {
		b.Fatal(err)
	}
	// Warm ARP toward the gateway with one flow.
	warm := netsim.NewApp(netsim.AppIoT, "93.184.216.34", 64)
	h.AddApp(warm)
	rt.Net.Step(0)
	rt.Net.Step(0.1)
	if err := rt.Settle(); err != nil {
		b.Fatal(err)
	}

	admitted0, _ := rt.Forwarder.Counters()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A brand-new five-tuple each iteration.
		frame := packet.NewTCPFrame(h.MAC, rt.Config.RouterMAC,
			h.IP(), packet.IP4{93, 184, 216, 34},
			uint16(1024+i%60000), uint16(1+i/60000), packet.TCPSyn, 0, nil)
		h.SendRaw(frame.Bytes())
		if err := rt.Settle(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	admitted, _ := rt.Forwarder.Counters()
	if admitted-admitted0 < uint64(b.N) {
		b.Fatalf("only %d of %d flows admitted", admitted-admitted0, b.N)
	}
}

// --------------------------------------------------------- A1: ablation

// BenchmarkA1LeaseMask compares flow visibility under the paper's /32
// leases against conventional /24 + hardware switching: the fraction of
// intra-home traffic the router can measure.
func BenchmarkA1LeaseMask(b *testing.B) {
	b.Run("hostroutes-32", func(b *testing.B) { benchVisibility(b, true) })
	b.Run("conventional-24", func(b *testing.B) { benchVisibility(b, false) })
}

func benchVisibility(b *testing.B, hostRoutes bool) {
	for i := 0; i < b.N; i++ {
		rt := startBenchRouter(b, func(c *core.Config) {
			c.HostRoutes = hostRoutes
			c.DirectL2 = !hostRoutes
		})
		a, err := rt.AddHost("a", "02:aa:00:00:00:01", false, netsim.Pos{})
		if err != nil {
			b.Fatal(err)
		}
		_ = rt.JoinHost(a)
		peer, err := rt.AddHost("b", "02:aa:00:00:00:02", false, netsim.Pos{})
		if err != nil {
			b.Fatal(err)
		}
		_ = rt.JoinHost(peer)
		app := netsim.NewApp(netsim.AppIoT, peer.IP().String(), 8000)
		a.AddApp(app)
		for s := 0; s < 8; s++ {
			rt.Net.Step(0.25)
			if err := rt.Settle(); err != nil {
				b.Fatal(err)
			}
		}
		rt.PollMeasure()
		res, err := rt.DB.Query(fmt.Sprintf("SELECT count(*) FROM Flows WHERE daddr = %s", peer.IP()))
		if err != nil {
			b.Fatal(err)
		}
		visible := 0.0
		if res.Rows[0][0].Int > 0 {
			visible = 1.0
		}
		b.ReportMetric(visible, "visible-flows")
		rt.Stop()
	}
}

// --------------------------------------------------------- A2: ablation

// BenchmarkA2PuntPolicy compares reactive per-flow rules (full
// visibility, one punt per flow) against a proactive catch-all rule (no
// punts, but also no per-flow measurement).
func BenchmarkA2PuntPolicy(b *testing.B) {
	b.Run("reactive-per-flow", func(b *testing.B) { benchPunt(b, true) })
	b.Run("proactive-catchall", func(b *testing.B) { benchPunt(b, false) })
}

func benchPunt(b *testing.B, reactive bool) {
	dp := datapath.New(datapath.Config{ID: 1})
	_ = dp.AddPort(&datapath.Port{No: 1})
	_ = dp.AddPort(&datapath.Port{No: 2})
	if !reactive {
		m := openflow.MatchAll()
		_ = dp.Table().Add(&datapath.FlowEntry{Match: m, Priority: 1,
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}, false)
	}
	frames := make([][]byte, 256)
	for i := range frames {
		frames[i] = packet.NewTCPFrame(
			packet.MAC{2, 0, 0, 0, byte(i), 1}, packet.MAC{3},
			packet.IP4{10, 0, 0, byte(i)}, packet.IP4{10, 1, 0, 1},
			uint16(1024+i), 80, packet.TCPAck, 0, make([]byte, 400)).Bytes()
	}
	if reactive {
		// Pre-install the exact rule for each flow, as the forwarder
		// would after one punt; the steady state is measured here.
		for i, f := range frames {
			var d packet.Decoded
			_ = d.Decode(f)
			_ = dp.Table().Add(&datapath.FlowEntry{
				Match: openflow.MatchFromFrame(&d, 1), Priority: 10,
				Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
			}, false)
			_ = i
		}
	}
	b.SetBytes(int64(len(frames[0])))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dp.Receive(1, frames[i%len(frames)])
	}
	b.StopTimer()
	lookups, matched := dp.Table().Counters()
	b.ReportMetric(float64(matched)/float64(lookups), "match-rate")
}

// --------------------------------------------------------- A3: ablation

// BenchmarkA3RingSizing measures hwdb's loss-free retention window as the
// fixed ring shrinks: the trade the "ephemeral fixed-memory" design makes.
func BenchmarkA3RingSizing(b *testing.B) {
	for _, ring := range []int{1024, 8192, 65536} {
		b.Run(fmt.Sprintf("ring-%d", ring), func(b *testing.B) {
			db := hwdb.NewHomework(clock.Real{}, ring)
			ft := packet.FiveTuple{Proto: packet.ProtoTCP, DstPort: 443}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = db.InsertFlow(packet.MAC{2}, ft, 1, 1500)
			}
			b.StopTimer()
			tbl, _ := db.Table(hwdb.TableFlows)
			inserts, dropped := tbl.Stats()
			b.ReportMetric(float64(dropped)/float64(inserts), "drop-rate")
		})
	}
}

// ------------------------------------------------------------ F: fleet

// BenchmarkFleetStep measures one fleet tick — every home's traffic
// emitted, control plane settled, measurement polled — as the fleet
// grows: the controller-scaling trajectory the ROADMAP tracks. Each home
// runs two hosts with a web workload. Both control transports are
// reported so the in-process win over the loopback-TCP baseline lands in
// the trajectory (the TCP framing cost is per home, so the gap widens
// with fleet size). The unqualified names run the default shard count
// (one engine per core, capped at 8 — one on this box) for comparability
// with the pre-split trajectory; the shards=4 variants exercise the
// coordinator fan-out and federated telemetry across four engines. The
// transport=shardrpc variants run the same four-engine fan-out with the
// control plane itself over loopback TCP — coordinator to worker via the
// HWSH/1 shard protocol, telemetry riding the SYNC batches — pricing the
// full cross-process fleet deployment against the in-process split.
func BenchmarkFleetStep(b *testing.B) {
	for _, kind := range []core.TransportKind{core.TransportInProcess, core.TransportTCP} {
		for _, homes := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("transport=%s/homes=%d", kind, homes), func(b *testing.B) {
				benchFleetStep(b, homes, 0, kind)
			})
		}
	}
	for _, homes := range []int{8, 64} {
		b.Run(fmt.Sprintf("transport=inprocess/shards=4/homes=%d", homes), func(b *testing.B) {
			benchFleetStep(b, homes, 4, core.TransportInProcess)
		})
	}
	for _, homes := range []int{8, 64} {
		b.Run(fmt.Sprintf("transport=shardrpc/shards=4/homes=%d", homes), func(b *testing.B) {
			benchFleetStepRemote(b, homes, 4)
		})
	}
}

func benchFleetStep(b *testing.B, homes, shards int, kind core.TransportKind) {
	benchFleetStepCfg(b, homes, shards, kind, false)
}

// benchFleetStepRemote is the same fleet-tick workload with every shard a
// separate worker engine behind a shardrpc server on loopback, driven by
// the remote shard client. Homes are populated worker-side via OnAssign
// (the coordinator holds no handles across the wire) with the identical
// two-host churned-web mix the in-process bench uses, so home-steps/s is
// directly comparable across transports.
func benchFleetStepRemote(b *testing.B, homes, shards int) {
	onAssign := func(h *fleet.Home) error {
		for i := 0; i < 2; i++ {
			host, err := h.Join("", false, netsim.Pos{})
			if err != nil {
				return err
			}
			app := netsim.NewApp(netsim.AppWeb, "203.0.113.10", 40_000)
			app.SetFlowChurn(0.75)
			host.AddApp(app)
		}
		return nil
	}
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		wclk := clock.NewSimulated()
		eng := engine.New(engine.Config{Index: i, Clock: wclk, Seed: 5, OnAssign: onAssign})
		b.Cleanup(eng.Close)
		srv := shardrpc.NewServer(shardrpc.Config{Backend: eng, Hub: eng.Hub(), Clock: wclk})
		if err := srv.Serve("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(srv.Close)
		addrs[i] = srv.Addr()
	}
	f := fleet.New(fleet.Config{
		WorkerAddrs: addrs,
		Clock:       clock.NewSimulated(),
		Seed:        5,
		StepTimeout: 30 * time.Second,
	})
	b.Cleanup(f.Stop)
	if _, err := f.AddHomes(homes); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := f.Step(0.25); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Step(0.25); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(homes)*float64(b.N)/b.Elapsed().Seconds(), "home-steps/s")
	if f.Aggregate(); f.Totals().Flows == 0 {
		b.Fatal("fleet stepped but no flows were folded")
	}
}

// BenchmarkTraceOverhead prices the always-on punt-lifecycle tracing: the
// identical 64-home in-process FleetStep workload with tracing enabled
// (the shipped default) and disabled (core.Config.DisableTrace). Compare
// the two home-steps/s figures; the acceptance bar is a ≤5% gap. Tracing
// is a handful of atomic stores per punt against a control path that
// decodes, policy-checks and installs a flow, so the gap sits in the
// noise floor of the step benchmark.
func BenchmarkTraceOverhead(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"traced", false},
		{"untraced", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			benchFleetStepCfg(b, 64, 0, core.TransportInProcess, mode.disable)
		})
	}
}

// BenchmarkFlightOverhead prices the flight recorder: the identical
// 64-home in-process FleetStep workload with the recorder attached to the
// federated hub + FleetStats view (the hwfleetd default) and detached.
// The insert hot path is untouched either way (the recorder consumes
// Deltas on the hub's drain pass), so the attached cost is the per-tick
// append of drained rows into retention windows plus compaction; the
// acceptance bar is a ≤5% gap in home-steps/s.
func BenchmarkFlightOverhead(b *testing.B) {
	for _, mode := range []struct {
		name   string
		attach bool
	}{
		{"attached", true},
		{"detached", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			benchFleetStepFlight(b, 64, 0, core.TransportInProcess, false, mode.attach)
		})
	}
}

func benchFleetStepCfg(b *testing.B, homes, shards int, kind core.TransportKind, disableTrace bool) {
	benchFleetStepFlight(b, homes, shards, kind, disableTrace, false)
}

func benchFleetStepFlight(b *testing.B, homes, shards int, kind core.TransportKind, disableTrace, recorder bool) {
	f := fleet.New(fleet.Config{
		Clock: clock.NewSimulated(), Seed: 5, Shards: shards,
		HomeConfig: func(id uint64, cfg *core.Config) {
			cfg.Transport = kind
			cfg.DisableTrace = disableTrace
		},
	})
	b.Cleanup(f.Stop)
	var rec *flight.Recorder
	if recorder {
		// A short retention keeps compaction in the measured loop: the
		// recorder is priced doing its full job, not just appending.
		rec = flight.NewRecorder(flight.RecorderConfig{
			Window: time.Second, Retention: 5 * time.Second,
		})
		rec.Attach(f.Hub())
		rec.AttachView(f.DB(), telemetry.ViewTable)
	}
	if _, err := f.AddHomes(homes); err != nil {
		b.Fatal(err)
	}
	for _, h := range f.Homes() {
		for i := 0; i < 2; i++ {
			host, err := h.Join("", false, netsim.Pos{})
			if err != nil {
				b.Fatal(err)
			}
			// Literal target: the step cost under test is datapath +
			// control + measurement, not name resolution. Flow churn keeps
			// the reactive control plane working every tick — each fresh
			// connection punts, is policy-checked and installed — the way
			// real browsing does, instead of one long-lived flow that goes
			// quiet after warmup.
			app := netsim.NewApp(netsim.AppWeb, "203.0.113.10", 40_000)
			// Slower than the 0.25s step so each flow is matched (and
			// measured) for a few ticks before the next one arrives.
			app.SetFlowChurn(0.75)
			host.AddApp(app)
		}
	}
	// Warm to steady state: tick 0 resolves targets, tick 1 punts and
	// installs the flows, tick 2 is the first fully-measured tick.
	for i := 0; i < 3; i++ {
		if err := f.Step(0.25); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Step(0.25); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(homes)*float64(b.N)/b.Elapsed().Seconds(), "home-steps/s")
	if f.Aggregate(); f.Totals().Flows == 0 {
		b.Fatal("fleet stepped but no flows were folded")
	}
	if rec != nil {
		st := rec.Stats()
		if st.Delivered+st.ViewRows != st.Stored+st.Compacted {
			b.Fatalf("recorder books off: %+v", st)
		}
		b.ReportMetric(float64(st.Stored+st.Compacted)/float64(b.N), "recorded-rows/op")
	}
}

// BenchmarkSettleLatency measures the control plane's quiescence latency:
// the time from a punt entering the control path to Settle returning with
// the path drained and barriered — the wait every fleet tick pays per
// home with a new flow. Each sample injects the first packet of a
// brand-new flow (so a punt is guaranteed in flight when Settle is
// entered) and settles, per home, back to back as fleet.Home.step does;
// p50/p99 across all per-home samples are reported alongside the mean.
// The event-driven wait puts p50 at in-process dispatch + barrier RTT
// scale; the poll-and-sleep protocol it replaced floored every sample
// with an in-flight punt at its 200 µs sleep quantum.
func BenchmarkSettleLatency(b *testing.B) {
	for _, homes := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("homes=%d", homes), func(b *testing.B) {
			benchSettleLatency(b, homes)
		})
	}
}

func benchSettleLatency(b *testing.B, homes int) {
	clk := clock.NewSimulated()
	routers := make([]*core.Router, homes)
	hosts := make([]*netsim.Host, homes)
	for i := range routers {
		cfg := core.DefaultConfig()
		cfg.AutoPermit = true
		cfg.DisableRPC = true
		cfg.Clock = clk
		cfg.Seed = int64(i + 1)
		rt, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := rt.Start(); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(rt.Stop)
		h, err := rt.AddHost(fmt.Sprintf("dev-%d", i), fmt.Sprintf("02:aa:00:%02x:00:01", i), false, netsim.Pos{})
		if err != nil {
			b.Fatal(err)
		}
		if err := rt.JoinHost(h); err != nil {
			b.Fatal(err)
		}
		if !h.Bound() {
			b.Fatalf("home %d host did not bind", i)
		}
		routers[i], hosts[i] = rt, h
	}
	samples := make([]time.Duration, 0, b.N*homes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for hi, rt := range routers {
			h := hosts[hi]
			// A brand-new five-tuple: this packet misses and punts.
			frame := packet.NewTCPFrame(h.MAC, rt.Config.RouterMAC,
				h.IP(), packet.IP4{93, 184, 216, 34},
				uint16(1024+i%60000), uint16(1+i/60000), packet.TCPSyn, 0, nil)
			t0 := time.Now()
			h.SendRaw(frame.Bytes())
			if err := rt.Settle(); err != nil {
				b.Fatal(err)
			}
			samples = append(samples, time.Since(t0))
		}
	}
	b.StopTimer()
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	b.ReportMetric(float64(samples[len(samples)/2].Nanoseconds()), "p50-ns/settle")
	b.ReportMetric(float64(samples[len(samples)*99/100].Nanoseconds()), "p99-ns/settle")
}

// BenchmarkFleetAggregate prices taking a fleet-wide delta snapshot
// after one interval of traffic at 8 homes. The fold already happened
// inside Step (the telemetry hub streams rows as they land), so
// Aggregate only swaps the per-home period counters. The PR-1 on-demand
// cursor-scan baseline it used to be compared against (deprecated
// Fleet.FoldOnDemand, ~43 µs per pass at 8 homes) was deleted with the
// engine/coordinator split; its recorded numbers live on in
// BENCH_6.json.
func BenchmarkFleetAggregate(b *testing.B) {
	b.Run("path=live", func(b *testing.B) {
		benchFleetAggregate(b, 0, func(f *fleet.Fleet) { f.Aggregate() })
	})
	b.Run("path=live/shards=4", func(b *testing.B) {
		benchFleetAggregate(b, 4, func(f *fleet.Fleet) { f.Aggregate() })
	})
}

func benchFleetAggregate(b *testing.B, shards int, read func(*fleet.Fleet)) {
	f := fleet.New(fleet.Config{Clock: clock.NewSimulated(), Seed: 5, Shards: shards})
	b.Cleanup(f.Stop)
	if _, err := f.AddHomes(8); err != nil {
		b.Fatal(err)
	}
	for _, h := range f.Homes() {
		host, err := h.Join("", false, netsim.Pos{})
		if err != nil {
			b.Fatal(err)
		}
		host.AddApp(netsim.NewApp(netsim.AppWeb, "203.0.113.10", 200_000))
	}
	for i := 0; i < 8; i++ {
		if err := f.Step(0.25); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Both paths read deltas: ring up one fresh interval of rows
		// (untimed) before each snapshot, or every iteration after the
		// first would measure an empty one.
		b.StopTimer()
		if err := f.Step(0.25); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		read(f)
	}
}

// BenchmarkFleetTelemetry is the headline read-latency number for the
// telemetry subsystem: reading the current fleet-wide state from the
// federated folder (hub-maintained Totals: one mutex and a struct copy,
// no ring touched, no shard called) as the fleet grows 1 -> 8 -> 64
// homes, plus a 4-shard variant pinning that federation keeps the read
// O(1) — the global folder is maintained at stream time, so shard count
// does not appear in the read path. The live read should be flat across
// both axes and allocation-free. (The PR-1 on-demand fold it was
// measured against — O(homes x tables) cursor reads, ~43 µs at 64
// homes — was deleted with the engine/coordinator split; BENCH_6.json
// keeps its recorded numbers.)
func BenchmarkFleetTelemetry(b *testing.B) {
	for _, homes := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("read=live/homes=%d", homes), func(b *testing.B) {
			benchFleetTelemetry(b, homes, 0)
		})
	}
	b.Run("read=live/shards=4/homes=64", func(b *testing.B) {
		benchFleetTelemetry(b, 64, 4)
	})
}

func benchFleetTelemetry(b *testing.B, homes, shards int) {
	f := fleet.New(fleet.Config{Clock: clock.NewSimulated(), Seed: 5, Shards: shards})
	b.Cleanup(f.Stop)
	if _, err := f.AddHomes(homes); err != nil {
		b.Fatal(err)
	}
	for _, h := range f.Homes() {
		host, err := h.Join("", false, netsim.Pos{})
		if err != nil {
			b.Fatal(err)
		}
		host.AddApp(netsim.NewApp(netsim.AppWeb, "203.0.113.10", 60_000))
	}
	for i := 0; i < 4; i++ {
		if err := f.Step(0.25); err != nil {
			b.Fatal(err)
		}
	}
	if f.Totals().Flows == 0 {
		b.Fatal("no live traffic to read")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Totals()
	}
}

// ------------------------------------------------- D: data-plane hot path

// BenchmarkFrameBuild pins the cost (and allocs/op) of serializing one
// Ethernet/IPv4/TCP frame: the single-pass append path into a reused
// buffer against the layered New*Frame(...).Bytes() path it replaced on
// the hot paths.
func BenchmarkFrameBuild(b *testing.B) {
	srcMAC, dstMAC := packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2}
	srcIP, dstIP := packet.IP4{192, 168, 1, 10}, packet.IP4{93, 184, 216, 34}
	payload := make([]byte, 1200)
	b.Run("append", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = packet.AppendTCPFrame(buf[:0], srcMAC, dstMAC, srcIP, dstIP,
				40000, 80, packet.TCPAck, uint32(i), 0, payload)
		}
		b.SetBytes(int64(len(buf)))
	})
	b.Run("alloc", func(b *testing.B) {
		var frame []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			frame = packet.NewTCPFrame(srcMAC, dstMAC, srcIP, dstIP,
				40000, 80, packet.TCPAck, uint32(i), payload).Bytes()
		}
		b.SetBytes(int64(len(frame)))
	})
}

// BenchmarkTableLookup pins the cost (and allocs/op) of an exact-match
// flow-table lookup against a 1k-entry table, serial and with every
// logical CPU looking up concurrently — the read-lock path that lets
// ports proceed in parallel.
func BenchmarkTableLookup(b *testing.B) {
	tbl := datapath.NewFlowTable()
	var probe packet.Decoded
	var frameLen int
	for i := 0; i < 1024; i++ {
		f := packet.NewTCPFrame(
			packet.MAC{2, 0, 0, byte(i >> 8), byte(i), 1}, packet.MAC{3},
			packet.IP4{10, 0, byte(i >> 8), byte(i)}, packet.IP4{10, 1, 0, 1},
			uint16(1024+i), 80, packet.TCPAck, 0, nil).Bytes()
		var d packet.Decoded
		if err := d.Decode(f); err != nil {
			b.Fatal(err)
		}
		_ = tbl.Add(&datapath.FlowEntry{Match: openflow.MatchFromFrame(&d, 1), Priority: 10}, false)
		probe, frameLen = d, len(f)
	}
	now := time.Now()
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if tbl.Lookup(&probe, 1, frameLen, now) == nil {
				b.Fatal("probe missed")
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			d := probe
			for pb.Next() {
				if tbl.Lookup(&d, 1, frameLen, now) == nil {
					b.Fatal("probe missed")
				}
			}
		})
	})
}

// ------------------------------------------------------------- helpers

func startBenchRouter(b *testing.B, mutate func(*core.Config)) *core.Router {
	b.Helper()
	cfg := core.DefaultConfig()
	cfg.AutoPermit = true
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Stop)
	return rt
}
