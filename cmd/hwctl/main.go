// Command hwctl drives the router's REST control API from the command
// line: the same calls the graphical interfaces and udev hooks make.
//
//	hwctl -api http://127.0.0.1:8077 devices
//	hwctl -api ... permit 02:aa:00:00:00:01
//	hwctl -api ... deny 02:aa:00:00:00:01
//	hwctl -api ... annotate 02:aa:00:00:00:01 "the kid's tablet"
//	hwctl -api ... policies
//	hwctl -api ... install-policy policy.json
//	hwctl -api ... remove-policy kids-facebook
//	hwctl -api ... insert-key parent-key
//	hwctl -api ... remove-key parent-key
//	hwctl -api ... access 02:aa:00:00:00:01
//	hwctl -api ... trace
//	hwctl -api ... replay FlowPerf 1699999000000000000 1699999900000000000
//
// trace prints the router's punt-lifecycle latency summary: one row per
// control-plane stage transition (punt->dispatch, dispatch->emit, ...)
// with count, p50/p99/max/mean — the always-on tracing described in
// docs/CONTROL_PLANE.md.
//
// replay scrubs a table's retained history between two instants (unix
// nanoseconds, both optional, zero/omitted bounds open) and prints the
// rows as tab-separated text — the flight-recorder time travel described
// in docs/ARCHITECTURE.md "Flight recorder & time travel".
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

func main() {
	api := flag.String("api", "http://127.0.0.1:8077", "control API base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	base := strings.TrimSuffix(*api, "/")

	var err error
	switch args[0] {
	case "devices":
		err = get(base + "/api/devices")
	case "policies":
		err = get(base + "/api/policies")
	case "status":
		err = get(base + "/api/status")
	case "trace":
		err = get(base + "/api/trace")
	case "replay":
		need(args, 2)
		url := base + "/api/replay/" + args[1]
		var q []string
		if len(args) >= 3 && args[2] != "" {
			q = append(q, "from="+strings.TrimPrefix(args[2], "@"))
		}
		if len(args) >= 4 && args[3] != "" {
			q = append(q, "to="+strings.TrimPrefix(args[3], "@"))
		}
		if len(q) > 0 {
			url += "?" + strings.Join(q, "&")
		}
		err = get(url)
	case "permit", "deny":
		need(args, 2)
		err = post(base+"/api/devices/"+args[1]+"/"+args[0], nil)
	case "annotate":
		need(args, 3)
		err = post(base+"/api/devices/"+args[1]+"/annotate", []byte(strings.Join(args[2:], " ")))
	case "access":
		need(args, 2)
		err = get(base + "/api/access/" + args[1])
	case "install-policy":
		need(args, 2)
		var data []byte
		data, err = os.ReadFile(args[1])
		if err == nil {
			err = post(base+"/api/policies", data)
		}
	case "remove-policy":
		need(args, 2)
		err = del(base + "/api/policies/" + args[1])
	case "insert-key":
		need(args, 2)
		err = post(base+"/api/keys/"+args[1]+"/insert", nil)
	case "remove-key":
		need(args, 2)
		err = post(base+"/api/keys/"+args[1]+"/remove", nil)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hwctl:", err)
		os.Exit(1)
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hwctl [-api URL] <command> [args]
commands: status devices permit deny annotate access trace
          replay <table> [from-nanos] [to-nanos]
          policies install-policy remove-policy insert-key remove-key`)
	os.Exit(2)
}

func get(url string) error { return do(http.MethodGet, url, nil) }

func post(url string, body []byte) error { return do(http.MethodPost, url, body) }

func del(url string) error { return do(http.MethodDelete, url, nil) }

func do(method, url string, body []byte) error {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Println(strings.TrimSpace(string(out)))
	if resp.StatusCode >= 400 {
		return fmt.Errorf("status %s", resp.Status)
	}
	return nil
}
