// Command hwdbd runs a standalone Homework Database server over its UDP
// RPC, with the three standard tables created.
//
//	hwdbd [-addr 127.0.0.1:7654] [-ring 65536]
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"repro/internal/clock"
	"repro/internal/hwdb"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7654", "UDP listen address")
	ring := flag.Int("ring", hwdb.DefaultRingSize, "per-table ring capacity")
	flag.Parse()

	db := hwdb.NewHomework(clock.Real{}, *ring)
	srv := hwdb.NewServer(db)
	if err := srv.Serve(*addr); err != nil {
		log.Fatal(err)
	}
	log.Printf("hwdb serving on %s (tables: Flows, Links, Leases; ring %d)", srv.Addr(), *ring)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	_ = srv.Close()
}
