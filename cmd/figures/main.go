// Command figures regenerates the paper's figures as text artifacts.
//
// Usage:
//
//	figures          # all figures
//	figures -fig 3   # one figure
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (0 = all)")
	flag.Parse()

	gens := map[int]func() (string, error){
		1: figures.Figure1,
		2: figures.Figure2,
		3: figures.Figure3,
		4: func() (string, error) {
			dir, err := os.MkdirTemp("", "hw-usb-*")
			if err != nil {
				return "", err
			}
			defer os.RemoveAll(dir)
			return figures.Figure4(dir)
		},
		5: figures.Figure5,
	}
	order := []int{1, 2, 3, 4, 5}
	if *fig != 0 {
		order = []int{*fig}
	}
	for _, n := range order {
		gen, ok := gens[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "no such figure %d\n", n)
			os.Exit(2)
		}
		fmt.Printf("===== Figure %d =====\n", n)
		out, err := gen()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %d: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}
