// Command hwfleetd runs a fleet of Homework homes in one process: N
// independent routers (each with its own datapath, controller modules,
// hwdb and simulated home network) stepped concurrently by a sharded
// worker pool, with every home's hwdb folded into a fleet-wide
// FleetStats view.
//
//	hwfleetd [-homes 64] [-hosts 3] [-shards 8] [-duration 10] [-scenario fleet.json]
//	         [-stats 127.0.0.1:0] [-linger 30s]
//
// Flags override the scenario (default or loaded from -scenario JSON).
// On completion it prints the run report plus the busiest homes from the
// aggregated view, and with -cql executes one more query against it.
//
// With -stats, a streaming telemetry endpoint serves the live fleet view
// over UDP for the whole run (HWDB/1 framing: EXEC CQL, STATS, and FLEET
// subscriptions pushing per-home deltas); -linger keeps the process (and
// the endpoint) alive after the run so clients can keep querying.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/fleet"
	"repro/internal/telemetry"
)

func main() {
	scenarioPath := flag.String("scenario", "", "scenario JSON file (defaults applied to absent fields)")
	homes := flag.Int("homes", 0, "override: number of homes")
	hosts := flag.Int("hosts", 0, "override: hosts per home")
	shards := flag.Int("shards", 0, "override: worker shards (0 = fleet default)")
	duration := flag.Float64("duration", 0, "override: simulated seconds to run")
	churn := flag.Float64("churn", -1, "override: churn events per home per simulated minute")
	seed := flag.Int64("seed", 0, "override: fleet seed")
	cql := flag.String("cql", "", "extra CQL query to run against the FleetStats view")
	stats := flag.String("stats", "", "serve the streaming telemetry endpoint on this UDP address")
	linger := flag.Duration("linger", 0, "keep serving telemetry this long after the run")
	quiet := flag.Bool("q", false, "suppress progress lines")
	flag.Parse()

	s := fleet.DefaultScenario()
	if *scenarioPath != "" {
		var err error
		if s, err = fleet.LoadScenario(*scenarioPath); err != nil {
			log.Fatal(err)
		}
	}
	if *homes > 0 {
		s.Homes = *homes
	}
	if *hosts > 0 {
		s.HostsPerHome = *hosts
	}
	if *shards > 0 {
		s.Shards = *shards
	}
	if *duration > 0 {
		s.DurationSec = *duration
	}
	if *churn >= 0 {
		s.ChurnPerMin = *churn
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	if err := s.Validate(); err != nil {
		log.Fatal(err)
	}

	runner, err := fleet.NewRunner(s)
	if err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		runner.Logf = log.Printf
	}
	var statsSrv *telemetry.Server
	if *stats != "" {
		runner.OnFleet = func(f *fleet.Fleet) {
			statsSrv = telemetry.NewServer(f.Telemetry())
			if err := statsSrv.Serve(*stats); err != nil {
				log.Fatal(err)
			}
			log.Printf("telemetry endpoint on udp://%s (EXEC | STATS | SUBSCRIBE FLEET EVERY ...)", statsSrv.Addr())
		}
	}

	rep, err := runner.Run()
	if err != nil {
		log.Fatal(err)
	}
	defer runner.Close()

	fmt.Printf("scenario  %s\n", rep.Scenario)
	fmt.Printf("homes     %d (%d shards)\n", rep.Homes, rep.Shards)
	fmt.Printf("steps     %d (%.1fs simulated in %v wall)\n", rep.Steps, rep.SimSeconds, rep.Wall.Round(1_000_000))
	fmt.Printf("churn     %d host replacements\n", rep.Churned)
	fmt.Printf("folds     %d\n", rep.Totals.Folds)
	fmt.Printf("hosts     %d across the fleet\n", rep.Totals.Hosts)
	fmt.Printf("flows     %d observations, %d packets, %d bytes\n",
		rep.Totals.Flows, rep.Totals.Packets, rep.Totals.Bytes)
	fmt.Printf("links     %d observations (%d rows lost to ring wrap)\n", rep.Totals.Links, rep.Totals.Lost)
	if len(rep.TopHomes) > 0 {
		fmt.Println("top homes by folded bytes:")
		for _, h := range rep.TopHomes {
			fmt.Printf("  home-%-4d %10d bytes  %6d flow observations\n", h.Home, h.Bytes, h.Flows)
		}
	}
	if *cql != "" {
		res, err := runner.Fleet().DB().Query(*cql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Text())
	}
	if rep.Totals.Flows == 0 {
		fmt.Fprintln(os.Stderr, "warning: no flows folded — scenario too short?")
		os.Exit(1)
	}
	if statsSrv != nil {
		tel := runner.Fleet().Telemetry()
		r := tel.FleetRate()
		fmt.Printf("telemetry  %s  (fleet rate %.0f B/s, %.1f pkt/s at shutdown)\n",
			statsSrv.Addr(), r.BytesPerSec, r.PacketsPerSec)
		if *linger > 0 {
			log.Printf("lingering %v for telemetry clients...", *linger)
			time.Sleep(*linger)
		}
		_ = statsSrv.Close()
	}
}
