// Command hwfleetd runs a fleet of Homework homes in one process: N
// independent routers (each with its own datapath, controller modules,
// hwdb and simulated home network) placed across shard-local engines by
// the fleet coordinator, with every shard's telemetry hub federated into
// one fleet-wide FleetStats view.
//
//	hwfleetd [-homes 64] [-hosts 3] [-shards 8] [-duration 10] [-scenario fleet.json]
//	         [-stats 127.0.0.1:0] [-linger 30s] [-debug-addr 127.0.0.1:6060]
//
// Flags override the scenario (default or loaded from -scenario JSON).
//
// The fleet can also span processes. A worker serves one shard engine's
// ShardClient contract over TCP (internal/fleet/shardrpc), populating
// each home the coordinator assigns from the scenario; a coordinator
// given -workers drives those shards over the network instead of
// in-process engines, with each worker's telemetry relayed back into the
// federated view under the same delivered+lost == inserts accounting:
//
//	hwfleetd -worker -listen 127.0.0.1:7701 -shard-index 0
//	hwfleetd -worker -listen 127.0.0.1:7702 -shard-index 1
//	hwfleetd -workers 127.0.0.1:7701,127.0.0.1:7702 -homes 16 -duration 10
//
// Workers exit when the coordinator closes their shard (or on SIGINT).
// See docs/ARCHITECTURE.md "Fleet control plane" for the wire protocol
// and its reconnect/accounting semantics.
// On completion it prints the run report — including the fleet-merged
// punt-lifecycle trace summary and FlowPerf loss totals — plus the
// busiest homes from the aggregated view, and with -cql executes one
// more query against it.
//
// With -stats, a streaming telemetry endpoint serves the live fleet view
// over UDP for the whole run (HWDB/1 framing: EXEC CQL, STATS, TRACE,
// and FLEET subscriptions pushing per-home deltas); -linger keeps the
// process (and the endpoint) alive after the run so clients can keep
// querying.
//
// With -debug-addr (off by default), an HTTP debug endpoint serves
// net/http/pprof profiles under /debug/pprof/ and expvar counters under
// /debug/vars, with the live fleet trace summary published as the
// "trace" expvar, the hub/federation loss books and folder totals as
// "telemetry", and the flight recorder's retention books as "flight".
//
// A flight recorder (internal/flight) rides along by default: it retains
// -retention worth of every home's telemetry in -flight-window buckets,
// serves AS OF / HISTORY time travel through the telemetry endpoint's
// EXEC verb and scrubbing through its REPLAY verb, and its books are
// reconciled in the final report (delivered + view rows == stored +
// compacted, and delivered == the federation's delivered). -retention 0
// disables it.
//
// With -chaos, the process instead runs the time-compressed chaos soak
// (internal/chaos): scheduled fault episodes over a simulated-clock
// fleet with the health/remediation loop live, exiting non-zero if any
// soak invariant is violated. -homes, -hosts, -shards and -seed carry
// over; -chaos-days sets the simulated fault window. With -incident-dir,
// every Sick/Cordoned verdict and remediation action dumps a JSON
// incident bundle there (trace spans, recent rows, placement history).
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/clock"
	"repro/internal/fleet"
	"repro/internal/fleet/engine"
	"repro/internal/fleet/shardrpc"
	"repro/internal/flight"
	"repro/internal/telemetry"
)

// runWorker serves one shard engine over TCP until the coordinator
// closes the shard (CLOSE verb) or the process is signalled. The clock
// is simulated and advanced only by the coordinator's SYNC timestamps,
// so a remote fleet steps in the same lockstep as an in-process one.
func runWorker(s fleet.Scenario, listen string, index int) {
	clk := clock.NewSimulated()
	eng := engine.New(engine.Config{
		Index:    index,
		Clock:    clk,
		Seed:     s.Seed,
		OnAssign: s.SetupHome,
	})
	srv := shardrpc.NewServer(shardrpc.Config{Backend: eng, Hub: eng.Hub(), Clock: clk})
	if err := srv.Serve(listen); err != nil {
		log.Fatal(err)
	}
	log.Printf("worker shard %d serving the fleet control plane on tcp://%s", index, srv.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-srv.Done():
		log.Printf("worker shard %d: coordinator closed the shard", index)
	case <-sig:
		log.Printf("worker shard %d: signalled", index)
		eng.Close()
	}
	srv.Close()
	st := eng.Stats()
	fmt.Printf("worker shard %d: %d steps, %d delivered + %d lost rows\n",
		index, st.Steps, st.Hub.Delivered, st.Hub.Lost)
}

// runCoordinator drives the scenario over remote workers: same step and
// aggregation cadence as the in-process runner, but every shard call is
// a shardrpc round trip and every shard's telemetry arrives through a
// relay. The final report reconciles the relayed books against the
// workers' own: delivered+lost must sum identically on both sides of the
// wire.
func runCoordinator(s fleet.Scenario, addrs []string, quiet bool) {
	f := fleet.New(fleet.Config{
		WorkerAddrs: addrs,
		Clock:       clock.NewSimulated(),
		Seed:        s.Seed,
		StepTimeout: 30 * time.Second,
	})
	defer f.Stop()
	start := time.Now()
	if _, err := f.AddHomes(s.Homes); err != nil {
		log.Fatal(err)
	}
	steps := int(s.DurationSec / s.StepSec)
	aggEvery := s.AggEverySec
	if aggEvery <= 0 {
		aggEvery = 1
	}
	aggSteps := int(aggEvery / s.StepSec)
	if aggSteps < 1 {
		aggSteps = 1
	}
	for i := 0; i < steps; i++ {
		if err := f.Step(s.StepSec); err != nil {
			log.Fatal(err)
		}
		if (i+1)%aggSteps == 0 {
			f.Aggregate()
			if !quiet {
				log.Printf("step %d/%d: %+v", i+1, steps, f.Telemetry().FleetRate())
			}
		}
	}
	f.Sync()

	fmt.Printf("scenario  %s (remote)\n", s.Name)
	fmt.Printf("homes     %d across %d workers\n", f.Size(), f.Shards())
	fmt.Printf("steps     %d (%.1fs simulated in %v wall)\n",
		steps, float64(steps)*s.StepSec, time.Since(start).Round(time.Millisecond))
	tot := f.Totals()
	fmt.Printf("flows     %d observations, %d packets, %d bytes\n", tot.Flows, tot.Packets, tot.Bytes)
	// Per-worker engine books (one RPC each) against the coordinator's
	// relayed federation books. Individual delivered/lost components may
	// differ — a row a worker counted delivered can be accounted lost here
	// if its connection died mid-batch — but the sums must reconcile
	// exactly: every row is delivered or explicitly lost, never silent.
	var sumDelivered, sumLost uint64
	fmt.Println("workers (engine-local books over the wire):")
	for _, ss := range f.ShardStats() {
		fmt.Printf("  shard %-3d %4d homes  %10d delivered + %6d lost  %10d rows folded\n",
			ss.Shard, ss.Homes, ss.Hub.Delivered, ss.Hub.Lost, ss.Totals.Rows)
		sumDelivered += ss.Hub.Delivered
		sumLost += ss.Hub.Lost
	}
	fed := f.Hub().Stats()
	fmt.Printf("federated %d delivered + %d lost (relayed books)\n", fed.Delivered, fed.Lost)
	if sumDelivered+sumLost != fed.Delivered+fed.Lost {
		fmt.Fprintf(os.Stderr,
			"error: relayed books disagree with the workers': %d+%d relayed != %d+%d at the workers\n",
			fed.Delivered, fed.Lost, sumDelivered, sumLost)
		os.Exit(1)
	}
	if tot.Flows == 0 {
		fmt.Fprintln(os.Stderr, "warning: no flows folded — scenario too short?")
		os.Exit(1)
	}
}

// runChaosSoak drives the chaos soak gate and prints its report; any
// violated invariant exits non-zero with the reproducing seed.
func runChaosSoak(cfg chaos.SoakConfig, quiet bool) {
	if !quiet {
		cfg.Logf = log.Printf
	}
	res, err := chaos.Soak(cfg)
	if res != nil {
		fmt.Printf("chaos soak  seed %d\n", res.Seed)
		fmt.Printf("homes       %d\n", res.Homes)
		fmt.Printf("steps       %d scheduled + %d recovery (%s simulated in %v wall)\n",
			res.Steps, res.Extra, res.SimSpan, res.Wall.Round(time.Millisecond))
		fmt.Printf("episodes    %d scheduled: %d injected, %d skipped, %d unrecovered\n",
			res.Episodes, res.Injected, res.Skipped, res.Unrecovered)
		fmt.Printf("remediation %d verdicts: %d cordons, %d uncordons, %d restarts, %d replaces, %d failures\n",
			res.Counts.Verdicts, res.Counts.Cordons, res.Counts.Uncordons,
			res.Counts.Restarts, res.Counts.Replaces, res.Counts.Failures)
		fmt.Printf("telemetry   %d delivered + %d lost = %d inserts\n",
			res.HubDelivered, res.HubLost, res.Inserts)
		fmt.Printf("flight      %d streams in %d windows: %d stored + %d compacted; %d incident bundles\n",
			res.Recorder.Streams, res.Recorder.Windows, res.Recorder.Stored,
			res.Recorder.Compacted, res.Bundles)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	scenarioPath := flag.String("scenario", "", "scenario JSON file (defaults applied to absent fields)")
	homes := flag.Int("homes", 0, "override: number of homes")
	hosts := flag.Int("hosts", 0, "override: hosts per home")
	shards := flag.Int("shards", 0, "override: shard engines (0 = fleet default)")
	duration := flag.Float64("duration", 0, "override: simulated seconds to run")
	churn := flag.Float64("churn", -1, "override: churn events per home per simulated minute")
	seed := flag.Int64("seed", 0, "override: fleet seed")
	cql := flag.String("cql", "", "extra CQL query to run against the FleetStats view")
	stats := flag.String("stats", "", "serve the streaming telemetry endpoint on this UDP address")
	linger := flag.Duration("linger", 0, "keep serving telemetry this long after the run")
	debugAddr := flag.String("debug-addr", "", "serve pprof/expvar debug HTTP on this address (off when empty)")
	quiet := flag.Bool("q", false, "suppress progress lines")
	chaosRun := flag.Bool("chaos", false, "run the time-compressed chaos soak instead of the scenario")
	chaosDays := flag.Float64("chaos-days", 0, "chaos: simulated days of scheduled faults (default 2)")
	retention := flag.Duration("retention", flight.DefaultRetention, "flight recorder retention (0 disables the recorder)")
	flightWindow := flag.Duration("flight-window", flight.DefaultWindow, "flight recorder time-bucket width")
	incidentDir := flag.String("incident-dir", "", "chaos: dump JSON incident bundles into this directory")
	worker := flag.Bool("worker", false, "serve one shard engine over TCP instead of running a scenario")
	listen := flag.String("listen", "127.0.0.1:0", "worker: TCP listen address for the shard control plane")
	shardIndex := flag.Int("shard-index", 0, "worker: this shard's index (labels stats; the engine is placement-blind)")
	workers := flag.String("workers", "", "coordinator: comma-separated worker addresses to drive instead of in-process shards")
	flag.Parse()

	if *chaosRun {
		runChaosSoak(chaos.SoakConfig{
			Homes:        *homes,
			HostsPerHome: *hosts,
			Shards:       *shards,
			Seed:         *seed,
			SimDays:      *chaosDays,
			IncidentDir:  *incidentDir,
		}, *quiet)
		return
	}

	s := fleet.DefaultScenario()
	if *scenarioPath != "" {
		var err error
		if s, err = fleet.LoadScenario(*scenarioPath); err != nil {
			log.Fatal(err)
		}
	}
	if *homes > 0 {
		s.Homes = *homes
	}
	if *hosts > 0 {
		s.HostsPerHome = *hosts
	}
	if *shards > 0 {
		s.Shards = *shards
	}
	if *duration > 0 {
		s.DurationSec = *duration
	}
	if *churn >= 0 {
		s.ChurnPerMin = *churn
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	if err := s.Validate(); err != nil {
		log.Fatal(err)
	}

	if *worker {
		runWorker(s, *listen, *shardIndex)
		return
	}
	if *workers != "" {
		runCoordinator(s, strings.Split(*workers, ","), *quiet)
		return
	}

	runner, err := fleet.NewRunner(s)
	if err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		runner.Logf = log.Printf
	}
	var statsSrv *telemetry.Server
	var rec *flight.Recorder
	runner.OnFleet = func(f *fleet.Fleet) {
		// OnFleet runs after the homes exist but before the first Sync,
		// so the recorder sees every delta from row zero and its books
		// reconcile exactly against the federation's delivered count.
		if *retention != 0 {
			rec = flight.NewRecorder(flight.RecorderConfig{
				Window:    *flightWindow,
				Retention: *retention,
			})
			rec.Attach(f.Hub())
			if err := rec.AttachView(f.DB(), telemetry.ViewTable); err != nil {
				log.Fatal(err)
			}
		}
		if *stats != "" {
			statsSrv = telemetry.NewServer(f.Telemetry())
			statsSrv.SetTraceSource(f.TraceStats)
			if rec != nil {
				statsSrv.SetReplaySource(rec.Replay)
			}
			if err := statsSrv.Serve(*stats); err != nil {
				log.Fatal(err)
			}
			log.Printf("telemetry endpoint on udp://%s (EXEC | STATS | TRACE | REPLAY | SUBSCRIBE FLEET EVERY ...)", statsSrv.Addr())
		}
		if *debugAddr != "" {
			expvar.Publish("trace", expvar.Func(func() any { return f.TraceStats() }))
			expvar.Publish("telemetry", expvar.Func(func() any {
				return map[string]any{
					"federation": f.Hub().Stats(),
					"totals":     f.Telemetry().Totals(),
					"shards":     f.ShardStats(),
				}
			}))
			if rec != nil {
				expvar.Publish("flight", expvar.Func(func() any { return rec.Stats() }))
			}
			go func() {
				// DefaultServeMux carries the pprof and expvar handlers.
				log.Printf("debug endpoint on http://%s/debug/pprof/ and /debug/vars", *debugAddr)
				log.Fatal(http.ListenAndServe(*debugAddr, nil))
			}()
		}
	}

	rep, err := runner.Run()
	if err != nil {
		log.Fatal(err)
	}
	defer runner.Close()

	fmt.Printf("scenario  %s\n", rep.Scenario)
	fmt.Printf("homes     %d (%d shards)\n", rep.Homes, rep.Shards)
	fmt.Printf("steps     %d (%.1fs simulated in %v wall)\n", rep.Steps, rep.SimSeconds, rep.Wall.Round(1_000_000))
	fmt.Printf("churn     %d host replacements\n", rep.Churned)
	fmt.Printf("folds     %d\n", rep.Totals.Folds)
	fmt.Printf("hosts     %d across the fleet\n", rep.Totals.Hosts)
	fmt.Printf("flows     %d observations, %d packets, %d bytes\n",
		rep.Totals.Flows, rep.Totals.Packets, rep.Totals.Bytes)
	fmt.Printf("links     %d observations (%d rows lost to ring wrap)\n", rep.Totals.Links, rep.Totals.Lost)
	// Per-shard engine reports, reconciled against the federated view:
	// every home is hosted by exactly one shard and the shard hubs' books
	// must sum to the global accounting. A mismatch is a federation bug —
	// fail loudly rather than print a report that disagrees with itself.
	fl := runner.Fleet()
	var sumHomes int
	var sumDelivered, sumLost, sumRows uint64
	fmt.Println("shards (engine-local books):")
	for _, ss := range fl.ShardStats() {
		fmt.Printf("  shard %-3d %4d homes  %10d delivered + %6d lost  %10d rows folded\n",
			ss.Shard, ss.Homes, ss.Hub.Delivered, ss.Hub.Lost, ss.Totals.Rows)
		sumHomes += ss.Homes
		sumDelivered += ss.Hub.Delivered
		sumLost += ss.Hub.Lost
		sumRows += ss.Totals.Rows
	}
	fedStats := fl.Hub().Stats()
	if sumHomes != fl.Size() || sumDelivered != fedStats.Delivered || sumLost != fedStats.Lost ||
		sumRows != fl.Telemetry().Totals().Rows {
		fmt.Fprintf(os.Stderr,
			"error: per-shard reports disagree with the global view: homes %d/%d, delivered %d/%d, lost %d/%d, rows %d/%d\n",
			sumHomes, fl.Size(), sumDelivered, fedStats.Delivered,
			sumLost, fedStats.Lost, sumRows, fl.Telemetry().Totals().Rows)
		os.Exit(1)
	}
	// Flight recorder books, reconciled the same way: every row the
	// federation delivered (plus every view commit) must be stored in a
	// retention window or accounted as compacted — nothing vanishes.
	if rec != nil {
		fs := rec.Stats()
		fmt.Printf("flight    %d streams in %d windows: %d delivered + %d view rows = %d stored + %d compacted (%d lost)\n",
			fs.Streams, fs.Windows, fs.Delivered, fs.ViewRows, fs.Stored, fs.Compacted, fs.Lost)
		if fs.Delivered+fs.ViewRows != fs.Stored+fs.Compacted ||
			fs.Delivered != fedStats.Delivered || fs.Lost != fedStats.Lost {
			fmt.Fprintf(os.Stderr,
				"error: flight recorder books disagree with the federation: delivered %d/%d, lost %d/%d, stored+compacted %d/%d\n",
				fs.Delivered, fedStats.Delivered, fs.Lost, fedStats.Lost,
				fs.Stored+fs.Compacted, fs.Delivered+fs.ViewRows)
			os.Exit(1)
		}
	}
	if tot := runner.Fleet().Telemetry().Totals(); tot.PerfRows > 0 {
		lossPct := 100 * float64(tot.LostPkts) / float64(tot.TxPkts)
		fmt.Printf("flowperf  %d rows: %d tx pkts, %d lost (%.2f%%)",
			tot.PerfRows, tot.TxPkts, tot.LostPkts, lossPct)
		if tot.Installs > 0 {
			fmt.Printf(", mean rule install %dµs over %d flows",
				tot.InstallUSSum/tot.Installs, tot.Installs)
		}
		fmt.Println()
	}
	if stats := runner.Fleet().TraceStats(); len(stats) > 0 && stats[0].Count > 0 {
		fmt.Println("trace (per-stage latency, fleet-merged):")
		for _, st := range stats {
			fmt.Printf("  %-17s %8d spans  p50 %7.1fµs  p99 %7.1fµs  max %7.1fµs\n",
				st.Stage, st.Count, st.P50NS/1e3, st.P99NS/1e3, float64(st.MaxNS)/1e3)
		}
	}
	if len(rep.TopHomes) > 0 {
		fmt.Println("top homes by folded bytes:")
		for _, h := range rep.TopHomes {
			fmt.Printf("  home-%-4d %10d bytes  %6d flow observations\n", h.Home, h.Bytes, h.Flows)
		}
	}
	if *cql != "" {
		res, err := runner.Fleet().DB().Query(*cql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Text())
	}
	if rep.Totals.Flows == 0 {
		fmt.Fprintln(os.Stderr, "warning: no flows folded — scenario too short?")
		os.Exit(1)
	}
	if statsSrv != nil {
		tel := runner.Fleet().Telemetry()
		r := tel.FleetRate()
		fmt.Printf("telemetry  %s  (fleet rate %.0f B/s, %.1f pkt/s at shutdown)\n",
			statsSrv.Addr(), r.BytesPerSec, r.PacketsPerSec)
		if *linger > 0 {
			log.Printf("lingering %v for telemetry clients...", *linger)
			time.Sleep(*linger)
		}
		_ = statsSrv.Close()
	}
}
