// Command hwfleetd runs a fleet of Homework homes in one process: N
// independent routers (each with its own datapath, controller modules,
// hwdb and simulated home network) placed across shard-local engines by
// the fleet coordinator, with every shard's telemetry hub federated into
// one fleet-wide FleetStats view.
//
//	hwfleetd [-homes 64] [-hosts 3] [-shards 8] [-duration 10] [-scenario fleet.json]
//	         [-stats 127.0.0.1:0] [-linger 30s] [-debug-addr 127.0.0.1:6060]
//
// Flags override the scenario (default or loaded from -scenario JSON).
// On completion it prints the run report — including the fleet-merged
// punt-lifecycle trace summary and FlowPerf loss totals — plus the
// busiest homes from the aggregated view, and with -cql executes one
// more query against it.
//
// With -stats, a streaming telemetry endpoint serves the live fleet view
// over UDP for the whole run (HWDB/1 framing: EXEC CQL, STATS, TRACE,
// and FLEET subscriptions pushing per-home deltas); -linger keeps the
// process (and the endpoint) alive after the run so clients can keep
// querying.
//
// With -debug-addr (off by default), an HTTP debug endpoint serves
// net/http/pprof profiles under /debug/pprof/ and expvar counters under
// /debug/vars, with the live fleet trace summary published as the
// "trace" expvar, the hub/federation loss books and folder totals as
// "telemetry", and the flight recorder's retention books as "flight".
//
// A flight recorder (internal/flight) rides along by default: it retains
// -retention worth of every home's telemetry in -flight-window buckets,
// serves AS OF / HISTORY time travel through the telemetry endpoint's
// EXEC verb and scrubbing through its REPLAY verb, and its books are
// reconciled in the final report (delivered + view rows == stored +
// compacted, and delivered == the federation's delivered). -retention 0
// disables it.
//
// With -chaos, the process instead runs the time-compressed chaos soak
// (internal/chaos): scheduled fault episodes over a simulated-clock
// fleet with the health/remediation loop live, exiting non-zero if any
// soak invariant is violated. -homes, -hosts, -shards and -seed carry
// over; -chaos-days sets the simulated fault window. With -incident-dir,
// every Sick/Cordoned verdict and remediation action dumps a JSON
// incident bundle there (trace spans, recent rows, placement history).
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/fleet"
	"repro/internal/flight"
	"repro/internal/telemetry"
)

// runChaosSoak drives the chaos soak gate and prints its report; any
// violated invariant exits non-zero with the reproducing seed.
func runChaosSoak(cfg chaos.SoakConfig, quiet bool) {
	if !quiet {
		cfg.Logf = log.Printf
	}
	res, err := chaos.Soak(cfg)
	if res != nil {
		fmt.Printf("chaos soak  seed %d\n", res.Seed)
		fmt.Printf("homes       %d\n", res.Homes)
		fmt.Printf("steps       %d scheduled + %d recovery (%s simulated in %v wall)\n",
			res.Steps, res.Extra, res.SimSpan, res.Wall.Round(time.Millisecond))
		fmt.Printf("episodes    %d scheduled: %d injected, %d skipped, %d unrecovered\n",
			res.Episodes, res.Injected, res.Skipped, res.Unrecovered)
		fmt.Printf("remediation %d verdicts: %d cordons, %d uncordons, %d restarts, %d replaces, %d failures\n",
			res.Counts.Verdicts, res.Counts.Cordons, res.Counts.Uncordons,
			res.Counts.Restarts, res.Counts.Replaces, res.Counts.Failures)
		fmt.Printf("telemetry   %d delivered + %d lost = %d inserts\n",
			res.HubDelivered, res.HubLost, res.Inserts)
		fmt.Printf("flight      %d streams in %d windows: %d stored + %d compacted; %d incident bundles\n",
			res.Recorder.Streams, res.Recorder.Windows, res.Recorder.Stored,
			res.Recorder.Compacted, res.Bundles)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	scenarioPath := flag.String("scenario", "", "scenario JSON file (defaults applied to absent fields)")
	homes := flag.Int("homes", 0, "override: number of homes")
	hosts := flag.Int("hosts", 0, "override: hosts per home")
	shards := flag.Int("shards", 0, "override: shard engines (0 = fleet default)")
	duration := flag.Float64("duration", 0, "override: simulated seconds to run")
	churn := flag.Float64("churn", -1, "override: churn events per home per simulated minute")
	seed := flag.Int64("seed", 0, "override: fleet seed")
	cql := flag.String("cql", "", "extra CQL query to run against the FleetStats view")
	stats := flag.String("stats", "", "serve the streaming telemetry endpoint on this UDP address")
	linger := flag.Duration("linger", 0, "keep serving telemetry this long after the run")
	debugAddr := flag.String("debug-addr", "", "serve pprof/expvar debug HTTP on this address (off when empty)")
	quiet := flag.Bool("q", false, "suppress progress lines")
	chaosRun := flag.Bool("chaos", false, "run the time-compressed chaos soak instead of the scenario")
	chaosDays := flag.Float64("chaos-days", 0, "chaos: simulated days of scheduled faults (default 2)")
	retention := flag.Duration("retention", flight.DefaultRetention, "flight recorder retention (0 disables the recorder)")
	flightWindow := flag.Duration("flight-window", flight.DefaultWindow, "flight recorder time-bucket width")
	incidentDir := flag.String("incident-dir", "", "chaos: dump JSON incident bundles into this directory")
	flag.Parse()

	if *chaosRun {
		runChaosSoak(chaos.SoakConfig{
			Homes:        *homes,
			HostsPerHome: *hosts,
			Shards:       *shards,
			Seed:         *seed,
			SimDays:      *chaosDays,
			IncidentDir:  *incidentDir,
		}, *quiet)
		return
	}

	s := fleet.DefaultScenario()
	if *scenarioPath != "" {
		var err error
		if s, err = fleet.LoadScenario(*scenarioPath); err != nil {
			log.Fatal(err)
		}
	}
	if *homes > 0 {
		s.Homes = *homes
	}
	if *hosts > 0 {
		s.HostsPerHome = *hosts
	}
	if *shards > 0 {
		s.Shards = *shards
	}
	if *duration > 0 {
		s.DurationSec = *duration
	}
	if *churn >= 0 {
		s.ChurnPerMin = *churn
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	if err := s.Validate(); err != nil {
		log.Fatal(err)
	}

	runner, err := fleet.NewRunner(s)
	if err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		runner.Logf = log.Printf
	}
	var statsSrv *telemetry.Server
	var rec *flight.Recorder
	runner.OnFleet = func(f *fleet.Fleet) {
		// OnFleet runs after the homes exist but before the first Sync,
		// so the recorder sees every delta from row zero and its books
		// reconcile exactly against the federation's delivered count.
		if *retention != 0 {
			rec = flight.NewRecorder(flight.RecorderConfig{
				Window:    *flightWindow,
				Retention: *retention,
			})
			rec.Attach(f.Hub())
			if err := rec.AttachView(f.DB(), telemetry.ViewTable); err != nil {
				log.Fatal(err)
			}
		}
		if *stats != "" {
			statsSrv = telemetry.NewServer(f.Telemetry())
			statsSrv.SetTraceSource(f.TraceStats)
			if rec != nil {
				statsSrv.SetReplaySource(rec.Replay)
			}
			if err := statsSrv.Serve(*stats); err != nil {
				log.Fatal(err)
			}
			log.Printf("telemetry endpoint on udp://%s (EXEC | STATS | TRACE | REPLAY | SUBSCRIBE FLEET EVERY ...)", statsSrv.Addr())
		}
		if *debugAddr != "" {
			expvar.Publish("trace", expvar.Func(func() any { return f.TraceStats() }))
			expvar.Publish("telemetry", expvar.Func(func() any {
				return map[string]any{
					"federation": f.Hub().Stats(),
					"totals":     f.Telemetry().Totals(),
					"shards":     f.ShardStats(),
				}
			}))
			if rec != nil {
				expvar.Publish("flight", expvar.Func(func() any { return rec.Stats() }))
			}
			go func() {
				// DefaultServeMux carries the pprof and expvar handlers.
				log.Printf("debug endpoint on http://%s/debug/pprof/ and /debug/vars", *debugAddr)
				log.Fatal(http.ListenAndServe(*debugAddr, nil))
			}()
		}
	}

	rep, err := runner.Run()
	if err != nil {
		log.Fatal(err)
	}
	defer runner.Close()

	fmt.Printf("scenario  %s\n", rep.Scenario)
	fmt.Printf("homes     %d (%d shards)\n", rep.Homes, rep.Shards)
	fmt.Printf("steps     %d (%.1fs simulated in %v wall)\n", rep.Steps, rep.SimSeconds, rep.Wall.Round(1_000_000))
	fmt.Printf("churn     %d host replacements\n", rep.Churned)
	fmt.Printf("folds     %d\n", rep.Totals.Folds)
	fmt.Printf("hosts     %d across the fleet\n", rep.Totals.Hosts)
	fmt.Printf("flows     %d observations, %d packets, %d bytes\n",
		rep.Totals.Flows, rep.Totals.Packets, rep.Totals.Bytes)
	fmt.Printf("links     %d observations (%d rows lost to ring wrap)\n", rep.Totals.Links, rep.Totals.Lost)
	// Per-shard engine reports, reconciled against the federated view:
	// every home is hosted by exactly one shard and the shard hubs' books
	// must sum to the global accounting. A mismatch is a federation bug —
	// fail loudly rather than print a report that disagrees with itself.
	fl := runner.Fleet()
	var sumHomes int
	var sumDelivered, sumLost, sumRows uint64
	fmt.Println("shards (engine-local books):")
	for _, ss := range fl.ShardStats() {
		fmt.Printf("  shard %-3d %4d homes  %10d delivered + %6d lost  %10d rows folded\n",
			ss.Shard, ss.Homes, ss.Hub.Delivered, ss.Hub.Lost, ss.Totals.Rows)
		sumHomes += ss.Homes
		sumDelivered += ss.Hub.Delivered
		sumLost += ss.Hub.Lost
		sumRows += ss.Totals.Rows
	}
	fedStats := fl.Hub().Stats()
	if sumHomes != fl.Size() || sumDelivered != fedStats.Delivered || sumLost != fedStats.Lost ||
		sumRows != fl.Telemetry().Totals().Rows {
		fmt.Fprintf(os.Stderr,
			"error: per-shard reports disagree with the global view: homes %d/%d, delivered %d/%d, lost %d/%d, rows %d/%d\n",
			sumHomes, fl.Size(), sumDelivered, fedStats.Delivered,
			sumLost, fedStats.Lost, sumRows, fl.Telemetry().Totals().Rows)
		os.Exit(1)
	}
	// Flight recorder books, reconciled the same way: every row the
	// federation delivered (plus every view commit) must be stored in a
	// retention window or accounted as compacted — nothing vanishes.
	if rec != nil {
		fs := rec.Stats()
		fmt.Printf("flight    %d streams in %d windows: %d delivered + %d view rows = %d stored + %d compacted (%d lost)\n",
			fs.Streams, fs.Windows, fs.Delivered, fs.ViewRows, fs.Stored, fs.Compacted, fs.Lost)
		if fs.Delivered+fs.ViewRows != fs.Stored+fs.Compacted ||
			fs.Delivered != fedStats.Delivered || fs.Lost != fedStats.Lost {
			fmt.Fprintf(os.Stderr,
				"error: flight recorder books disagree with the federation: delivered %d/%d, lost %d/%d, stored+compacted %d/%d\n",
				fs.Delivered, fedStats.Delivered, fs.Lost, fedStats.Lost,
				fs.Stored+fs.Compacted, fs.Delivered+fs.ViewRows)
			os.Exit(1)
		}
	}
	if tot := runner.Fleet().Telemetry().Totals(); tot.PerfRows > 0 {
		lossPct := 100 * float64(tot.LostPkts) / float64(tot.TxPkts)
		fmt.Printf("flowperf  %d rows: %d tx pkts, %d lost (%.2f%%)",
			tot.PerfRows, tot.TxPkts, tot.LostPkts, lossPct)
		if tot.Installs > 0 {
			fmt.Printf(", mean rule install %dµs over %d flows",
				tot.InstallUSSum/tot.Installs, tot.Installs)
		}
		fmt.Println()
	}
	if stats := runner.Fleet().TraceStats(); len(stats) > 0 && stats[0].Count > 0 {
		fmt.Println("trace (per-stage latency, fleet-merged):")
		for _, st := range stats {
			fmt.Printf("  %-17s %8d spans  p50 %7.1fµs  p99 %7.1fµs  max %7.1fµs\n",
				st.Stage, st.Count, st.P50NS/1e3, st.P99NS/1e3, float64(st.MaxNS)/1e3)
		}
	}
	if len(rep.TopHomes) > 0 {
		fmt.Println("top homes by folded bytes:")
		for _, h := range rep.TopHomes {
			fmt.Printf("  home-%-4d %10d bytes  %6d flow observations\n", h.Home, h.Bytes, h.Flows)
		}
	}
	if *cql != "" {
		res, err := runner.Fleet().DB().Query(*cql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Text())
	}
	if rep.Totals.Flows == 0 {
		fmt.Fprintln(os.Stderr, "warning: no flows folded — scenario too short?")
		os.Exit(1)
	}
	if statsSrv != nil {
		tel := runner.Fleet().Telemetry()
		r := tel.FleetRate()
		fmt.Printf("telemetry  %s  (fleet rate %.0f B/s, %.1f pkt/s at shutdown)\n",
			statsSrv.Addr(), r.BytesPerSec, r.PacketsPerSec)
		if *linger > 0 {
			log.Printf("lingering %v for telemetry clients...", *linger)
			time.Sleep(*linger)
		}
		_ = statsSrv.Close()
	}
}
