// Command hwdbc is a CQL client for the Homework Database's UDP RPC.
//
//	hwdbc -addr 127.0.0.1:7654 'SELECT * FROM Flows [ROWS 10]'
//	hwdbc -addr 127.0.0.1:7654 'SELECT * FROM FleetStats AS OF @1699999000000000000'
//	hwdbc -addr 127.0.0.1:7654 'SELECT home, flows FROM FleetStats HISTORY @1699999000000000000 @1699999900000000000'
//	hwdbc -addr 127.0.0.1:7654 -subscribe 'SUBSCRIBE SELECT mac, rssi FROM Links [NOW] EVERY 1 SECONDS'
//
// AS OF / HISTORY are time travel: against a server whose database has a
// flight recorder attached (hwfleetd's telemetry endpoint) they read the
// recorder's retained windows; otherwise they fall back to the live ring.
// With -subscribe the client prints every push until interrupted.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/hwdb"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7654", "hwdb server address")
	subscribe := flag.Bool("subscribe", false, "treat the statement as a subscription and stream pushes")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: hwdbc [-addr host:port] [-subscribe] '<CQL>'")
		os.Exit(2)
	}
	stmt := strings.Join(flag.Args(), " ")

	cli, err := hwdb.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	if *subscribe {
		id, err := cli.Subscribe(stmt)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("subscription %d active; ^C to stop", id)
		for {
			push, err := cli.WaitPush(time.Minute)
			if err != nil {
				// Idle subscriptions are silent by design (the server
				// skips pushes when nothing changed), so a wait timeout
				// is normal: keep listening. Anything else is fatal.
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					continue
				}
				log.Fatal(err)
			}
			fmt.Print(push.Result.Text())
			fmt.Println("--")
		}
	}

	res, err := cli.Exec(stmt)
	if err != nil {
		log.Fatal(err)
	}
	if res == nil {
		fmt.Println("ok")
		return
	}
	fmt.Print(res.Text())
}
