// Command hwlogger demonstrates the paper's persistence pattern: hwdb
// itself is ephemeral, so "applications subscribe to query results,
// persisting output as desired". hwlogger subscribes to a CQL query over
// the UDP RPC and appends every push to a TSV file.
//
//	hwlogger -addr 127.0.0.1:7654 -out flows.tsv \
//	    'SUBSCRIBE SELECT mac, daddr, dport, sum(bytes) AS bytes FROM Flows [RANGE 5 SECONDS] GROUP BY mac, daddr, dport EVERY 5 SECONDS'
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/hwdb"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7654", "hwdb server address")
	out := flag.String("out", "hwdb.tsv", "output file (TSV, appended)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: hwlogger [-addr host:port] [-out file] 'SUBSCRIBE <select> EVERY <n> <unit>'")
		os.Exit(2)
	}
	stmt := strings.Join(flag.Args(), " ")

	cli, err := hwdb.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	id, err := cli.Subscribe(stmt)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	log.Printf("subscription %d -> %s; ^C to stop", id, *out)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	for {
		select {
		case <-sig:
			_ = cli.Unsubscribe(id)
			return
		default:
		}
		push, err := cli.WaitPush(30 * time.Second)
		if err != nil {
			continue // timeout: poll the signal channel again
		}
		stamp := time.Now().UTC().Format(time.RFC3339)
		for _, row := range push.Result.Rows {
			cells := make([]string, 0, len(row)+1)
			cells = append(cells, stamp)
			for _, v := range row {
				cells = append(cells, v.Text())
			}
			if _, err := fmt.Fprintln(f, strings.Join(cells, "\t")); err != nil {
				log.Fatal(err)
			}
		}
	}
}
