// Command hwrouterd runs the full Homework router with a simulated home
// network attached: six devices with a realistic traffic mix, the hwdb
// UDP RPC for measurement subscribers, and the REST control API.
//
//	hwrouterd [-api 127.0.0.1:8077] [-duration 30s] [-bw] [-transport tcp]
//	          [-debug-addr 127.0.0.1:6060]
//
// With -bw it prints the per-device bandwidth view once a second (the
// Figure-1 display); otherwise it logs the platform's endpoints and idles
// until the duration elapses (0 = forever). The control plane runs over
// loopback TCP by default — hwrouterd is the cross-process deployment
// shape — but -transport inprocess selects the fleet's zero-copy channel
// transport instead.
//
// With -debug-addr (off by default), an HTTP debug endpoint serves
// net/http/pprof profiles under /debug/pprof/ and expvar counters under
// /debug/vars, with the router's punt-lifecycle trace summary published
// as the "trace" expvar. The same summary is always available through
// `hwctl trace` (GET /api/trace).
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/ui"
)

func main() {
	apiAddr := flag.String("api", "127.0.0.1:0", "control API listen address")
	duration := flag.Duration("duration", 30*time.Second, "how long to run (0 = forever)")
	showBW := flag.Bool("bw", false, "print the bandwidth view every second")
	transport := flag.String("transport", string(core.TransportTCP),
		"controller↔datapath transport: tcp or inprocess")
	debugAddr := flag.String("debug-addr", "", "serve pprof/expvar debug HTTP on this address (off when empty)")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.AutoPermit = true
	cfg.Transport = core.TransportKind(*transport)
	rt, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Stop()
	if err := rt.API.ListenAndServe(*apiAddr); err != nil {
		log.Fatal(err)
	}
	if *debugAddr != "" {
		expvar.Publish("trace", expvar.Func(func() any { return rt.Tracer.Stats() }))
		go func() {
			// DefaultServeMux carries the pprof and expvar handlers.
			log.Printf("debug endpoint on http://%s/debug/pprof/ and /debug/vars", *debugAddr)
			log.Fatal(http.ListenAndServe(*debugAddr, nil))
		}()
	}

	devices := []struct {
		name     string
		mac      string
		wireless bool
		pos      netsim.Pos
		app      *netsim.App
	}{
		{"toms-mac-air", "02:aa:00:00:00:01", true, netsim.Pos{X: 3}, netsim.NewApp(netsim.AppVideo, "youtube.com", 120_000)},
		{"kids-tablet", "02:aa:00:00:00:02", true, netsim.Pos{X: 6}, netsim.NewApp(netsim.AppWeb, "facebook.com", 40_000)},
		{"xbox", "02:aa:00:00:00:03", false, netsim.Pos{}, netsim.NewApp(netsim.AppP2P, "tracker.example", 80_000)},
		{"kitchen-radio", "02:aa:00:00:00:04", true, netsim.Pos{X: 8, Y: 3}, netsim.NewApp(netsim.AppVoIP, "voip.example.com", 12_000)},
		{"thermostat", "02:aa:00:00:00:05", true, netsim.Pos{X: 10}, netsim.NewApp(netsim.AppIoT, "iot.example.com", 1_000)},
		{"work-laptop", "02:aa:00:00:00:06", false, netsim.Pos{}, netsim.NewApp(netsim.AppWeb, "bbc.co.uk", 60_000)},
	}
	for _, d := range devices {
		h, err := rt.AddHost(d.name, d.mac, d.wireless, d.pos)
		if err != nil {
			log.Fatal(err)
		}
		if err := rt.JoinHost(h); err != nil {
			log.Fatal(err)
		}
		h.AddApp(d.app)
		log.Printf("joined %-14s %s -> %s", d.name, d.mac, h.IP())
	}

	log.Printf("control transport: %s", cfg.Transport)
	log.Printf("control API: http://%s/api/status", rt.API.Addr())
	log.Printf("hwdb RPC:    %s (try: hwdbc -addr %s 'SELECT * FROM Flows [ROWS 10]')",
		rt.HwdbServer.Addr(), rt.HwdbServer.Addr())

	view := ui.NewBandwidthView(rt.DB)
	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		// Advance a second of traffic in quarter-second steps.
		for i := 0; i < 4; i++ {
			rt.Net.Step(0.25)
			if err := rt.Settle(); err != nil {
				log.Fatal(err)
			}
		}
		rt.PollMeasure()
		if *showBW {
			out, err := view.Render()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(out)
		}
		<-tick.C
		if !deadline.IsZero() && time.Now().After(deadline) {
			log.Print("done")
			os.Exit(0)
		}
	}
}
