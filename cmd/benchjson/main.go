// Command benchjson converts `go test -bench` text output (stdin) into a
// stable JSON document (stdout) recording each benchmark's iteration
// count and every reported metric (ns/op, B/op, allocs/op, and custom
// b.ReportMetric units such as home-steps/s). `make bench` pipes the
// scenario-matrix run through it to produce the committed BENCH_<n>.json
// perf-trajectory records that CI gates on.
//
//	go test -run '^$' -bench . . | benchjson > BENCH_9.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// benchmark is one parsed result line.
type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var doc document
	for sc.Scan() {
		if bm, ok := parseLine(sc.Text()); ok {
			doc.Benchmarks = append(doc.Benchmarks, bm)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine reads one "BenchmarkName-P  N  <value unit>..." result line.
// Anything else (headers, PASS/ok trailers, log output) is skipped.
func parseLine(line string) (benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || iters <= 0 {
		return benchmark{}, false
	}
	bm := benchmark{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		bm.Metrics[fields[i+1]] = v
	}
	return bm, true
}
