// Package dnsproxy implements the Homework router's DNS proxy as a NOX
// component. Per the paper, it "intercepts outgoing DNS requests,
// performing reverse lookups on flows not matching previously requested
// names, to ensure that upstream communication is only allowed between
// permitted devices and sites."
//
// Mechanically: a punt rule captures every UDP/53 packet. Queries from
// devices are checked against the policy engine's per-device allowed-site
// set; denied names are answered NXDOMAIN directly, permitted names are
// forwarded to the upstream resolver and, when the answer returns, the
// name-to-address bindings are recorded per device. The forwarding module
// consults that record before admitting a new flow; an unknown destination
// triggers a reverse (PTR) lookup whose result is checked against the same
// policy.
//
// Concurrency: the pending-query and per-device name tables are
// mutex-guarded. Packet-in handling and FlowPermitted (called by the
// forwarder mid-dispatch) run on the controller's dispatch goroutine and
// never block on the network — a reverse lookup is fired asynchronously
// and the flow is refused until the answer arrives — while Stats and
// policy reads may come from any goroutine.
package dnsproxy

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/nox"
	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/policy"
)

// Config parameterizes the proxy.
type Config struct {
	// RouterIP/RouterMAC identify the router; queries are addressed to
	// it (it is the DNS server in every lease).
	RouterIP  packet.IP4
	RouterMAC packet.MAC
	// UpstreamDNS is the resolver queries are forwarded to.
	UpstreamDNS packet.IP4
	// UpstreamPort is the datapath port leading to the ISP.
	UpstreamPort uint16
	// UpstreamMAC is the next hop on the upstream side.
	UpstreamMAC packet.MAC
	// Policy answers per-device site restrictions.
	Policy *policy.Engine
	// Clock stamps cache entries.
	Clock clock.Clock
	// CacheTTL bounds how long name bindings are honoured (default 10m).
	CacheTTL time.Duration
}

// binding records that a device resolved a name to an address.
type binding struct {
	name string
	at   time.Time
}

// pendingQuery tracks a forwarded query awaiting the upstream answer.
type pendingQuery struct {
	clientMAC  packet.MAC
	clientIP   packet.IP4
	clientPort uint16
	clientID   uint16
	inPort     uint16
	name       string
	qtype      uint16
	reverse    bool // internal PTR lookup, not a client query
}

// Stats counts proxy activity for the evaluation harness.
type Stats struct {
	Queries   uint64
	Forwarded uint64
	Denied    uint64
	Answered  uint64
	ReverseLk uint64
}

// Proxy is the DNS proxy NOX component.
type Proxy struct {
	cfg Config

	mu       sync.Mutex
	pending  map[uint16]pendingQuery // proxy query id -> origin
	bindings map[packet.MAC]map[packet.IP4]binding
	revCache map[packet.IP4]binding // address -> name (reverse lookups)
	nextID   uint16

	queries, forwarded, denied, answered, reverse atomic.Uint64
}

// New creates the component.
func New(cfg Config) *Proxy {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.CacheTTL == 0 {
		cfg.CacheTTL = 10 * time.Minute
	}
	return &Proxy{
		cfg:      cfg,
		pending:  make(map[uint16]pendingQuery),
		bindings: make(map[packet.MAC]map[packet.IP4]binding),
		revCache: make(map[packet.IP4]binding),
		nextID:   1,
	}
}

// Name implements nox.Component.
func (p *Proxy) Name() string { return "dns-proxy" }

// Configure implements nox.Component: punt rules for DNS in both
// directions, and the packet-in handler.
func (p *Proxy) Configure(ctl *nox.Controller) error {
	ctl.OnJoin(func(ev *nox.JoinEvent) {
		toDNS := openflow.MatchAll()
		toDNS.Wildcards &^= openflow.FWDLType | openflow.FWNWProto | openflow.FWTPDst
		toDNS.DLType = packet.EtherTypeIPv4
		toDNS.NWProto = uint8(packet.ProtoUDP)
		toDNS.TPDst = packet.DNSPort
		_ = ev.Switch.InstallFlow(toDNS, PriorityPunt, 0, 0,
			[]openflow.Action{&openflow.ActionOutput{Port: openflow.PortController, MaxLen: 0xffff}})

		fromDNS := openflow.MatchAll()
		fromDNS.Wildcards &^= openflow.FWDLType | openflow.FWNWProto | openflow.FWTPSrc
		fromDNS.DLType = packet.EtherTypeIPv4
		fromDNS.NWProto = uint8(packet.ProtoUDP)
		fromDNS.TPSrc = packet.DNSPort
		_ = ev.Switch.InstallFlow(fromDNS, PriorityPunt, 0, 0,
			[]openflow.Action{&openflow.ActionOutput{Port: openflow.PortController, MaxLen: 0xffff}})
	})
	ctl.OnPacketIn(p.handlePacketIn)
	return nil
}

// PriorityPunt mirrors dhcp.PriorityPunt without importing it.
const PriorityPunt uint16 = 1000

// Stats returns a snapshot of proxy counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Queries:   p.queries.Load(),
		Forwarded: p.forwarded.Load(),
		Denied:    p.denied.Load(),
		Answered:  p.answered.Load(),
		ReverseLk: p.reverse.Load(),
	}
}

func (p *Proxy) handlePacketIn(ev *nox.PacketInEvent) nox.Disposition {
	d := ev.Decoded
	if !d.HasUDP {
		return nox.Continue
	}
	switch {
	case d.UDP.DstPort == packet.DNSPort:
		p.handleQuery(ev)
		return nox.Stop
	case d.UDP.SrcPort == packet.DNSPort:
		p.handleResponse(ev)
		return nox.Stop
	}
	return nox.Continue
}

// handleQuery processes a device's outgoing DNS query.
func (p *Proxy) handleQuery(ev *nox.PacketInEvent) {
	d := ev.Decoded
	var q packet.DNS
	if err := q.DecodeFromBytes(d.UDP.Payload); err != nil || q.Response || len(q.Questions) == 0 {
		return
	}
	p.queries.Add(1)
	name := q.Questions[0].Name

	if p.cfg.Policy != nil {
		access := p.cfg.Policy.AccessFor(d.Eth.Src)
		if !access.SiteAllowed(name) {
			p.denied.Add(1)
			p.refuse(ev, &q)
			return
		}
	}

	// Forward upstream under a proxy-owned query id.
	p.mu.Lock()
	id := p.nextID
	p.nextID++
	if p.nextID == 0 {
		p.nextID = 1
	}
	p.pending[id] = pendingQuery{
		clientMAC: d.Eth.Src, clientIP: d.IP.Src, clientPort: d.UDP.SrcPort,
		clientID: q.ID, inPort: ev.Msg.InPort,
		name: name, qtype: q.Questions[0].Type,
	}
	p.mu.Unlock()

	fwd := q
	fwd.ID = id
	raw, err := fwd.Bytes()
	if err != nil {
		return
	}
	p.forwarded.Add(1)
	p.sendUpstream(ev.Switch, raw)
}

// sendUpstream emits a query from the router to the upstream resolver.
func (p *Proxy) sendUpstream(sw *nox.Switch, dnsPayload []byte) {
	frame := packet.NewUDPFrame(p.cfg.RouterMAC, p.cfg.UpstreamMAC,
		p.cfg.RouterIP, p.cfg.UpstreamDNS, proxyPort, packet.DNSPort, dnsPayload)
	_ = sw.SendPacket(frame.Bytes(), openflow.PortNone,
		&openflow.ActionOutput{Port: p.cfg.UpstreamPort})
}

// proxyPort is the proxy's source port for upstream queries.
const proxyPort uint16 = 5533

// handleResponse processes an upstream answer.
func (p *Proxy) handleResponse(ev *nox.PacketInEvent) {
	d := ev.Decoded
	var r packet.DNS
	if err := r.DecodeFromBytes(d.UDP.Payload); err != nil || !r.Response {
		return
	}
	p.mu.Lock()
	pq, ok := p.pending[r.ID]
	if ok {
		delete(p.pending, r.ID)
	}
	p.mu.Unlock()
	if !ok {
		return
	}
	now := p.cfg.Clock.Now()

	if pq.reverse {
		p.reverse.Add(1)
		for _, rr := range r.Answers {
			if rr.Type == packet.DNSTypePTR && rr.Target != "" {
				p.mu.Lock()
				if ip, okk := packet.ParseReverseName(rr.Name); okk {
					p.revCache[ip] = binding{name: rr.Target, at: now}
				}
				p.mu.Unlock()
			}
		}
		return
	}

	// Record the device's name->address bindings.
	p.mu.Lock()
	m := p.bindings[pq.clientMAC]
	if m == nil {
		m = make(map[packet.IP4]binding)
		p.bindings[pq.clientMAC] = m
	}
	for _, rr := range r.Answers {
		if ip, isA := rr.A(); isA {
			m[ip] = binding{name: pq.name, at: now}
			p.revCache[ip] = binding{name: pq.name, at: now}
		}
	}
	p.mu.Unlock()

	// Relay the answer to the client under its original query id.
	reply := r
	reply.ID = pq.clientID
	raw, err := reply.Bytes()
	if err != nil {
		return
	}
	p.answered.Add(1)
	frame := packet.NewUDPFrame(p.cfg.RouterMAC, pq.clientMAC,
		p.cfg.RouterIP, pq.clientIP, packet.DNSPort, pq.clientPort, raw)
	_ = ev.Switch.SendPacket(frame.Bytes(), openflow.PortNone,
		&openflow.ActionOutput{Port: pq.inPort})
}

// refuse answers a query with NXDOMAIN (policy denial).
func (p *Proxy) refuse(ev *nox.PacketInEvent, q *packet.DNS) {
	d := ev.Decoded
	resp := packet.DNS{
		ID: q.ID, Response: true, RD: q.RD, RA: true,
		Rcode: packet.DNSRcodeNXDomain, Questions: q.Questions,
	}
	raw, err := resp.Bytes()
	if err != nil {
		return
	}
	frame := packet.NewUDPFrame(p.cfg.RouterMAC, d.Eth.Src,
		p.cfg.RouterIP, d.IP.Src, packet.DNSPort, d.UDP.SrcPort, raw)
	_ = ev.Switch.SendPacket(frame.Bytes(), openflow.PortNone,
		&openflow.ActionOutput{Port: ev.Msg.InPort})
}

// NameFor reports the name a device previously resolved to reach dst, or
// any cached reverse mapping, with ok=false when nothing is known.
func (p *Proxy) NameFor(mac packet.MAC, dst packet.IP4) (string, bool) {
	now := p.cfg.Clock.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	if m := p.bindings[mac]; m != nil {
		if b, ok := m[dst]; ok && now.Sub(b.at) <= p.cfg.CacheTTL {
			return b.name, true
		}
	}
	if b, ok := p.revCache[dst]; ok && now.Sub(b.at) <= p.cfg.CacheTTL {
		return b.name, true
	}
	return "", false
}

// FlowPermitted decides whether a device may open a flow to dst: the check
// the paper describes. A flow to an address matching a previously
// requested (and still permitted) name is allowed; an unknown address
// triggers a reverse lookup and is refused until the name is known and
// permitted. Devices without site restrictions are always permitted.
func (p *Proxy) FlowPermitted(sw *nox.Switch, mac packet.MAC, dst packet.IP4) bool {
	if p.cfg.Policy == nil {
		return true
	}
	access := p.cfg.Policy.AccessFor(mac)
	if !access.NetworkAllowed {
		return false
	}
	if access.AllowedSites == nil {
		return true
	}
	name, known := p.NameFor(mac, dst)
	if !known {
		p.reverseLookup(sw, dst)
		return false
	}
	return access.SiteAllowed(name)
}

// reverseLookup launches a PTR query for dst upstream.
func (p *Proxy) reverseLookup(sw *nox.Switch, dst packet.IP4) {
	if sw == nil {
		return
	}
	p.mu.Lock()
	id := p.nextID
	p.nextID++
	if p.nextID == 0 {
		p.nextID = 1
	}
	p.pending[id] = pendingQuery{reverse: true}
	p.mu.Unlock()
	q := packet.NewDNSQuery(id, packet.ReverseName(dst), packet.DNSTypePTR)
	raw, err := q.Bytes()
	if err != nil {
		return
	}
	p.sendUpstream(sw, raw)
}

// Bindings returns a device's recorded name bindings (for the control API
// and tests).
func (p *Proxy) Bindings(mac packet.MAC) map[packet.IP4]string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[packet.IP4]string)
	for ip, b := range p.bindings[mac] {
		out[ip] = b.name
	}
	return out
}
