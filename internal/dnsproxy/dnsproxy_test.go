package dnsproxy

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/packet"
	"repro/internal/policy"
)

func testProxy(eng *policy.Engine, clk clock.Clock) *Proxy {
	return New(Config{
		RouterIP:    packet.MustIP4("192.168.1.1"),
		RouterMAC:   packet.MustMAC("02:01:00:00:00:01"),
		UpstreamDNS: packet.MustIP4("8.8.8.8"),
		UpstreamMAC: packet.MustMAC("02:ee:00:00:00:01"),
		Policy:      eng, Clock: clk,
		CacheTTL: time.Minute,
	})
}

var (
	devMAC = packet.MustMAC("02:aa:00:00:00:01")
	fbIP   = packet.MustIP4("157.240.1.35")
)

func TestNameForRecordsBindings(t *testing.T) {
	clk := clock.NewSimulated()
	p := testProxy(nil, clk)
	p.mu.Lock()
	p.bindings[devMAC] = map[packet.IP4]binding{fbIP: {name: "facebook.com", at: clk.Now()}}
	p.mu.Unlock()

	name, ok := p.NameFor(devMAC, fbIP)
	if !ok || name != "facebook.com" {
		t.Errorf("NameFor = %q, %v", name, ok)
	}
	// Another device can still use the shared reverse cache.
	p.mu.Lock()
	p.revCache[fbIP] = binding{name: "facebook.com", at: clk.Now()}
	p.mu.Unlock()
	other := packet.MustMAC("02:aa:00:00:00:02")
	if name, ok := p.NameFor(other, fbIP); !ok || name != "facebook.com" {
		t.Errorf("reverse cache miss: %q, %v", name, ok)
	}
}

func TestNameForExpires(t *testing.T) {
	clk := clock.NewSimulated()
	p := testProxy(nil, clk)
	p.mu.Lock()
	p.bindings[devMAC] = map[packet.IP4]binding{fbIP: {name: "facebook.com", at: clk.Now()}}
	p.mu.Unlock()
	clk.Advance(2 * time.Minute) // past CacheTTL
	if _, ok := p.NameFor(devMAC, fbIP); ok {
		t.Error("stale binding honoured")
	}
}

func TestFlowPermittedUnrestricted(t *testing.T) {
	clk := clock.NewSimulated()
	eng := policy.NewEngine(clk)
	p := testProxy(eng, clk)
	// No policy: everything permitted.
	if !p.FlowPermitted(nil, devMAC, fbIP) {
		t.Error("unrestricted device denied")
	}
}

func TestFlowPermittedSiteRestriction(t *testing.T) {
	clk := clock.NewSimulated()
	eng := policy.NewEngine(clk)
	_ = eng.Install(&policy.Policy{
		Name: "kids", Devices: []string{devMAC.String()},
		AllowedSites: []string{"facebook.com"},
	})
	p := testProxy(eng, clk)

	// Unknown destination: refused (and a reverse lookup would launch if
	// a switch handle were available).
	if p.FlowPermitted(nil, devMAC, fbIP) {
		t.Error("unknown destination permitted")
	}
	// After the device resolves facebook.com, the flow is permitted.
	p.mu.Lock()
	p.bindings[devMAC] = map[packet.IP4]binding{fbIP: {name: "facebook.com", at: clk.Now()}}
	p.mu.Unlock()
	if !p.FlowPermitted(nil, devMAC, fbIP) {
		t.Error("resolved destination denied")
	}
	// A flow to a name outside the allowed set is denied even if known.
	ytIP := packet.MustIP4("142.250.180.14")
	p.mu.Lock()
	p.revCache[ytIP] = binding{name: "youtube.com", at: clk.Now()}
	p.mu.Unlock()
	if p.FlowPermitted(nil, devMAC, ytIP) {
		t.Error("non-allowed site permitted")
	}
}

func TestFlowPermittedNetworkBlocked(t *testing.T) {
	clk := clock.NewSimulated()
	eng := policy.NewEngine(clk)
	_ = eng.Install(&policy.Policy{
		Name: "grounded", Devices: []string{devMAC.String()},
		AllowedSites: []string{"facebook.com"},
		RequireKey:   "key-not-inserted",
	})
	p := testProxy(eng, clk)
	p.mu.Lock()
	p.bindings[devMAC] = map[packet.IP4]binding{fbIP: {name: "facebook.com", at: clk.Now()}}
	p.mu.Unlock()
	if p.FlowPermitted(nil, devMAC, fbIP) {
		t.Error("network-blocked device permitted")
	}
}

func TestBindingsSnapshot(t *testing.T) {
	clk := clock.NewSimulated()
	p := testProxy(nil, clk)
	p.mu.Lock()
	p.bindings[devMAC] = map[packet.IP4]binding{fbIP: {name: "facebook.com", at: clk.Now()}}
	p.mu.Unlock()
	b := p.Bindings(devMAC)
	if len(b) != 1 || b[fbIP] != "facebook.com" {
		t.Errorf("bindings = %v", b)
	}
}
