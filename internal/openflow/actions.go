package openflow

import (
	"encoding/binary"
	"fmt"

	"repro/internal/packet"
)

// Action type codes (ofp_action_type).
const (
	ActTypeOutput     uint16 = 0
	ActTypeSetVLANVID uint16 = 1
	ActTypeSetVLANPCP uint16 = 2
	ActTypeStripVLAN  uint16 = 3
	ActTypeSetDLSrc   uint16 = 4
	ActTypeSetDLDst   uint16 = 5
	ActTypeSetNWSrc   uint16 = 6
	ActTypeSetNWDst   uint16 = 7
	ActTypeSetNWTOS   uint16 = 8
	ActTypeSetTPSrc   uint16 = 9
	ActTypeSetTPDst   uint16 = 10
	ActTypeEnqueue    uint16 = 11
	ActTypeVendor     uint16 = 0xffff
)

// Reserved port numbers (ofp_port).
const (
	PortMax        uint16 = 0xff00
	PortInPort     uint16 = 0xfff8
	PortTable      uint16 = 0xfff9
	PortNormal     uint16 = 0xfffa
	PortFlood      uint16 = 0xfffb
	PortAll        uint16 = 0xfffc
	PortController uint16 = 0xfffd
	PortLocal      uint16 = 0xfffe
	PortNone       uint16 = 0xffff
)

// Action is one element of a flow entry's or packet-out's action list. The
// four basic kinds the paper describes — drop (empty list), forward, send to
// controller, and NORMAL processing — are all expressed via ActionOutput;
// the Set* actions implement "packets can be modified as they are
// forwarded".
type Action interface {
	actType() uint16
	encode(b []byte) []byte
	decode(b []byte) error
	String() string
}

// ActionOutput forwards the packet to a port (possibly a reserved one).
type ActionOutput struct {
	Port   uint16
	MaxLen uint16 // bytes to send when Port is PortController
}

func (a *ActionOutput) actType() uint16 { return ActTypeOutput }
func (a *ActionOutput) encode(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, a.Port)
	return binary.BigEndian.AppendUint16(b, a.MaxLen)
}
func (a *ActionOutput) decode(b []byte) error {
	if len(b) < 4 {
		return ErrTruncated
	}
	a.Port = binary.BigEndian.Uint16(b[0:2])
	a.MaxLen = binary.BigEndian.Uint16(b[2:4])
	return nil
}

// String names reserved ports symbolically.
func (a *ActionOutput) String() string {
	switch a.Port {
	case PortController:
		return "output:CONTROLLER"
	case PortNormal:
		return "output:NORMAL"
	case PortFlood:
		return "output:FLOOD"
	case PortAll:
		return "output:ALL"
	case PortInPort:
		return "output:IN_PORT"
	case PortLocal:
		return "output:LOCAL"
	}
	return fmt.Sprintf("output:%d", a.Port)
}

// ActionSetVLANVID rewrites the VLAN id, tagging if needed.
type ActionSetVLANVID struct{ VID uint16 }

func (a *ActionSetVLANVID) actType() uint16 { return ActTypeSetVLANVID }
func (a *ActionSetVLANVID) encode(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, a.VID)
	return append(b, 0, 0)
}
func (a *ActionSetVLANVID) decode(b []byte) error {
	if len(b) < 2 {
		return ErrTruncated
	}
	a.VID = binary.BigEndian.Uint16(b[0:2])
	return nil
}
func (a *ActionSetVLANVID) String() string { return fmt.Sprintf("set_vlan_vid:%d", a.VID) }

// ActionSetVLANPCP rewrites the VLAN priority.
type ActionSetVLANPCP struct{ PCP uint8 }

func (a *ActionSetVLANPCP) actType() uint16 { return ActTypeSetVLANPCP }
func (a *ActionSetVLANPCP) encode(b []byte) []byte {
	return append(b, a.PCP, 0, 0, 0)
}
func (a *ActionSetVLANPCP) decode(b []byte) error {
	if len(b) < 1 {
		return ErrTruncated
	}
	a.PCP = b[0]
	return nil
}
func (a *ActionSetVLANPCP) String() string { return fmt.Sprintf("set_vlan_pcp:%d", a.PCP) }

// ActionStripVLAN removes any VLAN tag.
type ActionStripVLAN struct{}

func (a *ActionStripVLAN) actType() uint16        { return ActTypeStripVLAN }
func (a *ActionStripVLAN) encode(b []byte) []byte { return append(b, 0, 0, 0, 0) }
func (a *ActionStripVLAN) decode([]byte) error    { return nil }
func (a *ActionStripVLAN) String() string         { return "strip_vlan" }

// ActionSetDLSrc rewrites the Ethernet source address.
type ActionSetDLSrc struct{ Addr packet.MAC }

func (a *ActionSetDLSrc) actType() uint16 { return ActTypeSetDLSrc }
func (a *ActionSetDLSrc) encode(b []byte) []byte {
	b = append(b, a.Addr[:]...)
	return append(b, make([]byte, 6)...)
}
func (a *ActionSetDLSrc) decode(b []byte) error {
	if len(b) < 6 {
		return ErrTruncated
	}
	copy(a.Addr[:], b[:6])
	return nil
}
func (a *ActionSetDLSrc) String() string { return "set_dl_src:" + a.Addr.String() }

// ActionSetDLDst rewrites the Ethernet destination address.
type ActionSetDLDst struct{ Addr packet.MAC }

func (a *ActionSetDLDst) actType() uint16 { return ActTypeSetDLDst }
func (a *ActionSetDLDst) encode(b []byte) []byte {
	b = append(b, a.Addr[:]...)
	return append(b, make([]byte, 6)...)
}
func (a *ActionSetDLDst) decode(b []byte) error {
	if len(b) < 6 {
		return ErrTruncated
	}
	copy(a.Addr[:], b[:6])
	return nil
}
func (a *ActionSetDLDst) String() string { return "set_dl_dst:" + a.Addr.String() }

// ActionSetNWSrc rewrites the IPv4 source address.
type ActionSetNWSrc struct{ Addr packet.IP4 }

func (a *ActionSetNWSrc) actType() uint16        { return ActTypeSetNWSrc }
func (a *ActionSetNWSrc) encode(b []byte) []byte { return append(b, a.Addr[:]...) }
func (a *ActionSetNWSrc) decode(b []byte) error {
	if len(b) < 4 {
		return ErrTruncated
	}
	copy(a.Addr[:], b[:4])
	return nil
}
func (a *ActionSetNWSrc) String() string { return "set_nw_src:" + a.Addr.String() }

// ActionSetNWDst rewrites the IPv4 destination address.
type ActionSetNWDst struct{ Addr packet.IP4 }

func (a *ActionSetNWDst) actType() uint16        { return ActTypeSetNWDst }
func (a *ActionSetNWDst) encode(b []byte) []byte { return append(b, a.Addr[:]...) }
func (a *ActionSetNWDst) decode(b []byte) error {
	if len(b) < 4 {
		return ErrTruncated
	}
	copy(a.Addr[:], b[:4])
	return nil
}
func (a *ActionSetNWDst) String() string { return "set_nw_dst:" + a.Addr.String() }

// ActionSetNWTOS rewrites the IPv4 TOS byte.
type ActionSetNWTOS struct{ TOS uint8 }

func (a *ActionSetNWTOS) actType() uint16        { return ActTypeSetNWTOS }
func (a *ActionSetNWTOS) encode(b []byte) []byte { return append(b, a.TOS, 0, 0, 0) }
func (a *ActionSetNWTOS) decode(b []byte) error {
	if len(b) < 1 {
		return ErrTruncated
	}
	a.TOS = b[0]
	return nil
}
func (a *ActionSetNWTOS) String() string { return fmt.Sprintf("set_nw_tos:%d", a.TOS) }

// ActionSetTPSrc rewrites the transport source port.
type ActionSetTPSrc struct{ Port uint16 }

func (a *ActionSetTPSrc) actType() uint16 { return ActTypeSetTPSrc }
func (a *ActionSetTPSrc) encode(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, a.Port)
	return append(b, 0, 0)
}
func (a *ActionSetTPSrc) decode(b []byte) error {
	if len(b) < 2 {
		return ErrTruncated
	}
	a.Port = binary.BigEndian.Uint16(b[0:2])
	return nil
}
func (a *ActionSetTPSrc) String() string { return fmt.Sprintf("set_tp_src:%d", a.Port) }

// ActionSetTPDst rewrites the transport destination port.
type ActionSetTPDst struct{ Port uint16 }

func (a *ActionSetTPDst) actType() uint16 { return ActTypeSetTPDst }
func (a *ActionSetTPDst) encode(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, a.Port)
	return append(b, 0, 0)
}
func (a *ActionSetTPDst) decode(b []byte) error {
	if len(b) < 2 {
		return ErrTruncated
	}
	a.Port = binary.BigEndian.Uint16(b[0:2])
	return nil
}
func (a *ActionSetTPDst) String() string { return fmt.Sprintf("set_tp_dst:%d", a.Port) }

// ActionEnqueue forwards through a port's queue.
type ActionEnqueue struct {
	Port    uint16
	QueueID uint32
}

func (a *ActionEnqueue) actType() uint16 { return ActTypeEnqueue }
func (a *ActionEnqueue) encode(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, a.Port)
	b = append(b, make([]byte, 6)...)
	return binary.BigEndian.AppendUint32(b, a.QueueID)
}
func (a *ActionEnqueue) decode(b []byte) error {
	if len(b) < 12 {
		return ErrTruncated
	}
	a.Port = binary.BigEndian.Uint16(b[0:2])
	a.QueueID = binary.BigEndian.Uint32(b[8:12])
	return nil
}
func (a *ActionEnqueue) String() string { return fmt.Sprintf("enqueue:%d:%d", a.Port, a.QueueID) }

// encodeActions appends the wire form of an action list.
func encodeActions(b []byte, actions []Action) []byte {
	for _, a := range actions {
		start := len(b)
		b = binary.BigEndian.AppendUint16(b, a.actType())
		b = append(b, 0, 0) // length placeholder
		b = a.encode(b)
		// Actions are multiples of 8 bytes.
		for (len(b)-start)%8 != 0 {
			b = append(b, 0)
		}
		binary.BigEndian.PutUint16(b[start+2:start+4], uint16(len(b)-start))
	}
	return b
}

// decodeActions parses a full action list.
func decodeActions(b []byte) ([]Action, error) {
	var actions []Action
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, ErrTruncated
		}
		typ := binary.BigEndian.Uint16(b[0:2])
		alen := int(binary.BigEndian.Uint16(b[2:4]))
		if alen < 8 || alen%8 != 0 || alen > len(b) {
			return nil, ErrBadLength
		}
		var a Action
		switch typ {
		case ActTypeOutput:
			a = &ActionOutput{}
		case ActTypeSetVLANVID:
			a = &ActionSetVLANVID{}
		case ActTypeSetVLANPCP:
			a = &ActionSetVLANPCP{}
		case ActTypeStripVLAN:
			a = &ActionStripVLAN{}
		case ActTypeSetDLSrc:
			a = &ActionSetDLSrc{}
		case ActTypeSetDLDst:
			a = &ActionSetDLDst{}
		case ActTypeSetNWSrc:
			a = &ActionSetNWSrc{}
		case ActTypeSetNWDst:
			a = &ActionSetNWDst{}
		case ActTypeSetNWTOS:
			a = &ActionSetNWTOS{}
		case ActTypeSetTPSrc:
			a = &ActionSetTPSrc{}
		case ActTypeSetTPDst:
			a = &ActionSetTPDst{}
		case ActTypeEnqueue:
			a = &ActionEnqueue{}
		default:
			return nil, fmt.Errorf("openflow: unknown action type %d", typ)
		}
		if err := a.decode(b[4:alen]); err != nil {
			return nil, err
		}
		actions = append(actions, a)
		b = b[alen:]
	}
	return actions, nil
}

// ApplyActions executes an action list on a frame, returning the (possibly
// rewritten) frame bytes and the set of output port numbers. Reserved ports
// are returned as-is for the datapath to interpret.
func ApplyActions(frame []byte, actions []Action) ([]byte, []uint16) {
	var outputs []uint16
	var d packet.Decoded
	dirty := false
	ensure := func() bool {
		// Re-decode lazily before first modification.
		if !dirty {
			if err := d.Decode(frame); err != nil {
				return false
			}
			dirty = true
		}
		return true
	}
	reserialize := func() {
		if !dirty {
			return
		}
		if d.HasIP {
			switch {
			case d.HasTCP:
				d.IP.Payload = d.TCP.Bytes(d.IP.Src, d.IP.Dst)
			case d.HasUDP:
				d.IP.Payload = d.UDP.Bytes(d.IP.Src, d.IP.Dst)
			case d.HasICMP:
				d.IP.Payload = d.ICMP.Bytes()
			}
			d.Eth.Payload = d.IP.Bytes()
		}
		frame = d.Eth.Bytes()
		dirty = false
	}
	for _, a := range actions {
		switch act := a.(type) {
		case *ActionOutput:
			reserialize()
			outputs = append(outputs, act.Port)
		case *ActionEnqueue:
			reserialize()
			outputs = append(outputs, act.Port)
		case *ActionSetDLSrc:
			if ensure() {
				d.Eth.Src = act.Addr
			}
		case *ActionSetDLDst:
			if ensure() {
				d.Eth.Dst = act.Addr
			}
		case *ActionSetVLANVID:
			if ensure() {
				d.Eth.Tagged = true
				d.Eth.VLANID = act.VID
			}
		case *ActionSetVLANPCP:
			if ensure() {
				d.Eth.Tagged = true
				d.Eth.VLANPriority = act.PCP
			}
		case *ActionStripVLAN:
			if ensure() {
				d.Eth.Tagged = false
			}
		case *ActionSetNWSrc:
			if ensure() && d.HasIP {
				d.IP.Src = act.Addr
			}
		case *ActionSetNWDst:
			if ensure() && d.HasIP {
				d.IP.Dst = act.Addr
			}
		case *ActionSetNWTOS:
			if ensure() && d.HasIP {
				d.IP.TOS = act.TOS
			}
		case *ActionSetTPSrc:
			if ensure() {
				switch {
				case d.HasTCP:
					d.TCP.SrcPort = act.Port
				case d.HasUDP:
					d.UDP.SrcPort = act.Port
				}
			}
		case *ActionSetTPDst:
			if ensure() {
				switch {
				case d.HasTCP:
					d.TCP.DstPort = act.Port
				case d.HasUDP:
					d.UDP.DstPort = act.Port
				}
			}
		}
	}
	reserialize()
	return frame, outputs
}
