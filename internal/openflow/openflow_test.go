package openflow

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

// roundTrip encodes msg, decodes it back, and returns the decoded message.
func roundTrip(t *testing.T, msg Message) Message {
	t.Helper()
	raw := Encode(msg)
	var h Header
	if err := h.decode(raw); err != nil {
		t.Fatalf("header decode: %v", err)
	}
	if int(h.Length) != len(raw) {
		t.Fatalf("header length %d != encoded length %d", h.Length, len(raw))
	}
	got, err := Decode(h, raw[HeaderLen:])
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestHelloRoundTrip(t *testing.T) {
	m := &Hello{}
	m.Header.XID = 42
	got := roundTrip(t, m).(*Hello)
	if got.Header.XID != 42 || got.Header.Type != TypeHello {
		t.Errorf("got %+v", got.Header)
	}
}

func TestEchoRoundTrip(t *testing.T) {
	m := &EchoRequest{Data: []byte("ping")}
	got := roundTrip(t, m).(*EchoRequest)
	if !bytes.Equal(got.Data, []byte("ping")) {
		t.Errorf("data = %q", got.Data)
	}
	r := &EchoReply{Data: []byte("pong")}
	gr := roundTrip(t, r).(*EchoReply)
	if !bytes.Equal(gr.Data, []byte("pong")) {
		t.Errorf("data = %q", gr.Data)
	}
}

func TestErrorMsgRoundTrip(t *testing.T) {
	m := &ErrorMsg{ErrType: ErrTypeFlowModFailed, Code: FlowModOverlap, Data: []byte("bad")}
	got := roundTrip(t, m).(*ErrorMsg)
	if got.ErrType != ErrTypeFlowModFailed || got.Code != FlowModOverlap {
		t.Errorf("got %+v", got)
	}
	if got.Error() == "" {
		t.Error("empty error string")
	}
}

func TestFeaturesReplyRoundTrip(t *testing.T) {
	m := &FeaturesReply{
		DatapathID:   0x00163e0000000001,
		NBuffers:     256,
		NTables:      2,
		Capabilities: CapFlowStats | CapPortStats | CapTableStats,
		Actions:      0xfff,
		Ports: []PhyPort{
			{PortNo: 1, HWAddr: packet.MustMAC("02:00:00:00:00:01"), Name: "wlan0"},
			{PortNo: 2, HWAddr: packet.MustMAC("02:00:00:00:00:02"), Name: "eth0", State: PortStateLinkDown},
		},
	}
	got := roundTrip(t, m).(*FeaturesReply)
	if got.DatapathID != m.DatapathID || len(got.Ports) != 2 {
		t.Fatalf("got %+v", got)
	}
	if got.Ports[0].Name != "wlan0" || got.Ports[1].State != PortStateLinkDown {
		t.Errorf("ports = %+v", got.Ports)
	}
}

func TestPacketInRoundTrip(t *testing.T) {
	m := &PacketIn{BufferID: NoBuffer, TotalLen: 128, InPort: 3, Reason: PacketInReasonNoMatch, Data: []byte{1, 2, 3, 4}}
	got := roundTrip(t, m).(*PacketIn)
	if got.BufferID != NoBuffer || got.InPort != 3 || !bytes.Equal(got.Data, m.Data) {
		t.Errorf("got %+v", got)
	}
}

func TestPacketOutRoundTrip(t *testing.T) {
	m := &PacketOut{
		BufferID: NoBuffer,
		InPort:   PortNone,
		Actions:  []Action{&ActionOutput{Port: PortFlood, MaxLen: 0}},
		Data:     []byte("frame-bytes"),
	}
	got := roundTrip(t, m).(*PacketOut)
	if len(got.Actions) != 1 || !bytes.Equal(got.Data, m.Data) {
		t.Fatalf("got %+v", got)
	}
	if out, ok := got.Actions[0].(*ActionOutput); !ok || out.Port != PortFlood {
		t.Errorf("action = %#v", got.Actions[0])
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	match := MatchAll()
	match.Wildcards &^= FWDLType | FWNWProto
	match.DLType = packet.EtherTypeIPv4
	match.NWProto = uint8(packet.ProtoTCP)
	m := &FlowMod{
		Match:       match,
		Cookie:      0xfeed,
		Command:     FlowModAdd,
		IdleTimeout: 30,
		HardTimeout: 300,
		Priority:    100,
		BufferID:    NoBuffer,
		OutPort:     PortNone,
		Flags:       FlowModFlagSendFlowRem,
		Actions: []Action{
			&ActionSetDLDst{Addr: packet.MustMAC("02:aa:bb:cc:dd:ee")},
			&ActionOutput{Port: 1},
		},
	}
	got := roundTrip(t, m).(*FlowMod)
	if got.Cookie != 0xfeed || got.Priority != 100 || len(got.Actions) != 2 {
		t.Fatalf("got %+v", got)
	}
	if got.Match.DLType != packet.EtherTypeIPv4 || got.Match.NWProto != 6 {
		t.Errorf("match = %+v", got.Match)
	}
	if _, ok := got.Actions[0].(*ActionSetDLDst); !ok {
		t.Errorf("action 0 = %#v", got.Actions[0])
	}
}

func TestFlowRemovedRoundTrip(t *testing.T) {
	m := &FlowRemoved{
		Match: MatchAll(), Cookie: 7, Priority: 5, Reason: FlowRemovedIdleTimeout,
		DurationSec: 12, DurationNsec: 500, IdleTimeout: 10,
		PacketCount: 99, ByteCount: 12345,
	}
	got := roundTrip(t, m).(*FlowRemoved)
	if got.PacketCount != 99 || got.ByteCount != 12345 || got.Reason != FlowRemovedIdleTimeout {
		t.Errorf("got %+v", got)
	}
}

func TestPortStatusRoundTrip(t *testing.T) {
	m := &PortStatus{Reason: PortStatusAdd, Desc: PhyPort{PortNo: 4, Name: "wlan1"}}
	got := roundTrip(t, m).(*PortStatus)
	if got.Reason != PortStatusAdd || got.Desc.Name != "wlan1" {
		t.Errorf("got %+v", got)
	}
}

func TestConfigRoundTrip(t *testing.T) {
	m := &SetConfig{Flags: ConfigFragNormal, MissSendLen: 128}
	got := roundTrip(t, m).(*SetConfig)
	if got.MissSendLen != 128 {
		t.Errorf("got %+v", got)
	}
	r := &GetConfigReply{MissSendLen: 96}
	gr := roundTrip(t, r).(*GetConfigReply)
	if gr.MissSendLen != 96 {
		t.Errorf("got %+v", gr)
	}
}

func TestStatsDescRoundTrip(t *testing.T) {
	m := &StatsReply{
		StatsType: StatsDesc,
		Desc: DescStats{
			MfrDesc: "Homework Project", HWDesc: "soft datapath",
			SWDesc: "repro", SerialNum: "1", DPDesc: "home router",
		},
	}
	got := roundTrip(t, m).(*StatsReply)
	if got.Desc.MfrDesc != "Homework Project" || got.Desc.DPDesc != "home router" {
		t.Errorf("got %+v", got.Desc)
	}
}

func TestStatsFlowRoundTrip(t *testing.T) {
	req := &StatsRequest{StatsType: StatsFlow, Flow: FlowStatsRequest{Match: MatchAll(), TableID: 0xff, OutPort: PortNone}}
	greq := roundTrip(t, req).(*StatsRequest)
	if greq.Flow.TableID != 0xff || greq.Flow.OutPort != PortNone {
		t.Fatalf("got %+v", greq.Flow)
	}

	rep := &StatsReply{
		StatsType: StatsFlow,
		Flows: []FlowStats{
			{
				TableID: 0, Match: MatchAll(), DurationSec: 10, Priority: 1,
				IdleTimeout: 60, Cookie: 0xc0ffee, PacketCount: 42, ByteCount: 4200,
				Actions: []Action{&ActionOutput{Port: 2}},
			},
			{TableID: 0, Match: MatchAll(), Cookie: 2},
		},
	}
	grep := roundTrip(t, rep).(*StatsReply)
	if len(grep.Flows) != 2 {
		t.Fatalf("flows = %d", len(grep.Flows))
	}
	if grep.Flows[0].Cookie != 0xc0ffee || grep.Flows[0].ByteCount != 4200 || len(grep.Flows[0].Actions) != 1 {
		t.Errorf("flow 0 = %+v", grep.Flows[0])
	}
}

func TestStatsAggregateRoundTrip(t *testing.T) {
	m := &StatsReply{StatsType: StatsAggregate, Aggregate: AggregateStats{PacketCount: 1, ByteCount: 2, FlowCount: 3}}
	got := roundTrip(t, m).(*StatsReply)
	if got.Aggregate != m.Aggregate {
		t.Errorf("got %+v", got.Aggregate)
	}
}

func TestStatsTableAndPortRoundTrip(t *testing.T) {
	tm := &StatsReply{StatsType: StatsTable, Tables: []TableStats{
		{TableID: 0, Name: "classifier", Wildcards: FWAll, MaxEntries: 1 << 20, ActiveCount: 17, LookupCount: 1000, MatchedCount: 900},
	}}
	gt := roundTrip(t, tm).(*StatsReply)
	if len(gt.Tables) != 1 || gt.Tables[0].Name != "classifier" || gt.Tables[0].MatchedCount != 900 {
		t.Errorf("got %+v", gt.Tables)
	}

	pm := &StatsReply{StatsType: StatsPort, Ports: []PortStats{
		{PortNo: 1, RxPackets: 10, TxBytes: 999, Collisions: 1},
		{PortNo: 2, RxErrors: 5},
	}}
	gp := roundTrip(t, pm).(*StatsReply)
	if len(gp.Ports) != 2 || gp.Ports[0].TxBytes != 999 || gp.Ports[1].RxErrors != 5 {
		t.Errorf("got %+v", gp.Ports)
	}
}

func TestAllActionsRoundTrip(t *testing.T) {
	actions := []Action{
		&ActionOutput{Port: 7, MaxLen: 128},
		&ActionSetVLANVID{VID: 100},
		&ActionSetVLANPCP{PCP: 3},
		&ActionStripVLAN{},
		&ActionSetDLSrc{Addr: packet.MustMAC("02:00:00:00:00:01")},
		&ActionSetDLDst{Addr: packet.MustMAC("02:00:00:00:00:02")},
		&ActionSetNWSrc{Addr: packet.MustIP4("10.0.0.1")},
		&ActionSetNWDst{Addr: packet.MustIP4("10.0.0.2")},
		&ActionSetNWTOS{TOS: 0x10},
		&ActionSetTPSrc{Port: 8080},
		&ActionSetTPDst{Port: 80},
		&ActionEnqueue{Port: 1, QueueID: 9},
	}
	raw := encodeActions(nil, actions)
	if len(raw)%8 != 0 {
		t.Fatalf("actions not 8-byte aligned: %d", len(raw))
	}
	got, err := decodeActions(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, actions) {
		t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, actions)
	}
	for _, a := range got {
		if a.String() == "" {
			t.Errorf("%T has empty String()", a)
		}
	}
}

func TestDecodeActionsRejectsBadLength(t *testing.T) {
	raw := encodeActions(nil, []Action{&ActionOutput{Port: 1}})
	raw[3] = 7 // not a multiple of 8
	if _, err := decodeActions(raw); err == nil {
		t.Error("bad action length accepted")
	}
}

func TestMatchExactFromFrame(t *testing.T) {
	f := packet.NewTCPFrame(
		packet.MustMAC("02:00:00:00:00:01"), packet.MustMAC("02:00:00:00:00:02"),
		packet.MustIP4("10.0.0.2"), packet.MustIP4("8.8.8.8"), 49152, 443, packet.TCPSyn, 1, nil)
	var d packet.Decoded
	if err := d.Decode(f.Bytes()); err != nil {
		t.Fatal(err)
	}
	m := MatchFromFrame(&d, 3)
	if !m.Matches(&d, 3) {
		t.Error("exact match does not match its own frame")
	}
	if m.Matches(&d, 4) {
		t.Error("match ignores in_port")
	}
	if !m.IsExact() {
		t.Error("MatchFromFrame(IP/TCP) should be exact")
	}

	// Changing the destination port must break the match.
	f2 := packet.NewTCPFrame(
		packet.MustMAC("02:00:00:00:00:01"), packet.MustMAC("02:00:00:00:00:02"),
		packet.MustIP4("10.0.0.2"), packet.MustIP4("8.8.8.8"), 49152, 80, packet.TCPSyn, 1, nil)
	var d2 packet.Decoded
	if err := d2.Decode(f2.Bytes()); err != nil {
		t.Fatal(err)
	}
	if m.Matches(&d2, 3) {
		t.Error("match ignores tp_dst")
	}
}

func TestMatchWildcards(t *testing.T) {
	f := packet.NewUDPFrame(
		packet.MustMAC("02:00:00:00:00:01"), packet.MustMAC("02:00:00:00:00:02"),
		packet.MustIP4("192.168.1.10"), packet.MustIP4("192.168.1.1"), 5000, 53, []byte("x"))
	var d packet.Decoded
	if err := d.Decode(f.Bytes()); err != nil {
		t.Fatal(err)
	}

	all := MatchAll()
	if !all.Matches(&d, 1) {
		t.Error("MatchAll does not match")
	}

	// Match any UDP-to-port-53 traffic (the DNS interception rule).
	dns := MatchAll()
	dns.Wildcards &^= FWDLType | FWNWProto | FWTPDst
	dns.DLType = packet.EtherTypeIPv4
	dns.NWProto = uint8(packet.ProtoUDP)
	dns.TPDst = 53
	if !dns.Matches(&d, 1) {
		t.Error("DNS rule does not match DNS packet")
	}

	// Subnet match on nw_src.
	sub := MatchAll()
	sub.Wildcards &^= FWDLType
	sub.DLType = packet.EtherTypeIPv4
	sub.NWSrc = packet.MustIP4("192.168.1.0")
	sub.SetNWSrcPrefix(24)
	if !sub.Matches(&d, 1) {
		t.Error("/24 src match failed")
	}
	sub.NWSrc = packet.MustIP4("192.168.2.0")
	if sub.Matches(&d, 1) {
		t.Error("/24 src match matched wrong subnet")
	}
}

func TestMatchARPFields(t *testing.T) {
	req := packet.NewARPRequest(packet.MustMAC("02:00:00:00:00:01"),
		packet.MustIP4("10.0.0.2"), packet.MustIP4("10.0.0.1"))
	var d packet.Decoded
	if err := d.Decode(req.Bytes()); err != nil {
		t.Fatal(err)
	}
	m := MatchAll()
	m.Wildcards &^= FWDLType | FWNWProto
	m.DLType = packet.EtherTypeARP
	m.NWProto = uint8(packet.ARPRequest)
	if !m.Matches(&d, 1) {
		t.Error("ARP opcode match failed")
	}
	m.NWProto = uint8(packet.ARPReply)
	if m.Matches(&d, 1) {
		t.Error("ARP opcode mismatch accepted")
	}
}

func TestMatchSubsumes(t *testing.T) {
	exact := Match{DLType: packet.EtherTypeIPv4, NWProto: 6, TPDst: 80}
	exact.Wildcards = FWAll &^ (FWDLType | FWNWProto | FWTPDst)

	broad := MatchAll()
	if !broad.Subsumes(&exact) {
		t.Error("match-all should subsume everything")
	}
	if exact.Subsumes(&broad) {
		t.Error("narrow match subsumes broad")
	}
	if !exact.Subsumes(&exact) {
		t.Error("match should subsume itself")
	}

	srcNet := MatchAll()
	srcNet.NWSrc = packet.MustIP4("10.0.0.0")
	srcNet.SetNWSrcPrefix(8)
	host := MatchAll()
	host.NWSrc = packet.MustIP4("10.1.2.3")
	host.SetNWSrcPrefix(32)
	if !srcNet.Subsumes(&host) {
		t.Error("/8 should subsume /32 within it")
	}
	outside := MatchAll()
	outside.NWSrc = packet.MustIP4("11.0.0.1")
	outside.SetNWSrcPrefix(32)
	if srcNet.Subsumes(&outside) {
		t.Error("/8 subsumed address outside the prefix")
	}
}

func TestMatchString(t *testing.T) {
	m := MatchAll()
	if m.String() != "any" {
		t.Errorf("MatchAll().String() = %q", m.String())
	}
	m.Wildcards &^= FWDLType | FWTPDst
	m.DLType = packet.EtherTypeIPv4
	m.TPDst = 53
	s := m.String()
	if s == "any" || s == "" {
		t.Errorf("String() = %q", s)
	}
}

func TestApplyActionsRewrite(t *testing.T) {
	f := packet.NewTCPFrame(
		packet.MustMAC("02:00:00:00:00:01"), packet.MustMAC("02:00:00:00:00:02"),
		packet.MustIP4("10.0.0.2"), packet.MustIP4("8.8.8.8"), 1234, 80, packet.TCPAck, 9, []byte("data"))
	raw := f.Bytes()
	newDst := packet.MustMAC("02:ff:ff:ff:ff:ff")
	out, ports := ApplyActions(raw, []Action{
		&ActionSetDLDst{Addr: newDst},
		&ActionSetNWDst{Addr: packet.MustIP4("1.1.1.1")},
		&ActionSetTPDst{Port: 8080},
		&ActionOutput{Port: 5},
	})
	if len(ports) != 1 || ports[0] != 5 {
		t.Fatalf("ports = %v", ports)
	}
	var d packet.Decoded
	if err := d.Decode(out); err != nil {
		t.Fatal(err)
	}
	if d.Eth.Dst != newDst || d.IP.Dst != packet.MustIP4("1.1.1.1") || d.TCP.DstPort != 8080 {
		t.Errorf("rewrite failed: %+v %+v %+v", d.Eth.Dst, d.IP.Dst, d.TCP.DstPort)
	}
	// Checksums must still verify after rewrite.
	if cs := packet.Checksum(d.Eth.Payload[:packet.IPv4HeaderLen], 0); cs != 0 {
		t.Error("IP checksum invalid after rewrite")
	}
}

func TestApplyActionsMultiOutput(t *testing.T) {
	f := packet.NewUDPFrame(packet.MAC{1}, packet.MAC{2}, packet.IP4{10, 0, 0, 1}, packet.IP4{10, 0, 0, 2}, 1, 2, nil)
	_, ports := ApplyActions(f.Bytes(), []Action{
		&ActionOutput{Port: 1}, &ActionOutput{Port: 2}, &ActionOutput{Port: PortController},
	})
	if !reflect.DeepEqual(ports, []uint16{1, 2, PortController}) {
		t.Errorf("ports = %v", ports)
	}
}

func TestApplyActionsRewriteAppliesPerOutput(t *testing.T) {
	// OpenFlow semantics: set-field actions affect only subsequent outputs.
	f := packet.NewUDPFrame(packet.MAC{1}, packet.MAC{2}, packet.IP4{10, 0, 0, 1}, packet.IP4{10, 0, 0, 2}, 1, 2, nil)
	out, ports := ApplyActions(f.Bytes(), []Action{
		&ActionOutput{Port: 1},
		&ActionSetNWDst{Addr: packet.MustIP4("99.99.99.99")},
		&ActionOutput{Port: 2},
	})
	if len(ports) != 2 {
		t.Fatalf("ports = %v", ports)
	}
	var d packet.Decoded
	if err := d.Decode(out); err != nil {
		t.Fatal(err)
	}
	if d.IP.Dst != packet.MustIP4("99.99.99.99") {
		t.Errorf("final frame dst = %v", d.IP.Dst)
	}
}

func TestReadWriteMessageOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		for i := 0; i < 3; i++ {
			msg, err := ReadMessage(conn)
			if err != nil {
				done <- err
				return
			}
			if err := WriteMessage(conn, msg); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	msgs := []Message{
		&Hello{},
		&EchoRequest{Data: []byte("hw")},
		&FlowMod{Match: MatchAll(), Command: FlowModAdd, BufferID: NoBuffer, OutPort: PortNone,
			Actions: []Action{&ActionOutput{Port: PortNormal}}},
	}
	for _, m := range msgs {
		if err := WriteMessage(conn, m); err != nil {
			t.Fatal(err)
		}
		echo, err := ReadMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.TypeOf(echo) != reflect.TypeOf(m) {
			t.Errorf("echoed %T, sent %T", echo, m)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	raw := Encode(&Hello{})
	raw[0] = 0x04 // OpenFlow 1.3
	var h Header
	if err := h.decode(raw); err != ErrBadVersion {
		t.Errorf("want ErrBadVersion, got %v", err)
	}
}

func TestDecodeNeverPanicsQuick(t *testing.T) {
	f := func(body []byte, typ uint8) bool {
		h := Header{Version: Version, Type: MsgType(typ % 22), Length: uint16(HeaderLen + len(body)), XID: 1}
		_, _ = Decode(h, body)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMatchEncodeDecodeQuick(t *testing.T) {
	f := func(wc uint32, inPort uint16, src, dst [6]byte, nwsrc [4]byte, tp uint16) bool {
		m := Match{
			Wildcards: wc & FWAll, InPort: inPort,
			DLSrc: packet.MAC(src), DLDst: packet.MAC(dst),
			NWSrc: packet.IP4(nwsrc), TPDst: tp,
		}
		var got Match
		if err := got.decode(m.encode(nil)); err != nil {
			return false
		}
		return got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeFlowMod(b *testing.B) {
	m := &FlowMod{Match: MatchAll(), Command: FlowModAdd, BufferID: NoBuffer, OutPort: PortNone,
		Actions: []Action{&ActionOutput{Port: 1}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Encode(m)
	}
}

func BenchmarkMatchExact(b *testing.B) {
	f := packet.NewTCPFrame(packet.MAC{1}, packet.MAC{2}, packet.IP4{10, 0, 0, 1}, packet.IP4{10, 0, 0, 2}, 1, 80, packet.TCPAck, 0, nil)
	var d packet.Decoded
	if err := d.Decode(f.Bytes()); err != nil {
		b.Fatal(err)
	}
	m := MatchFromFrame(&d, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.Matches(&d, 1) {
			b.Fatal("no match")
		}
	}
}
