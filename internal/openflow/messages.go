package openflow

import (
	"encoding/binary"

	"repro/internal/packet"
)

// Switch capability flags (ofp_capabilities).
const (
	CapFlowStats  uint32 = 1 << 0
	CapTableStats uint32 = 1 << 1
	CapPortStats  uint32 = 1 << 2
	CapSTP        uint32 = 1 << 3
	CapIPReasm    uint32 = 1 << 5
	CapQueueStats uint32 = 1 << 6
	CapARPMatchIP uint32 = 1 << 7
)

// Port config bits (ofp_port_config).
const (
	PortConfigDown       uint32 = 1 << 0
	PortConfigNoSTP      uint32 = 1 << 1
	PortConfigNoRecv     uint32 = 1 << 2
	PortConfigNoFlood    uint32 = 1 << 4
	PortConfigNoFwd      uint32 = 1 << 5
	PortConfigNoPacketIn uint32 = 1 << 6
)

// Port state bits (ofp_port_state).
const (
	PortStateLinkDown uint32 = 1 << 0
)

// PhyPortLen is the length of an ofp_phy_port.
const PhyPortLen = 48

// PhyPort describes one physical port of the datapath.
type PhyPort struct {
	PortNo     uint16
	HWAddr     packet.MAC
	Name       string
	Config     uint32
	State      uint32
	Curr       uint32
	Advertised uint32
	Supported  uint32
	Peer       uint32
}

func (p *PhyPort) encode(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, p.PortNo)
	b = append(b, p.HWAddr[:]...)
	name := p.Name
	if len(name) > 15 {
		name = name[:15]
	}
	b = append(b, name...)
	b = append(b, make([]byte, 16-len(name))...)
	b = binary.BigEndian.AppendUint32(b, p.Config)
	b = binary.BigEndian.AppendUint32(b, p.State)
	b = binary.BigEndian.AppendUint32(b, p.Curr)
	b = binary.BigEndian.AppendUint32(b, p.Advertised)
	b = binary.BigEndian.AppendUint32(b, p.Supported)
	b = binary.BigEndian.AppendUint32(b, p.Peer)
	return b
}

func (p *PhyPort) decode(b []byte) error {
	if len(b) < PhyPortLen {
		return ErrTruncated
	}
	p.PortNo = binary.BigEndian.Uint16(b[0:2])
	copy(p.HWAddr[:], b[2:8])
	name := b[8:24]
	for i, c := range name {
		if c == 0 {
			name = name[:i]
			break
		}
	}
	p.Name = string(name)
	p.Config = binary.BigEndian.Uint32(b[24:28])
	p.State = binary.BigEndian.Uint32(b[28:32])
	p.Curr = binary.BigEndian.Uint32(b[32:36])
	p.Advertised = binary.BigEndian.Uint32(b[36:40])
	p.Supported = binary.BigEndian.Uint32(b[40:44])
	p.Peer = binary.BigEndian.Uint32(b[44:48])
	return nil
}

// FeaturesRequest asks the datapath for its identity and ports.
type FeaturesRequest struct{ base }

func (m *FeaturesRequest) encodeBody(b []byte) []byte { return b }
func (m *FeaturesRequest) decodeBody([]byte) error    { return nil }

// FeaturesReply announces the datapath id, capabilities and port set.
type FeaturesReply struct {
	base
	DatapathID   uint64
	NBuffers     uint32
	NTables      uint8
	Capabilities uint32
	Actions      uint32
	Ports        []PhyPort
}

func (m *FeaturesReply) encodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, m.DatapathID)
	b = binary.BigEndian.AppendUint32(b, m.NBuffers)
	b = append(b, m.NTables, 0, 0, 0)
	b = binary.BigEndian.AppendUint32(b, m.Capabilities)
	b = binary.BigEndian.AppendUint32(b, m.Actions)
	for i := range m.Ports {
		b = m.Ports[i].encode(b)
	}
	return b
}

func (m *FeaturesReply) decodeBody(b []byte) error {
	if len(b) < 24 {
		return ErrTruncated
	}
	m.DatapathID = binary.BigEndian.Uint64(b[0:8])
	m.NBuffers = binary.BigEndian.Uint32(b[8:12])
	m.NTables = b[12]
	m.Capabilities = binary.BigEndian.Uint32(b[16:20])
	m.Actions = binary.BigEndian.Uint32(b[20:24])
	m.Ports = nil
	for rest := b[24:]; len(rest) >= PhyPortLen; rest = rest[PhyPortLen:] {
		var p PhyPort
		if err := p.decode(rest); err != nil {
			return err
		}
		m.Ports = append(m.Ports, p)
	}
	return nil
}

// PacketIn reasons.
const (
	PacketInReasonNoMatch uint8 = 0
	PacketInReasonAction  uint8 = 1
)

// NoBuffer is the buffer id meaning "packet not buffered".
const NoBuffer uint32 = 0xffffffff

// PacketIn carries a packet (or its prefix) from datapath to controller.
type PacketIn struct {
	base
	BufferID uint32
	TotalLen uint16
	InPort   uint16
	Reason   uint8
	Data     []byte
}

func (m *PacketIn) encodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, m.BufferID)
	b = binary.BigEndian.AppendUint16(b, m.TotalLen)
	b = binary.BigEndian.AppendUint16(b, m.InPort)
	b = append(b, m.Reason, 0)
	return append(b, m.Data...)
}

func (m *PacketIn) decodeBody(b []byte) error {
	if len(b) < 10 {
		return ErrTruncated
	}
	m.BufferID = binary.BigEndian.Uint32(b[0:4])
	m.TotalLen = binary.BigEndian.Uint16(b[4:6])
	m.InPort = binary.BigEndian.Uint16(b[6:8])
	m.Reason = b[8]
	m.Data = append([]byte(nil), b[10:]...)
	return nil
}

// PacketOut carries a packet from controller to datapath for transmission
// through an action list.
type PacketOut struct {
	base
	BufferID uint32
	InPort   uint16
	Actions  []Action
	Data     []byte
}

func (m *PacketOut) encodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, m.BufferID)
	b = binary.BigEndian.AppendUint16(b, m.InPort)
	lenAt := len(b)
	b = append(b, 0, 0)
	start := len(b)
	b = encodeActions(b, m.Actions)
	binary.BigEndian.PutUint16(b[lenAt:lenAt+2], uint16(len(b)-start))
	return append(b, m.Data...)
}

func (m *PacketOut) decodeBody(b []byte) error {
	if len(b) < 8 {
		return ErrTruncated
	}
	m.BufferID = binary.BigEndian.Uint32(b[0:4])
	m.InPort = binary.BigEndian.Uint16(b[4:6])
	alen := int(binary.BigEndian.Uint16(b[6:8]))
	if 8+alen > len(b) {
		return ErrTruncated
	}
	actions, err := decodeActions(b[8 : 8+alen])
	if err != nil {
		return err
	}
	m.Actions = actions
	m.Data = append([]byte(nil), b[8+alen:]...)
	return nil
}

// Flow mod commands (ofp_flow_mod_command).
const (
	FlowModAdd uint16 = iota
	FlowModModify
	FlowModModifyStrict
	FlowModDelete
	FlowModDeleteStrict
)

// Flow mod flags.
const (
	FlowModFlagSendFlowRem  uint16 = 1 << 0
	FlowModFlagCheckOverlap uint16 = 1 << 1
	FlowModFlagEmergency    uint16 = 1 << 2
)

// FlowMod adds, modifies or deletes flow table entries.
type FlowMod struct {
	base
	Match       Match
	Cookie      uint64
	Command     uint16
	IdleTimeout uint16
	HardTimeout uint16
	Priority    uint16
	BufferID    uint32
	OutPort     uint16
	Flags       uint16
	Actions     []Action
}

func (m *FlowMod) encodeBody(b []byte) []byte {
	b = m.Match.encode(b)
	b = binary.BigEndian.AppendUint64(b, m.Cookie)
	b = binary.BigEndian.AppendUint16(b, m.Command)
	b = binary.BigEndian.AppendUint16(b, m.IdleTimeout)
	b = binary.BigEndian.AppendUint16(b, m.HardTimeout)
	b = binary.BigEndian.AppendUint16(b, m.Priority)
	b = binary.BigEndian.AppendUint32(b, m.BufferID)
	b = binary.BigEndian.AppendUint16(b, m.OutPort)
	b = binary.BigEndian.AppendUint16(b, m.Flags)
	return encodeActions(b, m.Actions)
}

func (m *FlowMod) decodeBody(b []byte) error {
	if len(b) < MatchLen+24 {
		return ErrTruncated
	}
	if err := m.Match.decode(b); err != nil {
		return err
	}
	b = b[MatchLen:]
	m.Cookie = binary.BigEndian.Uint64(b[0:8])
	m.Command = binary.BigEndian.Uint16(b[8:10])
	m.IdleTimeout = binary.BigEndian.Uint16(b[10:12])
	m.HardTimeout = binary.BigEndian.Uint16(b[12:14])
	m.Priority = binary.BigEndian.Uint16(b[14:16])
	m.BufferID = binary.BigEndian.Uint32(b[16:20])
	m.OutPort = binary.BigEndian.Uint16(b[20:22])
	m.Flags = binary.BigEndian.Uint16(b[22:24])
	actions, err := decodeActions(b[24:])
	if err != nil {
		return err
	}
	m.Actions = actions
	return nil
}

// Flow removed reasons.
const (
	FlowRemovedIdleTimeout uint8 = 0
	FlowRemovedHardTimeout uint8 = 1
	FlowRemovedDelete      uint8 = 2
)

// FlowRemoved notifies the controller that a flow entry expired or was
// deleted, with its final counters.
type FlowRemoved struct {
	base
	Match        Match
	Cookie       uint64
	Priority     uint16
	Reason       uint8
	DurationSec  uint32
	DurationNsec uint32
	IdleTimeout  uint16
	PacketCount  uint64
	ByteCount    uint64
}

func (m *FlowRemoved) encodeBody(b []byte) []byte {
	b = m.Match.encode(b)
	b = binary.BigEndian.AppendUint64(b, m.Cookie)
	b = binary.BigEndian.AppendUint16(b, m.Priority)
	b = append(b, m.Reason, 0)
	b = binary.BigEndian.AppendUint32(b, m.DurationSec)
	b = binary.BigEndian.AppendUint32(b, m.DurationNsec)
	b = binary.BigEndian.AppendUint16(b, m.IdleTimeout)
	b = append(b, 0, 0)
	b = binary.BigEndian.AppendUint64(b, m.PacketCount)
	return binary.BigEndian.AppendUint64(b, m.ByteCount)
}

func (m *FlowRemoved) decodeBody(b []byte) error {
	if len(b) < MatchLen+40 {
		return ErrTruncated
	}
	if err := m.Match.decode(b); err != nil {
		return err
	}
	b = b[MatchLen:]
	m.Cookie = binary.BigEndian.Uint64(b[0:8])
	m.Priority = binary.BigEndian.Uint16(b[8:10])
	m.Reason = b[10]
	m.DurationSec = binary.BigEndian.Uint32(b[12:16])
	m.DurationNsec = binary.BigEndian.Uint32(b[16:20])
	m.IdleTimeout = binary.BigEndian.Uint16(b[20:22])
	m.PacketCount = binary.BigEndian.Uint64(b[24:32])
	m.ByteCount = binary.BigEndian.Uint64(b[32:40])
	return nil
}

// Port status reasons.
const (
	PortStatusAdd    uint8 = 0
	PortStatusDelete uint8 = 1
	PortStatusModify uint8 = 2
)

// PortStatus notifies the controller of a port change.
type PortStatus struct {
	base
	Reason uint8
	Desc   PhyPort
}

func (m *PortStatus) encodeBody(b []byte) []byte {
	b = append(b, m.Reason)
	b = append(b, make([]byte, 7)...)
	return m.Desc.encode(b)
}

func (m *PortStatus) decodeBody(b []byte) error {
	if len(b) < 8+PhyPortLen {
		return ErrTruncated
	}
	m.Reason = b[0]
	return m.Desc.decode(b[8:])
}
