// Package openflow implements the OpenFlow 1.0 wire protocol: the switching
// standard the Homework router uses between its Open vSwitch-style datapath
// and the NOX-style controller.
//
// The package provides byte-compatible encoding and decoding of the OpenFlow
// 1.0 message set (hello, echo, error, features, config, packet-in/out,
// flow-mod, flow-removed, port-status, stats, barrier and vendor messages)
// plus the ofp_match structure and the full basic action set. Messages are
// framed over any io.Reader/io.Writer, normally a TCP connection — though
// the wire codec is optional: co-resident endpoints can exchange the
// decoded Message values directly through oftransport's in-process
// transport and skip serialization entirely.
//
// Concurrency: Encode and Decode are pure functions of their inputs and
// safe to call from any goroutine. Message values carry no
// synchronization — build one, hand it to a transport, and do not
// mutate it afterwards (the in-process transport passes the same
// pointer to the receiver).
package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the OpenFlow protocol version implemented by this package.
const Version uint8 = 0x01

// HeaderLen is the length of the common ofp_header.
const HeaderLen = 8

// MaxMessageLen bounds accepted message sizes to keep a malformed peer from
// forcing huge allocations.
const MaxMessageLen = 1 << 16

// MsgType is the ofp_type message discriminator.
type MsgType uint8

// OpenFlow 1.0 message types.
const (
	TypeHello MsgType = iota
	TypeError
	TypeEchoRequest
	TypeEchoReply
	TypeVendor
	TypeFeaturesRequest
	TypeFeaturesReply
	TypeGetConfigRequest
	TypeGetConfigReply
	TypeSetConfig
	TypePacketIn
	TypeFlowRemoved
	TypePortStatus
	TypePacketOut
	TypeFlowMod
	TypePortMod
	TypeStatsRequest
	TypeStatsReply
	TypeBarrierRequest
	TypeBarrierReply
	TypeQueueGetConfigRequest
	TypeQueueGetConfigReply
)

var msgTypeNames = map[MsgType]string{
	TypeHello: "HELLO", TypeError: "ERROR",
	TypeEchoRequest: "ECHO_REQUEST", TypeEchoReply: "ECHO_REPLY",
	TypeVendor:          "VENDOR",
	TypeFeaturesRequest: "FEATURES_REQUEST", TypeFeaturesReply: "FEATURES_REPLY",
	TypeGetConfigRequest: "GET_CONFIG_REQUEST", TypeGetConfigReply: "GET_CONFIG_REPLY",
	TypeSetConfig: "SET_CONFIG",
	TypePacketIn:  "PACKET_IN", TypeFlowRemoved: "FLOW_REMOVED",
	TypePortStatus: "PORT_STATUS", TypePacketOut: "PACKET_OUT",
	TypeFlowMod: "FLOW_MOD", TypePortMod: "PORT_MOD",
	TypeStatsRequest: "STATS_REQUEST", TypeStatsReply: "STATS_REPLY",
	TypeBarrierRequest: "BARRIER_REQUEST", TypeBarrierReply: "BARRIER_REPLY",
}

// String names the message type as in the OpenFlow specification.
func (t MsgType) String() string {
	if s, ok := msgTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("OFPT(%d)", uint8(t))
}

// Errors returned by the codec.
var (
	ErrTruncated   = errors.New("openflow: truncated message")
	ErrBadVersion  = errors.New("openflow: unsupported version")
	ErrBadLength   = errors.New("openflow: bad length field")
	ErrUnknownType = errors.New("openflow: unknown message type")
)

// Header is the common ofp_header carried by every message.
type Header struct {
	Version uint8
	Type    MsgType
	Length  uint16
	XID     uint32
}

func (h *Header) decode(b []byte) error {
	if len(b) < HeaderLen {
		return ErrTruncated
	}
	h.Version = b[0]
	h.Type = MsgType(b[1])
	h.Length = binary.BigEndian.Uint16(b[2:4])
	h.XID = binary.BigEndian.Uint32(b[4:8])
	if h.Version != Version {
		return ErrBadVersion
	}
	if int(h.Length) < HeaderLen {
		return ErrBadLength
	}
	return nil
}

// Message is any OpenFlow message. Hdr returns the embedded header (the
// Length field is recomputed on encode); body encoding excludes the header.
type Message interface {
	Hdr() *Header
	encodeBody(b []byte) []byte
	decodeBody(b []byte) error
}

// base provides the Header plumbing shared by all message types.
type base struct{ Header Header }

// Hdr returns the message header.
func (m *base) Hdr() *Header { return &m.Header }

// Encode serializes msg with a correct header, assigning typ.
func Encode(msg Message) []byte {
	h := msg.Hdr()
	h.Version = Version
	h.Type = typeOf(msg)
	body := msg.encodeBody(make([]byte, 0, 64))
	h.Length = uint16(HeaderLen + len(body))
	out := make([]byte, 0, h.Length)
	out = append(out, h.Version, byte(h.Type))
	out = binary.BigEndian.AppendUint16(out, h.Length)
	out = binary.BigEndian.AppendUint32(out, h.XID)
	return append(out, body...)
}

// WriteMessage encodes and writes one message to w.
func WriteMessage(w io.Writer, msg Message) error {
	_, err := w.Write(Encode(msg))
	return err
}

// ReadMessage reads exactly one message from r.
func ReadMessage(r io.Reader) (Message, error) {
	var hb [HeaderLen]byte
	if _, err := io.ReadFull(r, hb[:]); err != nil {
		return nil, err
	}
	var h Header
	if err := h.decode(hb[:]); err != nil {
		return nil, err
	}
	if int(h.Length) > MaxMessageLen {
		return nil, ErrBadLength
	}
	body := make([]byte, int(h.Length)-HeaderLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return Decode(h, body)
}

// Decode builds a typed message from a header and body.
func Decode(h Header, body []byte) (Message, error) {
	msg := newMessage(h.Type)
	if msg == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownType, h.Type)
	}
	*msg.Hdr() = h
	if err := msg.decodeBody(body); err != nil {
		return nil, fmt.Errorf("openflow: decoding %s: %w", h.Type, err)
	}
	return msg, nil
}

func newMessage(t MsgType) Message {
	switch t {
	case TypeHello:
		return &Hello{}
	case TypeError:
		return &ErrorMsg{}
	case TypeEchoRequest:
		return &EchoRequest{}
	case TypeEchoReply:
		return &EchoReply{}
	case TypeVendor:
		return &Vendor{}
	case TypeFeaturesRequest:
		return &FeaturesRequest{}
	case TypeFeaturesReply:
		return &FeaturesReply{}
	case TypeGetConfigRequest:
		return &GetConfigRequest{}
	case TypeGetConfigReply:
		return &GetConfigReply{}
	case TypeSetConfig:
		return &SetConfig{}
	case TypePacketIn:
		return &PacketIn{}
	case TypeFlowRemoved:
		return &FlowRemoved{}
	case TypePortStatus:
		return &PortStatus{}
	case TypePacketOut:
		return &PacketOut{}
	case TypeFlowMod:
		return &FlowMod{}
	case TypeStatsRequest:
		return &StatsRequest{}
	case TypeStatsReply:
		return &StatsReply{}
	case TypeBarrierRequest:
		return &BarrierRequest{}
	case TypeBarrierReply:
		return &BarrierReply{}
	}
	return nil
}

func typeOf(msg Message) MsgType {
	switch msg.(type) {
	case *Hello:
		return TypeHello
	case *ErrorMsg:
		return TypeError
	case *EchoRequest:
		return TypeEchoRequest
	case *EchoReply:
		return TypeEchoReply
	case *Vendor:
		return TypeVendor
	case *FeaturesRequest:
		return TypeFeaturesRequest
	case *FeaturesReply:
		return TypeFeaturesReply
	case *GetConfigRequest:
		return TypeGetConfigRequest
	case *GetConfigReply:
		return TypeGetConfigReply
	case *SetConfig:
		return TypeSetConfig
	case *PacketIn:
		return TypePacketIn
	case *FlowRemoved:
		return TypeFlowRemoved
	case *PortStatus:
		return TypePortStatus
	case *PacketOut:
		return TypePacketOut
	case *FlowMod:
		return TypeFlowMod
	case *StatsRequest:
		return TypeStatsRequest
	case *StatsReply:
		return TypeStatsReply
	case *BarrierRequest:
		return TypeBarrierRequest
	case *BarrierReply:
		return TypeBarrierReply
	}
	panic(fmt.Sprintf("openflow: unregistered message %T", msg))
}

// Hello opens version negotiation.
type Hello struct{ base }

func (m *Hello) encodeBody(b []byte) []byte { return b }
func (m *Hello) decodeBody([]byte) error    { return nil }

// EchoRequest is a liveness probe; Data is echoed back.
type EchoRequest struct {
	base
	Data []byte
}

func (m *EchoRequest) encodeBody(b []byte) []byte { return append(b, m.Data...) }
func (m *EchoRequest) decodeBody(b []byte) error {
	m.Data = append([]byte(nil), b...)
	return nil
}

// EchoReply answers an EchoRequest with the same data.
type EchoReply struct {
	base
	Data []byte
}

func (m *EchoReply) encodeBody(b []byte) []byte { return append(b, m.Data...) }
func (m *EchoReply) decodeBody(b []byte) error {
	m.Data = append([]byte(nil), b...)
	return nil
}

// Error type codes (ofp_error_type).
const (
	ErrTypeHelloFailed uint16 = iota
	ErrTypeBadRequest
	ErrTypeBadAction
	ErrTypeFlowModFailed
	ErrTypePortModFailed
	ErrTypeQueueOpFailed
)

// Selected error codes.
const (
	BadRequestBadType    uint16 = 1
	BadRequestBadStat    uint16 = 2
	FlowModAllTablesFull uint16 = 0
	FlowModOverlap       uint16 = 1
	FlowModBadCommand    uint16 = 3
)

// ErrorMsg reports a protocol error; Data carries at least 64 bytes of the
// offending message.
type ErrorMsg struct {
	base
	ErrType uint16
	Code    uint16
	Data    []byte
}

func (m *ErrorMsg) encodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, m.ErrType)
	b = binary.BigEndian.AppendUint16(b, m.Code)
	return append(b, m.Data...)
}

func (m *ErrorMsg) decodeBody(b []byte) error {
	if len(b) < 4 {
		return ErrTruncated
	}
	m.ErrType = binary.BigEndian.Uint16(b[0:2])
	m.Code = binary.BigEndian.Uint16(b[2:4])
	m.Data = append([]byte(nil), b[4:]...)
	return nil
}

// Error implements the error interface so controller code can return it.
func (m *ErrorMsg) Error() string {
	return fmt.Sprintf("openflow error type=%d code=%d", m.ErrType, m.Code)
}

// Vendor is the extension escape hatch (unused by the Homework modules but
// decoded so foreign controllers don't wedge the connection).
type Vendor struct {
	base
	VendorID uint32
	Data     []byte
}

func (m *Vendor) encodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, m.VendorID)
	return append(b, m.Data...)
}

func (m *Vendor) decodeBody(b []byte) error {
	if len(b) < 4 {
		return ErrTruncated
	}
	m.VendorID = binary.BigEndian.Uint32(b[0:4])
	m.Data = append([]byte(nil), b[4:]...)
	return nil
}

// GetConfigRequest asks for the switch config.
type GetConfigRequest struct{ base }

func (m *GetConfigRequest) encodeBody(b []byte) []byte { return b }
func (m *GetConfigRequest) decodeBody([]byte) error    { return nil }

// Config flags.
const (
	ConfigFragNormal uint16 = 0
	ConfigFragDrop   uint16 = 1
	ConfigFragReasm  uint16 = 2
)

// GetConfigReply carries the switch configuration.
type GetConfigReply struct {
	base
	Flags       uint16
	MissSendLen uint16
}

func (m *GetConfigReply) encodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, m.Flags)
	return binary.BigEndian.AppendUint16(b, m.MissSendLen)
}

func (m *GetConfigReply) decodeBody(b []byte) error {
	if len(b) < 4 {
		return ErrTruncated
	}
	m.Flags = binary.BigEndian.Uint16(b[0:2])
	m.MissSendLen = binary.BigEndian.Uint16(b[2:4])
	return nil
}

// SetConfig sets the switch configuration.
type SetConfig struct {
	base
	Flags       uint16
	MissSendLen uint16
}

func (m *SetConfig) encodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, m.Flags)
	return binary.BigEndian.AppendUint16(b, m.MissSendLen)
}

func (m *SetConfig) decodeBody(b []byte) error {
	if len(b) < 4 {
		return ErrTruncated
	}
	m.Flags = binary.BigEndian.Uint16(b[0:2])
	m.MissSendLen = binary.BigEndian.Uint16(b[2:4])
	return nil
}

// BarrierRequest asks the switch to finish processing prior messages.
type BarrierRequest struct{ base }

func (m *BarrierRequest) encodeBody(b []byte) []byte { return b }
func (m *BarrierRequest) decodeBody([]byte) error    { return nil }

// BarrierReply acknowledges a BarrierRequest.
type BarrierReply struct{ base }

func (m *BarrierReply) encodeBody(b []byte) []byte { return b }
func (m *BarrierReply) decodeBody([]byte) error    { return nil }
