package openflow

import (
	"encoding/binary"
)

// Stats types (ofp_stats_types).
const (
	StatsDesc      uint16 = 0
	StatsFlow      uint16 = 1
	StatsAggregate uint16 = 2
	StatsTable     uint16 = 3
	StatsPort      uint16 = 4
	StatsQueue     uint16 = 5
	StatsVendor    uint16 = 0xffff
)

// StatsReplyFlagMore marks a multipart reply with more parts following.
const StatsReplyFlagMore uint16 = 1 << 0

// StatsRequest asks the datapath for statistics. Exactly one of the typed
// request bodies is used, selected by StatsType.
type StatsRequest struct {
	base
	StatsType uint16
	Flags     uint16
	Flow      FlowStatsRequest // StatsFlow and StatsAggregate
	Port      PortStatsRequest // StatsPort
}

// FlowStatsRequest selects the flows covered by a flow/aggregate request.
type FlowStatsRequest struct {
	Match   Match
	TableID uint8
	OutPort uint16
}

// PortStatsRequest selects the port covered by a port stats request
// (PortNone means all ports).
type PortStatsRequest struct {
	PortNo uint16
}

func (m *StatsRequest) encodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, m.StatsType)
	b = binary.BigEndian.AppendUint16(b, m.Flags)
	switch m.StatsType {
	case StatsFlow, StatsAggregate:
		b = m.Flow.Match.encode(b)
		b = append(b, m.Flow.TableID, 0)
		b = binary.BigEndian.AppendUint16(b, m.Flow.OutPort)
	case StatsPort:
		b = binary.BigEndian.AppendUint16(b, m.Port.PortNo)
		b = append(b, make([]byte, 6)...)
	}
	return b
}

func (m *StatsRequest) decodeBody(b []byte) error {
	if len(b) < 4 {
		return ErrTruncated
	}
	m.StatsType = binary.BigEndian.Uint16(b[0:2])
	m.Flags = binary.BigEndian.Uint16(b[2:4])
	body := b[4:]
	switch m.StatsType {
	case StatsFlow, StatsAggregate:
		if len(body) < MatchLen+4 {
			return ErrTruncated
		}
		if err := m.Flow.Match.decode(body); err != nil {
			return err
		}
		m.Flow.TableID = body[MatchLen]
		m.Flow.OutPort = binary.BigEndian.Uint16(body[MatchLen+2 : MatchLen+4])
	case StatsPort:
		if len(body) < 8 {
			return ErrTruncated
		}
		m.Port.PortNo = binary.BigEndian.Uint16(body[0:2])
	}
	return nil
}

// FlowStats is one ofp_flow_stats entry.
type FlowStats struct {
	TableID      uint8
	Match        Match
	DurationSec  uint32
	DurationNsec uint32
	Priority     uint16
	IdleTimeout  uint16
	HardTimeout  uint16
	Cookie       uint64
	PacketCount  uint64
	ByteCount    uint64
	Actions      []Action
}

func (f *FlowStats) encode(b []byte) []byte {
	start := len(b)
	b = append(b, 0, 0) // length placeholder
	b = append(b, f.TableID, 0)
	b = f.Match.encode(b)
	b = binary.BigEndian.AppendUint32(b, f.DurationSec)
	b = binary.BigEndian.AppendUint32(b, f.DurationNsec)
	b = binary.BigEndian.AppendUint16(b, f.Priority)
	b = binary.BigEndian.AppendUint16(b, f.IdleTimeout)
	b = binary.BigEndian.AppendUint16(b, f.HardTimeout)
	b = append(b, make([]byte, 6)...)
	b = binary.BigEndian.AppendUint64(b, f.Cookie)
	b = binary.BigEndian.AppendUint64(b, f.PacketCount)
	b = binary.BigEndian.AppendUint64(b, f.ByteCount)
	b = encodeActions(b, f.Actions)
	binary.BigEndian.PutUint16(b[start:start+2], uint16(len(b)-start))
	return b
}

func (f *FlowStats) decode(b []byte) (rest []byte, err error) {
	if len(b) < 4 {
		return nil, ErrTruncated
	}
	length := int(binary.BigEndian.Uint16(b[0:2]))
	if length < 88 || length > len(b) {
		return nil, ErrBadLength
	}
	f.TableID = b[2]
	if err := f.Match.decode(b[4:]); err != nil {
		return nil, err
	}
	p := b[4+MatchLen:]
	f.DurationSec = binary.BigEndian.Uint32(p[0:4])
	f.DurationNsec = binary.BigEndian.Uint32(p[4:8])
	f.Priority = binary.BigEndian.Uint16(p[8:10])
	f.IdleTimeout = binary.BigEndian.Uint16(p[10:12])
	f.HardTimeout = binary.BigEndian.Uint16(p[12:14])
	f.Cookie = binary.BigEndian.Uint64(p[20:28])
	f.PacketCount = binary.BigEndian.Uint64(p[28:36])
	f.ByteCount = binary.BigEndian.Uint64(p[36:44])
	actions, err := decodeActions(b[48+MatchLen : length])
	if err != nil {
		return nil, err
	}
	f.Actions = actions
	return b[length:], nil
}

// AggregateStats is the body of an aggregate stats reply.
type AggregateStats struct {
	PacketCount uint64
	ByteCount   uint64
	FlowCount   uint32
}

// TableStats is one ofp_table_stats entry.
type TableStats struct {
	TableID      uint8
	Name         string
	Wildcards    uint32
	MaxEntries   uint32
	ActiveCount  uint32
	LookupCount  uint64
	MatchedCount uint64
}

const tableStatsLen = 64

func (t *TableStats) encode(b []byte) []byte {
	b = append(b, t.TableID, 0, 0, 0)
	name := t.Name
	if len(name) > 31 {
		name = name[:31]
	}
	b = append(b, name...)
	b = append(b, make([]byte, 32-len(name))...)
	b = binary.BigEndian.AppendUint32(b, t.Wildcards)
	b = binary.BigEndian.AppendUint32(b, t.MaxEntries)
	b = binary.BigEndian.AppendUint32(b, t.ActiveCount)
	b = binary.BigEndian.AppendUint64(b, t.LookupCount)
	b = binary.BigEndian.AppendUint64(b, t.MatchedCount)
	return b
}

func (t *TableStats) decode(b []byte) error {
	if len(b) < tableStatsLen {
		return ErrTruncated
	}
	t.TableID = b[0]
	name := b[4:36]
	for i, c := range name {
		if c == 0 {
			name = name[:i]
			break
		}
	}
	t.Name = string(name)
	t.Wildcards = binary.BigEndian.Uint32(b[36:40])
	t.MaxEntries = binary.BigEndian.Uint32(b[40:44])
	t.ActiveCount = binary.BigEndian.Uint32(b[44:48])
	t.LookupCount = binary.BigEndian.Uint64(b[48:56])
	t.MatchedCount = binary.BigEndian.Uint64(b[56:64])
	return nil
}

// PortStats is one ofp_port_stats entry. The Homework measurement plane
// polls these to populate the hwdb Links table.
type PortStats struct {
	PortNo     uint16
	RxPackets  uint64
	TxPackets  uint64
	RxBytes    uint64
	TxBytes    uint64
	RxDropped  uint64
	TxDropped  uint64
	RxErrors   uint64
	TxErrors   uint64
	RxFrameErr uint64
	RxOverErr  uint64
	RxCRCErr   uint64
	Collisions uint64
}

const portStatsLen = 104

func (p *PortStats) encode(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, p.PortNo)
	b = append(b, make([]byte, 6)...)
	for _, v := range []uint64{
		p.RxPackets, p.TxPackets, p.RxBytes, p.TxBytes,
		p.RxDropped, p.TxDropped, p.RxErrors, p.TxErrors,
		p.RxFrameErr, p.RxOverErr, p.RxCRCErr, p.Collisions,
	} {
		b = binary.BigEndian.AppendUint64(b, v)
	}
	return b
}

func (p *PortStats) decode(b []byte) error {
	if len(b) < portStatsLen {
		return ErrTruncated
	}
	p.PortNo = binary.BigEndian.Uint16(b[0:2])
	vals := []*uint64{
		&p.RxPackets, &p.TxPackets, &p.RxBytes, &p.TxBytes,
		&p.RxDropped, &p.TxDropped, &p.RxErrors, &p.TxErrors,
		&p.RxFrameErr, &p.RxOverErr, &p.RxCRCErr, &p.Collisions,
	}
	off := 8
	for _, v := range vals {
		*v = binary.BigEndian.Uint64(b[off : off+8])
		off += 8
	}
	return nil
}

// DescStats is the ofp_desc_stats reply body.
type DescStats struct {
	MfrDesc   string
	HWDesc    string
	SWDesc    string
	SerialNum string
	DPDesc    string
}

func appendPadded(b []byte, s string, n int) []byte {
	if len(s) >= n {
		s = s[:n-1]
	}
	b = append(b, s...)
	return append(b, make([]byte, n-len(s))...)
}

func paddedString(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}

// StatsReply answers a StatsRequest; the populated body field corresponds to
// StatsType.
type StatsReply struct {
	base
	StatsType uint16
	Flags     uint16

	Desc      DescStats
	Flows     []FlowStats
	Aggregate AggregateStats
	Tables    []TableStats
	Ports     []PortStats
}

func (m *StatsReply) encodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, m.StatsType)
	b = binary.BigEndian.AppendUint16(b, m.Flags)
	switch m.StatsType {
	case StatsDesc:
		b = appendPadded(b, m.Desc.MfrDesc, 256)
		b = appendPadded(b, m.Desc.HWDesc, 256)
		b = appendPadded(b, m.Desc.SWDesc, 256)
		b = appendPadded(b, m.Desc.SerialNum, 32)
		b = appendPadded(b, m.Desc.DPDesc, 256)
	case StatsFlow:
		for i := range m.Flows {
			b = m.Flows[i].encode(b)
		}
	case StatsAggregate:
		b = binary.BigEndian.AppendUint64(b, m.Aggregate.PacketCount)
		b = binary.BigEndian.AppendUint64(b, m.Aggregate.ByteCount)
		b = binary.BigEndian.AppendUint32(b, m.Aggregate.FlowCount)
		b = append(b, 0, 0, 0, 0)
	case StatsTable:
		for i := range m.Tables {
			b = m.Tables[i].encode(b)
		}
	case StatsPort:
		for i := range m.Ports {
			b = m.Ports[i].encode(b)
		}
	}
	return b
}

func (m *StatsReply) decodeBody(b []byte) error {
	if len(b) < 4 {
		return ErrTruncated
	}
	m.StatsType = binary.BigEndian.Uint16(b[0:2])
	m.Flags = binary.BigEndian.Uint16(b[2:4])
	body := b[4:]
	switch m.StatsType {
	case StatsDesc:
		if len(body) < 256*4+32 {
			return ErrTruncated
		}
		m.Desc.MfrDesc = paddedString(body[0:256])
		m.Desc.HWDesc = paddedString(body[256:512])
		m.Desc.SWDesc = paddedString(body[512:768])
		m.Desc.SerialNum = paddedString(body[768:800])
		m.Desc.DPDesc = paddedString(body[800:1056])
	case StatsFlow:
		m.Flows = nil
		for len(body) > 0 {
			var f FlowStats
			rest, err := f.decode(body)
			if err != nil {
				return err
			}
			m.Flows = append(m.Flows, f)
			body = rest
		}
	case StatsAggregate:
		if len(body) < 20 {
			return ErrTruncated
		}
		m.Aggregate.PacketCount = binary.BigEndian.Uint64(body[0:8])
		m.Aggregate.ByteCount = binary.BigEndian.Uint64(body[8:16])
		m.Aggregate.FlowCount = binary.BigEndian.Uint32(body[16:20])
	case StatsTable:
		m.Tables = nil
		for len(body) >= tableStatsLen {
			var t TableStats
			if err := t.decode(body); err != nil {
				return err
			}
			m.Tables = append(m.Tables, t)
			body = body[tableStatsLen:]
		}
	case StatsPort:
		m.Ports = nil
		for len(body) >= portStatsLen {
			var p PortStats
			if err := p.decode(body); err != nil {
				return err
			}
			m.Ports = append(m.Ports, p)
			body = body[portStatsLen:]
		}
	}
	return nil
}
