package openflow

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/packet"
)

// MatchLen is the length of the ofp_match structure.
const MatchLen = 40

// Wildcard bits (OFPFW_*). A set bit means the corresponding field is NOT
// matched. The nw_src/nw_dst fields use 6-bit counts of ignored low bits.
const (
	FWInPort  uint32 = 1 << 0
	FWDLVLAN  uint32 = 1 << 1
	FWDLSrc   uint32 = 1 << 2
	FWDLDst   uint32 = 1 << 3
	FWDLType  uint32 = 1 << 4
	FWNWProto uint32 = 1 << 5
	FWTPSrc   uint32 = 1 << 6
	FWTPDst   uint32 = 1 << 7

	fwNWSrcShift        = 8
	fwNWDstShift        = 14
	FWNWSrcAll   uint32 = 32 << fwNWSrcShift
	FWNWSrcMask  uint32 = 0x3f << fwNWSrcShift
	FWNWDstAll   uint32 = 32 << fwNWDstShift
	FWNWDstMask  uint32 = 0x3f << fwNWDstShift

	FWDLVLANPCP uint32 = 1 << 20
	FWNWTOS     uint32 = 1 << 21

	// FWAll wildcards every field.
	FWAll uint32 = (1 << 22) - 1
)

// Match is the OpenFlow 1.0 ofp_match: a flow is defined in terms of the
// input port and selected values of packet header fields.
type Match struct {
	Wildcards uint32
	InPort    uint16
	DLSrc     packet.MAC
	DLDst     packet.MAC
	DLVLAN    uint16
	DLVLANPCP uint8
	DLType    packet.EtherType
	NWTOS     uint8
	NWProto   uint8
	NWSrc     packet.IP4
	NWDst     packet.IP4
	TPSrc     uint16
	TPDst     uint16
}

// MatchAll returns a match with every field wildcarded.
func MatchAll() Match { return Match{Wildcards: FWAll} }

// NWSrcBits returns the number of low bits ignored in NWSrc (0 = exact,
// >=32 = fully wildcarded).
func (m *Match) NWSrcBits() uint32 {
	b := (m.Wildcards & FWNWSrcMask) >> fwNWSrcShift
	if b > 32 {
		b = 32
	}
	return b
}

// NWDstBits returns the number of low bits ignored in NWDst.
func (m *Match) NWDstBits() uint32 {
	b := (m.Wildcards & FWNWDstMask) >> fwNWDstShift
	if b > 32 {
		b = 32
	}
	return b
}

// SetNWSrcPrefix sets the NWSrc wildcard to match a prefix of the given
// length (32 = exact match).
func (m *Match) SetNWSrcPrefix(prefix int) {
	m.Wildcards = m.Wildcards&^FWNWSrcMask | uint32(32-prefix)<<fwNWSrcShift
}

// SetNWDstPrefix sets the NWDst wildcard to match a prefix length.
func (m *Match) SetNWDstPrefix(prefix int) {
	m.Wildcards = m.Wildcards&^FWNWDstMask | uint32(32-prefix)<<fwNWDstShift
}

// encode appends the 40-byte wire form.
func (m *Match) encode(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, m.Wildcards)
	b = binary.BigEndian.AppendUint16(b, m.InPort)
	b = append(b, m.DLSrc[:]...)
	b = append(b, m.DLDst[:]...)
	b = binary.BigEndian.AppendUint16(b, m.DLVLAN)
	b = append(b, m.DLVLANPCP, 0)
	b = binary.BigEndian.AppendUint16(b, uint16(m.DLType))
	b = append(b, m.NWTOS, m.NWProto, 0, 0)
	b = append(b, m.NWSrc[:]...)
	b = append(b, m.NWDst[:]...)
	b = binary.BigEndian.AppendUint16(b, m.TPSrc)
	b = binary.BigEndian.AppendUint16(b, m.TPDst)
	return b
}

// decode parses the 40-byte wire form.
func (m *Match) decode(b []byte) error {
	if len(b) < MatchLen {
		return ErrTruncated
	}
	m.Wildcards = binary.BigEndian.Uint32(b[0:4])
	m.InPort = binary.BigEndian.Uint16(b[4:6])
	copy(m.DLSrc[:], b[6:12])
	copy(m.DLDst[:], b[12:18])
	m.DLVLAN = binary.BigEndian.Uint16(b[18:20])
	m.DLVLANPCP = b[20]
	m.DLType = packet.EtherType(binary.BigEndian.Uint16(b[22:24]))
	m.NWTOS = b[24]
	m.NWProto = b[25]
	copy(m.NWSrc[:], b[28:32])
	copy(m.NWDst[:], b[32:36])
	m.TPSrc = binary.BigEndian.Uint16(b[36:38])
	m.TPDst = binary.BigEndian.Uint16(b[38:40])
	return nil
}

// MatchFromFrame builds an exact match (no wildcards beyond inapplicable
// fields) from a decoded frame, as a reactive controller does when
// installing a flow for a packet-in.
func MatchFromFrame(d *packet.Decoded, inPort uint16) Match {
	m := Match{
		InPort: inPort,
		DLSrc:  d.Eth.Src,
		DLDst:  d.Eth.Dst,
		DLType: d.Eth.Type,
		DLVLAN: 0xffff, // OFP_VLAN_NONE
	}
	if d.Eth.Tagged {
		m.DLVLAN = d.Eth.VLANID
		m.DLVLANPCP = d.Eth.VLANPriority
	}
	switch {
	case d.HasARP:
		m.NWProto = uint8(d.ARP.Op)
		m.NWSrc = d.ARP.SenderIP
		m.NWDst = d.ARP.TargetIP
		m.Wildcards = FWTPSrc | FWTPDst | FWNWTOS
	case d.HasIP:
		m.NWTOS = d.IP.TOS
		m.NWProto = uint8(d.IP.Protocol)
		m.NWSrc = d.IP.Src
		m.NWDst = d.IP.Dst
		switch {
		case d.HasTCP:
			m.TPSrc, m.TPDst = d.TCP.SrcPort, d.TCP.DstPort
		case d.HasUDP:
			m.TPSrc, m.TPDst = d.UDP.SrcPort, d.UDP.DstPort
		case d.HasICMP:
			m.TPSrc, m.TPDst = uint16(d.ICMP.Type), uint16(d.ICMP.Code)
		default:
			m.Wildcards = FWTPSrc | FWTPDst
		}
	default:
		m.Wildcards = FWNWProto | FWTPSrc | FWTPDst | FWNWTOS | FWNWSrcAll | FWNWDstAll
	}
	return m
}

// Matches reports whether a decoded frame arriving on inPort satisfies the
// match, honouring every wildcard bit.
func (m *Match) Matches(d *packet.Decoded, inPort uint16) bool {
	w := m.Wildcards
	if w&FWInPort == 0 && m.InPort != inPort {
		return false
	}
	if w&FWDLSrc == 0 && m.DLSrc != d.Eth.Src {
		return false
	}
	if w&FWDLDst == 0 && m.DLDst != d.Eth.Dst {
		return false
	}
	if w&FWDLVLAN == 0 {
		vlan := uint16(0xffff)
		if d.Eth.Tagged {
			vlan = d.Eth.VLANID
		}
		if m.DLVLAN != vlan {
			return false
		}
	}
	if w&FWDLVLANPCP == 0 && d.Eth.Tagged && m.DLVLANPCP != d.Eth.VLANPriority {
		return false
	}
	if w&FWDLType == 0 && m.DLType != d.Eth.Type {
		return false
	}

	// Network fields: sourced from IPv4 or, per the spec, from ARP.
	var nwSrc, nwDst packet.IP4
	var nwProto, nwTOS uint8
	var tpSrc, tpDst uint16
	haveNW := false
	switch {
	case d.HasIP:
		nwSrc, nwDst = d.IP.Src, d.IP.Dst
		nwProto, nwTOS = uint8(d.IP.Protocol), d.IP.TOS
		haveNW = true
		switch {
		case d.HasTCP:
			tpSrc, tpDst = d.TCP.SrcPort, d.TCP.DstPort
		case d.HasUDP:
			tpSrc, tpDst = d.UDP.SrcPort, d.UDP.DstPort
		case d.HasICMP:
			tpSrc, tpDst = uint16(d.ICMP.Type), uint16(d.ICMP.Code)
		}
	case d.HasARP:
		nwSrc, nwDst = d.ARP.SenderIP, d.ARP.TargetIP
		nwProto = uint8(d.ARP.Op)
		haveNW = true
	}

	if w&FWNWProto == 0 && (!haveNW || m.NWProto != nwProto) {
		return false
	}
	if w&FWNWTOS == 0 && (!haveNW || m.NWTOS != nwTOS) {
		return false
	}
	if bits := m.NWSrcBits(); bits < 32 {
		if !haveNW || m.NWSrc.Mask(32-int(bits)) != nwSrc.Mask(32-int(bits)) {
			return false
		}
	}
	if bits := m.NWDstBits(); bits < 32 {
		if !haveNW || m.NWDst.Mask(32-int(bits)) != nwDst.Mask(32-int(bits)) {
			return false
		}
	}
	if w&FWTPSrc == 0 && (!haveNW || m.TPSrc != tpSrc) {
		return false
	}
	if w&FWTPDst == 0 && (!haveNW || m.TPDst != tpDst) {
		return false
	}
	return true
}

// Subsumes reports whether every packet matched by other is also matched by
// m (used for DELETE with non-strict semantics).
func (m *Match) Subsumes(other *Match) bool {
	type field struct {
		bit uint32
		eq  bool
	}
	fields := []field{
		{FWInPort, m.InPort == other.InPort},
		{FWDLSrc, m.DLSrc == other.DLSrc},
		{FWDLDst, m.DLDst == other.DLDst},
		{FWDLVLAN, m.DLVLAN == other.DLVLAN},
		{FWDLVLANPCP, m.DLVLANPCP == other.DLVLANPCP},
		{FWDLType, m.DLType == other.DLType},
		{FWNWProto, m.NWProto == other.NWProto},
		{FWNWTOS, m.NWTOS == other.NWTOS},
		{FWTPSrc, m.TPSrc == other.TPSrc},
		{FWTPDst, m.TPDst == other.TPDst},
	}
	for _, f := range fields {
		if m.Wildcards&f.bit != 0 {
			continue // m ignores the field
		}
		if other.Wildcards&f.bit != 0 || !f.eq {
			return false
		}
	}
	mb, ob := m.NWSrcBits(), other.NWSrcBits()
	if mb < 32 {
		if ob > mb || m.NWSrc.Mask(32-int(mb)) != other.NWSrc.Mask(32-int(mb)) {
			return false
		}
	}
	mb, ob = m.NWDstBits(), other.NWDstBits()
	if mb < 32 {
		if ob > mb || m.NWDst.Mask(32-int(mb)) != other.NWDst.Mask(32-int(mb)) {
			return false
		}
	}
	return true
}

// IsExact reports whether no field is wildcarded.
func (m *Match) IsExact() bool {
	return m.Wildcards&^(FWNWSrcMask|FWNWDstMask) == 0 && m.NWSrcBits() == 0 && m.NWDstBits() == 0
}

// String renders only the concrete (non-wildcarded) fields.
func (m *Match) String() string {
	var parts []string
	w := m.Wildcards
	if w&FWInPort == 0 {
		parts = append(parts, fmt.Sprintf("in_port=%d", m.InPort))
	}
	if w&FWDLSrc == 0 {
		parts = append(parts, "dl_src="+m.DLSrc.String())
	}
	if w&FWDLDst == 0 {
		parts = append(parts, "dl_dst="+m.DLDst.String())
	}
	if w&FWDLType == 0 {
		parts = append(parts, "dl_type="+m.DLType.String())
	}
	if w&FWNWProto == 0 {
		parts = append(parts, fmt.Sprintf("nw_proto=%d", m.NWProto))
	}
	if b := m.NWSrcBits(); b < 32 {
		parts = append(parts, fmt.Sprintf("nw_src=%s/%d", m.NWSrc, 32-b))
	}
	if b := m.NWDstBits(); b < 32 {
		parts = append(parts, fmt.Sprintf("nw_dst=%s/%d", m.NWDst, 32-b))
	}
	if w&FWTPSrc == 0 {
		parts = append(parts, fmt.Sprintf("tp_src=%d", m.TPSrc))
	}
	if w&FWTPDst == 0 {
		parts = append(parts, fmt.Sprintf("tp_dst=%d", m.TPDst))
	}
	if len(parts) == 0 {
		return "any"
	}
	return strings.Join(parts, ",")
}
