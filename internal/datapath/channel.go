package datapath

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/oftransport"
	"repro/internal/openflow"
)

// ErrChannelClosed is returned by the Connect family when the secure
// channel shuts down in an orderly way — Stop was called or the controller
// closed its end. Callers distinguish it (via errors.Is) from a protocol
// failure, which surfaces as a *ChannelError wrapping the underlying
// cause.
var ErrChannelClosed = errors.New("datapath: secure channel closed")

// ChannelError is a secure-channel failure: dialing, the HELLO handshake,
// or reading from the transport failed for a reason other than an orderly
// shutdown. Op says which phase failed; Err is the underlying cause.
type ChannelError struct {
	Op  string // "dial", "handshake" or "read"
	Err error
}

func (e *ChannelError) Error() string {
	return fmt.Sprintf("datapath: secure channel %s: %v", e.Op, e.Err)
}

func (e *ChannelError) Unwrap() error { return e.Err }

// channelErr classifies a transport error: orderly shutdown becomes
// ErrChannelClosed, anything else a *ChannelError for op.
func channelErr(op string, err error) error {
	if errors.Is(err, oftransport.ErrClosed) {
		return ErrChannelClosed
	}
	return &ChannelError{Op: op, Err: err}
}

// Connect attaches the datapath to a controller over conn (typically a TCP
// connection or a net.Pipe end) and services the secure channel until the
// connection closes or Stop is called. See ConnectTransport for the
// return-value contract.
func (dp *Datapath) Connect(conn net.Conn) error {
	return dp.ConnectTransport(oftransport.NewTCP(conn))
}

// ConnectTransport attaches the datapath to a controller over one
// transport endpoint and services the secure channel until it closes or
// Stop is called. It performs the OpenFlow handshake (HELLO exchange) and
// then answers controller requests. It returns ErrChannelClosed on an
// orderly shutdown and a *ChannelError on a handshake or protocol
// failure.
func (dp *Datapath) ConnectTransport(tr oftransport.Transport) error {
	dp.connMu.Lock()
	dp.tr = tr
	dp.connMu.Unlock()

	if err := tr.Send(&openflow.Hello{}); err != nil {
		return channelErr("handshake", err)
	}
	msg, err := tr.Recv()
	if err != nil {
		return channelErr("handshake", err)
	}
	if _, ok := msg.(*openflow.Hello); !ok {
		return &ChannelError{Op: "handshake", Err: fmt.Errorf("expected HELLO, got %T", msg)}
	}

	go dp.expiryLoop()

	// Like the controller's read loop, drain the transport in batches
	// when it supports it: a flurry of flow-mods and packet-outs from one
	// dispatched punt burst is handled per wakeup, not per message.
	var batch []openflow.Message
	for {
		var err error
		batch, err = oftransport.RecvInto(tr, batch)
		if err != nil {
			dp.connMu.Lock()
			dp.tr = nil
			dp.connMu.Unlock()
			return channelErr("read", err)
		}
		for i, msg := range batch {
			batch[i] = nil
			dp.handle(msg)
		}
	}
}

// ConnectTCP dials the controller and runs the secure channel over the
// wire transport.
func (dp *Datapath) ConnectTCP(addr string) error {
	tr, err := oftransport.DialTCP(addr)
	if err != nil {
		return &ChannelError{Op: "dial", Err: err}
	}
	return dp.ConnectTransport(tr)
}

// Stop closes the secure channel and halts the expiry loop.
func (dp *Datapath) Stop() {
	dp.stopMu.Lock()
	select {
	case <-dp.stopped:
	default:
		close(dp.stopped)
	}
	dp.stopMu.Unlock()
	dp.connMu.Lock()
	if dp.tr != nil {
		_ = dp.tr.Close()
		dp.tr = nil
	}
	dp.connMu.Unlock()
}

// expiryLoop sweeps flow timeouts once a second on the datapath clock.
func (dp *Datapath) expiryLoop() {
	for {
		select {
		case <-dp.stopped:
			return
		case <-dp.clk.After(time.Second):
		}
		dp.SweepExpired()
	}
}

// SweepExpired removes timed-out flows now and emits flow-removed messages
// for entries that requested them. Exposed for simulated-clock tests.
func (dp *Datapath) SweepExpired() int {
	now := dp.clk.Now()
	removed, reasons := dp.table.Expire(now)
	for i, e := range removed {
		if !e.SendFlowRem {
			continue
		}
		dur := now.Sub(e.Installed)
		dp.send(&openflow.FlowRemoved{
			Match: e.Match, Cookie: e.Cookie, Priority: e.Priority,
			Reason:      reasons[i],
			DurationSec: uint32(dur / time.Second), DurationNsec: uint32(dur % time.Second),
			IdleTimeout: e.IdleTimeout,
			PacketCount: e.PacketCount(), ByteCount: e.ByteCount(),
		})
	}
	return len(removed)
}

// handle dispatches one controller-to-switch message.
func (dp *Datapath) handle(msg openflow.Message) {
	switch m := msg.(type) {
	case *openflow.EchoRequest:
		rep := &openflow.EchoReply{Data: m.Data}
		rep.Header.XID = m.Header.XID
		dp.send(rep)
	case *openflow.EchoReply, *openflow.Hello:
		// Nothing to do.
	case *openflow.FeaturesRequest:
		dp.sendFeatures(m.Header.XID)
	case *openflow.GetConfigRequest:
		rep := &openflow.GetConfigReply{Flags: uint16(dp.configFlags.Load()), MissSendLen: uint16(dp.missSendLen.Load())}
		rep.Header.XID = m.Header.XID
		dp.send(rep)
	case *openflow.SetConfig:
		dp.configFlags.Store(uint32(m.Flags))
		if m.MissSendLen > 0 {
			dp.missSendLen.Store(uint32(m.MissSendLen))
		}
	case *openflow.FlowMod:
		dp.handleFlowMod(m)
	case *openflow.PacketOut:
		dp.handlePacketOut(m)
	case *openflow.StatsRequest:
		dp.handleStats(m)
	case *openflow.BarrierRequest:
		// The datapath processes messages synchronously, so every prior
		// message is already complete.
		rep := &openflow.BarrierReply{}
		rep.Header.XID = m.Header.XID
		dp.send(rep)
	default:
		dp.sendError(msg, openflow.ErrTypeBadRequest, openflow.BadRequestBadType)
	}
}

func (dp *Datapath) sendFeatures(xid uint32) {
	rep := &openflow.FeaturesReply{
		DatapathID:   dp.id,
		NBuffers:     uint32(dp.nBuffers),
		NTables:      1,
		Capabilities: openflow.CapFlowStats | openflow.CapTableStats | openflow.CapPortStats,
		Actions:      0xfff, // all basic actions
	}
	rep.Header.XID = xid
	for _, p := range dp.Ports() {
		rep.Ports = append(rep.Ports, phyPort(p))
	}
	dp.send(rep)
}

func (dp *Datapath) sendError(orig openflow.Message, typ, code uint16) {
	data := openflow.Encode(orig)
	if len(data) > 64 {
		data = data[:64]
	}
	e := &openflow.ErrorMsg{ErrType: typ, Code: code, Data: data}
	e.Header.XID = orig.Hdr().XID
	dp.send(e)
}

func (dp *Datapath) handleFlowMod(m *openflow.FlowMod) {
	switch m.Command {
	case openflow.FlowModAdd:
		entry := &FlowEntry{
			Match: m.Match, Priority: m.Priority, Cookie: m.Cookie,
			IdleTimeout: m.IdleTimeout, HardTimeout: m.HardTimeout,
			Actions:     m.Actions,
			SendFlowRem: m.Flags&openflow.FlowModFlagSendFlowRem != 0,
			Installed:   dp.clk.Now(),
		}
		if err := dp.table.Add(entry, m.Flags&openflow.FlowModFlagCheckOverlap != 0); err != nil {
			dp.sendError(m, openflow.ErrTypeFlowModFailed, openflow.FlowModOverlap)
			return
		}
		// If the flow-mod references a buffered packet, run it through the
		// new rule immediately.
		if m.BufferID != openflow.NoBuffer {
			if frame, inPort, ok := dp.takeBuffer(m.BufferID); ok {
				dp.execute(inPort, frame, m.Actions)
			}
		}
	case openflow.FlowModModify, openflow.FlowModModifyStrict:
		strict := m.Command == openflow.FlowModModifyStrict
		if n := dp.table.Modify(&m.Match, m.Priority, strict, m.Actions); n == 0 {
			// Per spec, MODIFY with no matching entry behaves like ADD.
			entry := &FlowEntry{
				Match: m.Match, Priority: m.Priority, Cookie: m.Cookie,
				IdleTimeout: m.IdleTimeout, HardTimeout: m.HardTimeout,
				Actions:     m.Actions,
				SendFlowRem: m.Flags&openflow.FlowModFlagSendFlowRem != 0,
				Installed:   dp.clk.Now(),
			}
			_ = dp.table.Add(entry, false)
		}
	case openflow.FlowModDelete, openflow.FlowModDeleteStrict:
		strict := m.Command == openflow.FlowModDeleteStrict
		removed := dp.table.Delete(&m.Match, m.Priority, strict, m.OutPort)
		now := dp.clk.Now()
		for _, e := range removed {
			if !e.SendFlowRem {
				continue
			}
			dur := now.Sub(e.Installed)
			dp.send(&openflow.FlowRemoved{
				Match: e.Match, Cookie: e.Cookie, Priority: e.Priority,
				Reason:      openflow.FlowRemovedDelete,
				DurationSec: uint32(dur / time.Second),
				IdleTimeout: e.IdleTimeout,
				PacketCount: e.PacketCount(), ByteCount: e.ByteCount(),
			})
		}
	default:
		dp.sendError(m, openflow.ErrTypeFlowModFailed, openflow.FlowModBadCommand)
	}
}

func (dp *Datapath) handlePacketOut(m *openflow.PacketOut) {
	frame := m.Data
	inPort := m.InPort
	if m.BufferID != openflow.NoBuffer {
		if f, ip, ok := dp.takeBuffer(m.BufferID); ok {
			frame = f
			if inPort == openflow.PortNone {
				inPort = ip
			}
		}
	}
	if len(frame) == 0 {
		return
	}
	// PortTable in the action list means "run the flow table".
	for _, a := range m.Actions {
		if out, ok := a.(*openflow.ActionOutput); ok && out.Port == openflow.PortTable {
			dp.Receive(inPort, frame)
			return
		}
	}
	dp.execute(inPort, frame, m.Actions)
}

func (dp *Datapath) handleStats(m *openflow.StatsRequest) {
	rep := &openflow.StatsReply{StatsType: m.StatsType}
	rep.Header.XID = m.Header.XID
	now := dp.clk.Now()
	switch m.StatsType {
	case openflow.StatsDesc:
		rep.Desc = openflow.DescStats{
			MfrDesc:   "Homework Project",
			HWDesc:    "software datapath",
			SWDesc:    "repro/internal/datapath",
			SerialNum: "1",
			DPDesc:    dp.desc,
		}
	case openflow.StatsFlow:
		for _, e := range dp.table.Entries(&m.Flow.Match, m.Flow.OutPort) {
			dur := now.Sub(e.Installed)
			rep.Flows = append(rep.Flows, openflow.FlowStats{
				TableID: 0, Match: e.Match,
				DurationSec:  uint32(dur / time.Second),
				DurationNsec: uint32(dur % time.Second),
				Priority:     e.Priority,
				IdleTimeout:  e.IdleTimeout, HardTimeout: e.HardTimeout,
				Cookie:      e.Cookie,
				PacketCount: e.PacketCount(), ByteCount: e.ByteCount(),
				Actions: e.Actions,
			})
		}
	case openflow.StatsAggregate:
		var agg openflow.AggregateStats
		for _, e := range dp.table.Entries(&m.Flow.Match, m.Flow.OutPort) {
			agg.PacketCount += e.PacketCount()
			agg.ByteCount += e.ByteCount()
			agg.FlowCount++
		}
		rep.Aggregate = agg
	case openflow.StatsTable:
		lookups, matched := dp.table.Counters()
		rep.Tables = []openflow.TableStats{{
			TableID: 0, Name: "classifier", Wildcards: openflow.FWAll,
			MaxEntries:  1 << 20,
			ActiveCount: uint32(dp.table.Len()),
			LookupCount: lookups, MatchedCount: matched,
		}}
	case openflow.StatsPort:
		for _, p := range dp.Ports() {
			if m.Port.PortNo != openflow.PortNone && m.Port.PortNo != p.No {
				continue
			}
			rep.Ports = append(rep.Ports, p.Stats())
		}
	default:
		dp.sendError(m, openflow.ErrTypeBadRequest, openflow.BadRequestBadStat)
		return
	}
	dp.send(rep)
}
