// Package datapath implements a software OpenFlow 1.0 switch: the Open
// vSwitch stand-in at the heart of the Homework router. A Datapath owns a
// set of ports, a flow table with priority and wildcard matching, and a
// secure channel to a controller over any oftransport.Transport — the
// classic TCP wire path (Connect/ConnectTCP) or an in-process endpoint
// (ConnectTransport with one end of oftransport.Pair) when controller and
// switch share a process. Orderly channel shutdown surfaces as
// ErrChannelClosed; protocol failures as *ChannelError.
//
// Concurrency: a Datapath is safe for concurrent use. Ports and the flow
// table are guarded by read-write locks with atomic counters on the
// lookup path, so frames may be received on many ports at once while the
// secure-channel goroutine applies flow-mods; anything retained from a
// caller's buffer (punt buffers, packet-in data) is copied first. Every
// punt is counted on the datapath's quiesce.Epoch before it is sent, the
// producer half of the control plane's event-driven settle protocol
// (docs/CONTROL_PLANE.md).
package datapath

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/openflow"
	"repro/internal/packet"
)

// FlowEntry is one row of the flow table with its counters. The counters
// are atomics so the per-packet lookup path can charge them under the
// table's read lock, letting all ports match concurrently.
type FlowEntry struct {
	Match       openflow.Match
	Priority    uint16
	Cookie      uint64
	IdleTimeout uint16 // seconds; 0 = never
	HardTimeout uint16 // seconds; 0 = never
	Actions     []openflow.Action
	SendFlowRem bool

	Installed time.Time

	packets  atomic.Uint64
	bytes    atomic.Uint64
	lastUsed atomic.Int64 // UnixNano of the last match; 0 = never
}

// PacketCount returns how many packets have matched the entry.
func (e *FlowEntry) PacketCount() uint64 { return e.packets.Load() }

// ByteCount returns how many bytes have matched the entry.
func (e *FlowEntry) ByteCount() uint64 { return e.bytes.Load() }

// LastUsed returns when the entry last matched a packet; ok is false if
// it never has.
func (e *FlowEntry) LastUsed() (t time.Time, ok bool) {
	n := e.lastUsed.Load()
	if n == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, n), true
}

// touch charges one matched packet to the entry's counters.
func (e *FlowEntry) touch(frameLen int, nowNanos int64) {
	e.packets.Add(1)
	e.bytes.Add(uint64(frameLen))
	e.lastUsed.Store(nowNanos)
}

// flowKey identifies an entry for strict operations.
type flowKey struct {
	match    openflow.Match
	priority uint16
}

// FlowTable is a priority-ordered flow table with an exact-match fast path:
// entries whose match has no wildcards live in a hash map keyed by the
// canonical match, everything else is scanned in priority order.
type FlowTable struct {
	mu    sync.RWMutex
	exact map[openflow.Match]*FlowEntry
	wild  []*FlowEntry // sorted by priority descending, stable

	lookups atomic.Uint64
	matched atomic.Uint64
}

// NewFlowTable returns an empty table.
func NewFlowTable() *FlowTable {
	return &FlowTable{exact: make(map[openflow.Match]*FlowEntry)}
}

// Len returns the number of installed entries.
func (t *FlowTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.exact) + len(t.wild)
}

// Counters returns total lookups and matches since creation.
func (t *FlowTable) Counters() (lookups, matched uint64) {
	return t.lookups.Load(), t.matched.Load()
}

// Lookup finds the highest-priority entry matching a decoded frame and
// charges the entry's counters. Exact entries win over wildcarded ones, as
// in OpenFlow 1.0. Lookups run under the read lock — counters are atomics
// — so the per-packet path never serializes ports behind a single mutex.
func (t *FlowTable) Lookup(d *packet.Decoded, inPort uint16, frameLen int, now time.Time) *FlowEntry {
	key := openflow.MatchFromFrame(d, inPort)
	nanos := now.UnixNano()
	t.lookups.Add(1)
	t.mu.RLock()
	defer t.mu.RUnlock()
	if e, ok := t.exact[key]; ok {
		t.matched.Add(1)
		e.touch(frameLen, nanos)
		return e
	}
	for _, e := range t.wild {
		if e.Match.Matches(d, inPort) {
			t.matched.Add(1)
			e.touch(frameLen, nanos)
			return e
		}
	}
	return nil
}

// Add installs an entry, replacing any entry with an identical match and
// priority (counters reset, per the OpenFlow ADD semantics). When
// checkOverlap is set, an overlapping entry at the same priority is an
// error; the scan walks the exact map and wildcard list in place rather
// than materializing a copy of the table per flow-mod.
func (t *FlowTable) Add(e *FlowEntry, checkOverlap bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if checkOverlap {
		conflict := func(o *FlowEntry) bool {
			return o.Priority == e.Priority && o.Match != e.Match && overlaps(&o.Match, &e.Match)
		}
		for _, o := range t.exact {
			if conflict(o) {
				return &openflow.ErrorMsg{ErrType: openflow.ErrTypeFlowModFailed, Code: openflow.FlowModOverlap}
			}
		}
		for _, o := range t.wild {
			if conflict(o) {
				return &openflow.ErrorMsg{ErrType: openflow.ErrTypeFlowModFailed, Code: openflow.FlowModOverlap}
			}
		}
	}
	t.removeLocked(flowKey{e.Match, e.Priority})
	if e.Match.IsExact() {
		t.exact[e.Match] = e
		return nil
	}
	idx := sort.Search(len(t.wild), func(i int) bool { return t.wild[i].Priority < e.Priority })
	t.wild = append(t.wild, nil)
	copy(t.wild[idx+1:], t.wild[idx:])
	t.wild[idx] = e
	return nil
}

// overlaps reports whether a single packet could match both a and b: for
// every field either at least one side wildcards it, or both match the same
// value (address prefixes must agree on the shared prefix).
func overlaps(a, b *openflow.Match) bool {
	type field struct {
		bit uint32
		eq  bool
	}
	fields := []field{
		{openflow.FWInPort, a.InPort == b.InPort},
		{openflow.FWDLSrc, a.DLSrc == b.DLSrc},
		{openflow.FWDLDst, a.DLDst == b.DLDst},
		{openflow.FWDLVLAN, a.DLVLAN == b.DLVLAN},
		{openflow.FWDLVLANPCP, a.DLVLANPCP == b.DLVLANPCP},
		{openflow.FWDLType, a.DLType == b.DLType},
		{openflow.FWNWProto, a.NWProto == b.NWProto},
		{openflow.FWNWTOS, a.NWTOS == b.NWTOS},
		{openflow.FWTPSrc, a.TPSrc == b.TPSrc},
		{openflow.FWTPDst, a.TPDst == b.TPDst},
	}
	for _, f := range fields {
		if a.Wildcards&f.bit == 0 && b.Wildcards&f.bit == 0 && !f.eq {
			return false
		}
	}
	// Address prefixes: the shorter prefix must contain the longer one.
	wide := func(x, y uint32) int { // longer ignored-bits count = shorter prefix
		if x > y {
			return int(x)
		}
		return int(y)
	}
	if bits := wide(a.NWSrcBits(), b.NWSrcBits()); bits < 32 {
		if a.NWSrc.Mask(32-bits) != b.NWSrc.Mask(32-bits) {
			return false
		}
	}
	if bits := wide(a.NWDstBits(), b.NWDstBits()); bits < 32 {
		if a.NWDst.Mask(32-bits) != b.NWDst.Mask(32-bits) {
			return false
		}
	}
	return true
}

// Modify updates the actions of entries matched by m (non-strict: all
// entries subsumed by m). It reports how many entries were updated.
func (t *FlowTable) Modify(m *openflow.Match, priority uint16, strict bool, actions []openflow.Action) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	apply := func(e *FlowEntry) {
		if strict {
			if e.Match != *m || e.Priority != priority {
				return
			}
		} else if !m.Subsumes(&e.Match) {
			return
		}
		e.Actions = actions
		n++
	}
	for _, e := range t.exact {
		apply(e)
	}
	for _, e := range t.wild {
		apply(e)
	}
	return n
}

// Delete removes entries matched by m (strict: identical match+priority;
// non-strict: subsumed by m). outPort, when not PortNone, restricts removal
// to entries with an output action to that port. Removed entries are
// returned so the datapath can emit flow-removed messages.
func (t *FlowTable) Delete(m *openflow.Match, priority uint16, strict bool, outPort uint16) []*FlowEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var removed []*FlowEntry
	match := func(e *FlowEntry) bool {
		if strict {
			if e.Match != *m || e.Priority != priority {
				return false
			}
		} else if !m.Subsumes(&e.Match) {
			return false
		}
		if outPort != openflow.PortNone && !outputsTo(e.Actions, outPort) {
			return false
		}
		return true
	}
	for k, e := range t.exact {
		if match(e) {
			removed = append(removed, e)
			delete(t.exact, k)
		}
	}
	kept := t.wild[:0]
	for _, e := range t.wild {
		if match(e) {
			removed = append(removed, e)
		} else {
			kept = append(kept, e)
		}
	}
	t.wild = kept
	return removed
}

func outputsTo(actions []openflow.Action, port uint16) bool {
	for _, a := range actions {
		if out, ok := a.(*openflow.ActionOutput); ok && out.Port == port {
			return true
		}
		if enq, ok := a.(*openflow.ActionEnqueue); ok && enq.Port == port {
			return true
		}
	}
	return false
}

// Expire removes entries whose idle or hard timeout has passed, returning
// them with the reason for each.
func (t *FlowTable) Expire(now time.Time) (removed []*FlowEntry, reasons []uint8) {
	t.mu.Lock()
	defer t.mu.Unlock()
	expired := func(e *FlowEntry) (uint8, bool) {
		if e.HardTimeout > 0 && now.Sub(e.Installed) >= time.Duration(e.HardTimeout)*time.Second {
			return openflow.FlowRemovedHardTimeout, true
		}
		if e.IdleTimeout > 0 {
			last := e.Installed
			if lu, ok := e.LastUsed(); ok {
				last = lu
			}
			if now.Sub(last) >= time.Duration(e.IdleTimeout)*time.Second {
				return openflow.FlowRemovedIdleTimeout, true
			}
		}
		return 0, false
	}
	for k, e := range t.exact {
		if reason, ok := expired(e); ok {
			removed = append(removed, e)
			reasons = append(reasons, reason)
			delete(t.exact, k)
		}
	}
	kept := t.wild[:0]
	for _, e := range t.wild {
		if reason, ok := expired(e); ok {
			removed = append(removed, e)
			reasons = append(reasons, reason)
		} else {
			kept = append(kept, e)
		}
	}
	t.wild = kept
	return removed, reasons
}

// Entries returns a snapshot of all entries matched by m (nil = all),
// optionally filtered by an output port.
func (t *FlowTable) Entries(m *openflow.Match, outPort uint16) []*FlowEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []*FlowEntry
	for _, e := range t.allLocked() {
		if m != nil && !m.Subsumes(&e.Match) {
			continue
		}
		if outPort != openflow.PortNone && !outputsTo(e.Actions, outPort) {
			continue
		}
		out = append(out, e)
	}
	return out
}

func (t *FlowTable) allLocked() []*FlowEntry {
	all := make([]*FlowEntry, 0, len(t.exact)+len(t.wild))
	for _, e := range t.exact {
		all = append(all, e)
	}
	all = append(all, t.wild...)
	return all
}

func (t *FlowTable) removeLocked(k flowKey) {
	if e, ok := t.exact[k.match]; ok && e.Priority == k.priority {
		delete(t.exact, k.match)
		return
	}
	for i, e := range t.wild {
		if e.Match == k.match && e.Priority == k.priority {
			t.wild = append(t.wild[:i], t.wild[i+1:]...)
			return
		}
	}
}
