package datapath

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/oftransport"
	"repro/internal/openflow"
	"repro/internal/packet"
)

// pipeRig connects a datapath to a raw test "controller" over net.Pipe,
// performing the HELLO exchange so the secure channel is live.
type pipeRig struct {
	dp   *Datapath
	conn net.Conn // controller side
}

func newPipeRig(t *testing.T, clk clock.Clock) *pipeRig {
	t.Helper()
	dpSide, ctlSide := net.Pipe()
	dp := New(Config{ID: 7, Clock: clk})
	_ = dp.AddPort(&Port{No: 1})
	_ = dp.AddPort(&Port{No: 2})
	go func() { _ = dp.Connect(dpSide) }()
	t.Cleanup(dp.Stop)

	// net.Pipe is unbuffered: read the datapath's HELLO before sending
	// ours, or both sides block writing.
	msg, err := openflow.ReadMessage(ctlSide)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(*openflow.Hello); !ok {
		t.Fatalf("expected HELLO, got %T", msg)
	}
	if err := openflow.WriteMessage(ctlSide, &openflow.Hello{}); err != nil {
		t.Fatal(err)
	}
	return &pipeRig{dp: dp, conn: ctlSide}
}

// read reads messages until one of type T arrives or the timeout passes.
func readUntil[T openflow.Message](t *testing.T, conn net.Conn) T {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_ = conn.SetReadDeadline(deadline)
		msg, err := openflow.ReadMessage(conn)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if m, ok := msg.(T); ok {
			return m
		}
	}
}

func TestChannelFeaturesAndConfig(t *testing.T) {
	rig := newPipeRig(t, clock.Real{})
	req := &openflow.FeaturesRequest{}
	req.Header.XID = 9
	if err := openflow.WriteMessage(rig.conn, req); err != nil {
		t.Fatal(err)
	}
	rep := readUntil[*openflow.FeaturesReply](t, rig.conn)
	if rep.DatapathID != 7 || len(rep.Ports) != 2 || rep.Header.XID != 9 {
		t.Errorf("features = %+v", rep)
	}

	if err := openflow.WriteMessage(rig.conn, &openflow.SetConfig{MissSendLen: 512}); err != nil {
		t.Fatal(err)
	}
	if err := openflow.WriteMessage(rig.conn, &openflow.GetConfigRequest{}); err != nil {
		t.Fatal(err)
	}
	cfg := readUntil[*openflow.GetConfigReply](t, rig.conn)
	if cfg.MissSendLen != 512 {
		t.Errorf("miss_send_len = %d", cfg.MissSendLen)
	}
}

func TestChannelExpirySendsFlowRemoved(t *testing.T) {
	clk := clock.NewSimulated()
	rig := newPipeRig(t, clk)

	m := openflow.MatchAll()
	m.Wildcards &^= openflow.FWTPDst
	m.TPDst = 80
	fm := &openflow.FlowMod{
		Match: m, Command: openflow.FlowModAdd, Priority: 4,
		IdleTimeout: 10, BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		Flags:  openflow.FlowModFlagSendFlowRem,
		Cookie: 0xabc,
	}
	if err := openflow.WriteMessage(rig.conn, fm); err != nil {
		t.Fatal(err)
	}
	// Barrier to ensure the flow-mod was processed.
	if err := openflow.WriteMessage(rig.conn, &openflow.BarrierRequest{}); err != nil {
		t.Fatal(err)
	}
	readUntil[*openflow.BarrierReply](t, rig.conn)
	if rig.dp.Table().Len() != 1 {
		t.Fatalf("table len = %d", rig.dp.Table().Len())
	}

	// Sweep in a goroutine: the flow-removed write blocks on the
	// unbuffered pipe until this test reads it. (The datapath's own
	// expiry loop may also fire on the simulated clock; either sweeper
	// emits exactly one message.)
	clk.Advance(11 * time.Second)
	go rig.dp.SweepExpired()
	fr := readUntil[*openflow.FlowRemoved](t, rig.conn)
	if fr.Cookie != 0xabc || fr.Reason != openflow.FlowRemovedIdleTimeout {
		t.Errorf("flow removed = %+v", fr)
	}
	if rig.dp.Table().Len() != 0 {
		t.Error("entry survived expiry")
	}
}

func TestChannelBadStatsTypeYieldsError(t *testing.T) {
	rig := newPipeRig(t, clock.Real{})
	req := &openflow.StatsRequest{StatsType: 0x7777}
	req.Header.XID = 12
	if err := openflow.WriteMessage(rig.conn, req); err != nil {
		t.Fatal(err)
	}
	em := readUntil[*openflow.ErrorMsg](t, rig.conn)
	if em.ErrType != openflow.ErrTypeBadRequest || em.Header.XID != 12 {
		t.Errorf("error = %+v", em)
	}
}

func TestChannelEcho(t *testing.T) {
	rig := newPipeRig(t, clock.Real{})
	req := &openflow.EchoRequest{Data: []byte("ka")}
	req.Header.XID = 3
	if err := openflow.WriteMessage(rig.conn, req); err != nil {
		t.Fatal(err)
	}
	rep := readUntil[*openflow.EchoReply](t, rig.conn)
	if string(rep.Data) != "ka" || rep.Header.XID != 3 {
		t.Errorf("echo = %+v", rep)
	}
}

func TestChannelPacketOutViaTable(t *testing.T) {
	rig := newPipeRig(t, clock.Real{})
	delivered := make(chan []byte, 1)
	p2, _ := rig.dp.Port(2)
	p2.SetOut(func(f []byte) { delivered <- f })

	// Install a rule forwarding everything to port 2.
	fm := &openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FlowModAdd, Priority: 1,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
	}
	if err := openflow.WriteMessage(rig.conn, fm); err != nil {
		t.Fatal(err)
	}
	// Packet-out with OFPP_TABLE: the frame is run through the table.
	frame := packet.NewUDPFrame(packet.MAC{1}, packet.MAC{2},
		packet.IP4{10, 0, 0, 1}, packet.IP4{10, 0, 0, 2}, 1, 2, []byte("x")).Bytes()
	po := &openflow.PacketOut{
		BufferID: openflow.NoBuffer, InPort: 1,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: openflow.PortTable}},
		Data:    frame,
	}
	if err := openflow.WriteMessage(rig.conn, po); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-delivered:
		if len(got) != len(frame) {
			t.Errorf("delivered %d bytes, want %d", len(got), len(frame))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("packet-out via TABLE not delivered")
	}
}

// TestChannelClosedIsTyped asserts an orderly shutdown (Stop, or the
// controller closing its end) surfaces as ErrChannelClosed, not a raw net
// error.
func TestChannelClosedIsTyped(t *testing.T) {
	ctlEnd, dpEnd := oftransport.Pair(0)
	dp := New(Config{ID: 9})
	errc := make(chan error, 1)
	go func() { errc <- dp.ConnectTransport(dpEnd) }()

	msg, err := ctlEnd.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(*openflow.Hello); !ok {
		t.Fatalf("expected HELLO, got %T", msg)
	}
	if err := ctlEnd.Send(&openflow.Hello{}); err != nil {
		t.Fatal(err)
	}

	dp.Stop()
	if err := <-errc; !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("Connect after Stop = %v, want ErrChannelClosed", err)
	}
}

// TestChannelHandshakeErrorIsTyped asserts a protocol violation surfaces
// as a *ChannelError naming the failed phase, distinguishable from the
// shutdown case.
func TestChannelHandshakeErrorIsTyped(t *testing.T) {
	ctlEnd, dpEnd := oftransport.Pair(0)
	dp := New(Config{ID: 9})
	t.Cleanup(dp.Stop)
	errc := make(chan error, 1)
	go func() { errc <- dp.ConnectTransport(dpEnd) }()

	if _, err := ctlEnd.Recv(); err != nil { // the datapath's HELLO
		t.Fatal(err)
	}
	// An echo request where HELLO belongs: protocol violation.
	if err := ctlEnd.Send(&openflow.EchoRequest{}); err != nil {
		t.Fatal(err)
	}
	err := <-errc
	var ce *ChannelError
	if !errors.As(err, &ce) || ce.Op != "handshake" {
		t.Fatalf("handshake violation = %v, want *ChannelError{Op: handshake}", err)
	}
	if errors.Is(err, ErrChannelClosed) {
		t.Error("protocol failure must not read as an orderly close")
	}
}

// TestChannelDialErrorIsTyped asserts a failed dial is a *ChannelError
// with Op "dial".
func TestChannelDialErrorIsTyped(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close() // the port is now dead

	dp := New(Config{ID: 9})
	var ce *ChannelError
	if err := dp.ConnectTCP(addr); !errors.As(err, &ce) || ce.Op != "dial" {
		t.Fatalf("dial to dead port = %v, want *ChannelError{Op: dial}", err)
	}
}
