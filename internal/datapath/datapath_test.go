package datapath

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/openflow"
	"repro/internal/packet"
)

func tcpFrame(srcLast, dstLast byte, dstPort uint16) []byte {
	return packet.NewTCPFrame(
		packet.MAC{2, 0, 0, 0, 0, srcLast}, packet.MAC{2, 0, 0, 0, 0, dstLast},
		packet.IP4{10, 0, 0, srcLast}, packet.IP4{10, 0, 0, dstLast},
		40000, dstPort, packet.TCPSyn, 1, nil).Bytes()
}

func exactMatchFor(t *testing.T, frame []byte, inPort uint16) openflow.Match {
	t.Helper()
	var d packet.Decoded
	if err := d.Decode(frame); err != nil {
		t.Fatal(err)
	}
	return openflow.MatchFromFrame(&d, inPort)
}

func TestFlowTableExactLookup(t *testing.T) {
	tbl := NewFlowTable()
	frame := tcpFrame(1, 2, 80)
	m := exactMatchFor(t, frame, 1)
	e := &FlowEntry{Match: m, Priority: 10, Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}
	if err := tbl.Add(e, false); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}

	var d packet.Decoded
	if err := d.Decode(frame); err != nil {
		t.Fatal(err)
	}
	got := tbl.Lookup(&d, 1, len(frame), time.Now())
	if got != e {
		t.Fatal("exact lookup failed")
	}
	if got.PacketCount() != 1 || got.ByteCount() != uint64(len(frame)) {
		t.Errorf("counters = %d/%d", got.PacketCount(), got.ByteCount())
	}
	if tbl.Lookup(&d, 9, len(frame), time.Now()) != nil {
		t.Error("lookup matched wrong in_port")
	}
}

func TestFlowTablePriorityOrder(t *testing.T) {
	tbl := NewFlowTable()
	low := openflow.MatchAll()
	lowE := &FlowEntry{Match: low, Priority: 1, Actions: []openflow.Action{&openflow.ActionOutput{Port: 1}}}
	_ = tbl.Add(lowE, false)

	dns := openflow.MatchAll()
	dns.Wildcards &^= openflow.FWDLType | openflow.FWNWProto | openflow.FWTPDst
	dns.DLType = packet.EtherTypeIPv4
	dns.NWProto = uint8(packet.ProtoUDP)
	dns.TPDst = 53
	dnsE := &FlowEntry{Match: dns, Priority: 100, Actions: []openflow.Action{&openflow.ActionOutput{Port: openflow.PortController}}}
	_ = tbl.Add(dnsE, false)

	dnsFrame := packet.NewUDPFrame(packet.MAC{1}, packet.MAC{2}, packet.IP4{10, 0, 0, 1}, packet.IP4{8, 8, 8, 8}, 5000, 53, nil).Bytes()
	var d packet.Decoded
	_ = d.Decode(dnsFrame)
	if got := tbl.Lookup(&d, 1, len(dnsFrame), time.Now()); got != dnsE {
		t.Error("high-priority DNS rule not preferred")
	}

	web := tcpFrame(1, 2, 80)
	_ = d.Decode(web)
	if got := tbl.Lookup(&d, 1, len(web), time.Now()); got != lowE {
		t.Error("fallback rule not used")
	}
}

func TestFlowTableAddReplacesAndResets(t *testing.T) {
	tbl := NewFlowTable()
	frame := tcpFrame(1, 2, 80)
	m := exactMatchFor(t, frame, 1)
	e1 := &FlowEntry{Match: m, Priority: 5, Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}
	_ = tbl.Add(e1, false)
	var d packet.Decoded
	_ = d.Decode(frame)
	tbl.Lookup(&d, 1, len(frame), time.Now())

	e2 := &FlowEntry{Match: m, Priority: 5, Actions: []openflow.Action{&openflow.ActionOutput{Port: 3}}}
	_ = tbl.Add(e2, false)
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d after replace", tbl.Len())
	}
	got := tbl.Lookup(&d, 1, len(frame), time.Now())
	if got != e2 || got.PacketCount() != 1 {
		t.Error("replacement did not reset counters")
	}
}

func TestFlowTableOverlapCheck(t *testing.T) {
	tbl := NewFlowTable()
	a := openflow.MatchAll()
	a.Wildcards &^= openflow.FWTPDst
	a.TPDst = 80
	_ = tbl.Add(&FlowEntry{Match: a, Priority: 5}, false)

	b := openflow.MatchAll()
	b.Wildcards &^= openflow.FWNWProto
	b.NWProto = 6
	if err := tbl.Add(&FlowEntry{Match: b, Priority: 5}, true); err == nil {
		t.Error("overlapping add with CHECK_OVERLAP accepted")
	}
	if err := tbl.Add(&FlowEntry{Match: b, Priority: 6}, true); err != nil {
		t.Errorf("different priority should not conflict: %v", err)
	}
}

func TestFlowTableDeleteNonStrict(t *testing.T) {
	tbl := NewFlowTable()
	for i := byte(1); i <= 3; i++ {
		frame := tcpFrame(i, 10, 80)
		m := exactMatchFor(t, frame, uint16(i))
		_ = tbl.Add(&FlowEntry{Match: m, Priority: 1, Actions: []openflow.Action{&openflow.ActionOutput{Port: 9}}}, false)
	}
	all := openflow.MatchAll()
	removed := tbl.Delete(&all, 0, false, openflow.PortNone)
	if len(removed) != 3 || tbl.Len() != 0 {
		t.Errorf("removed %d, len %d", len(removed), tbl.Len())
	}
}

func TestFlowTableDeleteByOutPort(t *testing.T) {
	tbl := NewFlowTable()
	f1 := tcpFrame(1, 2, 80)
	f2 := tcpFrame(3, 4, 80)
	_ = tbl.Add(&FlowEntry{Match: exactMatchFor(t, f1, 1), Priority: 1,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 7}}}, false)
	_ = tbl.Add(&FlowEntry{Match: exactMatchFor(t, f2, 1), Priority: 1,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 8}}}, false)
	all := openflow.MatchAll()
	removed := tbl.Delete(&all, 0, false, 7)
	if len(removed) != 1 || tbl.Len() != 1 {
		t.Errorf("removed %d, len %d", len(removed), tbl.Len())
	}
}

func TestFlowTableExpire(t *testing.T) {
	tbl := NewFlowTable()
	base := time.Unix(1000, 0)
	frame := tcpFrame(1, 2, 80)
	idle := &FlowEntry{Match: exactMatchFor(t, frame, 1), Priority: 1, IdleTimeout: 10, Installed: base}
	hard := &FlowEntry{Match: openflow.MatchAll(), Priority: 1, HardTimeout: 60, Installed: base}
	forever := &FlowEntry{Match: exactMatchFor(t, tcpFrame(5, 6, 22), 2), Priority: 1, Installed: base}
	_ = tbl.Add(idle, false)
	_ = tbl.Add(hard, false)
	_ = tbl.Add(forever, false)

	removed, reasons := tbl.Expire(base.Add(5 * time.Second))
	if len(removed) != 0 {
		t.Fatalf("early expiry: %d", len(removed))
	}

	// Touch the idle entry at t+8s: it should survive until t+18s.
	var d packet.Decoded
	_ = d.Decode(frame)
	tbl.Lookup(&d, 1, len(frame), base.Add(8*time.Second))

	removed, reasons = tbl.Expire(base.Add(17 * time.Second))
	if len(removed) != 0 {
		t.Fatalf("idle entry expired despite traffic")
	}
	removed, reasons = tbl.Expire(base.Add(19 * time.Second))
	if len(removed) != 1 || reasons[0] != openflow.FlowRemovedIdleTimeout {
		t.Fatalf("idle expiry: %d removed", len(removed))
	}
	removed, reasons = tbl.Expire(base.Add(61 * time.Second))
	if len(removed) != 1 || reasons[0] != openflow.FlowRemovedHardTimeout {
		t.Fatalf("hard expiry: %d removed, reasons %v", len(removed), reasons)
	}
	if tbl.Len() != 1 {
		t.Errorf("permanent entry evicted")
	}
}

func TestDatapathForwardAndCounters(t *testing.T) {
	clk := clock.NewSimulated()
	dp := New(Config{ID: 1, Clock: clk})
	var got [][]byte
	_ = dp.AddPort(&Port{No: 1, Name: "wlan0"})
	_ = dp.AddPort(&Port{No: 2, Name: "eth0", Out: func(f []byte) { got = append(got, f) }})

	frame := tcpFrame(1, 2, 80)
	m := exactMatchFor(t, frame, 1)
	_ = dp.Table().Add(&FlowEntry{Match: m, Priority: 1,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}, false)

	dp.Receive(1, frame)
	if len(got) != 1 {
		t.Fatalf("forwarded %d frames", len(got))
	}
	p1, _ := dp.Port(1)
	p2, _ := dp.Port(2)
	if p1.Stats().RxPackets != 1 || p2.Stats().TxPackets != 1 {
		t.Errorf("port counters: rx=%d tx=%d", p1.Stats().RxPackets, p2.Stats().TxPackets)
	}
}

func TestDatapathDropOnEmptyActions(t *testing.T) {
	dp := New(Config{ID: 1})
	delivered := 0
	_ = dp.AddPort(&Port{No: 1})
	_ = dp.AddPort(&Port{No: 2, Out: func([]byte) { delivered++ }})
	frame := tcpFrame(1, 2, 80)
	// Empty action list = drop.
	_ = dp.Table().Add(&FlowEntry{Match: exactMatchFor(t, frame, 1), Priority: 1}, false)
	dp.Receive(1, frame)
	if delivered != 0 {
		t.Error("dropped packet was forwarded")
	}
}

func TestDatapathFlood(t *testing.T) {
	dp := New(Config{ID: 1})
	counts := map[uint16]int{}
	for no := uint16(1); no <= 4; no++ {
		n := no
		_ = dp.AddPort(&Port{No: n, Out: func([]byte) { counts[n]++ }})
	}
	// NoFlood on port 4.
	p4, _ := dp.Port(4)
	p4.Config |= openflow.PortConfigNoFlood

	frame := tcpFrame(1, 2, 80)
	_ = dp.Table().Add(&FlowEntry{Match: openflow.MatchAll(), Priority: 1,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: openflow.PortFlood}}}, false)
	dp.Receive(1, frame)
	if counts[1] != 0 || counts[2] != 1 || counts[3] != 1 || counts[4] != 0 {
		t.Errorf("flood counts = %v", counts)
	}

	// ALL includes NoFlood ports but still excludes the ingress port.
	_ = dp.Table().Add(&FlowEntry{Match: openflow.MatchAll(), Priority: 2,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: openflow.PortAll}}}, false)
	counts = map[uint16]int{}
	dp.Receive(1, frame)
	if counts[1] != 0 || counts[4] != 1 {
		t.Errorf("ALL counts = %v", counts)
	}
}

func TestDatapathPortDown(t *testing.T) {
	dp := New(Config{ID: 1})
	delivered := 0
	_ = dp.AddPort(&Port{No: 1})
	_ = dp.AddPort(&Port{No: 2, Config: openflow.PortConfigDown, Out: func([]byte) { delivered++ }})
	frame := tcpFrame(1, 2, 80)
	_ = dp.Table().Add(&FlowEntry{Match: openflow.MatchAll(), Priority: 1,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}, false)
	dp.Receive(1, frame)
	if delivered != 0 {
		t.Error("down port transmitted")
	}
}

func TestDatapathRejectsBadPorts(t *testing.T) {
	dp := New(Config{ID: 1})
	if err := dp.AddPort(&Port{No: 0}); err == nil {
		t.Error("port 0 accepted")
	}
	if err := dp.AddPort(&Port{No: openflow.PortController}); err == nil {
		t.Error("reserved port number accepted")
	}
	_ = dp.AddPort(&Port{No: 1})
	if err := dp.AddPort(&Port{No: 1}); err == nil {
		t.Error("duplicate port accepted")
	}
}

// Exact-match lookups must not allocate: the per-packet path charges
// counters through atomics under the read lock, with no table copies.
func TestLookupExactZeroAllocs(t *testing.T) {
	tbl := NewFlowTable()
	frame := tcpFrame(1, 2, 80)
	m := exactMatchFor(t, frame, 1)
	_ = tbl.Add(&FlowEntry{Match: m, Priority: 10,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}, false)
	var d packet.Decoded
	if err := d.Decode(frame); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if allocs := testing.AllocsPerRun(200, func() {
		if tbl.Lookup(&d, 1, len(frame), now) == nil {
			panic("probe missed")
		}
	}); allocs != 0 {
		t.Errorf("Lookup allocs/op = %g, want 0", allocs)
	}
}

// Lookup must charge the entry under the read lock without racing: many
// goroutines bumping one entry's counters must not lose packets.
func TestLookupConcurrentCounters(t *testing.T) {
	tbl := NewFlowTable()
	frame := tcpFrame(1, 2, 80)
	m := exactMatchFor(t, frame, 1)
	e := &FlowEntry{Match: m, Priority: 10}
	_ = tbl.Add(e, false)
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	now := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var d packet.Decoded
			if err := d.Decode(frame); err != nil {
				panic(err)
			}
			for i := 0; i < per; i++ {
				tbl.Lookup(&d, 1, len(frame), now)
			}
		}()
	}
	wg.Wait()
	if e.PacketCount() != goroutines*per {
		t.Errorf("packets = %d, want %d", e.PacketCount(), goroutines*per)
	}
	if e.ByteCount() != uint64(goroutines*per*len(frame)) {
		t.Errorf("bytes = %d", e.ByteCount())
	}
	lookups, matched := tbl.Counters()
	if lookups != goroutines*per || matched != goroutines*per {
		t.Errorf("table counters = %d/%d", lookups, matched)
	}
}

func TestReceiveBatch(t *testing.T) {
	dp := New(Config{ID: 1})
	var got [][]byte
	_ = dp.AddPort(&Port{No: 1})
	_ = dp.AddPort(&Port{No: 2, Out: func(f []byte) { got = append(got, append([]byte(nil), f...)) }})

	f1 := tcpFrame(1, 2, 80)
	f2 := tcpFrame(3, 2, 80)
	_ = dp.Table().Add(&FlowEntry{Match: exactMatchFor(t, f1, 1), Priority: 1,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}, false)
	_ = dp.Table().Add(&FlowEntry{Match: exactMatchFor(t, f2, 1), Priority: 1,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}, false)
	miss := tcpFrame(5, 6, 443)

	var fb packet.FrameBatch
	for _, f := range [][]byte{f1, f2, miss} {
		fb.Append(f)
	}
	dp.ReceiveBatch(1, &fb)

	if len(got) != 2 {
		t.Fatalf("forwarded %d frames, want 2", len(got))
	}
	if dp.PuntCount() != 1 {
		t.Errorf("punts = %d, want 1", dp.PuntCount())
	}
	p1, _ := dp.Port(1)
	stats := p1.Stats()
	if stats.RxPackets != 3 || stats.RxBytes != uint64(len(f1)+len(f2)+len(miss)) {
		t.Errorf("batched rx accounting = %d pkts / %d bytes", stats.RxPackets, stats.RxBytes)
	}
}

// The MAC-rewrite fast path must rewrite only the Ethernet addresses,
// leave the rest of the frame intact, and never mutate the input buffer
// (which may belong to a sender's reused batch).
func TestExecuteFastPathRewrite(t *testing.T) {
	dp := New(Config{ID: 1})
	var got []byte
	_ = dp.AddPort(&Port{No: 1})
	_ = dp.AddPort(&Port{No: 2, Out: func(f []byte) { got = append([]byte(nil), f...) }})

	frame := tcpFrame(1, 2, 80)
	orig := append([]byte(nil), frame...)
	newSrc := packet.MustMAC("02:01:00:00:00:01")
	newDst := packet.MustMAC("02:ee:00:00:00:01")
	_ = dp.Table().Add(&FlowEntry{Match: exactMatchFor(t, frame, 1), Priority: 1,
		Actions: []openflow.Action{
			&openflow.ActionSetDLSrc{Addr: newSrc},
			&openflow.ActionSetDLDst{Addr: newDst},
			&openflow.ActionOutput{Port: 2},
		}}, false)
	dp.Receive(1, frame)

	if got == nil {
		t.Fatal("frame not forwarded")
	}
	var d packet.Decoded
	if err := d.Decode(got); err != nil {
		t.Fatal(err)
	}
	if d.Eth.Src != newSrc || d.Eth.Dst != newDst {
		t.Errorf("MACs = %s -> %s", d.Eth.Src, d.Eth.Dst)
	}
	if !bytes.Equal(got[12:], orig[12:]) {
		t.Error("rewrite touched bytes beyond the Ethernet addresses")
	}
	if !bytes.Equal(frame, orig) {
		t.Error("input frame mutated by the fast path")
	}
}

func BenchmarkLookupExact1kFlows(b *testing.B) {
	tbl := NewFlowTable()
	for i := 0; i < 1000; i++ {
		f := packet.NewTCPFrame(
			packet.MAC{2, 0, 0, byte(i >> 8), byte(i), 1}, packet.MAC{2, 0, 0, 0, 0, 2},
			packet.IP4{10, 0, byte(i >> 8), byte(i)}, packet.IP4{10, 0, 0, 2},
			uint16(1024+i), 80, packet.TCPAck, 0, nil).Bytes()
		var d packet.Decoded
		_ = d.Decode(f)
		_ = tbl.Add(&FlowEntry{Match: openflow.MatchFromFrame(&d, 1), Priority: 1}, false)
	}
	frame := packet.NewTCPFrame(
		packet.MAC{2, 0, 0, 1, 200, 1}, packet.MAC{2, 0, 0, 0, 0, 2},
		packet.IP4{10, 0, 1, 200}, packet.IP4{10, 0, 0, 2},
		uint16(1024+456), 80, packet.TCPAck, 0, nil).Bytes()
	var d packet.Decoded
	_ = d.Decode(frame)
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(&d, 1, len(frame), now)
	}
}
