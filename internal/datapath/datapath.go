package datapath

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/oftransport"
	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/quiesce"
	"repro/internal/trace"
)

// Port is one switch port. Out delivers frames to whatever the port is
// attached to (a simulated link, a test harness, the upstream "ISP").
type Port struct {
	No     uint16
	Name   string
	HWAddr packet.MAC
	Config uint32 // openflow.PortConfig* bits
	Out    func(frame []byte)

	mu    sync.Mutex
	stats openflow.PortStats
}

// Stats returns a copy of the port counters.
func (p *Port) Stats() openflow.PortStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.PortNo = p.No
	return s
}

func (p *Port) countRx(n int) {
	p.mu.Lock()
	p.stats.RxPackets++
	p.stats.RxBytes += uint64(n)
	p.mu.Unlock()
}

// countRxN charges a whole batch of received frames in one lock
// acquisition.
func (p *Port) countRxN(frames, bytes int) {
	p.mu.Lock()
	p.stats.RxPackets += uint64(frames)
	p.stats.RxBytes += uint64(bytes)
	p.mu.Unlock()
}

func (p *Port) countTx(n int) {
	p.mu.Lock()
	p.stats.TxPackets++
	p.stats.TxBytes += uint64(n)
	p.mu.Unlock()
}

// SetOut atomically replaces the port's delivery function (tests and
// rewiring).
func (p *Port) SetOut(fn func(frame []byte)) {
	p.mu.Lock()
	p.Out = fn
	p.mu.Unlock()
}

func (p *Port) out() func(frame []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.Out
}

// CountRxDrop records a receive-side drop (e.g. wireless loss).
func (p *Port) CountRxDrop() {
	p.mu.Lock()
	p.stats.RxDropped++
	p.mu.Unlock()
}

// Config values for NewDatapath.
type Config struct {
	ID          uint64
	Clock       clock.Clock
	NBuffers    int    // packet-in buffer slots (default 256)
	MissSendLen uint16 // default 128
	Description string
	// Tracer, when set, opens a punt-lifecycle span for every packet-in
	// (trace.Tracer is nil-safe, so leaving it unset disables tracing with
	// no branch beyond the nil-receiver check). Hand the same tracer to
	// the co-resident controller (nox.Controller.SetTracer) exactly as the
	// quiescence epoch is shared.
	Tracer *trace.Tracer
}

// Datapath is the software switch.
type Datapath struct {
	id  uint64
	clk clock.Clock

	mu    sync.RWMutex
	ports map[uint16]*Port
	table *FlowTable

	connMu sync.Mutex
	tr     oftransport.Transport

	bufMu    sync.Mutex
	buffers  map[uint32][]byte
	bufPorts map[uint32]uint16
	nextBuf  uint32
	nBuffers int

	missSendLen atomic.Uint32
	configFlags atomic.Uint32
	desc        string
	started     time.Time

	stopMu  sync.Mutex
	stopped chan struct{}

	// quiesce is the punt half of the event-driven settle protocol: every
	// packet-in sent to the controller is counted here before the send,
	// and the co-resident controller credits the same epoch as it
	// dispatches (nox.Controller.SetQuiesce), so Router.Settle can block
	// until the control path drains instead of polling counters.
	quiesce *quiesce.Epoch

	// tracer opens a span per punt, stamped alongside the quiesce count
	// (nil when tracing is disabled; every trace method is nil-safe).
	tracer *trace.Tracer

	// scratchMu guards a bounded free-list of action-execution scratch
	// buffers: the common SET_DL_SRC/SET_DL_DST rewrite copies the frame
	// once into a reused buffer and patches the MACs in place instead of
	// re-serializing every layer. A free-list (not a single buffer) keeps
	// nested executions safe: delivering a frame can trigger another
	// receive inside the same call stack.
	scratchMu   sync.Mutex
	scratchFree []*execScratch
}

// execScratch is one borrowed action-execution working set.
type execScratch struct {
	buf []byte
}

// New creates a datapath with no ports attached.
func New(cfg Config) *Datapath {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.NBuffers <= 0 {
		cfg.NBuffers = 256
	}
	if cfg.MissSendLen == 0 {
		cfg.MissSendLen = 128
	}
	if cfg.Description == "" {
		cfg.Description = "Homework soft datapath"
	}
	dp := &Datapath{
		id:       cfg.ID,
		clk:      cfg.Clock,
		ports:    make(map[uint16]*Port),
		table:    NewFlowTable(),
		buffers:  make(map[uint32][]byte),
		bufPorts: make(map[uint32]uint16),
		nBuffers: cfg.NBuffers,
		desc:     cfg.Description,
		started:  cfg.Clock.Now(),
		stopped:  make(chan struct{}),
		quiesce:  quiesce.New(),
		tracer:   cfg.Tracer,
	}
	dp.missSendLen.Store(uint32(cfg.MissSendLen))
	return dp
}

// ID returns the datapath identifier.
func (dp *Datapath) ID() uint64 { return dp.id }

// Table exposes the flow table (used by tests and the figures harness).
func (dp *Datapath) Table() *FlowTable { return dp.table }

// AddPort attaches a port. Port numbers must be unique and below PortMax.
func (dp *Datapath) AddPort(p *Port) error {
	if p.No == 0 || p.No >= openflow.PortMax {
		return fmt.Errorf("datapath: invalid port number %d", p.No)
	}
	dp.mu.Lock()
	defer dp.mu.Unlock()
	if _, dup := dp.ports[p.No]; dup {
		return fmt.Errorf("datapath: port %d already exists", p.No)
	}
	dp.ports[p.No] = p
	dp.notifyPortStatus(openflow.PortStatusAdd, p)
	return nil
}

// RemovePort detaches a port.
func (dp *Datapath) RemovePort(no uint16) {
	dp.mu.Lock()
	p, ok := dp.ports[no]
	if ok {
		delete(dp.ports, no)
	}
	dp.mu.Unlock()
	if ok {
		dp.notifyPortStatus(openflow.PortStatusDelete, p)
	}
}

// Port returns a port by number.
func (dp *Datapath) Port(no uint16) (*Port, bool) {
	dp.mu.RLock()
	defer dp.mu.RUnlock()
	p, ok := dp.ports[no]
	return p, ok
}

// Ports returns a snapshot of all ports.
func (dp *Datapath) Ports() []*Port {
	dp.mu.RLock()
	defer dp.mu.RUnlock()
	out := make([]*Port, 0, len(dp.ports))
	for _, p := range dp.ports {
		out = append(out, p)
	}
	return out
}

// Receive processes one frame arriving on a port: the datapath's data-plane
// entry point. Matching entries forward; a miss punts the frame to the
// controller as a packet-in (the paper's mechanism for making every new
// flow visible).
func (dp *Datapath) Receive(inPort uint16, frame []byte) {
	p, ok := dp.Port(inPort)
	if !ok || p.Config&openflow.PortConfigDown != 0 || p.Config&openflow.PortConfigNoRecv != 0 {
		return
	}
	p.countRx(len(frame))

	var d packet.Decoded
	if err := d.Decode(frame); err != nil {
		return
	}
	dp.receiveDecoded(p, inPort, frame, &d, dp.clk.Now())
}

// ReceiveBatch processes a whole batch of frames arriving on one port in
// a single call: the port lookup, receive accounting, clock read and the
// frame-decode state are amortized across the batch instead of paid per
// packet. Frames in the batch may alias the caller's reused buffers; the
// datapath copies anything it retains (punt buffers, packet-in data).
func (dp *Datapath) ReceiveBatch(inPort uint16, fb *packet.FrameBatch) {
	n := fb.Len()
	if n == 0 {
		return
	}
	p, ok := dp.Port(inPort)
	if !ok || p.Config&openflow.PortConfigDown != 0 || p.Config&openflow.PortConfigNoRecv != 0 {
		return
	}
	p.countRxN(n, fb.TotalBytes())
	now := dp.clk.Now()
	var d packet.Decoded
	for i := 0; i < n; i++ {
		frame := fb.Frame(i)
		if err := d.Decode(frame); err != nil {
			continue
		}
		dp.receiveDecoded(p, inPort, frame, &d, now)
	}
}

// receiveDecoded looks a decoded frame up in the flow table and executes
// or punts it; receive accounting has already been charged.
func (dp *Datapath) receiveDecoded(p *Port, inPort uint16, frame []byte, d *packet.Decoded, now time.Time) {
	entry := dp.table.Lookup(d, inPort, len(frame), now)
	if entry == nil {
		dp.punt(inPort, frame, openflow.PacketInReasonNoMatch, p, int(dp.missSendLen.Load()))
		return
	}
	dp.execute(inPort, frame, entry.Actions)
}

// execute runs an action list on a frame in the context of inPort.
func (dp *Datapath) execute(inPort uint16, frame []byte, actions []openflow.Action) {
	// An OUTPUT:CONTROLLER action carries its own max_len; honour it (the
	// DHCP/DNS punt rules ask for the full packet). While scanning,
	// detect the hot-path action shape — only MAC rewrites and outputs,
	// the forwarder's per-flow rule — which skips the generic
	// decode-and-reserialize pipeline entirely.
	maxLen := int(dp.missSendLen.Load())
	fast := true
	for _, a := range actions {
		switch act := a.(type) {
		case *openflow.ActionOutput:
			if act.Port == openflow.PortController && act.MaxLen > 0 {
				maxLen = int(act.MaxLen)
			}
		case *openflow.ActionEnqueue, *openflow.ActionSetDLSrc, *openflow.ActionSetDLDst:
		default:
			fast = false
		}
	}
	if fast {
		dp.executeFast(inPort, frame, actions, maxLen)
		return
	}
	out, ports := openflow.ApplyActions(frame, actions)
	for _, pn := range ports {
		dp.dispatch(inPort, out, pn, maxLen)
	}
}

// executeFast runs an action list containing only MAC rewrites and
// outputs. The first rewrite copies the frame once into a borrowed
// scratch buffer and the MACs are patched at their fixed offsets — no
// re-decode, no per-layer re-serialization, no allocation in steady
// state. The input frame is never mutated.
func (dp *Datapath) executeFast(inPort uint16, frame []byte, actions []openflow.Action, maxLen int) {
	out := frame
	var sc *execScratch
	for _, a := range actions {
		switch act := a.(type) {
		case *openflow.ActionSetDLSrc:
			if sc == nil {
				sc = dp.getScratch()
				sc.buf = append(sc.buf[:0], frame...)
				out = sc.buf
			}
			if len(out) >= packet.EthernetHeaderLen {
				copy(out[6:12], act.Addr[:])
			}
		case *openflow.ActionSetDLDst:
			if sc == nil {
				sc = dp.getScratch()
				sc.buf = append(sc.buf[:0], frame...)
				out = sc.buf
			}
			if len(out) >= packet.EthernetHeaderLen {
				copy(out[0:6], act.Addr[:])
			}
		case *openflow.ActionOutput:
			dp.dispatch(inPort, out, act.Port, maxLen)
		case *openflow.ActionEnqueue:
			dp.dispatch(inPort, out, act.Port, maxLen)
		}
	}
	if sc != nil {
		sc.buf = out
		dp.putScratch(sc)
	}
}

// dispatch delivers an already-rewritten frame to one action-list output.
func (dp *Datapath) dispatch(inPort uint16, frame []byte, pn uint16, maxLen int) {
	switch pn {
	case openflow.PortController:
		if p, ok := dp.Port(inPort); ok {
			dp.punt(inPort, frame, openflow.PacketInReasonAction, p, maxLen)
		} else {
			dp.punt(inPort, frame, openflow.PacketInReasonAction, nil, maxLen)
		}
	case openflow.PortFlood, openflow.PortAll:
		dp.flood(inPort, frame, pn == openflow.PortAll)
	case openflow.PortInPort:
		dp.transmit(inPort, frame)
	case openflow.PortTable, openflow.PortNone:
		// PortTable is only meaningful for packet-out; ignore here.
	case openflow.PortNormal:
		// NORMAL would be the legacy L2 pipeline; the Homework router
		// never uses it (all forwarding is explicit), so flood instead.
		dp.flood(inPort, frame, false)
	case openflow.PortLocal:
		// The local stack is modelled as port LOCAL being absent.
	default:
		dp.transmit(pn, frame)
	}
}

// getScratch borrows an execution scratch buffer off the free-list.
func (dp *Datapath) getScratch() *execScratch {
	dp.scratchMu.Lock()
	if n := len(dp.scratchFree); n > 0 {
		sc := dp.scratchFree[n-1]
		dp.scratchFree = dp.scratchFree[:n-1]
		dp.scratchMu.Unlock()
		return sc
	}
	dp.scratchMu.Unlock()
	return &execScratch{buf: make([]byte, 0, 2048)}
}

// putScratch returns an execution scratch buffer; the free-list is
// bounded.
func (dp *Datapath) putScratch(sc *execScratch) {
	dp.scratchMu.Lock()
	if len(dp.scratchFree) < 8 {
		dp.scratchFree = append(dp.scratchFree, sc)
	}
	dp.scratchMu.Unlock()
}

func (dp *Datapath) transmit(portNo uint16, frame []byte) {
	p, ok := dp.Port(portNo)
	if !ok || p.Config&openflow.PortConfigDown != 0 || p.Config&openflow.PortConfigNoFwd != 0 {
		return
	}
	p.countTx(len(frame))
	if out := p.out(); out != nil {
		out(frame)
	}
}

func (dp *Datapath) flood(inPort uint16, frame []byte, includeNoFlood bool) {
	for _, p := range dp.Ports() {
		if p.No == inPort {
			continue
		}
		if !includeNoFlood && p.Config&openflow.PortConfigNoFlood != 0 {
			continue
		}
		dp.transmit(p.No, frame)
	}
}

// punt sends a packet-in to the controller, buffering the full frame.
func (dp *Datapath) punt(inPort uint16, frame []byte, reason uint8, p *Port, maxLen int) {
	if p != nil && p.Config&openflow.PortConfigNoPacketIn != 0 {
		return
	}
	bufID := dp.buffer(inPort, frame)
	data := frame
	if bufID != openflow.NoBuffer && maxLen < len(frame) {
		data = frame[:maxLen]
	}
	msg := &openflow.PacketIn{
		BufferID: bufID,
		TotalLen: uint16(len(frame)),
		InPort:   inPort,
		Reason:   reason,
		Data:     append([]byte(nil), data...),
	}
	dp.quiesce.Punt()
	dp.tracer.Punt()
	dp.send(msg)
}

// PuntCount returns how many packet-ins have been sent to the controller.
func (dp *Datapath) PuntCount() uint64 { return dp.quiesce.Punted() }

// Quiesce exposes the datapath's punt/processed epoch. Hand it to the
// controller (nox.Controller.SetQuiesce) so waiters can block until every
// punt has been dispatched; see docs/CONTROL_PLANE.md for the protocol.
func (dp *Datapath) Quiesce() *quiesce.Epoch { return dp.quiesce }

func (dp *Datapath) buffer(inPort uint16, frame []byte) uint32 {
	dp.bufMu.Lock()
	defer dp.bufMu.Unlock()
	if len(dp.buffers) >= dp.nBuffers {
		return openflow.NoBuffer
	}
	dp.nextBuf++
	id := dp.nextBuf
	dp.buffers[id] = append([]byte(nil), frame...)
	dp.bufPorts[id] = inPort
	return id
}

func (dp *Datapath) takeBuffer(id uint32) ([]byte, uint16, bool) {
	dp.bufMu.Lock()
	defer dp.bufMu.Unlock()
	f, ok := dp.buffers[id]
	if !ok {
		return nil, 0, false
	}
	inPort := dp.bufPorts[id]
	delete(dp.buffers, id)
	delete(dp.bufPorts, id)
	return f, inPort, true
}

// send writes a message up the secure channel if connected. The transport
// serializes concurrent sends itself, so the channel lock only guards the
// endpoint pointer, not the (possibly blocking) delivery.
func (dp *Datapath) send(msg openflow.Message) {
	dp.connMu.Lock()
	tr := dp.tr
	dp.connMu.Unlock()
	if tr != nil {
		_ = tr.Send(msg)
	}
}

func (dp *Datapath) notifyPortStatus(reason uint8, p *Port) {
	dp.send(&openflow.PortStatus{Reason: reason, Desc: phyPort(p)})
}

func phyPort(p *Port) openflow.PhyPort {
	return openflow.PhyPort{
		PortNo: p.No,
		HWAddr: p.HWAddr,
		Name:   p.Name,
		Config: p.Config,
	}
}
