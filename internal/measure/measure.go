// Package measure implements the Homework router's measurement plane: it
// periodically polls the datapath's flow and port statistics and the
// wireless driver's link state, and streams observations into the hwdb
// Flows, Links and FlowPerf tables that the visualization interfaces
// subscribe to. (Lease events reach the Leases table directly from the
// DHCP server.) FlowPerf is the controller-vantage per-flow performance
// monitor: each poll round computes every active flow's throughput over
// the actual clock-measured window, its tx-vs-rx delta across the device
// ingress hop (port receive-drop deltas attributed per-flow by packet
// share), and the punt-to-flow-mod rule-install latency the tracer
// measured for it.
//
// Concurrency: drive the plane either with Run's single background
// goroutine or with explicit PollOnce calls, never both at once.
// RecordFlowRemoved and RecordInstall arrive concurrently from the
// controller's dispatch goroutine; the flow-state cache is mutex-guarded
// and the hwdb tables synchronize internally.
package measure

import (
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/hwdb"
	"repro/internal/nox"
	"repro/internal/openflow"
	"repro/internal/packet"
)

// LinkSource supplies link-layer observations; implemented by
// netsim.Network (and, on real hardware, by the WiFi driver).
type LinkSource interface {
	LinkInfos() []LinkSample
}

// LinkSample is one station's link state.
type LinkSample struct {
	MAC     packet.MAC
	RSSI    int
	Retries int
	Rate    float64
}

// DeviceResolver attributes a flow's home-side address to a device MAC;
// implemented by the DHCP server.
type DeviceResolver interface {
	MACForIP(ip packet.IP4) (packet.MAC, bool)
}

// Config parameterizes the measurement plane.
type Config struct {
	DB       *hwdb.DB
	Clock    clock.Clock
	Interval time.Duration // poll period (default 1s)
	Links    LinkSource
	Resolver DeviceResolver
	// HomePrefix/HomePrefixLen classify which flow endpoint is the local
	// device (e.g. 192.168.1.0/24).
	HomePrefix    packet.IP4
	HomePrefixLen int
}

// flowState tracks the last counters seen for a flow so the plane records
// per-interval deltas ("periodically observed active five-tuples").
type flowState struct {
	packets   uint64
	bytes     uint64
	lastUp    uint64 // poll generation last seen
	installNS int64  // pending rule-install latency, reported once
}

// roundFlow is one active flow observed in the current poll round,
// buffered so port-level drop deltas can be attributed across the round's
// flows once the per-port totals are known.
type roundFlow struct {
	id        flowIdent
	inPort    uint16
	dp, db    uint64
	installUS int64
}

// Plane is the measurement plane.
type Plane struct {
	cfg Config

	mu          sync.Mutex
	seen        map[flowIdent]*flowState
	gen         uint64
	stop        chan struct{}
	once        sync.Once
	polls       uint64
	lastPoll    time.Time         // previous round's clock timestamp (window measurement)
	ports       map[uint16]uint64 // last cumulative rx-dropped per port
	portsSeeded bool              // baseline taken (first round attributes nothing)
	round       []roundFlow       // reused per-round scratch
}

type flowIdent struct {
	ft  packet.FiveTuple
	mac packet.MAC
}

// New creates a measurement plane.
func New(cfg Config) *Plane {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Interval == 0 {
		cfg.Interval = time.Second
	}
	return &Plane{cfg: cfg, seen: make(map[flowIdent]*flowState), stop: make(chan struct{})}
}

// Run polls sw until Stop; typically launched as a goroutine.
func (p *Plane) Run(sw *nox.Switch) {
	for {
		select {
		case <-p.stop:
			return
		case <-p.cfg.Clock.After(p.cfg.Interval):
		}
		p.PollOnce(sw)
	}
}

// Stop halts Run.
func (p *Plane) Stop() { p.once.Do(func() { close(p.stop) }) }

// Polls returns how many poll rounds have completed.
func (p *Plane) Polls() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.polls
}

// PollOnce performs one measurement round: flow stats deltas into Flows,
// link samples into Links.
func (p *Plane) PollOnce(sw *nox.Switch) {
	p.pollFlows(sw)
	p.pollLinks()
	p.mu.Lock()
	p.polls++
	p.mu.Unlock()
}

func (p *Plane) pollFlows(sw *nox.Switch) {
	if sw == nil || p.cfg.DB == nil {
		return
	}
	stats, err := sw.FlowStats(openflow.MatchAll())
	if err != nil {
		return
	}
	// The poll window is measured on the configured clock, never assumed
	// from the nominal interval: under clock.Simulated a time-compressed
	// soak observes the same consistent windows the ticks advance.
	now := p.cfg.Clock.Now()
	p.mu.Lock()
	p.gen++
	gen := p.gen
	last := p.lastPoll
	p.lastPoll = now
	p.mu.Unlock()
	var window time.Duration
	if !last.IsZero() {
		window = now.Sub(last)
	}

	// Per-port receive-drop deltas since the previous round: the loss the
	// controller can see without any per-host agent (OpenFlow port stats;
	// each home device sits on its own datapath port).
	drops := p.portDrops(sw)

	p.round = p.round[:0]
	portPkts := make(map[uint16]uint64, 4)
	for _, fs := range stats {
		ft, mac, ok := p.classify(&fs)
		if !ok {
			continue
		}
		id := flowIdent{ft: ft, mac: mac}
		p.mu.Lock()
		st := p.seen[id]
		if st == nil {
			st = &flowState{}
			p.seen[id] = st
		}
		dp := fs.PacketCount - st.packets
		db := fs.ByteCount - st.bytes
		if fs.PacketCount < st.packets { // counters reset (rule reinstalled)
			dp, db = fs.PacketCount, fs.ByteCount
		}
		st.packets, st.bytes = fs.PacketCount, fs.ByteCount
		st.lastUp = gen
		// Install latency rides the flow's first *active* observation: a
		// just-installed rule shows zero counters this round (its trigger
		// packet left via packet-out, not the flow table), so consuming
		// the latency on an idle round would silently drop it. Round up
		// so a recorded sub-µs install is still visible.
		var installUS int64
		if dp != 0 && st.installNS > 0 {
			installUS = (st.installNS + 999) / 1000
			st.installNS = 0
		}
		p.mu.Unlock()
		if dp == 0 {
			continue // not active this interval
		}
		_ = p.cfg.DB.InsertFlow(mac, ft, dp, db)
		p.round = append(p.round, roundFlow{id: id, inPort: fs.Match.InPort, dp: dp, db: db, installUS: installUS})
		portPkts[fs.Match.InPort] += dp
	}

	// FlowPerf: the two ends of the device's ingress hop seen from the
	// controller. rx is what matched the flow table; a port's dropped
	// frames never matched anything, so they are attributed across the
	// port's active flows by packet share and added back to reconstruct
	// what the device transmitted.
	for i := range p.round {
		rf := &p.round[i]
		var lost uint64
		if d := drops[rf.inPort]; d > 0 {
			if tot := portPkts[rf.inPort]; tot > 0 {
				lost = (d*rf.dp + tot/2) / tot // rounded proportional share
			}
		}
		tx, txBytes := rf.dp+lost, rf.db
		if lost > 0 {
			txBytes += lost * (rf.db / rf.dp) // lost frames sized at the flow mean
		}
		var bps float64
		if window > 0 {
			bps = float64(rf.db) * 8 / window.Seconds()
		}
		_ = p.cfg.DB.InsertFlowPerf(rf.id.mac, rf.id.ft, tx, txBytes, rf.dp, rf.db, lost, bps, rf.installUS)
	}

	// Forget flows that vanished from the table.
	p.mu.Lock()
	for id, st := range p.seen {
		if st.lastUp != gen {
			delete(p.seen, id)
		}
	}
	p.mu.Unlock()
}

// portDrops polls port counters and returns each port's receive-drop
// delta since the previous round. The first round only seeds the
// baseline: drops accumulated before measurement began (e.g. frames lost
// during join handshakes) are not attributed to anyone's flows.
func (p *Plane) portDrops(sw *nox.Switch) map[uint16]uint64 {
	ps, err := sw.PortStats(openflow.PortNone)
	if err != nil || len(ps) == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ports == nil {
		p.ports = make(map[uint16]uint64, len(ps))
	}
	seeded := p.portsSeeded
	p.portsSeeded = true
	var drops map[uint16]uint64
	for _, s := range ps {
		prev := p.ports[s.PortNo]
		if seeded && s.RxDropped > prev {
			if drops == nil {
				drops = make(map[uint16]uint64, 2)
			}
			drops[s.PortNo] = s.RxDropped - prev
		}
		p.ports[s.PortNo] = s.RxDropped
	}
	return drops
}

// RecordInstall attaches a rule-install latency (nanoseconds) to the flow
// entry match describes; the flow's next FlowPerf row reports it in
// microseconds. The router wires this to the forwarder's install hook
// with the tracer's punt-to-emission latency, so install latency is
// measured from the controller's vantage with no extra wire traffic.
// Safe from the controller's dispatch goroutine.
func (p *Plane) RecordInstall(match *openflow.Match, latencyNS int64) {
	if latencyNS <= 0 || p.cfg.DB == nil {
		return
	}
	fs := openflow.FlowStats{Match: *match}
	ft, mac, ok := p.classify(&fs)
	if !ok {
		return
	}
	id := flowIdent{ft: ft, mac: mac}
	p.mu.Lock()
	st := p.seen[id]
	if st == nil {
		st = &flowState{lastUp: p.gen}
		p.seen[id] = st
	}
	st.installNS = latencyNS
	p.mu.Unlock()
}

// classify extracts the five-tuple from a flow entry's match and
// attributes it to the home device.
func (p *Plane) classify(fs *openflow.FlowStats) (packet.FiveTuple, packet.MAC, bool) {
	m := &fs.Match
	// Only fully-specified IPv4 transport entries describe single flows.
	if m.DLType != packet.EtherTypeIPv4 || !m.IsExact() {
		return packet.FiveTuple{}, packet.MAC{}, false
	}
	ft := packet.FiveTuple{
		Src: m.NWSrc, Dst: m.NWDst,
		Proto:   packet.IPProto(m.NWProto),
		SrcPort: m.TPSrc, DstPort: m.TPDst,
	}
	mac, ok := p.attribute(ft)
	return ft, mac, ok
}

// attribute finds the device MAC for the home-side endpoint.
func (p *Plane) attribute(ft packet.FiveTuple) (packet.MAC, bool) {
	if p.cfg.Resolver != nil {
		if mac, ok := p.cfg.Resolver.MACForIP(ft.Src); ok {
			return mac, true
		}
		if mac, ok := p.cfg.Resolver.MACForIP(ft.Dst); ok {
			return mac, true
		}
	}
	if p.cfg.HomePrefixLen > 0 {
		if ft.Src.Mask(p.cfg.HomePrefixLen) == p.cfg.HomePrefix.Mask(p.cfg.HomePrefixLen) {
			return packet.MAC{}, true
		}
		if ft.Dst.Mask(p.cfg.HomePrefixLen) == p.cfg.HomePrefix.Mask(p.cfg.HomePrefixLen) {
			return packet.MAC{}, true
		}
	}
	return packet.MAC{}, false
}

// RecordFlowRemoved ingests the final counters carried by a flow-removed
// message, so traffic sent between the last poll and the entry's expiry is
// not lost. The router wires this to the controller's flow-removed event.
func (p *Plane) RecordFlowRemoved(match *openflow.Match, packets, bytes uint64) {
	if p.cfg.DB == nil {
		return
	}
	fs := openflow.FlowStats{Match: *match, PacketCount: packets, ByteCount: bytes}
	ft, mac, ok := p.classify(&fs)
	if !ok {
		return
	}
	id := flowIdent{ft: ft, mac: mac}
	p.mu.Lock()
	st := p.seen[id]
	var dp, db uint64
	if st == nil {
		dp, db = packets, bytes
	} else {
		dp, db = packets-st.packets, bytes-st.bytes
		if packets < st.packets {
			dp, db = packets, bytes
		}
		delete(p.seen, id)
	}
	p.mu.Unlock()
	if dp == 0 {
		return
	}
	_ = p.cfg.DB.InsertFlow(mac, ft, dp, db)
}

func (p *Plane) pollLinks() {
	if p.cfg.Links == nil || p.cfg.DB == nil {
		return
	}
	for _, li := range p.cfg.Links.LinkInfos() {
		_ = p.cfg.DB.InsertLink(li.MAC, li.RSSI, li.Retries, li.Rate)
	}
}
