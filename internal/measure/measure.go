// Package measure implements the Homework router's measurement plane: it
// periodically polls the datapath's flow statistics and the wireless
// driver's link state, and streams observations into the hwdb Flows and
// Links tables that the visualization interfaces subscribe to. (Lease
// events reach the Leases table directly from the DHCP server.)
//
// Concurrency: drive the plane either with Run's single background
// goroutine or with explicit PollOnce calls, never both at once.
// RecordFlowRemoved arrives concurrently from the controller's dispatch
// goroutine; the flow-state cache is mutex-guarded and the hwdb tables
// synchronize internally.
package measure

import (
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/hwdb"
	"repro/internal/nox"
	"repro/internal/openflow"
	"repro/internal/packet"
)

// LinkSource supplies link-layer observations; implemented by
// netsim.Network (and, on real hardware, by the WiFi driver).
type LinkSource interface {
	LinkInfos() []LinkSample
}

// LinkSample is one station's link state.
type LinkSample struct {
	MAC     packet.MAC
	RSSI    int
	Retries int
	Rate    float64
}

// DeviceResolver attributes a flow's home-side address to a device MAC;
// implemented by the DHCP server.
type DeviceResolver interface {
	MACForIP(ip packet.IP4) (packet.MAC, bool)
}

// Config parameterizes the measurement plane.
type Config struct {
	DB       *hwdb.DB
	Clock    clock.Clock
	Interval time.Duration // poll period (default 1s)
	Links    LinkSource
	Resolver DeviceResolver
	// HomePrefix/HomePrefixLen classify which flow endpoint is the local
	// device (e.g. 192.168.1.0/24).
	HomePrefix    packet.IP4
	HomePrefixLen int
}

// flowState tracks the last counters seen for a flow so the plane records
// per-interval deltas ("periodically observed active five-tuples").
type flowState struct {
	packets uint64
	bytes   uint64
	lastUp  uint64 // poll generation last seen
}

// Plane is the measurement plane.
type Plane struct {
	cfg Config

	mu    sync.Mutex
	seen  map[flowIdent]*flowState
	gen   uint64
	stop  chan struct{}
	once  sync.Once
	polls uint64
}

type flowIdent struct {
	ft  packet.FiveTuple
	mac packet.MAC
}

// New creates a measurement plane.
func New(cfg Config) *Plane {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Interval == 0 {
		cfg.Interval = time.Second
	}
	return &Plane{cfg: cfg, seen: make(map[flowIdent]*flowState), stop: make(chan struct{})}
}

// Run polls sw until Stop; typically launched as a goroutine.
func (p *Plane) Run(sw *nox.Switch) {
	for {
		select {
		case <-p.stop:
			return
		case <-p.cfg.Clock.After(p.cfg.Interval):
		}
		p.PollOnce(sw)
	}
}

// Stop halts Run.
func (p *Plane) Stop() { p.once.Do(func() { close(p.stop) }) }

// Polls returns how many poll rounds have completed.
func (p *Plane) Polls() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.polls
}

// PollOnce performs one measurement round: flow stats deltas into Flows,
// link samples into Links.
func (p *Plane) PollOnce(sw *nox.Switch) {
	p.pollFlows(sw)
	p.pollLinks()
	p.mu.Lock()
	p.polls++
	p.mu.Unlock()
}

func (p *Plane) pollFlows(sw *nox.Switch) {
	if sw == nil || p.cfg.DB == nil {
		return
	}
	stats, err := sw.FlowStats(openflow.MatchAll())
	if err != nil {
		return
	}
	p.mu.Lock()
	p.gen++
	gen := p.gen
	p.mu.Unlock()

	for _, fs := range stats {
		ft, mac, ok := p.classify(&fs)
		if !ok {
			continue
		}
		id := flowIdent{ft: ft, mac: mac}
		p.mu.Lock()
		st := p.seen[id]
		if st == nil {
			st = &flowState{}
			p.seen[id] = st
		}
		dp := fs.PacketCount - st.packets
		db := fs.ByteCount - st.bytes
		if fs.PacketCount < st.packets { // counters reset (rule reinstalled)
			dp, db = fs.PacketCount, fs.ByteCount
		}
		st.packets, st.bytes = fs.PacketCount, fs.ByteCount
		st.lastUp = gen
		p.mu.Unlock()
		if dp == 0 {
			continue // not active this interval
		}
		_ = p.cfg.DB.InsertFlow(mac, ft, dp, db)
	}

	// Forget flows that vanished from the table.
	p.mu.Lock()
	for id, st := range p.seen {
		if st.lastUp != gen {
			delete(p.seen, id)
		}
	}
	p.mu.Unlock()
}

// classify extracts the five-tuple from a flow entry's match and
// attributes it to the home device.
func (p *Plane) classify(fs *openflow.FlowStats) (packet.FiveTuple, packet.MAC, bool) {
	m := &fs.Match
	// Only fully-specified IPv4 transport entries describe single flows.
	if m.DLType != packet.EtherTypeIPv4 || !m.IsExact() {
		return packet.FiveTuple{}, packet.MAC{}, false
	}
	ft := packet.FiveTuple{
		Src: m.NWSrc, Dst: m.NWDst,
		Proto:   packet.IPProto(m.NWProto),
		SrcPort: m.TPSrc, DstPort: m.TPDst,
	}
	mac, ok := p.attribute(ft)
	return ft, mac, ok
}

// attribute finds the device MAC for the home-side endpoint.
func (p *Plane) attribute(ft packet.FiveTuple) (packet.MAC, bool) {
	if p.cfg.Resolver != nil {
		if mac, ok := p.cfg.Resolver.MACForIP(ft.Src); ok {
			return mac, true
		}
		if mac, ok := p.cfg.Resolver.MACForIP(ft.Dst); ok {
			return mac, true
		}
	}
	if p.cfg.HomePrefixLen > 0 {
		if ft.Src.Mask(p.cfg.HomePrefixLen) == p.cfg.HomePrefix.Mask(p.cfg.HomePrefixLen) {
			return packet.MAC{}, true
		}
		if ft.Dst.Mask(p.cfg.HomePrefixLen) == p.cfg.HomePrefix.Mask(p.cfg.HomePrefixLen) {
			return packet.MAC{}, true
		}
	}
	return packet.MAC{}, false
}

// RecordFlowRemoved ingests the final counters carried by a flow-removed
// message, so traffic sent between the last poll and the entry's expiry is
// not lost. The router wires this to the controller's flow-removed event.
func (p *Plane) RecordFlowRemoved(match *openflow.Match, packets, bytes uint64) {
	if p.cfg.DB == nil {
		return
	}
	fs := openflow.FlowStats{Match: *match, PacketCount: packets, ByteCount: bytes}
	ft, mac, ok := p.classify(&fs)
	if !ok {
		return
	}
	id := flowIdent{ft: ft, mac: mac}
	p.mu.Lock()
	st := p.seen[id]
	var dp, db uint64
	if st == nil {
		dp, db = packets, bytes
	} else {
		dp, db = packets-st.packets, bytes-st.bytes
		if packets < st.packets {
			dp, db = packets, bytes
		}
		delete(p.seen, id)
	}
	p.mu.Unlock()
	if dp == 0 {
		return
	}
	_ = p.cfg.DB.InsertFlow(mac, ft, dp, db)
}

func (p *Plane) pollLinks() {
	if p.cfg.Links == nil || p.cfg.DB == nil {
		return
	}
	for _, li := range p.cfg.Links.LinkInfos() {
		_ = p.cfg.DB.InsertLink(li.MAC, li.RSSI, li.Retries, li.Rate)
	}
}
