package measure

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/hwdb"
	"repro/internal/openflow"
	"repro/internal/packet"
)

type fakeLinks struct{ samples []LinkSample }

func (f fakeLinks) LinkInfos() []LinkSample { return f.samples }

type fakeResolver map[packet.IP4]packet.MAC

func (f fakeResolver) MACForIP(ip packet.IP4) (packet.MAC, bool) {
	m, ok := f[ip]
	return m, ok
}

func TestPollLinksFillsTable(t *testing.T) {
	clk := clock.NewSimulated()
	db := hwdb.NewHomework(clk, 1024)
	mac := packet.MustMAC("02:aa:00:00:00:01")
	p := New(Config{
		DB: db, Clock: clk, Interval: time.Second,
		Links: fakeLinks{samples: []LinkSample{{MAC: mac, RSSI: -55, Retries: 2, Rate: 48}}},
	})
	p.PollOnce(nil) // nil switch: only links are polled
	if p.Polls() != 1 {
		t.Errorf("polls = %d", p.Polls())
	}
	res, err := db.Query("SELECT mac, rssi, retries, rate FROM Links")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].Int != -55 || res.Rows[0][3].Real != 48 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestAttributePrefersResolver(t *testing.T) {
	clk := clock.NewSimulated()
	db := hwdb.NewHomework(clk, 1024)
	mac := packet.MustMAC("02:aa:00:00:00:01")
	homeIP := packet.MustIP4("192.168.1.10")
	p := New(Config{
		DB: db, Clock: clk,
		Resolver:   fakeResolver{homeIP: mac},
		HomePrefix: packet.MustIP4("192.168.1.0"), HomePrefixLen: 24,
	})
	// Home side as source.
	got, ok := p.attribute(packet.FiveTuple{Src: homeIP, Dst: packet.MustIP4("8.8.8.8")})
	if !ok || got != mac {
		t.Errorf("attribute(src) = %v, %v", got, ok)
	}
	// Home side as destination (return traffic).
	got, ok = p.attribute(packet.FiveTuple{Src: packet.MustIP4("8.8.8.8"), Dst: homeIP})
	if !ok || got != mac {
		t.Errorf("attribute(dst) = %v, %v", got, ok)
	}
	// Unknown home address falls back to the prefix (anonymous MAC).
	other := packet.MustIP4("192.168.1.99")
	if _, ok := p.attribute(packet.FiveTuple{Src: other, Dst: packet.MustIP4("8.8.8.8")}); !ok {
		t.Error("prefix fallback failed")
	}
	// Fully foreign flows are not attributed.
	if _, ok := p.attribute(packet.FiveTuple{Src: packet.MustIP4("8.8.8.8"), Dst: packet.MustIP4("9.9.9.9")}); ok {
		t.Error("foreign flow attributed")
	}
}

func TestStopHaltsRun(t *testing.T) {
	clk := clock.NewSimulated()
	db := hwdb.NewHomework(clk, 64)
	p := New(Config{DB: db, Clock: clk, Interval: time.Second})
	done := make(chan struct{})
	go func() {
		p.Run(nil)
		close(done)
	}()
	p.Stop()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop")
	}
}

func TestRecordFlowRemoved(t *testing.T) {
	clk := clock.NewSimulated()
	db := hwdb.NewHomework(clk, 1024)
	mac := packet.MustMAC("02:aa:00:00:00:01")
	homeIP := packet.MustIP4("192.168.1.10")
	p := New(Config{DB: db, Clock: clk, Resolver: fakeResolver{homeIP: mac}})

	// Build the exact match a forwarding rule would carry.
	f := packet.NewTCPFrame(mac, packet.MustMAC("02:01:00:00:00:01"),
		homeIP, packet.MustIP4("93.184.216.34"), 50000, 80, packet.TCPAck, 0, nil)
	var d packet.Decoded
	if err := d.Decode(f.Bytes()); err != nil {
		t.Fatal(err)
	}
	m := openflow.MatchFromFrame(&d, 1)

	// Never polled: the full final counters are recorded.
	p.RecordFlowRemoved(&m, 10, 15000)
	res, err := db.Query("SELECT sum(bytes) FROM Flows")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsFloat() != 15000 {
		t.Errorf("bytes = %v", res.Rows[0][0])
	}

	// Wildcard (non-flow) matches are ignored.
	all := openflow.MatchAll()
	p.RecordFlowRemoved(&all, 5, 500)
	res, _ = db.Query("SELECT count(*) FROM Flows")
	if res.Rows[0][0].Int != 1 {
		t.Errorf("wildcard removal recorded: %v", res.Rows)
	}
}
