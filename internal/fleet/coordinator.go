package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/fleet/engine"
	"repro/internal/hwdb"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Fleet is the historical name for the placement layer; the whole PR-1
// API (AddHome/Step/Aggregate/Totals/...) lives on, now implemented as a
// coordinator over shard engines.
type Fleet = Coordinator

// Placement-event ops recorded in the coordinator's history.
const (
	// OpSpawn places a home on a shard (AddHome, AddHomeID, the re-add
	// half of restart/replace).
	OpSpawn = "spawn"
	// OpDrain removes a home from its shard (RemoveHome, the teardown
	// half of restart/replace).
	OpDrain = "drain"
	// OpMigrate drains a home from one shard and re-places it on
	// another in a single recorded transition.
	OpMigrate = "migrate"
	// OpAbort cancels a spawn whose engine failed to bring the home up.
	OpAbort = "abort"
)

// PlacementEvent is one recorded home→shard lifecycle transition. The
// history is deterministic for a fixed seed and op sequence: events are
// appended under the same lock that allocates IDs, so even a concurrent
// AddHomes burst records its spawns in ascending-ID order.
type PlacementEvent struct {
	Seq  uint64 // 1-based event number
	Step uint64 // fleet ticks completed when the event was recorded
	Op   string // OpSpawn, OpDrain, OpMigrate, OpAbort
	Home uint64
	From int // source shard; -1 for spawn
	To   int // target shard; -1 for drain/abort
}

// Coordinator is the fleet's placement control plane: it owns home→shard
// assignment, the spawn/assign/drain/migrate/restart/replace lifecycle,
// the shared clock and the federated telemetry view, and drives N
// shard-local engines through the ShardClient contract. It is the single
// surface internal/health remediation and cmd/hwfleetd use.
type Coordinator struct {
	cfg     Config
	clk     clock.Clock
	engines []*engine.Engine // in-process home access (engines[i].Home)
	shards  []ShardClient    // the contract the lifecycle drives
	fed     *telemetry.Federation
	folds   atomic.Uint64

	mu       sync.Mutex
	place    map[uint64]int // home ID → shard index
	nextID   uint64
	steps    uint64
	eventSeq uint64
	history  []PlacementEvent
	closed   bool
}

// New creates an empty fleet; add homes with AddHome/AddHomes.
func New(cfg Config) *Fleet {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
		if cfg.Shards > 8 {
			cfg.Shards = 8
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MeasureEvery <= 0 {
		cfg.MeasureEvery = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	c := &Coordinator{
		cfg:   cfg,
		clk:   clk,
		fed:   telemetry.NewFederation(telemetry.FolderConfig{Clock: clk, ViewRing: cfg.RingSize}),
		place: make(map[uint64]int),
	}
	if len(cfg.WorkerAddrs) > 0 {
		// Remote fleet: one shardrpc client per worker address, each with
		// a federated relay standing in for the worker's hub. No engines
		// exist in this process, so Home/Homes return nothing; everything
		// else — lifecycle, stepping, Stats, telemetry — is identical.
		c.cfg.Shards = len(cfg.WorkerAddrs)
		c.shards = newRemoteShards(c.cfg, c.fed)
		return c
	}
	for i := 0; i < cfg.Shards; i++ {
		e := engine.New(engine.Config{
			Index:        i,
			Workers:      cfg.Workers,
			Clock:        cfg.Clock,
			Seed:         cfg.Seed,
			MeasureEvery: cfg.MeasureEvery,
			ViewRing:     cfg.RingSize,
			HomeConfig:   cfg.HomeConfig,
			OnStep:       cfg.onStep,
		})
		c.engines = append(c.engines, e)
		c.shards = append(c.shards, e)
		// Attach before any home exists, so every row any shard ever
		// delivers is folded into the global view.
		c.fed.Attach(e.Hub())
	}
	return c
}

// shardOf is the placement policy: ID modulo shard count keeps placement
// stable under churn — removing a home never reassigns any other home,
// and a re-added ID lands back on its old shard. Migrate is the only op
// that overrides it.
func shardOf(id uint64, shards int) int {
	return int(id % uint64(shards))
}

// Shards returns the number of shard engines.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Size returns the number of placed homes.
func (c *Coordinator) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.place)
}

// Steps returns how many fleet ticks have run.
func (c *Coordinator) Steps() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.steps
}

// event appends one placement-history entry. Callers hold c.mu.
func (c *Coordinator) event(op string, home uint64, from, to int) {
	c.eventSeq++
	c.history = append(c.history, PlacementEvent{
		Seq: c.eventSeq, Step: c.steps, Op: op, Home: home, From: from, To: to,
	})
}

// PlacementHistory returns a copy of every recorded placement event in
// order. For a fixed seed and op sequence the history is identical run
// to run — the coordinator determinism test pins this.
func (c *Coordinator) PlacementHistory() []PlacementEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]PlacementEvent(nil), c.history...)
}

// PlacementFor returns the most recent placement events involving one
// home, oldest-first, capped at max (<= 0 means no cap). The incident
// recorder slices this into its bundles so a postmortem shows how the
// home got to its current shard.
func (c *Coordinator) PlacementFor(home uint64, max int) []PlacementEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []PlacementEvent
	for _, ev := range c.history {
		if ev.Home == home {
			out = append(out, ev)
		}
	}
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// AddHome brings up one more home and returns it, placed by the modulo
// policy.
func (c *Coordinator) AddHome() (*Home, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("fleet: closed")
	}
	id := c.nextID
	c.nextID++
	s := shardOf(id, len(c.shards))
	c.place[id] = s
	c.event(OpSpawn, id, -1, s)
	c.mu.Unlock()
	return c.assign(id, s)
}

// AddHomeID brings up a home under a caller-chosen ID — the remediation
// loop's restart path re-creates a home in place after RemoveHome. The
// ID must not be live; the auto-allocation sequence skips past it so
// later AddHome calls cannot collide. Placement follows the modulo
// policy.
func (c *Coordinator) AddHomeID(id uint64) (*Home, error) {
	return c.addAt(id, shardOf(id, len(c.shards)))
}

// addAt reserves a caller-chosen ID on a specific shard and brings the
// home up there.
func (c *Coordinator) addAt(id uint64, s int) (*Home, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("fleet: closed")
	}
	if _, live := c.place[id]; live {
		c.mu.Unlock()
		return nil, fmt.Errorf("fleet: home %d already live", id)
	}
	if id >= c.nextID {
		c.nextID = id + 1
	}
	c.place[id] = s
	c.event(OpSpawn, id, -1, s)
	c.mu.Unlock()
	return c.assign(id, s)
}

// assign drives the engine half of a spawn for an already-reserved
// placement, registers the home with the federation and returns the
// in-process handle. On engine failure the reservation is rolled back
// and recorded as an abort.
func (c *Coordinator) assign(id uint64, s int) (*Home, error) {
	if err := c.shards[s].Assign(id); err != nil {
		c.mu.Lock()
		delete(c.place, id)
		c.event(OpAbort, id, s, -1)
		c.mu.Unlock()
		return nil, err
	}
	if len(c.engines) == 0 {
		// Remote shard: the home lives in the worker process. Track it in
		// the global folder (host counts arrive via Stats, not a handle)
		// and return a nil handle — remote callers use IDs, not Homes.
		c.fed.AddHome(id, nil)
		return nil, nil
	}
	h, ok := c.engines[s].Home(id)
	if !ok {
		// The engine accepted the assign but the home is already gone —
		// only a racing teardown does this.
		c.mu.Lock()
		delete(c.place, id)
		c.event(OpAbort, id, s, -1)
		c.mu.Unlock()
		return nil, fmt.Errorf("fleet: home %d torn down during assign", id)
	}
	c.fed.AddHome(id, h.Router.Net.HostCount)
	return h, nil
}

// AddHomes brings up n homes concurrently (bring-up is dominated by each
// home's controller join handshake, so parallelism matters at fleet
// scale). Homes that fail to start are reported but do not abort the
// rest; the successfully started homes are returned in ID order.
func (c *Coordinator) AddHomes(n int) ([]*Home, error) {
	out := make([]*Home, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, len(c.shards)*2)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i], errs[i] = c.AddHome()
		}(i)
	}
	wg.Wait()
	homes := make([]*Home, 0, n)
	for _, h := range out {
		if h != nil {
			homes = append(homes, h)
		}
	}
	sort.Slice(homes, func(i, j int) bool { return homes[i].ID < homes[j].ID })
	return homes, errors.Join(errs...)
}

// Home returns a live home by ID (in-process handle). Remote fleets have
// no in-process handles: Home reports false for every ID even though the
// home is live on its worker — use HomeIDs/HomeShard/ShardStats instead.
func (c *Coordinator) Home(id uint64) (*Home, bool) {
	c.mu.Lock()
	s, ok := c.place[id]
	c.mu.Unlock()
	if !ok || len(c.engines) == 0 {
		return nil, false
	}
	return c.engines[s].Home(id)
}

// HomeIDs returns every placed home ID in ascending order — the
// handle-free membership view remote fleets drive churn with.
func (c *Coordinator) HomeIDs() []uint64 {
	c.mu.Lock()
	out := make([]uint64, 0, len(c.place))
	for id := range c.place {
		out = append(out, id)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HomeShard returns which shard a live home is placed on.
func (c *Coordinator) HomeShard(id uint64) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.place[id]
	return s, ok
}

// Homes returns the live homes in ascending ID order across all shards.
func (c *Coordinator) Homes() []*Home {
	var out []*Home
	for _, e := range c.engines {
		out = append(out, e.Homes()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RemoveHome tears one home down via its shard's drain: router stop,
// final telemetry flush (the rows land in the shard and federated
// cumulative totals before the sources retire), retire accounting, then
// the per-home state drops on both levels. Its contribution to the
// totals and its committed view rows remain.
func (c *Coordinator) RemoveHome(id uint64) bool {
	c.mu.Lock()
	s, ok := c.place[id]
	c.mu.Unlock()
	if !ok {
		return false
	}
	if !c.shards[s].Drain(id) {
		// Reserved but not yet live on the engine (a racing spawn), or
		// a concurrent remove won the drain.
		return false
	}
	c.fed.RemoveHome(id)
	c.mu.Lock()
	delete(c.place, id)
	c.event(OpDrain, id, s, -1)
	c.mu.Unlock()
	return true
}

// Migrate drains a home from its current shard and re-places the same ID
// on the target shard: the old incarnation settles, final-flushes and
// retires exactly as RemoveHome, then a fresh incarnation comes up on
// the target — there is no live state hand-off, per-home continuity is
// the telemetry books (cumulative totals, committed view rows, retired
// hub accounting), which survive intact. Returns the new incarnation.
func (c *Coordinator) Migrate(id uint64, target int) (*Home, error) {
	if target < 0 || target >= len(c.shards) {
		return nil, fmt.Errorf("fleet: no shard %d", target)
	}
	c.mu.Lock()
	from, ok := c.place[id]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fleet: no home %d", id)
	}
	if !c.shards[from].Drain(id) {
		return nil, fmt.Errorf("fleet: no home %d", id)
	}
	c.fed.RemoveHome(id)
	c.mu.Lock()
	c.place[id] = target
	c.event(OpMigrate, id, from, target)
	c.mu.Unlock()
	return c.assign(id, target)
}

// Cordon takes a home out of rotation: subsequent Steps skip it (no
// traffic, no settle, no measurement poll) while its router and
// telemetry sources stay live, so a sick home stops consuming its
// shard's step budget but remains inspectable. Returns false if the home
// is not live.
func (c *Coordinator) Cordon(id uint64) bool {
	c.mu.Lock()
	s, ok := c.place[id]
	c.mu.Unlock()
	if !ok {
		return false
	}
	return c.shards[s].Cordon(id)
}

// Uncordon returns a cordoned home to rotation. Returns false if the
// home is not live.
func (c *Coordinator) Uncordon(id uint64) bool {
	c.mu.Lock()
	s, ok := c.place[id]
	c.mu.Unlock()
	if !ok {
		return false
	}
	return c.shards[s].Uncordon(id)
}

// RestartHome tears the home's router down and brings a fresh one up
// under the same ID on the same shard — the remediation loop's "turn it
// off and on again". The old incarnation's telemetry sources are retired
// with a final drain (their rows stay accounted) and the new incarnation
// re-watches the same SourceIDs; the new home comes back uncordoned with
// zeroed vitals. A home that was migrated off its modulo shard restarts
// where it lives, preserving the migration.
func (c *Coordinator) RestartHome(id uint64) (*Home, error) {
	c.mu.Lock()
	s, live := c.place[id]
	c.mu.Unlock()
	if !live {
		return nil, fmt.Errorf("fleet: no home %d", id)
	}
	if !c.RemoveHome(id) {
		return nil, fmt.Errorf("fleet: no home %d", id)
	}
	return c.addAt(id, s)
}

// ReplaceHome retires the home entirely and brings up a brand-new one
// under a fresh ID — the remediation loop's escalation when restarting
// in place did not cure the home. The caller learns the successor from
// the returned Home.
func (c *Coordinator) ReplaceHome(id uint64) (*Home, error) {
	if !c.RemoveHome(id) {
		return nil, fmt.Errorf("fleet: no home %d", id)
	}
	return c.AddHome()
}

// Step advances the whole fleet by dt simulated seconds: every engine
// steps its homes concurrently (deterministic per-home order inside each
// engine; see Engine.Step), then — once, fleet-wide — the shared
// simulated clock advances and telemetry syncs. A read of
// Totals()/Rates()/DB() immediately after Step reflects the rows this
// step inserted, without any fold pass.
func (c *Coordinator) Step(dt float64) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("fleet: closed")
	}
	c.steps++
	c.mu.Unlock()

	var err error
	if len(c.shards) == 1 {
		// Single shard: step inline, no fan-out goroutine.
		err = c.stepShard(c.shards[0], dt)
	} else {
		errs := make([]error, len(c.shards))
		var wg sync.WaitGroup
		for i, sc := range c.shards {
			i, sc := i, sc
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[i] = c.stepShard(sc, dt)
			}()
		}
		wg.Wait()
		err = errors.Join(errs...)
	}

	if sim, ok := c.cfg.Clock.(*clock.Simulated); ok {
		sim.Advance(time.Duration(dt * float64(time.Second)))
	}
	c.Sync()
	return err
}

// Sync flushes every shard hub (delivering every row whose insert
// completed) in shard order and commits the per-shard and federated
// FleetStats views. Step calls it after every barrier; call it directly
// after out-of-band inserts (e.g. a manual PollMeasure) before reading
// the view.
func (c *Coordinator) Sync() {
	for _, sc := range c.shards {
		sc.Sync()
	}
	c.fed.Commit()
}

// Aggregate snapshots the fleet-wide delta since the previous Aggregate
// call. Unlike the PR-1 fold it does not scan any home's rings: the
// federated folder maintained the running deltas as rows streamed in, so
// this is a Sync plus a per-home counter swap.
func (c *Coordinator) Aggregate() FleetSnapshot {
	c.Sync()
	folds := c.folds.Add(1)
	ps := c.fed.Folder().TakePeriod()
	return snapshotFromPeriod(c.clk.Now(), ps, folds)
}

// DB returns the fleet-wide hwdb holding the continuously-maintained
// federated FleetStats view; query it with the same CQL the per-home
// interfaces use, e.g.
//
//	SELECT home, sum(bytes) FROM FleetStats GROUP BY home
func (c *Coordinator) DB() *hwdb.DB { return c.fed.Folder().View() }

// Totals returns the cumulative fleet-wide counters. They are maintained
// live by the federated folder; the read is O(1) — no ring is scanned,
// no home is visited, no shard is called. Hosts is as of the latest
// Sync/Step commit.
func (c *Coordinator) Totals() FleetTotals {
	t := c.fed.Folder().Totals()
	return FleetTotals{
		Folds:   c.folds.Load(),
		Homes:   t.Homes,
		Hosts:   t.Hosts,
		Flows:   t.Flows,
		Packets: t.Packets,
		Bytes:   t.Bytes,
		Links:   t.Links,
		Lost:    t.Lost,
	}
}

// Telemetry exposes the federated global folder: windowed per-home and
// per-device rates, per-home cumulative totals, and the view database.
// The telemetry.Server streaming endpoint is built over it and serves
// one coherent fleet regardless of shard count.
func (c *Coordinator) Telemetry() *telemetry.Folder { return c.fed.Folder() }

// Hub exposes the fleet's federated subscription surface — attach
// additional delta subscribers (they span every shard hub) or read the
// summed delivery/loss accounting.
func (c *Coordinator) Hub() *telemetry.Federation { return c.fed }

// ShardStats reports each engine's self-reported state in shard order.
// Per-shard hub books sum to the federation's; per-shard folder totals
// sum to the global folder's row/flow/packet/byte counters.
func (c *Coordinator) ShardStats() []ShardStats {
	out := make([]ShardStats, len(c.shards))
	for i, sc := range c.shards {
		out[i] = sc.Stats()
	}
	return out
}

// TraceStats merges every shard's punt-lifecycle trace histograms into
// one fleet-wide per-stage latency summary (p50/p99/max/mean per
// contract transition). Homes built with core.Config.DisableTrace
// contribute nothing. Safe to call from any goroutine, concurrently with
// Step: snapshots read the tracers' atomics, never their locks.
func (c *Coordinator) TraceStats() []trace.StageStats {
	var merged trace.Snapshot
	for _, sc := range c.shards {
		merged.Merge(sc.TraceSnapshot())
	}
	return merged.Stats()
}

// Stop tears every shard engine down (each stops its homes concurrently
// and closes its hub) and marks the coordinator closed.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.place = make(map[uint64]int)
	c.mu.Unlock()

	var wg sync.WaitGroup
	for _, sc := range c.shards {
		wg.Add(1)
		go func(sc ShardClient) {
			defer wg.Done()
			sc.Close()
		}(sc)
	}
	wg.Wait()
}
