package fleet

import (
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/hwdb"
)

// TableFleetStats is the fleet-wide stats view: one row per home per
// fold, in an hwdb of its own so the same CQL the per-home interfaces
// speak works across the whole fleet.
const TableFleetStats = "FleetStats"

// DefaultStatsRing sizes the FleetStats ring: at one fold a second it
// holds over four minutes of history for a 256-home fleet.
const DefaultStatsRing = 65536

// HomeStats is one home's delta since the previous fold.
type HomeStats struct {
	Home     uint64
	Hosts    int    // hosts attached to the home network at fold time
	Devices  int    // distinct device MACs with new flow observations
	Flows    int    // new flow observations folded
	Packets  uint64 // packets in those observations
	Bytes    uint64 // bytes in those observations
	Links    int    // new link-layer observations folded
	MeanRSSI float64
	Lost     uint64 // ring-wrapped rows the fold could not read
}

// FleetSnapshot is what one fold saw across every live home.
type FleetSnapshot struct {
	When  time.Time
	Homes []HomeStats // ascending home ID
	FleetTotals
}

// FleetTotals are cumulative fleet-wide counters.
type FleetTotals struct {
	Folds   uint64
	Homes   int // live homes at the latest fold
	Hosts   int // hosts across the fleet at the latest fold
	Flows   uint64
	Packets uint64
	Bytes   uint64
	Links   uint64
	Lost    uint64
}

// cursor marks how many of a home's ring inserts previous folds consumed.
type cursor struct {
	flows uint64
	links uint64
}

// aggregator folds per-home hwdb tables into the fleet-wide view. Reads
// are batched: one cursor read (Table.Tail) per table per home per fold —
// a single lock acquisition each — instead of per-row or per-device
// queries.
type aggregator struct {
	db *hwdb.DB

	// foldMu serializes whole folds: cursor reads and writes must be
	// atomic across a fold or two overlapping Aggregate calls would
	// consume (and double-count) the same Tail rows.
	foldMu sync.Mutex

	mu      sync.Mutex
	cursors map[uint64]cursor
	sums    FleetTotals
}

func newAggregator(clk clock.Clock, ringSize int) *aggregator {
	if ringSize <= 0 {
		ringSize = DefaultStatsRing
	}
	db := hwdb.New(clk)
	_, err := db.CreateTable(TableFleetStats, hwdb.NewSchema(
		hwdb.Column{Name: "home", Type: hwdb.TInt},
		hwdb.Column{Name: "hosts", Type: hwdb.TInt},
		hwdb.Column{Name: "devices", Type: hwdb.TInt},
		hwdb.Column{Name: "flows", Type: hwdb.TInt},
		hwdb.Column{Name: "packets", Type: hwdb.TInt},
		hwdb.Column{Name: "bytes", Type: hwdb.TInt},
		hwdb.Column{Name: "links", Type: hwdb.TInt},
		hwdb.Column{Name: "rssi", Type: hwdb.TReal},
	), ringSize)
	if err != nil {
		panic(err) // fresh DB, fixed name: cannot collide
	}
	return &aggregator{db: db, cursors: make(map[uint64]cursor)}
}

// DB exposes the fleet-wide view for CQL queries.
func (a *aggregator) DB() *hwdb.DB { return a.db }

// fold reads every home's Flows and Links rings forward from the last
// fold's cursor, reduces them to per-home deltas, appends one FleetStats
// row per active home, and returns the snapshot. Idle homes still report
// their host count in the snapshot but insert no row (the view records
// activity, not liveness).
func (a *aggregator) fold(homes []*Home) FleetSnapshot {
	a.foldMu.Lock()
	defer a.foldMu.Unlock()
	snap := FleetSnapshot{When: a.db.Clock().Now()}
	var totalHosts int
	for _, h := range homes {
		hs, cur := a.foldHome(h)
		totalHosts += hs.Hosts
		snap.Homes = append(snap.Homes, hs)
		snap.Flows += uint64(hs.Flows)
		snap.Packets += hs.Packets
		snap.Bytes += hs.Bytes
		snap.Links += uint64(hs.Links)
		snap.Lost += hs.Lost

		a.mu.Lock()
		a.cursors[h.ID] = cur
		a.mu.Unlock()

		if hs.Flows > 0 || hs.Links > 0 {
			_ = a.db.Insert(TableFleetStats,
				hwdb.Int64(int64(hs.Home)),
				hwdb.Int64(int64(hs.Hosts)),
				hwdb.Int64(int64(hs.Devices)),
				hwdb.Int64(int64(hs.Flows)),
				hwdb.Int64(int64(hs.Packets)),
				hwdb.Int64(int64(hs.Bytes)),
				hwdb.Int64(int64(hs.Links)),
				hwdb.Float(hs.MeanRSSI))
		}
	}

	a.mu.Lock()
	a.sums.Folds++
	a.sums.Homes = len(homes)
	a.sums.Hosts = totalHosts
	a.sums.Flows += snap.Flows
	a.sums.Packets += snap.Packets
	a.sums.Bytes += snap.Bytes
	a.sums.Links += snap.Links
	a.sums.Lost += snap.Lost
	snap.FleetTotals.Folds = a.sums.Folds
	snap.FleetTotals.Homes = len(homes)
	snap.FleetTotals.Hosts = totalHosts
	a.mu.Unlock()
	return snap
}

// foldHome reduces one home's unread rows.
func (a *aggregator) foldHome(h *Home) (HomeStats, cursor) {
	a.mu.Lock()
	cur := a.cursors[h.ID]
	a.mu.Unlock()

	hs := HomeStats{Home: h.ID, Hosts: len(h.Router.Net.Hosts())}
	db := h.Router.DB

	if t, ok := db.Table(hwdb.TableFlows); ok {
		schema := t.Schema()
		macIdx, _ := schema.Index("mac")
		pktIdx, _ := schema.Index("packets")
		bytIdx, _ := schema.Index("bytes")
		rows, inserts, lost := t.Tail(cur.flows)
		cur.flows = inserts
		hs.Lost += lost
		devices := make(map[int64]struct{})
		for _, row := range rows {
			hs.Flows++
			hs.Packets += uint64(row.Vals[pktIdx].Int)
			hs.Bytes += uint64(row.Vals[bytIdx].Int)
			devices[row.Vals[macIdx].Int] = struct{}{}
		}
		hs.Devices = len(devices)
	}
	if t, ok := db.Table(hwdb.TableLinks); ok {
		schema := t.Schema()
		rssiIdx, _ := schema.Index("rssi")
		rows, inserts, lost := t.Tail(cur.links)
		cur.links = inserts
		hs.Lost += lost
		var rssiSum float64
		for _, row := range rows {
			hs.Links++
			rssiSum += row.Vals[rssiIdx].AsFloat()
		}
		if hs.Links > 0 {
			hs.MeanRSSI = rssiSum / float64(hs.Links)
		}
	}
	return hs, cur
}

// forget drops a removed home's cursor.
func (a *aggregator) forget(id uint64) {
	a.mu.Lock()
	delete(a.cursors, id)
	a.mu.Unlock()
}

// totals returns the cumulative counters.
func (a *aggregator) totals() FleetTotals {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sums
}
