package fleet

import (
	"sync"
	"time"

	"repro/internal/hwdb"
	"repro/internal/telemetry"
)

// TableFleetStats is the fleet-wide stats view: one row per active home
// per commit (a commit follows every fleet step), in an hwdb of its own
// so the same CQL the per-home interfaces speak works across the whole
// fleet. The view is maintained continuously by the telemetry folder;
// nothing folds on demand.
const TableFleetStats = telemetry.ViewTable

// DefaultStatsRing sizes the FleetStats ring: at one commit a second it
// holds over four minutes of history for a 256-home fleet.
const DefaultStatsRing = telemetry.DefaultViewRing

// HomeStats is one home's delta since the previous Aggregate call.
type HomeStats struct {
	Home     uint64
	Hosts    int    // hosts attached to the home network at snapshot time
	Devices  int    // distinct device MACs with new flow observations
	Flows    int    // new flow observations
	Packets  uint64 // packets in those observations
	Bytes    uint64 // bytes in those observations
	Links    int    // new link-layer observations
	MeanRSSI float64
	Lost     uint64 // ring-wrapped rows the hub could not read
}

// FleetSnapshot is the fleet-wide delta one Aggregate call observed.
type FleetSnapshot struct {
	When  time.Time
	Homes []HomeStats // ascending home ID
	FleetTotals
}

// FleetTotals are cumulative fleet-wide counters, maintained live by the
// telemetry folder: reading them never scans a home's rings.
type FleetTotals struct {
	Folds   uint64
	Homes   int // live homes
	Hosts   int // hosts across the fleet
	Flows   uint64
	Packets uint64
	Bytes   uint64
	Links   uint64
	Lost    uint64
}

// snapshotFromPeriod builds an Aggregate result from the folder's period
// deltas. As in the PR-1 fold, the embedded Flows/Packets/Bytes/Links/
// Lost are this period's delta while Folds/Homes/Hosts are current.
func snapshotFromPeriod(when time.Time, ps []telemetry.PeriodStats, folds uint64) FleetSnapshot {
	snap := FleetSnapshot{When: when}
	snap.FleetTotals.Folds = folds
	for _, p := range ps {
		snap.Homes = append(snap.Homes, HomeStats{
			Home: p.Home, Hosts: p.Hosts, Devices: p.Devices,
			Flows: p.Flows, Packets: p.Packets, Bytes: p.Bytes,
			Links: p.Links, MeanRSSI: p.MeanRSSI, Lost: p.Lost,
		})
		snap.FleetTotals.Hosts += p.Hosts
		snap.Flows += uint64(p.Flows)
		snap.Packets += p.Packets
		snap.Bytes += p.Bytes
		snap.Links += uint64(p.Links)
		snap.Lost += p.Lost
	}
	snap.FleetTotals.Homes = len(ps)
	return snap
}

// ---------------------------------------------------- on-demand baseline

// cursor marks how many of a home's ring inserts previous folds consumed.
type cursor struct {
	flows uint64
	links uint64
}

// onDemand is the PR-1 fold path kept as a measured baseline: a full
// cursor scan over every home's Flows and Links rings per call. It reads
// with its own cursors (hwdb.Table.Tail does not consume), so running it
// never perturbs the live telemetry path it is compared against.
type onDemand struct {
	mu      sync.Mutex
	cursors map[uint64]cursor
}

func newOnDemand() *onDemand {
	return &onDemand{cursors: make(map[uint64]cursor)}
}

// fold reads every home's unread rows forward from this baseline's own
// cursors and reduces them to per-home deltas: O(homes x tables) lock
// acquisitions per call even when nothing changed.
func (a *onDemand) fold(homes []*Home, when time.Time) FleetSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	snap := FleetSnapshot{When: when}
	for _, h := range homes {
		cur := a.cursors[h.ID]
		hs := HomeStats{Home: h.ID, Hosts: h.Router.Net.HostCount()}
		db := h.Router.DB

		if t, ok := db.Table(hwdb.TableFlows); ok {
			schema := t.Schema()
			macIdx, _ := schema.Index("mac")
			pktIdx, _ := schema.Index("packets")
			bytIdx, _ := schema.Index("bytes")
			rows, inserts, lost := t.Tail(cur.flows)
			cur.flows = inserts
			hs.Lost += lost
			devices := make(map[int64]struct{})
			for _, row := range rows {
				hs.Flows++
				hs.Packets += uint64(row.Vals[pktIdx].Int)
				hs.Bytes += uint64(row.Vals[bytIdx].Int)
				devices[row.Vals[macIdx].Int] = struct{}{}
			}
			hs.Devices = len(devices)
		}
		if t, ok := db.Table(hwdb.TableLinks); ok {
			schema := t.Schema()
			rssiIdx, _ := schema.Index("rssi")
			rows, inserts, lost := t.Tail(cur.links)
			cur.links = inserts
			hs.Lost += lost
			var rssiSum float64
			for _, row := range rows {
				hs.Links++
				rssiSum += row.Vals[rssiIdx].AsFloat()
			}
			if hs.Links > 0 {
				hs.MeanRSSI = rssiSum / float64(hs.Links)
			}
		}
		a.cursors[h.ID] = cur

		snap.Homes = append(snap.Homes, hs)
		snap.FleetTotals.Hosts += hs.Hosts
		snap.Flows += uint64(hs.Flows)
		snap.Packets += hs.Packets
		snap.Bytes += hs.Bytes
		snap.Links += uint64(hs.Links)
		snap.Lost += hs.Lost
	}
	snap.FleetTotals.Homes = len(homes)
	return snap
}

// forget drops a removed home's baseline cursor.
func (a *onDemand) forget(id uint64) {
	a.mu.Lock()
	delete(a.cursors, id)
	a.mu.Unlock()
}
