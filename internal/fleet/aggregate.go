package fleet

import (
	"time"

	"repro/internal/telemetry"
)

// TableFleetStats is the fleet-wide stats view: one row per active home
// per commit (a commit follows every fleet step), in an hwdb of its own
// so the same CQL the per-home interfaces speak works across the whole
// fleet. The view is maintained continuously by the telemetry folder;
// nothing folds on demand.
const TableFleetStats = telemetry.ViewTable

// DefaultStatsRing sizes the FleetStats ring: at one commit a second it
// holds over four minutes of history for a 256-home fleet.
const DefaultStatsRing = telemetry.DefaultViewRing

// HomeStats is one home's delta since the previous Aggregate call.
type HomeStats struct {
	Home     uint64
	Hosts    int    // hosts attached to the home network at snapshot time
	Devices  int    // distinct device MACs with new flow observations
	Flows    int    // new flow observations
	Packets  uint64 // packets in those observations
	Bytes    uint64 // bytes in those observations
	Links    int    // new link-layer observations
	MeanRSSI float64
	Lost     uint64 // ring-wrapped rows the hub could not read
}

// FleetSnapshot is the fleet-wide delta one Aggregate call observed.
type FleetSnapshot struct {
	When  time.Time
	Homes []HomeStats // ascending home ID
	FleetTotals
}

// FleetTotals are cumulative fleet-wide counters, maintained live by the
// telemetry folder: reading them never scans a home's rings.
type FleetTotals struct {
	Folds   uint64
	Homes   int // live homes
	Hosts   int // hosts across the fleet
	Flows   uint64
	Packets uint64
	Bytes   uint64
	Links   uint64
	Lost    uint64
}

// snapshotFromPeriod builds an Aggregate result from the folder's period
// deltas. As in the PR-1 fold, the embedded Flows/Packets/Bytes/Links/
// Lost are this period's delta while Folds/Homes/Hosts are current.
func snapshotFromPeriod(when time.Time, ps []telemetry.PeriodStats, folds uint64) FleetSnapshot {
	snap := FleetSnapshot{When: when}
	snap.FleetTotals.Folds = folds
	for _, p := range ps {
		snap.Homes = append(snap.Homes, HomeStats{
			Home: p.Home, Hosts: p.Hosts, Devices: p.Devices,
			Flows: p.Flows, Packets: p.Packets, Bytes: p.Bytes,
			Links: p.Links, MeanRSSI: p.MeanRSSI, Lost: p.Lost,
		})
		snap.FleetTotals.Hosts += p.Hosts
		snap.Flows += uint64(p.Flows)
		snap.Packets += p.Packets
		snap.Bytes += p.Bytes
		snap.Links += uint64(p.Links)
		snap.Lost += p.Lost
	}
	snap.FleetTotals.Homes = len(ps)
	return snap
}
