package fleet

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/netsim"
)

// TestFleetConcurrency32Homes drives a 32-home fleet across 8 shards
// with live traffic while aggregation and home churn run concurrently
// with stepping — the acceptance gate for `go test -race`: every home's
// datapath, controller and hwdb plus the fleet aggregator working at
// once.
func TestFleetConcurrency32Homes(t *testing.T) {
	if testing.Short() {
		t.Skip("32-home bring-up in -short mode")
	}
	const homes, shards = 32, 8
	f := New(Config{Shards: shards, Clock: clock.NewSimulated(), Seed: 3})
	t.Cleanup(f.Stop)
	if _, err := f.AddHomes(homes); err != nil {
		t.Fatal(err)
	}
	// Every 4th home gets a real traffic source so folds have work.
	for _, h := range f.Homes() {
		if h.ID%4 != 0 {
			continue
		}
		registerZones(h)
		host, err := h.Join("", h.ID%8 == 0, netsim.Pos{X: 2})
		if err != nil {
			t.Fatal(err)
		}
		host.AddApp(netsim.NewApp(netsim.AppWeb, zoneFor("web"), 60_000))
	}

	// Aggregate concurrently with stepping: the folds race the homes'
	// measurement planes and the steps race each other across shards.
	aggDone := make(chan struct{})
	go func() {
		defer close(aggDone)
		for i := 0; i < 6; i++ {
			f.Aggregate()
		}
	}()
	for i := 0; i < 6; i++ {
		if err := f.Step(0.25); err != nil {
			t.Fatal(err)
		}
		// Churn a home mid-run: remove one, add one, while shards step.
		if i == 2 {
			if !f.RemoveHome(1) {
				t.Fatal("remove failed")
			}
			if _, err := f.AddHome(); err != nil {
				t.Fatal(err)
			}
		}
	}
	<-aggDone

	snap := f.Aggregate()
	if snap.FleetTotals.Homes != homes {
		t.Errorf("homes = %d, want %d", snap.FleetTotals.Homes, homes)
	}
	if f.Totals().Flows == 0 || f.Totals().Bytes == 0 {
		t.Errorf("no traffic folded across the fleet: %+v", f.Totals())
	}
	if f.Steps() != 6 {
		t.Errorf("steps = %d", f.Steps())
	}
}
