package fleet

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/netsim"
)

// TestFleetConcurrency32Homes drives a 32-home fleet across 8 shards
// with live traffic while aggregation, a streaming hub subscriber and
// home churn run concurrently with stepping — the acceptance gate for
// `go test -race`: every home's datapath, controller and hwdb plus the
// telemetry hub and folder working at once. At the end, every hwdb row
// any watched table ever held must be delivered or explicitly accounted
// as lost: zero rows go silently missing.
func TestFleetConcurrency32Homes(t *testing.T) {
	if testing.Short() {
		t.Skip("32-home bring-up in -short mode")
	}
	const homes, shards = 32, 8
	f := New(Config{Shards: shards, Clock: clock.NewSimulated(), Seed: 3})
	t.Cleanup(f.Stop)
	if _, err := f.AddHomes(homes); err != nil {
		t.Fatal(err)
	}
	// Every 4th home gets a real traffic source so folds have work.
	for _, h := range f.Homes() {
		if h.ID%4 != 0 {
			continue
		}
		registerZones(h)
		host, err := h.Join("", h.ID%8 == 0, netsim.Pos{X: 2})
		if err != nil {
			t.Fatal(err)
		}
		host.AddApp(netsim.NewApp(netsim.AppWeb, zoneFor("web"), 60_000))
	}

	// A deliberately tiny channel subscriber races the drain passes: its
	// overflow must surface as accounted loss, not a hang or a race.
	slow := f.Hub().Subscribe(1)
	defer slow.Close()

	// track the tables of every home that ever existed, including ones
	// churned away mid-run, for the final accounting.
	tracked := make(map[uint64]*Home)
	for _, h := range f.Homes() {
		tracked[h.ID] = h
	}

	// Aggregate concurrently with stepping: the snapshots race the homes'
	// measurement planes and the steps race each other across shards.
	aggDone := make(chan struct{})
	go func() {
		defer close(aggDone)
		for i := 0; i < 6; i++ {
			f.Aggregate()
		}
	}()
	// Read the fleet-merged trace summaries concurrently with the punts
	// the steps generate: snapshot reads race every home's span stamps.
	traceDone := make(chan struct{})
	traceStop := make(chan struct{})
	go func() {
		defer close(traceDone)
		for {
			select {
			case <-traceStop:
				return
			default:
				f.TraceStats()
			}
		}
	}()
	for i := 0; i < 6; i++ {
		if err := f.Step(0.25); err != nil {
			t.Fatal(err)
		}
		// Churn a home mid-run: remove one, add one, while shards step.
		if i == 2 {
			if !f.RemoveHome(1) {
				t.Fatal("remove failed")
			}
			h, err := f.AddHome()
			if err != nil {
				t.Fatal(err)
			}
			tracked[h.ID] = h
		}
	}
	<-aggDone
	close(traceStop)
	<-traceDone

	// The traced control plane did real work: punts were spanned end to
	// end and the merged summaries expose non-zero stage counts.
	stats := f.TraceStats()
	if len(stats) == 0 {
		t.Error("TraceStats returned no stages")
	}
	var spanned uint64
	for _, st := range stats {
		spanned += st.Count
	}
	if spanned == 0 {
		t.Errorf("no spans recorded across the fleet: %+v", stats)
	}

	snap := f.Aggregate()
	if snap.FleetTotals.Homes != homes {
		t.Errorf("homes = %d, want %d", snap.FleetTotals.Homes, homes)
	}
	if f.Totals().Flows == 0 || f.Totals().Bytes == 0 {
		t.Errorf("no traffic folded across the fleet: %+v", f.Totals())
	}
	if f.Steps() != 6 {
		t.Errorf("steps = %d", f.Steps())
	}

	// Exact accounting: across every table ever watched — including the
	// churned-away home's, drained when it was unwatched — delivered plus
	// explicitly-lost equals total inserts.
	var inserts uint64
	for _, h := range tracked {
		for _, name := range watchedTables {
			if tbl, ok := h.Router.DB.Table(name); ok {
				ins, _ := tbl.Stats()
				inserts += ins
			}
		}
	}
	hub := f.Hub().Stats()
	if hub.Delivered+hub.Lost != inserts {
		t.Errorf("unaccounted rows: delivered %d + lost %d != %d inserts",
			hub.Delivered, hub.Lost, inserts)
	}
	if folder := f.Telemetry().Totals(); folder.Rows != hub.Delivered || folder.Lost != hub.Lost {
		t.Errorf("folder saw %d rows (lost %d), hub delivered %d (lost %d)",
			folder.Rows, folder.Lost, hub.Delivered, hub.Lost)
	}

	// The slow subscriber's books balance too: received + in-band lost +
	// still-pending lost covers everything fanned out to it.
	var got uint64
drain:
	for {
		select {
		case d := <-slow.C():
			got += uint64(len(d.Rows)) + d.Lost
		default:
			break drain
		}
	}
	if total := got + slow.PendingLost(); total != inserts {
		t.Errorf("slow subscriber accounts %d of %d rows (dropped %d)",
			total, inserts, slow.Dropped())
	}
}
