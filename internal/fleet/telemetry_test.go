package fleet

import (
	"testing"

	"repro/internal/netsim"
)

// sumInserts totals the hwdb inserts across the fleet-watched tables of
// the given homes — the ground truth the live telemetry must account for.
func sumInserts(homes []*Home) uint64 {
	var total uint64
	for _, h := range homes {
		for _, name := range watchedTables {
			if t, ok := h.Router.DB.Table(name); ok {
				ins, _ := t.Stats()
				total += ins
			}
		}
	}
	return total
}

// TestLiveStatsReflectEveryStep is the determinism acceptance gate at 8
// homes: immediately after each Step, with no fold pass, the live totals
// account for exactly the rows that step's measurement plane inserted,
// and a re-run from the same seed reproduces the identical FleetStats
// view byte for byte.
func TestLiveStatsReflectEveryStep(t *testing.T) {
	run := func() (*Fleet, string) {
		f := newTestFleet(t, 8, 4, nil)
		for _, h := range f.Homes() {
			registerZones(h)
			if h.ID%2 != 0 {
				continue // odd homes stay idle
			}
			host, err := h.Join("", h.ID%4 == 0, netsim.Pos{X: 2})
			if err != nil {
				t.Fatal(err)
			}
			host.AddApp(netsim.NewApp(netsim.AppWeb, zoneFor("web"), 60_000))
		}
		for i := 0; i < 6; i++ {
			if err := f.Step(0.25); err != nil {
				t.Fatal(err)
			}
			// Read immediately after the step: no Aggregate, no fold.
			tot := f.Totals()
			want := sumInserts(f.Homes())
			hub := f.Hub().Stats()
			if hub.Delivered+hub.Lost != want {
				t.Fatalf("step %d: hub delivered %d + lost %d != %d inserts",
					i, hub.Delivered, hub.Lost, want)
			}
			if got := f.Telemetry().Totals().Rows; got+hub.Lost != want {
				t.Fatalf("step %d: folder consumed %d of %d rows", i, got, want)
			}
			if i >= 2 && (tot.Flows == 0 || tot.Bytes == 0) {
				t.Fatalf("step %d: live totals empty: %+v", i, tot)
			}
		}
		res, err := f.DB().Query("SELECT home, devices, flows, packets, bytes, links FROM FleetStats")
		if err != nil {
			t.Fatal(err)
		}
		return f, res.Text()
	}

	f1, view1 := run()
	f2, view2 := run()
	if view1 != view2 {
		t.Fatalf("FleetStats view not reproducible:\n--- run 1:\n%s\n--- run 2:\n%s", view1, view2)
	}
	if t1, t2 := f1.Totals(), f2.Totals(); t1 != t2 {
		t.Fatalf("totals not reproducible: %+v vs %+v", t1, t2)
	}

	// The idle homes never contributed a view row.
	res, err := f1.DB().Query("SELECT home, sum(flows) FROM FleetStats GROUP BY home")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row[0].Int%2 != 0 {
			t.Fatalf("idle home %d has view rows", row[0].Int)
		}
	}

	// FlowPerf folded through the hub, and at least one rule install's
	// latency survived to a row. A fresh rule shows zero counters on its
	// install step's poll (the trigger packet leaves via packet-out), so
	// this pins the install latency deferring to the flow's first
	// *active* observation instead of being dropped on the idle one.
	ft := f1.Telemetry().Totals()
	if ft.PerfRows == 0 || ft.TxPkts == 0 {
		t.Fatalf("no FlowPerf rows folded: %+v", ft)
	}
	if ft.Installs == 0 {
		t.Fatalf("no rule-install latency reached FlowPerf: %+v", ft)
	}
}

// TestLiveRatesAfterSteps: the fleet-scale bandwidth display reads —
// per-home and per-device windowed rates — are live after stepping.
func TestLiveRatesAfterSteps(t *testing.T) {
	f := newTestFleet(t, 2, 2, nil)
	h, _ := f.Home(0)
	registerZones(h)
	host, err := h.Join("rated-host", true, netsim.Pos{X: 3})
	if err != nil {
		t.Fatal(err)
	}
	host.AddApp(netsim.NewApp(netsim.AppVideo, zoneFor("video"), 200_000))
	for i := 0; i < 8; i++ {
		if err := f.Step(0.25); err != nil {
			t.Fatal(err)
		}
	}
	tel := f.Telemetry()
	if r := tel.HomeRate(0); r.BytesPerSec <= 0 || r.PacketsPerSec <= 0 {
		t.Fatalf("home 0 rate = %+v", r)
	}
	if r := tel.FleetRate(); r.BytesPerSec <= 0 {
		t.Fatalf("fleet rate = %+v", r)
	}
	dr := tel.DeviceRates(0)
	if len(dr) != 1 || dr[0].MAC != host.MAC || dr[0].BytesPerSec <= 0 {
		t.Fatalf("device rates = %+v", dr)
	}
	if r := tel.HomeRate(1); r.BytesPerSec != 0 {
		t.Fatalf("idle home 1 rate = %+v", r)
	}
}
