package fleet

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/hwdb"
	"repro/internal/netsim"
)

// TestShardAssignment table-drives the shard function: coverage of every
// shard, stability under churn, and bounds.
func TestShardAssignment(t *testing.T) {
	cases := []struct {
		name   string
		shards int
		homes  []uint64
		want   []int
	}{
		{"single-shard", 1, []uint64{0, 1, 2, 3}, []int{0, 0, 0, 0}},
		{"modulo", 4, []uint64{0, 1, 2, 3, 4, 5, 6, 7}, []int{0, 1, 2, 3, 0, 1, 2, 3}},
		{"more-shards-than-homes", 8, []uint64{0, 1, 2}, []int{0, 1, 2}},
		{"sparse-ids-after-churn", 3, []uint64{0, 4, 5, 9}, []int{0, 1, 2, 0}},
		{"large-ids", 5, []uint64{1_000_003, 1_000_004}, []int{3, 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i, id := range tc.homes {
				if got := shardOf(id, tc.shards); got != tc.want[i] {
					t.Errorf("shardOf(%d, %d) = %d, want %d", id, tc.shards, got, tc.want[i])
				}
				if got := shardOf(id, tc.shards); got < 0 || got >= tc.shards {
					t.Errorf("shardOf(%d, %d) = %d out of range", id, tc.shards, got)
				}
			}
		})
	}

	// Stability: removing any home never changes any other home's shard.
	for shards := 1; shards <= 7; shards++ {
		before := map[uint64]int{}
		for id := uint64(0); id < 40; id++ {
			before[id] = shardOf(id, shards)
		}
		// "Remove" arbitrary homes: the remaining assignments are pure
		// functions of (id, shards) and must not move.
		for id := uint64(0); id < 40; id += 3 {
			delete(before, id)
		}
		for id, want := range before {
			if got := shardOf(id, shards); got != want {
				t.Fatalf("shards=%d: home %d moved from %d to %d", shards, id, want, got)
			}
		}
	}
}

// newTestFleet brings up a fleet of empty homes on a simulated clock.
func newTestFleet(t testing.TB, homes, shards int, mutate func(*Config)) *Fleet {
	t.Helper()
	cfg := Config{Shards: shards, Clock: clock.NewSimulated(), Seed: 7}
	if mutate != nil {
		mutate(&cfg)
	}
	f := New(cfg)
	t.Cleanup(f.Stop)
	if _, err := f.AddHomes(homes); err != nil {
		t.Fatal(err)
	}
	return f
}

// stepTrace records scheduler activity per shard.
type stepTrace struct {
	mu      sync.Mutex
	byShard map[int][]uint64 // home IDs in observed step order
}

func (tr *stepTrace) hook(shard int, home uint64, step uint64) {
	tr.mu.Lock()
	tr.byShard[shard] = append(tr.byShard[shard], home)
	tr.mu.Unlock()
}

func (tr *stepTrace) reset() {
	tr.mu.Lock()
	tr.byShard = make(map[int][]uint64)
	tr.mu.Unlock()
}

// TestDeterministicStepping checks that each shard steps exactly its own
// homes, in ascending ID order, every step, across repeated steps.
func TestDeterministicStepping(t *testing.T) {
	const homes, shards = 9, 3
	tr := &stepTrace{byShard: make(map[int][]uint64)}
	f := newTestFleet(t, homes, shards, func(c *Config) { c.onStep = tr.hook })

	for step := 0; step < 3; step++ {
		tr.reset()
		if err := f.Step(0.1); err != nil {
			t.Fatal(err)
		}
		tr.mu.Lock()
		for shard := 0; shard < shards; shard++ {
			var want []uint64
			for id := uint64(0); id < homes; id++ {
				if shardOf(id, shards) == shard {
					want = append(want, id)
				}
			}
			got := tr.byShard[shard]
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("step %d shard %d stepped %v, want %v", step, shard, got, want)
			}
		}
		tr.mu.Unlock()
	}
	if got := f.Steps(); got != 3 {
		t.Errorf("fleet steps = %d, want 3", got)
	}
	for _, h := range f.Homes() {
		if h.Steps() != 3 {
			t.Errorf("home %d stepped %d times, want 3", h.ID, h.Steps())
		}
	}
}

// TestHomeChurn adds and removes homes between steps: removed homes stop
// stepping, survivors keep their shard and order, and re-added capacity
// gets fresh IDs.
func TestHomeChurn(t *testing.T) {
	tr := &stepTrace{byShard: make(map[int][]uint64)}
	f := newTestFleet(t, 6, 2, func(c *Config) { c.onStep = tr.hook })

	if !f.RemoveHome(2) || !f.RemoveHome(5) {
		t.Fatal("remove failed")
	}
	if f.RemoveHome(2) {
		t.Fatal("double remove succeeded")
	}
	if f.Size() != 4 {
		t.Fatalf("size = %d, want 4", f.Size())
	}

	tr.reset()
	if err := f.Step(0.1); err != nil {
		t.Fatal(err)
	}
	tr.mu.Lock()
	if got, want := fmt.Sprint(tr.byShard[0]), fmt.Sprint([]uint64{0, 4}); got != want {
		t.Errorf("shard 0 stepped %s, want %s", got, want)
	}
	if got, want := fmt.Sprint(tr.byShard[1]), fmt.Sprint([]uint64{1, 3}); got != want {
		t.Errorf("shard 1 stepped %s, want %s", got, want)
	}
	tr.mu.Unlock()

	// A new home continues the ID sequence and lands on the right shard.
	h, err := f.AddHome()
	if err != nil {
		t.Fatal(err)
	}
	if h.ID != 6 {
		t.Errorf("new home ID = %d, want 6", h.ID)
	}
	tr.reset()
	if err := f.Step(0.1); err != nil {
		t.Fatal(err)
	}
	tr.mu.Lock()
	if got, want := fmt.Sprint(tr.byShard[0]), fmt.Sprint([]uint64{0, 4, 6}); got != want {
		t.Errorf("shard 0 stepped %s, want %s", got, want)
	}
	tr.mu.Unlock()

	// Removed homes kept none of their state in the fleet.
	if _, ok := f.Home(2); ok {
		t.Error("removed home still present")
	}
}

// TestAggregatorFoldsHomeTraffic drives one home with real traffic and
// checks the fleet view accumulates its flows, then stays quiet once the
// cursor catches up.
func TestAggregatorFoldsHomeTraffic(t *testing.T) {
	f := newTestFleet(t, 2, 2, nil)
	h, _ := f.Home(0)
	registerZones(h)
	host, err := h.Join("traffic-host", true, netsim.Pos{X: 3})
	if err != nil {
		t.Fatal(err)
	}
	host.AddApp(netsim.NewApp(netsim.AppWeb, zoneFor("web"), 80_000))

	for i := 0; i < 8; i++ {
		if err := f.Step(0.25); err != nil {
			t.Fatal(err)
		}
	}
	snap := f.Aggregate()
	if snap.Homes[0].Flows == 0 || snap.Homes[0].Bytes == 0 {
		t.Fatalf("home 0 folded nothing: %+v", snap.Homes[0])
	}
	if snap.Homes[0].Devices != 1 {
		t.Errorf("devices = %d, want 1", snap.Homes[0].Devices)
	}
	if snap.Homes[0].Links == 0 {
		t.Error("wireless host produced no link observations")
	}
	if snap.Homes[1].Flows != 0 {
		t.Errorf("idle home folded %d flows", snap.Homes[1].Flows)
	}
	if snap.FleetTotals.Homes != 2 || snap.FleetTotals.Hosts != 1 {
		t.Errorf("totals = %+v", snap.FleetTotals)
	}

	// The view is queryable with ordinary CQL.
	res, err := f.DB().Query("SELECT home, sum(bytes) FROM FleetStats GROUP BY home")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 0 {
		t.Errorf("fleet view rows = %v", res.Rows)
	}

	// Nothing new since the last fold: the cursors must not re-read.
	snap2 := f.Aggregate()
	if snap2.Flows != 0 || snap2.Bytes != 0 {
		t.Errorf("second fold re-read rows: %+v", snap2.FleetTotals)
	}
	// But cumulative totals persist.
	if f.Totals().Flows == 0 || f.Totals().Bytes == 0 {
		t.Errorf("cumulative totals lost: %+v", f.Totals())
	}
}

// TestTailCursor covers the hwdb batched-read primitive the aggregator
// leans on, including ring-wrap loss accounting.
func TestTailCursor(t *testing.T) {
	clk := clock.NewSimulated()
	tbl := hwdb.NewTable("T", hwdb.NewSchema(hwdb.Column{Name: "v", Type: hwdb.TInt}), 4)
	insert := func(v int64) {
		if err := tbl.Insert(clk.Now(), []hwdb.Value{hwdb.Int64(v)}); err != nil {
			t.Fatal(err)
		}
	}

	rows, cur, lost := tbl.Tail(0)
	if len(rows) != 0 || cur != 0 || lost != 0 {
		t.Fatalf("empty tail = %d rows, cur %d, lost %d", len(rows), cur, lost)
	}
	for v := int64(1); v <= 3; v++ {
		insert(v)
	}
	rows, cur, lost = tbl.Tail(0)
	if len(rows) != 3 || cur != 3 || lost != 0 {
		t.Fatalf("tail = %d rows, cur %d, lost %d", len(rows), cur, lost)
	}
	if rows[0].Vals[0].Int != 1 || rows[2].Vals[0].Int != 3 {
		t.Fatalf("rows out of order: %v", rows)
	}
	// No new rows: same cursor returns nothing.
	if rows, _, _ := tbl.Tail(cur); len(rows) != 0 {
		t.Fatalf("re-read %d rows", len(rows))
	}
	// Wrap the ring far past the cursor: 6 more inserts into cap 4.
	for v := int64(4); v <= 9; v++ {
		insert(v)
	}
	rows, cur2, lost := tbl.Tail(cur)
	if len(rows) != 4 || cur2 != 9 || lost != 2 {
		t.Fatalf("wrapped tail = %d rows, cur %d, lost %d; want 4, 9, 2", len(rows), cur2, lost)
	}
	if rows[0].Vals[0].Int != 6 || rows[3].Vals[0].Int != 9 {
		t.Fatalf("wrapped rows = %v", rows)
	}
}

// TestScenarioValidate table-drives scenario validation.
func TestScenarioValidate(t *testing.T) {
	ok := DefaultScenario()
	cases := []struct {
		name    string
		mutate  func(*Scenario)
		wantErr bool
	}{
		{"default", func(s *Scenario) {}, false},
		{"no-homes", func(s *Scenario) { s.Homes = 0 }, true},
		{"bad-step", func(s *Scenario) { s.StepSec = 0 }, true},
		{"short-duration", func(s *Scenario) { s.DurationSec = s.StepSec / 2 }, true},
		{"bad-app", func(s *Scenario) { s.AppMix = []AppMix{{App: "warez", Weight: 1}} }, true},
		{"negative-weight", func(s *Scenario) { s.AppMix[0].Weight = -1 }, true},
		{"wireless-frac", func(s *Scenario) { s.WirelessFrac = 1.5 }, true},
		{"negative-churn", func(s *Scenario) { s.ChurnPerMin = -1 }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := ok
			s.AppMix = append([]AppMix(nil), ok.AppMix...)
			tc.mutate(&s)
			if err := s.Validate(); (err != nil) != tc.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

// TestScenarioRun executes a miniature scenario end-to-end: homes come
// up, traffic flows, churn replaces hosts, and the report accounts it.
func TestScenarioRun(t *testing.T) {
	s := DefaultScenario()
	s.Name = "mini"
	s.Homes = 3
	s.HostsPerHome = 2
	s.DurationSec = 3
	s.StepSec = 0.25
	s.ChurnPerMin = 60 // aggressive: expect churn within 3 sim-seconds
	s.Seed = 11

	r, err := NewRunner(s)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if rep.Homes != 3 || rep.Steps != 12 {
		t.Errorf("report homes=%d steps=%d", rep.Homes, rep.Steps)
	}
	if rep.Totals.Flows == 0 || rep.Totals.Bytes == 0 {
		t.Errorf("no traffic folded: %+v", rep.Totals)
	}
	if rep.Churned == 0 {
		t.Error("no churn at 60 events/home/min over 3s")
	}
	if len(rep.TopHomes) == 0 {
		t.Error("no top homes in report")
	}
	// The fleet survives the run for post-hoc queries.
	if _, err := r.Fleet().DB().Query("SELECT count(*) FROM FleetStats"); err != nil {
		t.Errorf("post-run query: %v", err)
	}
}

// TestDrawMix pins the weighted draw.
func TestDrawMix(t *testing.T) {
	mix := []AppMix{{App: "web", Weight: 1}, {App: "iot", Weight: 3}}
	if m, ok := drawMix(mix, 0.0); !ok || m.App != "web" {
		t.Errorf("u=0 -> %v", m)
	}
	if m, ok := drawMix(mix, 0.3); !ok || m.App != "iot" {
		t.Errorf("u=0.3 -> %v", m)
	}
	if m, ok := drawMix(mix, 0.99); !ok || m.App != "iot" {
		t.Errorf("u=0.99 -> %v", m)
	}
	if _, ok := drawMix(nil, 0.5); ok {
		t.Error("empty mix drew")
	}
	if _, ok := drawMix([]AppMix{{App: "web", Weight: 0}}, 0.5); ok {
		t.Error("zero-weight mix drew")
	}
}

// TestFleetDefaultsInProcessTransport asserts fleet homes ride the
// in-process control transport by default — no per-home TCP socket —
// while HomeConfig can still opt a home back onto the wire.
func TestFleetDefaultsInProcessTransport(t *testing.T) {
	f := New(Config{Clock: clock.NewSimulated()})
	defer f.Stop()
	h, err := f.AddHome()
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Router.Config.Transport; got != core.TransportInProcess {
		t.Fatalf("fleet home transport = %q, want %q", got, core.TransportInProcess)
	}
	if addr := h.Router.Controller.Addr(); addr != "" {
		t.Errorf("fleet home bound a TCP control listener at %s", addr)
	}

	f2 := New(Config{
		Clock:      clock.NewSimulated(),
		HomeConfig: func(id uint64, cfg *core.Config) { cfg.Transport = core.TransportTCP },
	})
	defer f2.Stop()
	h2, err := f2.AddHome()
	if err != nil {
		t.Fatal(err)
	}
	if addr := h2.Router.Controller.Addr(); addr == "" {
		t.Error("HomeConfig TCP override did not bind a listener")
	}
}
