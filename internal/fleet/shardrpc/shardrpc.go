// Package shardrpc carries the fleet ShardClient contract across a
// process boundary: length-prefixed frames over TCP, HWDB/1-style text
// verb headers with compact binary bodies, plus a telemetry batch relay
// that streams a remote engine's hub deltas back to the coordinator
// under the exact-accounting invariant (delivered+lost == inserts across
// every incarnation, now across processes).
//
// # Wire format
//
// Every message is one frame: a 4-byte big-endian payload length
// followed by the payload, capped at MaxFrame. The payload opens with a
// single text header line and continues with a binary body whose shape
// the verb determines:
//
//	request:  "HWSH/1 <seq> <VERB>\n"       + body
//	response: "HWSH/1 <seq> OK <VERB>\n"    + body
//	response: "HWSH/1 <seq> ERR <message>\n"  (no body)
//
// Body integers are varints (unsigned, or zigzag where negative values
// are legal), floats are 8-byte IEEE-754 bits, strings and byte counts
// are length-prefixed with allocation guarded by the bytes actually
// remaining in the frame. Decoders are strict: truncated or trailing
// bytes, unknown verbs, bad column-type tags and histogram dimension
// mismatches are errors — never a panic, never an over-read. OK
// responses echo the verb so a response is self-describing to a decoder
// that never saw the request.
//
// # Telemetry and accounting
//
// The worker's server buffers every delta its engine hub fans out and
// piggybacks the buffered batch on SYNC and DRAIN responses — the two
// verbs whose handling flushes the hub — committing the batch only after
// the response bytes are written. Each batch carries a sequence number
// and the worker's cumulative sent-row/sent-lost books; the client
// ingests batches into a telemetry.Relay and tracks what it has
// accounted. On (re)connect the client issues RESYNC, reads the worker's
// committed books and accounts any gap as lost via Relay.AccountLost:
// rows a dying connection swallowed are never retransmitted, but they
// are never uncounted either, so federated delivered+lost still equals
// every row any incarnation ever inserted.
//
// # Clocks
//
// SYNC carries the coordinator's current time. A worker driving a
// simulated clock advances it to that instant before flushing, so the
// remote order matches the in-process one (step barrier, clock advance,
// sync) and timestamps are identical run to run.
package shardrpc

import (
	"repro/internal/fleet/engine"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// MaxFrame bounds one frame's payload. A SYNC batch for a busy shard is
// the largest message; 16 MiB is ~two orders of magnitude above what a
// 64-home shard produces per tick.
const MaxFrame = 16 << 20

// Protocol verbs. Requests carry the verb; OK responses echo it.
const (
	VerbAssign   = "ASSIGN"
	VerbDrain    = "DRAIN"
	VerbCordon   = "CORDON"
	VerbUncordon = "UNCORDON"
	VerbStep     = "STEP"
	VerbSync     = "SYNC"
	VerbStats    = "STATS"
	VerbTrace    = "TRACE"
	VerbResync   = "RESYNC"
	VerbClose    = "CLOSE"
	VerbPing     = "PING"
)

// knownVerb reports whether v is a protocol verb; decoders reject
// anything else.
func knownVerb(v string) bool {
	switch v {
	case VerbAssign, VerbDrain, VerbCordon, VerbUncordon, VerbStep,
		VerbSync, VerbStats, VerbTrace, VerbResync, VerbClose, VerbPing:
		return true
	}
	return false
}

// Request is one decoded request frame. Which fields are meaningful
// depends on Verb: ID for ASSIGN/DRAIN/CORDON/UNCORDON, DT for STEP, Now
// for SYNC; the remaining verbs have empty bodies.
type Request struct {
	Seq  uint64
	Verb string
	ID   uint64
	DT   float64
	// Now is the coordinator clock at SYNC time, in nanoseconds since
	// the Unix epoch; zero means "do not advance the worker clock".
	Now int64
}

// Books is the worker's committed telemetry ledger: the sequence number
// of the last batch whose response write succeeded and the cumulative
// rows and in-band lost counts those batches carried. RESYNC returns it
// so a reconnecting client can account the gap.
type Books struct {
	Seq      uint64
	SentRows uint64
	SentLost uint64
}

// Batch is the telemetry payload piggybacked on SYNC and DRAIN
// responses: the deltas the worker's hub fanned out since the last
// committed batch. Seq increments only when Deltas is non-empty;
// SentRows/SentLost are the worker's cumulative books including this
// batch, letting the client verify alignment on every delivery rather
// than only at reconnect.
type Batch struct {
	Seq      uint64
	SentRows uint64
	SentLost uint64
	Deltas   []telemetry.Delta
}

// Response is one decoded response frame. Err is the whole story for ERR
// responses; for OK responses the verb selects which payload field is
// set: OK for DRAIN/CORDON/UNCORDON, Batch for SYNC/DRAIN, Stats for
// STATS, Snap for TRACE, Committed for RESYNC.
type Response struct {
	Seq  uint64
	Verb string
	Err  string
	// OK is the boolean result of DRAIN/CORDON/UNCORDON.
	OK        bool
	Batch     *Batch
	Stats     *engine.Stats
	Snap      *trace.Snapshot
	Committed *Books
}
