package shardrpc

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/fleet/engine"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ErrClosed is returned by calls on a client after Close.
var ErrClosed = errors.New("shardrpc: client closed")

// ClientConfig parameterizes a coordinator-side remote shard client.
type ClientConfig struct {
	// Addr is the worker's listen address; required.
	Addr string
	// Relay receives every telemetry batch the worker piggybacks on its
	// responses; attach it to the coordinator's Federation. A nil Relay
	// gets a private one (reachable via Client.Relay) so accounting is
	// never silently dropped.
	Relay *telemetry.Relay
	// Clock, when set, stamps SYNC requests with the coordinator's
	// current time so the worker can advance its own simulated clock in
	// lockstep.
	Clock clock.Clock
	// CallTimeout bounds one round trip (default 10s).
	CallTimeout time.Duration
	// StepTimeout bounds Step round trips specifically — a wedged worker
	// must fail the fleet tick, not hang it (default CallTimeout).
	StepTimeout time.Duration
	// DialTimeout bounds one dial attempt (default 3s).
	DialTimeout time.Duration
	// DialAttempts is how many times a (re)dial is tried before the call
	// fails (default 5).
	DialAttempts int
	// RedialBackoff separates dial attempts (default 50ms).
	RedialBackoff time.Duration
}

// Client is the remote implementation of the fleet ShardClient contract:
// each method is one framed round trip to a worker's Server. It dials
// lazily, redials (with RESYNC book reconciliation) after any transport
// error, and serializes calls — the fleet coordinator drives each shard
// from one goroutine at a time, matching the in-process engine's
// contract.
//
// Failure semantics per verb: Assign and Step surface transport errors
// to the caller (the coordinator aborts the spawn / fails the tick);
// Drain, Cordon and Uncordon report false; Sync is best-effort (the
// missed batch is recovered by the next successful one or accounted lost
// at reconnect); Stats and TraceSnapshot return zero values. Close sends
// a best-effort CLOSE and releases the connection.
type Client struct {
	cfg ClientConfig

	mu     sync.Mutex
	conn   net.Conn
	br     *bufio.Reader
	seq    uint64
	closed bool

	// Receiving-side telemetry books: the last batch sequence ingested
	// and the cumulative rows/lost accounted into the relay. Compared
	// against the worker's committed books (piggybacked on every batch,
	// returned by RESYNC) to account wire-swallowed rows as lost.
	gotSeq  uint64
	gotRows uint64
	gotLost uint64
}

// Dial builds a client for one worker address. It does not connect: the
// first call dials, and any call after a transport fault redials, so a
// worker that restarts behind the same address heals without
// coordinator-level surgery.
func Dial(cfg ClientConfig) *Client {
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 10 * time.Second
	}
	if cfg.StepTimeout <= 0 {
		cfg.StepTimeout = cfg.CallTimeout
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.DialAttempts <= 0 {
		cfg.DialAttempts = 5
	}
	if cfg.RedialBackoff <= 0 {
		cfg.RedialBackoff = 50 * time.Millisecond
	}
	if cfg.Relay == nil {
		cfg.Relay = telemetry.NewRelay()
	}
	return &Client{cfg: cfg}
}

// Relay returns the relay remote batches are ingested into.
func (c *Client) Relay() *telemetry.Relay { return c.cfg.Relay }

// ensureConn dials if no connection is live, then reconciles books over
// the fresh connection with RESYNC. Callers hold c.mu.
func (c *Client) ensureConn() error {
	if c.conn != nil {
		return nil
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.DialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(c.cfg.RedialBackoff)
		}
		conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		br := bufio.NewReader(conn)
		resp, err := c.roundTrip(conn, br, &Request{Verb: VerbResync}, c.cfg.CallTimeout)
		if err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		if resp.Committed == nil {
			conn.Close()
			lastErr = frameErr("RESYNC response without books")
			continue
		}
		c.reconcile(*resp.Committed)
		c.conn, c.br = conn, br
		return nil
	}
	return fmt.Errorf("shardrpc: dial %s: %w", c.cfg.Addr, lastErr)
}

// reconcile aligns the client books with the worker's committed ledger:
// anything the worker committed that never arrived here was swallowed by
// a dead connection and is accounted as lost — the rows are gone (the
// worker does not retransmit committed batches) but never uncounted.
// Callers hold c.mu.
func (c *Client) reconcile(books Books) {
	if books.SentRows > c.gotRows {
		c.cfg.Relay.AccountLost(books.SentRows - c.gotRows)
		c.gotRows = books.SentRows
	}
	if books.SentLost > c.gotLost {
		c.cfg.Relay.AccountLost(books.SentLost - c.gotLost)
		c.gotLost = books.SentLost
	}
	if books.Seq > c.gotSeq {
		c.gotSeq = books.Seq
	}
}

// ingest folds one piggybacked batch into the relay, deduplicating by
// batch sequence. Callers hold c.mu.
func (c *Client) ingest(b *Batch) {
	if b == nil || b.Seq <= c.gotSeq && len(b.Deltas) > 0 {
		// A replayed batch (the worker rolled back a write we actually
		// read) must not double-count; sequence comparison is the guard.
		return
	}
	for _, d := range b.Deltas {
		c.cfg.Relay.Ingest(d)
		c.gotRows += uint64(len(d.Rows))
		c.gotLost += d.Lost
	}
	if b.Seq > c.gotSeq {
		c.gotSeq = b.Seq
	}
	// The batch carries the worker's cumulative books; any gap means a
	// prior batch was committed but lost on the wire before this
	// connection was cut over — account it now rather than waiting for
	// the next reconnect.
	c.reconcile(Books{Seq: b.Seq, SentRows: b.SentRows, SentLost: b.SentLost})
}

// roundTrip performs one framed request/response exchange on conn with a
// fresh sequence number, enforcing deadline as an absolute bound on the
// exchange. Callers hold c.mu.
func (c *Client) roundTrip(conn net.Conn, br *bufio.Reader, req *Request, timeout time.Duration) (*Response, error) {
	c.seq++
	req.Seq = c.seq
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if err := writeFrame(conn, EncodeRequest(req)); err != nil {
		return nil, err
	}
	payload, err := readFrame(br)
	if err != nil {
		return nil, err
	}
	resp, err := DecodeResponse(payload)
	if err != nil {
		return nil, err
	}
	if resp.Seq != req.Seq {
		return nil, frameErr("response seq %d for request %d", resp.Seq, req.Seq)
	}
	if resp.Err == "" && resp.Verb != req.Verb {
		return nil, frameErr("response verb %q for request %q", resp.Verb, req.Verb)
	}
	return resp, nil
}

// call runs one RPC under the client mutex: ensure a connection, round
// trip, ingest any piggybacked batch. Transport and protocol errors
// drop the connection (the next call redials and RESYNCs); an ERR
// response leaves the connection healthy and surfaces as an error.
func (c *Client) call(req *Request, timeout time.Duration) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	reused := c.conn != nil
	if err := c.ensureConn(); err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(c.conn, c.br, req, timeout)
	if err != nil && reused {
		// A reused connection can die while idle (worker restart, server
		// drop): redial once and replay. The dead socket rejects the
		// request before the worker sees it, so the replay is not a
		// double-execution in that case; the residual ambiguity (response
		// lost after execution) is accepted for this control plane and
		// self-reports — a replayed ASSIGN errs "already live", a replayed
		// batch is deduplicated by sequence.
		c.dropConnLocked()
		if derr := c.ensureConn(); derr == nil {
			resp, err = c.roundTrip(c.conn, c.br, req, timeout)
		}
	}
	if err != nil {
		c.dropConnLocked()
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("shardrpc: %s: %s", req.Verb, resp.Err)
	}
	c.ingest(resp.Batch)
	return resp, nil
}

// dropConnLocked closes the live connection so the next call redials.
// Callers hold c.mu.
func (c *Client) dropConnLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.br = nil, nil
	}
}

// Assign places a home on the remote shard. Transport errors and remote
// Assign failures both surface: the coordinator aborts the reservation
// either way.
func (c *Client) Assign(id uint64) error {
	_, err := c.call(&Request{Verb: VerbAssign, ID: id}, c.cfg.CallTimeout)
	return err
}

// Drain tears a remote home down and ingests its final telemetry flush.
// A transport failure reports false — the coordinator treats the drain
// as not having happened; if the worker actually drained, the home is
// gone remotely while still placed here, a divergence the next Assign of
// that ID surfaces. See ARCHITECTURE.md "Fleet control plane" for why
// this is the least-bad option without two-phase placement.
func (c *Client) Drain(id uint64) bool {
	resp, err := c.call(&Request{Verb: VerbDrain, ID: id}, c.cfg.CallTimeout)
	if err != nil {
		return false
	}
	return resp.OK
}

// Cordon takes a remote home out of rotation; false on transport error.
func (c *Client) Cordon(id uint64) bool {
	resp, err := c.call(&Request{Verb: VerbCordon, ID: id}, c.cfg.CallTimeout)
	if err != nil {
		return false
	}
	return resp.OK
}

// Uncordon returns a remote home to rotation; false on transport error.
func (c *Client) Uncordon(id uint64) bool {
	resp, err := c.call(&Request{Verb: VerbUncordon, ID: id}, c.cfg.CallTimeout)
	if err != nil {
		return false
	}
	return resp.OK
}

// Step advances the remote shard by dt simulated seconds, bounded by
// StepTimeout: a wedged worker fails the fleet tick instead of hanging
// it.
func (c *Client) Step(dt float64) error {
	_, err := c.call(&Request{Verb: VerbStep, DT: dt}, c.cfg.StepTimeout)
	return err
}

// Sync flushes the remote hub and ingests the piggybacked delta batch.
// Best-effort: on failure the batch stays pending worker-side and rides
// the next successful Sync, or is accounted lost at reconnect.
func (c *Client) Sync() {
	req := &Request{Verb: VerbSync}
	if c.cfg.Clock != nil {
		req.Now = c.cfg.Clock.Now().UnixNano()
	}
	c.call(req, c.cfg.CallTimeout) //nolint:errcheck // best-effort by contract
}

// Stats fetches the remote engine's self-reported state; zero value on
// transport error.
func (c *Client) Stats() engine.Stats {
	resp, err := c.call(&Request{Verb: VerbStats}, c.cfg.CallTimeout)
	if err != nil || resp.Stats == nil {
		return engine.Stats{}
	}
	return *resp.Stats
}

// TraceSnapshot fetches the remote engine's merged punt-lifecycle
// histograms; zero value on transport error.
func (c *Client) TraceSnapshot() trace.Snapshot {
	resp, err := c.call(&Request{Verb: VerbTrace}, c.cfg.CallTimeout)
	if err != nil || resp.Snap == nil {
		return trace.Snapshot{}
	}
	return *resp.Snap
}

// Ping round-trips a header-only frame — a cheap liveness probe used by
// tests and the coordinator CLI.
func (c *Client) Ping() error {
	_, err := c.call(&Request{Verb: VerbPing}, c.cfg.CallTimeout)
	return err
}

// Resync forces a book reconciliation round trip without waiting for a
// reconnect; the soak uses it to settle accounting before its final
// assertions.
func (c *Client) Resync() error {
	resp, err := c.call(&Request{Verb: VerbResync}, c.cfg.CallTimeout)
	if err != nil {
		return err
	}
	if resp.Committed == nil {
		return frameErr("RESYNC response without books")
	}
	c.mu.Lock()
	c.reconcile(*resp.Committed)
	c.mu.Unlock()
	return nil
}

// Close sends a best-effort CLOSE (telling the worker to tear its engine
// down) if a connection is up — it does not dial one — and releases the
// client. Idempotent.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	if c.conn != nil {
		c.roundTrip(c.conn, c.br, &Request{Verb: VerbClose}, c.cfg.CallTimeout) //nolint:errcheck // best-effort
		c.dropConnLocked()
	}
}
