package shardrpc

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/fleet/engine"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Backend is the shard-side surface a server drives: the ShardClient
// method set, implemented by *engine.Engine in every real worker and by
// stubs in the protocol tests (a deliberately wedged Step, a counting
// fake). It mirrors fleet.ShardClient verbatim; the fleet package
// asserts both stay aligned (shardrpc cannot import fleet without a
// cycle).
type Backend interface {
	Assign(id uint64) error
	Drain(id uint64) bool
	Cordon(id uint64) bool
	Uncordon(id uint64) bool
	Step(dt float64) error
	Sync()
	Stats() engine.Stats
	TraceSnapshot() trace.Snapshot
	Close()
}

var _ Backend = (*engine.Engine)(nil)

// Config parameterizes a worker-side server.
type Config struct {
	// Backend handles the decoded calls; required.
	Backend Backend
	// Hub, when set, is the backend engine's telemetry hub: every delta
	// it fans out is buffered and piggybacked on the next SYNC or DRAIN
	// response. Without it the server answers calls but relays no
	// telemetry.
	Hub *telemetry.Hub
	// Clock, when set to a *clock.Simulated, is advanced to the
	// coordinator's SYNC timestamp before each flush, keeping remote
	// timestamps identical to the in-process ordering.
	Clock clock.Clock
	// WriteTimeout bounds one response write so a dead peer cannot wedge
	// the conn goroutine (default 30s).
	WriteTimeout time.Duration
}

// Server serves the ShardClient contract for one engine over TCP. It
// accepts any number of sequential or concurrent connections (a
// coordinator reconnecting after a network fault just dials again), but
// the telemetry commit books are server-global, so batches stay exactly
// accounted across connection incarnations.
type Server struct {
	cfg Config
	ln  net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	accepted int
	closed   bool

	done     chan struct{}
	doneOnce sync.Once
	wg       sync.WaitGroup

	// batchMu guards the pending buffer and the committed books, and
	// serializes every batch-bearing response's snapshot → write → commit
	// sequence: a batch is committed only after its response bytes were
	// written, and rolled back (left pending) when the write fails.
	batchMu sync.Mutex
	pending []telemetry.Delta
	books   Books
}

// NewServer wires a server to its backend; call Serve to listen. If
// cfg.Hub is set the server subscribes to it immediately, so rows fanned
// out before the first connection are buffered, not lost.
func NewServer(cfg Config) *Server {
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	s := &Server{
		cfg:   cfg,
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}
	if cfg.Hub != nil {
		cfg.Hub.SubscribeFunc(s.enqueue)
	}
	return s
}

// enqueue buffers one hub delta for the next batch-bearing response. It
// runs synchronously inside the hub's drain pass.
func (s *Server) enqueue(d telemetry.Delta) {
	s.batchMu.Lock()
	s.pending = append(s.pending, d)
	s.batchMu.Unlock()
}

// Serve starts listening on addr ("host:port"; ":0" picks a free port —
// read it back with Addr) and accepts connections until Close.
func (s *Server) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("shardrpc: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound listen address, or "" before Serve.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Accepted returns how many connections the server has ever accepted —
// the soak asserts a mid-run kill really forced a reconnect.
func (s *Server) Accepted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.accepted
}

// Done is closed when a client's CLOSE verb has been served; a worker
// process exits on it.
func (s *Server) Done() <-chan struct{} { return s.done }

// DropConns severs every live connection without touching the listener —
// the fault-injection hook the remote soak and churn gates use to force
// a reconnect mid-run.
func (s *Server) DropConns() {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Close stops the listener and severs every connection. It does not
// close the backend: the owner decides whether the engine outlives its
// network surface.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.DropConns()
	s.wg.Wait()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.accepted++
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	for {
		payload, err := readFrame(br)
		if err != nil {
			return
		}
		req, err := DecodeRequest(payload)
		if err != nil {
			// A malformed frame leaves the stream position untrustworthy:
			// answer with seq 0 (the client never uses it) and drop the
			// conn rather than guess at resynchronization.
			resp := &Response{Seq: 0, Err: err.Error()}
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			writeFrame(conn, EncodeResponse(resp))
			return
		}
		if err := s.handle(conn, req); err != nil {
			return
		}
	}
}

// handle executes one request and writes its response. A returned error
// means the connection is no longer usable.
func (s *Server) handle(conn net.Conn, req *Request) error {
	resp := &Response{Seq: req.Seq, Verb: req.Verb}
	withBatch := false
	switch req.Verb {
	case VerbAssign:
		if err := s.cfg.Backend.Assign(req.ID); err != nil {
			resp.Err = err.Error()
		}
	case VerbDrain:
		// The drain's final flush fans the home's remaining rows into the
		// pending buffer; the batch on this response carries them out.
		resp.OK = s.cfg.Backend.Drain(req.ID)
		withBatch = true
	case VerbCordon:
		resp.OK = s.cfg.Backend.Cordon(req.ID)
	case VerbUncordon:
		resp.OK = s.cfg.Backend.Uncordon(req.ID)
	case VerbStep:
		if err := s.cfg.Backend.Step(req.DT); err != nil {
			resp.Err = err.Error()
		}
	case VerbSync:
		// Advance the worker clock to the coordinator's instant first:
		// the in-process order is step barrier, clock advance, flush, and
		// the flush stamps view rows with the clock.
		if sim, ok := s.cfg.Clock.(*clock.Simulated); ok && req.Now != 0 {
			if d := time.Unix(0, req.Now).Sub(sim.Now()); d > 0 {
				sim.Advance(d)
			}
		}
		s.cfg.Backend.Sync()
		withBatch = true
	case VerbStats:
		st := s.cfg.Backend.Stats()
		resp.Stats = &st
	case VerbTrace:
		snap := s.cfg.Backend.TraceSnapshot()
		resp.Snap = &snap
	case VerbResync:
		s.batchMu.Lock()
		books := s.books
		s.batchMu.Unlock()
		resp.Committed = &books
	case VerbClose:
		s.cfg.Backend.Close()
		defer s.doneOnce.Do(func() { close(s.done) })
	case VerbPing:
		// Header-only liveness probe.
	default:
		resp.Err = fmt.Sprintf("unhandled verb %q", req.Verb)
	}
	if withBatch && resp.Err == "" {
		return s.writeWithBatch(conn, resp)
	}
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	return writeFrame(conn, EncodeResponse(resp))
}

// writeWithBatch snapshots the pending deltas onto resp, writes the
// response and commits the batch only if the write succeeded. On a write
// failure the deltas stay pending and the books unchanged, so the next
// batch-bearing response (likely on a fresh connection, after the client
// RESYNCs) re-carries them: a row is committed exactly once, and a row
// the wire swallowed after commit is what RESYNC accounts as lost.
func (s *Server) writeWithBatch(conn net.Conn, resp *Response) error {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	n := len(s.pending)
	var rows, lost uint64
	for _, d := range s.pending[:n] {
		rows += uint64(len(d.Rows))
		lost += d.Lost
	}
	seq := s.books.Seq
	if n > 0 {
		seq++
	}
	resp.Batch = &Batch{
		Seq:      seq,
		SentRows: s.books.SentRows + rows,
		SentLost: s.books.SentLost + lost,
		Deltas:   s.pending[:n:n],
	}
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if err := writeFrame(conn, EncodeResponse(resp)); err != nil {
		return err
	}
	if n > 0 {
		s.books = Books{Seq: seq, SentRows: s.books.SentRows + rows, SentLost: s.books.SentLost + lost}
		s.pending = append([]telemetry.Delta(nil), s.pending[n:]...)
	}
	return nil
}
