package shardrpc

import (
	"bufio"
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/fleet/engine"
	"repro/internal/hwdb"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// sampleRequests covers every request verb, including varint edge values.
func sampleRequests() []*Request {
	return []*Request{
		{Seq: 1, Verb: VerbAssign, ID: 0},
		{Seq: 2, Verb: VerbAssign, ID: math.MaxUint64},
		{Seq: 3, Verb: VerbDrain, ID: 42},
		{Seq: 4, Verb: VerbCordon, ID: 7},
		{Seq: 5, Verb: VerbUncordon, ID: 7},
		{Seq: 6, Verb: VerbStep, DT: 0.25},
		{Seq: 7, Verb: VerbStep, DT: -1.5},
		{Seq: 8, Verb: VerbSync, Now: time.Date(2011, 8, 15, 9, 0, 0, 0, time.UTC).UnixNano()},
		{Seq: 9, Verb: VerbSync, Now: -1},
		{Seq: 10, Verb: VerbStats},
		{Seq: 11, Verb: VerbTrace},
		{Seq: 12, Verb: VerbResync},
		{Seq: 13, Verb: VerbClose},
		{Seq: math.MaxUint64, Verb: VerbPing},
	}
}

func sampleSnapshot() *trace.Snapshot {
	s := &trace.Snapshot{Overwritten: 3}
	for i := range s.Hists {
		s.Hists[i].Count = uint64(i * 10)
		s.Hists[i].SumNS = uint64(i * 1000)
		s.Hists[i].MaxNS = int64(i * 100)
		for j := range s.Hists[i].Buckets {
			s.Hists[i].Buckets[j] = uint64(i + j)
		}
	}
	return s
}

func sampleStats() *engine.Stats {
	return &engine.Stats{
		Shard: 3, Homes: 17, Steps: 1 << 40,
		Hub: telemetry.HubStats{Sources: 68, Delivered: 123456, Lost: 7},
		Totals: telemetry.Totals{
			Homes: 17, Hosts: 51, Flows: 900, Links: 80, Leases: 60,
			Packets: 1 << 33, Bytes: 1 << 44, Lost: 7, Rows: 1040, Commits: 12,
			PerfRows: 500, TxPkts: 9000, LostPkts: 3, Installs: 88, InstallUSSum: 123,
		},
	}
}

func sampleBatch() *Batch {
	ts := time.Date(2011, 8, 15, 9, 0, 1, 500, time.UTC)
	return &Batch{
		Seq: 9, SentRows: 100, SentLost: 2,
		Deltas: []telemetry.Delta{
			{
				Source: telemetry.SourceID{Home: 4, Table: hwdb.TableFlows},
				Lost:   1,
				Rows: []hwdb.Row{
					{TS: ts, Vals: []hwdb.Value{
						hwdb.Int64(-9), hwdb.Float(3.5), hwdb.Str("aa:bb"),
						hwdb.Bool(true), {Type: hwdb.TTime, Int: ts.UnixNano()},
						{Type: hwdb.TMAC, Int: 0x0000_02aa_bbcc_ddee},
						{Type: hwdb.TIP, Int: 0x0a00_0001},
					}},
					{TS: ts.Add(time.Second), Vals: []hwdb.Value{hwdb.Int64(math.MaxInt64)}},
				},
			},
			{Source: telemetry.SourceID{Home: 5, Table: hwdb.TableLeases}, Lost: 0, Rows: nil},
		},
	}
}

// sampleResponses covers every response shape, including ERR.
func sampleResponses() []*Response {
	return []*Response{
		{Seq: 1, Verb: VerbAssign},
		{Seq: 2, Err: "fleet: home 3 already live"},
		{Seq: 3, Verb: VerbDrain, OK: true, Batch: sampleBatch()},
		{Seq: 4, Verb: VerbDrain, OK: false, Batch: &Batch{}},
		{Seq: 5, Verb: VerbCordon, OK: true},
		{Seq: 6, Verb: VerbUncordon, OK: false},
		{Seq: 7, Verb: VerbStep},
		{Seq: 8, Verb: VerbSync, Batch: sampleBatch()},
		{Seq: 9, Verb: VerbSync, Batch: &Batch{Seq: 4, SentRows: 10, SentLost: 1}},
		{Seq: 10, Verb: VerbStats, Stats: sampleStats()},
		{Seq: 11, Verb: VerbTrace, Snap: sampleSnapshot()},
		{Seq: 12, Verb: VerbTrace, Snap: &trace.Snapshot{}},
		{Seq: 13, Verb: VerbResync, Committed: &Books{Seq: 3, SentRows: 55, SentLost: 2}},
		{Seq: 14, Verb: VerbClose},
		{Seq: 15, Verb: VerbPing},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, req := range sampleRequests() {
		payload := EncodeRequest(req)
		got, err := DecodeRequest(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", req.Verb, err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", req.Verb, got, req)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for i, resp := range sampleResponses() {
		payload := EncodeResponse(resp)
		got, err := DecodeResponse(payload)
		if err != nil {
			t.Fatalf("case %d (%s): decode: %v", i, resp.Verb, err)
		}
		// Decoders canonicalize: an OK response with no batch decodes to
		// the empty batch the encoder wrote for it.
		want := resp
		if (resp.Verb == VerbSync || resp.Verb == VerbDrain) && resp.Err == "" && resp.Batch == nil {
			w := *resp
			w.Batch = &Batch{}
			want = &w
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d (%s): round trip mismatch:\n got %+v\nwant %+v", i, resp.Verb, got, want)
		}
	}
}

// TestDecodeTruncated feeds every strict prefix of every valid payload to
// the decoders: all must error (no field is optional and no padding is
// tolerated), none may panic or over-read.
func TestDecodeTruncated(t *testing.T) {
	for _, req := range sampleRequests() {
		payload := EncodeRequest(req)
		for i := 0; i < len(payload); i++ {
			if _, err := DecodeRequest(payload[:i]); err == nil {
				t.Fatalf("%s: truncation to %d/%d bytes decoded cleanly", req.Verb, i, len(payload))
			}
		}
	}
	for _, resp := range sampleResponses() {
		payload := EncodeResponse(resp)
		for i := 0; i < len(payload); i++ {
			if _, err := DecodeResponse(payload[:i]); err == nil {
				t.Fatalf("%s/%q: truncation to %d/%d bytes decoded cleanly", resp.Verb, resp.Err, i, len(payload))
			}
		}
	}
}

// TestDecodeCorrupt flips each byte of each valid payload through a few
// values: decoders may reject or may produce a different message, but
// must never panic (the harness converts panics to failures) and must
// stay within the payload.
func TestDecodeCorrupt(t *testing.T) {
	flip := []byte{0x00, 0xff, 0x80, 0x01}
	for _, resp := range sampleResponses() {
		payload := EncodeResponse(resp)
		for i := range payload {
			for _, b := range flip {
				mut := append([]byte(nil), payload...)
				mut[i] ^= b
				DecodeResponse(mut) //nolint:errcheck // looking for panics, not errors
				DecodeRequest(mut)  //nolint:errcheck
			}
		}
	}
}

// TestDecodeRejects pins a few deliberately hostile frames: giant
// declared lengths must fail before allocating, bad tags and dimension
// mismatches must be errors.
func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"no newline", []byte("HWSH/1 1 PING")},
		{"bad magic", []byte("HWDB/1 1 PING\n")},
		{"bad verb", []byte("HWSH/1 1 EXPLODE\n")},
		{"bad seq", []byte("HWSH/1 x PING\n")},
		{"trailing bytes", append([]byte("HWSH/1 1 PING\n"), 0x01)},
		// SYNC response declaring 2^60 deltas in a tiny frame: the count
		// guard must reject it without allocating.
		{"giant delta count", append([]byte("HWSH/1 1 OK SYNC\n"), []byte{
			0, 0, 0, // seq, rows, lost
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f, // count
		}...)},
		// String length far past the frame end.
		{"giant string", append([]byte("HWSH/1 1 OK SYNC\n"), []byte{
			0, 0, 0, 1, // one delta
			1,          // home
			0xe8, 0x07, // table name length 1000
		}...)},
	}
	for _, tc := range cases {
		if _, err := DecodeResponse(tc.payload); err == nil {
			t.Errorf("%s: DecodeResponse accepted", tc.name)
		}
		if _, err := DecodeRequest(tc.payload); err == nil {
			t.Errorf("%s: DecodeRequest accepted", tc.name)
		}
	}

	// A column value with an unknown type tag.
	e := &enc{b: appendHeader(nil, "1", "OK", VerbSync)}
	e.uvarint(1) // batch seq
	e.uvarint(1) // sent rows
	e.uvarint(0) // sent lost
	e.uvarint(1) // one delta
	e.uvarint(1) // home
	e.str("Flows")
	e.uvarint(0) // lost
	e.uvarint(1) // one row
	e.varint(0)  // ts
	e.uvarint(1) // one val
	e.byte(99)   // bogus ColType
	e.varint(5)
	if _, err := DecodeResponse(e.b); err == nil {
		t.Error("bogus column type tag accepted")
	}

	// A trace snapshot with the wrong histogram count.
	e = &enc{b: appendHeader(nil, "1", "OK", VerbTrace)}
	e.uvarint(2) // wrong: engine snapshots always carry numTransitions
	if _, err := DecodeResponse(e.b); err == nil {
		t.Error("wrong histogram count accepted")
	}
}

// TestFrameIO pins the framing layer: length prefix honored, MaxFrame
// enforced on both sides, short reads surface as errors.
func TestFrameIO(t *testing.T) {
	var buf bytes.Buffer
	payload := EncodeRequest(&Request{Seq: 5, Verb: VerbPing})
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(bufio.NewReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("frame round trip mismatch: %q != %q", got, payload)
	}

	// Declared length beyond MaxFrame must be rejected before reading.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(huge))); err == nil {
		t.Error("oversized frame declaration accepted")
	}
	// Truncated frames error at every cut point.
	whole := buf.Bytes()
	for i := 0; i < len(whole); i++ {
		if _, err := readFrame(bufio.NewReader(bytes.NewReader(whole[:i]))); err == nil {
			t.Errorf("truncated frame (%d/%d bytes) read cleanly", i, len(whole))
		}
	}
	if err := writeFrame(&buf, make([]byte, MaxFrame+1)); err == nil {
		t.Error("oversized frame write accepted")
	}
}

// TestErrMessageClamped pins that a pathological error message cannot
// break the header line discipline.
func TestErrMessageClamped(t *testing.T) {
	long := ""
	for i := 0; i < 100; i++ {
		long += "error with\nnewlines and length "
	}
	payload := EncodeResponse(&Response{Seq: 1, Err: long})
	got, err := DecodeResponse(payload)
	if err != nil {
		t.Fatalf("clamped ERR did not decode: %v", err)
	}
	if got.Err == "" || len(got.Err) > maxErrLen {
		t.Errorf("clamped ERR message len %d", len(got.Err))
	}
}

func FuzzShardRPCRoundTrip(f *testing.F) {
	for _, req := range sampleRequests() {
		f.Add(EncodeRequest(req))
	}
	for _, resp := range sampleResponses() {
		f.Add(EncodeResponse(resp))
	}
	f.Add([]byte("HWSH/1 1 ERR boom\n"))
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decoders must never panic or over-read; when they accept a
		// payload, re-encoding must be canonical: encode(decode(data))
		// decodes to the same value and re-encodes to the same bytes.
		if req, err := DecodeRequest(data); err == nil {
			enc1 := EncodeRequest(req)
			req2, err := DecodeRequest(enc1)
			if err != nil {
				t.Fatalf("re-decode of re-encoded request failed: %v\nreq=%+v", err, req)
			}
			if enc2 := EncodeRequest(req2); !bytes.Equal(enc1, enc2) {
				t.Fatalf("request encoding not canonical:\n%q\n%q", enc1, enc2)
			}
		}
		if resp, err := DecodeResponse(data); err == nil {
			enc1 := EncodeResponse(resp)
			resp2, err := DecodeResponse(enc1)
			if err != nil {
				t.Fatalf("re-decode of re-encoded response failed: %v\nresp=%+v", err, resp)
			}
			if enc2 := EncodeResponse(resp2); !bytes.Equal(enc1, enc2) {
				t.Fatalf("response encoding not canonical:\n%q\n%q", enc1, enc2)
			}
		}
	})
}
