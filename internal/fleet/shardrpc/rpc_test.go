package shardrpc

import (
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/fleet/engine"
	"repro/internal/hwdb"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// fakeBackend counts calls and lets tests wedge Step on demand.
type fakeBackend struct {
	assigned map[uint64]bool
	steps    atomic.Uint64
	syncs    atomic.Uint64
	closes   atomic.Uint64
	stall    chan struct{} // non-nil: Step blocks until it closes
	onSync   func()
	stats    engine.Stats
	snap     trace.Snapshot
}

func newFakeBackend() *fakeBackend { return &fakeBackend{assigned: make(map[uint64]bool)} }

func (f *fakeBackend) Assign(id uint64) error {
	if f.assigned[id] {
		return errors.New("already live")
	}
	f.assigned[id] = true
	return nil
}
func (f *fakeBackend) Drain(id uint64) bool {
	ok := f.assigned[id]
	delete(f.assigned, id)
	return ok
}
func (f *fakeBackend) Cordon(id uint64) bool   { return f.assigned[id] }
func (f *fakeBackend) Uncordon(id uint64) bool { return f.assigned[id] }
func (f *fakeBackend) Step(dt float64) error {
	f.steps.Add(1)
	if f.stall != nil {
		<-f.stall
	}
	return nil
}
func (f *fakeBackend) Sync() {
	f.syncs.Add(1)
	if f.onSync != nil {
		f.onSync()
	}
}
func (f *fakeBackend) Stats() engine.Stats           { return f.stats }
func (f *fakeBackend) TraceSnapshot() trace.Snapshot { return f.snap }
func (f *fakeBackend) Close()                        { f.closes.Add(1) }

// startServer serves a backend on loopback and returns a connected-ready
// client config factory.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv := NewServer(cfg)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func TestClientServerContract(t *testing.T) {
	fb := newFakeBackend()
	fb.stats = *sampleStats()
	fb.snap = *sampleSnapshot()
	srv := startServer(t, Config{Backend: fb})
	c := Dial(ClientConfig{Addr: srv.Addr()})
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if err := c.Assign(7); err != nil {
		t.Fatalf("assign: %v", err)
	}
	if err := c.Assign(7); err == nil || !strings.Contains(err.Error(), "already live") {
		t.Fatalf("double assign: got %v, want remote 'already live' error", err)
	}
	if !c.Cordon(7) || !c.Uncordon(7) {
		t.Error("cordon/uncordon of a live home reported false")
	}
	if c.Cordon(99) {
		t.Error("cordon of an absent home reported true")
	}
	if err := c.Step(0.25); err != nil {
		t.Fatalf("step: %v", err)
	}
	c.Sync()
	if got := fb.syncs.Load(); got != 1 {
		t.Errorf("syncs = %d, want 1", got)
	}
	if got := c.Stats(); !reflect.DeepEqual(got, fb.stats) {
		t.Errorf("stats round trip:\n got %+v\nwant %+v", got, fb.stats)
	}
	if got := c.TraceSnapshot(); !reflect.DeepEqual(got, fb.snap) {
		t.Errorf("trace snapshot round trip mismatch")
	}
	if !c.Drain(7) {
		t.Error("drain of a live home reported false")
	}
	if c.Drain(7) {
		t.Error("second drain reported true")
	}
	c.Close()
	c.Close() // idempotent
	if got := fb.closes.Load(); got != 1 {
		t.Errorf("closes = %d, want 1", got)
	}
	if err := c.Ping(); !errors.Is(err, ErrClosed) {
		t.Errorf("call after Close: %v, want ErrClosed", err)
	}
	select {
	case <-srv.Done():
	case <-time.After(2 * time.Second):
		t.Error("server Done not closed after CLOSE verb")
	}
}

// TestStepTimeoutStalledWorker wedges the backend's Step and proves the
// client's deadline fails the call promptly instead of hanging, and that
// the client heals on the next call over a fresh connection.
func TestStepTimeoutStalledWorker(t *testing.T) {
	fb := newFakeBackend()
	fb.stall = make(chan struct{})
	srv := startServer(t, Config{Backend: fb})
	c := Dial(ClientConfig{Addr: srv.Addr(), StepTimeout: 150 * time.Millisecond})
	defer c.Close()

	start := time.Now()
	err := c.Step(0.25)
	if err == nil {
		t.Fatal("step against a wedged worker returned nil")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("step took %v to fail; deadline did not bite", elapsed)
	}
	// Un-wedge: the abandoned server goroutine finishes, and any later
	// Step sails through the closed channel. (Nilling the field here
	// would race with that goroutine's read of it.)
	close(fb.stall)
	if err := c.Ping(); err != nil {
		t.Fatalf("client did not heal after a step timeout: %v", err)
	}
	if got := fb.steps.Load(); got == 0 {
		t.Error("backend never saw the step")
	}
}

// hubBackend is a fake backend with a real telemetry hub over one table:
// Sync flushes the hub exactly as an engine would.
type hubBackend struct {
	*fakeBackend
	hub *telemetry.Hub
	tbl *hwdb.Table
}

func newHubBackend() *hubBackend {
	hb := &hubBackend{
		fakeBackend: newFakeBackend(),
		hub:         telemetry.NewHub(telemetry.HubConfig{Manual: true}),
		tbl:         hwdb.NewTable("T", hwdb.NewSchema(hwdb.Column{Name: "v", Type: hwdb.TInt}), 64),
	}
	hb.hub.Watch(telemetry.SourceID{Home: 1, Table: "T"}, hb.tbl)
	hb.fakeBackend.onSync = hb.hub.Flush
	return hb
}

func (hb *hubBackend) insert(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ts := time.Date(2011, 8, 15, 9, 0, i, 0, time.UTC)
		if err := hb.tbl.Insert(ts, []hwdb.Value{hwdb.Int64(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTelemetryRelayAcrossReconnect drives rows through SYNC batches,
// severs the connection mid-stream, and proves the relay's books balance:
// rows flushed while disconnected arrive on the next SYNC after the
// automatic redial, nothing double-counts, delivered+lost == inserts.
func TestTelemetryRelayAcrossReconnect(t *testing.T) {
	hb := newHubBackend()
	srv := startServer(t, Config{Backend: hb.fakeBackend, Hub: hb.hub})
	relay := telemetry.NewRelay()
	c := Dial(ClientConfig{Addr: srv.Addr(), Relay: relay})
	defer c.Close()

	hb.insert(t, 5)
	c.Sync()
	if st := relay.Stats(); st.Delivered != 5 || st.Lost != 0 {
		t.Fatalf("after first sync: %+v, want 5 delivered", st)
	}

	// Sever the connection; flush server-side while no client is attached
	// (the worker buffers the deltas — they are pending, not committed).
	srv.DropConns()
	hb.insert(t, 3)
	hb.hub.Flush()

	// The next Sync redials (RESYNC finds the books aligned — nothing was
	// committed while we were away) and its batch carries the buffered 3
	// rows plus this flush's 0.
	c.Sync()
	if st := relay.Stats(); st.Delivered != 8 || st.Lost != 0 {
		t.Fatalf("after reconnect sync: %+v, want 8 delivered 0 lost", st)
	}
	if hub := hb.hub.Stats(); hub.Delivered != 8 {
		t.Fatalf("hub delivered %d, want 8", hub.Delivered)
	}
	if srv.Accepted() < 2 {
		t.Errorf("accepted %d conns, want >= 2 (a real reconnect)", srv.Accepted())
	}
}

// TestReconnectAccountsWireLoss proves the lost half of the invariant: a
// batch the worker committed but a second client never saw is accounted
// as lost on that client's relay at RESYNC — total delivered+lost equals
// the worker's books even though the rows are gone.
func TestReconnectAccountsWireLoss(t *testing.T) {
	hb := newHubBackend()
	srv := startServer(t, Config{Backend: hb.fakeBackend, Hub: hb.hub})

	relayA := telemetry.NewRelay()
	a := Dial(ClientConfig{Addr: srv.Addr(), Relay: relayA})
	hb.insert(t, 6)
	a.Sync() // worker commits batch 1 (6 rows) to client A
	if st := relayA.Stats(); st.Delivered != 6 {
		t.Fatalf("client A delivered %d, want 6", st.Delivered)
	}
	a.Close()

	// A fresh client (a restarted coordinator) has empty books. RESYNC
	// tells it the worker committed 6 rows it never saw: accounted lost.
	relayB := telemetry.NewRelay()
	b := Dial(ClientConfig{Addr: srv.Addr(), Relay: relayB})
	defer b.Close()
	if err := b.Ping(); err != nil {
		t.Fatal(err)
	}
	if st := relayB.Stats(); st.Delivered != 0 || st.Lost != 6 {
		t.Fatalf("client B books %+v, want 0 delivered / 6 lost", st)
	}

	// New rows flow normally: the gap does not poison later accounting.
	hb.insert(t, 2)
	b.Sync()
	if st := relayB.Stats(); st.Delivered != 2 || st.Lost != 6 {
		t.Fatalf("client B books %+v, want 2 delivered / 6 lost", st)
	}
	hub, st := hb.hub.Stats(), relayB.Stats()
	if st.Delivered+st.Lost != hub.Delivered+hub.Lost {
		t.Fatalf("books diverge: relay %+v vs hub %+v", st, hub)
	}
}

// TestRemoteEngineAgainstServer runs a real engine behind the server and
// checks the remote client observes the same stats the engine reports —
// the minimal integration the fleet-level conformance suite expands on.
func TestRemoteEngineAgainstServer(t *testing.T) {
	clk := clock.NewSimulated()
	eng := engine.New(engine.Config{Clock: clk, Seed: 5})
	srv := startServer(t, Config{Backend: eng, Hub: eng.Hub(), Clock: clk})
	c := Dial(ClientConfig{Addr: srv.Addr(), Clock: clk})
	defer c.Close()

	if err := c.Assign(3); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(0.25); err != nil {
		t.Fatal(err)
	}
	clk.Advance(250 * time.Millisecond)
	c.Sync()
	remote, local := c.Stats(), eng.Stats()
	if !reflect.DeepEqual(remote, local) {
		t.Errorf("remote stats diverge:\n remote %+v\n local  %+v", remote, local)
	}
	if remote.Homes != 1 || remote.Steps != 1 {
		t.Errorf("stats = %+v, want 1 home 1 step", remote)
	}
	if !reflect.DeepEqual(c.TraceSnapshot(), eng.TraceSnapshot()) {
		t.Error("remote trace snapshot diverges from engine's")
	}
}
