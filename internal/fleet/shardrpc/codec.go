package shardrpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/fleet/engine"
	"repro/internal/hwdb"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// errFrame wraps every decode failure so callers can distinguish a
// malformed peer from a transport error.
var errFrame = errors.New("shardrpc: bad frame")

func frameErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errFrame, fmt.Sprintf(format, args...))
}

// ------------------------------------------------------------- framing

// writeFrame writes one length-prefixed frame in a single Write call, so
// a frame is either fully queued to the kernel or the connection is dead
// — the commit protocol relies on that atomicity at this layer.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("shardrpc: frame %d bytes exceeds MaxFrame", len(payload))
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one length-prefixed frame, rejecting oversized
// declarations before allocating.
func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, frameErr("declared payload %d exceeds MaxFrame", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// ------------------------------------------------------ binary primitives

// enc appends binary body primitives.
type enc struct{ b []byte }

func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) varint(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) float(v float64)  { e.b = binary.BigEndian.AppendUint64(e.b, math.Float64bits(v)) }
func (e *enc) str(s string)     { e.uvarint(uint64(len(s))); e.b = append(e.b, s...) }
func (e *enc) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.b = append(e.b, b)
}
func (e *enc) byte(v byte) { e.b = append(e.b, v) }

// dec consumes binary body primitives with strict bounds checking: every
// length read is validated against the bytes actually remaining, so a
// corrupt frame can neither over-read nor bait a huge allocation.
type dec struct {
	b   []byte
	off int
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, frameErr("truncated uvarint at %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *dec) varint() (int64, error) {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		return 0, frameErr("truncated varint at %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *dec) float() (float64, error) {
	if d.remaining() < 8 {
		return 0, frameErr("truncated float at %d", d.off)
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v, nil
}

func (d *dec) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(d.remaining()) {
		return "", frameErr("string of %d bytes with %d remaining", n, d.remaining())
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *dec) bool() (bool, error) {
	b, err := d.byte()
	if err != nil {
		return false, err
	}
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, frameErr("bad bool byte %d", b)
}

func (d *dec) byte() (byte, error) {
	if d.remaining() < 1 {
		return 0, frameErr("truncated byte at %d", d.off)
	}
	b := d.b[d.off]
	d.off++
	return b, nil
}

// count reads a collection length and bounds it by the cheapest possible
// per-element cost, so a corrupt length cannot allocate past the frame.
func (d *dec) count(minBytesPer int) (int, error) {
	n, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if minBytesPer < 1 {
		minBytesPer = 1
	}
	if n > uint64(d.remaining()/minBytesPer) {
		return 0, frameErr("count %d exceeds remaining %d bytes", n, d.remaining())
	}
	return int(n), nil
}

func (d *dec) finish() error {
	if d.remaining() != 0 {
		return frameErr("%d trailing bytes", d.remaining())
	}
	return nil
}

// ------------------------------------------------------------- header

func appendHeader(b []byte, fields ...string) []byte {
	b = append(b, "HWSH/1"...)
	for _, f := range fields {
		b = append(b, ' ')
		b = append(b, f...)
	}
	return append(b, '\n')
}

// splitHeader peels the text header line off a payload. The line is
// bounded (a verb header is tiny; ERR messages are clamped server-side),
// so a payload with no newline in the first 512 bytes is malformed.
func splitHeader(payload []byte) (line string, body []byte, err error) {
	limit := len(payload)
	if limit > 512 {
		limit = 512
	}
	for i := 0; i < limit; i++ {
		if payload[i] == '\n' {
			return string(payload[:i]), payload[i+1:], nil
		}
	}
	return "", nil, frameErr("no header line")
}

// ------------------------------------------------------------- request

// EncodeRequest serializes one request payload (header + body, no length
// prefix).
func EncodeRequest(req *Request) []byte {
	e := &enc{b: appendHeader(nil, strconv.FormatUint(req.Seq, 10), req.Verb)}
	switch req.Verb {
	case VerbAssign, VerbDrain, VerbCordon, VerbUncordon:
		e.uvarint(req.ID)
	case VerbStep:
		e.float(req.DT)
	case VerbSync:
		e.varint(req.Now)
	}
	return e.b
}

// DecodeRequest parses one request payload. It is strict: unknown verbs,
// truncated bodies and trailing bytes are all errors.
func DecodeRequest(payload []byte) (*Request, error) {
	line, body, err := splitHeader(payload)
	if err != nil {
		return nil, err
	}
	parts := strings.Split(line, " ")
	if len(parts) != 3 || parts[0] != "HWSH/1" {
		return nil, frameErr("bad request header %q", line)
	}
	seq, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return nil, frameErr("bad seq %q", parts[1])
	}
	verb := parts[2]
	if !knownVerb(verb) {
		return nil, frameErr("unknown verb %q", verb)
	}
	req := &Request{Seq: seq, Verb: verb}
	d := &dec{b: body}
	switch verb {
	case VerbAssign, VerbDrain, VerbCordon, VerbUncordon:
		if req.ID, err = d.uvarint(); err != nil {
			return nil, err
		}
	case VerbStep:
		if req.DT, err = d.float(); err != nil {
			return nil, err
		}
	case VerbSync:
		if req.Now, err = d.varint(); err != nil {
			return nil, err
		}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return req, nil
}

// ------------------------------------------------------------- response

// maxErrLen clamps ERR header messages so a response header always fits
// the splitHeader bound.
const maxErrLen = 400

// EncodeResponse serializes one response payload. ERR responses carry
// only the header; OK responses echo the verb and append the verb's
// body.
func EncodeResponse(resp *Response) []byte {
	seq := strconv.FormatUint(resp.Seq, 10)
	if resp.Err != "" {
		// Sanitize byte-wise (no rune decoding): the message must never
		// contain a newline, and byte-level clamping keeps re-encoding a
		// decoded message byte-identical — the codec's canonical-form
		// property, which the fuzzer checks.
		raw := []byte(resp.Err)
		if len(raw) > maxErrLen {
			raw = raw[:maxErrLen]
		}
		for i, b := range raw {
			if b == '\n' || b == '\r' {
				raw[i] = ' '
			}
		}
		return appendHeader(nil, seq, "ERR", string(raw))
	}
	e := &enc{b: appendHeader(nil, seq, "OK", resp.Verb)}
	switch resp.Verb {
	case VerbDrain:
		e.bool(resp.OK)
		encodeBatch(e, resp.Batch)
	case VerbCordon, VerbUncordon:
		e.bool(resp.OK)
	case VerbSync:
		encodeBatch(e, resp.Batch)
	case VerbStats:
		encodeStats(e, resp.Stats)
	case VerbTrace:
		encodeSnapshot(e, resp.Snap)
	case VerbResync:
		b := resp.Committed
		if b == nil {
			b = &Books{}
		}
		e.uvarint(b.Seq)
		e.uvarint(b.SentRows)
		e.uvarint(b.SentLost)
	}
	return e.b
}

// DecodeResponse parses one response payload, as strict as
// DecodeRequest.
func DecodeResponse(payload []byte) (*Response, error) {
	line, body, err := splitHeader(payload)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 4)
	if len(parts) < 3 || parts[0] != "HWSH/1" {
		return nil, frameErr("bad response header %q", line)
	}
	seq, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return nil, frameErr("bad seq %q", parts[1])
	}
	switch parts[2] {
	case "ERR":
		msg := ""
		if len(parts) == 4 {
			msg = parts[3]
		}
		if msg == "" {
			msg = "unspecified error"
		}
		if len(body) != 0 {
			return nil, frameErr("ERR response with %d body bytes", len(body))
		}
		return &Response{Seq: seq, Err: msg}, nil
	case "OK":
		if len(parts) != 4 {
			return nil, frameErr("OK response without verb")
		}
	default:
		return nil, frameErr("bad response status %q", parts[2])
	}
	verb := parts[3]
	if !knownVerb(verb) {
		return nil, frameErr("unknown verb %q", verb)
	}
	resp := &Response{Seq: seq, Verb: verb}
	d := &dec{b: body}
	switch verb {
	case VerbDrain:
		if resp.OK, err = d.bool(); err != nil {
			return nil, err
		}
		if resp.Batch, err = decodeBatch(d); err != nil {
			return nil, err
		}
	case VerbCordon, VerbUncordon:
		if resp.OK, err = d.bool(); err != nil {
			return nil, err
		}
	case VerbSync:
		if resp.Batch, err = decodeBatch(d); err != nil {
			return nil, err
		}
	case VerbStats:
		if resp.Stats, err = decodeStats(d); err != nil {
			return nil, err
		}
	case VerbTrace:
		if resp.Snap, err = decodeSnapshot(d); err != nil {
			return nil, err
		}
	case VerbResync:
		b := &Books{}
		if b.Seq, err = d.uvarint(); err != nil {
			return nil, err
		}
		if b.SentRows, err = d.uvarint(); err != nil {
			return nil, err
		}
		if b.SentLost, err = d.uvarint(); err != nil {
			return nil, err
		}
		resp.Committed = b
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return resp, nil
}

// ------------------------------------------------------------- batches

func encodeBatch(e *enc, b *Batch) {
	if b == nil {
		b = &Batch{}
	}
	e.uvarint(b.Seq)
	e.uvarint(b.SentRows)
	e.uvarint(b.SentLost)
	e.uvarint(uint64(len(b.Deltas)))
	for _, d := range b.Deltas {
		encodeDelta(e, d)
	}
}

func decodeBatch(d *dec) (*Batch, error) {
	b := &Batch{}
	var err error
	if b.Seq, err = d.uvarint(); err != nil {
		return nil, err
	}
	if b.SentRows, err = d.uvarint(); err != nil {
		return nil, err
	}
	if b.SentLost, err = d.uvarint(); err != nil {
		return nil, err
	}
	n, err := d.count(4) // home + table len + lost + row count, one byte each minimum
	if err != nil {
		return nil, err
	}
	if n > 0 {
		b.Deltas = make([]telemetry.Delta, 0, n)
		for i := 0; i < n; i++ {
			delta, err := decodeDelta(d)
			if err != nil {
				return nil, err
			}
			b.Deltas = append(b.Deltas, delta)
		}
	}
	return b, nil
}

func encodeDelta(e *enc, d telemetry.Delta) {
	e.uvarint(d.Source.Home)
	e.str(d.Source.Table)
	e.uvarint(d.Lost)
	e.uvarint(uint64(len(d.Rows)))
	for _, r := range d.Rows {
		e.varint(r.TS.UnixNano())
		e.uvarint(uint64(len(r.Vals)))
		for _, v := range r.Vals {
			e.byte(byte(v.Type))
			switch v.Type {
			case hwdb.TReal:
				e.float(v.Real)
			case hwdb.TString:
				e.str(v.Str)
			default: // TInt, TBool, TMAC, TIP, TTime: all live in Int
				e.varint(v.Int)
			}
		}
	}
}

func decodeDelta(d *dec) (telemetry.Delta, error) {
	var out telemetry.Delta
	var err error
	if out.Source.Home, err = d.uvarint(); err != nil {
		return out, err
	}
	if out.Source.Table, err = d.str(); err != nil {
		return out, err
	}
	if out.Lost, err = d.uvarint(); err != nil {
		return out, err
	}
	nrows, err := d.count(2) // ts + val count, one byte each minimum
	if err != nil {
		return out, err
	}
	if nrows > 0 {
		out.Rows = make([]hwdb.Row, 0, nrows)
	}
	for i := 0; i < nrows; i++ {
		var row hwdb.Row
		ns, err := d.varint()
		if err != nil {
			return out, err
		}
		row.TS = time.Unix(0, ns).UTC()
		nvals, err := d.count(2) // type tag + one varint byte minimum
		if err != nil {
			return out, err
		}
		if nvals > 0 {
			row.Vals = make([]hwdb.Value, 0, nvals)
		}
		for j := 0; j < nvals; j++ {
			tag, err := d.byte()
			if err != nil {
				return out, err
			}
			v := hwdb.Value{Type: hwdb.ColType(tag)}
			switch v.Type {
			case hwdb.TReal:
				if v.Real, err = d.float(); err != nil {
					return out, err
				}
			case hwdb.TString:
				if v.Str, err = d.str(); err != nil {
					return out, err
				}
			case hwdb.TInt, hwdb.TBool, hwdb.TMAC, hwdb.TIP, hwdb.TTime:
				if v.Int, err = d.varint(); err != nil {
					return out, err
				}
			default:
				return out, frameErr("bad column type tag %d", tag)
			}
			row.Vals = append(row.Vals, v)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// ------------------------------------------------------------- stats

func encodeStats(e *enc, st *engine.Stats) {
	if st == nil {
		st = &engine.Stats{}
	}
	e.varint(int64(st.Shard))
	e.varint(int64(st.Homes))
	e.uvarint(st.Steps)
	e.varint(int64(st.Hub.Sources))
	e.uvarint(st.Hub.Delivered)
	e.uvarint(st.Hub.Lost)
	t := st.Totals
	e.varint(int64(t.Homes))
	e.varint(int64(t.Hosts))
	for _, v := range []uint64{
		t.Flows, t.Links, t.Leases, t.Packets, t.Bytes, t.Lost, t.Rows,
		t.Commits, t.PerfRows, t.TxPkts, t.LostPkts, t.Installs, t.InstallUSSum,
	} {
		e.uvarint(v)
	}
}

func decodeStats(d *dec) (*engine.Stats, error) {
	st := &engine.Stats{}
	var err error
	var i int64
	if i, err = d.varint(); err != nil {
		return nil, err
	}
	st.Shard = int(i)
	if i, err = d.varint(); err != nil {
		return nil, err
	}
	st.Homes = int(i)
	if st.Steps, err = d.uvarint(); err != nil {
		return nil, err
	}
	if i, err = d.varint(); err != nil {
		return nil, err
	}
	st.Hub.Sources = int(i)
	if st.Hub.Delivered, err = d.uvarint(); err != nil {
		return nil, err
	}
	if st.Hub.Lost, err = d.uvarint(); err != nil {
		return nil, err
	}
	t := &st.Totals
	if i, err = d.varint(); err != nil {
		return nil, err
	}
	t.Homes = int(i)
	if i, err = d.varint(); err != nil {
		return nil, err
	}
	t.Hosts = int(i)
	for _, p := range []*uint64{
		&t.Flows, &t.Links, &t.Leases, &t.Packets, &t.Bytes, &t.Lost, &t.Rows,
		&t.Commits, &t.PerfRows, &t.TxPkts, &t.LostPkts, &t.Installs, &t.InstallUSSum,
	} {
		if *p, err = d.uvarint(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// ------------------------------------------------------------- traces

func encodeSnapshot(e *enc, s *trace.Snapshot) {
	if s == nil {
		s = &trace.Snapshot{}
	}
	e.uvarint(uint64(len(s.Hists)))
	for _, h := range s.Hists {
		e.uvarint(h.Count)
		e.uvarint(h.SumNS)
		e.varint(h.MaxNS)
		e.uvarint(uint64(len(h.Buckets)))
		for _, b := range h.Buckets {
			e.uvarint(b)
		}
	}
	e.uvarint(s.Overwritten)
}

func decodeSnapshot(d *dec) (*trace.Snapshot, error) {
	s := &trace.Snapshot{}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n != uint64(len(s.Hists)) {
		return nil, frameErr("snapshot has %d histograms, want %d", n, len(s.Hists))
	}
	for i := range s.Hists {
		h := &s.Hists[i]
		if h.Count, err = d.uvarint(); err != nil {
			return nil, err
		}
		if h.SumNS, err = d.uvarint(); err != nil {
			return nil, err
		}
		if h.MaxNS, err = d.varint(); err != nil {
			return nil, err
		}
		nb, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if nb != uint64(len(h.Buckets)) {
			return nil, frameErr("histogram has %d buckets, want %d", nb, len(h.Buckets))
		}
		for j := range h.Buckets {
			if h.Buckets[j], err = d.uvarint(); err != nil {
				return nil, err
			}
		}
	}
	if s.Overwritten, err = d.uvarint(); err != nil {
		return nil, err
	}
	return s, nil
}
