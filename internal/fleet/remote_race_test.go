package fleet

import (
	"sync"
	"testing"

	"repro/internal/clock"
	"repro/internal/fleet/engine"
	"repro/internal/fleet/shardrpc"
	"repro/internal/netsim"
)

// TestRemoteFleetConcurrency32Homes is the remote-shard variant of the
// 32-home churn gate: the same coordinator workload — concurrent
// aggregation, trace reads, home churn — but driven over real loopback
// TCP against four worker engines in their own goroutines, with one
// worker's connections severed mid-run. The final assertion is the
// federated exact-accounting invariant across the process boundary:
// delivered plus explicitly-lost equals every row any watched table ever
// took, worker kill and reconnect included.
func TestRemoteFleetConcurrency32Homes(t *testing.T) {
	if testing.Short() {
		t.Skip("32-home remote bring-up in -short mode")
	}
	const homes, shards = 32, 4
	const seed = 3

	// Workers: each engine owns its clock (advanced via SYNC) and
	// populates every 4th assigned home with a live traffic source.
	var trackMu sync.Mutex
	var tracked []*Home
	onAssign := func(h *Home) error {
		trackMu.Lock()
		tracked = append(tracked, h)
		trackMu.Unlock()
		if h.ID%4 != 0 {
			return nil
		}
		registerZones(h)
		host, err := h.Join("", h.ID%8 == 0, netsim.Pos{X: 2})
		if err != nil {
			return err
		}
		host.AddApp(netsim.NewApp(netsim.AppWeb, zoneFor("web"), 60_000))
		return nil
	}
	servers := make([]*shardrpc.Server, shards)
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		wclk := clock.NewSimulated()
		eng := engine.New(engine.Config{Index: i, Clock: wclk, Seed: seed, OnAssign: onAssign})
		t.Cleanup(eng.Close)
		srv := shardrpc.NewServer(shardrpc.Config{Backend: eng, Hub: eng.Hub(), Clock: wclk})
		if err := srv.Serve("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		servers[i], addrs[i] = srv, srv.Addr()
	}

	f := New(Config{WorkerAddrs: addrs, Clock: clock.NewSimulated(), Seed: seed})
	t.Cleanup(f.Stop)
	if _, err := f.AddHomes(homes); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if f.Size() != homes {
		t.Fatalf("seed %d: size = %d, want %d", seed, f.Size(), homes)
	}

	// A deliberately tiny federated subscriber races the relay ingests:
	// overflow must surface as accounted loss, not a hang or a race.
	slow := f.Hub().Subscribe(1)
	defer slow.Close()

	aggDone := make(chan struct{})
	go func() {
		defer close(aggDone)
		for i := 0; i < 6; i++ {
			f.Aggregate()
		}
	}()
	traceDone := make(chan struct{})
	traceStop := make(chan struct{})
	go func() {
		defer close(traceDone)
		for {
			select {
			case <-traceStop:
				return
			default:
				f.TraceStats()
			}
		}
	}()
	for i := 0; i < 6; i++ {
		if err := f.Step(0.25); err != nil {
			t.Fatalf("seed %d: step %d: %v", seed, i, err)
		}
		if i == 2 {
			// Churn while connections are healthy: a remote drain that
			// fails on transport reports false and would abort the test.
			if !f.RemoveHome(1) {
				t.Fatalf("seed %d: remove failed", seed)
			}
			if _, err := f.AddHome(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		if i == 3 {
			// Kill one worker's connections between steps; the client must
			// redial, RESYNC its books and carry on. Concurrent Aggregate
			// calls may lose their Sync mid-flight — that loss must be
			// accounted, not silent.
			servers[1].DropConns()
		}
	}
	<-aggDone
	close(traceStop)
	<-traceDone

	stats := f.TraceStats()
	if len(stats) == 0 {
		t.Errorf("seed %d: TraceStats returned no stages", seed)
	}
	var spanned uint64
	for _, st := range stats {
		spanned += st.Count
	}
	if spanned == 0 {
		t.Errorf("seed %d: no spans recorded across the remote fleet", seed)
	}

	snap := f.Aggregate()
	if snap.FleetTotals.Homes != homes {
		t.Errorf("seed %d: homes = %d, want %d", seed, snap.FleetTotals.Homes, homes)
	}
	if f.Totals().Flows == 0 || f.Totals().Bytes == 0 {
		t.Errorf("seed %d: no traffic folded across the remote fleet: %+v", seed, f.Totals())
	}
	if f.Steps() != 6 {
		t.Errorf("seed %d: steps = %d", seed, f.Steps())
	}
	if servers[1].Accepted() < 2 {
		t.Errorf("seed %d: killed worker accepted %d conns, want >= 2 (a real reconnect)", seed, servers[1].Accepted())
	}

	// One more fleet-wide sync so any batch buffered across the reconnect
	// is carried out before the books are audited.
	f.Sync()

	// Exact accounting across the process boundary: every row any watched
	// table ever took — including the churned-away home's and any rows in
	// flight when the connections died — is delivered into a relay or
	// explicitly accounted lost.
	var inserts uint64
	trackMu.Lock()
	for _, h := range tracked {
		for _, name := range watchedTables {
			if tbl, ok := h.Router.DB.Table(name); ok {
				ins, _ := tbl.Stats()
				inserts += ins
			}
		}
	}
	trackMu.Unlock()
	if inserts == 0 {
		t.Fatalf("seed %d: no rows inserted", seed)
	}
	fed := f.Hub().Stats()
	if fed.Delivered+fed.Lost != inserts {
		t.Errorf("seed %d: unaccounted rows across the wire: delivered %d + lost %d != %d inserts",
			seed, fed.Delivered, fed.Lost, inserts)
	}

	// The folder consumed exactly the delivered rows (wire-lost rows never
	// reach it — they are books, not data).
	folder := f.Telemetry().Totals()
	if folder.Rows != fed.Delivered {
		t.Errorf("seed %d: folder saw %d rows, federation delivered %d", seed, folder.Rows, fed.Delivered)
	}

	// The slow subscriber's books balance against everything actually
	// ingested into the relays: received rows + in-band lost + pending
	// overflow equals delivered + in-band lost.
	var got uint64
drain:
	for {
		select {
		case d := <-slow.C():
			got += uint64(len(d.Rows)) + d.Lost
		default:
			break drain
		}
	}
	if total, want := got+slow.PendingLost(), fed.Delivered+folder.Lost; total != want {
		t.Errorf("seed %d: slow subscriber accounts %d of %d ingested rows (dropped %d)",
			seed, total, want, slow.Dropped())
	}
}
