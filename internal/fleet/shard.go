package fleet

import "sync"

// shardOf assigns a home to a worker shard. ID modulo shard count keeps
// the assignment stable under churn: removing a home never reassigns any
// other home, and a re-added ID lands back on its old shard.
func shardOf(id uint64, shards int) int {
	return int(id % uint64(shards))
}

// pool is the fleet's worker pool: one long-lived goroutine per shard,
// each consuming jobs from its own queue. A shard therefore executes its
// jobs strictly in submission order, which (with homes submitted in
// ascending ID order) gives deterministic per-home stepping without any
// per-step goroutine churn.
type pool struct {
	queues []chan func()
	wg     sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

func newPool(shards int) *pool {
	p := &pool{queues: make([]chan func(), shards)}
	for i := range p.queues {
		// Small buffer: Step submits one job per shard and waits, so the
		// queue never grows; the buffer just decouples submit from the
		// worker picking the job up.
		q := make(chan func(), 4)
		p.queues[i] = q
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range q {
				job()
			}
		}()
	}
	return p
}

// submit enqueues a job on one shard's queue. Jobs submitted to the same
// shard run sequentially in submission order; different shards run
// concurrently.
func (p *pool) submit(shard int, job func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		// Run inline so callers waiting on the job's own barrier don't
		// deadlock during shutdown races.
		job()
		return
	}
	// Enqueue under the lock so close() cannot close the channel between
	// the check and the send. The send cannot block for long: workers
	// never enqueue, they only drain.
	p.queues[shard] <- job
	p.mu.Unlock()
}

// close drains the workers. Concurrent submit after close runs inline.
func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, q := range p.queues {
		close(q)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
