package fleet

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/netsim"
)

// TestRemoveReAddSameIDNoWatchLeak churns one home ID through repeated
// RemoveHome + immediate AddHomeID cycles (the remediation loop's restart
// path) and checks the telemetry watch state stays exact: the hub's
// source count returns to baseline every cycle, every retired
// incarnation's rows stay accounted, and the re-added home's tables
// stream rows again.
func TestRemoveReAddSameIDNoWatchLeak(t *testing.T) {
	f := New(Config{Clock: clock.NewSimulated(), Seed: 5})
	t.Cleanup(f.Stop)
	homes, err := f.AddHomes(2)
	if err != nil {
		t.Fatal(err)
	}
	id := homes[0].ID
	baseline := f.Hub().Stats().Sources
	if want := 2 * len(watchedTables); baseline != want {
		t.Fatalf("baseline sources = %d, want %d", baseline, want)
	}

	join := func(h *Home) {
		t.Helper()
		host, err := h.Join("", false, netsim.Pos{X: 2})
		if err != nil {
			t.Fatal(err)
		}
		host.AddApp(netsim.NewApp(netsim.AppWeb, "203.0.113.10", 60_000))
	}
	join(homes[0])

	// Rows from every incarnation ever retired, captured after its stop
	// (counters final, final drain already delivered to the hub).
	var retired uint64
	insertsOf := func(h *Home) uint64 {
		var n uint64
		for _, name := range watchedTables {
			if tbl, ok := h.Router.DB.Table(name); ok {
				ins, _ := tbl.Stats()
				n += ins
			}
		}
		return n
	}

	h := homes[0]
	for cycle := 0; cycle < 3; cycle++ {
		if err := f.Step(0.25); err != nil {
			t.Fatalf("cycle %d step: %v", cycle, err)
		}
		if !f.RemoveHome(id) {
			t.Fatalf("cycle %d: remove failed", cycle)
		}
		retired += insertsOf(h)
		if got := f.Hub().Stats().Sources; got != baseline-len(watchedTables) {
			t.Fatalf("cycle %d: %d sources after remove, want %d (watch state leaked)",
				cycle, got, baseline-len(watchedTables))
		}
		h, err = f.AddHomeID(id)
		if err != nil {
			t.Fatalf("cycle %d re-add: %v", cycle, err)
		}
		if h.ID != id {
			t.Fatalf("cycle %d: re-added as %d, want %d", cycle, h.ID, id)
		}
		if got := f.Hub().Stats().Sources; got != baseline {
			t.Fatalf("cycle %d: %d sources after re-add, want %d", cycle, got, baseline)
		}
		join(h)
	}

	// A live ID must not be claimable again.
	if _, err := f.AddHomeID(id); err == nil {
		t.Fatal("AddHomeID on a live ID succeeded")
	}

	// The final incarnation still streams: step, then check the books
	// across every incarnation that ever lived.
	if err := f.Step(0.25); err != nil {
		t.Fatal(err)
	}
	f.Sync()
	if got := insertsOf(h); got == 0 {
		t.Error("re-added home inserted no rows")
	}
	inserts := retired + insertsOf(h) + insertsOf(homes[1])
	hub := f.Hub().Stats()
	if hub.Delivered+hub.Lost != inserts {
		t.Errorf("unaccounted rows across re-add churn: delivered %d + lost %d != %d inserts",
			hub.Delivered, hub.Lost, inserts)
	}
}
