package fleet

import (
	"repro/internal/fleet/engine"
	"repro/internal/trace"
)

// ShardClient is the coordinator's view of one shard engine — the
// written contract between the placement layer and the shard-local
// engines, and the seam the later network hop slots into: replacing the
// in-process *engine.Engine with an RPC client is a transport swap, not
// a refactor.
//
// Contract (see docs/ARCHITECTURE.md "Fleet control plane"):
//
//   - Assign(id) builds and starts a home under a fleet-unique ID the
//     coordinator allocated; the engine watches its hwdb tables into the
//     shard hub before Assign returns. Assigning a live ID is an error.
//   - Drain(id) is the one teardown primitive: stop the router, final
//     telemetry flush (every row the home's tables still held is
//     delivered), retire the home's sources into the shard hub's
//     cumulative accounting, drop per-home state. Remove, restart,
//     replace and migrate are all Drain plus zero or one Assign.
//   - Step(dt) is a pure barrier over the engine's homes: deterministic
//     per-home order, no shared-clock advance, no telemetry flush. The
//     coordinator advances time and syncs, once per fleet tick.
//   - Sync flushes the shard hub and commits the per-shard view; the
//     coordinator calls it in shard order so federated fan-out is
//     deterministic.
//   - Stats must reconcile: summed over shards, Hub.Delivered+Hub.Lost
//     equals every row any home incarnation ever inserted. The
//     federation's global books are sums of these, never a third count.
//   - Close tears the engine down; a closed engine steps no homes.
type ShardClient interface {
	Assign(id uint64) error
	Drain(id uint64) bool
	Cordon(id uint64) bool
	Uncordon(id uint64) bool
	Step(dt float64) error
	Sync()
	Stats() engine.Stats
	TraceSnapshot() trace.Snapshot
	Close()
}

// The in-process engine is the reference ShardClient implementation.
var _ ShardClient = (*engine.Engine)(nil)
