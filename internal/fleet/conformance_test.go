package fleet

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/fleet/engine"
	"repro/internal/fleet/shardrpc"
)

// The ShardClient conformance suite: one table of contract assertions
// run identically against the in-process engine and the remote shardrpc
// client over loopback TCP. Anything the coordinator may assume about a
// shard must hold for both — a behavioural gap between the two
// implementations is a bug here before it is a flaky fleet.

// conformKit is one ShardClient implementation under test plus the
// engine actually backing it (for remote kits, behind a server).
type conformKit struct {
	client ShardClient
	eng    *engine.Engine
	clk    *clock.Simulated
}

// conformScenario populates one web host per home so steps generate
// rows; small and fixed so cross-implementation runs are comparable.
var conformScenario = Scenario{
	HostsPerHome: 1,
	AppMix:       []AppMix{{App: "web", RateBps: 40_000, Weight: 1}},
}

func newConformEngine() (*engine.Engine, *clock.Simulated) {
	clk := clock.NewSimulated()
	eng := engine.New(engine.Config{
		Clock:    clk,
		Seed:     11,
		OnAssign: conformScenario.SetupHome,
	})
	return eng, clk
}

var conformImpls = []struct {
	name string
	make func(t *testing.T) conformKit
}{
	{"engine", func(t *testing.T) conformKit {
		eng, clk := newConformEngine()
		t.Cleanup(eng.Close)
		return conformKit{client: eng, eng: eng, clk: clk}
	}},
	{"shardrpc", func(t *testing.T) conformKit {
		eng, clk := newConformEngine()
		srv := shardrpc.NewServer(shardrpc.Config{Backend: eng, Hub: eng.Hub(), Clock: clk})
		if err := srv.Serve("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		c := shardrpc.Dial(shardrpc.ClientConfig{Addr: srv.Addr(), Clock: clk})
		t.Cleanup(c.Close)
		return conformKit{client: c, eng: eng, clk: clk}
	}},
}

// normStats zeroes the one wall-clock-derived counter (flow-install
// latency is measured in real microseconds even under a simulated
// clock) so deterministic runs compare equal on everything that is
// actually deterministic.
func normStats(s engine.Stats) engine.Stats {
	s.Totals.InstallUSSum = 0
	return s
}

// tick advances one kit the way the coordinator does: step, move the
// shared simulated clock, flush telemetry.
func (k conformKit) tick(t *testing.T, dt float64) {
	t.Helper()
	if err := k.client.Step(dt); err != nil {
		t.Fatal(err)
	}
	k.clk.Advance(time.Duration(dt * float64(time.Second)))
	k.client.Sync()
}

// TestShardClientConformance runs every contract assertion against both
// implementations.
func TestShardClientConformance(t *testing.T) {
	for _, impl := range conformImpls {
		impl := impl
		t.Run(impl.name, func(t *testing.T) {
			t.Run("AssignLiveIDErrors", func(t *testing.T) {
				k := impl.make(t)
				if err := k.client.Assign(1); err != nil {
					t.Fatal(err)
				}
				if err := k.client.Assign(1); err == nil {
					t.Fatal("assigning a live home ID succeeded")
				}
			})
			t.Run("DrainThenAssignRestarts", func(t *testing.T) {
				k := impl.make(t)
				if err := k.client.Assign(2); err != nil {
					t.Fatal(err)
				}
				if !k.client.Drain(2) {
					t.Fatal("drain of a live home reported false")
				}
				if k.client.Drain(2) {
					t.Fatal("second drain of the same home reported true")
				}
				if err := k.client.Assign(2); err != nil {
					t.Fatalf("re-assign after drain: %v", err)
				}
				if st := k.client.Stats(); st.Homes != 1 {
					t.Fatalf("homes = %d after restart, want 1", st.Homes)
				}
			})
			t.Run("CordonAbsentFalse", func(t *testing.T) {
				k := impl.make(t)
				if k.client.Cordon(9) || k.client.Uncordon(9) {
					t.Fatal("cordon/uncordon of an absent home reported true")
				}
				if err := k.client.Assign(9); err != nil {
					t.Fatal(err)
				}
				if !k.client.Cordon(9) || !k.client.Uncordon(9) {
					t.Fatal("cordon/uncordon of a live home reported false")
				}
			})
			t.Run("StepPurity", func(t *testing.T) {
				// Step must not move the shared clock (the coordinator
				// owns time) and must not flush telemetry (Sync owns the
				// delta barrier).
				k := impl.make(t)
				if err := k.client.Assign(3); err != nil {
					t.Fatal(err)
				}
				before := k.clk.Now()
				if err := k.client.Step(0.25); err != nil {
					t.Fatal(err)
				}
				if !k.clk.Now().Equal(before) {
					t.Fatalf("step moved the shared clock %v -> %v", before, k.clk.Now())
				}
				if st := k.client.Stats(); st.Hub.Delivered != 0 {
					t.Fatalf("step flushed telemetry: %d rows delivered before Sync", st.Hub.Delivered)
				}
				k.clk.Advance(250 * time.Millisecond)
				k.client.Sync()
				if st := k.client.Stats(); st.Hub.Delivered == 0 {
					t.Fatal("no rows delivered after step+sync of a populated home")
				}
			})
			t.Run("SyncDeterminism", func(t *testing.T) {
				// The same scripted lifecycle on two fresh instances of
				// the same implementation produces identical stats.
				a, b := impl.make(t), impl.make(t)
				for _, k := range []conformKit{a, b} {
					if err := k.client.Assign(4); err != nil {
						t.Fatal(err)
					}
					for i := 0; i < 3; i++ {
						k.tick(t, 0.25)
					}
				}
				sa, sb := normStats(a.client.Stats()), normStats(b.client.Stats())
				if !reflect.DeepEqual(sa, sb) {
					t.Fatalf("same script, diverging stats:\n a %+v\n b %+v", sa, sb)
				}
			})
			t.Run("StatsBooksReconcile", func(t *testing.T) {
				k := impl.make(t)
				for id := uint64(1); id <= 3; id++ {
					if err := k.client.Assign(id); err != nil {
						t.Fatal(err)
					}
				}
				for i := 0; i < 4; i++ {
					k.tick(t, 0.25)
				}
				// Count inserts via the backing engine's homes: hub books
				// must cover every row the watched tables ever took.
				var inserts uint64
				for _, h := range k.eng.Homes() {
					for _, name := range watchedTables {
						if tbl, ok := h.Router.DB.Table(name); ok {
							ins, _ := tbl.Stats()
							inserts += ins
						}
					}
				}
				if inserts == 0 {
					t.Fatal("scripted run inserted no rows")
				}
				st := k.client.Stats()
				if st.Hub.Delivered+st.Hub.Lost != inserts {
					t.Fatalf("books do not reconcile: delivered %d + lost %d != %d inserts",
						st.Hub.Delivered, st.Hub.Lost, inserts)
				}
			})
			t.Run("TraceSnapshotMatchesBackend", func(t *testing.T) {
				k := impl.make(t)
				if err := k.client.Assign(6); err != nil {
					t.Fatal(err)
				}
				k.tick(t, 0.25)
				if got, want := k.client.TraceSnapshot(), k.eng.TraceSnapshot(); !reflect.DeepEqual(got, want) {
					t.Fatal("client trace snapshot diverges from the backing engine's")
				}
				if got, want := k.client.Stats(), k.eng.Stats(); !reflect.DeepEqual(got, want) {
					t.Fatalf("client stats diverge from the backing engine's:\n got %+v\nwant %+v", got, want)
				}
			})
			t.Run("CloseIdempotent", func(t *testing.T) {
				k := impl.make(t)
				if err := k.client.Assign(8); err != nil {
					t.Fatal(err)
				}
				k.client.Close()
				k.client.Close() // must not panic or double-teardown
				if err := k.client.Assign(10); err == nil {
					t.Fatal("assign succeeded after Close")
				}
				if k.client.Drain(8) {
					t.Fatal("drain reported true after Close")
				}
			})
		})
	}
}

// TestConformanceCrossImplementation scripts the same lifecycle against
// the in-process engine and the remote client and demands identical
// engine-level stats: the transport must be invisible to simulation
// results.
func TestConformanceCrossImplementation(t *testing.T) {
	kits := make(map[string]conformKit, len(conformImpls))
	for _, impl := range conformImpls {
		kits[impl.name] = impl.make(t)
	}
	for _, k := range kits {
		for _, id := range []uint64{1, 2} {
			if err := k.client.Assign(id); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 4; i++ {
			k.tick(t, 0.25)
		}
		if !k.client.Drain(2) {
			t.Fatal("drain failed")
		}
		k.tick(t, 0.25)
	}
	local, remote := normStats(kits["engine"].client.Stats()), normStats(kits["shardrpc"].client.Stats())
	if !reflect.DeepEqual(local, remote) {
		t.Fatalf("transport changed the simulation:\n engine   %+v\n shardrpc %+v", local, remote)
	}
	if local.Homes != 1 || local.Steps != 5 {
		t.Fatalf("script sanity: %+v, want 1 home, 5 steps", local)
	}
}
