// Package fleet orchestrates many independent Homework homes inside one
// process: the architectural seam between the paper's single-home router
// and the ROADMAP's production-scale, million-user deployment. Each home
// is a full core.Router — its own datapath, NOX controller modules, hwdb
// and simulated network — and since PR 8 the package is two layers with
// a written contract between them (docs/ARCHITECTURE.md "Fleet control
// plane"):
//
//   - Shard-local engines (internal/fleet/engine): each owns a set of
//     homes, the worker pool that steps them, per-home vitals and its
//     own telemetry hub + per-shard folder — no knowledge of global
//     membership.
//   - The placement layer (Coordinator, aliased Fleet): owns home→shard
//     assignment, the spawn/assign/drain/migrate/restart/replace
//     lifecycle and the shared clock, and drives engines through the
//     narrow ShardClient contract. It is the single surface
//     internal/health remediation and cmd/hwfleetd use.
//
// On top, a telemetry.Federation folds the N per-shard hubs into one
// global Folder, so telemetry.Server, hwctl and the soak gate read one
// coherent fleet — same FleetStats view, same exact delivered+lost
// accounting invariant — regardless of shard count. Fleet homes default
// to the in-process control transport (core.TransportInProcess): with
// controller and datapath co-resident there is no reason to pay
// loopback-TCP framing per home, and no per-home socket pair to exhaust
// descriptors at scale.
//
// Concurrency: engines step concurrently, but within a tick each home is
// touched only by its own engine worker, in ascending ID order, and each
// home's control plane settles event-driven inside its step
// (Router.Settle — no polling; see docs/CONTROL_PLANE.md). Drive Step
// from one goroutine at a time; lifecycle calls (AddHome, RemoveHome,
// Migrate, ...) may race Step and take effect at the next tick's plan
// rebuild. Reads (Totals, Telemetry, DB) are safe from any goroutine at
// any time.
package fleet

import (
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/fleet/engine"
)

// Config parameterizes a fleet.
type Config struct {
	// Shards is the number of shard engines; homes are placed on shards
	// by ID modulo Shards, so placement is stable under churn. Engines
	// step concurrently (one worker each by default), so Shards is also
	// the fleet's stepping concurrency. Default min(8, GOMAXPROCS).
	Shards int
	// Workers is each engine's worker-pool width (default 1). Raise it
	// to step one shard's homes concurrently — useful when a few big
	// shards dominate the tick — at the cost of inter-home ordering
	// within the shard being per-worker rather than global.
	Workers int
	// Clock, when set, is shared by every home (pass a *clock.Simulated
	// for deterministic runs; Step advances it by the step interval —
	// the coordinator owns time, engines never advance it).
	Clock clock.Clock
	// Seed derives each home's wireless/churn randomness (home i uses
	// Seed+i), so fleets are reproducible and a home's trajectory does
	// not depend on which shard it lands on.
	Seed int64
	// MeasureEvery is how many fleet steps elapse between hwdb
	// measurement polls in each home (default 1: poll every step).
	MeasureEvery int
	// RingSize bounds the stats view rings — the federated global view
	// and each engine's per-shard view (default DefaultStatsRing).
	RingSize int
	// HomeConfig, when set, mutates each new home's router config after
	// the fleet defaults (AutoPermit, Seed, Clock) are applied.
	HomeConfig func(id uint64, cfg *core.Config)

	// WorkerAddrs switches the fleet to remote shards: one shardrpc
	// worker address per shard (Shards is then len(WorkerAddrs) and
	// Workers/HomeConfig apply worker-side, not here). Homes live in the
	// worker processes, so in-process handles (Home, Homes) are
	// unavailable; lifecycle, stepping, Stats and federated telemetry
	// work identically. See docs/ARCHITECTURE.md "Fleet control plane".
	WorkerAddrs []string
	// StepTimeout bounds each shard's share of a fleet tick — in-process
	// and remote alike — so one wedged shard fails the tick with
	// ErrStepTimeout instead of hanging it (default 0: wait forever for
	// in-process shards; remote shards still enforce the shardrpc
	// client's own call timeout).
	StepTimeout time.Duration
	// CallTimeout bounds each non-Step remote round trip (default 10s);
	// ignored for in-process shards.
	CallTimeout time.Duration

	// onStep observes scheduler activity (tests only): it runs inside
	// the engine worker, before the home is stepped, with the home's
	// shard as the first argument.
	onStep func(shard int, home uint64, step uint64)
}

// Home is one managed Homework deployment; it lives on exactly one shard
// engine at a time.
type Home = engine.Home

// ShardStats is one engine's self-reported state (membership, hub
// accounting, per-shard totals) as surfaced by Coordinator.ShardStats.
type ShardStats = engine.Stats

// watchedTables mirrors the engine's per-home watch set for the fleet's
// own accounting tests.
var watchedTables = engine.WatchedTables()

// WatchedTables returns (a copy of) the per-home table names every
// engine streams into its telemetry hub. External accounting — the chaos
// soak balances delivered+lost against total inserts across every router
// incarnation — iterates exactly this set.
func WatchedTables() []string { return engine.WatchedTables() }
