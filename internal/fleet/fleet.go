// Package fleet orchestrates many independent Homework homes inside one
// process: the architectural seam between the paper's single-home router
// and the ROADMAP's production-scale, million-user deployment. Each home
// is a full core.Router — its own datapath, NOX controller modules, hwdb
// and simulated network — and the fleet drives them through a sharded
// worker pool with deterministic per-home ordering, streams every home's
// hwdb link/flow/lease tables through the push-based telemetry hub into a
// continuously-live fleet-wide FleetStats view, and runs declarative
// scenarios (home count, hosts per home, app mix, churn) so diverse
// workloads are one config away. Fleet homes default to the in-process
// control transport (core.TransportInProcess): with controller and
// datapath co-resident there is no reason to pay loopback-TCP framing per
// home, and no per-home socket pair to exhaust descriptors at scale.
//
// Concurrency: shards step concurrently, but within a tick each home is
// touched only by its own shard, in ascending ID order, and each home's
// control plane settles event-driven inside its step (Router.Settle —
// no polling; see docs/CONTROL_PLANE.md). Drive Step from one goroutine
// at a time; AddHome/RemoveHome may race Step and take effect at the
// next tick's plan rebuild. Reads (Totals, Telemetry, DB) are safe from
// any goroutine at any time.
package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/hwdb"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config parameterizes a fleet.
type Config struct {
	// Shards is the worker-pool width; homes are assigned to shards by
	// ID modulo Shards, so assignment is stable under churn. Default
	// min(8, GOMAXPROCS).
	Shards int
	// Clock, when set, is shared by every home (pass a *clock.Simulated
	// for deterministic runs; Step advances it by the step interval).
	Clock clock.Clock
	// Seed derives each home's wireless/churn randomness (home i uses
	// Seed+i), so fleets are reproducible.
	Seed int64
	// MeasureEvery is how many fleet steps elapse between hwdb
	// measurement polls in each home (default 1: poll every step).
	MeasureEvery int
	// RingSize bounds the fleet-wide stats view's ring (default
	// DefaultStatsRing).
	RingSize int
	// HomeConfig, when set, mutates each new home's router config after
	// the fleet defaults (AutoPermit, Seed, Clock) are applied.
	HomeConfig func(id uint64, cfg *core.Config)

	// onStep observes scheduler activity (tests only): it runs inside
	// the worker, before the home is stepped.
	onStep func(shard int, home uint64, step uint64)
}

// watchedTables are the per-home hwdb tables every home streams into the
// telemetry hub (and unwatches on removal — keep the two in lockstep).
var watchedTables = []string{
	hwdb.TableFlows, hwdb.TableLinks, hwdb.TableLeases, hwdb.TableFlowPerf,
}

// WatchedTables returns (a copy of) the per-home table names the fleet
// streams into its telemetry hub. External accounting — the chaos soak
// balances delivered+lost against total inserts across every router
// incarnation — iterates exactly this set.
func WatchedTables() []string { return append([]string(nil), watchedTables...) }

// Home is one managed Homework deployment within a fleet.
type Home struct {
	ID     uint64
	Name   string
	Router *core.Router

	mu      sync.Mutex
	rng     *rand.Rand
	steps   uint64
	hostSeq uint32

	// cordoned takes the home out of rotation: Step skips it entirely (no
	// traffic, no settle, no measurement poll) while its router and
	// telemetry sources stay live and inspectable. Set by the health
	// remediation loop via Fleet.Cordon.
	cordoned atomic.Bool
	// settleErrs counts Settle failures (quiesce deadline or barrier
	// error) across the home's steps — a health-evaluator vital.
	settleErrs atomic.Uint64
}

// Fleet instantiates and drives N independent Homework homes.
type Fleet struct {
	cfg    Config
	pool   *pool
	hub    *telemetry.Hub
	folder *telemetry.Folder
	base   *onDemand // deprecated fold baseline (benchmark comparisons)
	clk    clock.Clock
	folds  atomic.Uint64

	mu     sync.Mutex
	homes  map[uint64]*Home
	nextID uint64
	steps  uint64
	closed bool
	// plan is the homes-per-shard stepping plan (ascending ID within each
	// shard), rebuilt only when membership changes instead of sorted and
	// repartitioned on every tick.
	plan      [][]*Home
	planDirty bool
}

// New creates an empty fleet; add homes with AddHome/AddHomes.
func New(cfg Config) *Fleet {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
		if cfg.Shards > 8 {
			cfg.Shards = 8
		}
	}
	if cfg.MeasureEvery <= 0 {
		cfg.MeasureEvery = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	// The hub runs manual: Step flushes it after every barrier, so
	// delivery is deterministic under a simulated clock and there is no
	// background goroutine racing the shards.
	hub := telemetry.NewHub(telemetry.HubConfig{Manual: true})
	return &Fleet{
		cfg:    cfg,
		pool:   newPool(cfg.Shards),
		hub:    hub,
		folder: telemetry.NewFolder(hub, telemetry.FolderConfig{Clock: clk, ViewRing: cfg.RingSize}),
		base:   newOnDemand(),
		clk:    clk,
		homes:  make(map[uint64]*Home),
	}
}

// Shards returns the worker-pool width.
func (f *Fleet) Shards() int { return f.cfg.Shards }

// Size returns the number of live homes.
func (f *Fleet) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.homes)
}

// Steps returns how many fleet ticks have run.
func (f *Fleet) Steps() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.steps
}

// AddHome brings up one more home and returns it. The home's router runs
// with AutoPermit (fleet homes have no per-home operator) and without the
// per-home hwdb RPC server — the fleet's aggregated view stands in for it.
func (f *Fleet) AddHome() (*Home, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, errors.New("fleet: closed")
	}
	id := f.nextID
	f.nextID++
	f.mu.Unlock()
	return f.addHome(id)
}

// AddHomeID brings up a home under a caller-chosen ID — the remediation
// loop's restart path re-creates a home in place after RemoveHome. The ID
// must not be live; the auto-allocation sequence skips past it so later
// AddHome calls cannot collide.
func (f *Fleet) AddHomeID(id uint64) (*Home, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, errors.New("fleet: closed")
	}
	if _, live := f.homes[id]; live {
		f.mu.Unlock()
		return nil, fmt.Errorf("fleet: home %d already live", id)
	}
	if id >= f.nextID {
		f.nextID = id + 1
	}
	f.mu.Unlock()
	return f.addHome(id)
}

// addHome builds, starts and registers the home for an already-reserved
// ID; the telemetry hub re-watching a previously-used SourceID retires
// the old source (with a final drain) before the new one attaches, so
// churn and in-place restarts never leak or double-count watch state.
func (f *Fleet) addHome(id uint64) (*Home, error) {
	cfg := core.DefaultConfig()
	cfg.AutoPermit = true
	cfg.DisableRPC = true
	cfg.Seed = f.cfg.Seed + int64(id)
	if f.cfg.Clock != nil {
		cfg.Clock = f.cfg.Clock
	}
	if f.cfg.HomeConfig != nil {
		f.cfg.HomeConfig(id, &cfg)
	}
	rt, err := core.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("fleet: home %d: %w", id, err)
	}
	if err := rt.Start(); err != nil {
		rt.Stop()
		return nil, fmt.Errorf("fleet: home %d: %w", id, err)
	}
	h := &Home{
		ID:     id,
		Name:   fmt.Sprintf("home-%d", id),
		Router: rt,
		rng:    rand.New(rand.NewSource(f.cfg.Seed + int64(id))),
	}

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		rt.Stop()
		return nil, errors.New("fleet: closed")
	}
	if _, dup := f.homes[id]; dup {
		f.mu.Unlock()
		rt.Stop()
		return nil, fmt.Errorf("fleet: home %d already live", id)
	}
	f.homes[id] = h
	f.planDirty = true
	f.mu.Unlock()

	// Feed the home's measurement tables into the telemetry hub: from
	// here on, every hwdb insert streams into the live fleet view.
	f.folder.AddHome(id, rt.Net.HostCount)
	for _, name := range watchedTables {
		if t, ok := rt.DB.Table(name); ok {
			f.hub.Watch(telemetry.SourceID{Home: id, Table: name}, t)
		}
	}
	return h, nil
}

// AddHomes brings up n homes concurrently (bring-up is dominated by each
// home's controller join handshake, so parallelism matters at fleet
// scale). Homes that fail to start are reported but do not abort the
// rest; the successfully started homes are returned in ID order.
func (f *Fleet) AddHomes(n int) ([]*Home, error) {
	out := make([]*Home, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, f.cfg.Shards*2)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i], errs[i] = f.AddHome()
		}(i)
	}
	wg.Wait()
	homes := make([]*Home, 0, n)
	for _, h := range out {
		if h != nil {
			homes = append(homes, h)
		}
	}
	sort.Slice(homes, func(i, j int) bool { return homes[i].ID < homes[j].ID })
	return homes, errors.Join(errs...)
}

// Home returns a live home by ID.
func (f *Fleet) Home(id uint64) (*Home, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	h, ok := f.homes[id]
	return h, ok
}

// Homes returns the live homes in ascending ID order — the same order
// each worker shard steps its subset in.
func (f *Fleet) Homes() []*Home {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.orderedLocked()
}

func (f *Fleet) orderedLocked() []*Home {
	out := make([]*Home, 0, len(f.homes))
	for _, h := range f.homes {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RemoveHome tears one home down. The router stops first, then the hub
// drains whatever its tables still held (so the rows land in the fleet
// cumulative totals before the sources retire), and only then is the
// home's per-home telemetry state dropped. Its contribution to the fleet
// totals and its committed view rows remain.
func (f *Fleet) RemoveHome(id uint64) bool {
	f.mu.Lock()
	h, ok := f.homes[id]
	if ok {
		delete(f.homes, id)
		f.planDirty = true
	}
	f.mu.Unlock()
	if !ok {
		return false
	}
	h.Router.Stop()
	for _, name := range watchedTables {
		f.hub.Unwatch(telemetry.SourceID{Home: id, Table: name})
	}
	f.folder.RemoveHome(id)
	f.base.forget(id)
	return true
}

// Cordon takes a home out of rotation: subsequent Steps skip it (no
// traffic, no settle, no measurement poll) while its router and telemetry
// sources stay live, so a sick home stops consuming its shard's step
// budget but remains inspectable. Returns false if the home is not live.
func (f *Fleet) Cordon(id uint64) bool {
	h, ok := f.Home(id)
	if !ok {
		return false
	}
	h.cordoned.Store(true)
	return true
}

// Uncordon returns a cordoned home to rotation. Returns false if the home
// is not live.
func (f *Fleet) Uncordon(id uint64) bool {
	h, ok := f.Home(id)
	if !ok {
		return false
	}
	h.cordoned.Store(false)
	return true
}

// RestartHome tears the home's router down and brings a fresh one up
// under the same ID — the remediation loop's "turn it off and on again".
// The old incarnation's telemetry sources are retired with a final drain
// (their rows stay accounted) and the new incarnation re-watches the same
// SourceIDs; the new home comes back uncordoned with zeroed vitals.
func (f *Fleet) RestartHome(id uint64) (*Home, error) {
	if !f.RemoveHome(id) {
		return nil, fmt.Errorf("fleet: no home %d", id)
	}
	return f.AddHomeID(id)
}

// ReplaceHome retires the home entirely and brings up a brand-new one
// under a fresh ID — the remediation loop's escalation when restarting in
// place did not cure the home. The caller learns the successor from the
// returned Home.
func (f *Fleet) ReplaceHome(id uint64) (*Home, error) {
	if !f.RemoveHome(id) {
		return nil, fmt.Errorf("fleet: no home %d", id)
	}
	return f.AddHome()
}

// Step advances the whole fleet by dt simulated seconds: every home's
// traffic applications emit, its control path drains (Router.Settle —
// an event-driven wait on the punt/processed epoch, not a poll; see
// docs/CONTROL_PLANE.md), and (every MeasureEvery-th step) its
// measurement plane polls flow and link state into its hwdb. Homes are partitioned across the worker shards by ID
// modulo Shards and each shard steps its homes in ascending ID order, so
// the per-home step sequence is deterministic regardless of scheduling.
// If the fleet shares a simulated clock, it is advanced by dt after the
// barrier.
func (f *Fleet) Step(dt float64) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return errors.New("fleet: closed")
	}
	f.steps++
	step := f.steps
	if f.plan == nil || f.planDirty {
		f.plan = make([][]*Home, f.cfg.Shards)
		for _, h := range f.orderedLocked() {
			s := shardOf(h.ID, f.cfg.Shards)
			f.plan[s] = append(f.plan[s], h)
		}
		f.planDirty = false
	}
	byShard := f.plan
	f.mu.Unlock()

	errs := make([]error, f.cfg.Shards)
	var wg sync.WaitGroup
	for si, hs := range byShard {
		if len(hs) == 0 {
			continue
		}
		si, hs := si, hs
		wg.Add(1)
		f.pool.submit(si, func() {
			defer wg.Done()
			for _, h := range hs {
				if h.cordoned.Load() {
					continue
				}
				if f.cfg.onStep != nil {
					f.cfg.onStep(si, h.ID, step)
				}
				if err := h.step(dt, f.cfg.MeasureEvery); err != nil && errs[si] == nil {
					errs[si] = fmt.Errorf("fleet: home %d: %w", h.ID, err)
				}
			}
		})
	}
	wg.Wait()

	if sim, ok := f.cfg.Clock.(*clock.Simulated); ok {
		sim.Advance(time.Duration(dt * float64(time.Second)))
	}
	// Stream this step's measurement rows into the live fleet view: a
	// read of Totals()/Rates()/DB() immediately after Step reflects the
	// rows this step inserted, without any fold pass.
	f.Sync()
	return errors.Join(errs...)
}

// Sync flushes the telemetry hub (delivering every row whose insert
// completed) and commits one FleetStats view row per active home. Step
// calls it after every barrier; call it directly after out-of-band
// inserts (e.g. a manual PollMeasure) before reading the view.
func (f *Fleet) Sync() {
	f.hub.Flush()
	f.folder.Commit()
}

// Aggregate snapshots the fleet-wide delta since the previous Aggregate
// call. Unlike the PR-1 fold it does not scan any home's rings: the
// telemetry folder maintained the running deltas as rows streamed in, so
// this is a Sync plus a per-home counter swap.
func (f *Fleet) Aggregate() FleetSnapshot {
	f.Sync()
	folds := f.folds.Add(1)
	ps := f.folder.TakePeriod()
	return snapshotFromPeriod(f.clk.Now(), ps, folds)
}

// FoldOnDemand runs the PR-1 on-demand fold pass over every home's rings
// with its own cursors and returns what it read since its last call.
//
// Deprecated: the live telemetry path (Aggregate/Totals/DB) replaces it;
// it is kept as the measured baseline for BenchmarkFleetTelemetry and
// BenchmarkFleetAggregate. It does not touch the FleetStats view.
func (f *Fleet) FoldOnDemand() FleetSnapshot {
	return f.base.fold(f.Homes(), f.clk.Now())
}

// DB returns the fleet-wide hwdb holding the continuously-maintained
// FleetStats view; query it with the same CQL the per-home interfaces
// use, e.g.
//
//	SELECT home, sum(bytes) FROM FleetStats GROUP BY home
func (f *Fleet) DB() *hwdb.DB { return f.folder.View() }

// Totals returns the cumulative fleet-wide counters. They are maintained
// live by the telemetry folder; the read is O(1) — no ring is scanned and
// no home is visited. Hosts is as of the latest Sync/Step commit.
func (f *Fleet) Totals() FleetTotals { return f.totals() }

func (f *Fleet) totals() FleetTotals {
	t := f.folder.Totals()
	return FleetTotals{
		Folds:   f.folds.Load(),
		Homes:   t.Homes,
		Hosts:   t.Hosts,
		Flows:   t.Flows,
		Packets: t.Packets,
		Bytes:   t.Bytes,
		Links:   t.Links,
		Lost:    t.Lost,
	}
}

// Telemetry exposes the live folder: windowed per-home and per-device
// rates, per-home cumulative totals, and the view database. The
// telemetry.Server streaming endpoint is built over it.
func (f *Fleet) Telemetry() *telemetry.Folder { return f.folder }

// TraceStats merges every live home's punt-lifecycle trace histograms
// into one fleet-wide per-stage latency summary (p50/p99/max/mean per
// contract transition). Homes built with core.Config.DisableTrace
// contribute nothing. Safe to call from any goroutine, concurrently with
// Step: snapshots read the tracers' atomics, never their locks.
func (f *Fleet) TraceStats() []trace.StageStats {
	var merged trace.Snapshot
	for _, h := range f.Homes() {
		if t := h.Router.Tracer; t != nil {
			merged.Merge(t.Snapshot())
		}
	}
	return merged.Stats()
}

// Hub exposes the fleet's subscription hub, e.g. to attach additional
// delta subscribers or read delivery/loss accounting.
func (f *Fleet) Hub() *telemetry.Hub { return f.hub }

// Stop tears every home down, closes the telemetry hub and releases the
// worker pool.
func (f *Fleet) Stop() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	homes := f.orderedLocked()
	f.homes = make(map[uint64]*Home)
	f.plan, f.planDirty = nil, true
	f.mu.Unlock()

	var wg sync.WaitGroup
	for _, h := range homes {
		wg.Add(1)
		go func(h *Home) {
			defer wg.Done()
			h.Router.Stop()
		}(h)
	}
	wg.Wait()
	f.hub.Close()
	f.pool.close()
}

// ---------------------------------------------------------------- homes

// step advances one home by dt simulated seconds: traffic in, then a
// blocking event-driven wait for the home's control path to drain (no
// sleeps — Settle returns the moment the controller catches up and a
// clean barrier crosses), then the optional measurement poll.
func (h *Home) step(dt float64, measureEvery int) error {
	h.mu.Lock()
	h.steps++
	poll := measureEvery > 0 && h.steps%uint64(measureEvery) == 0
	h.mu.Unlock()

	h.Router.Net.Step(dt)
	if err := h.Router.Settle(); err != nil {
		h.settleErrs.Add(1)
		return err
	}
	if poll {
		h.Router.PollMeasure()
	}
	return nil
}

// Cordoned reports whether the home is currently out of rotation.
func (h *Home) Cordoned() bool { return h.cordoned.Load() }

// SettleErrs returns how many of the home's steps failed to settle (the
// control path missed its quiescence deadline or a barrier failed) over
// this router incarnation — a health-evaluator vital.
func (h *Home) SettleErrs() uint64 { return h.settleErrs.Load() }

// PuntLag returns the home's current punt-credit backlog: packet-ins the
// datapath has punted that the controller has not yet dispatched. A
// healthy idle home reads 0; a wedged controller grows it without bound.
func (h *Home) PuntLag() uint64 {
	punted, processed := h.Router.Datapath.Quiesce().Counts()
	if processed > punted {
		return 0
	}
	return punted - processed
}

// Steps returns how many fleet ticks have stepped this home.
func (h *Home) Steps() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.steps
}

// Rand returns the home's deterministic randomness source (churn and
// workload decisions draw from it so runs replay from the fleet seed).
// Not safe for concurrent use across goroutines; the scenario runner
// only touches it from the home's own shard.
func (h *Home) Rand() *rand.Rand { return h.rng }

// NextMAC allocates a fleet-unique MAC for the home's next host:
// 02:HH:HH:HH:SS:SS from the home ID and a per-home sequence number.
func (h *Home) NextMAC() packet.MAC {
	h.mu.Lock()
	h.hostSeq++
	seq := h.hostSeq
	h.mu.Unlock()
	return packet.MAC{
		0x02, byte(h.ID >> 16), byte(h.ID >> 8), byte(h.ID),
		byte(seq >> 8), byte(seq),
	}
}

// Join adds a host to the home's network and runs it through DHCP.
func (h *Home) Join(name string, wireless bool, pos netsim.Pos) (*netsim.Host, error) {
	mac := h.NextMAC()
	if name == "" {
		name = fmt.Sprintf("%s-dev-%s", h.Name, mac)
	}
	host, err := h.Router.Net.AddHost(name, mac, wireless, pos)
	if err != nil {
		return nil, err
	}
	if err := h.Router.JoinHost(host); err != nil {
		return nil, err
	}
	if !host.Bound() {
		return nil, fmt.Errorf("fleet: %s: host %s did not bind", h.Name, mac)
	}
	return host, nil
}

// Leave releases a host's lease and detaches it from the home network.
func (h *Home) Leave(host *netsim.Host) error {
	host.Release()
	if err := h.Router.Settle(); err != nil {
		return err
	}
	return h.Router.Net.RemoveHost(host.MAC)
}
