package fleet

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/hwdb"
	"repro/internal/netsim"
	"repro/internal/packet"
)

// AppMix is one entry of a scenario's workload mix: which traffic
// profile, at what rate, with what relative weight when hosts draw their
// applications.
type AppMix struct {
	App     string  `json:"app"`      // web | video | voip | p2p | iot | dns
	RateBps int     `json:"rate_bps"` // payload rate per host running it
	Weight  float64 `json:"weight"`   // relative draw probability
}

// Scenario declares a fleet workload: how many homes, how they are
// populated, what their devices do, and how long to run. Scenarios load
// from JSON so new workloads are one config file away.
type Scenario struct {
	Name         string   `json:"name"`
	Homes        int      `json:"homes"`
	HostsPerHome int      `json:"hosts_per_home"`
	Shards       int      `json:"shards,omitempty"` // 0: fleet default
	AppMix       []AppMix `json:"app_mix"`
	// WirelessFrac is the fraction of hosts on WiFi (the rest are wired).
	WirelessFrac float64 `json:"wireless_frac"`
	// ChurnPerMin is the expected number of churn events (one host
	// leaves, a new one joins) per home per simulated minute.
	ChurnPerMin float64 `json:"churn_per_min"`
	DurationSec float64 `json:"duration_sec"`
	StepSec     float64 `json:"step_sec"`
	// AggEverySec is the fleet aggregation period (default: every 1s of
	// simulated time, rounded to a whole number of steps).
	AggEverySec float64 `json:"agg_every_sec,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
}

// DefaultScenario is a small mixed-workload fleet: the hwfleetd default.
func DefaultScenario() Scenario {
	return Scenario{
		Name:         "default",
		Homes:        8,
		HostsPerHome: 3,
		AppMix: []AppMix{
			{App: "web", RateBps: 40_000, Weight: 4},
			{App: "video", RateBps: 250_000, Weight: 2},
			{App: "voip", RateBps: 12_000, Weight: 1},
			{App: "iot", RateBps: 2_000, Weight: 2},
		},
		WirelessFrac: 0.5,
		ChurnPerMin:  2,
		DurationSec:  10,
		StepSec:      0.25,
		AggEverySec:  1,
		Seed:         1,
	}
}

// LoadScenario reads a scenario JSON file; absent fields keep the
// DefaultScenario values, so files only state what they change.
func LoadScenario(path string) (Scenario, error) {
	s := DefaultScenario()
	raw, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(raw, &s); err != nil {
		return s, fmt.Errorf("fleet: parsing scenario %s: %w", path, err)
	}
	return s, s.Validate()
}

// Validate rejects impossible scenarios.
func (s Scenario) Validate() error {
	switch {
	case s.Homes <= 0:
		return fmt.Errorf("fleet: scenario needs homes > 0, got %d", s.Homes)
	case s.HostsPerHome < 0:
		return fmt.Errorf("fleet: hosts_per_home < 0")
	case s.StepSec <= 0:
		return fmt.Errorf("fleet: step_sec must be > 0, got %g", s.StepSec)
	case s.DurationSec < s.StepSec:
		return fmt.Errorf("fleet: duration_sec %g shorter than one step %g", s.DurationSec, s.StepSec)
	case s.WirelessFrac < 0 || s.WirelessFrac > 1:
		return fmt.Errorf("fleet: wireless_frac must be in [0,1], got %g", s.WirelessFrac)
	case s.ChurnPerMin < 0:
		return fmt.Errorf("fleet: churn_per_min < 0")
	}
	for _, m := range s.AppMix {
		if _, err := appKind(m.App); err != nil {
			return err
		}
		if m.Weight < 0 {
			return fmt.Errorf("fleet: app %q has negative weight", m.App)
		}
	}
	return nil
}

func appKind(name string) (netsim.AppKind, error) {
	switch name {
	case "web":
		return netsim.AppWeb, nil
	case "video":
		return netsim.AppVideo, nil
	case "voip":
		return netsim.AppVoIP, nil
	case "p2p":
		return netsim.AppP2P, nil
	case "iot":
		return netsim.AppIoT, nil
	case "dns":
		return netsim.AppDNS, nil
	}
	return 0, fmt.Errorf("fleet: unknown app %q", name)
}

// Report summarizes a scenario run.
type Report struct {
	Scenario   string
	Homes      int
	Shards     int
	Steps      uint64
	SimSeconds float64
	Wall       time.Duration
	Churned    int // churn events executed
	Totals     FleetTotals
	// TopHomes lists the busiest homes by folded bytes, from the
	// fleet-wide FleetStats view (at most 5).
	TopHomes []HomeStats
}

// Runner executes a scenario against a fleet it owns.
type Runner struct {
	Scenario Scenario
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
	// OnFleet, when set, runs once the fleet is up and populated, before
	// the step loop — the hook daemons use to attach live consumers such
	// as the streaming telemetry endpoint (see cmd/hwfleetd -stats).
	OnFleet func(*Fleet)

	fleet   *Fleet
	hosts   map[uint64][]*netsim.Host
	churned int
}

// NewRunner validates the scenario and prepares a runner.
func NewRunner(s Scenario) (*Runner, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Runner{Scenario: s, hosts: make(map[uint64][]*netsim.Host)}, nil
}

// Fleet returns the runner's fleet (valid during and after Run).
func (r *Runner) Fleet() *Fleet { return r.fleet }

// Close tears the runner's fleet down (idempotent; safe if Run failed).
func (r *Runner) Close() {
	if r.fleet != nil {
		r.fleet.Stop()
	}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Run builds the fleet, populates every home per the scenario, drives the
// step loop with churn and periodic aggregation, and reports. On success
// the fleet stays up (query it via Fleet().DB()) until Close; on error it
// is torn down.
func (r *Runner) Run() (rep *Report, err error) {
	s := r.Scenario
	start := time.Now()
	r.fleet = New(Config{Shards: s.Shards, Seed: s.Seed})
	defer func() {
		if err != nil {
			r.fleet.Stop()
		}
	}()

	r.logf("bringing up %d homes (%d shards)...", s.Homes, r.fleet.Shards())
	homes, err := r.fleet.AddHomes(s.Homes)
	if err != nil {
		return nil, err
	}
	for _, h := range homes {
		registerZones(h)
		for i := 0; i < s.HostsPerHome; i++ {
			if err := r.populate(h); err != nil {
				return nil, err
			}
		}
	}
	r.logf("fleet up: %d homes, %d hosts each, app mix %v", len(homes), s.HostsPerHome, s.AppMix)
	if r.OnFleet != nil {
		r.OnFleet(r.fleet)
	}

	// Round: 4.8/0.1 is 47.999... in float64 and must still be 48 steps.
	steps := int(math.Round(s.DurationSec / s.StepSec))
	aggEvery := 1
	if s.AggEverySec > 0 && s.AggEverySec > s.StepSec {
		aggEvery = int(math.Round(s.AggEverySec / s.StepSec))
	}
	churnProb := s.ChurnPerMin / 60 * s.StepSec
	for i := 1; i <= steps; i++ {
		if err := r.fleet.Step(s.StepSec); err != nil {
			return nil, err
		}
		for _, h := range r.fleet.Homes() {
			if churnProb > 0 && h.Rand().Float64() < churnProb {
				if err := r.churn(h); err != nil {
					return nil, err
				}
			}
		}
		if i%aggEvery == 0 || i == steps {
			snap := r.fleet.Aggregate()
			r.logf("t=%5.1fs  homes=%d hosts=%d  +%d flows  +%s",
				float64(i)*s.StepSec, snap.FleetTotals.Homes, snap.FleetTotals.Hosts,
				snap.Flows, byteCount(snap.Bytes))
		}
	}

	rep = &Report{
		Scenario:   s.Name,
		Homes:      r.fleet.Size(),
		Shards:     r.fleet.Shards(),
		Steps:      r.fleet.Steps(),
		SimSeconds: float64(steps) * s.StepSec,
		Wall:       time.Since(start),
		Churned:    r.churned,
		Totals:     r.fleet.Totals(),
		TopHomes:   topHomes(r.fleet.DB(), 5),
	}
	return rep, nil
}

// SetupHome populates one home per the scenario — upstream zones plus
// HostsPerHome hosts with apps drawn from the mix by the home's own
// deterministic RNG. It is the worker-side population hook: a remote
// hwfleetd worker passes it as engine.Config.OnAssign, so a home comes up
// identically whether the coordinator holds its handle or only its ID.
func (s Scenario) SetupHome(h *Home) error {
	registerZones(h)
	rng := h.Rand()
	for i := 0; i < s.HostsPerHome; i++ {
		wireless := rng.Float64() < s.WirelessFrac
		pos := netsim.Pos{X: 1 + rng.Float64()*9, Y: rng.Float64() * 6}
		host, err := h.Join("", wireless, pos)
		if err != nil {
			return err
		}
		if m, ok := drawMix(s.AppMix, rng.Float64()); ok {
			kind, _ := appKind(m.App)
			host.AddApp(netsim.NewApp(kind, zoneFor(m.App), m.RateBps))
		}
	}
	return nil
}

// populate attaches one host with an app drawn from the scenario mix.
func (r *Runner) populate(h *Home) error {
	s := r.Scenario
	rng := h.Rand()
	wireless := rng.Float64() < s.WirelessFrac
	pos := netsim.Pos{X: 1 + rng.Float64()*9, Y: rng.Float64() * 6}
	host, err := h.Join("", wireless, pos)
	if err != nil {
		return err
	}
	if m, ok := drawMix(s.AppMix, rng.Float64()); ok {
		kind, _ := appKind(m.App)
		host.AddApp(netsim.NewApp(kind, zoneFor(m.App), m.RateBps))
	}
	r.hosts[h.ID] = append(r.hosts[h.ID], host)
	return nil
}

// churn replaces one random host in the home: the device leaves (lease
// released, port detached) and a brand-new one joins and starts traffic.
func (r *Runner) churn(h *Home) error {
	hosts := r.hosts[h.ID]
	if len(hosts) == 0 {
		return nil
	}
	i := h.Rand().Intn(len(hosts))
	victim := hosts[i]
	hosts[i] = hosts[len(hosts)-1]
	r.hosts[h.ID] = hosts[:len(hosts)-1]
	if err := h.Leave(victim); err != nil {
		return err
	}
	r.churned++
	return r.populate(h)
}

// drawMix picks a mix entry by weight from a uniform draw in [0,1).
func drawMix(mix []AppMix, u float64) (AppMix, bool) {
	var total float64
	for _, m := range mix {
		total += m.Weight
	}
	if total <= 0 {
		return AppMix{}, false
	}
	target := u * total
	for _, m := range mix {
		target -= m.Weight
		if target < 0 {
			return m, true
		}
	}
	return mix[len(mix)-1], true
}

// zoneFor names the upstream service a profile talks to.
func zoneFor(app string) string { return "svc-" + app + ".example" }

// registerZones gives every app profile a resolvable upstream name in
// this home, so scenario traffic exercises the DNS proxy path.
func registerZones(h *Home) {
	for i, app := range []string{"web", "video", "voip", "p2p", "iot", "dns"} {
		h.Router.Upstream.AddZone(zoneFor(app), packet.IP4{203, 0, 113, byte(10 + i)})
	}
}

// topHomes queries the fleet view for the busiest homes by folded bytes.
func topHomes(db *hwdb.DB, n int) []HomeStats {
	res, err := db.Query("SELECT home, sum(bytes), sum(flows) FROM FleetStats GROUP BY home")
	if err != nil {
		return nil
	}
	out := make([]HomeStats, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, HomeStats{
			Home:  uint64(row[0].Int),
			Bytes: uint64(row[1].AsFloat()),
			Flows: int(row[2].AsFloat()),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bytes > out[j].Bytes })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// byteCount renders a byte total human-readably.
func byteCount(b uint64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := uint64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}
