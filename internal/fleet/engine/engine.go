// Package engine is the shard-local half of the fleet control plane: an
// Engine owns a set of homes (each a full core.Router), the worker pool
// that steps them, per-home vitals, and its own telemetry hub + folder —
// and nothing else. It has no knowledge of global membership, placement
// or remediation policy; those live in the fleet coordinator, which
// drives engines through the narrow fleet.ShardClient contract
// (assign/drain/step/sync/stats) so the later network hop between
// coordinator and engine is a transport swap, not another refactor. See
// docs/ARCHITECTURE.md "Fleet control plane".
//
// Concurrency: one engine's workers step disjoint home subsets
// concurrently, but within a tick each home is touched only by its own
// worker, in ascending ID order. Drive Step from one goroutine at a
// time; Assign/Drain may race Step and take effect at the next tick's
// plan rebuild. Reads (Stats, Folder, Hub) are safe from any goroutine.
package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config parameterizes one shard engine.
type Config struct {
	// Index is this engine's shard number in the fleet — used only to
	// label stats and scheduler observations; the engine itself is
	// placement-blind.
	Index int
	// Workers is the engine's worker-pool width; homes are assigned to
	// workers by ID modulo Workers, so assignment is stable under churn.
	// Default 1: the engine steps its homes sequentially and fleet-level
	// concurrency comes from stepping engines in parallel.
	Workers int
	// Clock, when set, is shared by every home (pass a *clock.Simulated
	// for deterministic runs; the coordinator advances it, not the
	// engine — an engine must not move time the other shards share).
	Clock clock.Clock
	// Seed derives each home's wireless/churn randomness (home i uses
	// Seed+i) — the fleet-global seed, so a home's trajectory does not
	// depend on which shard it lands on.
	Seed int64
	// MeasureEvery is how many steps elapse between hwdb measurement
	// polls in each home (default 1: poll every step).
	MeasureEvery int
	// ViewRing bounds this engine's per-shard FleetStats view ring
	// (default telemetry.DefaultViewRing).
	ViewRing int
	// HomeConfig, when set, mutates each new home's router config after
	// the engine defaults (AutoPermit, Seed, Clock) are applied.
	HomeConfig func(id uint64, cfg *core.Config)
	// OnStep observes scheduler activity (tests only): it runs inside
	// the worker, before the home is stepped, with the engine's Index as
	// the shard argument.
	OnStep func(shard int, home uint64, step uint64)
	// OnAssign, when set, populates each newly assigned home (zones,
	// hosts, apps) after its telemetry tables are watched, so every row
	// the population inserts is accounted. It is how a remote worker —
	// which the coordinator cannot hand Home handles to — seeds scenario
	// state. A non-nil error drains the home again and fails the Assign.
	OnAssign func(h *Home) error
}

// Stats is one engine's self-reported state: how many homes it holds,
// its hub's delivery accounting and its folder's per-shard totals. The
// coordinator's federated view must always reconcile with the sum of
// these.
type Stats struct {
	Shard  int
	Homes  int
	Steps  uint64
	Hub    telemetry.HubStats
	Totals telemetry.Totals
}

// Engine steps a set of homes and streams their telemetry. It is the
// in-process implementation of the fleet.ShardClient contract.
type Engine struct {
	cfg    Config
	pool   *pool
	hub    *telemetry.Hub
	folder *telemetry.Folder
	clk    clock.Clock

	mu     sync.Mutex
	homes  map[uint64]*Home
	steps  uint64
	closed bool
	// plan is the homes-per-worker stepping plan (ascending ID within
	// each worker), rebuilt only when membership changes instead of
	// sorted and repartitioned on every tick.
	plan      [][]*Home
	planDirty bool
}

// New creates an empty engine; the coordinator assigns homes to it.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MeasureEvery <= 0 {
		cfg.MeasureEvery = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	// The hub runs manual: Sync flushes it after every step barrier, so
	// delivery is deterministic under a simulated clock and there is no
	// background goroutine racing the workers.
	hub := telemetry.NewHub(telemetry.HubConfig{Manual: true})
	return &Engine{
		cfg:    cfg,
		pool:   newPool(cfg.Workers),
		hub:    hub,
		folder: telemetry.NewFolder(hub, telemetry.FolderConfig{Clock: clk, ViewRing: cfg.ViewRing}),
		clk:    clk,
		homes:  make(map[uint64]*Home),
	}
}

// Index returns the engine's shard number.
func (e *Engine) Index() int { return e.cfg.Index }

// Size returns the number of homes the engine holds.
func (e *Engine) Size() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.homes)
}

// Assign builds, starts and registers a home under id. The home's router
// runs with AutoPermit (fleet homes have no per-home operator) and
// without the per-home hwdb RPC server — the fleet's aggregated view
// stands in for it. The telemetry hub re-watching a previously-used
// SourceID retires the old source (with a final drain) before the new
// one attaches, so churn, in-place restarts and migrations never leak or
// double-count watch state.
func (e *Engine) Assign(id uint64) error {
	cfg := core.DefaultConfig()
	cfg.AutoPermit = true
	cfg.DisableRPC = true
	cfg.Seed = e.cfg.Seed + int64(id)
	if e.cfg.Clock != nil {
		cfg.Clock = e.cfg.Clock
	}
	if e.cfg.HomeConfig != nil {
		e.cfg.HomeConfig(id, &cfg)
	}
	rt, err := core.New(cfg)
	if err != nil {
		return fmt.Errorf("fleet: home %d: %w", id, err)
	}
	if err := rt.Start(); err != nil {
		rt.Stop()
		return fmt.Errorf("fleet: home %d: %w", id, err)
	}
	h := &Home{
		ID:     id,
		Name:   fmt.Sprintf("home-%d", id),
		Router: rt,
		rng:    rand.New(rand.NewSource(e.cfg.Seed + int64(id))),
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		rt.Stop()
		return errors.New("fleet: engine closed")
	}
	if _, dup := e.homes[id]; dup {
		e.mu.Unlock()
		rt.Stop()
		return fmt.Errorf("fleet: home %d already live", id)
	}
	e.homes[id] = h
	e.planDirty = true
	e.mu.Unlock()

	// Feed the home's measurement tables into the telemetry hub: from
	// here on, every hwdb insert streams into the live shard view (and,
	// through the coordinator's federation, the global one).
	e.folder.AddHome(id, rt.Net.HostCount)
	for _, name := range watchedTables {
		if t, ok := rt.DB.Table(name); ok {
			e.hub.Watch(telemetry.SourceID{Home: id, Table: name}, t)
		}
	}
	if e.cfg.OnAssign != nil {
		if err := e.cfg.OnAssign(h); err != nil {
			e.Drain(id)
			return fmt.Errorf("fleet: home %d: populate: %w", id, err)
		}
	}
	return nil
}

// Drain tears one home down. The router stops first, then the hub drains
// whatever its tables still held (so the rows land in the shard's
// cumulative totals — and the federation's — before the sources retire),
// and only then is the home's per-home telemetry state dropped. Its
// contribution to the totals and its committed view rows remain. This is
// the settle + final-flush + retire-accounting half of every lifecycle
// transition: remove, restart, replace and migrate all start here.
func (e *Engine) Drain(id uint64) bool {
	e.mu.Lock()
	h, ok := e.homes[id]
	if ok {
		delete(e.homes, id)
		e.planDirty = true
	}
	e.mu.Unlock()
	if !ok {
		return false
	}
	h.Router.Stop()
	for _, name := range watchedTables {
		e.hub.Unwatch(telemetry.SourceID{Home: id, Table: name})
	}
	e.folder.RemoveHome(id)
	return true
}

// Cordon takes a home out of rotation: subsequent Steps skip it (no
// traffic, no settle, no measurement poll) while its router and
// telemetry sources stay live, so a sick home stops consuming its
// worker's step budget but remains inspectable. Returns false if the
// home is not on this engine.
func (e *Engine) Cordon(id uint64) bool {
	h, ok := e.Home(id)
	if !ok {
		return false
	}
	h.cordoned.Store(true)
	return true
}

// Uncordon returns a cordoned home to rotation. Returns false if the
// home is not on this engine.
func (e *Engine) Uncordon(id uint64) bool {
	h, ok := e.Home(id)
	if !ok {
		return false
	}
	h.cordoned.Store(false)
	return true
}

// Home returns one of the engine's homes by ID. In-process only: remote
// shard clients will expose vitals through Stats instead.
func (e *Engine) Home(id uint64) (*Home, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	h, ok := e.homes[id]
	return h, ok
}

// Homes returns the engine's homes in ascending ID order — the same
// order each worker steps its subset in.
func (e *Engine) Homes() []*Home {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.orderedLocked()
}

func (e *Engine) orderedLocked() []*Home {
	out := make([]*Home, 0, len(e.homes))
	for _, h := range e.homes {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Step advances every home the engine holds by dt simulated seconds:
// traffic emits, each control path drains (Router.Settle — an
// event-driven wait on the punt/processed epoch, not a poll; see
// docs/CONTROL_PLANE.md), and (every MeasureEvery-th step) each
// measurement plane polls flow and link state into its hwdb. Homes are
// partitioned across the workers by ID modulo Workers and each worker
// steps its homes in ascending ID order, so the per-home step sequence
// is deterministic regardless of scheduling. Step is a pure barrier: it
// does not advance any shared clock and does not flush telemetry — the
// coordinator owns both, once per fleet tick across all shards.
func (e *Engine) Step(dt float64) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return errors.New("fleet: engine closed")
	}
	e.steps++
	step := e.steps
	if e.plan == nil || e.planDirty {
		e.plan = make([][]*Home, e.cfg.Workers)
		for _, h := range e.orderedLocked() {
			w := workerOf(h.ID, e.cfg.Workers)
			e.plan[w] = append(e.plan[w], h)
		}
		e.planDirty = false
	}
	byWorker := e.plan
	e.mu.Unlock()

	errs := make([]error, e.cfg.Workers)
	var wg sync.WaitGroup
	for wi, hs := range byWorker {
		if len(hs) == 0 {
			continue
		}
		wi, hs := wi, hs
		wg.Add(1)
		e.pool.submit(wi, func() {
			defer wg.Done()
			for _, h := range hs {
				if h.cordoned.Load() {
					continue
				}
				if e.cfg.OnStep != nil {
					e.cfg.OnStep(e.cfg.Index, h.ID, step)
				}
				if err := h.step(dt, e.cfg.MeasureEvery); err != nil && errs[wi] == nil {
					errs[wi] = fmt.Errorf("fleet: home %d: %w", h.ID, err)
				}
			}
		})
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Sync flushes the engine's telemetry hub (delivering every row whose
// insert completed) and commits one per-shard FleetStats view row per
// active home. The coordinator calls it after every step barrier, in
// shard order, so federated fan-out stays deterministic.
func (e *Engine) Sync() {
	e.hub.Flush()
	e.folder.Commit()
}

// Steps returns how many ticks the engine has run.
func (e *Engine) Steps() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.steps
}

// Stats reports the engine's membership, stepping and telemetry
// accounting. Hub.Delivered+Hub.Lost covers every row any of the
// engine's home incarnations ever inserted (including drained ones).
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	homes, steps := len(e.homes), e.steps
	e.mu.Unlock()
	return Stats{
		Shard:  e.cfg.Index,
		Homes:  homes,
		Steps:  steps,
		Hub:    e.hub.Stats(),
		Totals: e.folder.Totals(),
	}
}

// TraceSnapshot merges the punt-lifecycle trace histograms of every home
// the engine currently holds. Homes built with core.Config.DisableTrace
// contribute nothing. Safe to call concurrently with Step: snapshots
// read the tracers' atomics, never their locks.
func (e *Engine) TraceSnapshot() trace.Snapshot {
	var merged trace.Snapshot
	for _, h := range e.Homes() {
		if t := h.Router.Tracer; t != nil {
			merged.Merge(t.Snapshot())
		}
	}
	return merged
}

// Hub exposes the engine's subscription hub, e.g. to attach a federating
// subscriber or read delivery/loss accounting.
func (e *Engine) Hub() *telemetry.Hub { return e.hub }

// Folder exposes the engine's per-shard folder: the shard-local
// FleetStats view and totals.
func (e *Engine) Folder() *telemetry.Folder { return e.folder }

// Close tears every home down, closes the telemetry hub and releases the
// worker pool.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	homes := e.orderedLocked()
	e.homes = make(map[uint64]*Home)
	e.plan, e.planDirty = nil, true
	e.mu.Unlock()

	var wg sync.WaitGroup
	for _, h := range homes {
		wg.Add(1)
		go func(h *Home) {
			defer wg.Done()
			h.Router.Stop()
		}(h)
	}
	wg.Wait()
	e.hub.Close()
	e.pool.close()
}
