package engine

import (
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/packet"
)

// engineInserts totals an engine's homes' inserts across the watched
// tables — the ground truth its hub books must account for.
func engineInserts(homes []*Home) uint64 {
	var total uint64
	for _, h := range homes {
		for _, name := range watchedTables {
			if t, ok := h.Router.DB.Table(name); ok {
				ins, _ := t.Stats()
				total += ins
			}
		}
	}
	return total
}

// TestEngineLifecycle drives the full ShardClient contract on one engine
// in isolation — assign, duplicate-assign rejection, step, sync, stats,
// drain, retired accounting, close — with no coordinator above it.
func TestEngineLifecycle(t *testing.T) {
	clk := clock.NewSimulated()
	e := New(Config{Index: 2, Clock: clk, Seed: 7})
	defer e.Close()

	if err := e.Assign(7); err != nil {
		t.Fatal(err)
	}
	if err := e.Assign(7); err == nil || !strings.Contains(err.Error(), "already live") {
		t.Fatalf("duplicate assign error = %v", err)
	}
	h, ok := e.Home(7)
	if !ok {
		t.Fatal("home 7 not registered")
	}
	host, err := h.Join("", true, netsim.Pos{X: 2})
	if err != nil {
		t.Fatal(err)
	}
	h.Router.Upstream.AddZone("svc.example", packet.IP4{203, 0, 113, 9})
	host.AddApp(netsim.NewApp(netsim.AppWeb, "svc.example", 60_000))

	for i := 0; i < 3; i++ {
		if err := e.Step(0.25); err != nil {
			t.Fatal(err)
		}
		// The coordinator owns the shared clock and the sync; emulate it.
		clk.Advance(250 * time.Millisecond)
		e.Sync()
	}

	st := e.Stats()
	if st.Shard != 2 || st.Homes != 1 || st.Steps != 3 {
		t.Fatalf("stats = %+v", st)
	}
	want := engineInserts(e.Homes())
	if want == 0 {
		t.Fatal("stepping inserted nothing — test exercised nothing")
	}
	if st.Hub.Delivered+st.Hub.Lost != want {
		t.Fatalf("hub delivered %d + lost %d != %d inserts", st.Hub.Delivered, st.Hub.Lost, want)
	}
	if st.Totals.Rows+st.Hub.Lost != want {
		t.Fatalf("folder consumed %d of %d rows", st.Totals.Rows, want)
	}

	// Drain: frozen tables become the retired ground truth; the books
	// still balance after the per-home state drops.
	retired := engineInserts([]*Home{h})
	if !e.Drain(7) {
		t.Fatal("drain returned false for a live home")
	}
	if e.Drain(7) {
		t.Fatal("second drain returned true")
	}
	if e.Size() != 0 {
		t.Fatalf("engine still holds %d homes", e.Size())
	}
	st = e.Stats()
	if st.Hub.Sources != 0 || st.Hub.Delivered+st.Hub.Lost != retired {
		t.Fatalf("post-drain books = %+v, want %d retired rows", st.Hub, retired)
	}
	if st.Totals.Homes != 0 || st.Totals.Rows+st.Hub.Lost != retired {
		t.Fatalf("post-drain totals = %+v", st.Totals)
	}

	e.Close()
	if err := e.Assign(8); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("assign on closed engine = %v", err)
	}
	if err := e.Step(0.25); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("step on closed engine = %v", err)
	}
}

// TestEngineCordonSkipsStepping pins that a cordoned home is skipped by
// the step plan but stays live and inspectable, and rejoins rotation on
// uncordon.
func TestEngineCordonSkipsStepping(t *testing.T) {
	clk := clock.NewSimulated()
	var stepped []uint64
	e := New(Config{Clock: clk, Seed: 7, OnStep: func(_ int, home uint64, _ uint64) {
		stepped = append(stepped, home)
	}})
	defer e.Close()
	for id := uint64(0); id < 2; id++ {
		if err := e.Assign(id); err != nil {
			t.Fatal(err)
		}
	}
	if !e.Cordon(1) {
		t.Fatal("cordon returned false")
	}
	if err := e.Step(0.25); err != nil {
		t.Fatal(err)
	}
	if len(stepped) != 1 || stepped[0] != 0 {
		t.Fatalf("stepped %v with home 1 cordoned", stepped)
	}
	h, ok := e.Home(1)
	if !ok || !h.Cordoned() {
		t.Fatal("cordoned home not inspectable")
	}
	if !e.Uncordon(1) {
		t.Fatal("uncordon returned false")
	}
	stepped = nil
	if err := e.Step(0.25); err != nil {
		t.Fatal(err)
	}
	if len(stepped) != 2 {
		t.Fatalf("stepped %v after uncordon", stepped)
	}
	if e.Cordon(99) || e.Uncordon(99) {
		t.Fatal("cordon/uncordon of unknown home returned true")
	}
}
