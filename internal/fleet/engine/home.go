package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/hwdb"
	"repro/internal/netsim"
	"repro/internal/packet"
)

// watchedTables are the per-home hwdb tables every home streams into the
// engine's telemetry hub (and unwatches on drain — keep the two in
// lockstep).
var watchedTables = []string{
	hwdb.TableFlows, hwdb.TableLinks, hwdb.TableLeases, hwdb.TableFlowPerf,
}

// WatchedTables returns (a copy of) the per-home table names an engine
// streams into its telemetry hub. External accounting — the chaos soak
// balances delivered+lost against total inserts across every router
// incarnation — iterates exactly this set.
func WatchedTables() []string { return append([]string(nil), watchedTables...) }

// Home is one managed Homework deployment within a shard engine.
type Home struct {
	ID     uint64
	Name   string
	Router *core.Router

	mu      sync.Mutex
	rng     *rand.Rand
	steps   uint64
	hostSeq uint32

	// cordoned takes the home out of rotation: Step skips it entirely (no
	// traffic, no settle, no measurement poll) while its router and
	// telemetry sources stay live and inspectable. Set by the health
	// remediation loop via the coordinator's Cordon.
	cordoned atomic.Bool
	// settleErrs counts Settle failures (quiesce deadline or barrier
	// error) across the home's steps — a health-evaluator vital.
	settleErrs atomic.Uint64
}

// step advances one home by dt simulated seconds: traffic in, then a
// blocking event-driven wait for the home's control path to drain (no
// sleeps — Settle returns the moment the controller catches up and a
// clean barrier crosses), then the optional measurement poll.
func (h *Home) step(dt float64, measureEvery int) error {
	h.mu.Lock()
	h.steps++
	poll := measureEvery > 0 && h.steps%uint64(measureEvery) == 0
	h.mu.Unlock()

	h.Router.Net.Step(dt)
	if err := h.Router.Settle(); err != nil {
		h.settleErrs.Add(1)
		return err
	}
	if poll {
		h.Router.PollMeasure()
	}
	return nil
}

// Cordoned reports whether the home is currently out of rotation.
func (h *Home) Cordoned() bool { return h.cordoned.Load() }

// SettleErrs returns how many of the home's steps failed to settle (the
// control path missed its quiescence deadline or a barrier failed) over
// this router incarnation — a health-evaluator vital.
func (h *Home) SettleErrs() uint64 { return h.settleErrs.Load() }

// PuntLag returns the home's current punt-credit backlog: packet-ins the
// datapath has punted that the controller has not yet dispatched. A
// healthy idle home reads 0; a wedged controller grows it without bound.
func (h *Home) PuntLag() uint64 {
	punted, processed := h.Router.Datapath.Quiesce().Counts()
	if processed > punted {
		return 0
	}
	return punted - processed
}

// Steps returns how many fleet ticks have stepped this home.
func (h *Home) Steps() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.steps
}

// Rand returns the home's deterministic randomness source (churn and
// workload decisions draw from it so runs replay from the fleet seed).
// Not safe for concurrent use across goroutines; the scenario runner
// only touches it from the home's own shard.
func (h *Home) Rand() *rand.Rand { return h.rng }

// NextMAC allocates a fleet-unique MAC for the home's next host:
// 02:HH:HH:HH:SS:SS from the home ID and a per-home sequence number.
func (h *Home) NextMAC() packet.MAC {
	h.mu.Lock()
	h.hostSeq++
	seq := h.hostSeq
	h.mu.Unlock()
	return packet.MAC{
		0x02, byte(h.ID >> 16), byte(h.ID >> 8), byte(h.ID),
		byte(seq >> 8), byte(seq),
	}
}

// Join adds a host to the home's network and runs it through DHCP.
func (h *Home) Join(name string, wireless bool, pos netsim.Pos) (*netsim.Host, error) {
	mac := h.NextMAC()
	if name == "" {
		name = fmt.Sprintf("%s-dev-%s", h.Name, mac)
	}
	host, err := h.Router.Net.AddHost(name, mac, wireless, pos)
	if err != nil {
		return nil, err
	}
	if err := h.Router.JoinHost(host); err != nil {
		return nil, err
	}
	if !host.Bound() {
		return nil, fmt.Errorf("fleet: %s: host %s did not bind", h.Name, mac)
	}
	return host, nil
}

// Leave releases a host's lease and detaches it from the home network.
func (h *Home) Leave(host *netsim.Host) error {
	host.Release()
	if err := h.Router.Settle(); err != nil {
		return err
	}
	return h.Router.Net.RemoveHost(host.MAC)
}
