package engine

import "sync"

// workerOf assigns a home to one of the engine's workers. ID modulo
// worker count keeps the assignment stable under churn: draining a home
// never reassigns any other home, and a re-assigned ID lands back on its
// old worker.
func workerOf(id uint64, workers int) int {
	return int(id % uint64(workers))
}

// pool is the engine's worker pool: one long-lived goroutine per worker,
// each consuming jobs from its own queue. A worker therefore executes its
// jobs strictly in submission order, which (with homes submitted in
// ascending ID order) gives deterministic per-home stepping without any
// per-step goroutine churn.
type pool struct {
	queues []chan func()
	wg     sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

func newPool(workers int) *pool {
	p := &pool{queues: make([]chan func(), workers)}
	for i := range p.queues {
		// Small buffer: Step submits one job per worker and waits, so the
		// queue never grows; the buffer just decouples submit from the
		// worker picking the job up.
		q := make(chan func(), 4)
		p.queues[i] = q
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range q {
				job()
			}
		}()
	}
	return p
}

// submit enqueues a job on one worker's queue. Jobs submitted to the same
// worker run sequentially in submission order; different workers run
// concurrently.
func (p *pool) submit(worker int, job func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		// Run inline so callers waiting on the job's own barrier don't
		// deadlock during shutdown races.
		job()
		return
	}
	// Enqueue under the lock so close() cannot close the channel between
	// the check and the send. The send cannot block for long: workers
	// never enqueue, they only drain.
	p.queues[worker] <- job
	p.mu.Unlock()
}

// close drains the workers. Concurrent submit after close runs inline.
func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, q := range p.queues {
		close(q)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
