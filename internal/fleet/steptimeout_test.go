package fleet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/fleet/engine"
	"repro/internal/trace"
)

// stalledShard is a ShardClient whose Step blocks until release closes —
// a wedged remote worker from the coordinator's point of view.
type stalledShard struct {
	release chan struct{}
	stepped chan struct{} // closed when Step was entered
}

func newStalledShard() *stalledShard {
	return &stalledShard{release: make(chan struct{}), stepped: make(chan struct{})}
}

func (s *stalledShard) Assign(uint64) error { return nil }
func (s *stalledShard) Drain(uint64) bool   { return true }
func (s *stalledShard) Cordon(uint64) bool  { return true }
func (s *stalledShard) Uncordon(uint64) bool {
	return true
}
func (s *stalledShard) Step(float64) error {
	close(s.stepped)
	<-s.release
	return nil
}
func (s *stalledShard) Sync()                         {}
func (s *stalledShard) Stats() engine.Stats           { return engine.Stats{} }
func (s *stalledShard) TraceSnapshot() trace.Snapshot { return trace.Snapshot{} }
func (s *stalledShard) Close()                        {}

// TestStepTimeoutWedgedShard proves the coordinator's step barrier has a
// deadline: a shard whose Step never returns fails the tick with
// ErrStepTimeout promptly instead of hanging the whole fleet forever.
func TestStepTimeoutWedgedShard(t *testing.T) {
	f := New(Config{Shards: 1, Clock: clock.NewSimulated(), StepTimeout: 100 * time.Millisecond})
	t.Cleanup(f.Stop)
	stall := newStalledShard()
	f.shards[0] = stall
	defer close(stall.release)

	start := time.Now()
	err := f.Step(0.25)
	if !errors.Is(err, ErrStepTimeout) {
		t.Fatalf("step against a wedged shard: err = %v, want ErrStepTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("step took %v to fail; the deadline did not bite", elapsed)
	}
	select {
	case <-stall.stepped:
	default:
		t.Fatal("shard never entered Step")
	}
}

// TestStepTimeoutOneOfMany: only the wedged shard times out; healthy
// shards in the same barrier still step, and the joined error carries
// the timeout.
func TestStepTimeoutOneOfMany(t *testing.T) {
	f := New(Config{Shards: 2, Clock: clock.NewSimulated(), Seed: 7, StepTimeout: 100 * time.Millisecond})
	t.Cleanup(f.Stop)
	healthy := f.shards[0]
	stall := newStalledShard()
	f.shards[1] = stall
	defer close(stall.release)

	if err := f.Step(0.25); !errors.Is(err, ErrStepTimeout) {
		t.Fatalf("err = %v, want ErrStepTimeout", err)
	}
	if st := healthy.Stats(); st.Steps != 1 {
		t.Fatalf("healthy shard stepped %d times, want 1", st.Steps)
	}
}

// TestStepNoTimeoutConfigured: without a StepTimeout the coordinator
// waits indefinitely (the in-process default), so a merely slow shard is
// not spuriously failed.
func TestStepNoTimeoutConfigured(t *testing.T) {
	f := New(Config{Shards: 1, Clock: clock.NewSimulated()})
	t.Cleanup(f.Stop)
	slow := newStalledShard()
	f.shards[0] = slow
	go func() {
		<-slow.stepped
		time.Sleep(20 * time.Millisecond)
		close(slow.release)
	}()
	if err := f.Step(0.25); err != nil {
		t.Fatalf("slow (not wedged) shard failed the tick: %v", err)
	}
}
