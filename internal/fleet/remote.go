package fleet

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/fleet/shardrpc"
	"repro/internal/telemetry"
)

// The remote client implements the same contract as the in-process
// engine, and the worker-side Backend interface mirrors ShardClient —
// these assertions live here because shardrpc cannot import fleet
// without a cycle.
var (
	_ ShardClient      = (*shardrpc.Client)(nil)
	_ shardrpc.Backend = ShardClient(nil)
)

// ErrStepTimeout is returned by Coordinator.Step when one shard's Step
// did not complete within Config.StepTimeout. The wedged shard's call is
// abandoned, not cancelled: its goroutine finishes (or its RPC deadline
// fires) in the background, and the caller decides whether to retry,
// cordon or replace the shard's worker.
var ErrStepTimeout = errors.New("fleet: shard step timed out")

// newRemoteShards builds one shardrpc client + telemetry relay per
// worker address and attaches each relay to the federation, mirroring
// what New does with in-process engines and their hubs.
func newRemoteShards(cfg Config, fed *telemetry.Federation) []ShardClient {
	shards := make([]ShardClient, 0, len(cfg.WorkerAddrs))
	for _, addr := range cfg.WorkerAddrs {
		relay := telemetry.NewRelay()
		fed.AttachMember(relay)
		shards = append(shards, shardrpc.Dial(shardrpc.ClientConfig{
			Addr:        addr,
			Relay:       relay,
			Clock:       cfg.Clock,
			CallTimeout: cfg.CallTimeout,
			StepTimeout: cfg.StepTimeout,
		}))
	}
	return shards
}

// stepShard runs one shard's Step under the fleet step deadline. With no
// deadline configured it is a plain call; with one, a shard that does
// not return in time yields ErrStepTimeout while the stuck call drains
// in the background — a wedged worker costs a leaked goroutine until its
// own transport deadline fires, not a hung fleet tick.
func (c *Coordinator) stepShard(sc ShardClient, dt float64) error {
	if c.cfg.StepTimeout <= 0 {
		return sc.Step(dt)
	}
	done := make(chan error, 1)
	go func() { done <- sc.Step(dt) }()
	select {
	case err := <-done:
		return err
	case <-time.After(c.cfg.StepTimeout):
		return fmt.Errorf("%w after %v", ErrStepTimeout, c.cfg.StepTimeout)
	}
}
