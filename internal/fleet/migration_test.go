package fleet

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/hwdb"
	"repro/internal/netsim"
)

// tableInserts returns one home's insert count for a single hwdb table.
func tableInserts(h *Home, name string) uint64 {
	if t, ok := h.Router.DB.Table(name); ok {
		ins, _ := t.Stats()
		return ins
	}
	return 0
}

// TestMigrateHomeAcrossShards drains a home from shard 0 mid-traffic and
// re-places it on shard 1, with concurrent telemetry readers running (the
// -race half of the gate). The books must stay exact across the
// migration: federated delivered+lost equals the inserts of every
// incarnation, each shard's hub accounts exactly for the homes it hosted
// (the migrated home's first incarnation stays retired on the source
// shard), and FlowPerf rows from both incarnations survive with no
// double-count.
func TestMigrateHomeAcrossShards(t *testing.T) {
	f := newTestFleet(t, 4, 2, func(c *Config) { c.Seed = 9 })

	// shard 0 = {0, 2}, shard 1 = {1, 3} by the modulo policy.
	for _, id := range []uint64{0, 1, 2, 3} {
		if s, _ := f.HomeShard(id); s != int(id%2) {
			t.Fatalf("home %d placed on shard %d", id, s)
		}
	}
	for _, h := range f.Homes() {
		registerZones(h)
		host, err := h.Join("", true, netsim.Pos{X: 2})
		if err != nil {
			t.Fatal(err)
		}
		host.AddApp(netsim.NewApp(netsim.AppWeb, zoneFor("web"), 60_000))
	}

	// Concurrent readers across the whole churn: the race detector checks
	// that migration never tears the telemetry surfaces.
	done := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-done:
				return
			default:
				_ = f.Totals()
				_ = f.TraceStats()
				_ = f.Hub().Stats()
			}
		}
	}()

	for i := 0; i < 4; i++ {
		if err := f.Step(0.25); err != nil {
			t.Fatal(err)
		}
	}

	old0, ok := f.Home(0)
	if !ok {
		t.Fatal("home 0 not live")
	}
	new0, err := f.Migrate(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if new0 == old0 {
		t.Fatal("migrate returned the old incarnation")
	}
	if s, _ := f.HomeShard(0); s != 1 {
		t.Fatalf("home 0 on shard %d after migrate", s)
	}
	// The old incarnation is stopped; its tables are frozen, so its insert
	// counts are now ground truth for the retired half of the books.
	retired := sumInserts([]*Home{old0})
	retiredPerf := tableInserts(old0, hwdb.TableFlowPerf)

	// Fresh incarnation: re-join a host and put traffic back on it.
	registerZones(new0)
	host, err := new0.Join("", true, netsim.Pos{X: 2})
	if err != nil {
		t.Fatal(err)
	}
	host.AddApp(netsim.NewApp(netsim.AppWeb, zoneFor("web"), 60_000))

	for i := 0; i < 4; i++ {
		if err := f.Step(0.25); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	<-readerDone

	live := f.Homes()
	if len(live) != 4 {
		t.Fatalf("fleet lists %d homes, want 4", len(live))
	}

	// Federated accounting: delivered+lost == inserts across both hubs and
	// both incarnations of home 0.
	want := retired + sumInserts(live)
	st := f.Hub().Stats()
	if st.Delivered+st.Lost != want {
		t.Fatalf("federated delivered %d + lost %d != %d inserts", st.Delivered, st.Lost, want)
	}
	if st.Lost != 0 {
		t.Fatalf("unexpected loss during migration: %+v", st)
	}

	// Per-shard books: the source shard keeps the retired incarnation's
	// rows plus its remaining home; the target shard accounts its original
	// homes plus the new incarnation.
	home1, _ := f.Home(1)
	home2, _ := f.Home(2)
	home3, _ := f.Home(3)
	ss := f.ShardStats()
	if ss[0].Homes != 1 || ss[1].Homes != 3 {
		t.Fatalf("shard home counts = %d/%d, want 1/3", ss[0].Homes, ss[1].Homes)
	}
	if got, want := ss[0].Hub.Delivered+ss[0].Hub.Lost, retired+sumInserts([]*Home{home2}); got != want {
		t.Fatalf("shard 0 books %d != %d", got, want)
	}
	if got, want := ss[1].Hub.Delivered+ss[1].Hub.Lost, sumInserts([]*Home{new0, home1, home3}); got != want {
		t.Fatalf("shard 1 books %d != %d", got, want)
	}

	// FlowPerf rows from both incarnations folded exactly once.
	perfWant := retiredPerf
	for _, h := range live {
		perfWant += tableInserts(h, hwdb.TableFlowPerf)
	}
	if got := f.Telemetry().Totals().PerfRows; got != perfWant {
		t.Fatalf("folded %d FlowPerf rows, want %d", got, perfWant)
	}
	if perfWant == 0 {
		t.Fatal("no FlowPerf rows generated — test exercised nothing")
	}

	// The transition is on the placement record.
	var migrated bool
	for _, ev := range f.PlacementHistory() {
		if ev.Op == OpMigrate {
			if ev.Home != 0 || ev.From != 0 || ev.To != 1 {
				t.Fatalf("unexpected migrate event %+v", ev)
			}
			migrated = true
		}
	}
	if !migrated {
		t.Fatal("no migrate event in placement history")
	}
}

// TestPlacementDeterminism: the same seed and scenario produce an
// identical placement history — spawn order, IDs, shards, steps and
// sequence numbers all reproduce. This is the audit property the
// coordinator's event log exists for.
func TestPlacementDeterminism(t *testing.T) {
	run := func() string {
		f := newTestFleet(t, 6, 3, func(c *Config) { c.Seed = 21 })
		ids := make([]uint64, 0, 8)
		for _, h := range f.Homes() {
			ids = append(ids, h.ID)
		}
		rng := rand.New(rand.NewSource(21))
		for op := 0; op < 10; op++ {
			i := rng.Intn(len(ids))
			id := ids[i]
			switch rng.Intn(3) {
			case 0:
				if _, err := f.RestartHome(id); err != nil {
					t.Fatal(err)
				}
			case 1:
				if _, err := f.Migrate(id, rng.Intn(f.Shards())); err != nil {
					t.Fatal(err)
				}
			case 2:
				h, err := f.ReplaceHome(id)
				if err != nil {
					t.Fatal(err)
				}
				ids[i] = h.ID
			}
			if err := f.Step(0.25); err != nil {
				t.Fatal(err)
			}
		}
		return fmt.Sprint(f.PlacementHistory())
	}

	h1, h2 := run(), run()
	if h1 != h2 {
		t.Fatalf("placement history not reproducible:\n--- run 1:\n%s\n--- run 2:\n%s", h1, h2)
	}

	// The concurrent bring-up burst still records spawns in ascending ID
	// order: event k is the spawn of home k on its modulo shard.
	f := newTestFleet(t, 6, 3, nil)
	for i, ev := range f.PlacementHistory()[:6] {
		if ev.Op != OpSpawn || ev.Home != uint64(i) || ev.To != i%3 || ev.From != -1 {
			t.Fatalf("spawn event %d = %+v", i, ev)
		}
	}
}
