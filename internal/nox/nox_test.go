package nox

import (
	"sync"
	"testing"
	"time"

	"repro/internal/datapath"
	"repro/internal/oftransport"
	"repro/internal/openflow"
	"repro/internal/packet"
)

// testRig is a controller plus one connected datapath over loopback TCP.
type testRig struct {
	ctl *Controller
	dp  *datapath.Datapath
	sw  *Switch
}

func newRig(t *testing.T, ctl *Controller) *testRig {
	t.Helper()
	if err := ctl.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctl.Close() })

	joined := make(chan *Switch, 1)
	ctl.OnJoin(func(ev *JoinEvent) {
		select {
		case joined <- ev.Switch:
		default:
		}
	})

	dp := datapath.New(datapath.Config{ID: 0xdead0001})
	_ = dp.AddPort(&datapath.Port{No: 1, Name: "wlan0"})
	_ = dp.AddPort(&datapath.Port{No: 2, Name: "eth0"})
	go func() { _ = dp.ConnectTCP(ctl.Addr()) }()
	t.Cleanup(dp.Stop)

	select {
	case sw := <-joined:
		return &testRig{ctl: ctl, dp: dp, sw: sw}
	case <-time.After(5 * time.Second):
		t.Fatal("datapath did not join")
		return nil
	}
}

func TestHandshakeAndFeatures(t *testing.T) {
	ctl := NewController()
	rig := newRig(t, ctl)
	if rig.sw.DPID() != 0xdead0001 {
		t.Errorf("dpid = %x", rig.sw.DPID())
	}
	if len(rig.sw.Features().Ports) != 2 {
		t.Errorf("ports = %d", len(rig.sw.Features().Ports))
	}
	if _, ok := ctl.Switch(0xdead0001); !ok {
		t.Error("switch not registered")
	}
}

func TestEchoAndBarrier(t *testing.T) {
	ctl := NewController()
	rig := newRig(t, ctl)
	if err := rig.sw.Echo([]byte("liveness")); err != nil {
		t.Fatal(err)
	}
	if err := rig.sw.Barrier(); err != nil {
		t.Fatal(err)
	}
}

func TestPacketInAndReactiveInstall(t *testing.T) {
	ctl := NewController()
	gotPI := make(chan *PacketInEvent, 1)
	ctl.OnPacketIn(func(ev *PacketInEvent) Disposition {
		select {
		case gotPI <- ev:
		default:
		}
		return Stop
	})
	rig := newRig(t, ctl)

	frame := packet.NewTCPFrame(
		packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2},
		packet.IP4{10, 0, 0, 1}, packet.IP4{10, 0, 0, 2},
		40000, 80, packet.TCPSyn, 1, nil).Bytes()
	rig.dp.Receive(1, frame)

	var ev *PacketInEvent
	select {
	case ev = <-gotPI:
	case <-time.After(5 * time.Second):
		t.Fatal("no packet-in")
	}
	if ev.Msg.InPort != 1 || ev.Msg.Reason != openflow.PacketInReasonNoMatch {
		t.Errorf("packet-in = %+v", ev.Msg)
	}
	if !ev.Decoded.HasTCP || ev.Decoded.TCP.DstPort != 80 {
		t.Errorf("decoded = %+v", ev.Decoded)
	}

	// Install a flow reactively and release the buffered packet.
	m := openflow.MatchFromFrame(ev.Decoded, ev.Msg.InPort)
	if err := ev.Switch.InstallFlow(m, 10, 30, 0,
		[]openflow.Action{&openflow.ActionOutput{Port: 2}},
		WithBuffer(ev.Msg.BufferID), WithCookie(7)); err != nil {
		t.Fatal(err)
	}
	if err := ev.Switch.Barrier(); err != nil {
		t.Fatal(err)
	}
	if rig.dp.Table().Len() != 1 {
		t.Fatalf("table len = %d", rig.dp.Table().Len())
	}

	// The buffered packet was run through the new rule: tx on port 2.
	p2, _ := rig.dp.Port(2)
	if p2.Stats().TxPackets != 1 {
		t.Errorf("buffered packet not released: tx = %d", p2.Stats().TxPackets)
	}

	// Subsequent packets match in the datapath without another packet-in.
	rig.dp.Receive(1, frame)
	if err := rig.sw.Barrier(); err != nil {
		t.Fatal(err)
	}
	if p2.Stats().TxPackets != 2 {
		t.Errorf("tx = %d, want 2", p2.Stats().TxPackets)
	}
	select {
	case <-gotPI:
		t.Error("unexpected second packet-in")
	default:
	}
}

func TestFlowStatsAndAggregate(t *testing.T) {
	ctl := NewController()
	rig := newRig(t, ctl)

	m := openflow.MatchAll()
	if err := rig.sw.InstallFlow(m, 1, 0, 0, []openflow.Action{&openflow.ActionOutput{Port: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := rig.sw.Barrier(); err != nil {
		t.Fatal(err)
	}
	frame := packet.NewUDPFrame(packet.MAC{1}, packet.MAC{2}, packet.IP4{10, 0, 0, 1}, packet.IP4{10, 0, 0, 2}, 1, 2, make([]byte, 100)).Bytes()
	for i := 0; i < 5; i++ {
		rig.dp.Receive(1, frame)
	}

	stats, err := rig.sw.FlowStats(openflow.MatchAll())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].PacketCount != 5 {
		t.Errorf("stats = %+v", stats)
	}
	agg, err := rig.sw.AggregateStats(openflow.MatchAll())
	if err != nil {
		t.Fatal(err)
	}
	if agg.FlowCount != 1 || agg.PacketCount != 5 {
		t.Errorf("aggregate = %+v", agg)
	}
	ports, err := rig.sw.PortStats(openflow.PortNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(ports) != 2 {
		t.Errorf("port stats = %+v", ports)
	}
	tables, err := rig.sw.TableStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].ActiveCount != 1 {
		t.Errorf("table stats = %+v", tables)
	}
}

func TestDeleteFlowsAndFlowRemoved(t *testing.T) {
	ctl := NewController()
	removed := make(chan *FlowRemovedEvent, 1)
	ctl.OnFlowRemoved(func(ev *FlowRemovedEvent) {
		select {
		case removed <- ev:
		default:
		}
	})
	rig := newRig(t, ctl)

	m := openflow.MatchAll()
	m.Wildcards &^= openflow.FWTPDst
	m.TPDst = 80
	if err := rig.sw.InstallFlow(m, 10, 0, 0, nil, WithFlowRemoved(), WithCookie(42)); err != nil {
		t.Fatal(err)
	}
	if err := rig.sw.Barrier(); err != nil {
		t.Fatal(err)
	}
	if err := rig.sw.DeleteFlows(openflow.MatchAll()); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-removed:
		if ev.Msg.Cookie != 42 || ev.Msg.Reason != openflow.FlowRemovedDelete {
			t.Errorf("flow removed = %+v", ev.Msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no flow-removed")
	}
	if rig.dp.Table().Len() != 0 {
		t.Errorf("table len = %d", rig.dp.Table().Len())
	}
}

func TestHandlerChainStop(t *testing.T) {
	ctl := NewController()
	var mu sync.Mutex
	var calls []string
	ctl.OnPacketIn(func(ev *PacketInEvent) Disposition {
		mu.Lock()
		calls = append(calls, "first")
		mu.Unlock()
		if ev.Decoded.HasUDP && ev.Decoded.UDP.DstPort == 53 {
			return Stop // consume DNS, like the DNS proxy module
		}
		return Continue
	})
	seen := make(chan struct{}, 2)
	ctl.OnPacketIn(func(ev *PacketInEvent) Disposition {
		mu.Lock()
		calls = append(calls, "second")
		mu.Unlock()
		seen <- struct{}{}
		return Continue
	})
	rig := newRig(t, ctl)

	dns := packet.NewUDPFrame(packet.MAC{1}, packet.MAC{2}, packet.IP4{10, 0, 0, 1}, packet.IP4{8, 8, 8, 8}, 5000, 53, nil).Bytes()
	rig.dp.Receive(1, dns)
	web := packet.NewTCPFrame(packet.MAC{1}, packet.MAC{2}, packet.IP4{10, 0, 0, 1}, packet.IP4{8, 8, 8, 8}, 5000, 80, packet.TCPSyn, 0, nil).Bytes()
	rig.dp.Receive(1, web)

	select {
	case <-seen:
	case <-time.After(5 * time.Second):
		t.Fatal("second handler never ran")
	}
	mu.Lock()
	defer mu.Unlock()
	// DNS → first only; web → first, second.
	want := []string{"first", "first", "second"}
	if len(calls) != len(want) {
		t.Fatalf("calls = %v", calls)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("calls = %v, want %v", calls, want)
		}
	}
}

func TestSendPacketOut(t *testing.T) {
	ctl := NewController()
	rig := newRig(t, ctl)
	var mu sync.Mutex
	var got [][]byte
	p1, _ := rig.dp.Port(1)
	p1.SetOut(func(f []byte) {
		mu.Lock()
		got = append(got, append([]byte(nil), f...))
		mu.Unlock()
	})
	frame := packet.NewUDPFrame(packet.MAC{9}, packet.MAC{1}, packet.IP4{192, 168, 1, 1}, packet.IP4{192, 168, 1, 10}, 67, 68, []byte("dhcp")).Bytes()
	if err := rig.sw.SendPacket(frame, openflow.PortNone, &openflow.ActionOutput{Port: 1}); err != nil {
		t.Fatal(err)
	}
	if err := rig.sw.Barrier(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || len(got[0]) != len(frame) {
		t.Fatalf("packet-out delivered %d frames", len(got))
	}
}

func TestComponentRegistration(t *testing.T) {
	ctl := NewController()
	comp := &l2Switch{table: map[packet.MAC]uint16{}}
	if err := ctl.Register(comp); err != nil {
		t.Fatal(err)
	}
	if names := ctl.Components(); len(names) != 1 || names[0] != "l2-switch" {
		t.Errorf("components = %v", names)
	}
	rig := newRig(t, ctl)

	var mu sync.Mutex
	tx := map[uint16]int{}
	for _, no := range []uint16{1, 2} {
		p, _ := rig.dp.Port(no)
		n := no
		p.SetOut(func([]byte) {
			mu.Lock()
			tx[n]++
			mu.Unlock()
		})
	}

	macA := packet.MAC{2, 0, 0, 0, 0, 0xa}
	macB := packet.MAC{2, 0, 0, 0, 0, 0xb}
	aToB := packet.NewUDPFrame(macA, macB, packet.IP4{10, 0, 0, 1}, packet.IP4{10, 0, 0, 2}, 1, 2, nil).Bytes()
	bToA := packet.NewUDPFrame(macB, macA, packet.IP4{10, 0, 0, 2}, packet.IP4{10, 0, 0, 1}, 2, 1, nil).Bytes()

	// A is unknown: flood. Then B replies: unicast to A's learned port.
	rig.dp.Receive(1, aToB)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		flooded := tx[2] >= 1
		mu.Unlock()
		if flooded || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	rig.dp.Receive(2, bToA)
	deadline = time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		done := tx[1] >= 1
		mu.Unlock()
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if tx[1] < 1 {
		t.Errorf("learned unicast not delivered: tx=%v", tx)
	}
}

// l2Switch is a minimal learning-switch component used to exercise the
// component API the Homework modules build on.
type l2Switch struct {
	mu    sync.Mutex
	table map[packet.MAC]uint16
}

func (l *l2Switch) Name() string { return "l2-switch" }

func (l *l2Switch) Configure(ctl *Controller) error {
	ctl.OnPacketIn(func(ev *PacketInEvent) Disposition {
		l.mu.Lock()
		l.table[ev.Decoded.Eth.Src] = ev.Msg.InPort
		out, known := l.table[ev.Decoded.Eth.Dst]
		l.mu.Unlock()
		if !known {
			_ = ev.Switch.ReleaseBuffer(ev.Msg.BufferID, ev.Msg.InPort,
				&openflow.ActionOutput{Port: openflow.PortFlood})
			return Stop
		}
		m := openflow.MatchFromFrame(ev.Decoded, ev.Msg.InPort)
		_ = ev.Switch.InstallFlow(m, 10, 60, 0,
			[]openflow.Action{&openflow.ActionOutput{Port: out}},
			WithBuffer(ev.Msg.BufferID))
		return Stop
	})
	return nil
}

// newInprocRig mirrors newRig with the controller and datapath joined over
// an in-process transport pair instead of loopback TCP.
func newInprocRig(t *testing.T, ctl *Controller) *testRig {
	t.Helper()
	t.Cleanup(func() { ctl.Close() })
	joined := make(chan *Switch, 1)
	ctl.OnJoin(func(ev *JoinEvent) {
		select {
		case joined <- ev.Switch:
		default:
		}
	})

	dp := datapath.New(datapath.Config{ID: 0xdead0002})
	_ = dp.AddPort(&datapath.Port{No: 1, Name: "wlan0"})
	_ = dp.AddPort(&datapath.Port{No: 2, Name: "eth0"})
	ctlEnd, dpEnd := oftransport.Pair(0)
	go func() { _ = ctl.ServeTransport(ctlEnd) }()
	go func() { _ = dp.ConnectTransport(dpEnd) }()
	t.Cleanup(dp.Stop)

	select {
	case sw := <-joined:
		return &testRig{ctl: ctl, dp: dp, sw: sw}
	case <-time.After(5 * time.Second):
		t.Fatal("datapath did not join in process")
		return nil
	}
}

// TestInProcessTransportRig runs the handshake, liveness, reactive-install
// and buffered-release paths over the in-process transport: the same
// controller semantics as TCP, minus the framing.
func TestInProcessTransportRig(t *testing.T) {
	ctl := NewController()
	gotPI := make(chan *PacketInEvent, 1)
	ctl.OnPacketIn(func(ev *PacketInEvent) Disposition {
		select {
		case gotPI <- ev:
		default:
		}
		return Stop
	})
	rig := newInprocRig(t, ctl)

	if rig.sw.DPID() != 0xdead0002 {
		t.Errorf("dpid = %x", rig.sw.DPID())
	}
	if len(rig.sw.Features().Ports) != 2 {
		t.Errorf("ports = %d", len(rig.sw.Features().Ports))
	}
	if err := rig.sw.Echo([]byte("liveness")); err != nil {
		t.Fatal(err)
	}
	if err := rig.sw.Barrier(); err != nil {
		t.Fatal(err)
	}

	frame := packet.NewTCPFrame(
		packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2},
		packet.IP4{10, 0, 0, 1}, packet.IP4{10, 0, 0, 2},
		40000, 80, packet.TCPSyn, 1, nil).Bytes()
	rig.dp.Receive(1, frame)

	var ev *PacketInEvent
	select {
	case ev = <-gotPI:
	case <-time.After(5 * time.Second):
		t.Fatal("no packet-in")
	}
	if !ev.Decoded.HasTCP || ev.Decoded.TCP.DstPort != 80 {
		t.Errorf("decoded = %+v", ev.Decoded)
	}
	m := openflow.MatchFromFrame(ev.Decoded, ev.Msg.InPort)
	if err := ev.Switch.InstallFlow(m, 10, 30, 0,
		[]openflow.Action{&openflow.ActionOutput{Port: 2}},
		WithBuffer(ev.Msg.BufferID)); err != nil {
		t.Fatal(err)
	}
	if err := ev.Switch.Barrier(); err != nil {
		t.Fatal(err)
	}
	if rig.dp.Table().Len() != 1 {
		t.Fatalf("table len = %d", rig.dp.Table().Len())
	}
	p2, _ := rig.dp.Port(2)
	if p2.Stats().TxPackets != 1 {
		t.Errorf("buffered packet not released: tx = %d", p2.Stats().TxPackets)
	}
	stats, err := rig.sw.FlowStats(openflow.MatchAll())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestCloseWaitsForDispatch asserts Controller.Close does not return while
// an event handler is still running against a transport-attached datapath
// — fleet teardown relies on this to stop writing a removed home's hwdb.
func TestCloseWaitsForDispatch(t *testing.T) {
	ctl := NewController()
	entered := make(chan struct{})
	release := make(chan struct{})
	ctl.OnPacketIn(func(ev *PacketInEvent) Disposition {
		close(entered)
		<-release
		return Stop
	})
	rig := newInprocRig(t, ctl)

	frame := packet.NewUDPFrame(packet.MAC{1}, packet.MAC{2},
		packet.IP4{10, 0, 0, 1}, packet.IP4{10, 0, 0, 2}, 1, 2, nil).Bytes()
	rig.dp.Receive(1, frame)
	<-entered

	closed := make(chan struct{})
	go func() { _ = ctl.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned while a handler was still dispatching")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after the handler finished")
	}

	// A transport offered after Close must be refused and torn down.
	ctlEnd, dpEnd := oftransport.Pair(0)
	if err := ctl.ServeTransport(ctlEnd); err == nil {
		t.Fatal("ServeTransport accepted a transport after Close")
	}
	if err := dpEnd.Send(&openflow.Hello{}); err == nil {
		t.Fatal("refused transport was left open")
	}
}
