package nox

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/oftransport"
	"repro/internal/openflow"
	"repro/internal/packet"
)

// Switch is the controller's handle on one connected datapath, reached
// through whichever oftransport.Transport the datapath attached with.
type Switch struct {
	ctl      *Controller
	tr       oftransport.Transport
	dpid     uint64
	features *openflow.FeaturesReply

	xid atomic.Uint32

	pendingMu sync.Mutex
	pending   map[uint32]chan openflow.Message

	closeOnce sync.Once
}

// DPID returns the datapath identifier.
func (sw *Switch) DPID() uint64 { return sw.dpid }

// Features returns the features reply captured at handshake.
func (sw *Switch) Features() *openflow.FeaturesReply { return sw.features }

func (sw *Switch) nextXID() uint32 { return sw.xid.Add(1) }

func (sw *Switch) close() { sw.closeOnce.Do(func() { _ = sw.tr.Close() }) }

// Send writes one message to the datapath. Transports serialize
// concurrent sends internally.
func (sw *Switch) Send(msg openflow.Message) error {
	return sw.tr.Send(msg)
}

// readLoop services switch-to-controller messages, routing replies to
// pending synchronous requests and everything else to event handlers.
//
// The loop is batched: when the transport supports it (the in-process
// channel), every message already queued is drained into a reused slice
// per wakeup, so a burst of punts from one ReceiveBatch tick costs one
// wakeup and one quiescence broadcast instead of N. The decode state and
// the packet-in event are also reused across the batch — handlers own
// them only for the duration of the dispatch (see the package comment).
func (sw *Switch) readLoop() error {
	var (
		batch []openflow.Message
		d     packet.Decoded
		ev    PacketInEvent
	)
	for {
		var err error
		batch, err = oftransport.RecvInto(sw.tr, batch)
		if err != nil {
			sw.close()
			sw.failPending(err)
			if errors.Is(err, oftransport.ErrClosed) {
				return nil
			}
			return err
		}
		// The handler chain is snapshotted at most once per drained
		// batch, on its first punt. The tracer pointer is likewise loaded
		// once per batch; its stamp methods are nil-safe.
		var handlers []func(*PacketInEvent) Disposition
		tracer := sw.ctl.tracer.Load()
		punts := 0
		for i, msg := range batch {
			batch[i] = nil
			xid := msg.Hdr().XID
			if ch := sw.takePending(xid); ch != nil {
				ch <- msg
				continue
			}
			switch m := msg.(type) {
			case *openflow.EchoRequest:
				rep := &openflow.EchoReply{Data: m.Data}
				rep.Header.XID = m.Header.XID
				_ = sw.Send(rep)
			case *openflow.PacketIn:
				if handlers == nil {
					handlers = sw.ctl.packetInHandlers()
				}
				tracer.BeginDispatch()
				_ = d.Decode(m.Data) // partial decode is fine; handlers check Has*
				ev = PacketInEvent{Switch: sw, Msg: m, Decoded: &d}
				dispatchPacketIn(handlers, &ev)
				tracer.EndDispatch()
				punts++
			case *openflow.FlowRemoved:
				sw.ctl.dispatchFlowRemoved(&FlowRemovedEvent{Switch: sw, Msg: m})
			case *openflow.PortStatus:
				sw.ctl.dispatchPortStatus(&PortStatusEvent{Switch: sw, Msg: m})
			case *openflow.ErrorMsg:
				// Errors not tied to a pending request are logged by dropping;
				// a production controller would surface these.
			default:
				// Unsolicited replies (stats for timed-out requests etc.).
			}
		}
		if punts > 0 {
			sw.ctl.noteProcessed(punts)
		}
	}
}

func (sw *Switch) addPending(xid uint32) chan openflow.Message {
	ch := make(chan openflow.Message, 1)
	sw.pendingMu.Lock()
	sw.pending[xid] = ch
	sw.pendingMu.Unlock()
	return ch
}

func (sw *Switch) takePending(xid uint32) chan openflow.Message {
	sw.pendingMu.Lock()
	defer sw.pendingMu.Unlock()
	ch, ok := sw.pending[xid]
	if ok {
		delete(sw.pending, xid)
	}
	return ch
}

func (sw *Switch) failPending(err error) {
	sw.pendingMu.Lock()
	for xid, ch := range sw.pending {
		close(ch)
		delete(sw.pending, xid)
	}
	sw.pendingMu.Unlock()
}

// request sends msg and waits for the reply with the same xid.
func (sw *Switch) request(msg openflow.Message, timeout time.Duration) (openflow.Message, error) {
	xid := sw.nextXID()
	msg.Hdr().XID = xid
	ch := sw.addPending(xid)
	if err := sw.Send(msg); err != nil {
		sw.takePending(xid)
		return nil, err
	}
	select {
	case rep, ok := <-ch:
		if !ok {
			return nil, errors.New("nox: connection closed")
		}
		if em, isErr := rep.(*openflow.ErrorMsg); isErr {
			return nil, em
		}
		return rep, nil
	case <-time.After(timeout):
		sw.takePending(xid)
		return nil, errors.New("nox: request timed out")
	}
}

// InstallFlow adds a flow entry.
func (sw *Switch) InstallFlow(match openflow.Match, priority uint16, idle, hard uint16, actions []openflow.Action, opts ...FlowOpt) error {
	fm := &openflow.FlowMod{
		Match: match, Command: openflow.FlowModAdd,
		IdleTimeout: idle, HardTimeout: hard, Priority: priority,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		Actions: actions,
	}
	for _, o := range opts {
		o(fm)
	}
	fm.Header.XID = sw.nextXID()
	return sw.Send(fm)
}

// FlowOpt customizes an InstallFlow flow-mod.
type FlowOpt func(*openflow.FlowMod)

// WithBuffer applies the flow-mod to a buffered packet.
func WithBuffer(id uint32) FlowOpt {
	return func(fm *openflow.FlowMod) { fm.BufferID = id }
}

// WithCookie tags the entry.
func WithCookie(c uint64) FlowOpt {
	return func(fm *openflow.FlowMod) { fm.Cookie = c }
}

// WithFlowRemoved requests a flow-removed notification.
func WithFlowRemoved() FlowOpt {
	return func(fm *openflow.FlowMod) { fm.Flags |= openflow.FlowModFlagSendFlowRem }
}

// DeleteFlows removes all entries subsumed by match.
func (sw *Switch) DeleteFlows(match openflow.Match) error {
	fm := &openflow.FlowMod{
		Match: match, Command: openflow.FlowModDelete,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
	}
	fm.Header.XID = sw.nextXID()
	return sw.Send(fm)
}

// SendPacket transmits a frame through an action list (packet-out).
func (sw *Switch) SendPacket(frame []byte, inPort uint16, actions ...openflow.Action) error {
	po := &openflow.PacketOut{
		BufferID: openflow.NoBuffer, InPort: inPort,
		Actions: actions, Data: frame,
	}
	po.Header.XID = sw.nextXID()
	return sw.Send(po)
}

// ReleaseBuffer tells the datapath to forward buffered packet id through
// actions (packet-out referencing the buffer).
func (sw *Switch) ReleaseBuffer(id uint32, inPort uint16, actions ...openflow.Action) error {
	po := &openflow.PacketOut{BufferID: id, InPort: inPort, Actions: actions}
	po.Header.XID = sw.nextXID()
	return sw.Send(po)
}

// FlowStats queries flow statistics.
func (sw *Switch) FlowStats(match openflow.Match) ([]openflow.FlowStats, error) {
	req := &openflow.StatsRequest{
		StatsType: openflow.StatsFlow,
		Flow:      openflow.FlowStatsRequest{Match: match, TableID: 0xff, OutPort: openflow.PortNone},
	}
	rep, err := sw.request(req, 5*time.Second)
	if err != nil {
		return nil, err
	}
	sr, ok := rep.(*openflow.StatsReply)
	if !ok {
		return nil, errors.New("nox: unexpected reply type")
	}
	return sr.Flows, nil
}

// PortStats queries port counters (PortNone = all ports).
func (sw *Switch) PortStats(portNo uint16) ([]openflow.PortStats, error) {
	req := &openflow.StatsRequest{StatsType: openflow.StatsPort, Port: openflow.PortStatsRequest{PortNo: portNo}}
	rep, err := sw.request(req, 5*time.Second)
	if err != nil {
		return nil, err
	}
	sr, ok := rep.(*openflow.StatsReply)
	if !ok {
		return nil, errors.New("nox: unexpected reply type")
	}
	return sr.Ports, nil
}

// TableStats queries table counters.
func (sw *Switch) TableStats() ([]openflow.TableStats, error) {
	req := &openflow.StatsRequest{StatsType: openflow.StatsTable}
	rep, err := sw.request(req, 5*time.Second)
	if err != nil {
		return nil, err
	}
	sr, ok := rep.(*openflow.StatsReply)
	if !ok {
		return nil, errors.New("nox: unexpected reply type")
	}
	return sr.Tables, nil
}

// AggregateStats queries aggregate flow counters for match.
func (sw *Switch) AggregateStats(match openflow.Match) (openflow.AggregateStats, error) {
	req := &openflow.StatsRequest{
		StatsType: openflow.StatsAggregate,
		Flow:      openflow.FlowStatsRequest{Match: match, TableID: 0xff, OutPort: openflow.PortNone},
	}
	rep, err := sw.request(req, 5*time.Second)
	if err != nil {
		return openflow.AggregateStats{}, err
	}
	sr, ok := rep.(*openflow.StatsReply)
	if !ok {
		return openflow.AggregateStats{}, errors.New("nox: unexpected reply type")
	}
	return sr.Aggregate, nil
}

// Barrier round-trips a barrier request. A successful reply proves every
// credited dispatch's emissions are live in the datapath, so it also
// closes those punt-lifecycle spans (their barrier stage is stamped).
func (sw *Switch) Barrier() error {
	_, err := sw.request(&openflow.BarrierRequest{}, 5*time.Second)
	if err == nil {
		sw.ctl.tracer.Load().BarrierReply()
	}
	return err
}

// Echo round-trips an echo request (liveness probe).
func (sw *Switch) Echo(data []byte) error {
	rep, err := sw.request(&openflow.EchoRequest{Data: data}, 5*time.Second)
	if err != nil {
		return err
	}
	if _, ok := rep.(*openflow.EchoReply); !ok {
		return errors.New("nox: unexpected echo reply type")
	}
	return nil
}
