// Package nox implements an event-driven OpenFlow controller framework
// modelled on NOX, the controller the Homework router runs. Components
// (the DHCP server, DNS proxy and control API in this repository) register
// handlers for datapath events; handlers run in registration order and may
// consume an event to stop the chain, exactly as NOX components do.
//
// The controller is transport-agnostic: a datapath attaches over any
// oftransport.Transport. ListenAndServe/HandleConn keep the classic TCP
// secure channel for cross-process deployments, while ServeTransport
// accepts an in-process endpoint (oftransport.Pair) when controller and
// datapath share a process, as they do on the paper's home router and in
// every fleet home.
//
// Concurrency contract: each attached datapath is serviced by one read
// loop that drains its transport in batches (oftransport.BatchRecver
// when available) and dispatches events synchronously, in order, on that
// loop's goroutine — handlers for one datapath never run concurrently
// with each other, but handlers for different datapaths do. An event and
// its Decoded view are valid only for the duration of the dispatch call;
// a handler that wants to keep anything must copy it out (the batched
// loop reuses the decode state across the batch). Handler registration
// (On*) and Register are safe at any time from any goroutine. After each
// drained batch the controller credits the quiescence epoch attached
// with SetQuiesce, which is how Router.Settle blocks — event-driven, no
// polling — until the control path drains (see docs/CONTROL_PLANE.md).
package nox

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/oftransport"
	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/quiesce"
	"repro/internal/trace"
)

// Disposition is a handler's verdict on an event.
type Disposition int

// Handler dispositions, as in NOX: Continue passes the event to the next
// handler, Stop consumes it.
const (
	Continue Disposition = iota
	Stop
)

// PacketInEvent is delivered for each packet punted to the controller.
type PacketInEvent struct {
	Switch  *Switch
	Msg     *openflow.PacketIn
	Decoded *packet.Decoded // parsed view of Msg.Data
}

// JoinEvent is delivered when a datapath completes the handshake.
type JoinEvent struct {
	Switch   *Switch
	Features *openflow.FeaturesReply
}

// LeaveEvent is delivered when a datapath disconnects.
type LeaveEvent struct {
	Switch *Switch
}

// FlowRemovedEvent is delivered when a flow entry expires or is deleted.
type FlowRemovedEvent struct {
	Switch *Switch
	Msg    *openflow.FlowRemoved
}

// PortStatusEvent is delivered when a datapath port changes.
type PortStatusEvent struct {
	Switch *Switch
	Msg    *openflow.PortStatus
}

// Component is a controller module. Configure is called once before the
// controller starts accepting datapaths; the component registers its event
// handlers there.
type Component interface {
	Name() string
	Configure(ctl *Controller) error
}

// Controller accepts datapath connections and dispatches events to
// registered components.
type Controller struct {
	mu         sync.RWMutex
	components []Component
	packetIn   []func(*PacketInEvent) Disposition
	join       []func(*JoinEvent)
	leave      []func(*LeaveEvent)
	flowRem    []func(*FlowRemovedEvent)
	portStatus []func(*PortStatusEvent)
	switches   map[uint64]*Switch
	serving    map[oftransport.Transport]struct{}

	ln        net.Listener
	wg        sync.WaitGroup
	closed    atomic.Bool
	echoEvery time.Duration

	// MissSendLen is pushed to each datapath at join (default 128).
	MissSendLen uint16

	processed atomic.Uint64
	quiesce   atomic.Pointer[quiesce.Epoch]
	tracer    atomic.Pointer[trace.Tracer]
}

// Processed returns how many packet-in events have completed dispatch.
// It is a diagnostic counter; waiting for the control path to drain goes
// through the quiescence epoch (SetQuiesce / core.Router.Settle), not by
// polling this against Datapath.PuntCount.
func (c *Controller) Processed() uint64 { return c.processed.Load() }

// SetQuiesce attaches the punt/processed epoch the controller credits as
// it dispatches packet-ins — the consumer half of the event-driven settle
// protocol (the co-resident datapath's Punt calls are the producer half).
// Attach it before the controller serves any transport: dispatches that
// complete earlier are not credited retroactively.
func (c *Controller) SetQuiesce(e *quiesce.Epoch) { c.quiesce.Store(e) }

// SetTracer attaches the punt-lifecycle tracer the controller stamps as
// it dispatches: dispatch/emit per packet-in, credit per drained batch,
// barrier on every Barrier round trip. Like SetQuiesce it assumes the
// co-resident single-datapath deployment (spans correlate by FIFO order
// with the datapath's Punt stamps); attach it before serving a transport.
func (c *Controller) SetTracer(t *trace.Tracer) { c.tracer.Store(t) }

// noteProcessed credits n completed packet-in dispatches — once per
// drained batch, so a burst of punts costs one epoch broadcast.
func (c *Controller) noteProcessed(n int) {
	if n <= 0 {
		return
	}
	c.processed.Add(uint64(n))
	// Credit the tracer before the epoch: a Settle woken by Done may
	// barrier immediately, and BarrierReply only stamps spans the credit
	// watermark has already passed.
	c.tracer.Load().Credit(n)
	if e := c.quiesce.Load(); e != nil {
		e.Done(n)
	}
}

// NewController creates an empty controller.
func NewController() *Controller {
	return &Controller{
		switches:    make(map[uint64]*Switch),
		serving:     make(map[oftransport.Transport]struct{}),
		MissSendLen: 128,
		echoEvery:   15 * time.Second,
	}
}

// Register adds a component and runs its Configure hook.
func (c *Controller) Register(comp Component) error {
	c.mu.Lock()
	c.components = append(c.components, comp)
	c.mu.Unlock()
	if err := comp.Configure(c); err != nil {
		return fmt.Errorf("nox: configuring %s: %w", comp.Name(), err)
	}
	return nil
}

// Components returns registered component names in order.
func (c *Controller) Components() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, len(c.components))
	for i, comp := range c.components {
		names[i] = comp.Name()
	}
	return names
}

// OnPacketIn registers a packet-in handler; handlers run in registration
// order until one returns Stop.
func (c *Controller) OnPacketIn(fn func(*PacketInEvent) Disposition) {
	c.mu.Lock()
	c.packetIn = append(c.packetIn, fn)
	c.mu.Unlock()
}

// OnJoin registers a datapath-join handler.
func (c *Controller) OnJoin(fn func(*JoinEvent)) {
	c.mu.Lock()
	c.join = append(c.join, fn)
	c.mu.Unlock()
}

// OnLeave registers a datapath-leave handler.
func (c *Controller) OnLeave(fn func(*LeaveEvent)) {
	c.mu.Lock()
	c.leave = append(c.leave, fn)
	c.mu.Unlock()
}

// OnFlowRemoved registers a flow-removed handler.
func (c *Controller) OnFlowRemoved(fn func(*FlowRemovedEvent)) {
	c.mu.Lock()
	c.flowRem = append(c.flowRem, fn)
	c.mu.Unlock()
}

// OnPortStatus registers a port-status handler.
func (c *Controller) OnPortStatus(fn func(*PortStatusEvent)) {
	c.mu.Lock()
	c.portStatus = append(c.portStatus, fn)
	c.mu.Unlock()
}

// ListenAndServe accepts datapath connections on a TCP address until Close.
func (c *Controller) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.ln = ln
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				_ = c.HandleConn(conn)
			}()
		}
	}()
	return nil
}

// Addr returns the listen address once ListenAndServe has been called.
func (c *Controller) Addr() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Close stops the listener, disconnects all datapaths (including any
// still in handshake) and waits until every connection handler has
// finished dispatching.
func (c *Controller) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.mu.Lock()
	ln := c.ln
	trs := make([]oftransport.Transport, 0, len(c.serving))
	for tr := range c.serving {
		trs = append(trs, tr)
	}
	c.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, tr := range trs {
		_ = tr.Close()
	}
	c.wg.Wait()
	return nil
}

// Switch returns a connected datapath by id.
func (c *Controller) Switch(dpid uint64) (*Switch, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sw, ok := c.switches[dpid]
	return sw, ok
}

// Switches returns all connected datapaths.
func (c *Controller) Switches() []*Switch {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Switch, 0, len(c.switches))
	for _, sw := range c.switches {
		out = append(out, sw)
	}
	return out
}

// HandleConn performs the controller side of the OpenFlow handshake on conn
// and services the connection until it closes. Exposed so cross-process
// datapaths (and tests over net.Pipe) can attach a raw stream.
func (c *Controller) HandleConn(conn net.Conn) error {
	return c.ServeTransport(oftransport.NewTCP(conn))
}

// ServeTransport performs the controller side of the OpenFlow handshake on
// one transport endpoint and services it until it closes. It is the
// transport-agnostic core of HandleConn; pass it one end of an
// oftransport.Pair to attach an in-process datapath with no framing cost.
// Close waits for every ServeTransport (however it was started) to finish
// dispatching, exactly as it does for accepted TCP connections.
func (c *Controller) ServeTransport(tr oftransport.Transport) error {
	// Registration, the closed check and wg.Add share the mutex so a
	// concurrent Close either sees tr in the registry (and closes it) or
	// happened first (and this serve refuses to start).
	c.mu.Lock()
	if c.closed.Load() {
		c.mu.Unlock()
		_ = tr.Close()
		return errors.New("nox: controller closed")
	}
	c.serving[tr] = struct{}{}
	c.wg.Add(1)
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.serving, tr)
		c.mu.Unlock()
		c.wg.Done()
	}()

	sw := &Switch{tr: tr, ctl: c, pending: make(map[uint32]chan openflow.Message)}

	if err := tr.Send(&openflow.Hello{}); err != nil {
		tr.Close()
		return err
	}
	msg, err := tr.Recv()
	if err != nil {
		tr.Close()
		return err
	}
	if _, ok := msg.(*openflow.Hello); !ok {
		tr.Close()
		return errors.New("nox: handshake: expected HELLO")
	}

	// Features exchange. The read loop is not running yet, so read inline.
	freq := &openflow.FeaturesRequest{}
	freq.Header.XID = sw.nextXID()
	if err := tr.Send(freq); err != nil {
		tr.Close()
		return err
	}
	var features *openflow.FeaturesReply
	for features == nil {
		msg, err := tr.Recv()
		if err != nil {
			tr.Close()
			return err
		}
		if fr, ok := msg.(*openflow.FeaturesReply); ok {
			features = fr
		}
	}
	sw.dpid = features.DatapathID
	sw.features = features

	cfg := &openflow.SetConfig{Flags: openflow.ConfigFragNormal, MissSendLen: c.MissSendLen}
	cfg.Header.XID = sw.nextXID()
	if err := tr.Send(cfg); err != nil {
		tr.Close()
		return err
	}

	c.mu.Lock()
	c.switches[sw.dpid] = sw
	joinHandlers := append([]func(*JoinEvent){}, c.join...)
	c.mu.Unlock()
	for _, fn := range joinHandlers {
		fn(&JoinEvent{Switch: sw, Features: features})
	}

	err = sw.readLoop()

	c.mu.Lock()
	if c.switches[sw.dpid] == sw {
		delete(c.switches, sw.dpid)
	}
	leaveHandlers := append([]func(*LeaveEvent){}, c.leave...)
	c.mu.Unlock()
	for _, fn := range leaveHandlers {
		fn(&LeaveEvent{Switch: sw})
	}
	return err
}

// packetInHandlers snapshots the packet-in handler chain. The switch
// read loop takes one snapshot per drained batch (not per punt) and runs
// it with dispatchPacketIn; the quiescence epoch is credited via
// noteProcessed after the whole batch.
func (c *Controller) packetInHandlers() []func(*PacketInEvent) Disposition {
	c.mu.RLock()
	handlers := append([]func(*PacketInEvent) Disposition{}, c.packetIn...)
	c.mu.RUnlock()
	return handlers
}

// dispatchPacketIn runs a snapshotted handler chain for one punt.
func dispatchPacketIn(handlers []func(*PacketInEvent) Disposition, ev *PacketInEvent) {
	for _, fn := range handlers {
		if fn(ev) == Stop {
			return
		}
	}
}

func (c *Controller) dispatchFlowRemoved(ev *FlowRemovedEvent) {
	c.mu.RLock()
	handlers := append([]func(*FlowRemovedEvent){}, c.flowRem...)
	c.mu.RUnlock()
	for _, fn := range handlers {
		fn(ev)
	}
}

func (c *Controller) dispatchPortStatus(ev *PortStatusEvent) {
	c.mu.RLock()
	handlers := append([]func(*PortStatusEvent){}, c.portStatus...)
	c.mu.RUnlock()
	for _, fn := range handlers {
		fn(ev)
	}
}
