package trace

import (
	"sync"
	"testing"
)

// drive runs n spans through the full lifecycle: punt, dispatch, emit,
// one batch credit, one barrier.
func drive(t *Tracer, n int) {
	for i := 0; i < n; i++ {
		t.Punt()
		t.BeginDispatch()
		t.EndDispatch()
	}
	t.Credit(n)
	t.BarrierReply()
}

func TestSpanLifecycle(t *testing.T) {
	tr := New(64)
	drive(tr, 10)
	punted, dispatched, credited, barriered, overwritten := tr.Counts()
	if punted != 10 || dispatched != 10 || credited != 10 || barriered != 10 {
		t.Fatalf("counts = %d/%d/%d/%d, want 10 each", punted, dispatched, credited, barriered)
	}
	if overwritten != 0 {
		t.Fatalf("overwritten = %d, want 0", overwritten)
	}
	stats := tr.Stats()
	if len(stats) != numTransitions {
		t.Fatalf("stats rows = %d, want %d", len(stats), numTransitions)
	}
	for _, st := range stats {
		if st.Count != 10 {
			t.Errorf("%s count = %d, want 10", st.Stage, st.Count)
		}
		if st.P50NS < 0 || st.P99NS < st.P50NS || float64(st.MaxNS) < st.P99NS {
			t.Errorf("%s quantiles not ordered: p50=%v p99=%v max=%v", st.Stage, st.P50NS, st.P99NS, st.MaxNS)
		}
	}
}

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	// Every span-record and read entry point must be a no-op on nil.
	tr.Punt()
	tr.BeginDispatch()
	tr.EndDispatch()
	tr.Credit(3)
	tr.BarrierReply()
	if got := tr.DispatchLatencyNS(); got != 0 {
		t.Fatalf("nil DispatchLatencyNS = %d", got)
	}
	if s := tr.Snapshot(); s.Hists[0].Count != 0 {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}
	if stats := tr.Stats(); len(stats) != numTransitions {
		t.Fatalf("nil Stats rows = %d", len(stats))
	}
}

func TestRingOverwriteDropsStaleSpans(t *testing.T) {
	tr := New(4) // tiny ring: punts lap the consumer
	for i := 0; i < 32; i++ {
		tr.Punt()
	}
	// The consumer catches up afterwards: all but the last ring-full of
	// spans were overwritten, and their stamps must be dropped, not
	// misattributed to the newer spans occupying their slots.
	for i := 0; i < 32; i++ {
		tr.BeginDispatch()
		tr.EndDispatch()
	}
	tr.Credit(32)
	tr.BarrierReply()
	_, _, _, _, overwritten := tr.Counts()
	if overwritten == 0 {
		t.Fatal("expected overwritten spans with a lapped ring")
	}
	s := tr.Snapshot()
	if got := s.Hists[tPuntDispatch].Count; got > 4 {
		t.Fatalf("punt->dispatch folded %d spans, ring holds only 4", got)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b := New(64), New(64)
	drive(a, 5)
	drive(b, 7)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if got := sa.Hists[tPuntBarrier].Count; got != 12 {
		t.Fatalf("merged punt->barrier count = %d, want 12", got)
	}
	stats := sa.Stats()
	if stats[tPuntBarrier].Count != 12 {
		t.Fatalf("merged stats count = %d, want 12", stats[tPuntBarrier].Count)
	}
}

func TestQuantileOrdering(t *testing.T) {
	var h HistSnapshot
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Count = 100
	h.SumNS = 100 * 1000
	h.MaxNS = 4000
	h.Buckets[10] = 99 // [512, 1024)
	h.Buckets[12] = 1  // [2048, 4096)
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < 512 || p50 >= 1024 {
		t.Fatalf("p50 = %v, want within [512,1024)", p50)
	}
	if p99 < p50 {
		t.Fatalf("p99 %v < p50 %v", p99, p50)
	}
	if h.Quantile(1.0) < p99 {
		t.Fatalf("p100 below p99")
	}
}

func TestDispatchLatency(t *testing.T) {
	tr := New(64)
	tr.Punt()
	tr.BeginDispatch()
	if d := tr.DispatchLatencyNS(); d <= 0 {
		t.Fatalf("mid-dispatch latency = %d, want > 0", d)
	}
	tr.EndDispatch()
	tr.Credit(1)
}

// TestSpanRecordAllocs pins the span-record hot path at zero allocations:
// the acceptance criterion for always-on tracing in the datapath punt
// path and the controller read loop.
func TestSpanRecordAllocs(t *testing.T) {
	tr := New(256)
	if n := testing.AllocsPerRun(1000, tr.Punt); n != 0 {
		t.Fatalf("Punt allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		tr.Punt()
		tr.BeginDispatch()
		tr.EndDispatch()
		tr.Credit(1)
	}); n != 0 {
		t.Fatalf("full span record allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, tr.BarrierReply); n != 0 {
		t.Fatalf("BarrierReply allocates %v/op, want 0", n)
	}
}

// TestConcurrentRecordAndRead hammers one tracer from concurrent
// producers, a consumer, a barrier caller and snapshot readers — the
// package-level half of the fleet's 32-home race gate.
func TestConcurrentRecordAndRead(t *testing.T) {
	tr := New(128)
	const iters = 2000
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // producer 1: the simulator goroutine
		defer wg.Done()
		for i := 0; i < iters; i++ {
			tr.Punt()
		}
	}()
	go func() { // producer 2: a punt from the dispatch goroutine's output
		defer wg.Done()
		for i := 0; i < iters; i++ {
			tr.Punt()
		}
	}()
	go func() { // consumer: dispatch + batch credit
		defer wg.Done()
		for i := 0; i < iters; i++ {
			tr.BeginDispatch()
			_ = tr.DispatchLatencyNS()
			tr.EndDispatch()
			if i%8 == 7 {
				tr.Credit(8)
			}
		}
	}()
	go func() { // settle path: barriers and reads race the recorders
		defer wg.Done()
		for i := 0; i < iters/10; i++ {
			tr.BarrierReply()
			_ = tr.Snapshot()
			_ = tr.Stats()
		}
	}()
	wg.Wait()
	punted, dispatched, _, _, _ := tr.Counts()
	if punted != 2*iters || dispatched != iters {
		t.Fatalf("counts after hammer: punted=%d dispatched=%d", punted, dispatched)
	}
}

func BenchmarkSpanRecord(b *testing.B) {
	tr := New(DefaultRingSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Punt()
		tr.BeginDispatch()
		tr.EndDispatch()
		tr.Credit(1)
	}
}

func BenchmarkPuntStamp(b *testing.B) {
	tr := New(DefaultRingSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Punt()
	}
}
