// Package trace is the always-on punt-lifecycle observability layer: every
// packet-in a datapath punts gets a span whose monotonic timestamps are
// stamped at each control-plane contract stage — punt, dispatch, emit,
// credit, barrier (docs/CONTROL_PLANE.md) — into a fixed-size lock-free
// ring that overwrites oldest, and folded as it is stamped into
// log-bucketed per-stage latency histograms with p50/p99/max.
//
// Concurrency contract: every method is safe for concurrent use and every
// method is nil-receiver-safe (a nil *Tracer is a disabled tracer; callers
// stamp unconditionally). The span-record path — Punt, BeginDispatch,
// EndDispatch, Credit — allocates nothing: slots are pre-sized atomics,
// histogram folds are atomic adds, and timestamps come from a monotonic
// package epoch (never the simulated clock — stage latency is real time).
// Correlation is by FIFO order, the same assumption the quiescence epoch
// rests on: the n-th punt the datapath counts is the n-th packet-in its
// controller's single read loop dispatches, so the consumer side keeps
// its own dispatch/credit/barrier counters and never needs a tag on the
// wire. A span still being stamped when its ring slot is recycled is
// dropped from the histograms and counted in Overwritten, never blocked
// on; readers validate the slot sequence before and after reading.
package trace

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Stage indexes a span's contract-stage timestamps in lifecycle order.
type Stage int

// The five punt-lifecycle contract stages (docs/CONTROL_PLANE.md): the
// datapath punts, the controller begins the dispatch, the handler chain
// returns with its flow-mods/packet-outs emitted, the batch's quiescence
// credit lands, and a barrier reply confirms the emissions are live.
const (
	StagePunt Stage = iota
	StageDispatch
	StageEmit
	StageCredit
	StageBarrier
	numStages
)

// Per-stage transition histograms, in span order. The last is the whole
// span: punt to barrier.
const (
	tPuntDispatch = iota
	tDispatchEmit
	tEmitCredit
	tCreditBarrier
	tPuntBarrier
	numTransitions
)

var transitionNames = [numTransitions]string{
	"punt->dispatch",
	"dispatch->emit",
	"emit->credit",
	"credit->barrier",
	"punt->barrier",
}

// TransitionNames returns the stage-transition labels in histogram order
// (the order Snapshot.Stats reports them in).
func TransitionNames() []string {
	out := make([]string, numTransitions)
	copy(out[:], transitionNames[:])
	return out
}

// DefaultRingSize is the per-tracer span-ring capacity when New is given
// zero: enough to hold every in-flight span of a busy home between
// barriers while staying a few tens of KB per home at fleet scale.
const DefaultRingSize = 1024

// epoch anchors the monotonic timestamp source. time.Since reads the
// monotonic clock and allocates nothing, and an anchored epoch keeps the
// stamps small and wall-adjustment-proof.
var epoch = time.Now()

func nowNS() int64 { return int64(time.Since(epoch)) }

// slot is one ring entry: the span's sequence number plus its five stage
// timestamps. seq is stored last on reuse (and zeroed first), so a stage
// writer or reader that observes the expected seq also observes a fully
// reinitialized slot.
type slot struct {
	seq atomic.Uint64
	ts  [numStages]atomic.Int64
}

// Tracer records punt-lifecycle spans for one datapath/controller pair.
// The producer (datapath) calls Punt; the consumer (the controller's read
// loop) calls BeginDispatch/EndDispatch per packet-in and Credit per
// drained batch; whoever round-trips a barrier calls BarrierReply.
type Tracer struct {
	mask  uint64
	slots []slot

	punt     atomic.Uint64 // producer: spans opened
	dispatch atomic.Uint64 // consumer read loop: spans dispatched
	credit   atomic.Uint64 // consumer read loop: spans credited
	barrier  atomic.Uint64 // barrier watermark; writers hold barrierMu

	barrierMu   sync.Mutex
	overwritten atomic.Uint64

	hist [numTransitions]hist
}

// New creates a tracer with the given span-ring capacity (rounded up to a
// power of two; <= 0 means DefaultRingSize).
func New(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	n := 1
	for n < ringSize {
		n <<= 1
	}
	return &Tracer{mask: uint64(n - 1), slots: make([]slot, n)}
}

// Punt opens the next span and stamps its punt stage. Call it where the
// quiescence epoch's Punt is called: after the punt is counted, before
// the packet-in is handed to the transport. Zero allocations.
func (t *Tracer) Punt() {
	if t == nil {
		return
	}
	seq := t.punt.Add(1)
	s := &t.slots[seq&t.mask]
	s.seq.Store(0) // invalidate while the slot is reinitialized
	for k := StageDispatch; k < numStages; k++ {
		s.ts[k].Store(0)
	}
	s.ts[StagePunt].Store(nowNS())
	s.seq.Store(seq)
}

// stamp writes stage st's timestamp into span seq's slot and returns the
// previous stage's timestamp. ok is false when the slot was recycled for
// a newer span (the stamp is dropped and counted) or the previous stage
// never landed.
func (t *Tracer) stamp(seq uint64, st Stage, now int64) (prev int64, ok bool) {
	s := &t.slots[seq&t.mask]
	if s.seq.Load() != seq {
		t.overwritten.Add(1)
		return 0, false
	}
	s.ts[st].Store(now)
	prev = s.ts[st-1].Load()
	if prev == 0 || s.seq.Load() != seq {
		return 0, false
	}
	return prev, true
}

// BeginDispatch stamps the dispatch stage of the next undispatched span —
// the controller read loop calls it just before running the handler chain
// for one packet-in. Zero allocations.
func (t *Tracer) BeginDispatch() {
	if t == nil {
		return
	}
	seq := t.dispatch.Add(1)
	now := nowNS()
	if prev, ok := t.stamp(seq, StageDispatch, now); ok {
		t.hist[tPuntDispatch].observe(now - prev)
	}
}

// EndDispatch stamps the emit stage of the span BeginDispatch opened: the
// handler chain has returned, so its flow-mods and packet-outs are on the
// wire. Zero allocations.
func (t *Tracer) EndDispatch() {
	if t == nil {
		return
	}
	seq := t.dispatch.Load()
	now := nowNS()
	if prev, ok := t.stamp(seq, StageEmit, now); ok {
		t.hist[tDispatchEmit].observe(now - prev)
	}
}

// Credit stamps the credit stage of the next n uncredited spans — called
// where the quiescence epoch is credited, once per drained batch. Zero
// allocations.
func (t *Tracer) Credit(n int) {
	if t == nil || n <= 0 {
		return
	}
	now := nowNS()
	lo := t.credit.Load()
	for i := uint64(1); i <= uint64(n); i++ {
		if prev, ok := t.stamp(lo+i, StageCredit, now); ok {
			t.hist[tEmitCredit].observe(now - prev)
		}
	}
	t.credit.Store(lo + uint64(n))
}

// BarrierReply stamps the barrier stage of every credited span the
// barrier watermark has not passed yet: a barrier reply proves all
// emissions up to the current credit point are live in the datapath.
// Serialized internally (barriers are off the hot path).
func (t *Tracer) BarrierReply() {
	if t == nil {
		return
	}
	t.barrierMu.Lock()
	defer t.barrierMu.Unlock()
	hi := t.credit.Load()
	lo := t.barrier.Load()
	if hi <= lo {
		return
	}
	// Spans older than the ring are gone regardless; skip, don't scan.
	if hi-lo > uint64(len(t.slots)) {
		t.overwritten.Add(hi - lo - uint64(len(t.slots)))
		lo = hi - uint64(len(t.slots))
	}
	now := nowNS()
	for seq := lo + 1; seq <= hi; seq++ {
		prev, ok := t.stamp(seq, StageBarrier, now)
		if !ok {
			continue
		}
		t.hist[tCreditBarrier].observe(now - prev)
		s := &t.slots[seq&t.mask]
		if p := s.ts[StagePunt].Load(); p != 0 && s.seq.Load() == seq {
			t.hist[tPuntBarrier].observe(now - p)
		}
	}
	t.barrier.Store(hi)
}

// DispatchLatencyNS returns the elapsed time from the currently
// dispatching span's punt stamp to now — the punt-to-here latency a
// handler can attach to whatever it is emitting (e.g. rule-install
// latency). Zero outside a dispatch or when the span was overwritten.
func (t *Tracer) DispatchLatencyNS() int64 {
	if t == nil {
		return 0
	}
	seq := t.dispatch.Load()
	if seq == 0 {
		return 0
	}
	s := &t.slots[seq&t.mask]
	if s.seq.Load() != seq {
		return 0
	}
	p := s.ts[StagePunt].Load()
	if p == 0 {
		return 0
	}
	if d := nowNS() - p; d > 0 {
		return d
	}
	return 0
}

// Counts returns the tracer's lifecycle counters: spans opened,
// dispatched, credited, passed by a barrier, and stamps dropped because
// their slot had been recycled.
func (t *Tracer) Counts() (punted, dispatched, credited, barriered, overwritten uint64) {
	if t == nil {
		return
	}
	return t.punt.Load(), t.dispatch.Load(), t.credit.Load(), t.barrier.Load(), t.overwritten.Load()
}

// ------------------------------------------------------------ histograms

// histBuckets spans 1ns to ~2^47ns (~39h) in powers of two — bucket i
// counts latencies v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
const histBuckets = 48

// hist is one log2-bucketed latency histogram. All fields are atomics so
// folds from the record path never take a lock.
type hist struct {
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Int64
	bucket [histBuckets]atomic.Uint64
}

func (h *hist) observe(v int64) {
	if v < 0 {
		// Stamps race only between near-simultaneous goroutines (a punt's
		// stamp-to-send window overlapping the dispatcher); clamp the
		// sub-microsecond artifact rather than corrupt the fold.
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.bucket[i].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// HistSnapshot is one histogram's point-in-time copy; snapshots merge, so
// fleet-level views sum per-home tracers without touching their rings.
type HistSnapshot struct {
	Count   uint64
	SumNS   uint64
	MaxNS   int64
	Buckets [histBuckets]uint64
}

func (h *hist) snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.SumNS = h.sum.Load()
	s.MaxNS = h.max.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.bucket[i].Load()
	}
	return s
}

// Merge folds o into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.SumNS += o.SumNS
	if o.MaxNS > s.MaxNS {
		s.MaxNS = o.MaxNS
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile estimates the q-quantile (0 < q <= 1) in nanoseconds from the
// log2 buckets: the bucket holding the rank is represented by its
// geometric midpoint, clipped to the observed maximum.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			var rep float64
			switch i {
			case 0:
				rep = 0
			case 1:
				rep = 1
			default:
				rep = 1.5 * math.Exp2(float64(i-1)) // midpoint of [2^(i-1), 2^i)
			}
			if m := float64(s.MaxNS); rep > m {
				rep = m
			}
			return rep
		}
	}
	return float64(s.MaxNS)
}

// Mean returns the mean latency in nanoseconds.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(s.Count)
}

// ------------------------------------------------------------- snapshots

// Snapshot is a tracer's full histogram state at one instant. The zero
// value is empty; Merge folds tracers together for fleet aggregation.
type Snapshot struct {
	Hists       [numTransitions]HistSnapshot
	Overwritten uint64
}

// Snapshot copies the tracer's histograms. Nil-safe (returns the zero
// snapshot) and lock-free; concurrent records may straddle the copy,
// which monitoring tolerates.
func (t *Tracer) Snapshot() Snapshot {
	var s Snapshot
	if t == nil {
		return s
	}
	for i := range t.hist {
		s.Hists[i] = t.hist[i].snapshot()
	}
	s.Overwritten = t.overwritten.Load()
	return s
}

// Merge folds o into s.
func (s *Snapshot) Merge(o Snapshot) {
	for i := range s.Hists {
		s.Hists[i].Merge(o.Hists[i])
	}
	s.Overwritten += o.Overwritten
}

// StageStats is one stage transition's latency summary, the row shape
// every surface (TRACE verb, /api/trace, expvar, hwfleetd) reports.
type StageStats struct {
	Stage  string  `json:"stage"`
	Count  uint64  `json:"count"`
	P50NS  float64 `json:"p50_ns"`
	P99NS  float64 `json:"p99_ns"`
	MaxNS  int64   `json:"max_ns"`
	MeanNS float64 `json:"mean_ns"`
}

// Stats summarizes the snapshot, one row per stage transition in span
// order (TransitionNames order).
func (s *Snapshot) Stats() []StageStats {
	out := make([]StageStats, numTransitions)
	for i := range s.Hists {
		h := &s.Hists[i]
		out[i] = StageStats{
			Stage:  transitionNames[i],
			Count:  h.Count,
			P50NS:  h.Quantile(0.50),
			P99NS:  h.Quantile(0.99),
			MaxNS:  h.MaxNS,
			MeanNS: h.Mean(),
		}
	}
	return out
}

// Stats summarizes the tracer's histograms (nil-safe shorthand for
// Snapshot().Stats()).
func (t *Tracer) Stats() []StageStats {
	s := t.Snapshot()
	return s.Stats()
}
