package dhcp

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/hwdb"
	"repro/internal/packet"
)

func testServer(autoPermit bool) (*Server, *clock.Simulated, *hwdb.DB) {
	clk := clock.NewSimulated()
	db := hwdb.NewHomework(clk, 1024)
	s := NewServer(Config{
		ServerIP:  packet.MustIP4("192.168.1.1"),
		ServerMAC: packet.MustMAC("02:01:00:00:00:01"),
		PoolStart: packet.MustIP4("192.168.1.10"),
		PoolEnd:   packet.MustIP4("192.168.1.12"), // tiny pool for exhaustion tests
		LeaseTime: time.Hour, HostRoutes: true,
		AutoPermit: autoPermit, Clock: clk, DB: db,
	})
	return s, clk, db
}

func TestAllocateStableAndExhaustion(t *testing.T) {
	s, _, _ := testServer(true)
	m1 := packet.MustMAC("02:aa:00:00:00:01")
	ip1, err := s.allocate(m1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same client gets the same address.
	ip1b, err := s.allocate(m1, nil)
	if err != nil || ip1b != ip1 {
		t.Errorf("allocation not stable: %v vs %v", ip1, ip1b)
	}
	// Distinct clients get distinct addresses; pool excludes the server.
	seen := map[packet.IP4]bool{ip1: true}
	for i := 2; i <= 3; i++ {
		ip, err := s.allocate(packet.MAC{2, 0xaa, 0, 0, 0, byte(i)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if seen[ip] {
			t.Errorf("duplicate allocation %v", ip)
		}
		seen[ip] = true
	}
	// Pool (3 addresses) exhausted.
	if _, err := s.allocate(packet.MAC{2, 0xaa, 0, 0, 0, 9}, nil); err == nil {
		t.Error("exhausted pool still allocating")
	}
}

func TestPermitDenyStates(t *testing.T) {
	s, _, _ := testServer(false)
	mac := packet.MustMAC("02:aa:00:00:00:01")
	dev := s.device(mac, "phone")
	if dev.State != Pending {
		t.Errorf("initial state = %v", dev.State)
	}
	s.Permit(mac)
	if d, _ := s.Lookup(mac); d.State != Permitted {
		t.Errorf("state after permit = %v", d.State)
	}
	s.Deny(mac)
	if d, _ := s.Lookup(mac); d.State != Denied {
		t.Errorf("state after deny = %v", d.State)
	}
	s.Annotate(mac, "kid's phone")
	if d, _ := s.Lookup(mac); d.Metadata != "kid's phone" {
		t.Errorf("metadata = %q", d.Metadata)
	}
}

func TestDenyRevokesLease(t *testing.T) {
	s, _, db := testServer(true)
	mac := packet.MustMAC("02:aa:00:00:00:01")
	s.device(mac, "phone")
	ip, err := s.allocate(mac, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the bound state the REQUEST handler would set.
	s.mu.Lock()
	s.devices[mac].IP = ip
	s.mu.Unlock()

	var events []string
	s.OnLease(func(action string, d Device) { events = append(events, action) })
	s.Deny(mac)
	if got, ok := s.MACForIP(ip); ok {
		t.Errorf("lease survives deny: %v", got)
	}
	if len(events) != 1 || events[0] != "del" {
		t.Errorf("events = %v", events)
	}
	res, err := db.Query("SELECT action FROM Leases [NOW]")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Str != "del" {
		t.Errorf("hwdb lease row missing: %v %v", res, err)
	}
}

func TestExpireLeases(t *testing.T) {
	s, clk, _ := testServer(true)
	mac := packet.MustMAC("02:aa:00:00:00:01")
	s.device(mac, "phone")
	ip, _ := s.allocate(mac, nil)
	now := clk.Now()
	s.mu.Lock()
	s.devices[mac].IP = ip
	s.devices[mac].LeasedAt = now
	s.devices[mac].Expiry = now.Add(time.Hour)
	s.mu.Unlock()

	if n := s.ExpireLeases(); n != 0 {
		t.Fatalf("early expiry: %d", n)
	}
	clk.Advance(2 * time.Hour)
	if n := s.ExpireLeases(); n != 1 {
		t.Fatalf("expiry count = %d", n)
	}
	if _, ok := s.MACForIP(ip); ok {
		t.Error("expired lease still mapped")
	}
}

func TestMACForIPAndDeviceByIP(t *testing.T) {
	s, _, _ := testServer(true)
	mac := packet.MustMAC("02:aa:00:00:00:01")
	s.device(mac, "phone")
	ip, _ := s.allocate(mac, nil)
	got, ok := s.MACForIP(ip)
	if !ok || got != mac {
		t.Errorf("MACForIP = %v, %v", got, ok)
	}
	dev, ok := s.DeviceByIP(ip)
	if !ok || dev.MAC != mac {
		t.Errorf("DeviceByIP = %+v, %v", dev, ok)
	}
	if _, ok := s.MACForIP(packet.MustIP4("10.9.9.9")); ok {
		t.Error("unknown IP resolved")
	}
}

func TestDevicesSorted(t *testing.T) {
	s, _, _ := testServer(true)
	s.device(packet.MustMAC("02:aa:00:00:00:03"), "c")
	s.device(packet.MustMAC("02:aa:00:00:00:01"), "a")
	s.device(packet.MustMAC("02:aa:00:00:00:02"), "b")
	devs := s.Devices()
	if len(devs) != 3 || devs[0].Hostname != "a" || devs[2].Hostname != "c" {
		t.Errorf("devices = %+v", devs)
	}
}

func TestApprovalString(t *testing.T) {
	if Pending.String() != "pending" || Permitted.String() != "permitted" || Denied.String() != "denied" {
		t.Error("Approval strings wrong")
	}
}
