// Package dhcp implements the Homework router's DHCP server as a NOX
// component. Its defining behaviour (from the paper): it "manages DHCP
// allocations to ensure that all traffic flows are visible to software
// running on the router, avoiding direct Ethernet-layer communication
// between devices" — achieved by handing out /32 leases with the router as
// gateway, so every packet a device sends must traverse the router's
// datapath. The control API permits or denies devices case-by-case
// (Figure 3's drag-to-permit interface drives exactly these calls), and
// every lease event is recorded in the hwdb Leases table.
//
// Concurrency: the device table is mutex-guarded. Packet-in handling
// runs on the controller's dispatch goroutine, while Permit/Deny/Lookup
// and the event subscriptions arrive concurrently from the control API
// and the admission interfaces; event callbacks fire synchronously on
// whichever goroutine caused the change.
package dhcp

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/hwdb"
	"repro/internal/nox"
	"repro/internal/openflow"
	"repro/internal/packet"
)

// Approval is a device's admission state.
type Approval uint8

// Admission states driven by the control interface.
const (
	Pending Approval = iota
	Permitted
	Denied
)

// String names the approval state.
func (a Approval) String() string {
	switch a {
	case Permitted:
		return "permitted"
	case Denied:
		return "denied"
	}
	return "pending"
}

// Device is the server's view of one client, surfaced by the control API.
type Device struct {
	MAC      packet.MAC
	Hostname string
	Metadata string // user-supplied annotation from the control interface
	State    Approval
	IP       packet.IP4 // zero until leased
	LeasedAt time.Time
	Expiry   time.Time
	LastSeen time.Time
}

// Config parameterizes the server.
type Config struct {
	// ServerIP is the router's address, used as server id, gateway and
	// DNS server in every lease.
	ServerIP packet.IP4
	// ServerMAC is the router's hardware address.
	ServerMAC packet.MAC
	// PoolStart/PoolEnd bound the allocatable addresses (inclusive).
	PoolStart, PoolEnd packet.IP4
	// LeaseTime is the offered lease duration.
	LeaseTime time.Duration
	// HostRoutes selects the Homework /32 allocation scheme. When false
	// the server hands out conventional /24 leases (the ablation case:
	// devices can then talk Ethernet-direct and their flows are
	// invisible to the router).
	HostRoutes bool
	// AutoPermit admits unknown devices without operator action. The
	// paper's deployment requires approval; tests and benches often
	// auto-permit.
	AutoPermit bool
	// Clock supplies lease timestamps.
	Clock clock.Clock
	// DB, when set, receives lease events in the Leases table.
	DB *hwdb.DB
}

// Server is the DHCP NOX component.
type Server struct {
	cfg Config

	mu      sync.Mutex
	devices map[packet.MAC]*Device
	byIP    map[packet.IP4]packet.MAC
	nextTry uint32
	events  []func(action string, d Device)
}

// NewServer creates the component.
func NewServer(cfg Config) *Server {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.LeaseTime == 0 {
		cfg.LeaseTime = time.Hour
	}
	return &Server{
		cfg:     cfg,
		devices: make(map[packet.MAC]*Device),
		byIP:    make(map[packet.IP4]packet.MAC),
	}
}

// Name implements nox.Component.
func (s *Server) Name() string { return "dhcp-server" }

// Configure implements nox.Component: it installs the DHCP punt rule on
// every joining datapath and claims DHCP packet-ins.
func (s *Server) Configure(ctl *nox.Controller) error {
	ctl.OnJoin(func(ev *nox.JoinEvent) {
		m := openflow.MatchAll()
		m.Wildcards &^= openflow.FWDLType | openflow.FWNWProto | openflow.FWTPDst
		m.DLType = packet.EtherTypeIPv4
		m.NWProto = uint8(packet.ProtoUDP)
		m.TPDst = packet.DHCPServerPort
		_ = ev.Switch.InstallFlow(m, PriorityPunt, 0, 0,
			[]openflow.Action{&openflow.ActionOutput{Port: openflow.PortController, MaxLen: 0xffff}})
	})
	ctl.OnPacketIn(s.handlePacketIn)
	return nil
}

// PriorityPunt is the flow priority of control-protocol punt rules (DHCP,
// DNS); above all forwarding entries.
const PriorityPunt uint16 = 1000

// OnLease registers fn for lease events ("offer", "add", "del", "nak");
// the physical artifact's mode 3 subscribes here via hwdb.
func (s *Server) OnLease(fn func(action string, d Device)) {
	s.mu.Lock()
	s.events = append(s.events, fn)
	s.mu.Unlock()
}

func (s *Server) emit(action string, d Device) {
	if s.cfg.DB != nil {
		switch action {
		case "add", "del":
			_ = s.cfg.DB.InsertLease(action, d.MAC, d.IP, d.Hostname)
		}
	}
	s.mu.Lock()
	fns := append([]func(string, Device){}, s.events...)
	s.mu.Unlock()
	for _, fn := range fns {
		fn(action, d)
	}
}

// handlePacketIn consumes DHCP traffic.
func (s *Server) handlePacketIn(ev *nox.PacketInEvent) nox.Disposition {
	d := ev.Decoded
	if !d.HasUDP || d.UDP.DstPort != packet.DHCPServerPort {
		return nox.Continue
	}
	var msg packet.DHCP
	if err := msg.DecodeFromBytes(d.UDP.Payload); err != nil {
		return nox.Stop
	}
	switch msg.MsgType() {
	case packet.DHCPDiscover:
		s.handleDiscover(ev, &msg)
	case packet.DHCPRequest:
		s.handleRequest(ev, &msg)
	case packet.DHCPRelease:
		s.handleRelease(&msg)
	}
	return nox.Stop
}

// device returns (creating if needed) the record for a client.
func (s *Server) device(mac packet.MAC, hostname string) *Device {
	s.mu.Lock()
	defer s.mu.Unlock()
	dev, ok := s.devices[mac]
	if !ok {
		state := Pending
		if s.cfg.AutoPermit {
			state = Permitted
		}
		dev = &Device{MAC: mac, State: state}
		s.devices[mac] = dev
	}
	if hostname != "" {
		dev.Hostname = hostname
	}
	dev.LastSeen = s.cfg.Clock.Now()
	return dev
}

func (s *Server) handleDiscover(ev *nox.PacketInEvent, msg *packet.DHCP) {
	dev := s.device(msg.CHAddr, msg.Hostname())
	s.mu.Lock()
	state := dev.State
	s.mu.Unlock()
	switch state {
	case Denied:
		s.sendNak(ev, msg)
		s.emit("nak", *dev)
		return
	case Pending:
		// No answer: the device shows up on the control interface and
		// retries; granting it later completes the handshake.
		s.emit("pending", *dev)
		return
	}
	ip, err := s.allocate(msg.CHAddr, msg)
	if err != nil {
		return
	}
	s.reply(ev, msg, packet.DHCPOffer, ip)
	s.emit("offer", *dev)
}

func (s *Server) handleRequest(ev *nox.PacketInEvent, msg *packet.DHCP) {
	dev := s.device(msg.CHAddr, msg.Hostname())
	s.mu.Lock()
	state := dev.State
	s.mu.Unlock()
	if state != Permitted {
		s.sendNak(ev, msg)
		return
	}
	want, ok := msg.RequestedIP()
	if !ok {
		want = msg.CIAddr
	}
	ip, err := s.allocate(msg.CHAddr, msg)
	if err != nil {
		s.sendNak(ev, msg)
		return
	}
	if !want.IsZero() && want != ip {
		// The client asked for an address we did not reserve for it.
		s.sendNak(ev, msg)
		return
	}
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	dev.IP = ip
	dev.LeasedAt = now
	dev.Expiry = now.Add(s.cfg.LeaseTime)
	copy := *dev
	s.mu.Unlock()
	s.reply(ev, msg, packet.DHCPAck, ip)
	s.emit("add", copy)
}

func (s *Server) handleRelease(msg *packet.DHCP) {
	s.mu.Lock()
	dev, ok := s.devices[msg.CHAddr]
	var cp Device
	if ok && !dev.IP.IsZero() {
		delete(s.byIP, dev.IP)
		dev.IP = packet.IP4{}
		cp = *dev
	} else {
		ok = false
	}
	s.mu.Unlock()
	if ok {
		s.emit("del", cp)
	}
}

// allocate reserves (or returns the existing) address for a client,
// creating the device record if the client is new.
func (s *Server) allocate(mac packet.MAC, msg *packet.DHCP) (packet.IP4, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dev, ok := s.devices[mac]
	if !ok {
		state := Pending
		if s.cfg.AutoPermit {
			state = Permitted
		}
		dev = &Device{MAC: mac, State: state}
		s.devices[mac] = dev
	}
	if !dev.IP.IsZero() {
		return dev.IP, nil
	}
	start, end := s.cfg.PoolStart.Uint32(), s.cfg.PoolEnd.Uint32()
	if start == 0 || end < start {
		return packet.IP4{}, fmt.Errorf("dhcp: no pool configured")
	}
	span := end - start + 1
	for i := uint32(0); i < span; i++ {
		cand := packet.IP4FromUint32(start + (s.nextTry+i)%span)
		if cand == s.cfg.ServerIP {
			continue
		}
		if _, used := s.byIP[cand]; used {
			continue
		}
		s.nextTry = (s.nextTry + i + 1) % span
		s.byIP[cand] = mac
		dev.IP = cand
		return cand, nil
	}
	return packet.IP4{}, fmt.Errorf("dhcp: pool exhausted")
}

// reply sends an OFFER or ACK to the client via packet-out.
func (s *Server) reply(ev *nox.PacketInEvent, req *packet.DHCP, typ packet.DHCPMsgType, ip packet.IP4) {
	resp := &packet.DHCP{
		Op: packet.DHCPBootReply, XID: req.XID, Flags: req.Flags,
		YIAddr: ip, SIAddr: s.cfg.ServerIP, CHAddr: req.CHAddr,
	}
	resp.AddMsgType(typ)
	resp.AddIPOption(packet.DHCPOptServerID, s.cfg.ServerIP)
	if s.cfg.HostRoutes {
		// The Homework trick: a /32 mask leaves no on-link destinations,
		// so the client routes everything through the gateway below.
		resp.AddIPOption(packet.DHCPOptSubnetMask, packet.IP4{255, 255, 255, 255})
	} else {
		resp.AddIPOption(packet.DHCPOptSubnetMask, packet.IP4{255, 255, 255, 0})
	}
	resp.AddIPOption(packet.DHCPOptRouter, s.cfg.ServerIP)
	resp.AddIPOption(packet.DHCPOptDNSServer, s.cfg.ServerIP)
	resp.AddDurationOption(packet.DHCPOptLeaseTime, s.cfg.LeaseTime)

	frame := packet.NewDHCPFrame(resp, s.cfg.ServerMAC, req.CHAddr,
		s.cfg.ServerIP, ip, packet.DHCPServerPort, packet.DHCPClientPort)
	_ = ev.Switch.SendPacket(frame.Bytes(), openflow.PortNone,
		&openflow.ActionOutput{Port: ev.Msg.InPort})
}

// sendNak refuses a client.
func (s *Server) sendNak(ev *nox.PacketInEvent, req *packet.DHCP) {
	resp := &packet.DHCP{Op: packet.DHCPBootReply, XID: req.XID, Flags: req.Flags, CHAddr: req.CHAddr}
	resp.AddMsgType(packet.DHCPNak)
	resp.AddIPOption(packet.DHCPOptServerID, s.cfg.ServerIP)
	frame := packet.NewDHCPFrame(resp, s.cfg.ServerMAC, req.CHAddr,
		s.cfg.ServerIP, packet.IP4{255, 255, 255, 255},
		packet.DHCPServerPort, packet.DHCPClientPort)
	_ = ev.Switch.SendPacket(frame.Bytes(), openflow.PortNone,
		&openflow.ActionOutput{Port: ev.Msg.InPort})
}

// Permit marks a device permitted (drag into the permitted category).
func (s *Server) Permit(mac packet.MAC) {
	s.setState(mac, Permitted)
}

// Deny marks a device denied and revokes any lease it holds.
func (s *Server) Deny(mac packet.MAC) {
	s.mu.Lock()
	dev, ok := s.devices[mac]
	if !ok {
		dev = &Device{MAC: mac}
		s.devices[mac] = dev
	}
	dev.State = Denied
	var released *Device
	if !dev.IP.IsZero() {
		delete(s.byIP, dev.IP)
		dev.IP = packet.IP4{}
		cp := *dev
		released = &cp
	}
	s.mu.Unlock()
	if released != nil {
		s.emit("del", *released)
	}
}

// Annotate stores user-supplied metadata for a device (the "interrogate
// and supply metadata" part of the control interface).
func (s *Server) Annotate(mac packet.MAC, metadata string) {
	s.mu.Lock()
	if dev, ok := s.devices[mac]; ok {
		dev.Metadata = metadata
	} else {
		s.devices[mac] = &Device{MAC: mac, Metadata: metadata}
	}
	s.mu.Unlock()
}

func (s *Server) setState(mac packet.MAC, st Approval) {
	s.mu.Lock()
	dev, ok := s.devices[mac]
	if !ok {
		dev = &Device{MAC: mac}
		s.devices[mac] = dev
	}
	dev.State = st
	s.mu.Unlock()
}

// Devices returns all known devices sorted by MAC.
func (s *Server) Devices() []Device {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Device, 0, len(s.devices))
	for _, d := range s.devices {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].MAC.String() < out[j].MAC.String()
	})
	return out
}

// Lookup returns the device record for a MAC.
func (s *Server) Lookup(mac packet.MAC) (Device, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devices[mac]
	if !ok {
		return Device{}, false
	}
	return *d, true
}

// DeviceByIP maps a leased address back to its device.
func (s *Server) DeviceByIP(ip packet.IP4) (Device, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mac, ok := s.byIP[ip]
	if !ok {
		return Device{}, false
	}
	d, ok := s.devices[mac]
	if !ok {
		return Device{}, false
	}
	return *d, true
}

// MACForIP maps a leased address to its device's hardware address; it
// implements the measurement plane's DeviceResolver.
func (s *Server) MACForIP(ip packet.IP4) (packet.MAC, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mac, ok := s.byIP[ip]
	return mac, ok
}

// ExpireLeases releases leases past their expiry, returning the count.
func (s *Server) ExpireLeases() int {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	var expired []Device
	for _, d := range s.devices {
		if !d.IP.IsZero() && !d.Expiry.IsZero() && now.After(d.Expiry) {
			delete(s.byIP, d.IP)
			cp := *d
			d.IP = packet.IP4{}
			expired = append(expired, cp)
		}
	}
	s.mu.Unlock()
	for _, d := range expired {
		s.emit("del", d)
	}
	return len(expired)
}
