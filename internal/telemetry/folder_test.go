package telemetry

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/hwdb"
	"repro/internal/packet"
)

// rig is a two-home telemetry stack over real Homework databases.
type rig struct {
	clk    *clock.Simulated
	hub    *Hub
	folder *Folder
	dbs    map[uint64]*hwdb.DB
}

func newRig(t *testing.T, homes ...uint64) *rig {
	t.Helper()
	clk := clock.NewSimulated()
	hub := NewHub(HubConfig{Manual: true})
	t.Cleanup(hub.Close)
	r := &rig{
		clk:    clk,
		hub:    hub,
		folder: NewFolder(hub, FolderConfig{Clock: clk, RateWindow: 10 * time.Second}),
		dbs:    make(map[uint64]*hwdb.DB),
	}
	for i, id := range homes {
		db := hwdb.NewHomework(clk, 1024)
		r.dbs[id] = db
		hosts := i + 1 // home k reports k+1 hosts
		r.folder.AddHome(id, func() int { return hosts })
		for _, name := range []string{hwdb.TableFlows, hwdb.TableLinks, hwdb.TableLeases} {
			tbl, _ := db.Table(name)
			hub.Watch(SourceID{Home: id, Table: name}, tbl)
		}
	}
	return r
}

func (r *rig) flow(t *testing.T, home uint64, dev byte, packets, bytes uint64) {
	t.Helper()
	err := r.dbs[home].InsertFlow(packet.MAC{2, dev}, packet.FiveTuple{Proto: packet.ProtoTCP, DstPort: 443}, packets, bytes)
	if err != nil {
		t.Fatal(err)
	}
}

// TestFolderLiveTotals: after a flush, totals and per-home counters
// reflect every insert with no fold pass, and the idle home stays zero.
func TestFolderLiveTotals(t *testing.T) {
	r := newRig(t, 0, 1)
	r.flow(t, 0, 1, 10, 1500)
	r.flow(t, 0, 2, 4, 600)
	_ = r.dbs[0].InsertLink(packet.MAC{2, 1}, -40, 0, 54)
	_ = r.dbs[0].InsertLease("add", packet.MAC{2, 1}, packet.IP4{192, 168, 1, 2}, "dev")
	r.hub.Flush()

	tot := r.folder.Totals()
	if tot.Homes != 2 || tot.Hosts != 3 {
		t.Fatalf("homes=%d hosts=%d, want 2, 3", tot.Homes, tot.Hosts)
	}
	if tot.Flows != 2 || tot.Packets != 14 || tot.Bytes != 2100 || tot.Links != 1 || tot.Leases != 1 {
		t.Fatalf("totals = %+v", tot)
	}
	if tot.Lost != 0 || tot.Rows != 4 {
		t.Fatalf("accounting = %+v", tot)
	}

	hts := r.folder.HomeTotals()
	if len(hts) != 2 || hts[0].Home != 0 || hts[1].Home != 1 {
		t.Fatalf("home totals = %+v", hts)
	}
	if hts[0].Flows != 2 || hts[0].Bytes != 2100 || hts[0].Links != 1 || hts[0].Leases != 1 {
		t.Fatalf("home 0 = %+v", hts[0])
	}
	if hts[1].Flows != 0 || hts[1].Bytes != 0 {
		t.Fatalf("idle home 1 = %+v", hts[1])
	}
}

// TestFolderCommitViewRows: Commit writes one delta row per active home
// and nothing for idle periods, and the view answers the fleet CQL.
func TestFolderCommitViewRows(t *testing.T) {
	r := newRig(t, 0, 1)
	r.flow(t, 0, 1, 10, 1500)
	r.hub.Flush()
	if rows := r.folder.Commit(); rows != 1 {
		t.Fatalf("first commit wrote %d rows, want 1", rows)
	}
	// Idle commit: no new rows at all.
	if rows := r.folder.Commit(); rows != 0 {
		t.Fatalf("idle commit wrote %d rows", rows)
	}
	r.flow(t, 0, 1, 2, 300)
	r.flow(t, 1, 9, 1, 100)
	r.hub.Flush()
	if rows := r.folder.Commit(); rows != 2 {
		t.Fatalf("third commit wrote %d rows, want 2", rows)
	}

	res, err := r.folder.View().Query("SELECT home, sum(bytes) AS b FROM FleetStats GROUP BY home")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("view rows = %v", res.Rows)
	}
	if res.Rows[0][0].Int != 0 || res.Rows[0][1].AsFloat() != 1800 {
		t.Fatalf("home 0 view = %v", res.Rows[0])
	}
	if res.Rows[1][0].Int != 1 || res.Rows[1][1].AsFloat() != 100 {
		t.Fatalf("home 1 view = %v", res.Rows[1])
	}
}

// TestFolderTakePeriod: period snapshots carry deltas since the previous
// call (distinct devices included) and then reset.
func TestFolderTakePeriod(t *testing.T) {
	r := newRig(t, 0, 1)
	r.flow(t, 0, 1, 1, 100)
	r.flow(t, 0, 1, 1, 100)
	r.flow(t, 0, 2, 1, 100)
	_ = r.dbs[0].InsertLink(packet.MAC{2, 1}, -40, 0, 54)
	_ = r.dbs[0].InsertLink(packet.MAC{2, 1}, -60, 0, 54)
	r.hub.Flush()

	ps := r.folder.TakePeriod()
	if len(ps) != 2 {
		t.Fatalf("period homes = %d", len(ps))
	}
	h0 := ps[0]
	if h0.Flows != 3 || h0.Devices != 2 || h0.Bytes != 300 || h0.Links != 2 {
		t.Fatalf("home 0 period = %+v", h0)
	}
	if h0.MeanRSSI != -50 {
		t.Fatalf("mean rssi = %g, want -50", h0.MeanRSSI)
	}
	if h0.Hosts != 1 || ps[1].Hosts != 2 {
		t.Fatalf("hosts = %d, %d", h0.Hosts, ps[1].Hosts)
	}
	// Reset: an immediate second take is all zeros.
	for _, p := range r.folder.TakePeriod() {
		if p.Flows != 0 || p.Links != 0 || p.Devices != 0 {
			t.Fatalf("period did not reset: %+v", p)
		}
	}
}

// TestFolderRates: windowed rates track row timestamps under a simulated
// clock and age out once the window slides past.
func TestFolderRates(t *testing.T) {
	r := newRig(t, 0)
	// 10 KB across the current second, two devices.
	r.flow(t, 0, 1, 10, 8000)
	r.flow(t, 0, 2, 2, 2000)
	r.hub.Flush()

	// Window is 10s: 10 KB over it = 1000 B/s.
	if got := r.folder.HomeRate(0); got.BytesPerSec != 1000 || got.PacketsPerSec != 1.2 {
		t.Fatalf("home rate = %+v", got)
	}
	if got := r.folder.FleetRate(); got.BytesPerSec != 1000 {
		t.Fatalf("fleet rate = %+v", got)
	}
	dr := r.folder.DeviceRates(0)
	if len(dr) != 2 {
		t.Fatalf("device rates = %+v", dr)
	}
	if dr[0].MAC != (packet.MAC{2, 1}) || dr[0].BytesPerSec != 800 {
		t.Fatalf("device 1 rate = %+v", dr[0])
	}
	if dr[1].MAC != (packet.MAC{2, 2}) || dr[1].BytesPerSec != 200 {
		t.Fatalf("device 2 rate = %+v", dr[1])
	}

	// Slide the window past the samples: the rate decays to zero.
	r.clk.Advance(11 * time.Second)
	if got := r.folder.HomeRate(0); got.BytesPerSec != 0 {
		t.Fatalf("rate after window slide = %+v", got)
	}
}

// TestFolderRemoveHomeKeepsFleetTotals: removing a home drops its
// per-home state but not its contribution to the cumulative counters.
func TestFolderRemoveHomeKeepsFleetTotals(t *testing.T) {
	r := newRig(t, 0, 1)
	r.flow(t, 0, 1, 5, 500)
	r.hub.Flush()
	r.folder.RemoveHome(0)

	tot := r.folder.Totals()
	if tot.Homes != 1 || tot.Flows != 1 || tot.Bytes != 500 {
		t.Fatalf("totals after removal = %+v", tot)
	}
	if hr := r.folder.HomeRate(0); hr.BytesPerSec != 0 {
		t.Fatalf("removed home still has a rate: %+v", hr)
	}
	if hts := r.folder.HomeTotals(); len(hts) != 1 || hts[0].Home != 1 {
		t.Fatalf("home totals after removal = %+v", hts)
	}
}
