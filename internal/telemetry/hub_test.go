package telemetry

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/hwdb"
)

func testTable(t *testing.T, ring int) (*hwdb.Table, *clock.Simulated) {
	t.Helper()
	clk := clock.NewSimulated()
	tbl := hwdb.NewTable("T", hwdb.NewSchema(hwdb.Column{Name: "v", Type: hwdb.TInt}), ring)
	return tbl, clk
}

func insertN(t *testing.T, tbl *hwdb.Table, clk *clock.Simulated, from, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := tbl.Insert(clk.Now(), []hwdb.Value{hwdb.Int64(int64(from + i))}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHubDeliversBatchedDeltas covers the core contract: inserts batch
// into one delta per source per drain, oldest-first, and a second flush
// with nothing new delivers nothing.
func TestHubDeliversBatchedDeltas(t *testing.T) {
	tbl, clk := testTable(t, 64)
	hub := NewHub(HubConfig{Manual: true})
	defer hub.Close()
	sub := hub.Subscribe(8)
	id := SourceID{Home: 3, Table: "T"}
	hub.Watch(id, tbl)

	insertN(t, tbl, clk, 0, 5)
	hub.Flush()
	select {
	case d := <-sub.C():
		if d.Source != id || len(d.Rows) != 5 || d.Lost != 0 {
			t.Fatalf("delta = %+v", d)
		}
		if d.Rows[0].Vals[0].Int != 0 || d.Rows[4].Vals[0].Int != 4 {
			t.Fatalf("rows out of order: %v", d.Rows)
		}
	default:
		t.Fatal("no delta after flush")
	}

	hub.Flush()
	select {
	case d := <-sub.C():
		t.Fatalf("unexpected delta %+v after idle flush", d)
	default:
	}

	st := hub.Stats()
	if st.Sources != 1 || st.Delivered != 5 || st.Lost != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestHubInsertHotPathZeroAllocs pins the acceptance bound: watching a
// table adds zero allocations per insert.
func TestHubInsertHotPathZeroAllocs(t *testing.T) {
	tbl, clk := testTable(t, 4096)
	hub := NewHub(HubConfig{Manual: true})
	defer hub.Close()
	hub.Watch(SourceID{Home: 1, Table: "T"}, tbl)

	vals := []hwdb.Value{hwdb.Int64(7)}
	ts := clk.Now()
	if n := testing.AllocsPerRun(1000, func() {
		if err := tbl.Insert(ts, vals); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("watched insert allocates %.1f per op, want 0", n)
	}
}

// TestHubRingWrapLost checks explicit loss accounting when the hub's
// cursor falls further behind than the ring holds.
func TestHubRingWrapLost(t *testing.T) {
	tbl, clk := testTable(t, 4)
	hub := NewHub(HubConfig{Manual: true})
	defer hub.Close()
	sub := hub.Subscribe(8)
	hub.Watch(SourceID{Home: 0, Table: "T"}, tbl)

	insertN(t, tbl, clk, 0, 10) // 6 of these wrap out before any drain
	hub.Flush()
	d := <-sub.C()
	if len(d.Rows) != 4 || d.Lost != 6 {
		t.Fatalf("delta rows=%d lost=%d, want 4 lost 6", len(d.Rows), d.Lost)
	}
	if d.Rows[0].Vals[0].Int != 6 || d.Rows[3].Vals[0].Int != 9 {
		t.Fatalf("surviving rows = %v", d.Rows)
	}
	st := hub.Stats()
	if st.Delivered != 4 || st.Lost != 6 {
		t.Fatalf("stats = %+v", st)
	}
	ins, _ := tbl.Stats()
	if st.Delivered+st.Lost != ins {
		t.Fatalf("accounting: delivered %d + lost %d != inserts %d", st.Delivered, st.Lost, ins)
	}
}

// TestHubSlowConsumer checks that a subscriber who cannot keep up loses
// deltas with exact accounting: every inserted row is either received or
// reported via Dropped/PendingLost and the in-band Lost of a later delta.
func TestHubSlowConsumer(t *testing.T) {
	tbl, clk := testTable(t, 1024)
	hub := NewHub(HubConfig{Manual: true})
	defer hub.Close()
	sub := hub.Subscribe(1) // room for exactly one delta
	hub.Watch(SourceID{Home: 0, Table: "T"}, tbl)

	insertN(t, tbl, clk, 0, 3)
	hub.Flush() // fills the buffer
	insertN(t, tbl, clk, 3, 4)
	hub.Flush() // dropped: 4 rows
	insertN(t, tbl, clk, 7, 5)
	hub.Flush() // dropped: 5 rows

	if got := sub.Dropped(); got != 9 {
		t.Fatalf("dropped = %d, want 9", got)
	}
	if got := sub.PendingLost(); got != 9 {
		t.Fatalf("pending lost = %d, want 9", got)
	}

	first := <-sub.C()
	if len(first.Rows) != 3 || first.Lost != 0 {
		t.Fatalf("first delta = %+v", first)
	}
	// With buffer space free again, the next delta carries the accrued
	// loss in-band.
	insertN(t, tbl, clk, 12, 2)
	hub.Flush()
	second := <-sub.C()
	if len(second.Rows) != 2 || second.Lost != 9 {
		t.Fatalf("second delta rows=%d lost=%d, want 2 lost 9", len(second.Rows), second.Lost)
	}
	if sub.PendingLost() != 0 {
		t.Fatalf("pending lost = %d after in-band report", sub.PendingLost())
	}
	ins, _ := tbl.Stats()
	if got := uint64(len(first.Rows)+len(second.Rows)) + second.Lost; got != ins {
		t.Fatalf("received %d of %d inserted rows", got, ins)
	}
}

// TestHubUnwatchFinalDrain checks Unwatch delivers what the table still
// held and retires the source's accounting into the hub totals.
func TestHubUnwatchFinalDrain(t *testing.T) {
	tbl, clk := testTable(t, 64)
	hub := NewHub(HubConfig{Manual: true})
	defer hub.Close()
	var got int
	hub.SubscribeFunc(func(d Delta) { got += len(d.Rows) })
	hub.Watch(SourceID{Home: 0, Table: "T"}, tbl)

	insertN(t, tbl, clk, 0, 7)
	hub.Unwatch(SourceID{Home: 0, Table: "T"}) // no Flush ran
	if got != 7 {
		t.Fatalf("final drain delivered %d rows, want 7", got)
	}
	st := hub.Stats()
	if st.Sources != 0 || st.Delivered != 7 {
		t.Fatalf("stats = %+v", st)
	}
	// The insert hook is inert now: new rows neither deliver nor panic.
	insertN(t, tbl, clk, 7, 2)
	hub.Flush()
	if got != 7 {
		t.Fatalf("unwatched source delivered: got %d", got)
	}
}

// TestHubWatchSeesRetainedRows: rows inserted before Watch are delivered
// on the first drain (the cursor starts at zero).
func TestHubWatchSeesRetainedRows(t *testing.T) {
	tbl, clk := testTable(t, 64)
	insertN(t, tbl, clk, 0, 3)
	hub := NewHub(HubConfig{Manual: true})
	defer hub.Close()
	var got int
	hub.SubscribeFunc(func(d Delta) { got += len(d.Rows) })
	hub.Watch(SourceID{Home: 0, Table: "T"}, tbl)
	hub.Flush()
	if got != 3 {
		t.Fatalf("pre-existing rows delivered = %d, want 3", got)
	}
}

// TestHubDeterministicFanoutOrder: deltas fan out in (home, table) order
// regardless of registration order.
func TestHubDeterministicFanoutOrder(t *testing.T) {
	clk := clock.NewSimulated()
	hub := NewHub(HubConfig{Manual: true})
	defer hub.Close()
	var order []SourceID
	hub.SubscribeFunc(func(d Delta) { order = append(order, d.Source) })

	mk := func() *hwdb.Table {
		return hwdb.NewTable("T", hwdb.NewSchema(hwdb.Column{Name: "v", Type: hwdb.TInt}), 16)
	}
	tblB, tblA, tblA2 := mk(), mk(), mk()
	hub.Watch(SourceID{Home: 2, Table: "Links"}, tblB)
	hub.Watch(SourceID{Home: 1, Table: "Links"}, tblA)
	hub.Watch(SourceID{Home: 1, Table: "Flows"}, tblA2)
	for _, tbl := range []*hwdb.Table{tblB, tblA, tblA2} {
		if err := tbl.Insert(clk.Now(), []hwdb.Value{hwdb.Int64(1)}); err != nil {
			t.Fatal(err)
		}
	}
	hub.Flush()
	want := []SourceID{{1, "Flows"}, {1, "Links"}, {2, "Links"}}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("fan-out order = %v, want %v", order, want)
	}
}

// TestHubPump: without Manual, the background pump delivers on its own
// after an insert rings the doorbell.
func TestHubPump(t *testing.T) {
	tbl, clk := testTable(t, 64)
	hub := NewHub(HubConfig{})
	defer hub.Close()
	sub := hub.Subscribe(8)
	hub.Watch(SourceID{Home: 0, Table: "T"}, tbl)
	insertN(t, tbl, clk, 0, 2)
	// The pump may deliver the two rows as one or two deltas depending
	// on when it wakes; only the total matters.
	deadline := time.After(2 * time.Second)
	got := 0
	for got < 2 {
		select {
		case d := <-sub.C():
			got += len(d.Rows)
		case <-deadline:
			t.Fatalf("pump delivered %d of 2 rows", got)
		}
	}
}
