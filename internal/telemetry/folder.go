package telemetry

import (
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/hwdb"
	"repro/internal/packet"
)

// ViewTable is the fleet-wide stats view the folder maintains: one row
// per home per commit (only homes with activity insert), in an hwdb of
// its own so the same CQL the per-home interfaces speak works across the
// whole fleet. Each row is the home's delta since the previous commit
// plus its windowed byte rate at commit time.
const ViewTable = "FleetStats"

// DefaultViewRing sizes the FleetStats ring: at one commit a second it
// holds over four minutes of history for a 256-home fleet.
const DefaultViewRing = 65536

// DefaultRateWindow is the sliding window for byte/packet rates — the
// fleet-scale analogue of the paper's 5-second bandwidth display window.
const DefaultRateWindow = 10 * time.Second

// Rate is a windowed throughput estimate.
type Rate struct {
	BytesPerSec   float64
	PacketsPerSec float64
}

// DeviceRate is one device's windowed rate within a home.
type DeviceRate struct {
	MAC packet.MAC
	Rate
}

// HomeTotals is one home's cumulative counters plus its current rate.
type HomeTotals struct {
	Home     uint64
	Hosts    int
	Flows    uint64
	Links    uint64
	Leases   uint64
	Packets  uint64
	Bytes    uint64
	Lost     uint64
	TxPkts   uint64 // FlowPerf: packets devices transmitted
	LostPkts uint64 // FlowPerf: packets attributed as lost on the ingress hop
	Rate     Rate
}

// Totals is the continuously-maintained fleet-wide state: reading it is a
// mutex acquisition and a struct copy, never a fold pass over home rings.
type Totals struct {
	Homes   int // homes currently tracked
	Hosts   int // hosts across those homes right now
	Flows   uint64
	Links   uint64
	Leases  uint64
	Packets uint64
	Bytes   uint64
	Lost    uint64 // ring-wrapped rows the hub could not read
	Rows    uint64 // hwdb rows consumed from the hub
	Commits uint64

	// FlowPerf aggregates: per-flow performance rows from the measurement
	// planes' controller-vantage monitoring.
	PerfRows     uint64 // FlowPerf rows folded
	TxPkts       uint64 // packets devices transmitted (rx + attributed loss)
	LostPkts     uint64 // packets attributed as lost on the ingress hop
	Installs     uint64 // flows with a measured rule-install latency
	InstallUSSum uint64 // sum of those latencies (µs) — mean = sum/installs
}

// PeriodStats is one home's delta since the previous TakePeriod call —
// the seam fleet.Aggregate snapshots ride on.
type PeriodStats struct {
	Home     uint64
	Hosts    int
	Devices  int // distinct device MACs with new flow observations
	Flows    int
	Packets  uint64
	Bytes    uint64
	Links    int
	MeanRSSI float64
	Lost     uint64
}

// FolderConfig parameterizes a folder.
type FolderConfig struct {
	// Clock stamps view rows and evaluates rate windows (pass the fleet
	// clock; nil means wall clock).
	Clock clock.Clock
	// ViewRing bounds the FleetStats ring (default DefaultViewRing).
	ViewRing int
	// RateWindow is the sliding rate window (default DefaultRateWindow).
	RateWindow time.Duration
	// RateBuckets subdivides the window (default 10).
	RateBuckets int
}

// Folder consumes hub deltas and maintains the fleet-wide view: live
// cumulative totals, per-home and per-device windowed rates, and the
// FleetStats hwdb view (one delta row per active home per Commit). It
// registers itself as a synchronous hub handler, so after Hub.Flush its
// reads reflect every row inserted before the flush.
type Folder struct {
	hub     *Hub
	clk     clock.Clock
	view    *hwdb.DB
	window  time.Duration
	buckets int

	// Standard-schema column indexes, resolved once.
	fMAC, fPkts, fBytes    int
	lRSSI                  int
	pTx, pLost, pInstallUS int

	mu         sync.Mutex
	homes      map[uint64]*homeAcc
	fleet      Totals // Homes/Hosts filled in at read time
	hostsTotal int    // cached sum of hostsNow, refreshed each Commit
	rate       *rateRing
}

// homeAcc is one home's accumulated telemetry.
type homeAcc struct {
	id       uint64
	hosts    func() int
	hostsNow int // cached hosts(), refreshed at AddHome and each Commit

	// cumulative
	flows, links, leases uint64
	packets, bytes, lost uint64
	txPkts, lostPkts     uint64 // FlowPerf tx/loss

	agg periodAcc // since the last TakePeriod (fleet.Aggregate period)
	com periodAcc // since the last Commit (view-row period)

	rate *rateRing
	dev  map[int64]*rateRing
}

// periodAcc is a resettable delta accumulator.
type periodAcc struct {
	flows, links   int
	packets, bytes uint64
	lost           uint64
	rssiSum        float64
	devices        map[int64]struct{}
}

func (p *periodAcc) device(mac int64) {
	if p.devices == nil {
		p.devices = make(map[int64]struct{})
	}
	p.devices[mac] = struct{}{}
}

// NewFolder builds a folder over hub and registers it as a synchronous
// consumer. The folder owns the FleetStats view database. A nil hub
// builds a detached folder — a Federation attaches it to every shard hub
// instead, so one folder can fold N hubs into one global view.
func NewFolder(hub *Hub, cfg FolderConfig) *Folder {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.ViewRing <= 0 {
		cfg.ViewRing = DefaultViewRing
	}
	if cfg.RateWindow <= 0 {
		cfg.RateWindow = DefaultRateWindow
	}
	if cfg.RateBuckets <= 0 {
		cfg.RateBuckets = 10
	}
	view := hwdb.New(cfg.Clock)
	_, err := view.CreateTable(ViewTable, hwdb.NewSchema(
		hwdb.Column{Name: "home", Type: hwdb.TInt},
		hwdb.Column{Name: "hosts", Type: hwdb.TInt},
		hwdb.Column{Name: "devices", Type: hwdb.TInt},
		hwdb.Column{Name: "flows", Type: hwdb.TInt},
		hwdb.Column{Name: "packets", Type: hwdb.TInt},
		hwdb.Column{Name: "bytes", Type: hwdb.TInt},
		hwdb.Column{Name: "links", Type: hwdb.TInt},
		hwdb.Column{Name: "rssi", Type: hwdb.TReal},
		hwdb.Column{Name: "bps", Type: hwdb.TReal},
		hwdb.Column{Name: "lost", Type: hwdb.TInt},
	), cfg.ViewRing)
	if err != nil {
		panic(err) // fresh DB, fixed name: cannot collide
	}
	f := &Folder{
		hub:     hub,
		clk:     cfg.Clock,
		view:    view,
		window:  cfg.RateWindow,
		buckets: cfg.RateBuckets,
		homes:   make(map[uint64]*homeAcc),
		rate:    newRateRing(cfg.RateWindow, cfg.RateBuckets),
	}
	// The standard Homework schemas are fixed; resolve the column
	// indexes the fold needs once, from a throwaway prototype DB.
	proto := hwdb.NewHomework(cfg.Clock, 1)
	ft, _ := proto.Table(hwdb.TableFlows)
	f.fMAC, _ = ft.Schema().Index("mac")
	f.fPkts, _ = ft.Schema().Index("packets")
	f.fBytes, _ = ft.Schema().Index("bytes")
	lt, _ := proto.Table(hwdb.TableLinks)
	f.lRSSI, _ = lt.Schema().Index("rssi")
	pt, _ := proto.Table(hwdb.TableFlowPerf)
	f.pTx, _ = pt.Schema().Index("tx_pkts")
	f.pLost, _ = pt.Schema().Index("lost_pkts")
	f.pInstallUS, _ = pt.Schema().Index("install_us")
	if hub != nil {
		hub.SubscribeFunc(f.consume)
	}
	return f
}

// View returns the fleet-wide hwdb holding the FleetStats view; query it
// with the same CQL the per-home interfaces use.
func (f *Folder) View() *hwdb.DB { return f.view }

// AddHome starts tracking a home. hosts (may be nil) reports the home's
// current host count when snapshots are taken. If deltas for the home
// already arrived (consume tracks unknown homes implicitly so accounting
// stays exact under churn), the existing accumulator is kept and only
// gains the hosts callback.
func (f *Folder) AddHome(id uint64, hosts func() int) {
	f.mu.Lock()
	h, ok := f.homes[id]
	if !ok {
		h = &homeAcc{id: id, rate: newRateRing(f.window, f.buckets)}
		f.homes[id] = h
	}
	if hosts != nil && h.hosts == nil {
		h.hosts = hosts
		f.hostsTotal -= h.hostsNow
		h.hostsNow = hosts()
		f.hostsTotal += h.hostsNow
	}
	f.mu.Unlock()
}

// RemoveHome drops a home's per-home state. Its contribution to the fleet
// cumulative totals and its already-committed view rows remain.
func (f *Folder) RemoveHome(id uint64) {
	f.mu.Lock()
	if h, ok := f.homes[id]; ok {
		f.hostsTotal -= h.hostsNow
		delete(f.homes, id)
	}
	f.mu.Unlock()
}

// consume folds one hub delta. It runs synchronously inside the hub's
// drain pass, so commits and reads that follow a Flush see it applied.
func (f *Folder) consume(d Delta) {
	f.mu.Lock()
	defer f.mu.Unlock()
	h := f.homes[d.Source.Home]
	if h == nil {
		// Deltas for a never-added (or already-removed) home still count
		// fleet-wide so accounting stays exact under churn.
		h = &homeAcc{id: d.Source.Home, rate: newRateRing(f.window, f.buckets)}
		f.homes[d.Source.Home] = h
	}
	f.fleet.Rows += uint64(len(d.Rows))
	f.fleet.Lost += d.Lost
	h.lost += d.Lost
	h.agg.lost += d.Lost
	h.com.lost += d.Lost
	switch d.Source.Table {
	case hwdb.TableFlows:
		for i := range d.Rows {
			row := &d.Rows[i]
			pk := uint64(row.Vals[f.fPkts].Int)
			by := uint64(row.Vals[f.fBytes].Int)
			mac := row.Vals[f.fMAC].Int
			h.flows++
			h.packets += pk
			h.bytes += by
			for _, p := range [2]*periodAcc{&h.agg, &h.com} {
				p.flows++
				p.packets += pk
				p.bytes += by
				p.device(mac)
			}
			h.rate.add(row.TS, by, pk)
			f.rate.add(row.TS, by, pk)
			dr := h.dev[mac]
			if dr == nil {
				if h.dev == nil {
					h.dev = make(map[int64]*rateRing)
				}
				dr = newRateRing(f.window, f.buckets)
				h.dev[mac] = dr
			}
			dr.add(row.TS, by, pk)
			f.fleet.Flows++
			f.fleet.Packets += pk
			f.fleet.Bytes += by
		}
	case hwdb.TableLinks:
		for i := range d.Rows {
			rssi := d.Rows[i].Vals[f.lRSSI].AsFloat()
			h.links++
			h.agg.links++
			h.agg.rssiSum += rssi
			h.com.links++
			h.com.rssiSum += rssi
			f.fleet.Links++
		}
	case hwdb.TableLeases:
		h.leases += uint64(len(d.Rows))
		f.fleet.Leases += uint64(len(d.Rows))
	case hwdb.TableFlowPerf:
		for i := range d.Rows {
			row := &d.Rows[i]
			tx := uint64(row.Vals[f.pTx].Int)
			lost := uint64(row.Vals[f.pLost].Int)
			h.txPkts += tx
			h.lostPkts += lost
			f.fleet.PerfRows++
			f.fleet.TxPkts += tx
			f.fleet.LostPkts += lost
			if us := row.Vals[f.pInstallUS].Int; us > 0 {
				f.fleet.Installs++
				f.fleet.InstallUSSum += uint64(us)
			}
		}
	}
}

// Commit appends one FleetStats view row per home with activity since the
// previous Commit (home order, so runs are reproducible) and returns how
// many rows it wrote. The fleet layer calls it after every step barrier.
func (f *Folder) Commit() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fleet.Commits++
	now := f.clk.Now()
	rows := 0
	for _, id := range f.homeIDsLocked() {
		h := f.homes[id]
		// Refresh the cached host count once per commit, so Totals stays
		// an O(1) read between commits.
		if h.hosts != nil {
			f.hostsTotal -= h.hostsNow
			h.hostsNow = h.hosts()
			f.hostsTotal += h.hostsNow
		}
		c := &h.com
		// Rows lost to ring wrap count as activity: the view must show
		// the gap, not hide it.
		if c.flows == 0 && c.links == 0 && c.lost == 0 {
			continue
		}
		mean := 0.0
		if c.links > 0 {
			mean = c.rssiSum / float64(c.links)
		}
		_ = f.view.Insert(ViewTable,
			hwdb.Int64(int64(id)),
			hwdb.Int64(int64(h.hostsNow)),
			hwdb.Int64(int64(len(c.devices))),
			hwdb.Int64(int64(c.flows)),
			hwdb.Int64(int64(c.packets)),
			hwdb.Int64(int64(c.bytes)),
			hwdb.Int64(int64(c.links)),
			hwdb.Float(mean),
			hwdb.Float(h.rate.rate(now).BytesPerSec),
			hwdb.Int64(int64(c.lost)))
		*c = periodAcc{}
		rows++
	}
	return rows
}

// TakePeriod returns every tracked home's delta since the previous
// TakePeriod call (ascending home order, idle homes included with their
// host counts) and resets the period accumulators.
func (f *Folder) TakePeriod() []PeriodStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]PeriodStats, 0, len(f.homes))
	for _, id := range f.homeIDsLocked() {
		h := f.homes[id]
		a := &h.agg
		ps := PeriodStats{
			Home:    id,
			Devices: len(a.devices),
			Flows:   a.flows,
			Packets: a.packets,
			Bytes:   a.bytes,
			Links:   a.links,
			Lost:    a.lost,
		}
		if a.links > 0 {
			ps.MeanRSSI = a.rssiSum / float64(a.links)
		}
		if h.hosts != nil {
			ps.Hosts = h.hosts()
		}
		*a = periodAcc{}
		out = append(out, ps)
	}
	return out
}

// Totals returns the live fleet-wide counters: an O(1) read — one mutex
// acquisition and a struct copy — independent of home count and of how
// much history the homes hold. Hosts is as of the latest Commit (or
// AddHome for homes that have not seen a commit yet).
func (f *Folder) Totals() Totals {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.fleet
	t.Homes = len(f.homes)
	t.Hosts = f.hostsTotal
	return t
}

// HomeTotals returns every tracked home's cumulative counters and current
// rate, ascending by home ID.
func (f *Folder) HomeTotals() []HomeTotals {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.clk.Now()
	out := make([]HomeTotals, 0, len(f.homes))
	for _, id := range f.homeIDsLocked() {
		h := f.homes[id]
		out = append(out, HomeTotals{
			Home: id, Hosts: h.hostsNow,
			Flows: h.flows, Links: h.links, Leases: h.leases,
			Packets: h.packets, Bytes: h.bytes, Lost: h.lost,
			TxPkts: h.txPkts, LostPkts: h.lostPkts,
			Rate: h.rate.rate(now),
		})
	}
	return out
}

// FleetRate returns the fleet-wide windowed throughput.
func (f *Folder) FleetRate() Rate {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rate.rate(f.clk.Now())
}

// HomeRate returns one home's windowed throughput.
func (f *Folder) HomeRate(id uint64) Rate {
	f.mu.Lock()
	defer f.mu.Unlock()
	h := f.homes[id]
	if h == nil {
		return Rate{}
	}
	return h.rate.rate(f.clk.Now())
}

// DeviceRates returns the windowed per-device rates within a home,
// ascending by MAC — the paper's bandwidth display, one home of N.
func (f *Folder) DeviceRates(id uint64) []DeviceRate {
	f.mu.Lock()
	defer f.mu.Unlock()
	h := f.homes[id]
	if h == nil {
		return nil
	}
	now := f.clk.Now()
	macs := make([]int64, 0, len(h.dev))
	for m := range h.dev {
		macs = append(macs, m)
	}
	sort.Slice(macs, func(i, j int) bool { return macs[i] < macs[j] })
	out := make([]DeviceRate, 0, len(macs))
	for _, m := range macs {
		out = append(out, DeviceRate{
			MAC:  hwdb.Value{Type: hwdb.TMAC, Int: m}.MAC(),
			Rate: h.dev[m].rate(now),
		})
	}
	return out
}

func (f *Folder) homeIDsLocked() []uint64 {
	ids := make([]uint64, 0, len(f.homes))
	for id := range f.homes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// rateRing is a fixed set of time-aligned buckets implementing a sliding
// byte/packet rate window. Rows are bucketed by their own hwdb timestamp,
// so the estimate is deterministic under a simulated clock and unaffected
// by when the hub happened to drain them.
type rateRing struct {
	bucket time.Duration
	idx    []int64 // which absolute bucket index occupies each slot
	bytes  []uint64
	pkts   []uint64
}

func newRateRing(window time.Duration, buckets int) *rateRing {
	return &rateRing{
		bucket: window / time.Duration(buckets),
		idx:    make([]int64, buckets),
		bytes:  make([]uint64, buckets),
		pkts:   make([]uint64, buckets),
	}
}

func (r *rateRing) add(ts time.Time, bytes, pkts uint64) {
	bi := ts.UnixNano() / int64(r.bucket)
	slot := int(bi % int64(len(r.idx)))
	if slot < 0 {
		slot += len(r.idx)
	}
	if r.idx[slot] != bi {
		r.idx[slot] = bi
		r.bytes[slot] = 0
		r.pkts[slot] = 0
	}
	r.bytes[slot] += bytes
	r.pkts[slot] += pkts
}

func (r *rateRing) rate(now time.Time) Rate {
	nowBi := now.UnixNano() / int64(r.bucket)
	min := nowBi - int64(len(r.idx)) + 1
	var b, p uint64
	for slot := range r.idx {
		if r.idx[slot] >= min && r.idx[slot] <= nowBi {
			b += r.bytes[slot]
			p += r.pkts[slot]
		}
	}
	w := float64(len(r.idx)) * r.bucket.Seconds()
	return Rate{BytesPerSec: float64(b) / w, PacketsPerSec: float64(p) / w}
}
