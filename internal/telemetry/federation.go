package telemetry

import "sync"

// Federation folds N per-shard hubs into one coherent fleet: a single
// global Folder attached (as a synchronous consumer) to every member
// hub, plus subscription and accounting surfaces that span the members.
// It is the seam the hub was built for — shard engines keep their own
// hubs and know nothing of each other, while telemetry.Server, hwctl and
// the soak gate read one fleet regardless of shard count.
//
// Invariants (see docs/ARCHITECTURE.md "Fleet control plane"):
//
//   - Exact accounting composes: Stats sums the members, so
//     Delivered+Lost still equals total inserts across every table any
//     member hub ever watched — including drained and migrated homes,
//     whose final drain retires into their shard hub's books.
//   - Home IDs are fleet-unique (the coordinator allocates them), so
//     folding per-shard streams never merges two homes' rows.
//   - Fan-out is deterministic when the members are flushed in a fixed
//     order (the coordinator syncs engines in shard order): within one
//     hub's flush, sources drain in (Home, Table) order.
type Federation struct {
	folder *Folder

	mu      sync.Mutex
	members []Member
	// fns are the SubscribeFunc handlers registered so far; a hub
	// attached later gets every one of them, so fleet-level consumers
	// (the health monitor, the flight recorder) see replacement shards'
	// streams without re-subscribing.
	fns []func(Delta)
}

// NewFederation builds a federation with an empty member set and a
// detached global folder; Attach wires hubs in as shards come up.
func NewFederation(cfg FolderConfig) *Federation {
	return &Federation{folder: NewFolder(nil, cfg)}
}

// Attach adds a member hub: every delta the hub drains from here on is
// folded into the global view. Attach before the hub's first flush, or
// earlier rows will be visible only in the member's own accounting.
func (fd *Federation) Attach(hub *Hub) { fd.AttachMember(hub) }

// AttachMember adds any telemetry member — an in-process shard hub or a
// Relay mirroring a remote worker's hub — to the federation. Every delta
// the member fans out from here on is folded into the global view.
func (fd *Federation) AttachMember(m Member) {
	fd.mu.Lock()
	fd.members = append(fd.members, m)
	fns := append([]func(Delta){}, fd.fns...)
	fd.mu.Unlock()
	m.SubscribeFunc(fd.folder.consume)
	for _, fn := range fns {
		m.SubscribeFunc(fn)
	}
}

// Members returns how many hubs are federated.
func (fd *Federation) Members() int {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return len(fd.members)
}

// Folder returns the global folder: fleet-wide totals, per-home and
// per-device rates, and the federated FleetStats view.
func (fd *Federation) Folder() *Folder { return fd.folder }

// AddHome starts tracking a home in the global folder (hosts may be
// nil). The coordinator calls it when a home is assigned to any shard.
func (fd *Federation) AddHome(id uint64, hosts func() int) { fd.folder.AddHome(id, hosts) }

// RemoveHome drops a home's per-home state from the global folder after
// its shard drained it. Its contribution to the fleet cumulative totals
// and its committed view rows remain.
func (fd *Federation) RemoveHome(id uint64) { fd.folder.RemoveHome(id) }

// Commit appends one federated FleetStats view row per home with
// activity since the previous Commit. The coordinator calls it once per
// fleet tick, after syncing every member.
func (fd *Federation) Commit() int { return fd.folder.Commit() }

// Stats sums the members' cumulative accounting (including retired
// sources). Delivered+Lost equals the total inserts across every table
// any member has finished draining.
func (fd *Federation) Stats() HubStats {
	fd.mu.Lock()
	members := append([]Member(nil), fd.members...)
	fd.mu.Unlock()
	var st HubStats
	for _, h := range members {
		hs := h.Stats()
		st.Sources += hs.Sources
		st.Delivered += hs.Delivered
		st.Lost += hs.Lost
	}
	return st
}

// Subscribe registers one channel consumer across every member hub: one
// channel, one loss book, deltas from all shards interleaved in each
// shard's drain order. Deltas the consumer cannot accept are dropped
// with their row count accounted and folded into the Lost field of the
// next delivered delta, exactly as with a single hub.
func (fd *Federation) Subscribe(buf int) *Subscription {
	if buf <= 0 {
		buf = 64
	}
	fd.mu.Lock()
	members := append([]Member(nil), fd.members...)
	fd.mu.Unlock()
	sub := &Subscription{members: members, ch: make(chan Delta, buf)}
	for _, m := range members {
		m.addSub(sub)
	}
	return sub
}

// SubscribeFunc registers a synchronous handler on every member hub —
// current and future (hubs attached later are subscribed on Attach). It
// runs inside each member's drain pass. Source home IDs are fleet-unique
// so the handler needs no shard disambiguation.
func (fd *Federation) SubscribeFunc(fn func(Delta)) {
	fd.mu.Lock()
	members := append([]Member(nil), fd.members...)
	fd.fns = append(fd.fns, fn)
	fd.mu.Unlock()
	for _, m := range members {
		m.SubscribeFunc(fn)
	}
}
