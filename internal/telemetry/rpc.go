package telemetry

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hwdb"
	"repro/internal/trace"
)

// The streaming fleet endpoint speaks the HWDB/1 wire framing (the same
// single-datagram request/response/push format as the per-home hwdb RPC,
// so hwdb.Client drives it unchanged) with a fleet verb set:
//
//	EXEC        body = one CQL SELECT against the FleetStats view
//	            (including AS OF @<nanos> / HISTORY @<from> @<to> time
//	            travel when a flight recorder is attached to the view)
//	STATS       one-row tabular fleet totals + windowed rates
//	TRACE       per-stage punt-lifecycle latency summary (fleet-merged)
//	REPLAY      body = <home> <table> [@<from> [@<to>]]; scrubs the flight
//	            recorder's retained rows for one home's table
//	            (ERR when no replay source is installed)
//	SUBSCRIBE   body = [SUBSCRIBE] FLEET EVERY <n> <unit>; OK arg is the id
//	UNSUBSCRIBE body = id
//	PING
//
// Subscription pushes are per-home DELTAS: each push carries one row per
// home whose counters advanced since the previous push to that
// subscriber, with its current windowed rate. Ticks where nothing changed
// send no datagram at all — an idle fleet costs an idle subscriber
// nothing — and a client re-syncs by summing deltas, never by re-query.
const (
	rpcMagic = "HWDB/1"
	// MaxDatagram is the largest datagram the server will send.
	MaxDatagram = hwdb.MaxDatagram
)

// Server serves a folder's fleet-wide telemetry over UDP.
type Server struct {
	folder *Folder
	conn   *net.UDPConn
	// traceFn supplies fleet-merged punt-lifecycle stage summaries for
	// the TRACE verb (atomic: SetTraceSource may race in-flight requests).
	traceFn atomic.Pointer[func() []trace.StageStats]
	// replayFn serves the REPLAY verb from the flight recorder's
	// retained windows (same atomic discipline as traceFn).
	replayFn atomic.Pointer[func(home uint64, table string, from, to time.Time) (*hwdb.Result, error)]

	mu     sync.Mutex
	subs   map[uint64]*fleetSub
	nextID uint64
	closed atomic.Bool
	wg     sync.WaitGroup
}

// fleetSub is one delta-push subscription.
type fleetSub struct {
	id     uint64
	addr   *net.UDPAddr
	every  time.Duration
	cancel chan struct{}
}

// NewServer creates a server over folder. Call Serve to start it.
func NewServer(folder *Folder) *Server {
	return &Server{folder: folder, subs: make(map[uint64]*fleetSub)}
}

// SetTraceSource installs the function the TRACE verb calls for fleet-
// merged punt-lifecycle stage summaries (fleet.TraceStats, typically).
// Safe to call at any time, including while serving; a server without
// one answers TRACE with an empty table.
func (s *Server) SetTraceSource(fn func() []trace.StageStats) { s.traceFn.Store(&fn) }

// SetReplaySource installs the function the REPLAY verb calls to scrub a
// home's recorded table history (flight.Recorder.Replay, typically). Safe
// to call at any time; a server without one answers REPLAY with an error.
func (s *Server) SetReplaySource(fn func(home uint64, table string, from, to time.Time) (*hwdb.Result, error)) {
	s.replayFn.Store(&fn)
}

// Serve binds addr (e.g. "127.0.0.1:0") and serves until Close.
func (s *Server) Serve(addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return err
	}
	s.conn = conn
	s.wg.Add(1)
	go s.loop()
	return nil
}

// Addr returns the bound address once Serve has been called.
func (s *Server) Addr() string {
	if s.conn == nil {
		return ""
	}
	return s.conn.LocalAddr().String()
}

// Subscriptions returns the number of active subscriptions.
func (s *Server) Subscriptions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// Close stops the server and cancels all subscriptions. Safe to defer
// before checking Serve's error (a never-served server closes to a no-op).
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.mu.Lock()
	for id, sub := range s.subs {
		close(sub.cancel)
		delete(s.subs, id)
	}
	s.mu.Unlock()
	var err error
	if s.conn != nil {
		err = s.conn.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) loop() {
	defer s.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, addr, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		seq, verb, body, perr := hwdb.ParseRequest(string(buf[:n]))
		if perr != nil {
			s.reply(addr, seq, "ERR "+perr.Error(), "")
			continue
		}
		s.dispatch(addr, seq, verb, body)
	}
}

func (s *Server) dispatch(addr *net.UDPAddr, seq uint64, verb, body string) {
	switch verb {
	case "PING":
		s.reply(addr, seq, "OK pong", "")
	case "EXEC":
		res, err := s.folder.View().Query(strings.TrimSpace(body))
		if err != nil {
			s.reply(addr, seq, "ERR "+err.Error(), "")
			return
		}
		s.reply(addr, seq, fmt.Sprintf("OK %d", len(res.Rows)), res.Text())
	case "STATS":
		res := s.statsResult()
		s.reply(addr, seq, fmt.Sprintf("OK %d", len(res.Rows)), res.Text())
	case "TRACE":
		res := s.traceResult()
		s.reply(addr, seq, fmt.Sprintf("OK %d", len(res.Rows)), res.Text())
	case "REPLAY":
		res, err := s.replayResult(body)
		if err != nil {
			s.reply(addr, seq, "ERR "+err.Error(), "")
			return
		}
		s.reply(addr, seq, fmt.Sprintf("OK %d", len(res.Rows)), res.Text())
	case "SUBSCRIBE":
		every, err := parseFleetSubscribe(body)
		if err != nil {
			s.reply(addr, seq, "ERR "+err.Error(), "")
			return
		}
		id := s.addSubscription(addr, every)
		s.reply(addr, seq, fmt.Sprintf("OK %d", id), "")
	case "UNSUBSCRIBE":
		id, err := strconv.ParseUint(strings.TrimSpace(body), 10, 64)
		if err != nil {
			s.reply(addr, seq, "ERR bad subscription id", "")
			return
		}
		s.mu.Lock()
		sub, ok := s.subs[id]
		if ok {
			close(sub.cancel)
			delete(s.subs, id)
		}
		s.mu.Unlock()
		if ok {
			s.reply(addr, seq, "OK", "")
		} else {
			s.reply(addr, seq, "ERR no such subscription", "")
		}
	default:
		s.reply(addr, seq, "ERR unknown verb "+verb, "")
	}
}

// parseFleetSubscribe parses "[SUBSCRIBE] FLEET EVERY <n> <unit>".
func parseFleetSubscribe(body string) (time.Duration, error) {
	fields := strings.Fields(strings.ToUpper(strings.TrimSpace(body)))
	if len(fields) > 0 && fields[0] == "SUBSCRIBE" {
		fields = fields[1:]
	}
	if len(fields) != 4 || fields[0] != "FLEET" || fields[1] != "EVERY" {
		return 0, fmt.Errorf("body must be [SUBSCRIBE] FLEET EVERY <n> <unit>")
	}
	v, err := strconv.ParseFloat(fields[2], 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad period %q", fields[2])
	}
	var unit time.Duration
	switch fields[3] {
	case "MILLISECONDS", "MILLISECOND", "MS":
		unit = time.Millisecond
	case "SECONDS", "SECOND", "S":
		unit = time.Second
	case "MINUTES", "MINUTE", "M":
		unit = time.Minute
	default:
		return 0, fmt.Errorf("bad unit %q", fields[3])
	}
	return time.Duration(v * float64(unit)), nil
}

func (s *Server) addSubscription(addr *net.UDPAddr, every time.Duration) uint64 {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	sub := &fleetSub{id: id, addr: addr, every: every, cancel: make(chan struct{})}
	s.subs[id] = sub
	s.mu.Unlock()
	s.wg.Add(1)
	go s.run(sub)
	return id
}

// homeMark is the cumulative state last pushed to a subscriber for one
// home; the next push carries the delta past it.
type homeMark struct {
	flows, links         uint64
	packets, bytes, lost uint64
}

var pushCols = []string{"home", "hosts", "flows", "packets", "bytes", "links", "lost", "bytes_s", "pkts_s"}

// run drives one subscription: every period, diff the folder's per-home
// cumulative counters against what this subscriber has seen and push only
// the homes that moved. Nothing moved -> no datagram. The push is built
// against the datagram budget row by row: a home's mark advances only
// when its row actually fits, so deltas that overflow one datagram are
// carried — never silently dropped — and each tick resumes round-robin
// from where the previous push stopped, so a fleet too busy for one
// datagram cannot starve its high-ID homes.
func (s *Server) run(sub *fleetSub) {
	defer s.wg.Done()
	seen := make(map[uint64]homeMark)
	header := fmt.Sprintf("%s 0 PUSH %d\n", rpcMagic, sub.id)
	head := strings.Join(pushCols, "\t") + "\n"
	var resume uint64 // first home ID to consider this tick
	for {
		select {
		case <-sub.cancel:
			return
		case <-s.folder.clk.After(sub.every):
		}
		hts := s.folder.HomeTotals()
		if len(hts) == 0 {
			continue
		}
		// Rotate the ascending-ID list so iteration starts at the resume
		// cursor and wraps, visiting every home once.
		start := 0
		for i, ht := range hts {
			if ht.Home >= resume {
				start = i
				break
			}
		}
		var sb strings.Builder
		sb.WriteString(head)
		rows, full := 0, false
		for k := 0; k < len(hts); k++ {
			ht := hts[(start+k)%len(hts)]
			m := seen[ht.Home]
			if ht.Flows == m.flows && ht.Links == m.links && ht.Lost == m.lost {
				continue
			}
			line := deltaLine(ht, m)
			if len(header)+sb.Len()+len(line) > MaxDatagram {
				// The rest ride the next push; resume with this home.
				resume, full = ht.Home, true
				break
			}
			sb.WriteString(line)
			rows++
			seen[ht.Home] = homeMark{
				flows: ht.Flows, links: ht.Links,
				packets: ht.Packets, bytes: ht.Bytes, lost: ht.Lost,
			}
		}
		if !full {
			resume = 0
		}
		if rows == 0 {
			continue // idle tick: no datagram
		}
		if _, err := s.conn.WriteToUDP([]byte(header+sb.String()), sub.addr); err != nil {
			return
		}
	}
}

// deltaLine renders one home's delta-past-mark as a tabular body line in
// the same cell format hwdb.Result.Text emits (so ParseText reads it).
func deltaLine(ht HomeTotals, m homeMark) string {
	cells := []hwdb.Value{
		hwdb.Int64(int64(ht.Home)),
		hwdb.Int64(int64(ht.Hosts)),
		hwdb.Int64(int64(ht.Flows - m.flows)),
		hwdb.Int64(int64(ht.Packets - m.packets)),
		hwdb.Int64(int64(ht.Bytes - m.bytes)),
		hwdb.Int64(int64(ht.Links - m.links)),
		hwdb.Int64(int64(ht.Lost - m.lost)),
		hwdb.Float(ht.Rate.BytesPerSec),
		hwdb.Float(ht.Rate.PacketsPerSec),
	}
	var sb strings.Builder
	for i, v := range cells {
		if i > 0 {
			sb.WriteByte('\t')
		}
		sb.WriteString(v.Text())
	}
	sb.WriteByte('\n')
	return sb.String()
}

// replayResult parses "<home> <table> [@<from> [@<to>]]" (timestamps in
// unix nanoseconds, the leading @ optional) and scrubs the installed
// replay source.
func (s *Server) replayResult(body string) (*hwdb.Result, error) {
	fn := s.replayFn.Load()
	if fn == nil {
		return nil, fmt.Errorf("no replay source (flight recorder not attached)")
	}
	fields := strings.Fields(strings.TrimSpace(body))
	if len(fields) < 2 || len(fields) > 4 {
		return nil, fmt.Errorf("body must be <home> <table> [<from> [<to>]]")
	}
	home, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad home id %q", fields[0])
	}
	parseTS := func(s string) (time.Time, error) {
		n, err := strconv.ParseInt(strings.TrimPrefix(s, "@"), 10, 64)
		if err != nil {
			return time.Time{}, fmt.Errorf("bad timestamp %q", s)
		}
		return time.Unix(0, n), nil
	}
	var from, to time.Time
	if len(fields) >= 3 {
		if from, err = parseTS(fields[2]); err != nil {
			return nil, err
		}
	}
	if len(fields) == 4 {
		if to, err = parseTS(fields[3]); err != nil {
			return nil, err
		}
	}
	return (*fn)(home, fields[1], from, to)
}

// statsResult renders the live totals and fleet rate as one tabular row.
func (s *Server) statsResult() *hwdb.Result {
	t := s.folder.Totals()
	r := s.folder.FleetRate()
	return &hwdb.Result{
		Cols: []string{"homes", "hosts", "flows", "links", "leases", "packets", "bytes", "lost", "bytes_s", "pkts_s"},
		Rows: [][]hwdb.Value{{
			hwdb.Int64(int64(t.Homes)),
			hwdb.Int64(int64(t.Hosts)),
			hwdb.Int64(int64(t.Flows)),
			hwdb.Int64(int64(t.Links)),
			hwdb.Int64(int64(t.Leases)),
			hwdb.Int64(int64(t.Packets)),
			hwdb.Int64(int64(t.Bytes)),
			hwdb.Int64(int64(t.Lost)),
			hwdb.Float(r.BytesPerSec),
			hwdb.Float(r.PacketsPerSec),
		}},
	}
}

// traceResult renders the punt-lifecycle stage summaries as a tabular
// result: one row per contract transition, latencies in microseconds.
func (s *Server) traceResult() *hwdb.Result {
	res := &hwdb.Result{
		Cols: []string{"stage", "count", "p50_us", "p99_us", "max_us", "mean_us"},
	}
	fn := s.traceFn.Load()
	if fn == nil {
		return res
	}
	for _, st := range (*fn)() {
		res.Rows = append(res.Rows, []hwdb.Value{
			hwdb.Str(st.Stage),
			hwdb.Int64(int64(st.Count)),
			hwdb.Float(st.P50NS / 1e3),
			hwdb.Float(st.P99NS / 1e3),
			hwdb.Float(float64(st.MaxNS) / 1e3),
			hwdb.Float(st.MeanNS / 1e3),
		})
	}
	return res
}

func (s *Server) reply(addr *net.UDPAddr, seq uint64, status, body string) {
	msg := fmt.Sprintf("%s %d %s\n", rpcMagic, seq, status)
	_, _ = s.conn.WriteToUDP([]byte(msg+hwdb.TruncateBody(body, len(msg))), addr)
}
