package telemetry

import (
	"testing"

	"repro/internal/hwdb"
)

// TestFederationFoldsMemberHubs: one federation over two shard hubs
// folds both delta streams into a single global folder, sums the
// members' delivered/lost books, and a federated channel subscription
// receives from every member — the exact-accounting invariant composes
// across shards.
func TestFederationFoldsMemberHubs(t *testing.T) {
	tblA, clk := testTable(t, 64)
	tblB := hwdb.NewTable("T", hwdb.NewSchema(hwdb.Column{Name: "v", Type: hwdb.TInt}), 64)
	hubA := NewHub(HubConfig{Manual: true})
	defer hubA.Close()
	hubB := NewHub(HubConfig{Manual: true})
	defer hubB.Close()

	fed := NewFederation(FolderConfig{Clock: clk})
	fed.Attach(hubA)
	fed.Attach(hubB)
	if fed.Members() != 2 {
		t.Fatalf("members = %d", fed.Members())
	}
	sub := fed.Subscribe(8)
	defer sub.Close()

	// Fleet-unique home IDs across shards: home 1 on shard A, home 2 on B.
	fed.AddHome(1, nil)
	fed.AddHome(2, nil)
	hubA.Watch(SourceID{Home: 1, Table: "T"}, tblA)
	hubB.Watch(SourceID{Home: 2, Table: "T"}, tblB)

	insertN(t, tblA, clk, 0, 5)
	for i := 0; i < 3; i++ {
		if err := tblB.Insert(clk.Now(), []hwdb.Value{hwdb.Int64(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	hubA.Flush()
	hubB.Flush()

	if got := fed.Folder().Totals().Rows; got != 8 {
		t.Fatalf("global folder consumed %d of 8 rows", got)
	}
	st := fed.Stats()
	if st.Sources != 2 || st.Delivered != 8 || st.Lost != 0 {
		t.Fatalf("federated stats = %+v", st)
	}

	// The one subscription saw both shards' deltas on one channel.
	var rows uint64
	seen := map[uint64]bool{}
	for {
		select {
		case d := <-sub.C():
			rows += uint64(len(d.Rows))
			seen[d.Source.Home] = true
			continue
		default:
		}
		break
	}
	if rows+sub.PendingLost() != 8 || !seen[1] || !seen[2] {
		t.Fatalf("subscription saw %d rows (pending %d) from homes %v", rows, sub.PendingLost(), seen)
	}

	// Retiring a member's source moves its books into the retired
	// accounting, still summed by the federation.
	hubA.Unwatch(SourceID{Home: 1, Table: "T"})
	fed.RemoveHome(1)
	st = fed.Stats()
	if st.Sources != 1 || st.Delivered != 8 {
		t.Fatalf("post-retire stats = %+v", st)
	}
	if tot := fed.Folder().Totals(); tot.Homes != 1 || tot.Rows != 8 {
		t.Fatalf("post-retire totals = %+v", tot)
	}
}

// TestFolderAddHomeUpgradesImplicitAcc: a delta arriving before AddHome
// creates an implicit accumulator (accounting stays exact under churn);
// a later AddHome must attach the hosts callback to it rather than
// silently dropping it.
func TestFolderAddHomeUpgradesImplicitAcc(t *testing.T) {
	tbl, clk := testTable(t, 64)
	hub := NewHub(HubConfig{Manual: true})
	defer hub.Close()
	f := NewFolder(hub, FolderConfig{Clock: clk})
	hub.Watch(SourceID{Home: 9, Table: "T"}, tbl)
	insertN(t, tbl, clk, 0, 2)
	hub.Flush() // consume creates home 9 implicitly
	if tot := f.Totals(); tot.Homes != 1 || tot.Hosts != 0 {
		t.Fatalf("pre-AddHome totals = %+v", tot)
	}
	f.AddHome(9, func() int { return 4 })
	if tot := f.Totals(); tot.Hosts != 4 || tot.Rows != 2 {
		t.Fatalf("post-AddHome totals = %+v", tot)
	}
}
