package telemetry

import "sync"

// Member is the federation's view of one telemetry source: an in-process
// shard hub, or a Relay fed by a remote shard's delta stream. Both fan
// deltas to synchronous handlers and channel subscriptions and keep the
// same cumulative Delivered/Lost books, so federated accounting composes
// identically whether a shard lives in this process or behind a socket.
// The interface is sealed (unexported subscription hooks): implementations
// live in this package so the loss-accounting contract stays auditable in
// one place.
type Member interface {
	// SubscribeFunc registers a synchronous handler called for every
	// delta in fan-out order.
	SubscribeFunc(fn func(Delta))
	// Stats returns the member's cumulative delivery/loss accounting.
	Stats() HubStats

	addSub(sub *Subscription)
	removeSub(sub *Subscription)
}

var (
	_ Member = (*Hub)(nil)
	_ Member = (*Relay)(nil)
)

// Relay is the coordinator-side image of a remote shard's telemetry hub:
// the shardrpc client ingests each delta batch the worker piggybacks on
// its Sync/Drain responses, and the relay fans the deltas to the same
// consumers an in-process hub would — the federation's global folder and
// any fleet-spanning subscriptions — while keeping its own cumulative
// books. Rows the wire lost (a connection died after the worker committed
// a batch the coordinator never read) are reconciled on reconnect via
// AccountLost, so Delivered+Lost still equals every row the worker's hub
// ever fanned out: the exact-accounting invariant survives the process
// boundary.
//
// Concurrency: Ingest is called by one shardrpc client at a time (the
// client serializes its RPCs), but reads (Stats) and subscription churn
// are safe from any goroutine.
type Relay struct {
	mu        sync.Mutex
	fns       []func(Delta)
	subs      []*Subscription
	delivered uint64
	lost      uint64
	sources   map[SourceID]struct{}
}

// NewRelay builds an empty relay; attach it to a Federation with
// AttachMember and feed it from a remote delta stream with Ingest.
func NewRelay() *Relay {
	return &Relay{sources: make(map[SourceID]struct{})}
}

// Ingest folds one remote delta into the local fan-out: handlers and
// subscribers see it exactly as they would a delta drained from an
// in-process hub, and the relay's books absorb its row count and its
// in-band Lost.
func (r *Relay) Ingest(d Delta) {
	r.mu.Lock()
	r.delivered += uint64(len(d.Rows))
	r.lost += d.Lost
	r.sources[d.Source] = struct{}{}
	fns, subs := r.fns, r.subs
	r.mu.Unlock()
	for _, fn := range fns {
		fn(d)
	}
	for _, sub := range subs {
		sub.deliver(d)
	}
}

// AccountLost records rows the remote side fanned out but the wire never
// delivered here — batches committed by the worker while the connection
// was down. The shardrpc client calls it when a reconnect's book
// reconciliation finds the gap; the rows are gone (the worker does not
// retransmit committed batches) but never uncounted.
func (r *Relay) AccountLost(rows uint64) {
	if rows == 0 {
		return
	}
	r.mu.Lock()
	r.lost += rows
	r.mu.Unlock()
}

// Stats returns the relay's cumulative accounting. Sources counts the
// distinct (home, table) streams ever seen; Delivered+Lost equals every
// row the remote hub fanned out toward this coordinator, once the client
// has reconciled (it does so on every reconnect).
func (r *Relay) Stats() HubStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return HubStats{Sources: len(r.sources), Delivered: r.delivered, Lost: r.lost}
}

// SubscribeFunc registers a synchronous handler called inside Ingest for
// every relayed delta, in arrival order.
func (r *Relay) SubscribeFunc(fn func(Delta)) {
	r.mu.Lock()
	r.fns = append(r.fns, fn)
	r.mu.Unlock()
}

func (r *Relay) addSub(sub *Subscription) {
	r.mu.Lock()
	r.subs = append(r.subs, sub)
	r.mu.Unlock()
}

func (r *Relay) removeSub(sub *Subscription) {
	r.mu.Lock()
	for i, s := range r.subs {
		if s == sub {
			r.subs = append(append([]*Subscription(nil), r.subs[:i]...), r.subs[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
}
