// Package telemetry is the live fleet-wide streaming layer between the
// per-home Homework Databases and the management interfaces: a push-based
// subscription hub over hwdb tables, a background folder that keeps
// fleet-wide statistics (and windowed per-home/per-device rates — the
// fleet-scale analogue of the paper's bandwidth display) continuously
// current without an on-demand fold pass, and a streaming UDP endpoint
// that pushes fleet-aggregate deltas to remote subscribers.
//
// The hub inverts the polling design the fleet layer started with: rather
// than every reader re-scanning every home's rings, each hwdb insert sets
// a per-source dirty flag and rings a doorbell (no allocation, never
// blocking the inserter), and a single drain pass batch-reads each dirty
// table forward from a cursor (hwdb.Table.Tail) and fans the row delta out
// to subscribers. Loss is explicit at both levels: rows that wrap out of
// an hwdb ring before a drain are counted by Tail, and rows a slow channel
// subscriber cannot accept are counted per subscriber and folded into the
// Lost field of the next delta it does receive — every inserted row is
// either delivered or accounted, never silently gone.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/hwdb"
)

// SourceID names one watched table: which home it belongs to and which of
// the home's tables it is (hwdb.TableFlows, TableLinks, TableLeases, ...).
type SourceID struct {
	Home  uint64
	Table string
}

// Delta is one batched change notification: the rows inserted into Source
// since the previous delta, oldest-first, plus the number of rows lost —
// wrapped out of the hwdb ring before the hub could read them, or (for
// channel subscribers) dropped earlier at this subscriber's full buffer
// and reported in-band here.
type Delta struct {
	Source SourceID
	Rows   []hwdb.Row
	Lost   uint64
}

// HubConfig parameterizes a hub.
type HubConfig struct {
	// Manual disables the background pump goroutine: deltas move only
	// when a caller invokes Flush. Deterministic harnesses (the fleet
	// steps a simulated clock and flushes after each barrier) and
	// allocation tests run manual; real-time daemons leave it false.
	Manual bool
}

// Hub is an in-process, cursor-based subscription hub over hwdb tables.
// Watch registers tables; Subscribe/SubscribeFunc register consumers.
// All methods are safe for concurrent use.
type Hub struct {
	cfg  HubConfig
	wake chan struct{} // doorbell: buffered(1), rung by insert hooks
	quit chan struct{}
	done chan struct{}

	mu         sync.Mutex // registry: sources, subscribers
	sources    map[SourceID]*source
	order      []*source // sorted by (Home, Table); nil when stale
	subs       []*Subscription
	fns        []func(Delta)
	closed     bool
	retDeliver uint64 // accounting carried over from unwatched sources
	retLost    uint64

	// pumpMu serializes drain passes (pump, Flush, Unwatch's final
	// drain): source cursors must advance atomically with their fan-out
	// or two passes could double-deliver the same rows.
	pumpMu sync.Mutex
}

// source is one watched table plus its read cursor and accounting.
type source struct {
	id    SourceID
	table *hwdb.Table
	dirty atomic.Uint32
	gone  atomic.Bool

	// pumpMu-guarded:
	cursor    uint64
	delivered uint64
	lost      uint64
}

// HubStats is cumulative hub-level accounting, including sources that
// have since been unwatched. Delivered+Lost always equals the total
// inserts across every table the hub has finished draining.
type HubStats struct {
	Sources   int    // currently watched
	Delivered uint64 // rows fanned out to consumers
	Lost      uint64 // rows that wrapped out of an hwdb ring unread
}

// NewHub creates a hub; unless cfg.Manual is set a background pump
// goroutine drains dirty sources as inserts ring the doorbell.
func NewHub(cfg HubConfig) *Hub {
	h := &Hub{
		cfg:     cfg,
		wake:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		sources: make(map[SourceID]*source),
	}
	if cfg.Manual {
		close(h.done)
	} else {
		go h.pump()
	}
	return h
}

// Watch registers a table under id and hooks its insert path. Rows
// already retained in the ring are delivered on the first drain (the
// cursor starts at zero). Watching an id twice replaces the old source
// after a final drain, as Unwatch would.
func (h *Hub) Watch(id SourceID, t *hwdb.Table) {
	h.mu.Lock()
	for {
		if h.closed {
			h.mu.Unlock()
			return
		}
		if _, exists := h.sources[id]; !exists {
			break
		}
		// Replace: retire the old source (with its final drain), then
		// re-check — Close or another Watch may have raced the unlock.
		h.mu.Unlock()
		h.Unwatch(id)
		h.mu.Lock()
	}
	s := &source{id: id, table: t}
	s.dirty.Store(1) // deliver pre-existing rows on the first drain
	h.sources[id] = s
	h.order = nil
	h.mu.Unlock()

	// The insert hot path: one atomic load, one CAS, one non-blocking
	// channel send. No allocation, and the inserter never waits on any
	// consumer — a slow subscriber costs accounted loss, not insert
	// latency.
	t.OnInsert(func(hwdb.Row) {
		if s.gone.Load() {
			return
		}
		if s.dirty.CompareAndSwap(0, 1) {
			select {
			case h.wake <- struct{}{}:
			default:
			}
		}
	})
	select {
	case h.wake <- struct{}{}:
	default:
	}
}

// Unwatch removes a source after a final drain, so rows inserted before
// the call are still delivered and the source's accounting is retired
// into the hub totals. The hwdb insert hook becomes a no-op.
func (h *Hub) Unwatch(id SourceID) {
	h.mu.Lock()
	s, ok := h.sources[id]
	if ok {
		delete(h.sources, id)
		h.order = nil
	}
	h.mu.Unlock()
	if !ok {
		return
	}
	s.gone.Store(true)
	h.pumpMu.Lock()
	h.drainSource(s, true)
	h.mu.Lock()
	h.retDeliver += s.delivered
	h.retLost += s.lost
	h.mu.Unlock()
	h.pumpMu.Unlock()
}

// Subscribe registers a channel consumer with the given buffer (default
// 64). Deltas the consumer cannot accept are dropped with their row count
// accounted and folded into the Lost field of the next delivered delta.
func (h *Hub) Subscribe(buf int) *Subscription {
	if buf <= 0 {
		buf = 64
	}
	sub := &Subscription{members: []Member{h}, ch: make(chan Delta, buf)}
	h.addSub(sub)
	return sub
}

// addSub attaches an existing subscription to this hub's fan-out — the
// seam a Federation uses to span one subscription (one channel, one loss
// book) across several shard hubs.
func (h *Hub) addSub(sub *Subscription) {
	h.mu.Lock()
	if !h.closed {
		h.subs = append(h.subs, sub)
	}
	h.mu.Unlock()
}

// removeSub detaches one subscription from this hub's fan-out.
func (h *Hub) removeSub(sub *Subscription) {
	h.mu.Lock()
	for i, s := range h.subs {
		if s == sub {
			h.subs = append(append([]*Subscription(nil), h.subs[:i]...), h.subs[i+1:]...)
			break
		}
	}
	h.mu.Unlock()
}

// SubscribeFunc registers a synchronous handler called inside the drain
// pass for every delta, in deterministic source order. Handlers must be
// fast and must not call back into the hub; the folder is the intended
// consumer.
func (h *Hub) SubscribeFunc(fn func(Delta)) {
	h.mu.Lock()
	if !h.closed {
		h.fns = append(h.fns, fn)
	}
	h.mu.Unlock()
}

// Flush synchronously drains every dirty source and returns once every
// resulting delta has been handed to every consumer (delivered or
// accounted as dropped). The insert hook sets the dirty flag before
// Insert returns, so after a Flush, reads of any SubscribeFunc consumer
// reflect all rows whose Insert returned before Flush was called — and
// idle sources cost one atomic load each, not a Tail lock acquisition.
func (h *Hub) Flush() {
	h.pumpMu.Lock()
	for _, s := range h.snapshot() {
		h.drainSource(s, false)
	}
	h.pumpMu.Unlock()
}

// Stats returns cumulative hub accounting (including retired sources).
func (h *Hub) Stats() HubStats {
	h.pumpMu.Lock()
	defer h.pumpMu.Unlock()
	h.mu.Lock()
	st := HubStats{Sources: len(h.sources), Delivered: h.retDeliver, Lost: h.retLost}
	srcs := h.snapshotLocked()
	h.mu.Unlock()
	for _, s := range srcs {
		st.Delivered += s.delivered
		st.Lost += s.lost
	}
	return st
}

// Close stops the pump and detaches every source's insert hook. Channel
// subscribers receive no further deltas.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	for _, s := range h.sources {
		s.gone.Store(true)
	}
	h.mu.Unlock()
	close(h.quit)
	<-h.done
}

func (h *Hub) pump() {
	defer close(h.done)
	for {
		select {
		case <-h.quit:
			return
		case <-h.wake:
		}
		h.pumpMu.Lock()
		for _, s := range h.snapshot() {
			h.drainSource(s, false)
		}
		h.pumpMu.Unlock()
	}
}

// snapshot returns the watched sources in deterministic (Home, Table)
// order, so fan-out and view-row ordering are reproducible run to run.
func (h *Hub) snapshot() []*source {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.snapshotLocked()
}

func (h *Hub) snapshotLocked() []*source {
	if h.order == nil {
		h.order = make([]*source, 0, len(h.sources))
		for _, s := range h.sources {
			h.order = append(h.order, s)
		}
		sort.Slice(h.order, func(i, j int) bool {
			a, b := h.order[i].id, h.order[j].id
			if a.Home != b.Home {
				return a.Home < b.Home
			}
			return a.Table < b.Table
		})
	}
	return h.order
}

// drainSource batch-reads one source forward from its cursor and fans the
// delta out. Callers hold pumpMu. force reads regardless of the dirty
// flag and of gone (Unwatch's final drain); Flush and the pump only
// follow the dirty flags the insert hooks set.
func (h *Hub) drainSource(s *source, force bool) {
	if s.gone.Load() && !force {
		return
	}
	if s.dirty.Swap(0) == 0 && !force {
		return
	}
	rows, inserts, lost := s.table.Tail(s.cursor)
	s.cursor = inserts
	if len(rows) == 0 && lost == 0 {
		return
	}
	s.delivered += uint64(len(rows))
	s.lost += lost
	d := Delta{Source: s.id, Rows: rows, Lost: lost}
	h.mu.Lock()
	fns, subs := h.fns, h.subs
	h.mu.Unlock()
	for _, fn := range fns {
		fn(d)
	}
	for _, sub := range subs {
		sub.deliver(d)
	}
}

// Subscription is one channel consumer of one hub or (through a
// Federation) several members — in-process hubs and remote-shard relays
// alike: the channel, the loss accounting and the drop books are shared
// across every member the subscription is attached to.
type Subscription struct {
	members []Member
	ch      chan Delta

	pendingLost atomic.Uint64 // loss not yet reported in-band
	dropped     atomic.Uint64 // rows dropped at this subscriber's buffer
	closed      atomic.Bool
}

// C returns the delta channel. Deltas arrive in drain order; a delta's
// Lost covers both ring-wrap loss and rows previously dropped at this
// subscriber's buffer.
func (s *Subscription) C() <-chan Delta { return s.ch }

// Dropped returns how many rows have been dropped at this subscriber's
// full buffer so far. Each is also reported in-band via a later delta's
// Lost field (or remains visible in PendingLost).
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// PendingLost returns loss accrued since the last delivered delta — rows
// this subscriber missed that no delta has reported in-band yet. The sum
// of delivered rows, delivered Lost fields and PendingLost equals the
// rows fanned out to this subscriber plus their ring-wrap losses.
func (s *Subscription) PendingLost() uint64 { return s.pendingLost.Load() }

// Close detaches the subscription from every member it is attached to;
// no further deltas are delivered. The channel is left open (draining
// buffered deltas is fine).
func (s *Subscription) Close() {
	if s.closed.Swap(true) {
		return
	}
	for _, m := range s.members {
		m.removeSub(s)
	}
}

// deliver hands one delta to the subscriber without ever blocking the
// drain pass. Accrued loss rides in-band on the next delta that fits.
func (s *Subscription) deliver(d Delta) {
	if s.closed.Load() {
		return
	}
	if p := s.pendingLost.Swap(0); p > 0 {
		d.Lost += p
	}
	select {
	case s.ch <- d:
	default:
		s.pendingLost.Add(uint64(len(d.Rows)) + d.Lost)
		s.dropped.Add(uint64(len(d.Rows)))
	}
}
