package telemetry

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/hwdb"
	"repro/internal/packet"
	"repro/internal/trace"
)

// serverRig is a one-home telemetry stack behind a live UDP endpoint,
// driven by the unmodified hwdb client (the endpoint speaks HWDB/1).
type serverRig struct {
	hub    *Hub
	folder *Folder
	db     *hwdb.DB
	srv    *Server
	cli    *hwdb.Client
}

func newServerRig(t *testing.T) *serverRig {
	t.Helper()
	clk := clock.Real{} // subscription ticks need a real clock here
	hub := NewHub(HubConfig{Manual: true})
	t.Cleanup(hub.Close)
	folder := NewFolder(hub, FolderConfig{Clock: clk})
	db := hwdb.NewHomework(clk, 1024)
	folder.AddHome(7, func() int { return 2 })
	for _, name := range []string{hwdb.TableFlows, hwdb.TableLinks, hwdb.TableLeases} {
		tbl, _ := db.Table(name)
		hub.Watch(SourceID{Home: 7, Table: name}, tbl)
	}
	srv := NewServer(folder)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	cli, err := hwdb.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cli.Close() })
	return &serverRig{hub: hub, folder: folder, db: db, srv: srv, cli: cli}
}

func (r *serverRig) traffic(t *testing.T, n int, bytes uint64) {
	t.Helper()
	for i := 0; i < n; i++ {
		err := r.db.InsertFlow(packet.MAC{2, 1}, packet.FiveTuple{Proto: packet.ProtoTCP, DstPort: 80}, 1, bytes)
		if err != nil {
			t.Fatal(err)
		}
	}
	r.hub.Flush()
}

// TestServerExecQueriesView: EXEC runs CQL against the live FleetStats
// view through the standard hwdb client.
func TestServerExecQueriesView(t *testing.T) {
	r := newServerRig(t)
	if err := r.cli.Ping(); err != nil {
		t.Fatal(err)
	}
	r.traffic(t, 3, 1000)
	r.folder.Commit()

	res, err := r.cli.Exec("SELECT home, sum(bytes) AS b FROM FleetStats GROUP BY home")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "7" || res.Rows[0][1].Str != "3000" {
		t.Fatalf("view over RPC = %v", res.Rows)
	}
	// Non-SELECT statements are rejected: the view is read-only remotely.
	if _, err := r.cli.Exec("INSERT INTO FleetStats VALUES (1,1,1,1,1,1,1,1.0,1.0)"); err == nil {
		t.Fatal("remote INSERT into the view was accepted")
	}
}

// TestServerStatsVerb exercises the STATS verb over a raw datagram (the
// generic client has no STATS helper).
func TestServerStatsVerb(t *testing.T) {
	r := newServerRig(t)
	r.traffic(t, 2, 500)

	conn, err := net.Dial("udp", r.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("HWDB/1 1 STATS\n")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 65536)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	got := string(buf[:n])
	if !strings.HasPrefix(got, "HWDB/1 1 OK 1\n") {
		t.Fatalf("stats reply = %q", got)
	}
	res, err := hwdb.ParseText(got[strings.IndexByte(got, '\n')+1:])
	if err != nil {
		t.Fatal(err)
	}
	idx := func(col string) int {
		for i, c := range res.Cols {
			if c == col {
				return i
			}
		}
		t.Fatalf("no %s column in %v", col, res.Cols)
		return -1
	}
	row := res.Rows[0]
	if row[idx("homes")].Str != "1" || row[idx("hosts")].Str != "2" ||
		row[idx("flows")].Str != "2" || row[idx("bytes")].Str != "1000" {
		t.Fatalf("stats row = %v (cols %v)", row, res.Cols)
	}
}

// TestServerTraceVerb: TRACE renders the installed trace source's stage
// summaries as a tabular result (one row per transition, µs units); a
// server without a source answers with an empty table, not an error.
func TestServerTraceVerb(t *testing.T) {
	r := newServerRig(t)
	r.srv.SetTraceSource(func() []trace.StageStats {
		return []trace.StageStats{
			{Stage: "punt->dispatch", Count: 42, P50NS: 1500, P99NS: 9000, MaxNS: 12000, MeanNS: 2000},
			{Stage: "punt->barrier", Count: 42, P50NS: 8000, P99NS: 64000, MaxNS: 90000, MeanNS: 11000},
		}
	})

	conn, err := net.Dial("udp", r.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("HWDB/1 1 TRACE\n")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 65536)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	got := string(buf[:n])
	if !strings.HasPrefix(got, "HWDB/1 1 OK 2\n") {
		t.Fatalf("trace reply = %q", got)
	}
	res, err := hwdb.ParseText(got[strings.IndexByte(got, '\n')+1:])
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"stage", "count", "p50_us", "p99_us", "max_us", "mean_us"}
	if strings.Join(res.Cols, ",") != strings.Join(want, ",") {
		t.Fatalf("trace cols = %v", res.Cols)
	}
	if res.Rows[0][0].Str != "punt->dispatch" || res.Rows[0][1].Str != "42" {
		t.Fatalf("trace row 0 = %v", res.Rows[0])
	}
	if res.Rows[0][2].Str != "1.5" { // 1500ns = 1.5µs
		t.Fatalf("p50_us = %q", res.Rows[0][2].Str)
	}

	// No source installed: empty table, OK status.
	srv2 := NewServer(r.folder)
	if err := srv2.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv2.Close() })
	conn2, err := net.Dial("udp", srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte("HWDB/1 9 TRACE\n")); err != nil {
		t.Fatal(err)
	}
	_ = conn2.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err = conn2.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(buf[:n]); !strings.HasPrefix(got, "HWDB/1 9 OK 0\n") {
		t.Fatalf("sourceless trace reply = %q", got)
	}
}

// TestServerSubscribeDeltaPushes: a FLEET subscription pushes per-home
// deltas only when counters move — idle ticks send no datagram at all.
func TestServerSubscribeDeltaPushes(t *testing.T) {
	r := newServerRig(t)
	id, err := r.cli.Subscribe("FLEET EVERY 0.02 SECONDS")
	if err != nil {
		t.Fatal(err)
	}
	if r.srv.Subscriptions() != 1 {
		t.Fatalf("subscriptions = %d", r.srv.Subscriptions())
	}

	// Idle fleet: several periods elapse, no push arrives.
	if p, err := r.cli.WaitPush(200 * time.Millisecond); err == nil {
		t.Fatalf("idle fleet pushed %+v", p)
	}

	r.traffic(t, 4, 250)
	push, err := r.cli.WaitPush(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if push.SubID != id || len(push.Result.Rows) != 1 {
		t.Fatalf("push = %+v", push)
	}
	row := push.Result.Rows[0]
	if row[0].Str != "7" || row[2].Str != "4" || row[4].Str != "1000" {
		t.Fatalf("delta row = %v (cols %v)", row, push.Result.Cols)
	}

	// Idle again: the subscriber has seen everything; no more datagrams.
	if p, err := r.cli.WaitPush(200 * time.Millisecond); err == nil {
		t.Fatalf("caught-up subscriber pushed %+v", p)
	}

	// New activity pushes only the delta past the last push.
	r.traffic(t, 1, 100)
	push, err = r.cli.WaitPush(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	row = push.Result.Rows[0]
	if row[2].Str != "1" || row[4].Str != "100" {
		t.Fatalf("second delta row = %v", row)
	}

	if err := r.cli.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	if r.srv.Subscriptions() != 0 {
		t.Fatalf("subscriptions after unsubscribe = %d", r.srv.Subscriptions())
	}
}

// TestDeltaLineMatchesResultText pins the push row rendering to the
// hwdb tabular wire format, so ParseText on the client keeps working.
func TestDeltaLineMatchesResultText(t *testing.T) {
	ht := HomeTotals{
		Home: 5, Hosts: 3, Flows: 10, Links: 4, Packets: 100, Bytes: 9000,
		Lost: 2, Rate: Rate{BytesPerSec: 4500.5, PacketsPerSec: 50},
	}
	m := homeMark{flows: 4, links: 1, packets: 40, bytes: 2000, lost: 1}
	res := &hwdb.Result{Cols: pushCols, Rows: [][]hwdb.Value{{
		hwdb.Int64(5), hwdb.Int64(3), hwdb.Int64(6), hwdb.Int64(60),
		hwdb.Int64(7000), hwdb.Int64(3), hwdb.Int64(1),
		hwdb.Float(4500.5), hwdb.Float(50),
	}}}
	want := res.Text()
	got := strings.Join(pushCols, "\t") + "\n" + deltaLine(ht, m)
	if got != want {
		t.Fatalf("delta line diverges from Result.Text:\ngot  %q\nwant %q", got, want)
	}
}

// TestServerCloseWithoutServe: Close on a never-served server is a safe
// no-op (the idiomatic defer-before-error-check pattern must not panic).
func TestServerCloseWithoutServe(t *testing.T) {
	hub := NewHub(HubConfig{Manual: true})
	defer hub.Close()
	srv := NewServer(NewFolder(hub, FolderConfig{Clock: clock.Real{}}))
	if err := srv.Close(); err != nil {
		t.Fatalf("close without serve: %v", err)
	}
}

// TestParseFleetSubscribe table-drives the subscription body grammar.
func TestParseFleetSubscribe(t *testing.T) {
	cases := []struct {
		body    string
		want    time.Duration
		wantErr bool
	}{
		{"FLEET EVERY 1 SECONDS", time.Second, false},
		{"SUBSCRIBE FLEET EVERY 0.5 SECONDS", 500 * time.Millisecond, false},
		{"fleet every 20 ms", 20 * time.Millisecond, false},
		{"FLEET EVERY 2 MINUTES", 2 * time.Minute, false},
		{"FLEET EVERY 0 SECONDS", 0, true},
		{"FLEET EVERY x SECONDS", 0, true},
		{"FLEET EVERY 1 FORTNIGHTS", 0, true},
		{"SELECT * FROM Flows", 0, true},
		{"", 0, true},
	}
	for _, tc := range cases {
		got, err := parseFleetSubscribe(tc.body)
		if (err != nil) != tc.wantErr {
			t.Errorf("%q: err = %v, wantErr %v", tc.body, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("%q = %v, want %v", tc.body, got, tc.want)
		}
	}
}

// TestServerReplayVerb: REPLAY routes the parsed home/table/bounds to the
// installed replay source and errors when none is attached.
func TestServerReplayVerb(t *testing.T) {
	r := newServerRig(t)

	conn, err := net.Dial("udp", r.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 65536)
	ask := func(seq, body string) string {
		t.Helper()
		if _, err := conn.Write([]byte("HWDB/1 " + seq + " REPLAY\n" + body)); err != nil {
			t.Fatal(err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		return string(buf[:n])
	}

	// No source installed yet: ERR mentioning the flight recorder.
	if got := ask("1", "7 Flows"); !strings.HasPrefix(got, "HWDB/1 1 ERR no replay source") {
		t.Fatalf("sourceless replay reply = %q", got)
	}

	// The source runs on the server's datagram goroutine; the UDP reply
	// is not a synchronization edge, so the captures need a lock.
	var mu sync.Mutex
	var gotHome uint64
	var gotTable string
	var gotFrom, gotTo time.Time
	r.srv.SetReplaySource(func(home uint64, table string, from, to time.Time) (*hwdb.Result, error) {
		mu.Lock()
		gotHome, gotTable, gotFrom, gotTo = home, table, from, to
		mu.Unlock()
		return &hwdb.Result{
			Cols: []string{"timestamp", "n"},
			Rows: [][]hwdb.Value{{hwdb.TimeVal(time.Unix(0, 5)), hwdb.Int64(1)}},
		}, nil
	})

	got := ask("2", "7 Flows @100 @200")
	if !strings.HasPrefix(got, "HWDB/1 2 OK 1\n") {
		t.Fatalf("replay reply = %q", got)
	}
	mu.Lock()
	if gotHome != 7 || gotTable != "Flows" || gotFrom.UnixNano() != 100 || gotTo.UnixNano() != 200 {
		t.Fatalf("source called with home=%d table=%q from=%d to=%d",
			gotHome, gotTable, gotFrom.UnixNano(), gotTo.UnixNano())
	}
	mu.Unlock()
	res, err := hwdb.ParseText(got[strings.IndexByte(got, '\n')+1:])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Cols[0] != "timestamp" {
		t.Fatalf("replay result = %+v", res)
	}

	// Bounds are optional: two-field body passes zero times through.
	if got := ask("3", "7 Links"); !strings.HasPrefix(got, "HWDB/1 3 OK 1\n") {
		t.Fatalf("replay reply = %q", got)
	}
	mu.Lock()
	if gotTable != "Links" || !gotFrom.IsZero() || !gotTo.IsZero() {
		t.Fatalf("open-bounds call: table=%q from=%v to=%v", gotTable, gotFrom, gotTo)
	}
	mu.Unlock()

	for i, bad := range []string{"", "7", "x Flows", "7 Flows @x", "7 Flows @1 @2 @3"} {
		seq := fmt.Sprintf("%d", 10+i)
		if got := ask(seq, bad); !strings.HasPrefix(got, "HWDB/1 "+seq+" ERR") {
			t.Errorf("REPLAY %q reply = %q, want ERR", bad, got)
		}
	}
}
