package telemetry

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/hwdb"
)

func relayDelta(home uint64, n int, lost uint64) Delta {
	rows := make([]hwdb.Row, n)
	for i := range rows {
		rows[i] = hwdb.Row{
			TS:   time.Date(2011, 8, 15, 9, 0, i, 0, time.UTC),
			Vals: []hwdb.Value{hwdb.Int64(int64(i))},
		}
	}
	return Delta{Source: SourceID{Home: home, Table: "T"}, Rows: rows, Lost: lost}
}

// TestRelayBooks: Ingest counts rows and in-band loss, AccountLost adds
// wire loss, Sources counts distinct streams — the same ledger a hub
// keeps, maintained for deltas that crossed a socket.
func TestRelayBooks(t *testing.T) {
	r := NewRelay()
	if st := r.Stats(); st != (HubStats{}) {
		t.Fatalf("fresh relay stats = %+v", st)
	}
	r.Ingest(relayDelta(1, 4, 0))
	r.Ingest(relayDelta(1, 2, 1))
	r.Ingest(relayDelta(2, 3, 0))
	if st := r.Stats(); st.Sources != 2 || st.Delivered != 9 || st.Lost != 1 {
		t.Fatalf("stats = %+v, want 2 sources, 9 delivered, 1 lost", st)
	}
	r.AccountLost(0) // no-op
	r.AccountLost(5)
	if st := r.Stats(); st.Delivered != 9 || st.Lost != 6 {
		t.Fatalf("stats after AccountLost = %+v, want 9 delivered, 6 lost", st)
	}
}

// TestRelayFanout: synchronous handlers and channel subscriptions both
// see every ingested delta, and closing a subscription detaches it.
func TestRelayFanout(t *testing.T) {
	r := NewRelay()
	var fnRows int
	r.SubscribeFunc(func(d Delta) { fnRows += len(d.Rows) })

	sub := &Subscription{members: []Member{r}, ch: make(chan Delta, 8)}
	r.addSub(sub)

	r.Ingest(relayDelta(1, 3, 0))
	r.Ingest(relayDelta(2, 2, 0))
	if fnRows != 5 {
		t.Errorf("handler saw %d rows, want 5", fnRows)
	}
	var subRows int
	for len(sub.C()) > 0 {
		subRows += len((<-sub.C()).Rows)
	}
	if subRows != 5 {
		t.Errorf("subscription saw %d rows, want 5", subRows)
	}

	sub.Close()
	r.Ingest(relayDelta(1, 1, 0))
	if len(sub.C()) != 0 {
		t.Error("closed subscription still receiving")
	}
	if fnRows != 6 {
		t.Errorf("handler saw %d rows after sub close, want 6", fnRows)
	}
}

// TestFederationMixesHubAndRelay: a federation spanning one in-process
// hub and one relay (standing in for a remote worker) folds both delta
// streams into the global folder, sums both books, and a federated
// subscription receives from both members — remote shards are
// indistinguishable from local ones above the Member seam.
func TestFederationMixesHubAndRelay(t *testing.T) {
	clk := clock.NewSimulated()
	tbl := hwdb.NewTable("T", hwdb.NewSchema(hwdb.Column{Name: "v", Type: hwdb.TInt}), 64)
	hub := NewHub(HubConfig{Manual: true})
	defer hub.Close()
	relay := NewRelay()

	fed := NewFederation(FolderConfig{Clock: clk})
	fed.Attach(hub)
	fed.AttachMember(relay)
	if fed.Members() != 2 {
		t.Fatalf("members = %d, want 2", fed.Members())
	}
	sub := fed.Subscribe(8)
	defer sub.Close()

	fed.AddHome(1, nil)
	fed.AddHome(2, nil)
	hub.Watch(SourceID{Home: 1, Table: "T"}, tbl)

	insertN(t, tbl, clk, 0, 5)
	hub.Flush()
	relay.Ingest(relayDelta(2, 3, 0))

	if got := fed.Folder().Totals().Rows; got != 8 {
		t.Fatalf("global folder consumed %d of 8 rows", got)
	}
	st := fed.Stats()
	if st.Delivered != 8 || st.Lost != 0 {
		t.Fatalf("federated stats = %+v, want 8 delivered", st)
	}

	var rows int
	seen := map[uint64]bool{}
	for len(sub.C()) > 0 {
		d := <-sub.C()
		rows += len(d.Rows)
		seen[d.Source.Home] = true
	}
	if rows != 8 || !seen[1] || !seen[2] {
		t.Fatalf("subscription saw %d rows from homes %v, want 8 from both", rows, seen)
	}

	// Wire loss reconciled into the relay stays visible federation-wide:
	// the invariant delivered+lost == fanned-out survives the mix.
	relay.AccountLost(4)
	if st := fed.Stats(); st.Delivered != 8 || st.Lost != 4 {
		t.Fatalf("federated stats after wire loss = %+v, want 8/4", st)
	}
}

// TestFederationSubscribeFuncSpansRelay: a handler registered on the
// federation fires for deltas from members attached before and after the
// registration, relay included.
func TestFederationSubscribeFuncSpansRelay(t *testing.T) {
	fed := NewFederation(FolderConfig{})
	early := NewRelay()
	fed.AttachMember(early)

	var rows int
	fed.SubscribeFunc(func(d Delta) { rows += len(d.Rows) })

	late := NewRelay()
	fed.AttachMember(late)

	early.Ingest(relayDelta(1, 2, 0))
	late.Ingest(relayDelta(2, 3, 0))
	if rows != 5 {
		t.Fatalf("handler saw %d rows, want 5 (2 early + 3 late)", rows)
	}
}
