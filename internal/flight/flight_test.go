package flight_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/fleet"
	"repro/internal/flight"
	"repro/internal/health"
	"repro/internal/hwdb"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/telemetry"
)

// testTarget is a literal upstream IP so app traffic needs no DNS zones.
const testTarget = "203.0.113.10"

// addTraffic joins one IoT host to every nth home so folds have work.
func addTraffic(t *testing.T, f *fleet.Fleet, nth uint64) {
	t.Helper()
	for _, h := range f.Homes() {
		if h.ID%nth != 0 {
			continue
		}
		host, err := h.Join("", h.ID%2 == 0, netsim.Pos{X: 2})
		if err != nil {
			t.Fatal(err)
		}
		host.AddApp(netsim.NewApp(netsim.AppIoT, testTarget, 600))
	}
}

// TestRecorderRetentionBooks drives deltas through a hub into a recorder
// with aggressive compaction and checks the exact-accounting invariant:
// every delivered row is stored or compacted, never silently gone.
func TestRecorderRetentionBooks(t *testing.T) {
	clk := clock.NewSimulated()
	db := hwdb.New(clk)
	tbl, err := db.CreateTable("T", hwdb.NewSchema(hwdb.Column{Name: "n", Type: hwdb.TInt}), 64)
	if err != nil {
		t.Fatal(err)
	}
	hub := telemetry.NewHub(telemetry.HubConfig{Manual: true})
	defer hub.Close()
	hub.Watch(telemetry.SourceID{Home: 1, Table: "T"}, tbl)

	rec := flight.NewRecorder(flight.RecorderConfig{
		Window:    time.Second,
		Retention: 3 * time.Second, // keep ~3 windows
		Schema: func(table string) *hwdb.Schema {
			if table == "T" {
				return tbl.Schema()
			}
			return nil
		},
	})
	rec.Attach(hub)

	for i := 0; i < 20; i++ {
		if err := db.Insert("T", hwdb.Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
		hub.Flush()
		clk.Advance(time.Second)
	}
	st := rec.Stats()
	if st.Delivered != 20 {
		t.Fatalf("delivered = %d, want 20", st.Delivered)
	}
	if st.Compacted == 0 {
		t.Fatal("retention never compacted anything")
	}
	if st.Delivered+st.ViewRows != st.Stored+st.Compacted {
		t.Fatalf("books: %d delivered + %d view != %d stored + %d compacted",
			st.Delivered, st.ViewRows, st.Stored, st.Compacted)
	}
	// The retained tail is the newest rows, oldest-first.
	rows := rec.Rows(1, "T", time.Time{}, time.Time{})
	if len(rows) != int(st.Stored) {
		t.Fatalf("Rows = %d, stored = %d", len(rows), st.Stored)
	}
	if rows[len(rows)-1].Vals[0].Int != 19 {
		t.Fatalf("newest retained row = %v", rows[len(rows)-1])
	}
	// Replay projects a timestamp column ahead of the schema.
	res, err := rec.Replay(1, "T", time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 2 || res.Cols[0] != "timestamp" || res.Cols[1] != "n" {
		t.Fatalf("Replay cols = %v", res.Cols)
	}
	if _, err := rec.Replay(99, "T", time.Time{}, time.Time{}); err == nil {
		t.Error("Replay of unrecorded home succeeded")
	}
}

// TestRecorderMaxWindowsRingCompaction checks the ring-cap eviction path.
func TestRecorderMaxWindowsRingCompaction(t *testing.T) {
	clk := clock.NewSimulated()
	db := hwdb.New(clk)
	tbl, err := db.CreateTable("T", hwdb.NewSchema(hwdb.Column{Name: "n", Type: hwdb.TInt}), 64)
	if err != nil {
		t.Fatal(err)
	}
	hub := telemetry.NewHub(telemetry.HubConfig{Manual: true})
	defer hub.Close()
	hub.Watch(telemetry.SourceID{Home: 1, Table: "T"}, tbl)

	rec := flight.NewRecorder(flight.RecorderConfig{
		Window:     time.Second,
		Retention:  -1, // age never evicts
		MaxWindows: 4,
	})
	rec.Attach(hub)
	for i := 0; i < 10; i++ {
		if err := db.Insert("T", hwdb.Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
		hub.Flush()
		clk.Advance(time.Second)
	}
	st := rec.Stats()
	if st.Windows != 4 {
		t.Fatalf("windows = %d, want ring cap 4", st.Windows)
	}
	if st.Stored != 4 || st.Compacted != 6 {
		t.Fatalf("stored/compacted = %d/%d, want 4/6", st.Stored, st.Compacted)
	}
}

// TestRecorderInsertHotPathZeroAllocs pins the acceptance bound: a flight
// recorder attached at the subscriber seam adds zero allocations to a
// watched table's insert path (the recorder only works at drain time).
func TestRecorderInsertHotPathZeroAllocs(t *testing.T) {
	clk := clock.NewSimulated()
	db := hwdb.New(clk)
	tbl, err := db.CreateTable("T", hwdb.NewSchema(hwdb.Column{Name: "n", Type: hwdb.TInt}), 4096)
	if err != nil {
		t.Fatal(err)
	}
	hub := telemetry.NewHub(telemetry.HubConfig{Manual: true})
	defer hub.Close()
	hub.Watch(telemetry.SourceID{Home: 1, Table: "T"}, tbl)
	rec := flight.NewRecorder(flight.RecorderConfig{})
	rec.Attach(hub)

	vals := []hwdb.Value{hwdb.Int64(7)}
	ts := clk.Now()
	if n := testing.AllocsPerRun(1000, func() {
		if err := tbl.Insert(ts, vals); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("recorded insert allocates %.1f per op, want 0", n)
	}
}

// TestRecorderChurnFleet32 is the -race gate: a recorder attached to a
// 32-home fleet with live traffic, home churn and concurrent AS OF
// queries racing the steps. At the end the recorder's books reconcile
// exactly with the federation's, and the insert hot path of a live
// home's watched table is still allocation-free.
func TestRecorderChurnFleet32(t *testing.T) {
	if testing.Short() {
		t.Skip("32-home bring-up in -short mode")
	}
	const homes, shards = 32, 8
	sim := clock.NewSimulated()
	f := fleet.New(fleet.Config{Shards: shards, Clock: sim, Seed: 3})
	t.Cleanup(f.Stop)

	rec := flight.NewRecorder(flight.RecorderConfig{Window: time.Second})
	rec.Attach(f.Hub())
	if err := rec.AttachView(f.DB(), telemetry.ViewTable); err != nil {
		t.Fatal(err)
	}

	if _, err := f.AddHomes(homes); err != nil {
		t.Fatal(err)
	}
	addTraffic(t, f, 4)

	// AS OF queries race the steps: the recorder's windows are read
	// while hub drains append to them and churn retires streams.
	qDone := make(chan struct{})
	qStop := make(chan struct{})
	go func() {
		defer close(qDone)
		for {
			select {
			case <-qStop:
				return
			default:
				cql := fmt.Sprintf("SELECT * FROM %s AS OF @%d",
					telemetry.ViewTable, sim.Now().UnixNano())
				if _, err := f.DB().Query(cql); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for i := 0; i < 6; i++ {
		if err := f.Step(0.25); err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			// Churn mid-run: the removed home's final drain retires into
			// the hub's books and stays in the recorder's.
			if !f.RemoveHome(1) {
				t.Fatal("remove failed")
			}
			if _, err := f.AddHome(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(qStop)
	<-qDone
	f.Sync()

	st := rec.Stats()
	fed := f.Hub().Stats()
	if st.Delivered != fed.Delivered || st.Lost != fed.Lost {
		t.Fatalf("recorder saw %d delivered / %d lost, federation books %d / %d",
			st.Delivered, st.Lost, fed.Delivered, fed.Lost)
	}
	if st.Delivered+st.ViewRows != st.Stored+st.Compacted {
		t.Fatalf("books: %d delivered + %d view != %d stored + %d compacted",
			st.Delivered, st.ViewRows, st.Stored, st.Compacted)
	}
	if st.Delivered == 0 || st.ViewRows == 0 {
		t.Fatalf("recorder idle: %+v", st)
	}

	// The insert hot path stays allocation-free with the recorder live.
	h := f.Homes()[0]
	tbl, ok := h.Router.DB.Table(hwdb.TableLinks)
	if !ok {
		t.Fatal("no Links table")
	}
	vals := []hwdb.Value{
		hwdb.MACVal(packet.MAC{2, 0xaa, 0, 0, 0, 1}),
		hwdb.Int64(-40), hwdb.Int64(0), hwdb.Float(54),
	}
	ts := sim.Now()
	if n := testing.AllocsPerRun(1000, func() {
		if err := tbl.Insert(ts, vals); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("fleet insert with recorder attached allocates %.1f per op, want 0", n)
	}
}

// runSeededFleet brings up an 8-home fleet with a recorder, steps it,
// and returns the live FleetStats text and the AS OF reconstruction at
// every flushed tick.
func runSeededFleet(t *testing.T, seed int64, steps int) (live, asof []string) {
	t.Helper()
	sim := clock.NewSimulated()
	f := fleet.New(fleet.Config{Shards: 2, Clock: sim, Seed: seed})
	t.Cleanup(f.Stop)

	rec := flight.NewRecorder(flight.RecorderConfig{Window: time.Second})
	rec.Attach(f.Hub())
	if err := rec.AttachView(f.DB(), telemetry.ViewTable); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddHomes(8); err != nil {
		t.Fatal(err)
	}
	addTraffic(t, f, 2)

	var ticks []time.Time
	for i := 0; i < steps; i++ {
		if err := f.Step(1.0); err != nil {
			t.Fatal(err)
		}
		// Step synced and committed: snapshot the live view as of now.
		res, err := f.DB().Query("SELECT * FROM " + telemetry.ViewTable)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, res.Text())
		ticks = append(ticks, sim.Now())
	}
	f.Sync()

	for _, ts := range ticks {
		res, err := f.DB().Query(fmt.Sprintf("SELECT * FROM %s AS OF @%d",
			telemetry.ViewTable, ts.UnixNano()))
		if err != nil {
			t.Fatal(err)
		}
		asof = append(asof, res.Text())
	}
	return live, asof
}

// TestAsOfReplayDeterminism is the acceptance gate: for a seeded 8-home
// run, FleetStats reconstructed AS OF every flushed tick is byte-identical
// to the live snapshot taken at that tick, and the reconstruction is
// identical across reruns of the same seed.
func TestAsOfReplayDeterminism(t *testing.T) {
	const seed, steps = 42, 10
	live, asof := runSeededFleet(t, seed, steps)
	if len(live) != steps || len(asof) != steps {
		t.Fatalf("captured %d live / %d as-of snapshots, want %d", len(live), len(asof), steps)
	}
	for i := range live {
		if live[i] != asof[i] {
			t.Fatalf("tick %d: AS OF reconstruction differs from live snapshot\nlive:\n%s\nas of:\n%s",
				i, live[i], asof[i])
		}
	}
	if asof[steps-1] == asof[0] {
		t.Fatal("view never advanced across the run")
	}

	_, rerun := runSeededFleet(t, seed, steps)
	for i := range asof {
		if asof[i] != rerun[i] {
			t.Fatalf("tick %d: seeded rerun diverged\nfirst:\n%s\nrerun:\n%s", i, asof[i], rerun[i])
		}
	}
}

// TestIncidentsBundle checks the incident recorder end to end without a
// fleet: synthetic verdicts and actions produce bundles, audit rows and
// files, and recovery verdicts do not.
func TestIncidentsBundle(t *testing.T) {
	clk := clock.NewSimulated()
	rec := flight.NewRecorder(flight.RecorderConfig{})
	dir := t.TempDir()
	inc, err := flight.NewIncidents(flight.IncidentConfig{
		Clock:    clk,
		Recorder: rec,
		Dir:      dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	inc.OnVerdict(health.VerdictEvent{Home: 7, From: health.Healthy, To: health.Sick, Reason: "loss 40%"})
	inc.OnVerdict(health.VerdictEvent{Home: 7, From: health.Sick, To: health.Cordoned, Reason: "still sick"})
	inc.OnVerdict(health.VerdictEvent{Home: 7, From: health.Cordoned, To: health.Healthy}) // recovery: no bundle
	inc.OnAction(health.ActionEvent{Home: 7, Action: "restart", OK: true})
	if got := inc.Bundles(); got != 3 {
		t.Fatalf("bundles = %d, want 3", got)
	}
	it, ok := inc.DB().Table(flight.TableIncidents)
	if !ok {
		t.Fatal("no Incidents table")
	}
	ins, _ := it.Stats()
	if ins != 3 {
		t.Fatalf("incident rows = %d, want 3", ins)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("incident files = %d, want 3", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	var b flight.Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("bundle is not valid JSON: %v", err)
	}
	if b.Home != 7 || b.Kind == "" {
		t.Fatalf("bundle = %+v", b)
	}
}
