package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/fleet"
	"repro/internal/health"
	"repro/internal/hwdb"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// TableIncidents is the incident recorder's own audit table.
const TableIncidents = "Incidents"

// IncidentConfig parameterizes an incident recorder.
type IncidentConfig struct {
	// Clock timestamps incident rows and bundles (default wall clock;
	// pass the fleet's simulated clock for deterministic soaks).
	Clock clock.Clock
	// Recorder supplies the retained windows snapshotted into bundles.
	Recorder *Recorder
	// Trace, when set, snapshots pipeline stage statistics (wire it to
	// Coordinator.TraceStats).
	Trace func() []trace.StageStats
	// Placement, when set, slices the home's placement history (wire it
	// to Coordinator.PlacementFor).
	Placement func(home uint64, max int) []fleet.PlacementEvent
	// Dir, when non-empty, receives one JSON bundle file per incident:
	// incident-<seq>-home<id>-<kind>.json.
	Dir string
	// RingSize bounds the Incidents table ring (default 4096).
	RingSize int
	// RecentRows caps the recent-row sample per table in a bundle
	// (default 8).
	RecentRows int
	// PlacementMax caps the placement slice per bundle (default 16).
	PlacementMax int
}

// Bundle is one incident's postmortem artifact: everything the fleet knew
// about the home when the verdict or action was recorded.
type Bundle struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Home   uint64    `json:"home"`
	Kind   string    `json:"kind"` // "verdict" or "action"
	What   string    `json:"what"` // target state / action name
	Prev   string    `json:"prev,omitempty"`
	OK     bool      `json:"ok"`
	Reason string    `json:"reason,omitempty"`

	Spans     []trace.StageStats     `json:"spans,omitempty"`
	Tables    map[string]string      `json:"tables,omitempty"` // table -> tab-separated recent rows
	Placement []fleet.PlacementEvent `json:"placement,omitempty"`
	File      string                 `json:"file,omitempty"`
}

// Incidents turns health verdicts and remediation actions into bundles:
// one row in its own hwdb Incidents table, and (with Dir set) one JSON
// dump per incident. Wire OnVerdict/OnAction into health.Config.
type Incidents struct {
	cfg IncidentConfig
	db  *hwdb.DB

	mu  sync.Mutex
	seq uint64
}

// NewIncidents builds an incident recorder.
func NewIncidents(cfg IncidentConfig) (*Incidents, error) {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 4096
	}
	if cfg.RecentRows <= 0 {
		cfg.RecentRows = 8
	}
	if cfg.PlacementMax <= 0 {
		cfg.PlacementMax = 16
	}
	ic := &Incidents{cfg: cfg, db: hwdb.New(cfg.Clock)}
	_, err := ic.db.CreateTable(TableIncidents, hwdb.NewSchema(
		hwdb.Column{Name: "home", Type: hwdb.TInt},
		hwdb.Column{Name: "kind", Type: hwdb.TString},
		hwdb.Column{Name: "what", Type: hwdb.TString},
		hwdb.Column{Name: "prev", Type: hwdb.TString},
		hwdb.Column{Name: "ok", Type: hwdb.TBool},
		hwdb.Column{Name: "reason", Type: hwdb.TString},
		hwdb.Column{Name: "spans", Type: hwdb.TInt},
		hwdb.Column{Name: "tables", Type: hwdb.TInt},
		hwdb.Column{Name: "placement", Type: hwdb.TInt},
		hwdb.Column{Name: "file", Type: hwdb.TString},
	), cfg.RingSize)
	if err != nil {
		return nil, err
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("flight: incident dir: %w", err)
		}
	}
	return ic, nil
}

// DB returns the incident audit database (Incidents table).
func (ic *Incidents) DB() *hwdb.DB { return ic.db }

// Bundles returns how many incident bundles have been recorded.
func (ic *Incidents) Bundles() int {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	return int(ic.seq)
}

// OnVerdict is the health.Config.OnVerdict hook: Sick and Cordoned
// verdicts produce a bundle, recovery/retirement transitions do not.
func (ic *Incidents) OnVerdict(ev health.VerdictEvent) {
	if ev.To != health.Sick && ev.To != health.Cordoned {
		return
	}
	ic.record(Bundle{
		Home:   ev.Home,
		Kind:   "verdict",
		What:   ev.To.String(),
		Prev:   ev.From.String(),
		OK:     true,
		Reason: ev.Reason,
	})
}

// OnAction is the health.Config.OnAction hook: every remediation action
// (including failed ones) produces a bundle.
func (ic *Incidents) OnAction(ev health.ActionEvent) {
	ic.record(Bundle{
		Home:   ev.Home,
		Kind:   "action",
		What:   ev.Action,
		OK:     ev.OK,
		Reason: ev.Detail,
	})
}

// record fills in the snapshot layers, inserts the audit row and writes
// the JSON dump. It runs synchronously on the monitor's Tick goroutine,
// after the monitor released its mutex, so taking the recorder's lock
// here is safe.
func (ic *Incidents) record(b Bundle) {
	ic.mu.Lock()
	ic.seq++
	b.Seq = ic.seq
	ic.mu.Unlock()
	b.Time = ic.cfg.Clock.Now()

	if ic.cfg.Trace != nil {
		b.Spans = ic.cfg.Trace()
	}
	if ic.cfg.Placement != nil {
		b.Placement = ic.cfg.Placement(b.Home, ic.cfg.PlacementMax)
	}
	if ic.cfg.Recorder != nil {
		b.Tables = ic.snapshotTables(b.Home)
	}
	if ic.cfg.Dir != "" {
		name := fmt.Sprintf("incident-%d-home%d-%s.json", b.Seq, b.Home, b.Kind)
		path := filepath.Join(ic.cfg.Dir, name)
		if data, err := json.MarshalIndent(&b, "", "  "); err == nil {
			if err := os.WriteFile(path, data, 0o644); err == nil {
				b.File = name
			}
		}
	}

	_ = ic.db.Insert(TableIncidents,
		hwdb.Int64(int64(b.Home)),
		hwdb.Str(b.Kind),
		hwdb.Str(b.What),
		hwdb.Str(b.Prev),
		hwdb.Bool(b.OK),
		hwdb.Str(b.Reason),
		hwdb.Int64(int64(len(b.Spans))),
		hwdb.Int64(int64(len(b.Tables))),
		hwdb.Int64(int64(len(b.Placement))),
		hwdb.Str(b.File),
	)
}

// snapshotTables renders the tail of every recorded stream for the home,
// plus the fleet view's rows for the home, as tab-separated text blocks.
func (ic *Incidents) snapshotTables(home uint64) map[string]string {
	rec := ic.cfg.Recorder
	out := make(map[string]string)
	for _, tbl := range ic.homeTables(home) {
		res, err := rec.Replay(home, tbl, time.Time{}, time.Time{})
		if err != nil || len(res.Rows) == 0 {
			continue
		}
		if len(res.Rows) > ic.cfg.RecentRows {
			res.Rows = res.Rows[len(res.Rows)-ic.cfg.RecentRows:]
		}
		out[tbl] = res.Text()
	}
	// The fleet view records all homes under ViewHome; keep only this
	// home's FleetStats rows (column 0 is the home ID).
	if res, err := rec.Replay(ViewHome, telemetry.ViewTable, time.Time{}, time.Time{}); err == nil {
		kept := res.Rows[:0]
		for _, row := range res.Rows {
			if len(row) > 1 && row[1].Int == int64(home) {
				kept = append(kept, row)
			}
		}
		res.Rows = kept
		if len(res.Rows) > ic.cfg.RecentRows {
			res.Rows = res.Rows[len(res.Rows)-ic.cfg.RecentRows:]
		}
		if len(res.Rows) > 0 {
			out[telemetry.ViewTable] = res.Text()
		}
	}
	return out
}

// homeTables lists the table names recorded for one home, sorted.
func (ic *Incidents) homeTables(home uint64) []string {
	rec := ic.cfg.Recorder
	rec.mu.Lock()
	defer rec.mu.Unlock()
	var out []string
	for id := range rec.streams {
		if id.Home == home {
			out = append(out, id.Table)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
