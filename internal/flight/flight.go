// Package flight is the fleet flight recorder: a retention store attached
// at the telemetry hub/federation subscriber seam that keeps time-bucketed
// windows of every watched table's rows, serves hwdb time-travel queries
// (AS OF / HISTORY) against them, and snapshots incident bundles on health
// verdicts and remediation actions.
//
// The recorder consumes Deltas inside the hub's synchronous drain pass —
// the same seam the telemetry folder and the health monitor use — so the
// insert hot path is untouched: inserters still pay one atomic load, a CAS
// and a non-blocking send, and the recorder's locks are only ever taken on
// the drain goroutine (or the Folder.Commit goroutine for the view table).
//
// Accounting composes with the hub's delivered+lost books: every row the
// hub delivers (plus every directly watched view row) is either still
// stored in a window or has been compacted away, exactly — Delivered +
// ViewRows == Stored + Compacted always holds, and Lost mirrors the
// hub's loss count for the same streams.
package flight

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/hwdb"
	"repro/internal/telemetry"
)

// ViewHome is the reserved pseudo-home ID under which federation-level
// view tables (FleetStats) are recorded. Real home IDs are small fleet
// indexes, so the top of the ID space is safe.
const ViewHome = ^uint64(0)

// DefaultWindow is the bucket width when RecorderConfig.Window is zero.
const DefaultWindow = time.Second

// DefaultRetention is how far back windows are kept when
// RecorderConfig.Retention is zero.
const DefaultRetention = 10 * time.Minute

// DeltaSource is anything the recorder can attach to: a single shard's
// *telemetry.Hub or the coordinator's *telemetry.Federation.
type DeltaSource interface {
	SubscribeFunc(func(telemetry.Delta))
}

// RecorderConfig parameterizes a Recorder.
type RecorderConfig struct {
	// Window is the time-bucket width; rows whose timestamps fall in the
	// same Window-sized bucket share one window buffer. Default 1s.
	Window time.Duration
	// Retention is how far behind a stream's newest row windows are
	// kept; older windows are compacted away (their rows counted, then
	// dropped). Default 10m; negative keeps everything.
	Retention time.Duration
	// MaxWindows, when > 0, additionally caps the number of windows per
	// stream (ring compaction): the oldest window is evicted when a new
	// one would exceed the cap, regardless of age.
	MaxWindows int
	// Schema resolves a table name to its schema for Replay projection.
	// Unset, the standard Homework layout plus any schema learned from
	// WatchTable/AttachView is used.
	Schema func(table string) *hwdb.Schema
}

// RecorderStats is the recorder's book: totals across all streams.
// Delivered + ViewRows == Stored + Compacted is an invariant, and
// Delivered reconciles exactly against the source hub's own delivered
// count when the recorder was attached before the first drain.
type RecorderStats struct {
	Streams   int    // distinct (home, table) streams seen
	Windows   int    // live window buffers across all streams
	Delivered uint64 // rows consumed from hub deltas
	ViewRows  uint64 // rows recorded via WatchTable/AttachView hooks
	Stored    uint64 // rows currently held in windows
	Compacted uint64 // rows evicted by retention or ring compaction
	Lost      uint64 // loss reported in-band by consumed deltas
}

// windowBuf is one time bucket of a stream: rows in insertion order whose
// timestamps all fall in [bucket*window, (bucket+1)*window).
type windowBuf struct {
	bucket int64
	rows   []hwdb.Row
}

// stream is the retained history of one (home, table) source.
type stream struct {
	windows []*windowBuf
	newest  time.Time // largest row TS seen, drives retention eviction
}

// Recorder is the flight recorder. All methods are safe for concurrent
// use; consume/ingest run on hub drain goroutines, queries on any.
type Recorder struct {
	cfg RecorderConfig

	mu      sync.Mutex
	streams map[telemetry.SourceID]*stream
	schemas map[string]*hwdb.Schema // learned via WatchTable/AttachView
	proto   *hwdb.DB                // standard Homework layout for Schema fallback

	delivered, viewRows, stored, compacted, lost uint64
}

// NewRecorder builds a recorder. Attach it to a hub or federation with
// Attach, and to a folder's view database with AttachView.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Retention == 0 {
		cfg.Retention = DefaultRetention
	}
	return &Recorder{
		cfg:     cfg,
		streams: make(map[telemetry.SourceID]*stream),
		schemas: make(map[string]*hwdb.Schema),
		proto:   hwdb.NewHomework(clock.Real{}, 1),
	}
}

// Attach registers the recorder's delta consumer on src. Call before the
// source's first drain (for manual-mode fleets: before the first Sync) so
// the recorder's books start from row zero and reconcile exactly against
// the hub's delivered count.
func (r *Recorder) Attach(src DeltaSource) {
	src.SubscribeFunc(r.consume)
}

// WatchTable records every future insert into t under (home, t.Name()).
// Used for tables that are not hub-watched — the federation's FleetStats
// view — whose inserts happen on the Commit goroutine, not the pinned
// insert hot path.
func (r *Recorder) WatchTable(home uint64, t *hwdb.Table) {
	id := telemetry.SourceID{Home: home, Table: t.Name()}
	r.mu.Lock()
	if _, ok := r.streams[id]; !ok {
		r.streams[id] = &stream{}
	}
	r.schemas[t.Name()] = t.Schema()
	r.mu.Unlock()
	t.OnInsert(func(row hwdb.Row) { r.ingest(id, row) })
}

// AttachView wires the recorder into a view database: watches the named
// table and installs the recorder as the database's HistorySource so AS
// OF / HISTORY queries against the view reach retained windows instead of
// only the live ring.
func (r *Recorder) AttachView(db *hwdb.DB, table string) error {
	t, ok := db.Table(table)
	if !ok {
		return fmt.Errorf("flight: no such view table %s", table)
	}
	r.WatchTable(ViewHome, t)
	db.SetHistory(r.HistoryFor(ViewHome))
	return nil
}

// consume is the hub subscriber: one delta, oldest-first rows.
func (r *Recorder) consume(d telemetry.Delta) {
	r.mu.Lock()
	s := r.streams[d.Source]
	if s == nil {
		s = &stream{}
		r.streams[d.Source] = s
	}
	for _, row := range d.Rows {
		r.append(s, row)
	}
	r.delivered += uint64(len(d.Rows))
	r.stored += uint64(len(d.Rows))
	r.lost += d.Lost
	r.compact(s)
	r.mu.Unlock()
}

// ingest records one direct table insert (WatchTable path).
func (r *Recorder) ingest(id telemetry.SourceID, row hwdb.Row) {
	r.mu.Lock()
	s := r.streams[id]
	if s == nil {
		s = &stream{}
		r.streams[id] = s
	}
	r.append(s, row)
	r.viewRows++
	r.stored++
	r.compact(s)
	r.mu.Unlock()
}

// append places row into its time bucket. Rows arrive oldest-first per
// stream, so the target bucket is always the last window or a new one.
func (r *Recorder) append(s *stream, row hwdb.Row) {
	b := row.TS.UnixNano() / int64(r.cfg.Window)
	n := len(s.windows)
	if n == 0 || s.windows[n-1].bucket != b {
		s.windows = append(s.windows, &windowBuf{bucket: b})
		n++
	}
	w := s.windows[n-1]
	w.rows = append(w.rows, row)
	if row.TS.After(s.newest) {
		s.newest = row.TS
	}
}

// compact evicts windows past retention (relative to the stream's newest
// row, so idle fleets on stopped clocks never decay) and past the ring
// cap, with exact accounting. Caller holds r.mu.
func (r *Recorder) compact(s *stream) {
	evict := 0
	if r.cfg.Retention > 0 {
		cut := s.newest.Add(-r.cfg.Retention).UnixNano() / int64(r.cfg.Window)
		for evict < len(s.windows)-1 && s.windows[evict].bucket < cut {
			evict++
		}
	}
	if r.cfg.MaxWindows > 0 && len(s.windows)-evict > r.cfg.MaxWindows {
		evict = len(s.windows) - r.cfg.MaxWindows
	}
	for _, w := range s.windows[:evict] {
		r.stored -= uint64(len(w.rows))
		r.compacted += uint64(len(w.rows))
	}
	if evict > 0 {
		s.windows = append(s.windows[:0], s.windows[evict:]...)
	}
}

// Rows returns copies of the retained rows for (home, table) with
// from <= TS <= to, oldest-first. Zero bounds are open.
func (r *Recorder) Rows(home uint64, table string, from, to time.Time) []hwdb.Row {
	rows, _ := r.rows(home, table, from, to)
	return rows
}

func (r *Recorder) rows(home uint64, table string, from, to time.Time) ([]hwdb.Row, bool) {
	id := telemetry.SourceID{Home: home, Table: table}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.streams[id]
	if !ok {
		return nil, false
	}
	var out []hwdb.Row
	for _, w := range s.windows {
		for _, row := range w.rows {
			if !from.IsZero() && row.TS.Before(from) {
				continue
			}
			if !to.IsZero() && row.TS.After(to) {
				continue
			}
			out = append(out, row)
		}
	}
	return out, true
}

// historyFor adapts one home's streams to hwdb.HistorySource so a view
// database's AS OF / HISTORY queries read retained windows.
type historyFor struct {
	r    *Recorder
	home uint64
}

// HistoryRows implements hwdb.HistorySource: ok is false for tables the
// recorder has never seen, letting the database fall back to its ring.
func (h historyFor) HistoryRows(table string, from, to time.Time) ([]hwdb.Row, bool) {
	return h.r.rows(h.home, table, from, to)
}

// HistoryFor returns a hwdb.HistorySource view of one home's streams.
func (r *Recorder) HistoryFor(home uint64) hwdb.HistorySource {
	return historyFor{r: r, home: home}
}

// Schema resolves a table's schema for Replay: the configured resolver,
// then schemas learned from WatchTable/AttachView, then the standard
// Homework layout.
func (r *Recorder) Schema(table string) *hwdb.Schema {
	if r.cfg.Schema != nil {
		if s := r.cfg.Schema(table); s != nil {
			return s
		}
	}
	r.mu.Lock()
	s := r.schemas[table]
	r.mu.Unlock()
	if s != nil {
		return s
	}
	if t, ok := r.proto.Table(table); ok {
		return t.Schema()
	}
	return nil
}

// Replay projects the retained rows for (home, table) in [from, to] as a
// query result: a timestamp column followed by the table's columns. It is
// the engine behind the REPLAY RPC verb and `hwctl replay`.
func (r *Recorder) Replay(home uint64, table string, from, to time.Time) (*hwdb.Result, error) {
	schema := r.Schema(table)
	if schema == nil {
		return nil, fmt.Errorf("flight: unknown table %s", table)
	}
	rows, ok := r.rows(home, table, from, to)
	if !ok {
		return nil, fmt.Errorf("flight: no recorded stream for home %d table %s", home, table)
	}
	res := &hwdb.Result{Cols: append([]string{"timestamp"}, schema.Names()...)}
	for _, row := range rows {
		out := make([]hwdb.Value, 0, len(row.Vals)+1)
		out = append(out, hwdb.TimeVal(row.TS))
		out = append(out, row.Vals...)
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// Homes lists the distinct home IDs with at least one recorded stream,
// ascending; ViewHome is included when the view is watched.
func (r *Recorder) Homes() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[uint64]bool)
	var out []uint64
	for id := range r.streams {
		if !seen[id.Home] {
			seen[id.Home] = true
			out = append(out, id.Home)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Stats returns the recorder's book. Delivered + ViewRows == Stored +
// Compacted is an invariant; callers reconcile Delivered against the
// hub's own delivered count and Lost against the hub's loss book.
func (r *Recorder) Stats() RecorderStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RecorderStats{
		Streams:   len(r.streams),
		Delivered: r.delivered,
		ViewRows:  r.viewRows,
		Stored:    r.stored,
		Compacted: r.compacted,
		Lost:      r.lost,
	}
	for _, s := range r.streams {
		st.Windows += len(s.windows)
	}
	return st
}
