// Package figures regenerates every figure of the paper's demo as a text
// artifact, driving the full platform end-to-end: simulated devices join
// over DHCP, generate traffic through the OpenFlow datapath, measurements
// stream into hwdb, and each of the four interfaces renders what its
// screen showed. The cmd/figures binary prints them; bench_test.go times
// them.
//
// Concurrency: each Figure builds, drives and tears down its own
// isolated platform and shares nothing with other runs, so different
// figures may regenerate concurrently; a single figure run is
// internally sequential (traffic is injected, settled and rendered in
// order).
package figures

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/ui"
	"repro/internal/usbmon"
)

// home is a running scenario used by the figure generators.
type home struct {
	rt    *core.Router
	hosts map[string]*netsim.Host
}

// startHome brings up a router with the given config mutations.
func startHome(mutate func(*core.Config)) (*home, error) {
	cfg := core.DefaultConfig()
	cfg.AutoPermit = true
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := rt.Start(); err != nil {
		return nil, err
	}
	return &home{rt: rt, hosts: make(map[string]*netsim.Host)}, nil
}

func (h *home) stop() { h.rt.Stop() }

// join adds and DHCP-binds a device.
func (h *home) join(name, mac string, wireless bool, pos netsim.Pos) (*netsim.Host, error) {
	host, err := h.rt.AddHost(name, mac, wireless, pos)
	if err != nil {
		return nil, err
	}
	if err := h.rt.JoinHost(host); err != nil {
		return nil, err
	}
	if !host.Bound() {
		return nil, fmt.Errorf("figures: %s did not bind", name)
	}
	h.hosts[name] = host
	return host, nil
}

// run advances traffic n steps of dt seconds, settling the control path
// and polling the measurement plane each second of simulated time.
func (h *home) run(n int, dt float64) error {
	acc := 0.0
	for i := 0; i < n; i++ {
		h.rt.Net.Step(dt)
		if err := h.rt.Settle(); err != nil {
			return err
		}
		acc += dt
		if acc >= 1.0 {
			h.rt.PollMeasure()
			acc = 0
		}
	}
	h.rt.PollMeasure()
	return nil
}

// Figure1 regenerates the per-device per-protocol bandwidth display: six
// devices with the traffic mix the paper's intro motivates.
func Figure1() (string, error) {
	h, err := startHome(nil)
	if err != nil {
		return "", err
	}
	defer h.stop()

	devices := []struct {
		name     string
		mac      string
		wireless bool
		pos      netsim.Pos
		app      *netsim.App
	}{
		{"toms-mac-air", "02:aa:00:00:00:01", true, netsim.Pos{X: 3}, netsim.NewApp(netsim.AppVideo, "youtube.com", 120_000)},
		{"kids-tablet", "02:aa:00:00:00:02", true, netsim.Pos{X: 6}, netsim.NewApp(netsim.AppWeb, "facebook.com", 40_000)},
		{"xbox", "02:aa:00:00:00:03", false, netsim.Pos{}, netsim.NewApp(netsim.AppP2P, "tracker.example", 80_000)},
		{"kitchen-radio", "02:aa:00:00:00:04", true, netsim.Pos{X: 8, Y: 3}, netsim.NewApp(netsim.AppVoIP, "voip.example.com", 12_000)},
		{"thermostat", "02:aa:00:00:00:05", true, netsim.Pos{X: 10}, netsim.NewApp(netsim.AppIoT, "iot.example.com", 1_000)},
		{"work-laptop", "02:aa:00:00:00:06", false, netsim.Pos{}, netsim.NewApp(netsim.AppWeb, "bbc.co.uk", 60_000)},
	}
	for _, d := range devices {
		host, err := h.join(d.name, d.mac, d.wireless, d.pos)
		if err != nil {
			return "", err
		}
		host.AddApp(d.app)
	}
	if err := h.run(24, 0.25); err != nil {
		return "", err
	}

	view := ui.NewBandwidthView(h.rt.DB)
	view.Window = 10 * time.Second
	return view.Render()
}

// Figure2 regenerates the network artifact's three modes: an RSSI
// walk-through, a bandwidth ramp, and a DHCP grant/revoke sequence with a
// retry spike.
func Figure2() (string, error) {
	h, err := startHome(nil)
	if err != nil {
		return "", err
	}
	defer h.stop()

	var sb strings.Builder
	artifactMAC := packet.MustMAC("02:aa:00:00:00:10")
	probe, err := h.join("artifact", artifactMAC.String(), true, netsim.Pos{X: 1})
	if err != nil {
		return "", err
	}
	art := ui.NewArtifact(h.rt.DB, artifactMAC)
	art.WatchLeases()

	// Mode 1: carry the artifact away from the hub; LEDs track RSSI.
	sb.WriteString("Mode 1 — wireless signal strength (artifact walk-through)\n")
	art.SetMode(ui.ModeSignal)
	for _, x := range []float64{1, 5, 10, 15, 22} {
		probe.MoveTo(netsim.Pos{X: x})
		h.rt.PollMeasure()
		frame := art.Step(200 * time.Millisecond)
		fmt.Fprintf(&sb, "  %4.0fm from hub  %s\n", x, ui.RenderFrame(frame))
	}

	// Mode 2: bandwidth maps to animation speed.
	sb.WriteString("Mode 2 — total bandwidth vs last-day peak (animation speed)\n")
	art.SetMode(ui.ModeBandwidth)
	streamer, err := h.join("streamer", "02:aa:00:00:00:11", false, netsim.Pos{})
	if err != nil {
		return "", err
	}
	app := netsim.NewApp(netsim.AppVideo, "youtube.com", 200_000)
	streamer.AddApp(app)
	if err := h.run(8, 0.25); err != nil {
		return "", err
	}
	busy := art.AnimationSpeed()
	fmt.Fprintf(&sb, "  busy:  %.1f LEDs/s  %s\n", busy, ui.RenderFrame(art.Step(time.Second)))
	// Stop traffic; the window drains relative to the recorded peak.
	app.RateBps = 0
	time.Sleep(2100 * time.Millisecond)
	h.rt.PollMeasure()
	idle := art.AnimationSpeed()
	fmt.Fprintf(&sb, "  idle:  %.1f LEDs/s  %s\n", idle, ui.RenderFrame(art.Step(time.Second)))
	fmt.Fprintf(&sb, "  (speed scales with bandwidth: busy %.1f > idle %.1f)\n", busy, idle)

	// Mode 3: lease grants flash green, revocations blue.
	sb.WriteString("Mode 3 — DHCP lease activity (flash colour)\n")
	art.SetMode(ui.ModeDHCP)
	guest, err := h.join("guest-phone", "02:aa:00:00:00:12", true, netsim.Pos{X: 2})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "  lease granted   %s\n", ui.RenderFrame(art.Step(100*time.Millisecond)))
	for i := 0; i < 3; i++ {
		art.Step(100 * time.Millisecond)
	}
	guest.Release()
	if err := h.rt.Settle(); err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "  lease revoked   %s\n", ui.RenderFrame(art.Step(100*time.Millisecond)))
	return sb.String(), nil
}

// Figure3 regenerates the situated DHCP control interface: unknown
// devices request access, the user interrogates and annotates them, then
// drags them between categories.
func Figure3() (string, error) {
	h, err := startHome(func(c *core.Config) { c.AutoPermit = false })
	if err != nil {
		return "", err
	}
	defer h.stop()

	if err := h.rt.API.ListenAndServe("127.0.0.1:0"); err != nil {
		return "", err
	}
	base := "http://" + h.rt.API.Addr()
	ctl := ui.NewDHCPControl(base)

	// Four unknown devices ask for leases and appear pending.
	macs := []string{"02:bb:00:00:00:01", "02:bb:00:00:00:02", "02:bb:00:00:00:03", "02:bb:00:00:00:04"}
	names := []string{"new-phone", "smart-tv", "neighbours-laptop", "e-reader"}
	for i, m := range macs {
		host, err := h.rt.AddHost(names[i], m, true, netsim.Pos{X: float64(2 + i)})
		if err != nil {
			return "", err
		}
		if err := h.rt.JoinHost(host); err != nil {
			return "", err
		}
	}
	var sb strings.Builder
	sb.WriteString("Before user action:\n")
	before, err := ctl.Render()
	if err != nil {
		return "", err
	}
	sb.WriteString(before)

	// The user annotates and drags tabs between categories.
	_ = ctl.Annotate(macs[0], "Sam's new phone")
	_ = ctl.DragTo(macs[0], "permitted")
	_ = ctl.DragTo(macs[1], "permitted")
	_ = ctl.DragTo(macs[2], "denied")

	// Permitted devices retry and get leases; the denied one is NAKed.
	for i, m := range macs[:3] {
		mac := packet.MustMAC(m)
		if host, ok := h.rt.Net.Host(mac); ok {
			host.StartDHCP()
			_ = h.rt.JoinHost(host)
		}
		_ = i
	}
	sb.WriteString("\nAfter drag-to-permit/deny:\n")
	after, err := ctl.Render()
	if err != nil {
		return "", err
	}
	sb.WriteString(after)
	return sb.String(), nil
}

// Figure4 regenerates the USB policy interface: the cartoon compiles to a
// policy carried on a USB key; insertion enacts it and removal revokes it.
func Figure4(usbRoot string) (string, error) {
	// The cartoon's Mon–Fri schedule is evaluated against the router's
	// policy clock; pin it to the simulated epoch (a Monday) so the
	// figure regenerates identically on any day of the week.
	h, err := startHome(func(c *core.Config) { c.Clock = clock.NewSimulated() })
	if err != nil {
		return "", err
	}
	defer h.stop()

	kid, err := h.join("kids-tablet", "02:aa:00:00:00:02", true, netsim.Pos{X: 6})
	if err != nil {
		return "", err
	}
	var sb strings.Builder

	cartoon := &ui.PolicyCartoon{
		Name: "kids-facebook",
		Who:  []ui.CartoonDevice{{Label: "the kids", MAC: kid.MAC.String()}},
		What: []string{"facebook.com"},
		WhenDays: []string{
			"monday", "tuesday", "wednesday", "thursday", "friday",
		},
		WhenFrom: "00:00", WhenUntil: "23:59",
		KeyID: "parent-key",
	}
	sb.WriteString(cartoon.Render())
	keyDir := usbRoot + "/usb0"
	if err := cartoon.WriteToUSB(keyDir); err != nil {
		return "", err
	}
	mon := usbmon.New(usbRoot, h.rt.Policy)

	check := func(label string) error {
		app := netsim.NewApp(netsim.AppWeb, "facebook.com", 20_000)
		kid.AddApp(app)
		// Judge by what actually crosses the router to the upstream, not
		// by what the device emits (denied frames die in the datapath).
		rxBefore, _, _ := h.rt.Upstream.Counters()
		if err := h.run(10, 0.25); err != nil {
			return err
		}
		rxAfter, _, _ := h.rt.Upstream.Counters()
		acc := h.rt.Policy.AccessFor(kid.MAC)
		verdict := "BLOCKED at router"
		if rxAfter > rxBefore {
			verdict = "flows pass"
		}
		fmt.Fprintf(&sb, "%-28s access=%v facebook.com: %s (%s)\n",
			label, acc.NetworkAllowed, verdict, acc.Reason)
		return nil
	}

	// The monitor scan is the "udev event". Before the key is written the
	// policy is not even installed; after scan it is installed and the
	// key counts as inserted.
	if err := mon.Scan(); err != nil {
		return "", err
	}
	if err := check("key inserted:"); err != nil {
		return "", err
	}
	// Pull the key out: restrictions bite.
	if err := removeKeyDir(keyDir); err != nil {
		return "", err
	}
	if err := mon.Scan(); err != nil {
		return "", err
	}
	if err := h.rt.Settle(); err != nil {
		return "", err
	}
	if err := check("key removed:"); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// Figure5 regenerates the software architecture figure: every component
// of the platform, live-checked.
func Figure5() (string, error) {
	h, err := startHome(nil)
	if err != nil {
		return "", err
	}
	defer h.stop()
	if _, err := h.join("laptop", "02:aa:00:00:00:01", false, netsim.Pos{}); err != nil {
		return "", err
	}

	var sb strings.Builder
	sb.WriteString("Software architecture of the Homework home router\n")
	sb.WriteString("(live component inventory; cf. paper Figure 5)\n\n")
	sb.WriteString("  userspace\n")
	fmt.Fprintf(&sb, "    nox controller      components: %s\n",
		strings.Join(h.rt.Controller.Components(), ", "))
	tables, err := h.rt.Switch().TableStats()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "    hwdb                tables: %s\n",
		strings.Join(h.rt.DB.TableNames(), ", "))
	fmt.Fprintf(&sb, "    hwdb UDP RPC        %s\n", h.rt.HwdbServer.Addr())
	fmt.Fprintf(&sb, "    control API         %d device(s), %d policy(ies)\n",
		len(h.rt.DHCP.Devices()), len(h.rt.Policy.Policies()))
	sb.WriteString("  datapath\n")
	fmt.Fprintf(&sb, "    openflow channel    dpid=%012x\n", h.rt.Datapath.ID())
	fmt.Fprintf(&sb, "    flow table          %d entr(ies), %d lookups\n",
		tables[0].ActiveCount, tables[0].LookupCount)
	ports := h.rt.Datapath.Ports()
	names := make([]string, 0, len(ports))
	for _, p := range ports {
		names = append(names, p.Name)
	}
	fmt.Fprintf(&sb, "    ports               %s\n", strings.Join(names, ", "))
	sb.WriteString("  control flows: UI -> control API -> {dhcp, dns, policy} -> flow table\n")
	sb.WriteString("  data flows:    ports -> flow table -> {forward, punt} -> measurement -> hwdb -> UIs\n")
	return sb.String(), nil
}

// removeKeyDir deletes a key directory ("pulling the stick out").
func removeKeyDir(dir string) error { return os.RemoveAll(dir) }
