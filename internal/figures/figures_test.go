package figures

import (
	"strings"
	"testing"
)

func TestFigure1ShowsAllDevicesAndProtocols(t *testing.T) {
	out, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"toms-mac-air", "kids-tablet", "xbox", "kitchen-radio", "thermostat", "work-laptop",
		"https", "http", "p2p", "voip",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2AllThreeModes(t *testing.T) {
	out, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Mode 1", "Mode 2", "Mode 3", "lease granted", "lease revoked", "[G", "[B"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 2 missing %q:\n%s", want, out)
		}
	}
	// The walk-through must show fewer LEDs far from the hub than near.
	lines := strings.Split(out, "\n")
	var first, last string
	for _, l := range lines {
		if strings.Contains(l, "m from hub") {
			if first == "" {
				first = l
			}
			last = l
		}
	}
	if strings.Count(first, "W") <= strings.Count(last, "W") {
		t.Errorf("RSSI walk-through not monotone:\n%s\n%s", first, last)
	}
}

func TestFigure3DragChangesCategories(t *testing.T) {
	out, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Before user action", "After drag-to-permit/deny",
		"Sam's new phone", "neighbours-laptop",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 3 missing %q:\n%s", want, out)
		}
	}
	// After the drags, the permitted device must hold an address.
	after := out[strings.Index(out, "After"):]
	if !strings.Contains(after, "192.168.1.") {
		t.Errorf("no lease after permit:\n%s", after)
	}
}

func TestFigure4KeyMediatesAccess(t *testing.T) {
	out, err := Figure4(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "key inserted:") || !strings.Contains(out, "flows pass") {
		t.Errorf("key-in access missing:\n%s", out)
	}
	if !strings.Contains(out, "key removed:") || !strings.Contains(out, "BLOCKED at router") {
		t.Errorf("key-out block missing:\n%s", out)
	}
}

func TestFigure5ListsComponents(t *testing.T) {
	out, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"dhcp-server", "dns-proxy", "control-api", "forwarder",
		"Flows", "Leases", "Links", "flow table", "eth0-upstream",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 5 missing %q:\n%s", want, out)
		}
	}
}
