package chaos

import (
	"reflect"
	"testing"
	"time"
)

// TestBuildScheduleDeterministic checks the schedule is a pure function
// of its seed and leaves every home's episodes Gap-separated inside the
// span, with magnitudes in the partial-loss bands the attribution path
// requires.
func TestBuildScheduleDeterministic(t *testing.T) {
	cfg := ScheduleConfig{
		Seed:  9,
		Homes: []uint64{0, 1, 2, 3},
		Span:  12 * time.Hour,
	}
	a := BuildSchedule(cfg)
	b := BuildSchedule(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("empty schedule for a 12h span")
	}
	last := map[uint64]time.Duration{}
	for _, ep := range a {
		if ep.At+ep.For+90*time.Minute > cfg.Span {
			t.Errorf("episode %+v runs past the span's recovery tail", ep)
		}
		if end, ok := last[ep.Home]; ok && ep.At < end+90*time.Minute {
			t.Errorf("home %d episodes closer than the gap: next at %v, prior ended %v", ep.Home, ep.At, end)
		}
		if cur := ep.At + ep.For; cur > last[ep.Home] {
			last[ep.Home] = cur
		}
		switch ep.Kind {
		case LinkFlap:
			if ep.Mag < 0.5 || ep.Mag > 0.8 {
				t.Errorf("link-flap magnitude %v out of the partial-loss band", ep.Mag)
			}
		case Interference:
			if ep.Mag < 50 || ep.Mag > 58 {
				t.Errorf("interference magnitude %v dB out of band", ep.Mag)
			}
		}
	}
	if BuildSchedule(ScheduleConfig{Seed: 10, Homes: cfg.Homes, Span: cfg.Span})[0] == a[0] &&
		len(a) > 1 {
		// Different seeds almost surely differ somewhere; a stable first
		// episode alone is fine, identical whole schedules are not.
		c := BuildSchedule(ScheduleConfig{Seed: 10, Homes: cfg.Homes, Span: cfg.Span})
		if reflect.DeepEqual(a, c) {
			t.Error("different seeds produced identical schedules")
		}
	}
}

// TestDropRatio checks the link-fault pattern never reaches total loss
// (total loss never attributes to FlowPerf, so it would be invisible to
// the health evaluator).
func TestDropRatio(t *testing.T) {
	for _, frac := range []float64{-1, 0.01, 0.5, 0.8, 1, 2} {
		num, den := dropRatio(frac)
		if frac <= 0 {
			if num != 0 || den != 0 {
				t.Errorf("dropRatio(%v) = %d/%d, want 0/0", frac, num, den)
			}
			continue
		}
		if num < 1 || num >= den {
			t.Errorf("dropRatio(%v) = %d/%d: outside (0,1)", frac, num, den)
		}
	}
}
