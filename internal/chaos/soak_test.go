package chaos

import (
	"testing"
	"time"
)

// TestChaosSoak is the CI soak gate: two simulated days of scheduled
// faults over a 16-home fleet, compressed into seconds of wall clock,
// with the health/remediation loop live. Soak itself asserts the hard
// invariants (every episode's home re-converges to Healthy, remediation
// fully accounted in hwdb, no home stuck cordoned, no lost telemetry
// rows); the test adds the wall-clock budget. Failures print the seed —
// the whole trajectory reproduces from it.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("time-compressed soak in -short mode")
	}
	cfg := SoakConfig{Seed: 1, Logf: t.Logf}
	res, err := Soak(cfg)
	if res != nil {
		t.Logf("soak seed %d: %d homes, %d+%d steps (%s simulated), wall %v",
			res.Seed, res.Homes, res.Steps, res.Extra, res.SimSpan, res.Wall)
		t.Logf("episodes: %d scheduled, %d injected, %d skipped; remediation %+v",
			res.Episodes, res.Injected, res.Skipped, res.Counts)
		t.Logf("telemetry: %d delivered + %d lost = %d inserts",
			res.HubDelivered, res.HubLost, res.Inserts)
	}
	if err != nil {
		t.Fatalf("chaos soak failed (reproduce with seed %d): %v", cfg.Seed, err)
	}
	if res.Wall > 60*time.Second {
		t.Fatalf("soak blew the wall budget: %v > 60s (seed %d)", res.Wall, res.Seed)
	}
}

// TestChaosSoakSharded re-runs the soak gate over four shard engines:
// homes are spread across four hubs and every restart/replace retires
// sources on whichever shard hosted the incarnation, so the exact
// delivered+lost accounting must now hold through the federation, not a
// single hub. `make soak` runs both via the TestChaosSoak prefix.
func TestChaosSoakSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("time-compressed soak in -short mode")
	}
	cfg := SoakConfig{Seed: 1, Shards: 4, Logf: t.Logf}
	res, err := Soak(cfg)
	if res != nil {
		t.Logf("sharded soak seed %d: %d homes, %d+%d steps (%s simulated), wall %v",
			res.Seed, res.Homes, res.Steps, res.Extra, res.SimSpan, res.Wall)
		t.Logf("telemetry: %d delivered + %d lost = %d inserts",
			res.HubDelivered, res.HubLost, res.Inserts)
	}
	if err != nil {
		t.Fatalf("sharded chaos soak failed (reproduce with seed %d): %v", cfg.Seed, err)
	}
	if res.Wall > 60*time.Second {
		t.Fatalf("sharded soak blew the wall budget: %v > 60s (seed %d)", res.Wall, res.Seed)
	}
}
