package chaos

import (
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/fleet"
	"repro/internal/fleet/engine"
	"repro/internal/fleet/shardrpc"
)

// TestChaosSoakRemote is the control-plane half of the soak gate: the
// same exact-accounting invariant the in-process soaks assert, but with
// the coordinator driving four worker engines over real loopback TCP —
// including steady home churn at the coordinator and two mid-soak
// connection kills that force redial + book reconciliation. The
// health/remediation loop is out of scope here (vitals need in-process
// handles); what this soak proves is that no telemetry row ever goes
// silently missing across the wire, across worker-connection death,
// across home incarnations. `make soak` runs it via the TestChaosSoak
// prefix. Failures print the seed — the trajectory reproduces from it.
func TestChaosSoakRemote(t *testing.T) {
	if testing.Short() {
		t.Skip("remote soak in -short mode")
	}
	const (
		homes  = 16
		shards = 4
		seed   = 1
		steps  = 80
		dt     = 1.0
	)
	start := time.Now()

	scn := fleet.Scenario{
		HostsPerHome: 2,
		AppMix: []fleet.AppMix{
			{App: "web", RateBps: 40_000, Weight: 3},
			{App: "iot", RateBps: 2_000, Weight: 1},
		},
		WirelessFrac: 0.5,
	}
	var trackMu sync.Mutex
	var tracked []*fleet.Home
	onAssign := func(h *fleet.Home) error {
		trackMu.Lock()
		tracked = append(tracked, h)
		trackMu.Unlock()
		return scn.SetupHome(h)
	}

	servers := make([]*shardrpc.Server, shards)
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		wclk := clock.NewSimulated()
		eng := engine.New(engine.Config{Index: i, Clock: wclk, Seed: seed, OnAssign: onAssign})
		t.Cleanup(eng.Close)
		srv := shardrpc.NewServer(shardrpc.Config{Backend: eng, Hub: eng.Hub(), Clock: wclk})
		if err := srv.Serve("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		servers[i], addrs[i] = srv, srv.Addr()
	}

	f := fleet.New(fleet.Config{
		WorkerAddrs: addrs,
		Clock:       clock.NewSimulated(),
		Seed:        seed,
		StepTimeout: 60 * time.Second,
	})
	t.Cleanup(f.Stop)
	if _, err := f.AddHomes(homes); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}

	var churns, kills int
	for i := 0; i < steps; i++ {
		if err := f.Step(dt); err != nil {
			t.Fatalf("seed %d: step %d: %v", seed, i, err)
		}
		// Steady coordinator-level churn: every 10th step the oldest home
		// is torn down (its final rows ride the drain batch) and a fresh
		// one is placed.
		if i%10 == 9 {
			ids := f.HomeIDs()
			if len(ids) == 0 {
				t.Fatalf("seed %d: fleet emptied at step %d", seed, i)
			}
			if !f.RemoveHome(ids[0]) {
				t.Fatalf("seed %d: step %d: remove home %d failed", seed, i, ids[0])
			}
			if _, err := f.AddHome(); err != nil {
				t.Fatalf("seed %d: step %d: %v", seed, i, err)
			}
			churns++
		}
		// Two mid-soak worker kills: sever every connection of one worker
		// and let the clients redial and reconcile their books.
		if i == steps/3 || i == 2*steps/3 {
			servers[kills%shards].DropConns()
			kills++
		}
	}
	// One extra fleet-wide sync so batches buffered across the last
	// reconnect are carried out before the audit.
	f.Sync()

	for k := 0; k < kills; k++ {
		if servers[k%shards].Accepted() < 2 {
			t.Errorf("seed %d: killed worker %d accepted %d conns, want >= 2 (a real reconnect)",
				seed, k%shards, servers[k%shards].Accepted())
		}
	}
	if f.Size() != homes {
		t.Errorf("seed %d: fleet size %d after churn, want %d", seed, f.Size(), homes)
	}
	if f.Totals().Flows == 0 || f.Totals().Bytes == 0 {
		t.Errorf("seed %d: no traffic folded across the remote fleet: %+v", seed, f.Totals())
	}

	// The invariant: every row any incarnation's watched table ever took
	// is delivered into a relay or explicitly accounted lost — across
	// churn, across both connection kills.
	var inserts uint64
	trackMu.Lock()
	incarnations := len(tracked)
	for _, h := range tracked {
		for _, name := range fleet.WatchedTables() {
			if tbl, ok := h.Router.DB.Table(name); ok {
				ins, _ := tbl.Stats()
				inserts += ins
			}
		}
	}
	trackMu.Unlock()
	if inserts == 0 {
		t.Fatalf("seed %d: no rows inserted", seed)
	}
	fed := f.Hub().Stats()
	if fed.Delivered+fed.Lost != inserts {
		t.Errorf("seed %d: unaccounted rows across the wire: delivered %d + lost %d != %d inserts",
			seed, fed.Delivered, fed.Lost, inserts)
	}
	if folder := f.Telemetry().Totals(); folder.Rows != fed.Delivered {
		t.Errorf("seed %d: folder saw %d rows, federation delivered %d", seed, folder.Rows, fed.Delivered)
	}

	wall := time.Since(start)
	t.Logf("remote soak seed %d: %d homes / %d workers, %d steps (%s simulated), %d churns, %d kills, %d incarnations, wall %v",
		seed, homes, shards, steps, time.Duration(float64(steps)*dt*float64(time.Second)), churns, kills, incarnations, wall)
	t.Logf("telemetry: %d delivered + %d lost = %d inserts", fed.Delivered, fed.Lost, inserts)
	if wall > 60*time.Second {
		t.Fatalf("remote soak blew the wall budget: %v > 60s (seed %d)", wall, seed)
	}
}
