// Package chaos injects deterministic, seeded faults into a simulated
// Homework fleet at its existing seams — the in-process OpenFlow
// transport (wedged controllers, dropped and delayed flow-mods), the
// netsim delivery fabric and wireless model (link flaps, interference
// bursts), the DHCP client stacks (re-join storms) and the telemetry hub
// (slow subscribers) — on a schedule expressed in simulated time, and
// provides the time-compressed soak harness that drives the
// health/remediation loop through days of scheduled failure in seconds
// of wall clock while asserting the fleet re-converges to Healthy after
// every episode with all telemetry rows accounted.
//
// Concurrency: drive Engine.Tick (and the soak loop) from one goroutine
// between fleet steps; FaultsFor and the Faults switchboards themselves
// are safe from any goroutine (home bring-up wraps transports
// concurrently, and released messages re-enter live control loops).
package chaos

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/health"
	"repro/internal/telemetry"
)

// Kind is one fault class from the taxonomy.
type Kind int

// The fault taxonomy. Transport faults (Wedge, DropMods, DelayMods) act
// on the control channel; fabric faults (LinkFlap, Interference) act on
// the simulated home network; DHCPStorm replays every host's join;
// SlowReader starves a telemetry subscription.
const (
	LinkFlap Kind = iota
	Interference
	Wedge
	DropMods
	DelayMods
	DHCPStorm
	SlowReader
)

// Kinds lists every fault class (the default schedule mix).
func Kinds() []Kind {
	return []Kind{LinkFlap, Interference, Wedge, DropMods, DelayMods, DHCPStorm, SlowReader}
}

// String names the fault class.
func (k Kind) String() string {
	switch k {
	case LinkFlap:
		return "link-flap"
	case Interference:
		return "interference"
	case Wedge:
		return "wedge"
	case DropMods:
		return "drop-mods"
	case DelayMods:
		return "delay-mods"
	case DHCPStorm:
		return "dhcp-storm"
	case SlowReader:
		return "slow-reader"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Episode is one scheduled fault: Kind hits Home at At (simulated time
// offset from engine start) and holds for For. Mag is the kind-specific
// magnitude: dB of attenuation for Interference, the drop fraction for
// LinkFlap; other kinds ignore it.
type Episode struct {
	Kind Kind
	Home uint64
	At   time.Duration
	For  time.Duration
	Mag  float64
}

// EpisodeStatus is an Episode plus its lifecycle bookkeeping.
type EpisodeStatus struct {
	Episode
	Injected  bool // the fault was applied (the target home existed)
	Ended     bool // the fault has been lifted (or was never applicable)
	Recovered bool // target observed Healthy (or retired) after the end
}

// Engine applies a schedule of episodes to a fleet as simulated time
// passes. Create it before the fleet (home bring-up needs FaultsFor for
// the transport hook), then Bind the fleet, SetSchedule, and Tick once
// per fleet step with the current simulated offset.
type Engine struct {
	mu     sync.Mutex
	fl     *fleet.Fleet
	faults map[uint64]*Faults
	sched  []EpisodeStatus
	slow   map[int]*telemetry.Subscription
}

// NewEngine creates an engine with no fleet and no schedule.
func NewEngine() *Engine {
	return &Engine{
		faults: make(map[uint64]*Faults),
		slow:   make(map[int]*telemetry.Subscription),
	}
}

// Bind attaches the fleet the episodes act on.
func (e *Engine) Bind(fl *fleet.Fleet) {
	e.mu.Lock()
	e.fl = fl
	e.mu.Unlock()
}

// FaultsFor returns (creating on demand) the home's control-channel
// fault switchboard. Wire it into the home's router via
// core.Config.WrapTransport from the fleet's HomeConfig hook; the same
// switchboard follows the home across restarts.
func (e *Engine) FaultsFor(id uint64) *Faults {
	e.mu.Lock()
	defer e.mu.Unlock()
	f, ok := e.faults[id]
	if !ok {
		f = &Faults{}
		e.faults[id] = f
	}
	return f
}

// SetSchedule installs the episodes (replacing any prior schedule).
func (e *Engine) SetSchedule(eps []Episode) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sched = make([]EpisodeStatus, len(eps))
	for i, ep := range eps {
		e.sched[i] = EpisodeStatus{Episode: ep}
	}
}

// Episodes snapshots the schedule with its lifecycle bookkeeping.
func (e *Engine) Episodes() []EpisodeStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]EpisodeStatus(nil), e.sched...)
}

// Counts returns how many episodes were injected, how many skipped (the
// target home no longer existed at onset), and how many ended-but-not-
// yet-recovered.
func (e *Engine) Counts() (injected, skipped, unrecovered int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.sched {
		st := &e.sched[i]
		if st.Injected {
			injected++
		} else if st.Ended {
			skipped++
		}
		if st.Ended && !st.Recovered {
			unrecovered++
		}
	}
	return
}

// Tick applies schedule transitions due at simulated offset now: onsets
// first, then lift every episode whose window has passed. Call from the
// driver goroutine between fleet steps.
func (e *Engine) Tick(now time.Duration) {
	e.mu.Lock()
	fl := e.fl
	e.mu.Unlock()
	if fl == nil {
		return
	}
	for i := 0; i < e.scheduleLen(); i++ {
		st := e.status(i)
		if !st.Injected && !st.Ended && st.At <= now {
			if e.begin(i, &st.Episode) {
				e.setInjected(i)
				st.Injected = true
			} else {
				// The target is gone (replaced mid-schedule): nothing to
				// inject, nothing to recover from.
				e.setEnded(i, true)
				continue
			}
		}
		if st.Injected && !st.Ended && st.At+st.For <= now {
			e.end(i, &st.Episode)
			e.setEnded(i, false)
		}
	}
}

func (e *Engine) scheduleLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sched)
}

func (e *Engine) status(i int) EpisodeStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sched[i]
}

func (e *Engine) setInjected(i int) {
	e.mu.Lock()
	e.sched[i].Injected = true
	e.mu.Unlock()
}

func (e *Engine) setEnded(i int, recovered bool) {
	e.mu.Lock()
	e.sched[i].Ended = true
	if recovered {
		e.sched[i].Recovered = true
	}
	e.mu.Unlock()
}

// Finish lifts every episode still active (the soak's drain phase).
func (e *Engine) Finish() {
	for i := 0; i < e.scheduleLen(); i++ {
		st := e.status(i)
		if st.Injected && !st.Ended {
			e.end(i, &st.Episode)
			e.setEnded(i, false)
		}
	}
}

// MarkRecovery records, for every ended episode, whether its target home
// has been observed back at Healthy (or retired and replaced) since the
// fault lifted. stateOf is typically health.Monitor.State.
func (e *Engine) MarkRecovery(stateOf func(id uint64) (health.State, bool)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.sched {
		st := &e.sched[i]
		if !st.Ended || st.Recovered {
			continue
		}
		s, ok := stateOf(st.Home)
		if !ok || s == health.Healthy || s == health.Retired {
			st.Recovered = true
		}
	}
}

// Reapply re-arms the fabric faults of any active episode targeting a
// just-restarted home: the restart built a fresh Network and Wireless
// model, which silently cleared them. Transport faults persist on their
// own (the switchboard follows the home across Wrap calls).
func (e *Engine) Reapply(id uint64) {
	for i := 0; i < e.scheduleLen(); i++ {
		st := e.status(i)
		if !st.Injected || st.Ended || st.Home != id {
			continue
		}
		switch st.Kind {
		case LinkFlap, Interference:
			e.begin(i, &st.Episode)
		}
	}
}

// begin applies one episode's fault. Reports false when the target no
// longer exists.
func (e *Engine) begin(i int, ep *Episode) bool {
	switch ep.Kind {
	case SlowReader:
		// A subscriber with a one-delta buffer that nobody drains: the
		// hub must keep delivering to everyone else and account every
		// row this reader misses.
		sub := e.fl.Hub().Subscribe(1)
		e.mu.Lock()
		e.slow[i] = sub
		e.mu.Unlock()
		return true
	case Wedge:
		e.FaultsFor(ep.Home).WedgeController(true)
		return true
	case DropMods:
		e.FaultsFor(ep.Home).DropFlowMods(true)
		return true
	case DelayMods:
		e.FaultsFor(ep.Home).DelayFlowMods(true)
		return true
	}
	h, ok := e.fl.Home(ep.Home)
	if !ok {
		return false
	}
	switch ep.Kind {
	case LinkFlap:
		num, den := dropRatio(ep.Mag)
		h.Router.Net.SetLinkFault(num, den)
	case Interference:
		h.Router.Net.Wireless().SetInterference(ep.Mag)
	case DHCPStorm:
		// Every device re-joins at once: a power blip's worth of
		// DISCOVER punts slams the control path in one tick.
		for _, host := range h.Router.Net.Hosts() {
			host.StartDHCP()
		}
	}
	return true
}

// end lifts one episode's fault. Missing targets are fine: a replaced
// home took the fault down with it.
func (e *Engine) end(i int, ep *Episode) {
	switch ep.Kind {
	case SlowReader:
		e.mu.Lock()
		sub := e.slow[i]
		delete(e.slow, i)
		e.mu.Unlock()
		if sub != nil {
			sub.Close()
		}
		return
	case Wedge:
		e.FaultsFor(ep.Home).WedgeController(false)
		return
	case DropMods:
		e.FaultsFor(ep.Home).DropFlowMods(false)
		return
	case DelayMods:
		e.FaultsFor(ep.Home).DelayFlowMods(false)
		return
	case DHCPStorm:
		return // instantaneous: nothing to lift
	}
	h, ok := e.fl.Home(ep.Home)
	if !ok {
		return
	}
	switch ep.Kind {
	case LinkFlap:
		h.Router.Net.SetLinkFault(0, 0)
	case Interference:
		h.Router.Net.Wireless().SetInterference(0)
	}
}

// dropRatio turns a drop fraction into the deterministic num/den pattern
// the netsim link fault consumes (resolution 1/16).
func dropRatio(frac float64) (num, den int) {
	if frac <= 0 {
		return 0, 0
	}
	if frac > 1 {
		frac = 1
	}
	den = 16
	num = int(frac*float64(den) + 0.5)
	if num < 1 {
		num = 1
	}
	if num >= den {
		num = den - 1 // never 100%: total loss is invisible to FlowPerf
	}
	return num, den
}
