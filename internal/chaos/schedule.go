package chaos

import (
	"math/rand"
	"sort"
	"time"
)

// ScheduleConfig parameterizes BuildSchedule. Everything is derived from
// Seed, so a schedule is fully reproducible from the numbers a failing
// soak prints.
type ScheduleConfig struct {
	// Seed drives every draw (kind, onset jitter, duration, magnitude).
	Seed int64
	// Homes are the target home IDs (each gets its own episode sequence).
	Homes []uint64
	// Span is the simulated window the episodes are spread over.
	Span time.Duration
	// PerHome caps episodes per home; 0 packs as many as Span, Gap and
	// MaxFor allow.
	PerHome int
	// MinFor/MaxFor bound episode durations (defaults 5m/12m).
	MinFor, MaxFor time.Duration
	// Gap is the minimum recovery window between one home's episodes
	// (default 90m) — long enough for the remediation loop to converge
	// before the next fault, so per-episode recovery is assertable.
	Gap time.Duration
	// Kinds is the fault mix to draw from (default Kinds()).
	Kinds []Kind
}

// BuildSchedule lays out a deterministic, per-home non-overlapping
// episode schedule: each home's episodes are separated by at least Gap
// of clean recovery time, onsets are jittered so homes do not fail in
// lockstep, and magnitudes are drawn per kind (LinkFlap drops 50–80% of
// frames, Interference attenuates 50–58 dB — partial loss by
// construction, since total loss never attributes to FlowPerf). The
// result is sorted by onset, then home.
func BuildSchedule(cfg ScheduleConfig) []Episode {
	if cfg.Span <= 0 || len(cfg.Homes) == 0 {
		return nil
	}
	if cfg.MinFor <= 0 {
		cfg.MinFor = 5 * time.Minute
	}
	if cfg.MaxFor < cfg.MinFor {
		cfg.MaxFor = 12 * time.Minute
	}
	if cfg.Gap <= 0 {
		cfg.Gap = 90 * time.Minute
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = Kinds()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var eps []Episode
	for _, home := range cfg.Homes {
		// Jittered start keeps the fleet's failures unsynchronized.
		at := time.Duration(rng.Float64() * float64(cfg.Gap))
		n := 0
		for {
			if cfg.PerHome > 0 && n >= cfg.PerHome {
				break
			}
			dur := cfg.MinFor + time.Duration(rng.Float64()*float64(cfg.MaxFor-cfg.MinFor))
			if at+dur+cfg.Gap > cfg.Span {
				break // leave the final Gap clean so recovery completes in-window
			}
			kind := kinds[rng.Intn(len(kinds))]
			ep := Episode{Kind: kind, Home: home, At: at, For: dur}
			switch kind {
			case LinkFlap:
				ep.Mag = 0.5 + 0.3*rng.Float64()
			case Interference:
				ep.Mag = 50 + 8*rng.Float64()
			case DHCPStorm:
				ep.For = time.Minute // the storm is its onset
			}
			eps = append(eps, ep)
			n++
			at += ep.For + cfg.Gap + time.Duration(rng.Float64()*float64(cfg.Gap)/2)
		}
	}
	sort.Slice(eps, func(i, j int) bool {
		if eps[i].At != eps[j].At {
			return eps[i].At < eps[j].At
		}
		return eps[i].Home < eps[j].Home
	})
	return eps
}
