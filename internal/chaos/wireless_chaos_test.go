package chaos

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/health"
	"repro/internal/netsim"
)

// interferenceRun drives a 4-home fleet with one wireless device each
// through an interference episode on homes 1 and 3 and returns the
// per-tick health-state history. Everything derives from the seed, so
// two runs must produce identical histories.
func interferenceRun(t *testing.T, seed int64) []string {
	t.Helper()
	sim := clock.NewSimulated()
	eng := NewEngine()
	fl := fleet.New(fleet.Config{
		Clock: sim,
		Seed:  seed,
		HomeConfig: func(id uint64, c *core.Config) {
			c.WrapTransport = eng.FaultsFor(id).Wrap
			// Time compression: ticks advance 60 simulated seconds, so a
			// flow's traffic arrives in bursts 60s apart. The idle timeout
			// must outlive the tick or the expiry sweeper (racing the
			// driver after each clock advance) kills active flows.
			c.FlowIdleTimeout = 180
		},
	})
	t.Cleanup(fl.Stop)
	eng.Bind(fl)
	homes, err := fl.AddHomes(4)
	if err != nil {
		t.Fatal(err)
	}
	mon := health.New(health.Config{Clock: sim, Hub: fl.Hub()})
	ids := make([]uint64, len(homes))
	for i, h := range homes {
		ids[i] = h.ID
		mon.Track(h.ID)
		// One wireless device ~3 m out: a clean baseline link whose loss,
		// when it appears, is the episode's doing.
		host, err := h.Join("", true, netsim.Pos{X: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !host.Bound() {
			t.Fatalf("home %d device did not bind", h.ID)
		}
		host.AddApp(netsim.NewApp(netsim.AppIoT, "203.0.113.10", 48))
	}

	// 54 dB of attenuation on homes 1 and 3 only: RSSI drops from ~-34 to
	// ~-88 dBm, where the retry cap loses a meaningful (but partial)
	// fraction of frames.
	eng.SetSchedule([]Episode{
		{Kind: Interference, Home: ids[1], At: 0, For: 6 * time.Minute, Mag: 54},
		{Kind: Interference, Home: ids[3], At: 0, For: 6 * time.Minute, Mag: 54},
	})

	var history []string
	simNow := time.Duration(0)
	for i := 0; i < 12; i++ {
		eng.Tick(simNow)
		if err := fl.Step(60); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		simNow += time.Minute
		mon.Tick()
		eng.MarkRecovery(mon.State)
		tick := ""
		for _, id := range ids {
			st, _ := mon.State(id)
			tick += fmt.Sprintf("%d=%s ", id, st)
		}
		history = append(history, tick)
	}

	// The evaluator flagged exactly the interfered homes...
	for i, id := range ids {
		st, _ := mon.State(id)
		sickened := false
		for _, tick := range history {
			if tickHas(tick, id, health.Sick) {
				sickened = true
			}
		}
		switch i {
		case 1, 3:
			if !sickened {
				t.Errorf("home %d saw 54 dB interference but was never flagged Sick\nhistory: %v", id, history)
			}
		default:
			if sickened {
				t.Errorf("clean home %d was flagged Sick\nhistory: %v", id, history)
			}
		}
		// ...and every home is Healthy again after the episodes lift.
		if st != health.Healthy {
			t.Errorf("home %d = %v after recovery window, want healthy\nhistory: %v", id, st, history)
		}
	}
	if _, _, unrecovered := eng.Counts(); unrecovered != 0 {
		t.Errorf("%d episodes unrecovered", unrecovered)
	}
	return history
}

func tickHas(tick string, id uint64, st health.State) bool {
	want := fmt.Sprintf("%d=%s ", id, st)
	for i := 0; i+len(want) <= len(tick); i++ {
		if tick[i:i+len(want)] == want {
			return true
		}
	}
	return false
}

// TestInterferenceFlagsAffectedHomes is the wireless chaos gate: an
// interference burst raises FlowPerf loss attribution on exactly the
// affected homes, the health evaluator flags exactly those homes, they
// recover once the burst ends — and the whole trajectory is reproducible
// from the seed.
func TestInterferenceFlagsAffectedHomes(t *testing.T) {
	const seed = 7
	first := interferenceRun(t, seed)
	if t.Failed() {
		return
	}
	second := interferenceRun(t, seed)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Errorf("same seed, different trajectories:\n  %v\n  %v", first, second)
	}
}
