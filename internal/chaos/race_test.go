package chaos

import (
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/netsim"
	"repro/internal/quiesce"
)

// TestChaosChurn32Homes is the chaos extension of the fleet's 32-home
// `-race` gate: the same sharded stepping, concurrent aggregation, trace
// readers and home churn — now with every fault class live at once
// (wedge, dropped/delayed flow-mods, link flap, interference, DHCP storm,
// slow subscriber) plus an in-place restart of a home mid-run. Wedged
// homes surface quiesce.ErrDeadline from Step instead of hanging, and at
// the end every hwdb row any incarnation ever held must be delivered or
// explicitly accounted as lost.
func TestChaosChurn32Homes(t *testing.T) {
	if testing.Short() {
		t.Skip("32-home bring-up in -short mode")
	}
	const homes, shards = 32, 8
	eng := NewEngine()
	fl := fleet.New(fleet.Config{
		Shards: shards,
		Clock:  clock.NewSimulated(),
		Seed:   11,
		HomeConfig: func(id uint64, c *core.Config) {
			c.SettleTimeout = 50 * time.Millisecond
			c.WrapTransport = eng.FaultsFor(id).Wrap
		},
	})
	t.Cleanup(fl.Stop)
	eng.Bind(fl)
	if _, err := fl.AddHomes(homes); err != nil {
		t.Fatal(err)
	}

	// Track every router incarnation ever created — including churned-away
	// and restarted ones — for the final row accounting.
	var incarnations []*fleet.Home
	incarnations = append(incarnations, fl.Homes()...)

	// Every 4th home gets a traffic source so folds and punts have work.
	for _, h := range fl.Homes() {
		if h.ID%4 != 0 {
			continue
		}
		host, err := h.Join("", h.ID%8 == 0, netsim.Pos{X: 2})
		if err != nil {
			t.Fatal(err)
		}
		host.AddApp(netsim.NewApp(netsim.AppWeb, "203.0.113.10", 60_000))
	}

	// Every fault class live inside the 8-step (2 simulated seconds) run.
	eng.SetSchedule([]Episode{
		{Kind: Wedge, Home: 24, At: 0, For: 500 * time.Millisecond},
		{Kind: DropMods, Home: 4, At: 0, For: time.Second},
		{Kind: DelayMods, Home: 8, At: 250 * time.Millisecond, For: time.Second},
		{Kind: LinkFlap, Home: 12, At: 0, For: time.Second, Mag: 0.6},
		{Kind: Interference, Home: 16, At: 0, For: time.Second, Mag: 54},
		{Kind: DHCPStorm, Home: 20, At: 500 * time.Millisecond, For: time.Second},
		{Kind: SlowReader, Home: 0, At: 0, For: time.Second},
	})

	// A deliberately tiny channel subscriber races the drain passes; its
	// overflow must surface as accounted loss, not a hang or a race.
	slow := fl.Hub().Subscribe(1)
	defer slow.Close()

	aggDone := make(chan struct{})
	go func() {
		defer close(aggDone)
		for i := 0; i < 6; i++ {
			fl.Aggregate()
		}
	}()
	traceDone := make(chan struct{})
	traceStop := make(chan struct{})
	go func() {
		defer close(traceDone)
		for {
			select {
			case <-traceStop:
				return
			default:
				fl.TraceStats()
			}
		}
	}()

	step := func(i int) {
		if err := fl.Step(0.25); err != nil && !errors.Is(err, quiesce.ErrDeadline) {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	simNow := time.Duration(0)
	for i := 0; i < 8; i++ {
		eng.Tick(simNow)
		step(i)
		simNow += 250 * time.Millisecond
		switch i {
		case 2:
			// Churn: one home out, a fresh one (new ID) in, while shards step.
			if !fl.RemoveHome(1) {
				t.Fatal("remove failed")
			}
			h, err := fl.AddHome()
			if err != nil {
				t.Fatal(err)
			}
			incarnations = append(incarnations, h)
		case 4:
			// Restart in place: same ID, fresh incarnation, faults re-armed.
			h, err := fl.RestartHome(3)
			if err != nil {
				t.Fatal(err)
			}
			incarnations = append(incarnations, h)
			eng.Reapply(3)
		}
	}
	eng.Finish()
	// Post-fault drain: released punts and flow-mods land, wedged homes
	// settle again.
	step(8)
	step(9)
	fl.Sync()
	<-aggDone
	close(traceStop)
	<-traceDone

	// The wedge actually held and released punts, and the lossy faults
	// actually dropped frames — the run exercised what it claims.
	if st := eng.FaultsFor(24).Stats(); st.ReleasedPunts == 0 && st.LostPunts == 0 {
		t.Errorf("wedge on home 24 held nothing: %+v", st)
	}
	if st := eng.FaultsFor(4).Stats(); st.DroppedMods == 0 {
		t.Errorf("drop-mods on home 4 dropped nothing: %+v", st)
	}

	// Exact accounting across every incarnation ever live: delivered plus
	// explicitly-lost equals total inserts.
	var inserts uint64
	for _, h := range incarnations {
		inserts += dbInserts(h.Router.DB)
	}
	hub := fl.Hub().Stats()
	if hub.Delivered+hub.Lost != inserts {
		t.Errorf("unaccounted rows: delivered %d + lost %d != %d inserts",
			hub.Delivered, hub.Lost, inserts)
	}

	// The slow subscriber's books balance too.
	var got uint64
drain:
	for {
		select {
		case d := <-slow.C():
			got += uint64(len(d.Rows)) + d.Lost
		default:
			break drain
		}
	}
	if total := got + slow.PendingLost(); total != inserts {
		t.Errorf("slow subscriber accounts %d of %d rows (dropped %d)",
			total, inserts, slow.Dropped())
	}
}
