package chaos

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/flight"
	"repro/internal/health"
	"repro/internal/hwdb"
	"repro/internal/netsim"
	"repro/internal/quiesce"
	"repro/internal/telemetry"
)

// SoakConfig parameterizes a time-compressed chaos soak: days of
// simulated churn and failure, compressed into seconds of wall clock by
// the shared simulated clock.
type SoakConfig struct {
	// Homes is the fleet size (default 16).
	Homes int
	// HostsPerHome is the steady-state device count per home, alternating
	// wired and wireless (default 2).
	HostsPerHome int
	// SimDays is the scheduled fault window in simulated days (default 2).
	SimDays float64
	// StepSec is simulated seconds per fleet tick; one tick is also one
	// health evaluation window (default 180). Larger steps compress
	// harder: fewer ticks (and settle barriers and polls) per simulated
	// day, at coarser evaluation granularity.
	StepSec float64
	// Seed derives the fleet, the schedule and every magnitude draw; a
	// failing soak reproduces from it (default 1).
	Seed int64
	// Shards overrides the fleet's shard-engine count (0 = fleet
	// default). Each shard runs its own engine and telemetry hub; the
	// soak's accounting invariant reads the federated books, so it holds
	// across any shard count.
	Shards int
	// EpisodesPerHome caps scheduled episodes per home (0 = pack the
	// window; see BuildSchedule).
	EpisodesPerHome int
	// Policy overrides health thresholds (zero fields take defaults).
	Policy health.Policy
	// SettleTimeout is each home's wall-clock settle backstop. It bounds
	// how long a wedged home can stall its shard per step, so it is the
	// soak's main wall-clock lever (default 25ms).
	SettleTimeout time.Duration
	// RecoverySteps bounds the post-schedule drain: extra ticks granted
	// for the last episodes' remediation to converge (default 80).
	RecoverySteps int
	// IncidentDir, when set, receives one JSON incident bundle per
	// Sick/Cordoned verdict and per remediation action (see
	// flight.Incidents); empty keeps bundles in-memory only.
	IncidentDir string
	// Logf, when set, receives progress lines (e.g. testing.T.Logf).
	Logf func(format string, args ...any)
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Homes <= 0 {
		c.Homes = 16
	}
	if c.HostsPerHome <= 0 {
		c.HostsPerHome = 2
	}
	if c.SimDays <= 0 {
		c.SimDays = 2
	}
	if c.StepSec <= 0 {
		c.StepSec = 180
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SettleTimeout <= 0 {
		c.SettleTimeout = 25 * time.Millisecond
	}
	if c.RecoverySteps <= 0 {
		c.RecoverySteps = 80
	}
	return c
}

// SoakResult reports what a soak did and how the books balanced.
type SoakResult struct {
	Seed    int64
	Homes   int
	Steps   int           // scheduled ticks run
	Extra   int           // recovery ticks used after the schedule
	SimSpan time.Duration // simulated time covered
	Wall    time.Duration // wall clock consumed

	Episodes    int // scheduled
	Injected    int // applied to a live home
	Skipped     int // target home gone at onset (replaced earlier)
	Unrecovered int // ended episodes whose home never re-converged

	Counts      health.Counts // verdicts and remediation actions
	FinalStates map[uint64]health.State

	HubDelivered uint64 // telemetry rows fanned out
	HubLost      uint64 // telemetry rows lost to ring wrap (accounted)
	Inserts      uint64 // hwdb inserts across every router incarnation

	Bundles  int                  // incident bundles recorded
	Recorder flight.RecorderStats // flight recorder retention books
}

// Soak runs the time-compressed chaos soak: bring up a fleet on a
// simulated clock, schedule seeded fault episodes across it, and drive
// step → evaluate → remediate until the schedule and its recovery drain
// complete. The returned error is the first violated invariant (fleet
// did not re-converge, remediation books unbalanced, telemetry rows
// unaccounted); the result is returned in either case so a failing run
// can be reported with its seed.
func Soak(cfg SoakConfig) (*SoakResult, error) {
	cfg = cfg.withDefaults()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	start := time.Now()

	sim := clock.NewSimulated()
	eng := NewEngine()
	fl := fleet.New(fleet.Config{
		Clock:  sim,
		Seed:   cfg.Seed,
		Shards: cfg.Shards,
		HomeConfig: func(id uint64, c *core.Config) {
			c.SettleTimeout = cfg.SettleTimeout
			c.WrapTransport = eng.FaultsFor(id).Wrap
			// Time compression: a tick advances StepSec simulated seconds,
			// so steady flows see traffic in bursts StepSec apart. The
			// idle timeout must outlive the tick or the expiry sweeper
			// idles out every active flow between bursts.
			if idle := 3 * cfg.StepSec; idle > float64(c.FlowIdleTimeout) {
				c.FlowIdleTimeout = uint16(idle)
			}
		},
	})
	defer fl.Stop()
	eng.Bind(fl)

	// Flight recorder: attached before the first drain so its books start
	// from row zero; every chaos episode leaves a replayable record and
	// (via the incident hooks below) a postmortem bundle.
	stepDur := time.Duration(cfg.StepSec * float64(time.Second))
	rec := flight.NewRecorder(flight.RecorderConfig{
		Window:    stepDur,
		Retention: 50 * stepDur,
	})
	rec.Attach(fl.Hub())
	if err := rec.AttachView(fl.DB(), telemetry.ViewTable); err != nil {
		return nil, fmt.Errorf("chaos: flight recorder (seed %d): %w", cfg.Seed, err)
	}
	inc, err := flight.NewIncidents(flight.IncidentConfig{
		Clock:     sim,
		Recorder:  rec,
		Trace:     fl.TraceStats,
		Placement: fl.PlacementFor,
		Dir:       cfg.IncidentDir,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: incident recorder (seed %d): %w", cfg.Seed, err)
	}

	homes, err := fl.AddHomes(cfg.Homes)
	if err != nil {
		return nil, fmt.Errorf("chaos: bring-up (seed %d): %w", cfg.Seed, err)
	}

	// Retired inserts: rows from router incarnations torn down by
	// remediation. Captured after teardown (the router is stopped, the
	// counters final, and the hub's final drain has already run).
	var retired uint64
	mon := health.New(health.Config{
		Policy:    cfg.Policy,
		Clock:     sim,
		Hub:       fl.Hub(),
		OnVerdict: inc.OnVerdict,
		OnAction:  inc.OnAction,
		Vitals: func(id uint64) (health.Vitals, bool) {
			h, ok := fl.Home(id)
			if !ok {
				return health.Vitals{}, false
			}
			return health.Vitals{PuntLag: h.PuntLag(), SettleErrs: h.SettleErrs()}, true
		},
		Actions: health.Actions{
			Cordon:   fl.Cordon,
			Uncordon: fl.Uncordon,
			Restart: func(id uint64) error {
				old, had := fl.Home(id)
				_, err := fl.RestartHome(id)
				if had {
					retired += dbInserts(old.Router.DB)
				}
				if err == nil {
					// The restart rebuilt the home's network; re-arm any
					// still-active fabric fault so the episode holds.
					eng.Reapply(id)
				}
				return err
			},
			Replace: func(id uint64) (uint64, error) {
				old, had := fl.Home(id)
				h, err := fl.ReplaceHome(id)
				if had {
					retired += dbInserts(old.Router.DB)
				}
				if err != nil {
					return 0, err
				}
				return h.ID, nil
			},
		},
	})

	ids := make([]uint64, 0, len(homes))
	for _, h := range homes {
		ids = append(ids, h.ID)
		mon.Track(h.ID)
	}

	s := &soakState{cfg: cfg, fl: fl}
	s.maintain() // initial device population (wired/wireless mix + apps)

	// Episode durations and gaps scale with the evaluation window, so a
	// fault always spans enough consecutive windows to walk the health
	// state machine, and every gap leaves room for full remediation
	// (cordon + dwell + restart + probation) before the next fault.
	span := time.Duration(cfg.SimDays * 24 * float64(time.Hour))
	sched := BuildSchedule(ScheduleConfig{
		Seed:    cfg.Seed,
		Homes:   ids,
		Span:    span,
		PerHome: cfg.EpisodesPerHome,
		MinFor:  5 * stepDur,
		MaxFor:  13 * stepDur,
		Gap:     50 * stepDur,
	})
	eng.SetSchedule(sched)
	logf("chaos soak: seed=%d homes=%d episodes=%d span=%s step=%gs",
		cfg.Seed, cfg.Homes, len(sched), span, cfg.StepSec)

	steps := int(span / stepDur)
	simNow := time.Duration(0)
	tick := func() error {
		if err := fl.Step(cfg.StepSec); err != nil && !errors.Is(err, quiesce.ErrDeadline) {
			return err
		}
		mon.Tick()
		eng.MarkRecovery(mon.State)
		s.maintain()
		return nil
	}
	for i := 0; i < steps; i++ {
		eng.Tick(simNow)
		if err := tick(); err != nil {
			return nil, fmt.Errorf("chaos: step %d (seed %d): %w", i, cfg.Seed, err)
		}
		simNow += stepDur
		if (i+1)%(steps/8+1) == 0 {
			inj, skip, _ := eng.Counts()
			logf("chaos soak: %d/%d steps, %d injected, %d skipped, counts=%+v",
				i+1, steps, inj, skip, mon.Counts())
		}
	}

	// Drain: lift whatever is still active and grant the remediation loop
	// a bounded number of extra windows to converge.
	eng.Finish()
	extra := 0
	for ; extra < cfg.RecoverySteps; extra++ {
		_, _, unrec := eng.Counts()
		if unrec == 0 && mon.Converged() {
			break
		}
		if err := tick(); err != nil {
			return nil, fmt.Errorf("chaos: recovery step %d (seed %d): %w", extra, cfg.Seed, err)
		}
	}
	fl.Sync()

	res := &SoakResult{
		Seed:        cfg.Seed,
		Homes:       cfg.Homes,
		Steps:       steps,
		Extra:       extra,
		SimSpan:     span + time.Duration(extra)*stepDur,
		Wall:        time.Since(start),
		Episodes:    len(sched),
		Counts:      mon.Counts(),
		FinalStates: mon.States(),
	}
	res.Injected, res.Skipped, res.Unrecovered = eng.Counts()
	hubStats := fl.Hub().Stats()
	res.HubDelivered, res.HubLost = hubStats.Delivered, hubStats.Lost
	res.Inserts = retired
	for _, h := range fl.Homes() {
		res.Inserts += dbInserts(h.Router.DB)
	}
	res.Bundles = inc.Bundles()
	res.Recorder = rec.Stats()

	return res, s.verify(res, mon, fl, inc)
}

// verify checks the soak's invariants; the first violation is returned
// with the seed so the run reproduces.
func (s *soakState) verify(res *SoakResult, mon *health.Monitor, fl *fleet.Fleet, inc *flight.Incidents) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("chaos soak (seed %d): %s", s.cfg.Seed, fmt.Sprintf(format, args...))
	}
	if res.Injected+res.Skipped != res.Episodes {
		return fail("episode books: %d injected + %d skipped != %d scheduled",
			res.Injected, res.Skipped, res.Episodes)
	}
	if res.Injected == 0 {
		return fail("no episode was injected")
	}
	if res.Unrecovered != 0 {
		return fail("%d episodes ended without their home re-converging to Healthy", res.Unrecovered)
	}
	if !mon.Converged() {
		return fail("fleet did not converge: states %v", res.FinalStates)
	}
	for id, st := range res.FinalStates {
		if st == health.Cordoned {
			return fail("home %d stuck Cordoned", id)
		}
	}
	for _, h := range fl.Homes() {
		if h.Cordoned() {
			return fail("home %d still cordoned in the fleet", h.ID)
		}
	}
	// Remediation fully accounted: every verdict and action the monitor
	// counted is a row in its audit tables.
	ht, _ := mon.DB().Table(health.TableHealth)
	rt, _ := mon.DB().Table(health.TableRemedy)
	hIns, _ := ht.Stats()
	rIns, _ := rt.Stats()
	if int(hIns) != res.Counts.Verdicts {
		return fail("verdict rows %d != verdicts counted %d", hIns, res.Counts.Verdicts)
	}
	if int(rIns) != res.Counts.Actions() {
		return fail("remedy rows %d != actions counted %d", rIns, res.Counts.Actions())
	}
	// No lost telemetry rows: every insert across every incarnation was
	// delivered or explicitly accounted as ring-wrap loss.
	if res.HubDelivered+res.HubLost != res.Inserts {
		return fail("telemetry books: delivered %d + lost %d != inserts %d",
			res.HubDelivered, res.HubLost, res.Inserts)
	}
	// Every chaos episode that produced a health verdict left a postmortem
	// artifact: one bundle per Sick/Cordoned verdict and per remediation
	// action, and every bundle is a row in the Incidents audit table.
	wantBundles := res.Counts.SickVerdicts + res.Counts.CordonedVerdicts + res.Counts.Actions()
	if res.Bundles != wantBundles {
		return fail("incident bundles %d != %d sick + %d cordoned verdicts + %d actions",
			res.Bundles, res.Counts.SickVerdicts, res.Counts.CordonedVerdicts, res.Counts.Actions())
	}
	it, _ := inc.DB().Table(flight.TableIncidents)
	iIns, _ := it.Stats()
	if int(iIns) != res.Bundles {
		return fail("incident rows %d != bundles recorded %d", iIns, res.Bundles)
	}
	// Flight recorder books compose with the hub's: every delivered row is
	// stored or compacted, and the recorder saw exactly what the hub
	// delivered (it was attached before the first drain).
	fs := res.Recorder
	if fs.Delivered+fs.ViewRows != fs.Stored+fs.Compacted {
		return fail("flight books: %d delivered + %d view rows != %d stored + %d compacted",
			fs.Delivered, fs.ViewRows, fs.Stored, fs.Compacted)
	}
	if fs.Delivered != res.HubDelivered || fs.Lost != res.HubLost {
		return fail("flight recorder saw %d delivered / %d lost, hub books say %d / %d",
			fs.Delivered, fs.Lost, res.HubDelivered, res.HubLost)
	}
	return nil
}

// soakState is the soak's device-maintenance side: keep every live,
// uncordoned home at its steady-state device count, re-joining after
// restarts and replacements (join attempts under an active fault may
// fail; they retry on later ticks).
type soakState struct {
	cfg SoakConfig
	fl  *fleet.Fleet
}

// soakTarget is the upstream service the soak's device traffic talks to
// (a literal IP, so app traffic keeps flowing when DNS punts are held by
// a wedge).
const soakTarget = "203.0.113.10"

func (s *soakState) maintain() {
	for _, h := range s.fl.Homes() {
		if h.Cordoned() {
			continue
		}
		for h.Router.Net.HostCount() < s.cfg.HostsPerHome {
			if !s.joinOne(h) {
				break
			}
		}
	}
}

func (s *soakState) joinOne(h *fleet.Home) bool {
	rng := h.Rand()
	wireless := h.Router.Net.HostCount()%2 == 1
	// Within ~4.5 m of the router: a reliable baseline link, so loss
	// during interference episodes is attributable to the episode.
	pos := netsim.Pos{X: 1 + rng.Float64()*3, Y: rng.Float64() * 2}
	mac := h.NextMAC()
	host, err := h.Router.Net.AddHost(fmt.Sprintf("%s-dev-%s", h.Name, mac), mac, wireless, pos)
	if err != nil {
		return false
	}
	if err := h.Router.JoinHost(host); err != nil || !host.Bound() {
		// Joining under an active fault can fail; detach and retry on a
		// later maintenance pass.
		_ = h.Router.Net.RemoveHost(mac)
		return false
	}
	// Steady low-rate telemetry traffic: enough packets per evaluation
	// window to make the loss ratio meaningful (~33 at the default
	// 180s window), small enough that a 2-day soak stays in seconds of
	// wall clock.
	host.AddApp(netsim.NewApp(netsim.AppIoT, soakTarget, 12))
	return true
}

// dbInserts sums total inserts across the watched tables of one router
// incarnation's hwdb.
func dbInserts(db *hwdb.DB) uint64 {
	var n uint64
	for _, name := range fleet.WatchedTables() {
		if t, ok := db.Table(name); ok {
			ins, _ := t.Stats()
			n += ins
		}
	}
	return n
}
