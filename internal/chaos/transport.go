package chaos

import (
	"sync"

	"repro/internal/oftransport"
	"repro/internal/openflow"
)

// Faults is one home's control-channel fault switchboard. Installed via
// core.Config.WrapTransport, it interposes on the Send side of both
// in-process transport ends:
//
//   - WedgeController holds every packet-in the datapath punts (the
//     controller simply stops hearing about new flows, exactly as a
//     wedged or GC-stalled controller would look). Punt/credit
//     accounting makes the wedge visible: the datapath counts the punt
//     before Send, the controller can only credit what arrives, so the
//     quiescence epoch lags and Settle returns quiesce.ErrDeadline
//     instead of hanging — barriers and every other message still pass.
//   - DropFlowMods / DelayFlowMods discard or hold the controller's
//     flow-mods (a lossy or congested southbound channel): punted
//     packets keep being dispatched and credited, but the rules they
//     produced never (or only later) reach the flow table.
//
// Lifting a wedge or delay releases the held messages, in order, into
// the real transport — which wakes the receiver's read loop naturally.
// Re-wrapping (the remediation loop restarting the home's router)
// rebinds the switchboard to the new channel ends and discards messages
// held for the dead incarnation, while active fault flags persist, so an
// episode outlives the restart it provoked.
//
// All methods are safe for concurrent use; the pass-through preserves
// the full oftransport.Transport contract, including batched receive.
type Faults struct {
	mu        sync.Mutex
	wedged    bool
	dropMods  bool
	delayMods bool
	heldPunts []openflow.Message
	heldMods  []openflow.Message
	ctlInner  oftransport.Transport // controller end: Send carries flow-mods
	dpInner   oftransport.Transport // datapath end: Send carries punts
	stats     FaultStats
}

// FaultStats counts what the switchboard has done to the channel.
type FaultStats struct {
	HeldPunts     uint64 // punts currently held by an active wedge
	ReleasedPunts uint64 // punts released by lifted wedges
	LostPunts     uint64 // punts discarded by a restart while held
	DroppedMods   uint64 // flow-mods discarded by DropFlowMods
	HeldMods      uint64 // flow-mods currently held by DelayFlowMods
	ReleasedMods  uint64 // flow-mods released by lifted delays
	LostMods      uint64 // flow-mods discarded by a restart while held
}

// Wrap interposes the switchboard on a router's in-process control
// channel; install it as core.Config.WrapTransport (method value:
// cfg.WrapTransport = f.Wrap). Safe to call again for a restarted
// router: held messages for the old incarnation are discarded (and
// accounted), fault flags carry over.
func (f *Faults) Wrap(ctl, dp oftransport.Transport) (oftransport.Transport, oftransport.Transport) {
	f.mu.Lock()
	f.ctlInner, f.dpInner = ctl, dp
	f.stats.LostPunts += uint64(len(f.heldPunts))
	f.stats.LostMods += uint64(len(f.heldMods))
	f.stats.HeldPunts, f.stats.HeldMods = 0, 0
	f.heldPunts, f.heldMods = nil, nil
	f.mu.Unlock()
	return &faultEnd{f: f, inner: ctl, ctl: true}, &faultEnd{f: f, inner: dp}
}

// WedgeController starts (on=true) or lifts (on=false) a controller
// wedge. Lifting releases the held punts, oldest first.
func (f *Faults) WedgeController(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.wedged = on
	if !on {
		// The in-process Send never blocks (unbounded queue), so holding
		// the mutex preserves order against concurrent new punts.
		for _, msg := range f.heldPunts {
			if f.dpInner != nil {
				_ = f.dpInner.Send(msg)
			}
			f.stats.ReleasedPunts++
		}
		f.stats.HeldPunts = 0
		f.heldPunts = nil
	}
}

// DropFlowMods makes the controller's flow-mods vanish on the wire while
// on; everything else (packet-outs, barriers, stats) still flows.
func (f *Faults) DropFlowMods(on bool) {
	f.mu.Lock()
	f.dropMods = on
	f.mu.Unlock()
}

// DelayFlowMods holds the controller's flow-mods while on; turning it
// off releases them, oldest first — rules arrive late, not never.
func (f *Faults) DelayFlowMods(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delayMods = on
	if !on {
		for _, msg := range f.heldMods {
			if f.ctlInner != nil {
				_ = f.ctlInner.Send(msg)
			}
			f.stats.ReleasedMods++
		}
		f.stats.HeldMods = 0
		f.heldMods = nil
	}
}

// Clear lifts every fault at once (releasing held messages).
func (f *Faults) Clear() {
	f.WedgeController(false)
	f.DropFlowMods(false)
	f.DelayFlowMods(false)
}

// Stats snapshots the switchboard counters.
func (f *Faults) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// interceptPunt holds a datapath→controller punt while a wedge is active
// on the current channel incarnation. Reports true when held.
func (f *Faults) interceptPunt(msg openflow.Message, inner oftransport.Transport) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.wedged || inner != f.dpInner {
		return false
	}
	f.heldPunts = append(f.heldPunts, msg)
	f.stats.HeldPunts++
	return true
}

// interceptMod drops or holds a controller→datapath flow-mod per the
// active faults. Reports true when the message must not be forwarded.
func (f *Faults) interceptMod(msg openflow.Message, inner oftransport.Transport) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if inner != f.ctlInner {
		return false
	}
	if f.dropMods {
		f.stats.DroppedMods++
		return true
	}
	if f.delayMods {
		f.heldMods = append(f.heldMods, msg)
		f.stats.HeldMods++
		return true
	}
	return false
}

// faultEnd wraps one transport end, filtering its Send direction through
// the switchboard and passing everything else (including the batched
// receive path) straight through.
type faultEnd struct {
	f     *Faults
	inner oftransport.Transport
	ctl   bool // controller end: Sends carry flow-mods toward the datapath
}

var (
	_ oftransport.Transport   = (*faultEnd)(nil)
	_ oftransport.BatchRecver = (*faultEnd)(nil)
)

func (e *faultEnd) Send(msg openflow.Message) error {
	if e.ctl {
		if _, isMod := msg.(*openflow.FlowMod); isMod && e.f.interceptMod(msg, e.inner) {
			return nil
		}
	} else {
		if _, isPunt := msg.(*openflow.PacketIn); isPunt && e.f.interceptPunt(msg, e.inner) {
			return nil
		}
	}
	return e.inner.Send(msg)
}

func (e *faultEnd) Recv() (openflow.Message, error) { return e.inner.Recv() }

func (e *faultEnd) Close() error { return e.inner.Close() }

// RecvBatch preserves the in-process transport's batched read path: the
// read loops type-assert for oftransport.BatchRecver, and a fault layer
// that hid it would change scheduling behaviour even with no fault
// active.
func (e *faultEnd) RecvBatch(buf []openflow.Message) ([]openflow.Message, error) {
	if br, ok := e.inner.(oftransport.BatchRecver); ok {
		return br.RecvBatch(buf)
	}
	msg, err := e.inner.Recv()
	if err != nil {
		return buf, err
	}
	return append(buf, msg), nil
}
