package chaos

import (
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/netsim"
	"repro/internal/quiesce"
)

// newChaosFleet builds a fleet whose every home routes its in-process
// control channel through the engine's fault switchboard, with a small
// settle backstop so wedge tests stay fast.
func newChaosFleet(t *testing.T, homes int, seed int64, settle time.Duration) (*fleet.Fleet, *Engine) {
	t.Helper()
	eng := NewEngine()
	fl := fleet.New(fleet.Config{
		Clock: clock.NewSimulated(),
		Seed:  seed,
		HomeConfig: func(id uint64, c *core.Config) {
			c.SettleTimeout = settle
			c.WrapTransport = eng.FaultsFor(id).Wrap
		},
	})
	t.Cleanup(fl.Stop)
	eng.Bind(fl)
	if _, err := fl.AddHomes(homes); err != nil {
		t.Fatal(err)
	}
	return fl, eng
}

// TestWedgeSettleDeadlineAndRecovery injects a controller wedge and
// checks the quiescence contract under it: the held punts starve the
// epoch's credits, so Settle (and the fleet step driving it) returns
// quiesce.ErrDeadline within the configured backstop instead of hanging;
// lifting the wedge replays the punts and the control path settles and
// binds the device that was stuck joining.
func TestWedgeSettleDeadlineAndRecovery(t *testing.T) {
	const settle = 50 * time.Millisecond
	fl, eng := newChaosFleet(t, 1, 42, settle)
	h := fl.Homes()[0]

	// Clean baseline: a device joins and binds with no fault active.
	host1, err := h.Join("", false, netsim.Pos{X: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !host1.Bound() {
		t.Fatal("baseline device did not bind")
	}
	if err := fl.Step(1); err != nil {
		t.Fatal(err)
	}

	f := eng.FaultsFor(h.ID)
	f.WedgeController(true)
	host2, err := h.Router.Net.AddHost("dev-wedged", h.NextMAC(), false, netsim.Pos{X: 1})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = h.Router.JoinHost(host2)
	if !errors.Is(err, quiesce.ErrDeadline) {
		t.Fatalf("JoinHost under wedge: err = %v, want quiesce.ErrDeadline", err)
	}
	if wall := time.Since(start); wall > 40*settle {
		t.Fatalf("settle under wedge took %v; the deadline did not bound it", wall)
	}
	if host2.Bound() {
		t.Fatal("device bound through a wedged controller")
	}
	if st := f.Stats(); st.HeldPunts == 0 {
		t.Fatalf("wedge held no punts: %+v", st)
	}

	// A fleet step over the wedged home surfaces the same deadline and
	// counts a settle failure on the home (the health evaluator's vital).
	if err := fl.Step(1); !errors.Is(err, quiesce.ErrDeadline) {
		t.Fatalf("fleet.Step over wedged home: err = %v, want quiesce.ErrDeadline", err)
	}
	if h.SettleErrs() == 0 {
		t.Error("settle failure not counted on the home")
	}

	// Lift the wedge: the held punts replay in order, the epoch's credits
	// catch up, and the join completes.
	f.WedgeController(false)
	if err := h.Router.Settle(); err != nil {
		t.Fatalf("settle after lift: %v", err)
	}
	if !host2.Bound() {
		if err := h.Router.JoinHost(host2); err != nil {
			t.Fatal(err)
		}
	}
	if !host2.Bound() {
		t.Fatal("device did not bind after the wedge lifted")
	}
	st := f.Stats()
	if st.HeldPunts != 0 || st.ReleasedPunts == 0 {
		t.Fatalf("release accounting after lift: %+v", st)
	}
	if err := fl.Step(1); err != nil {
		t.Fatalf("step after recovery: %v", err)
	}
}

// TestDropAndDelayFlowMods checks the southbound fault pair: DropFlowMods
// makes rules vanish (punts keep flowing and settling, so the control
// path stays live), DelayFlowMods holds rules and replays them on lift.
func TestDropAndDelayFlowMods(t *testing.T) {
	fl, eng := newChaosFleet(t, 1, 43, time.Second)
	h := fl.Homes()[0]
	host, err := h.Join("", false, netsim.Pos{X: 1})
	if err != nil {
		t.Fatal(err)
	}
	host.AddApp(netsim.NewApp(netsim.AppWeb, "203.0.113.10", 60_000))
	f := eng.FaultsFor(h.ID)

	f.DropFlowMods(true)
	// Traffic punts, the punts dispatch and credit (Settle succeeds), but
	// every resulting flow-mod is eaten.
	for i := 0; i < 3; i++ {
		if err := fl.Step(0.5); err != nil {
			t.Fatalf("step under drop-mods: %v", err)
		}
	}
	if st := f.Stats(); st.DroppedMods == 0 {
		t.Fatalf("no flow-mods dropped: %+v", st)
	}
	f.DropFlowMods(false)

	f.DelayFlowMods(true)
	if err := fl.Step(0.5); err != nil {
		t.Fatalf("step under delay-mods: %v", err)
	}
	held := f.Stats().HeldMods
	if held == 0 {
		t.Fatalf("no flow-mods held: %+v", f.Stats())
	}
	f.DelayFlowMods(false)
	st := f.Stats()
	if st.HeldMods != 0 || st.ReleasedMods != held {
		t.Fatalf("delay release accounting: held %d, stats %+v", held, st)
	}
	if err := fl.Step(0.5); err != nil {
		t.Fatalf("step after faults lifted: %v", err)
	}
}

// TestWrapAcrossRestartKeepsFaults restarts a home while its controller
// is wedged: the fresh incarnation's channel rebinds through the same
// switchboard, messages held for the dead incarnation are discarded and
// accounted, and the wedge itself persists until lifted.
func TestWrapAcrossRestartKeepsFaults(t *testing.T) {
	const settle = 50 * time.Millisecond
	fl, eng := newChaosFleet(t, 1, 44, settle)
	h := fl.Homes()[0]
	id := h.ID
	f := eng.FaultsFor(id)

	f.WedgeController(true)
	// Provoke held punts: a join's DISCOVER goes into the wedge.
	host, err := h.Router.Net.AddHost("dev", h.NextMAC(), false, netsim.Pos{X: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Router.JoinHost(host); !errors.Is(err, quiesce.ErrDeadline) {
		t.Fatalf("join under wedge: %v", err)
	}
	heldBefore := f.Stats().HeldPunts
	if heldBefore == 0 {
		t.Fatal("no punts held before restart")
	}

	h2, err := fl.RestartHome(id)
	if err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.HeldPunts != 0 || st.LostPunts != heldBefore {
		t.Fatalf("restart did not retire held punts: %+v", st)
	}

	// The wedge survives the restart: the new incarnation's joins are
	// still starved until the fault lifts.
	host2, err := h2.Router.Net.AddHost("dev2", h2.NextMAC(), false, netsim.Pos{X: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.Router.JoinHost(host2); !errors.Is(err, quiesce.ErrDeadline) {
		t.Fatalf("join after restart under persisting wedge: %v", err)
	}
	f.WedgeController(false)
	if err := h2.Router.Settle(); err != nil {
		t.Fatalf("settle after lift: %v", err)
	}
	if !host2.Bound() {
		if err := h2.Router.JoinHost(host2); err != nil || !host2.Bound() {
			t.Fatalf("device did not bind after lift (err %v, bound %v)", err, host2.Bound())
		}
	}
}
