package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dhcp"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/quiesce"
)

// startRouter brings up a full platform with auto-permit enabled unless
// overridden by mutate.
func startRouter(t *testing.T, mutate func(*Config)) *Router {
	t.Helper()
	cfg := DefaultConfig()
	cfg.AutoPermit = true
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	return r
}

// join adds a host and completes DHCP, failing the test if it can't bind.
func join(t *testing.T, r *Router, name, mac string, wireless bool, pos netsim.Pos) *netsim.Host {
	t.Helper()
	h, err := r.AddHost(name, mac, wireless, pos)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.JoinHost(h); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return h.Bound() || h.Denied() })
	return h
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestDHCPJoinHostRoutes(t *testing.T) {
	r := startRouter(t, nil)
	h := join(t, r, "toms-mac-air", "02:aa:00:00:00:01", false, netsim.Pos{})
	if !h.Bound() {
		t.Fatal("host did not bind")
	}
	if h.IP().IsZero() {
		t.Fatal("no address")
	}
	// The Homework scheme: /32 lease, router as gateway and DNS.
	if h.LeaseMask() != 32 {
		t.Errorf("lease mask = /%d, want /32", h.LeaseMask())
	}
	// Lease recorded in hwdb.
	res, err := r.DB.Query("SELECT action, hostname FROM Leases [NOW]")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "add" || res.Rows[0][1].Str != "toms-mac-air" {
		t.Errorf("lease row = %v", res.Rows)
	}
}

func TestDHCPPendingThenPermit(t *testing.T) {
	r := startRouter(t, func(c *Config) { c.AutoPermit = false })
	h, err := r.AddHost("new-phone", "02:aa:00:00:00:02", true, netsim.Pos{X: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.JoinHost(h); err != nil {
		t.Fatal(err)
	}
	if h.Bound() {
		t.Fatal("unapproved host bound")
	}
	dev, ok := r.DHCP.Lookup(h.MAC)
	if !ok || dev.State != dhcp.Pending {
		t.Fatalf("device state = %+v", dev)
	}

	// The control interface drags the device into "permitted".
	r.DHCP.Permit(h.MAC)
	h.StartDHCP()
	waitFor(t, 5*time.Second, h.Bound)
	if h.IP().IsZero() {
		t.Fatal("no lease after permit")
	}
}

func TestDHCPDenyGetsNak(t *testing.T) {
	r := startRouter(t, func(c *Config) { c.AutoPermit = false })
	h, err := r.AddHost("intruder", "02:aa:00:00:00:03", true, netsim.Pos{X: 8})
	if err != nil {
		t.Fatal(err)
	}
	r.DHCP.Deny(h.MAC)
	h.StartDHCP()
	waitFor(t, 5*time.Second, h.Denied)
	if h.Bound() {
		t.Fatal("denied host bound")
	}
}

func TestEndToEndFlowAndMeasurement(t *testing.T) {
	r := startRouter(t, nil)
	h := join(t, r, "laptop", "02:aa:00:00:00:04", false, netsim.Pos{})

	app := netsim.NewApp(netsim.AppWeb, "example.com", 40_000)
	h.AddApp(app)

	// Let resolution and a few traffic ticks happen.
	for i := 0; i < 12; i++ {
		r.Net.Step(0.25)
		if err := r.Settle(); err != nil {
			t.Fatal(err)
		}
	}
	if app.SentBytes() == 0 {
		t.Fatal("app sent nothing (resolution failed?)")
	}

	// The upstream saw the traffic.
	rx, tx, queries := r.Upstream.Counters()
	if rx == 0 || tx == 0 {
		t.Fatalf("upstream counters rx=%d tx=%d", rx, tx)
	}
	if queries == 0 {
		t.Fatal("no DNS queries reached the upstream resolver")
	}

	// Flow entries are in the datapath and visible via measurement.
	r.PollMeasure()
	res, err := r.DB.Query("SELECT mac, sum(bytes) AS total FROM Flows GROUP BY mac")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no flows measured")
	}
	found := false
	for _, row := range res.Rows {
		if row[0].MAC() == h.MAC && row[1].AsFloat() > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("laptop's flows not attributed: %v", res.Rows)
	}

	// FlowPerf pairs tx with rx across the device's ingress hop and
	// carries the rule-install latency on each flow's first observation.
	res, err = r.DB.Query("SELECT tx_pkts, rx_pkts, lost_pkts, install_us FROM FlowPerf")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no FlowPerf rows after traffic and a measurement poll")
	}
	installSeen := false
	for _, row := range res.Rows {
		tx, rx, lost, us := row[0].Int, row[1].Int, row[2].Int, row[3].Int
		if rx <= 0 || tx != rx+lost {
			t.Errorf("FlowPerf accounting broken: tx=%d rx=%d lost=%d", tx, rx, lost)
		}
		if us > 0 {
			installSeen = true
		}
	}
	if !installSeen {
		t.Error("no FlowPerf row carries a rule-install latency")
	}

	// Links table fills from the wireless model for wireless stations.
	res, err = r.DB.Query("SELECT count(*) FROM Links")
	if err != nil {
		t.Fatal(err)
	}
	// laptop is wired; Links may be empty. Add a wireless station and poll.
	w := join(t, r, "phone", "02:aa:00:00:00:05", true, netsim.Pos{X: 5, Y: 2})
	_ = w
	r.PollMeasure()
	res, err = r.DB.Query("SELECT mac, rssi FROM Links [NOW]")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].Int >= 0 {
		t.Errorf("links rows = %v", res.Rows)
	}
}

func TestIntraHomeTrafficTraversesRouter(t *testing.T) {
	r := startRouter(t, nil)
	a := join(t, r, "host-a", "02:aa:00:00:00:06", false, netsim.Pos{})
	b := join(t, r, "host-b", "02:aa:00:00:00:07", false, netsim.Pos{})

	app := netsim.NewApp(netsim.AppIoT, b.IP().String(), 4_000)
	a.AddApp(app)
	for i := 0; i < 8; i++ {
		r.Net.Step(0.25)
		if err := r.Settle(); err != nil {
			t.Fatal(err)
		}
	}
	// b received frames, and they came through the router (dst MAC
	// rewritten by the router, src MAC = router MAC).
	waitFor(t, 5*time.Second, func() bool {
		frames, _ := b.RxStats()
		return frames > 0
	})
	if r.Net.BypassedFrames() != 0 {
		t.Errorf("frames bypassed the router under /32: %d", r.Net.BypassedFrames())
	}
	// The flow is visible in the datapath table.
	r.PollMeasure()
	res, err := r.DB.Query(fmt.Sprintf("SELECT count(*) FROM Flows WHERE daddr = %s", b.IP()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int == 0 {
		t.Error("intra-home flow not measured")
	}
}

func TestAblationDirectL2HidesTraffic(t *testing.T) {
	r := startRouter(t, func(c *Config) {
		c.HostRoutes = false // conventional /24 leases
		c.DirectL2 = true    // hardware-switch fabric
	})
	a := join(t, r, "host-a", "02:aa:00:00:00:08", false, netsim.Pos{})
	b := join(t, r, "host-b", "02:aa:00:00:00:09", false, netsim.Pos{})
	if a.LeaseMask() != 24 {
		t.Fatalf("lease mask = /%d, want /24", a.LeaseMask())
	}

	app := netsim.NewApp(netsim.AppIoT, b.IP().String(), 4_000)
	a.AddApp(app)
	for i := 0; i < 8; i++ {
		r.Net.Step(0.25)
		if err := r.Settle(); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return r.Net.BypassedFrames() > 0 })

	// The flow never appears in the router's measurements: the paper's
	// motivating invisibility problem.
	r.PollMeasure()
	res, err := r.DB.Query(fmt.Sprintf("SELECT count(*) FROM Flows WHERE daddr = %s", b.IP()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 0 {
		t.Errorf("direct-L2 flow unexpectedly measured: %v", res.Rows)
	}
}

func TestPolicyDeniesAndUSBKeyLifts(t *testing.T) {
	r := startRouter(t, nil)
	kid := join(t, r, "kids-tablet", "02:aa:00:00:00:0a", true, netsim.Pos{X: 4})
	adult := join(t, r, "adult-laptop", "02:aa:00:00:00:0b", false, netsim.Pos{})

	// Figure 4's policy: kids may only use facebook, and only while the
	// parent's key is inserted.
	pol := &policy.Policy{
		Name:         "kids-facebook",
		Devices:      []string{kid.MAC.String()},
		AllowedSites: []string{"facebook.com"},
		RequireKey:   "parent-key",
	}
	if err := r.Policy.Install(pol); err != nil {
		t.Fatal(err)
	}

	kidFB := netsim.NewApp(netsim.AppWeb, "facebook.com", 20_000)
	kid.AddApp(kidFB)
	adultWeb := netsim.NewApp(netsim.AppWeb, "example.com", 20_000)
	adult.AddApp(adultWeb)

	step := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			r.Net.Step(0.25)
			if err := r.Settle(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Key out: kid's DNS is refused, so the app cannot even resolve;
	// adult unaffected.
	step(10)
	if kidFB.SentBytes() != 0 {
		t.Errorf("kid sent %d bytes with key out", kidFB.SentBytes())
	}
	if adultWeb.SentBytes() == 0 {
		t.Error("adult blocked by kid policy")
	}
	st := r.DNS.Stats()
	if st.Denied == 0 {
		t.Error("no DNS denials recorded")
	}

	// Key in: facebook resolves and flows pass.
	r.Policy.InsertKey("parent-key")
	step(20)
	if kidFB.SentBytes() == 0 {
		t.Error("kid still blocked with key inserted")
	}

	// Other sites remain blocked for the kid even with the key in.
	kidOther := netsim.NewApp(netsim.AppWeb, "youtube.com", 20_000)
	kid.AddApp(kidOther)
	step(10)
	if kidOther.SentBytes() != 0 {
		t.Errorf("kid reached non-allowed site: %d bytes", kidOther.SentBytes())
	}

	// Key removed again: new flows are denied (existing entries flushed).
	r.Policy.RemoveKey("parent-key")
	if err := r.Settle(); err != nil {
		t.Fatal(err)
	}
	before := kidFB.SentBytes()
	sent := r.Upstream
	_ = sent
	step(10)
	// The app keeps "sending" locally but frames must be dropped at the
	// router: upstream byte growth should come only from the adult. We
	// check the forwarder recorded fresh denials.
	_, denied := r.Forwarder.Counters()
	if denied == 0 {
		t.Error("no denials after key removal")
	}
	_ = before
}

func TestPingRouter(t *testing.T) {
	r := startRouter(t, nil)
	h := join(t, r, "pinger", "02:aa:00:00:00:0c", false, netsim.Pos{})
	got := make(chan struct{}, 1)
	h.OnFrame = func(frame []byte) {
		var d packet.Decoded
		if err := d.Decode(frame); err == nil && d.HasICMP && d.ICMP.Type == packet.ICMPEchoReply {
			select {
			case got <- struct{}{}:
			default:
			}
		}
	}
	ping := packet.NewICMPEchoFrame(h.MAC, r.Config.RouterMAC, h.IP(), r.Config.RouterIP,
		packet.ICMPEchoRequest, 1, 1, []byte("hello"))
	h.SendRaw(ping.Bytes())
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("no echo reply from router")
	}
}

// TestTransportDefaultInProcess asserts the default control plane is the
// in-process transport: no TCP listener is bound, and the platform still
// comes up end to end.
func TestTransportDefaultInProcess(t *testing.T) {
	r := startRouter(t, nil)
	if r.Config.Transport != TransportInProcess {
		t.Fatalf("default transport = %q, want %q", r.Config.Transport, TransportInProcess)
	}
	if addr := r.Controller.Addr(); addr != "" {
		t.Errorf("in-process transport bound a TCP listener at %s", addr)
	}
	if r.Switch() == nil {
		t.Fatal("datapath did not join over the in-process transport")
	}
	h := join(t, r, "dev", "02:aa:00:00:00:21", false, netsim.Pos{})
	if !h.Bound() {
		t.Fatal("host did not bind over the in-process transport")
	}
}

// TestTransportTCP keeps the loopback wire path working for cross-process
// deployments (cmd/hwrouterd).
func TestTransportTCP(t *testing.T) {
	r := startRouter(t, func(c *Config) { c.Transport = TransportTCP })
	if addr := r.Controller.Addr(); addr == "" {
		t.Error("TransportTCP bound no listener")
	}
	h := join(t, r, "dev", "02:aa:00:00:00:22", false, netsim.Pos{})
	if !h.Bound() {
		t.Fatal("host did not bind over the TCP transport")
	}
}

// TestTransportUnknownRejected asserts config validation catches typos
// instead of silently falling back.
func TestTransportUnknownRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transport = "carrier-pigeon"
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown transport accepted")
	}
}

// TestSettleDeadlineWhenWedged pins the error backstop: a punt with no
// controller behind it (the router was never started, so nothing drains
// the epoch) must surface SettleTimeout as a quiesce.ErrDeadline — not
// hang, and not return success.
func TestSettleDeadlineWhenWedged(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AutoPermit = true
	cfg.SettleTimeout = 50 * time.Millisecond
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	// No Start: the datapath punts into the void.
	h, err := r.AddHost("wedged", "02:aa:00:00:00:31", false, netsim.Pos{})
	if err != nil {
		t.Fatal(err)
	}
	h.StartDHCP()
	if r.Datapath.PuntCount() == 0 {
		t.Fatal("no punt was recorded")
	}
	start := time.Now()
	err = r.Settle()
	if !errors.Is(err, quiesce.ErrDeadline) {
		t.Fatalf("Settle = %v, want quiesce.ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("Settle returned after %v, want ~SettleTimeout", elapsed)
	}
	// JoinHost shares the backstop.
	if err := r.JoinHost(h); !errors.Is(err, quiesce.ErrDeadline) {
		t.Fatalf("JoinHost = %v, want quiesce.ErrDeadline", err)
	}
}

// TestSettleConcurrentWithTraffic hammers Settle from several goroutines
// while the network keeps punting (run under -race): no call may return
// an error, and after every stepper settles, the control path must be
// quiescent — processed caught up with punted — with no lost wakeup
// (which would surface as a deadline error) and no early return while a
// step's punts were outstanding.
func TestSettleConcurrentWithTraffic(t *testing.T) {
	r := startRouter(t, nil)
	h := join(t, r, "churner", "02:aa:00:00:00:32", false, netsim.Pos{})
	app := netsim.NewApp(netsim.AppWeb, "203.0.113.7", 40_000)
	app.SetFlowChurn(0.9) // fresh flows: every tick punts
	h.AddApp(app)

	const steps = 200
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	done := make(chan struct{})

	// One stepper: inject traffic then settle, as Home.step does.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < steps; i++ {
			r.Net.Step(0.05)
			if err := r.Settle(); err != nil {
				errs <- err
				return
			}
		}
	}()
	// Concurrent settlers with nothing of their own to wait for: they
	// must neither error nor deadlock no matter how they interleave.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if err := r.Settle(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	punted, processed := r.Datapath.Quiesce().Counts()
	if processed < punted {
		t.Fatalf("early return: %d punts but only %d processed after all Settles", punted, processed)
	}
	if punted == 0 {
		t.Fatal("traffic generated no punts; the test exercised nothing")
	}
}

// TestDuplicateAckLeavesHostUsable guards handleDHCP's manual
// lock/unlock structure: a retransmitted ACK arriving after the host is
// already bound must be ignored without leaking the host mutex (a leak
// deadlocks Bound() and every later delivery, wedging the fleet tick).
func TestDuplicateAckLeavesHostUsable(t *testing.T) {
	r := startRouter(t, nil)
	h, err := r.AddHost("dup", "02:aa:00:00:00:41", false, netsim.Pos{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var ack []byte
	h.OnFrame = func(f []byte) {
		var d packet.Decoded
		if d.Decode(f) == nil && d.HasUDP && d.UDP.DstPort == packet.DHCPClientPort {
			var m packet.DHCP
			if m.DecodeFromBytes(d.UDP.Payload) == nil && m.MsgType() == packet.DHCPAck {
				mu.Lock()
				ack = append([]byte(nil), f...)
				mu.Unlock()
			}
		}
	}
	if err := r.JoinHost(h); err != nil {
		t.Fatal(err)
	}
	if !h.Bound() {
		t.Fatal("host did not bind")
	}
	mu.Lock()
	frame := ack
	mu.Unlock()
	if frame == nil {
		t.Fatal("no ACK captured during the handshake")
	}
	h.Deliver(frame) // the duplicate: matching XID, state already bound
	if !h.Bound() {
		t.Fatal("duplicate ACK disturbed the lease")
	}
}
