package core

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/controlapi"
	"repro/internal/datapath"
	"repro/internal/dhcp"
	"repro/internal/dnsproxy"
	"repro/internal/hwdb"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/nox"
	"repro/internal/oftransport"
	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/trace"
)

// TransportKind selects how the NOX controller and the datapath exchange
// OpenFlow messages.
type TransportKind string

// Control-plane transports. In-process is the default: the paper's
// controller and switch are co-resident on one home router, so decoded
// messages cross on buffered channels with no serialize → TCP →
// deserialize round trip. TCP keeps the byte-exact loopback wire path for
// cross-process deployments (cmd/hwrouterd) and for benchmarking the
// in-process win.
const (
	TransportInProcess TransportKind = "inprocess"
	TransportTCP       TransportKind = "tcp"
)

// Config parameterizes the whole platform.
type Config struct {
	// RouterIP/RouterMAC identify the router on the home side.
	RouterIP  packet.IP4
	RouterMAC packet.MAC
	// PoolStart/PoolEnd bound DHCP allocation.
	PoolStart, PoolEnd packet.IP4
	// LeaseTime is the DHCP lease duration (default 1h).
	LeaseTime time.Duration
	// HostRoutes selects /32 leases (the paper's scheme). Default true.
	HostRoutes bool
	// AutoPermit admits devices without operator action (tests/benches).
	AutoPermit bool
	// DirectL2 models a conventional switch fabric (only meaningful with
	// HostRoutes=false; the A1 ablation).
	DirectL2 bool
	// RingSize is the hwdb per-table ring capacity.
	RingSize int
	// MeasureInterval is the measurement plane poll period.
	MeasureInterval time.Duration
	// FlowIdleTimeout shapes installed flows (seconds, default 30).
	FlowIdleTimeout uint16
	// Clock drives every time-dependent module (default wall clock).
	Clock clock.Clock
	// Seed seeds the wireless model.
	Seed int64
	// DisableRPC skips the per-router hwdb UDP server. Fleet deployments
	// aggregate hwdb state centrally and would otherwise bind one socket
	// per home.
	DisableRPC bool
	// Transport selects the controller↔datapath channel
	// (TransportInProcess when empty).
	Transport TransportKind
	// WrapTransport, when set, interposes on the in-process control
	// channel before the read loops attach: it receives the controller
	// and datapath ends of the pair and returns the (possibly wrapped)
	// ends to use. This is the chaos layer's fault-injection seam —
	// wedged controllers, dropped or delayed flow-mods — so wrappers
	// must preserve the full Transport contract (ordering, ownership,
	// Close semantics) for messages they pass through. Only the
	// in-process transport is wrapped; TCP deployments are outside the
	// fault model.
	WrapTransport func(ctl, dp oftransport.Transport) (oftransport.Transport, oftransport.Transport)
	// DisableTrace turns the always-on punt-lifecycle tracer off. Only
	// the trace-overhead benchmark should need it: tracing's span-record
	// path is allocation-free and budgeted at <=5% of fleet step
	// throughput, so production deployments leave it on.
	DisableTrace bool
	// TraceRing bounds the per-home span ring (default
	// trace.DefaultRingSize; overwrite-oldest).
	TraceRing int
	// SettleTimeout bounds how long Settle (and JoinHost, which settles
	// between DHCP attempts) will wait for the control path to drain
	// before reporting a wedged controller (default 5s). It is an error
	// backstop only — quiescence itself is signalled, never polled on
	// this cadence.
	SettleTimeout time.Duration
}

// DefaultConfig returns the configuration used by the examples and the
// figure harness: a 192.168.1.0/24 home with /32 leases.
func DefaultConfig() Config {
	return Config{
		RouterIP:   packet.MustIP4("192.168.1.1"),
		RouterMAC:  packet.MustMAC("02:01:00:00:00:01"),
		PoolStart:  packet.MustIP4("192.168.1.10"),
		PoolEnd:    packet.MustIP4("192.168.1.250"),
		LeaseTime:  time.Hour,
		HostRoutes: true,
		AutoPermit: false,
		RingSize:   hwdb.DefaultRingSize,
		Seed:       1,
		Transport:  TransportInProcess,
	}
}

// Router is the assembled Homework platform.
type Router struct {
	Config Config
	Clock  clock.Clock

	DB         *hwdb.DB
	HwdbServer *hwdb.Server
	Controller *nox.Controller
	Datapath   *datapath.Datapath
	Net        *netsim.Network
	Upstream   *netsim.Upstream
	DHCP       *dhcp.Server
	DNS        *dnsproxy.Proxy
	Policy     *policy.Engine
	API        *controlapi.API
	Forwarder  *Forwarder
	Measure    *measure.Plane
	// Tracer holds the home's punt-lifecycle spans and per-stage latency
	// histograms (nil when Config.DisableTrace; trace methods are
	// nil-safe, so readers need no guard).
	Tracer *trace.Tracer

	sw *nox.Switch
}

// linkAdapter bridges netsim's LinkInfos to the measurement plane.
type linkAdapter struct{ net *netsim.Network }

func (l linkAdapter) LinkInfos() []measure.LinkSample {
	infos := l.net.LinkInfos()
	out := make([]measure.LinkSample, len(infos))
	for i, li := range infos {
		out[i] = measure.LinkSample{MAC: li.MAC, RSSI: li.RSSI, Retries: li.Retries, Rate: li.Rate}
	}
	return out
}

// New assembles a router and its simulated home network. Call Start to
// bring the control plane up.
func New(cfg Config) (*Router, error) {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.RingSize == 0 {
		cfg.RingSize = hwdb.DefaultRingSize
	}
	if cfg.MeasureInterval == 0 {
		cfg.MeasureInterval = time.Second
	}
	if cfg.FlowIdleTimeout == 0 {
		cfg.FlowIdleTimeout = 30
	}
	if cfg.LeaseTime == 0 {
		cfg.LeaseTime = time.Hour
	}
	if cfg.Transport == "" {
		cfg.Transport = TransportInProcess
	}
	if cfg.Transport != TransportInProcess && cfg.Transport != TransportTCP {
		return nil, fmt.Errorf("core: unknown transport %q", cfg.Transport)
	}
	if cfg.SettleTimeout == 0 {
		cfg.SettleTimeout = settleWait
	}

	r := &Router{Config: cfg, Clock: cfg.Clock}
	r.DB = hwdb.NewHomework(cfg.Clock, cfg.RingSize)
	r.Policy = policy.NewEngine(cfg.Clock)

	if !cfg.DisableTrace {
		r.Tracer = trace.New(cfg.TraceRing)
	}
	r.Datapath = datapath.New(datapath.Config{
		ID: 0x00163e000001, Clock: cfg.Clock,
		Description: "Homework home router",
		Tracer:      r.Tracer,
	})
	r.Net = netsim.New(r.Datapath, netsim.DefaultWireless(cfg.Seed))
	if cfg.DirectL2 {
		r.Net.SetDirectL2(true)
	}
	r.Upstream = netsim.NewUpstream()
	r.Upstream.SetLocalNet(cfg.RouterIP, 24)
	upPort, err := r.Net.AttachUpstream(r.Upstream)
	if err != nil {
		return nil, fmt.Errorf("core: attaching upstream: %w", err)
	}
	// The WAN port is not part of the home broadcast domain.
	if p, ok := r.Datapath.Port(upPort); ok {
		p.Config |= openflow.PortConfigNoFlood
	}

	r.DHCP = dhcp.NewServer(dhcp.Config{
		ServerIP: cfg.RouterIP, ServerMAC: cfg.RouterMAC,
		PoolStart: cfg.PoolStart, PoolEnd: cfg.PoolEnd,
		LeaseTime: cfg.LeaseTime, HostRoutes: cfg.HostRoutes,
		AutoPermit: cfg.AutoPermit, Clock: cfg.Clock, DB: r.DB,
	})
	r.DNS = dnsproxy.New(dnsproxy.Config{
		RouterIP: cfg.RouterIP, RouterMAC: cfg.RouterMAC,
		UpstreamDNS: r.Upstream.DNSAddr, UpstreamPort: upPort,
		UpstreamMAC: r.Upstream.MAC,
		Policy:      r.Policy, Clock: cfg.Clock,
	})
	r.Forwarder = NewForwarder()
	r.Forwarder.RouterIP = cfg.RouterIP
	r.Forwarder.RouterMAC = cfg.RouterMAC
	r.Forwarder.UpstreamPort = upPort
	r.Forwarder.UpstreamMAC = r.Upstream.MAC
	r.Forwarder.DHCP = r.DHCP
	r.Forwarder.DNS = r.DNS
	r.Forwarder.Policy = r.Policy
	r.Forwarder.IdleTimeout = cfg.FlowIdleTimeout

	r.API = controlapi.New(r.DHCP, r.Policy, cfg.RouterIP)

	r.Controller = nox.NewController()
	// Punted packets must arrive whole: the DHCP payload alone is 300
	// bytes and the modules parse punts directly.
	r.Controller.MissSendLen = 0xffff
	// Controller and datapath share one punt/processed epoch regardless
	// of transport (they are co-resident even on the TCP loopback path),
	// so Settle blocks on catch-up instead of polling counters.
	r.Controller.SetQuiesce(r.Datapath.Quiesce())
	// The same co-residence shares the tracer: the datapath stamps punts,
	// the controller stamps dispatch/emit/credit/barrier.
	r.Controller.SetTracer(r.Tracer)
	// Registration order is the dispatch order: DHCP and DNS consume
	// their protocols before the forwarder sees anything.
	for _, comp := range []nox.Component{r.DHCP, r.DNS, r.API, r.Forwarder} {
		if err := r.Controller.Register(comp); err != nil {
			return nil, err
		}
	}

	r.Measure = measure.New(measure.Config{
		DB: r.DB, Clock: cfg.Clock, Interval: cfg.MeasureInterval,
		Links:      linkAdapter{net: r.Net},
		Resolver:   r.DHCP,
		HomePrefix: cfg.RouterIP, HomePrefixLen: 24,
	})
	// Expiring flows report their final counters so the interval between
	// the last poll and the timeout is still accounted.
	r.Controller.OnFlowRemoved(func(ev *nox.FlowRemovedEvent) {
		r.Measure.RecordFlowRemoved(&ev.Msg.Match, ev.Msg.PacketCount, ev.Msg.ByteCount)
	})
	// Each forwarding rule's install latency — punt to flow-mod emission,
	// read off the in-flight span — lands in the flow's FlowPerf row.
	r.Forwarder.OnInstall = func(m *openflow.Match) {
		r.Measure.RecordInstall(m, r.Tracer.DispatchLatencyNS())
	}
	// hwctl trace / the REST surface read the same per-stage summaries.
	r.API.Trace = r.Tracer.Stats
	// hwctl replay scrubs a table's retained history (the live rings by
	// default; AS OF-grade depth when a HistorySource is set on r.DB).
	r.API.Replay = func(table string, from, to time.Time) (string, error) {
		res, err := r.DB.History(table, from, to)
		if err != nil {
			return "", err
		}
		return res.Text(), nil
	}
	return r, nil
}

// Start brings up the controller, connects the datapath over the
// configured transport (in-process channels by default, loopback TCP with
// Config.Transport = TransportTCP), waits for the join, and starts the
// hwdb RPC server. The measurement plane is left to the caller
// (PollMeasure or RunMeasure) so simulated-clock runs stay deterministic.
func (r *Router) Start() error {
	joined := make(chan *nox.Switch, 1)
	r.Controller.OnJoin(func(ev *nox.JoinEvent) {
		select {
		case joined <- ev.Switch:
		default:
		}
	})
	switch r.Config.Transport {
	case TransportTCP:
		if err := r.Controller.ListenAndServe("127.0.0.1:0"); err != nil {
			return err
		}
		go func() { _ = r.Datapath.ConnectTCP(r.Controller.Addr()) }()
	default: // TransportInProcess — validated in New.
		ctlEnd, dpEnd := oftransport.Pair(0)
		var ctl, dp oftransport.Transport = ctlEnd, dpEnd
		if r.Config.WrapTransport != nil {
			ctl, dp = r.Config.WrapTransport(ctl, dp)
		}
		go func() { _ = r.Controller.ServeTransport(ctl) }()
		go func() { _ = r.Datapath.ConnectTransport(dp) }()
	}
	select {
	case sw := <-joined:
		r.sw = sw
	case <-time.After(10 * time.Second):
		return fmt.Errorf("core: datapath did not join the controller")
	}
	// The modules' OnJoin handlers ran before ours (registration order), so
	// their punt-rule flow-mods are already on the wire; round-trip a
	// barrier so a packet sent the instant Start returns cannot miss into
	// the default table-miss punt and arrive truncated.
	if err := r.sw.Barrier(); err != nil {
		return fmt.Errorf("core: barrier after join: %w", err)
	}

	if !r.Config.DisableRPC {
		r.HwdbServer = hwdb.NewServer(r.DB)
		if err := r.HwdbServer.Serve("127.0.0.1:0"); err != nil {
			return err
		}
	}
	return nil
}

// Switch returns the controller's handle on the datapath (valid after
// Start).
func (r *Router) Switch() *nox.Switch { return r.sw }

// Stop tears the platform down.
func (r *Router) Stop() {
	if r.Measure != nil {
		r.Measure.Stop()
	}
	if r.HwdbServer != nil {
		_ = r.HwdbServer.Close()
	}
	if r.API != nil {
		_ = r.API.Close()
	}
	r.Datapath.Stop()
	_ = r.Controller.Close()
}

// PollMeasure runs one measurement round (deterministic alternative to the
// background loop).
func (r *Router) PollMeasure() { r.Measure.PollOnce(r.sw) }

// RunMeasure starts the periodic measurement loop.
func (r *Router) RunMeasure() { go r.Measure.Run(r.sw) }

// Settle blocks until the control path is quiescent: every packet-in the
// datapath has punted has been dispatched by the controller, and a
// barrier has round-tripped with no new punts arriving behind it — so
// any flow-mods and packet-outs the dispatches produced are live in the
// datapath. The wait is event-driven (the controller signals catch-up on
// the shared quiescence epoch; there is no polling and no sleep) and
// returns the moment the path drains. Config.SettleTimeout bounds the
// whole call as an error backstop against a wedged controller. Settle is
// safe to call from any goroutine and makes traffic injection
// deterministic for tests, figures and benches; the full protocol is
// specified in docs/CONTROL_PLANE.md.
func (r *Router) Settle() error {
	q := r.Datapath.Quiesce()
	deadline := time.Now().Add(r.Config.SettleTimeout)
	for {
		if err := q.Wait(time.Until(deadline)); err != nil {
			punted, done := q.Counts()
			return fmt.Errorf("core: control path did not settle (%d punts, %d processed): %w", punted, done, err)
		}
		if r.sw == nil {
			return nil
		}
		// Catch-up says every punt was dispatched, and each dispatch's
		// flow-mods and packet-outs were sent before it was credited —
		// so a barrier sent after this observation flushes all of them.
		// Snapshot the punt count at the observation: if it is unchanged
		// when the barrier returns, nothing the flush delivered punted
		// again and the path is quiescent. Otherwise the flush advanced
		// a handshake chain (DHCP OFFER → REQUEST, DNS relay) and the
		// new punt's dispatch must be waited for in turn. Comparing
		// against the snapshot (not re-reading Settled) is load-bearing:
		// a dispatch completing between the barrier send and its return
		// could make the counts look settled even though its output is
		// queued behind the barrier, not flushed by it.
		punted0, done0 := q.Counts()
		if done0 < punted0 {
			continue // a new punt raced the observation; wait for it
		}
		if err := r.sw.Barrier(); err != nil {
			return err
		}
		if q.Punted() == punted0 {
			return nil
		}
	}
}

// AddHost adds a simulated device to the home network.
func (r *Router) AddHost(name, mac string, wireless bool, pos netsim.Pos) (*netsim.Host, error) {
	m, err := packet.ParseMAC(mac)
	if err != nil {
		return nil, err
	}
	return r.Net.AddHost(name, m, wireless, pos)
}

// settleWait is the default Config.SettleTimeout: the error backstop on
// waiting for control-path quiescence, not a polling cadence.
const settleWait = 5 * time.Second

// joinAttempts bounds how many DISCOVER handshakes JoinHost will start
// before giving up and returning the host unbound. Each attempt only
// begins once the previous exchange has fully drained, so the bound is on
// genuine losses (wireless drops, a DISCOVER that raced the punt rules),
// not on slow dispatch.
const joinAttempts = 16

// JoinHost runs a device through DHCP and waits for the verdict: bound,
// denied, or (when approval is pending) still unbound after the handshake
// settles.
//
// Retry contract: like a real DHCP client, the host re-issues its
// DISCOVER when an exchange completes without a lease — the first packet
// may have raced the punt-rule installation at join, or a wireless frame
// may have been lost. Retries are gated on control-path quiescence, not
// wall-clock time: a new DISCOVER is sent only after Settle confirms the
// previous exchange has fully drained (every punt dispatched, a barrier
// crossed with no response still in flight), so there is no fixed retry
// period and no sleep. A host left Pending by the admission policy stops
// the loop immediately — it stays unbound until the control interface
// acts. At most joinAttempts handshakes are started, and
// Config.SettleTimeout bounds the whole join as an error backstop; an
// unbound host after that is reported by Bound()/Denied(), not an error.
func (r *Router) JoinHost(h *netsim.Host) error {
	deadline := time.Now().Add(r.Config.SettleTimeout)
	for attempt := 0; attempt < joinAttempts; attempt++ {
		h.StartDHCP()
		if err := r.Settle(); err != nil {
			return err
		}
		if h.Bound() || h.Denied() || r.pendingApproval(h) {
			return nil
		}
		if time.Now().After(deadline) {
			return nil
		}
	}
	return nil
}

func (r *Router) pendingApproval(h *netsim.Host) bool {
	dev, ok := r.DHCP.Lookup(h.MAC)
	return ok && dev.State == dhcp.Pending
}
