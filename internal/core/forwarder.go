// Package core assembles the Homework router platform: the software
// datapath, the NOX controller with its DHCP server, DNS proxy and control
// API modules, the hwdb measurement plane, the policy engine with its USB
// key monitor, and the simulated home network they manage. This is the
// paper's primary contribution — an integrated home router whose
// measurement and control APIs support novel management interfaces.
//
// Concurrency: New and Start are single-threaded setup. Afterwards the
// NOX modules run on the controller's dispatch goroutine, the datapath
// receives traffic from the simulator and the secure channel, and
// Settle/JoinHost may be driven from any goroutine — they block on the
// shared quiescence epoch until the control path drains (event-driven,
// no polling; the protocol is specified in docs/CONTROL_PLANE.md) with
// Config.SettleTimeout as the error backstop.
package core

import (
	"sync"

	"repro/internal/dhcp"
	"repro/internal/dnsproxy"
	"repro/internal/nox"
	"repro/internal/openflow"
	"repro/internal/packet"
	"repro/internal/policy"
)

// Flow rule priorities. Punt rules (DHCP/DNS interception) sit above
// everything; per-flow forwarding and drop entries are exact-match.
const (
	PriorityForward uint16 = 10
	PriorityDrop    uint16 = 5
)

// Forwarder is the router's base forwarding NOX component. It answers ARP
// for the router's address, responds to pings, learns device locations,
// enforces the policy engine's verdicts, and installs per-flow exact-match
// entries so every admitted flow is measurable in the datapath — the
// property the paper's DHCP design exists to guarantee.
type Forwarder struct {
	RouterIP     packet.IP4
	RouterMAC    packet.MAC
	UpstreamPort uint16
	UpstreamMAC  packet.MAC
	DHCP         *dhcp.Server
	DNS          *dnsproxy.Proxy
	Policy       *policy.Engine
	// IdleTimeout/HardTimeout shape installed flow entries (seconds).
	IdleTimeout uint16
	HardTimeout uint16
	// DropIdleTimeout bounds how long a denial is cached in the table.
	DropIdleTimeout uint16
	// OnInstall, when set, observes each forwarding entry the instant its
	// flow-mod is emitted. It runs on the controller's dispatch goroutine
	// (the router uses it to record punt-to-install latency into the
	// measurement plane); keep it cheap and non-blocking.
	OnInstall func(m *openflow.Match)

	mu        sync.Mutex
	macPort   map[packet.MAC]uint16
	installed map[installedKey]struct{}
	denials   uint64
	admitted  uint64
	// upstreamActs is the rewrite+output action list toward the uplink,
	// built once and shared read-only by every upstream-bound flow entry
	// instead of allocated per admitted flow.
	upstreamActs []openflow.Action
}

type installedKey struct {
	match    openflow.Match
	priority uint16
}

// NewForwarder builds the component with sensible timeouts.
func NewForwarder() *Forwarder {
	return &Forwarder{
		IdleTimeout:     30,
		DropIdleTimeout: 5,
		macPort:         make(map[packet.MAC]uint16),
		installed:       make(map[installedKey]struct{}),
	}
}

// Name implements nox.Component.
func (f *Forwarder) Name() string { return "forwarder" }

// Configure implements nox.Component. The forwarder registers last so the
// DHCP and DNS modules consume their protocols first.
func (f *Forwarder) Configure(ctl *nox.Controller) error {
	ctl.OnPacketIn(f.handlePacketIn)
	ctl.OnFlowRemoved(func(ev *nox.FlowRemovedEvent) {
		f.mu.Lock()
		delete(f.installed, installedKey{ev.Msg.Match, ev.Msg.Priority})
		f.mu.Unlock()
	})
	if f.Policy != nil {
		f.Policy.OnChange(func() {
			// Re-evaluate everything: flush per-flow state so the next
			// packet of each flow is policy-checked afresh.
			for _, sw := range ctl.Switches() {
				f.FlushFlows(sw)
			}
		})
	}
	return nil
}

// Counters reports admitted and denied flow decisions.
func (f *Forwarder) Counters() (admitted, denied uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.admitted, f.denials
}

// FlushFlows removes every forwarding/drop entry the forwarder installed
// (punt rules are untouched: they live at a different priority and are
// deleted strictly).
func (f *Forwarder) FlushFlows(sw *nox.Switch) {
	f.mu.Lock()
	keys := make([]installedKey, 0, len(f.installed))
	for k := range f.installed {
		keys = append(keys, k)
	}
	f.installed = make(map[installedKey]struct{})
	f.mu.Unlock()
	for _, k := range keys {
		fm := &openflow.FlowMod{
			Match: k.match, Command: openflow.FlowModDeleteStrict,
			Priority: k.priority, BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		}
		_ = sw.Send(fm)
	}
}

// learn records which port a MAC was last seen on.
func (f *Forwarder) learn(mac packet.MAC, port uint16) {
	f.mu.Lock()
	f.macPort[mac] = port
	f.mu.Unlock()
}

func (f *Forwarder) portFor(mac packet.MAC) (uint16, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p, ok := f.macPort[mac]
	return p, ok
}

func (f *Forwarder) handlePacketIn(ev *nox.PacketInEvent) nox.Disposition {
	d := ev.Decoded
	f.learn(d.Eth.Src, ev.Msg.InPort)
	switch {
	case d.HasARP:
		f.handleARP(ev)
		return nox.Stop
	case d.HasIP:
		return f.handleIPv4(ev)
	}
	return nox.Continue
}

// handleARP answers requests for the router's address and relays the rest
// (needed only in the /24 ablation, where hosts resolve each other).
func (f *Forwarder) handleARP(ev *nox.PacketInEvent) {
	d := ev.Decoded
	switch d.ARP.Op {
	case packet.ARPRequest:
		if d.ARP.TargetIP == f.RouterIP {
			reply := packet.NewARPReply(f.RouterMAC, f.RouterIP, &d.ARP)
			_ = ev.Switch.SendPacket(reply.Bytes(), openflow.PortNone,
				&openflow.ActionOutput{Port: ev.Msg.InPort})
			return
		}
		// Not for us: flood on the home segment.
		_ = ev.Switch.ReleaseBuffer(ev.Msg.BufferID, ev.Msg.InPort,
			&openflow.ActionOutput{Port: openflow.PortFlood})
	case packet.ARPReply:
		if out, ok := f.portFor(d.Eth.Dst); ok {
			_ = ev.Switch.ReleaseBuffer(ev.Msg.BufferID, ev.Msg.InPort,
				&openflow.ActionOutput{Port: out})
		}
	}
}

func (f *Forwarder) handleIPv4(ev *nox.PacketInEvent) nox.Disposition {
	d := ev.Decoded

	// Traffic addressed to the router itself: ICMP echo gets answered;
	// DHCP/DNS were consumed by earlier components.
	if d.IP.Dst == f.RouterIP {
		if d.HasICMP && d.ICMP.Type == packet.ICMPEchoRequest {
			f.sendEchoReply(ev)
		}
		return nox.Stop
	}

	// Identify the home device this flow belongs to.
	devMAC, fromHome := f.deviceFor(d)
	if !fromHome {
		// Neither endpoint is a leased device: drop (unknown traffic).
		f.installDrop(ev)
		return nox.Stop
	}

	// Policy verdict.
	if !f.flowAllowed(ev, devMAC, d) {
		f.mu.Lock()
		f.denials++
		f.mu.Unlock()
		f.installDrop(ev)
		return nox.Stop
	}

	// Next hop: a leased device in the home, or the upstream.
	actions, ok := f.nexthopActions(d.IP.Dst)
	if !ok {
		f.installDrop(ev)
		return nox.Stop
	}
	f.mu.Lock()
	f.admitted++
	f.mu.Unlock()

	m := openflow.MatchFromFrame(d, ev.Msg.InPort)
	f.mu.Lock()
	f.installed[installedKey{m, PriorityForward}] = struct{}{}
	f.mu.Unlock()
	_ = ev.Switch.InstallFlow(m, PriorityForward, f.IdleTimeout, f.HardTimeout,
		actions, nox.WithBuffer(ev.Msg.BufferID), nox.WithFlowRemoved())
	if f.OnInstall != nil {
		f.OnInstall(&m)
	}
	return nox.Stop
}

// deviceFor attributes a packet to a home device: its source if the source
// holds a lease, else its destination (return traffic).
func (f *Forwarder) deviceFor(d *packet.Decoded) (packet.MAC, bool) {
	if f.DHCP == nil {
		return d.Eth.Src, true
	}
	if dev, ok := f.DHCP.DeviceByIP(d.IP.Src); ok {
		// Anti-spoofing: the lease must match the sender's MAC.
		if dev.MAC == d.Eth.Src {
			return dev.MAC, true
		}
		return packet.MAC{}, false
	}
	if dev, ok := f.DHCP.DeviceByIP(d.IP.Dst); ok {
		return dev.MAC, true
	}
	return packet.MAC{}, false
}

// flowAllowed applies the policy engine / DNS-name check.
func (f *Forwarder) flowAllowed(ev *nox.PacketInEvent, devMAC packet.MAC, d *packet.Decoded) bool {
	if f.Policy == nil {
		return true
	}
	access := f.Policy.AccessFor(devMAC)
	if !access.NetworkAllowed {
		return false
	}
	// The remote endpoint is whichever side is not the device.
	remote := d.IP.Dst
	if dev, ok := f.DHCP.DeviceByIP(d.IP.Dst); ok && dev.MAC == devMAC {
		remote = d.IP.Src
	}
	// Intra-home traffic: site restrictions do not apply.
	if f.DHCP != nil {
		if _, isHome := f.DHCP.DeviceByIP(remote); isHome {
			return true
		}
	}
	if access.AllowedSites == nil {
		return true
	}
	if f.DNS == nil {
		return false
	}
	return f.DNS.FlowPermitted(ev.Switch, devMAC, remote)
}

// nexthopActions builds the rewrite+output action list toward dst.
func (f *Forwarder) nexthopActions(dst packet.IP4) ([]openflow.Action, bool) {
	if f.DHCP != nil {
		if dev, ok := f.DHCP.DeviceByIP(dst); ok {
			port, known := f.portFor(dev.MAC)
			if !known {
				return nil, false
			}
			return []openflow.Action{
				&openflow.ActionSetDLSrc{Addr: f.RouterMAC},
				&openflow.ActionSetDLDst{Addr: dev.MAC},
				&openflow.ActionOutput{Port: port},
			}, true
		}
	}
	if f.UpstreamPort == 0 {
		return nil, false
	}
	f.mu.Lock()
	if f.upstreamActs == nil {
		f.upstreamActs = []openflow.Action{
			&openflow.ActionSetDLSrc{Addr: f.RouterMAC},
			&openflow.ActionSetDLDst{Addr: f.UpstreamMAC},
			&openflow.ActionOutput{Port: f.UpstreamPort},
		}
	}
	acts := f.upstreamActs
	f.mu.Unlock()
	return acts, true
}

// installDrop caches a denial as an empty-action entry so repeated packets
// of a refused flow do not hammer the controller.
func (f *Forwarder) installDrop(ev *nox.PacketInEvent) {
	m := openflow.MatchFromFrame(ev.Decoded, ev.Msg.InPort)
	f.mu.Lock()
	f.installed[installedKey{m, PriorityDrop}] = struct{}{}
	f.mu.Unlock()
	_ = ev.Switch.InstallFlow(m, PriorityDrop, f.DropIdleTimeout, 0, nil, nox.WithFlowRemoved())
}

func (f *Forwarder) sendEchoReply(ev *nox.PacketInEvent) {
	d := ev.Decoded
	reply := packet.NewICMPEchoFrame(f.RouterMAC, d.Eth.Src, f.RouterIP, d.IP.Src,
		packet.ICMPEchoReply, d.ICMP.ID, d.ICMP.Seq, d.ICMP.Payload)
	_ = ev.Switch.SendPacket(reply.Bytes(), openflow.PortNone,
		&openflow.ActionOutput{Port: ev.Msg.InPort})
}
