package clock

import (
	"testing"
	"time"
)

func TestSimulatedNowAdvances(t *testing.T) {
	c := NewSimulated()
	start := c.Now()
	c.Advance(90 * time.Second)
	if got := c.Now().Sub(start); got != 90*time.Second {
		t.Errorf("advanced %v", got)
	}
}

func TestSimulatedTimerFires(t *testing.T) {
	c := NewSimulated()
	ch := c.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired early")
	default:
	}
	c.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired at 9s")
	default:
	}
	c.Advance(2 * time.Second)
	select {
	case at := <-ch:
		if got := at.Sub(c.Now()); got > 0 {
			t.Errorf("fired in the future: %v", got)
		}
	default:
		t.Fatal("timer did not fire")
	}
}

func TestSimulatedTimersFireInOrder(t *testing.T) {
	c := NewSimulated()
	late := c.After(20 * time.Second)
	early := c.After(5 * time.Second)
	c.Advance(30 * time.Second)
	earlyAt := <-early
	lateAt := <-late
	if !earlyAt.Before(lateAt) {
		t.Errorf("early %v, late %v", earlyAt, lateAt)
	}
}

func TestSimulatedZeroDelayFiresImmediately(t *testing.T) {
	c := NewSimulated()
	select {
	case <-c.After(0):
	default:
		t.Fatal("zero-delay timer did not fire")
	}
}

func TestRealClock(t *testing.T) {
	var c Real
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Error("Real.Now far in the past")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Error("Real.After never fired")
	}
}
