// Package clock abstracts time so the simulator, the Homework Database and
// the DHCP/policy modules can run against either the wall clock or a
// deterministic simulated clock driven by tests and benchmarks.
//
// Both implementations are safe for concurrent use from any goroutine:
// Real delegates to the runtime, and Simulated guards its timeline with a
// mutex, so Advance may race Now/After callers — timers created by After
// fire synchronously inside the Advance that reaches them.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock supplies the current time and timer channels.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the time after d has elapsed.
	After(d time.Duration) <-chan time.Time
}

// Real is the wall clock.
type Real struct{}

// Now returns time.Now.
func (Real) Now() time.Time { return time.Now() }

// After defers to time.After.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Simulated is a manually advanced clock. The zero value is not ready; use
// NewSimulated.
type Simulated struct {
	mu     sync.Mutex
	now    time.Time
	timers timerHeap
}

// NewSimulated returns a simulated clock starting at a fixed epoch.
func NewSimulated() *Simulated {
	return &Simulated{now: time.Date(2011, time.August, 15, 9, 0, 0, 0, time.UTC)}
}

// Now returns the simulated current time.
func (c *Simulated) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that fires when the clock is advanced past d.
func (c *Simulated) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	heap.Push(&c.timers, &timer{at: c.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward, firing any timers that come due in order.
func (c *Simulated) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	for len(c.timers) > 0 && !c.timers[0].at.After(target) {
		t := heap.Pop(&c.timers).(*timer)
		c.now = t.at
		select {
		case t.ch <- t.at:
		default:
		}
	}
	c.now = target
	c.mu.Unlock()
}

type timer struct {
	at time.Time
	ch chan time.Time
}

type timerHeap []*timer

func (h timerHeap) Len() int            { return len(h) }
func (h timerHeap) Less(i, j int) bool  { return h[i].at.Before(h[j].at) }
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}
