package oftransport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/openflow"
)

// factory builds a connected transport pair; conformance tests run the
// same assertions against every implementation so the two stay
// interchangeable behind core.Config.Transport.
type factory func(t *testing.T) (a, b Transport)

func transports() map[string]factory {
	return map[string]factory{
		// A tiny initial capacity so tests exercise queue growth.
		"inprocess": func(t *testing.T) (Transport, Transport) {
			a, b := Pair(2)
			t.Cleanup(func() { _ = a.Close() })
			return a, b
		},
		"tcp": func(t *testing.T) (Transport, Transport) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			accepted := make(chan net.Conn, 1)
			go func() {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				accepted <- c
			}()
			client, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			server := <-accepted
			_ = ln.Close()
			a, b := NewTCP(client), NewTCP(server)
			t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
			return a, b
		},
	}
}

func conformance(t *testing.T, run func(t *testing.T, a, b Transport)) {
	t.Helper()
	for name, mk := range transports() {
		t.Run(name, func(t *testing.T) {
			a, b := mk(t)
			run(t, a, b)
		})
	}
}

// TestConformanceHello exchanges HELLOs both ways: the opening move of the
// OpenFlow handshake on either end.
func TestConformanceHello(t *testing.T) {
	conformance(t, func(t *testing.T, a, b Transport) {
		if err := a.Send(&openflow.Hello{}); err != nil {
			t.Fatal(err)
		}
		msg, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := msg.(*openflow.Hello); !ok {
			t.Fatalf("b received %T, want *Hello", msg)
		}
		if err := b.Send(&openflow.Hello{}); err != nil {
			t.Fatal(err)
		}
		msg, err = a.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := msg.(*openflow.Hello); !ok {
			t.Fatalf("a received %T, want *Hello", msg)
		}
	})
}

// TestConformanceEcho round-trips an echo request/reply with payload and
// XID intact.
func TestConformanceEcho(t *testing.T) {
	conformance(t, func(t *testing.T, a, b Transport) {
		req := &openflow.EchoRequest{Data: []byte("liveness")}
		req.Header.XID = 42
		if err := a.Send(req); err != nil {
			t.Fatal(err)
		}
		msg, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got, ok := msg.(*openflow.EchoRequest)
		if !ok || string(got.Data) != "liveness" || got.Header.XID != 42 {
			t.Fatalf("b received %#v", msg)
		}
		rep := &openflow.EchoReply{Data: got.Data}
		rep.Header.XID = got.Header.XID
		if err := b.Send(rep); err != nil {
			t.Fatal(err)
		}
		back, err := a.Recv()
		if err != nil {
			t.Fatal(err)
		}
		er, ok := back.(*openflow.EchoReply)
		if !ok || string(er.Data) != "liveness" || er.Header.XID != 42 {
			t.Fatalf("a received %#v", back)
		}
	})
}

// TestConformanceHalfClose verifies the Close contract: messages already
// sent are still drained by the peer, then both ends observe ErrClosed in
// both directions.
func TestConformanceHalfClose(t *testing.T) {
	conformance(t, func(t *testing.T, a, b Transport) {
		for i := 0; i < 3; i++ {
			req := &openflow.EchoRequest{}
			req.Header.XID = uint32(i + 1)
			if err := a.Send(req); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		// The three queued messages arrive, then the shutdown.
		for i := 0; i < 3; i++ {
			msg, err := b.Recv()
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			if xid := msg.Hdr().XID; xid != uint32(i+1) {
				t.Fatalf("recv %d: xid = %d", i, xid)
			}
		}
		if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
			t.Fatalf("b.Recv after close = %v, want ErrClosed", err)
		}
		if err := a.Send(&openflow.Hello{}); !errors.Is(err, ErrClosed) {
			t.Fatalf("a.Send after close = %v, want ErrClosed", err)
		}
		if _, err := a.Recv(); !errors.Is(err, ErrClosed) {
			t.Fatalf("a.Recv after close = %v, want ErrClosed", err)
		}
		// The surviving end's sends fail too — immediately in process, and
		// within a handful of writes on TCP (the RST has to come back).
		deadline := time.Now().Add(5 * time.Second)
		for {
			err := b.Send(&openflow.Hello{})
			if errors.Is(err, ErrClosed) {
				break
			}
			if err != nil {
				t.Fatalf("b.Send after peer close = %v, want ErrClosed", err)
			}
			if time.Now().After(deadline) {
				t.Fatal("b.Send never observed the peer close")
			}
			time.Sleep(time.Millisecond)
		}
	})
}

// TestConformanceConcurrentSend hammers Send from several goroutines and
// checks that every message arrives exactly once, untorn, and in per-
// sender order.
func TestConformanceConcurrentSend(t *testing.T) {
	conformance(t, func(t *testing.T, a, b Transport) {
		const senders, perSender = 8, 200
		var wg sync.WaitGroup
		for g := 0; g < senders; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perSender; i++ {
					req := &openflow.EchoRequest{Data: []byte(fmt.Sprintf("s%d-m%d", g, i))}
					req.Header.XID = uint32(g*perSender + i)
					if err := a.Send(req); err != nil {
						t.Errorf("sender %d: %v", g, err)
						return
					}
				}
			}(g)
		}
		seen := make(map[uint32]bool, senders*perSender)
		lastPerSender := make([]int, senders)
		for i := range lastPerSender {
			lastPerSender[i] = -1
		}
		for n := 0; n < senders*perSender; n++ {
			msg, err := b.Recv()
			if err != nil {
				t.Fatalf("recv %d: %v", n, err)
			}
			req, ok := msg.(*openflow.EchoRequest)
			if !ok {
				t.Fatalf("recv %d: %T", n, msg)
			}
			xid := req.Header.XID
			if seen[xid] {
				t.Fatalf("duplicate xid %d", xid)
			}
			seen[xid] = true
			g, i := int(xid)/perSender, int(xid)%perSender
			if want := fmt.Sprintf("s%d-m%d", g, i); string(req.Data) != want {
				t.Fatalf("torn message: xid %d carries %q, want %q", xid, req.Data, want)
			}
			if i <= lastPerSender[g] {
				t.Fatalf("sender %d reordered: message %d after %d", g, i, lastPerSender[g])
			}
			lastPerSender[g] = i
		}
		wg.Wait()
	})
}
