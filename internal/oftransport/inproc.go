package oftransport

import (
	"sync"

	"repro/internal/openflow"
)

// DefaultDepth is the initial per-direction queue capacity Pair uses when
// the caller passes depth <= 0: big enough that a home's steady-state
// control chatter (one punt per new flow per step plus stats and barrier
// traffic) never reallocates.
const DefaultDepth = 256

// msgQueue is one direction of an in-process channel: an unbounded FIFO
// of decoded messages. Unbounded is load-bearing, not laziness: the
// controller's dispatch loop and the datapath's secure-channel loop each
// send to the other synchronously (a packet-out can trigger a new punt
// inside the datapath loop, a packet-in triggers flow-mods inside the
// controller loop), so a bounded pair can deadlock with each loop blocked
// on the other's full queue. TCP masks the same cycle with its large
// socket buffers; here the queue grows instead, and flow control comes
// from the platform's settle-per-step cadence.
type msgQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []openflow.Message
	head   int
	closed bool
}

func newMsgQueue(capacity int) *msgQueue {
	q := &msgQueue{buf: make([]openflow.Message, 0, capacity)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *msgQueue) push(msg openflow.Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.buf = append(q.buf, msg)
	q.cond.Signal()
	return nil
}

// pop blocks until a message is queued or the queue is closed. A closed
// queue drains its backlog before reporting ErrClosed, so an orderly
// shutdown does not lose messages already handed to the transport.
func (q *msgQueue) pop() (openflow.Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.buf) && !q.closed {
		q.cond.Wait()
	}
	if q.head < len(q.buf) {
		msg := q.buf[q.head]
		q.buf[q.head] = nil
		q.head++
		if q.head == len(q.buf) {
			q.buf = q.buf[:0]
			q.head = 0
		}
		return msg, nil
	}
	return nil, ErrClosed
}

// popAll blocks until at least one message is queued, then appends the
// whole backlog to buf and resets the queue, so one wakeup drains a burst.
// Like pop it hands out the remaining backlog of a closed queue before
// reporting ErrClosed.
func (q *msgQueue) popAll(buf []openflow.Message) ([]openflow.Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.buf) && !q.closed {
		q.cond.Wait()
	}
	if q.head < len(q.buf) {
		buf = append(buf, q.buf[q.head:]...)
		for i := q.head; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:0]
		q.head = 0
		return buf, nil
	}
	return buf, ErrClosed
}

func (q *msgQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// chanEnd is one endpoint of an in-process channel pair. Send enqueues the
// message pointer itself — no serialization, no copy — which is what makes
// this transport skip the loopback-TCP framing cost the fleet pays per
// home.
type chanEnd struct {
	once *sync.Once
	out  *msgQueue
	in   *msgQueue
}

// Pair returns the two connected endpoints of an in-process channel, each
// direction starting with the given queue capacity (DefaultDepth when
// depth <= 0). Messages sent on one endpoint arrive, in order and by
// reference, at the other's Recv. The queues are unbounded (see msgQueue
// for why), so Send never blocks; closing either endpoint closes both
// directions for both ends.
func Pair(depth int) (Transport, Transport) {
	if depth <= 0 {
		depth = DefaultDepth
	}
	once := &sync.Once{}
	ab := newMsgQueue(depth)
	ba := newMsgQueue(depth)
	a := &chanEnd{once: once, out: ab, in: ba}
	b := &chanEnd{once: once, out: ba, in: ab}
	return a, b
}

func (t *chanEnd) Send(msg openflow.Message) error { return t.out.push(msg) }

func (t *chanEnd) Recv() (openflow.Message, error) { return t.in.pop() }

// RecvBatch implements BatchRecver: it appends every queued message to
// buf in one wakeup. The read loops of the NOX switch handle and the
// datapath secure channel use it to dispatch a punt burst per wakeup
// instead of per message.
func (t *chanEnd) RecvBatch(buf []openflow.Message) ([]openflow.Message, error) {
	return t.in.popAll(buf)
}

func (t *chanEnd) Close() error {
	t.once.Do(func() {
		t.out.close()
		t.in.close()
	})
	return nil
}
