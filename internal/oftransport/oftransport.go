// Package oftransport makes the OpenFlow control channel a pluggable
// abstraction boundary rather than a mandatory wire protocol. The paper's
// deployment co-locates the NOX controller and the switch datapath on one
// home router, so nothing forces every control message through
// serialize → TCP → deserialize; this package lets the two ends exchange
// already-decoded messages directly when they share a process, while
// keeping the byte-exact TCP path for cross-process deployments.
//
// # The Transport contract
//
// A Transport is one endpoint of a bidirectional, message-oriented control
// channel. Implementations must provide:
//
//   - Ordering: messages arrive at the peer's Recv in the order they were
//     passed to Send from any single goroutine. There is no ordering
//     guarantee between concurrent senders beyond "each Send is atomic":
//     messages are never interleaved, duplicated or torn.
//   - Concurrency: Send is safe for concurrent use by multiple goroutines.
//     Recv must be called from a single goroutine at a time (both the NOX
//     switch handle and the datapath secure channel run one read loop).
//   - Backpressure: Send may block while the peer's receive path is
//     congested (the TCP transport blocks on a full socket buffer; the
//     in-process transport's queue is unbounded and never blocks — see
//     Pair for why bounded queues would deadlock co-resident control
//     loops). Send never drops messages while the transport is open.
//   - Close semantics: Close is idempotent and aborts both directions for
//     both endpoints. After Close, Send returns ErrClosed. Recv drains
//     messages that were already queued locally, then returns ErrClosed.
//     Messages buffered but not yet delivered to the closing end's peer
//     may be lost, exactly as with an aborted TCP connection.
//   - Message ownership: Send transfers ownership of the message to the
//     receiver. The in-process transport passes the same pointer the
//     sender built (that is the whole point — no copy, no re-encode), so
//     a sender must not mutate a message after Send returns. The TCP
//     transport copies by serializing, but callers must honour the
//     stricter in-process rule so the two transports stay interchangeable.
//
// Use Pair for an in-process channel, NewTCP/DialTCP for the wire path.
package oftransport

import (
	"errors"

	"repro/internal/openflow"
)

// ErrClosed is returned by Send and Recv once a transport endpoint has
// been closed, locally or by its peer. Callers use it (via errors.Is) to
// tell an orderly channel shutdown from a protocol failure.
var ErrClosed = errors.New("oftransport: transport closed")

// Transport is one endpoint of an OpenFlow control channel. See the
// package comment for the full contract (ordering, backpressure, Close
// semantics and message ownership).
type Transport interface {
	// Send delivers one message toward the peer, blocking for
	// backpressure. It returns ErrClosed once the transport is closed.
	Send(msg openflow.Message) error
	// Recv blocks for the next message from the peer. It returns
	// ErrClosed after Close (draining already-queued messages first) and
	// a decode error if the peer violated the protocol.
	Recv() (openflow.Message, error)
	// Close aborts both directions of the channel for both endpoints.
	// It is idempotent.
	Close() error
}

// BatchRecver is the optional batched receive side of a Transport: one
// blocking call hands over every message already queued, so a burst of
// punts (e.g. a whole FrameBatch missing the flow table) costs the read
// loop one wakeup instead of one per message. RecvBatch appends the
// drained messages to buf (pass buf[:0] of a reused slice for an
// allocation-free steady state) and blocks only when the queue is empty.
// Like Recv it drains already-queued messages after Close before
// reporting ErrClosed, and it shares Recv's single-reader rule — at most
// one goroutine may be in Recv or RecvBatch at a time.
//
// The in-process transport implements it; the TCP transport does not
// (the wire yields one message per frame read), so read loops type-assert
// and fall back to Recv.
type BatchRecver interface {
	RecvBatch(buf []openflow.Message) ([]openflow.Message, error)
}

// RecvInto is the batch-or-fallback receive both control-plane read
// loops (the NOX switch handle and the datapath secure channel) share:
// it appends to buf[:0] the whole queued backlog when tr implements
// BatchRecver, or a single Recv'd message otherwise, blocking until at
// least one message (or an error) is available. Callers pass the same
// slice back each iteration for an allocation-free steady state.
func RecvInto(tr Transport, buf []openflow.Message) ([]openflow.Message, error) {
	if br, ok := tr.(BatchRecver); ok {
		return br.RecvBatch(buf[:0])
	}
	msg, err := tr.Recv()
	if err != nil {
		return buf[:0], err
	}
	return append(buf[:0], msg), nil
}
