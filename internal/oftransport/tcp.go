package oftransport

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/openflow"
)

// tcpTransport frames messages over a stream connection with the OpenFlow
// 1.0 codec: the cross-process transport, and the byte-exact reference the
// in-process transport is benchmarked against.
type tcpTransport struct {
	conn    net.Conn
	writeMu sync.Mutex
	closed  atomic.Bool
}

// NewTCP wraps a stream connection (a TCP conn or a net.Pipe end) as a
// Transport. The codec writes are serialized internally, so Send honours
// the concurrent-use contract.
func NewTCP(conn net.Conn) Transport {
	return &tcpTransport{conn: conn}
}

// DialTCP connects to an OpenFlow controller or datapath listening on addr
// and returns the wire transport.
func DialTCP(addr string) (Transport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewTCP(conn), nil
}

func (t *tcpTransport) Send(msg openflow.Message) error {
	if t.closed.Load() {
		return ErrClosed
	}
	t.writeMu.Lock()
	err := openflow.WriteMessage(t.conn, msg)
	t.writeMu.Unlock()
	if err != nil {
		// On the write path every failure means the channel is gone —
		// TCP cannot tell a peer's orderly FIN from its crash here (both
		// surface as EPIPE/ECONNRESET a write or two later), and the
		// in-process transport reports ErrClosed for either, so this
		// keeps the two implementations interchangeable.
		if t.closed.Load() || isWriteClosed(err) {
			return ErrClosed
		}
		return err
	}
	return nil
}

func (t *tcpTransport) Recv() (openflow.Message, error) {
	msg, err := openflow.ReadMessage(t.conn)
	if err != nil {
		// Only a local Close, a peer FIN, or a torn-down pipe count as
		// the orderly-shutdown case. An abortive failure — peer crash
		// (ECONNRESET), truncated frame — is returned raw so callers can
		// tell it apart from a clean close.
		if t.closed.Load() || isReadClosed(err) {
			return nil, ErrClosed
		}
		return nil, err
	}
	return msg, nil
}

func (t *tcpTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	return t.conn.Close()
}

// isReadClosed reports whether a read error is how a stream connection
// signals an orderly shutdown (as opposed to a crash or codec error).
func isReadClosed(err error) bool {
	return err == io.EOF ||
		err == io.ErrClosedPipe ||
		errors.Is(err, net.ErrClosed)
}

// isWriteClosed reports whether a write error means the channel is gone.
// Any syscall-level failure on an established conn (EPIPE, ECONNRESET,
// wrapped in *net.OpError) qualifies; see Send for why the write path is
// broader than the read path.
func isWriteClosed(err error) bool {
	if err == io.ErrClosedPipe || errors.Is(err, net.ErrClosed) {
		return true
	}
	var opErr *net.OpError
	return errors.As(err, &opErr)
}
