package oftransport

import (
	"errors"
	"net"
	"testing"

	"repro/internal/openflow"
)

// TestTCPRecvDistinguishesAbort asserts a peer that dies abortively (RST)
// surfaces as a raw error, not ErrClosed: the read-side contract that lets
// datapath callers tell a crash from an orderly shutdown.
func TestTCPRecvDistinguishesAbort(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server := NewTCP(<-accepted)
	defer server.Close()

	// SO_LINGER 0 makes Close send RST instead of FIN: a simulated crash.
	if err := client.(*net.TCPConn).SetLinger(0); err != nil {
		t.Fatal(err)
	}
	_ = client.Close()

	if _, err := server.Recv(); err == nil || errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after peer RST = %v, want a non-ErrClosed error", err)
	}
}

// TestTCPRecvCleanCloseIsErrClosed asserts an orderly FIN reads as
// ErrClosed.
func TestTCPRecvCleanCloseIsErrClosed(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server := NewTCP(<-accepted)
	defer server.Close()

	clientT := NewTCP(client)
	if err := clientT.Send(&openflow.Hello{}); err != nil {
		t.Fatal(err)
	}
	_ = clientT.Close()

	if msg, err := server.Recv(); err != nil {
		t.Fatalf("Recv before FIN = %v", err)
	} else if _, ok := msg.(*openflow.Hello); !ok {
		t.Fatalf("Recv = %T", msg)
	}
	if _, err := server.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after FIN = %v, want ErrClosed", err)
	}
}
