// Package quiesce provides the event-driven quiescence primitive the
// control plane settles on: a monotonic punt/processed epoch shared by a
// datapath (the punt producer) and its NOX controller (the punt
// consumer). The producer counts each packet-in it emits with Punt; the
// consumer credits completed dispatches with Done; Wait blocks — no
// polling, no timer cadence — until the consumer has caught up, waking
// the moment the control path drains. The deadline passed to Wait is an
// error backstop for a wedged consumer, never a sleep interval.
//
// Concurrency contract: every method is safe for concurrent use from any
// number of goroutines. Punt and Done are cheap (one short mutex section,
// no allocation); the catch-up channel and the backstop timer are
// allocated only when a waiter actually has to block, so the punt hot
// path stays allocation-free. Wakeups cannot be lost: a waiter registers
// for the catch-up broadcast under the same mutex that Done uses to
// detect catch-up, so Done either sees the waiter's channel and closes
// it, or the waiter's registration happens after catch-up and its
// pre-block re-check observes the drained state.
package quiesce

import (
	"errors"
	"sync"
	"time"
)

// ErrDeadline is returned by Wait when the consumer has not caught up to
// the producer before the deadline — the control path is wedged (or the
// datapath is punting with no controller attached). Callers distinguish
// it with errors.Is from transport failures surfaced elsewhere.
var ErrDeadline = errors.New("quiesce: control path did not catch up before the deadline")

// Epoch is one shared punt/processed counter pair. Both counters are
// monotonic; the epoch is quiescent whenever processed has caught up with
// punted. The zero value is not ready to use — call New.
type Epoch struct {
	mu        sync.Mutex
	punted    uint64
	processed uint64
	// caughtUp is non-nil exactly while at least one waiter is blocked
	// behind an outstanding backlog; Done closes it (waking every waiter)
	// when processed catches punted, and the next blocked waiter makes a
	// fresh one. Lazily allocated so Punt/Done never allocate.
	caughtUp chan struct{}
}

// New returns a quiescent epoch (0 punted, 0 processed).
func New() *Epoch { return &Epoch{} }

// Punt records one more packet-in handed to the control path. Call it
// before the message is actually sent, so a waiter that starts between
// the count and the send still waits for that punt's dispatch.
func (e *Epoch) Punt() {
	e.mu.Lock()
	e.punted++
	e.mu.Unlock()
}

// Done credits n completed packet-in dispatches and, if the consumer has
// caught up, wakes every blocked waiter. Batched dispatch loops call it
// once per drained batch so a burst of punts costs one broadcast.
func (e *Epoch) Done(n int) {
	if n <= 0 {
		return
	}
	e.mu.Lock()
	e.processed += uint64(n)
	if e.processed >= e.punted && e.caughtUp != nil {
		close(e.caughtUp)
		e.caughtUp = nil
	}
	e.mu.Unlock()
}

// Punted returns how many packet-ins the producer has emitted.
func (e *Epoch) Punted() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.punted
}

// Processed returns how many packet-ins the consumer has dispatched.
func (e *Epoch) Processed() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.processed
}

// Counts returns both counters in one consistent snapshot.
func (e *Epoch) Counts() (punted, processed uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.punted, e.processed
}

// Settled reports whether the consumer has caught up with the producer.
func (e *Epoch) Settled() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.processed >= e.punted
}

// Wait blocks until the epoch is quiescent (processed >= punted) and
// returns nil the moment it is — including immediately, without touching
// a timer, when there is no backlog. If the backlog has not drained
// within timeout, Wait returns ErrDeadline; a timeout <= 0 makes Wait a
// non-blocking check. New punts arriving while a waiter is blocked raise
// the catch-up target: Wait re-checks after every broadcast, so it never
// returns while the producer is ahead.
func (e *Epoch) Wait(timeout time.Duration) error {
	var (
		timer  *time.Timer
		expiry <-chan time.Time
	)
	for {
		e.mu.Lock()
		if e.processed >= e.punted {
			e.mu.Unlock()
			if timer != nil {
				timer.Stop()
			}
			return nil
		}
		if timeout <= 0 {
			e.mu.Unlock()
			return ErrDeadline
		}
		if e.caughtUp == nil {
			e.caughtUp = make(chan struct{})
		}
		ch := e.caughtUp
		e.mu.Unlock()
		if timer == nil {
			timer = time.NewTimer(timeout)
			expiry = timer.C
		}
		select {
		case <-ch:
		case <-expiry:
			return ErrDeadline
		}
	}
}
