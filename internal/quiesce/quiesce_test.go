package quiesce

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestZeroBacklogReturnsImmediately(t *testing.T) {
	e := New()
	if err := e.Wait(0); err != nil {
		t.Fatalf("Wait on quiescent epoch: %v", err)
	}
	e.Punt()
	e.Done(1)
	if err := e.Wait(0); err != nil {
		t.Fatalf("Wait after catch-up: %v", err)
	}
	if p, d := e.Counts(); p != 1 || d != 1 {
		t.Fatalf("counts = (%d, %d), want (1, 1)", p, d)
	}
}

func TestWaitBlocksUntilDone(t *testing.T) {
	e := New()
	e.Punt()
	returned := make(chan error, 1)
	go func() { returned <- e.Wait(5 * time.Second) }()

	// The waiter must not return while punted > processed. A short grace
	// window catches an early return without turning the test flaky.
	select {
	case err := <-returned:
		t.Fatalf("Wait returned early (err=%v) with backlog outstanding", err)
	case <-time.After(20 * time.Millisecond):
	}

	e.Done(1)
	select {
	case err := <-returned:
		if err != nil {
			t.Fatalf("Wait after Done: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait missed the catch-up wakeup")
	}
}

func TestWaitDeadline(t *testing.T) {
	e := New()
	e.Punt() // never processed: a wedged consumer
	start := time.Now()
	err := e.Wait(30 * time.Millisecond)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("Wait = %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("Wait returned after %v, before the deadline", elapsed)
	}
	if err := e.Wait(0); !errors.Is(err, ErrDeadline) {
		t.Fatalf("non-blocking Wait with backlog = %v, want ErrDeadline", err)
	}
}

func TestNewPuntsRaiseTheTarget(t *testing.T) {
	e := New()
	e.Punt()
	returned := make(chan error, 1)
	go func() { returned <- e.Wait(5 * time.Second) }()

	// Catch up, but punt again immediately: the waiter may wake for the
	// first broadcast but must re-check and keep waiting for the second
	// punt before returning.
	e.Punt()
	e.Done(1)
	select {
	case <-returned:
		t.Fatal("Wait returned with the second punt outstanding")
	case <-time.After(20 * time.Millisecond):
	}
	e.Done(1)
	if err := <-returned; err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

// TestConcurrentPuntsAndWaiters hammers the epoch from concurrent
// producers, a consumer and many Settle-like waiters under -race: every
// wakeup must arrive (no Wait may hit its generous deadline) and no Wait
// may return early (each return must observe processed >= the punts
// outstanding when it entered).
func TestConcurrentPuntsAndWaiters(t *testing.T) {
	const (
		producers = 4
		puntsEach = 2000
		waiters   = 8
	)
	e := New()
	var produced atomic.Uint64
	var wg sync.WaitGroup

	// Consumer: drain whatever the producers have emitted, in batches,
	// like the controller's batched dispatch loop.
	consumerDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		var credited uint64
		for credited < producers*puntsEach {
			p := e.Punted()
			if p > credited {
				e.Done(int(p - credited))
				credited = p
			}
		}
		close(consumerDone)
	}()

	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < puntsEach; j++ {
				e.Punt()
				produced.Add(1)
			}
		}()
	}

	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				target := produced.Load()
				if err := e.Wait(10 * time.Second); err != nil {
					errs <- err
					return
				}
				// No early return: Wait's contract is processed >= punted
				// at some instant after entry, so everything produced
				// before entry must have been credited.
				if _, processed := e.Counts(); processed < target {
					errs <- errors.New("Wait returned before catching the pre-entry backlog")
					return
				}
				select {
				case <-consumerDone:
					return
				default:
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if p, d := e.Counts(); p != producers*puntsEach || d < p {
		t.Fatalf("counts = (%d, %d), want (%d, >=punted)", p, d, producers*puntsEach)
	}
	if err := e.Wait(0); err != nil {
		t.Fatalf("final Wait: %v", err)
	}
}
