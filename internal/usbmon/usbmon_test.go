package usbmon

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/clock"
	"repro/internal/policy"
)

func testPolicy() *policy.Policy {
	return &policy.Policy{
		Name:         "kids-facebook",
		Devices:      []string{"02:aa:00:00:00:01"},
		AllowedSites: []string{"facebook.com"},
		RequireKey:   "parent-key",
	}
}

func TestWriteKeyLayout(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "usb0")
	if err := WriteKey(dir, "parent-key", testPolicy()); err != nil {
		t.Fatal(err)
	}
	id, ok := readKeyID(filepath.Join(dir, "homework.key"))
	if !ok || id != "parent-key" {
		t.Errorf("key id = %q, %v", id, ok)
	}
	p, ok := readPolicy(filepath.Join(dir, "policy.json"))
	if !ok || p.Name != "kids-facebook" {
		t.Errorf("policy = %+v, %v", p, ok)
	}
}

func TestScanInsertAndRemove(t *testing.T) {
	root := t.TempDir()
	eng := policy.NewEngine(clock.NewSimulated())
	m := New(root, eng)

	// Empty root: nothing happens.
	if err := m.Scan(); err != nil {
		t.Fatal(err)
	}
	if len(m.Events()) != 0 {
		t.Fatal("events on empty root")
	}

	// "Insert" the key.
	keyDir := filepath.Join(root, "sda1")
	if err := WriteKey(keyDir, "parent-key", testPolicy()); err != nil {
		t.Fatal(err)
	}
	if err := m.Scan(); err != nil {
		t.Fatal(err)
	}
	evs := m.Events()
	if len(evs) != 1 || evs[0].Action != "insert" || evs[0].KeyID != "parent-key" {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Policy != "kids-facebook" {
		t.Errorf("policy not installed on insert: %+v", evs[0])
	}
	if !eng.KeyInserted("parent-key") {
		t.Error("engine does not see the key")
	}
	if len(eng.Policies()) != 1 {
		t.Error("policy not installed")
	}

	// Rescan: no duplicate events.
	_ = m.Scan()
	if len(m.Events()) != 1 {
		t.Errorf("duplicate events: %+v", m.Events())
	}

	// "Remove" the key.
	if err := os.RemoveAll(keyDir); err != nil {
		t.Fatal(err)
	}
	_ = m.Scan()
	evs = m.Events()
	if len(evs) != 2 || evs[1].Action != "remove" {
		t.Fatalf("events = %+v", evs)
	}
	if eng.KeyInserted("parent-key") {
		t.Error("engine still sees removed key")
	}
}

func TestScanIgnoresNonKeys(t *testing.T) {
	root := t.TempDir()
	eng := policy.NewEngine(clock.NewSimulated())
	m := New(root, eng)
	// A directory without homework.key is not a key.
	if err := os.MkdirAll(filepath.Join(root, "random-stick"), 0o755); err != nil {
		t.Fatal(err)
	}
	// A stray file at the root is ignored.
	if err := os.WriteFile(filepath.Join(root, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_ = m.Scan()
	if len(m.Events()) != 0 {
		t.Errorf("events = %+v", m.Events())
	}
}

func TestKeyWithoutPolicyStillInserts(t *testing.T) {
	root := t.TempDir()
	eng := policy.NewEngine(clock.NewSimulated())
	m := New(root, eng)
	if err := WriteKey(filepath.Join(root, "sdb1"), "guest-key", nil); err != nil {
		t.Fatal(err)
	}
	_ = m.Scan()
	if !eng.KeyInserted("guest-key") {
		t.Error("bare key not inserted")
	}
	if len(eng.Policies()) != 0 {
		t.Error("phantom policy installed")
	}
}

func TestMissingRootIsNotError(t *testing.T) {
	eng := policy.NewEngine(clock.NewSimulated())
	m := New(filepath.Join(t.TempDir(), "nonexistent"), eng)
	if err := m.Scan(); err != nil {
		t.Errorf("missing root: %v", err)
	}
}
