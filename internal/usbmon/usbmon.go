// Package usbmon stands in for the Linux udev subsystem: it watches a
// mount root for USB storage keys with the Homework filesystem layout and
// drives the control API when keys appear or disappear.
//
// A "key" is a directory under the mount root containing:
//
//	homework.key    — first line is the key id
//	policy.json     — optional: a policy to install on insertion
//
// On real hardware udev fires an event when the stick is inserted; here a
// poll of the directory plays that role (Scan is also callable directly,
// which is how the examples and benches simulate insertion).
//
// Concurrency: the monitor's state is mutex-guarded; Run polls on its
// caller's goroutine until Stop, Scan may also be called directly from
// any goroutine, and key events fire synchronously on whichever
// goroutine scanned.
package usbmon

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/policy"
)

// Actions is the control surface the monitor drives; implemented by the
// policy engine (and by the control API over HTTP in a split deployment).
type Actions interface {
	InsertKey(id string)
	RemoveKey(id string)
	Install(p *policy.Policy) error
}

// Monitor watches a mount root.
type Monitor struct {
	root    string
	actions Actions

	mu      sync.Mutex
	present map[string]string // directory -> key id
	events  []Event
	stop    chan struct{}
	once    sync.Once
}

// Event records one detected insertion or removal.
type Event struct {
	At     time.Time
	Action string // "insert" | "remove"
	KeyID  string
	Policy string // installed policy name, if any
}

// New creates a monitor for root driving actions.
func New(root string, actions Actions) *Monitor {
	return &Monitor{
		root: root, actions: actions,
		present: make(map[string]string),
		stop:    make(chan struct{}),
	}
}

// Run polls every interval until Stop.
func (m *Monitor) Run(interval time.Duration) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			_ = m.Scan()
		}
	}
}

// Stop halts Run.
func (m *Monitor) Stop() { m.once.Do(func() { close(m.stop) }) }

// Events returns the insertion/removal log.
func (m *Monitor) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Scan examines the mount root once, emitting insert/remove actions for
// changes since the previous scan. It returns the first error encountered
// reading the root (missing root is not an error: no keys present).
func (m *Monitor) Scan() error {
	entries, err := os.ReadDir(m.root)
	if err != nil {
		if os.IsNotExist(err) {
			entries = nil
		} else {
			return err
		}
	}

	found := make(map[string]string)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(m.root, e.Name())
		id, ok := readKeyID(filepath.Join(dir, "homework.key"))
		if !ok {
			continue
		}
		found[dir] = id
	}

	m.mu.Lock()
	var inserted, removed []string
	var insertedDirs []string
	for dir, id := range found {
		if m.present[dir] != id {
			inserted = append(inserted, id)
			insertedDirs = append(insertedDirs, dir)
		}
	}
	for dir, id := range m.present {
		if found[dir] != id {
			removed = append(removed, id)
		}
	}
	m.present = found
	m.mu.Unlock()

	for i, id := range inserted {
		polName := ""
		if p, ok := readPolicy(filepath.Join(insertedDirs[i], "policy.json")); ok {
			if err := m.actions.Install(p); err == nil {
				polName = p.Name
			}
		}
		m.actions.InsertKey(id)
		m.log(Event{At: time.Now(), Action: "insert", KeyID: id, Policy: polName})
	}
	for _, id := range removed {
		m.actions.RemoveKey(id)
		m.log(Event{At: time.Now(), Action: "remove", KeyID: id})
	}
	return nil
}

func (m *Monitor) log(ev Event) {
	m.mu.Lock()
	m.events = append(m.events, ev)
	m.mu.Unlock()
}

func readKeyID(path string) (string, bool) {
	f, err := os.Open(path)
	if err != nil {
		return "", false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		return "", false
	}
	id := strings.TrimSpace(sc.Text())
	return id, id != ""
}

func readPolicy(path string) (*policy.Policy, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	p, err := policy.ParsePolicy(data)
	if err != nil {
		return nil, false
	}
	return p, true
}

// WriteKey lays out a key directory (used by the policy interface to
// prepare a stick, and by tests).
func WriteKey(dir, keyID string, pol *policy.Policy) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "homework.key"), []byte(keyID+"\n"), 0o644); err != nil {
		return err
	}
	if pol != nil {
		data, err := policyJSON(pol)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dir, "policy.json"), data, 0o644)
	}
	return nil
}

func policyJSON(p *policy.Policy) ([]byte, error) {
	return marshalIndent(p)
}

// marshalIndent is a tiny wrapper to keep encoding/json out of the public
// surface above.
func marshalIndent(v interface{}) ([]byte, error) {
	return json.MarshalIndent(v, "", "  ")
}
