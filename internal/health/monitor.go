package health

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/clock"
	"repro/internal/hwdb"
	"repro/internal/telemetry"
)

// Monitor hwdb table names: every verdict transition lands in Health,
// every remediation action in Remedy.
const (
	TableHealth = "Health"
	TableRemedy = "Remedy"
)

// DeltaSource is the telemetry feed the monitor subscribes to: a single
// shard's *telemetry.Hub or the fleet coordinator's *telemetry.Federation
// (which registers the handler on every shard hub) — anything that can
// attach a synchronous delta handler.
type DeltaSource interface {
	SubscribeFunc(func(telemetry.Delta))
}

// Config parameterizes a Monitor.
type Config struct {
	// Policy thresholds; zero-valued fields take DefaultPolicy values.
	Policy Policy
	// Clock timestamps the verdict/action rows (default wall clock; pass
	// the fleet's simulated clock for deterministic audits).
	Clock clock.Clock
	// Hub, when set, feeds the loss evaluator: the monitor subscribes
	// synchronously and folds FlowPerf deltas into per-home windows.
	// Home IDs must be unique across the source (fleet-wide IDs are).
	Hub DeltaSource
	// Vitals reads a home's control-plane signals; ok=false skips the
	// home this window (e.g. mid-replacement).
	Vitals func(id uint64) (Vitals, bool)
	// Actions are the remediation hooks (see Actions; nil hooks no-op).
	Actions Actions
	// RingSize bounds the monitor's own hwdb rings (default 4096).
	RingSize int
	// OnVerdict, when set, fires synchronously after every state
	// transition's Health row is recorded, outside the monitor mutex —
	// the handler may take its own locks (the flight recorder's incident
	// hook does) but must not call back into the monitor's mutators.
	OnVerdict func(VerdictEvent)
	// OnAction fires likewise after every remediation action's Remedy
	// row is recorded.
	OnAction func(ActionEvent)
}

// VerdictEvent describes one recorded state transition (a Health row).
type VerdictEvent struct {
	Home   uint64
	From   State
	To     State
	Reason string
}

// ActionEvent describes one recorded remediation action (a Remedy row).
type ActionEvent struct {
	Home   uint64
	Action string
	OK     bool
	Detail string
}

// homeState is the per-home evaluator window and state machine.
type homeState struct {
	state State

	// Written only from Tick (single driver goroutine):
	breach         int    // consecutive breached windows while Healthy
	clear          int    // consecutive clear windows while Sick
	sickBreach     int    // breached windows since turning Sick
	dwell          int    // windows spent Cordoned since last action
	restarts       int    // restart attempts spent
	lastSettleErrs uint64 // settle-failure counter at last window

	// Written by the hub fold (under Monitor.mu):
	winTx, winLost uint64
}

// Monitor runs the health evaluation and remediation loop over a set of
// tracked homes. Drive it with Tick from one goroutine; reads are safe
// from any goroutine.
type Monitor struct {
	cfg Config
	pol Policy
	db  *hwdb.DB

	pTx, pLost int // FlowPerf column indexes

	mu     sync.Mutex
	homes  map[uint64]*homeState
	counts Counts
}

// New builds a monitor and, when cfg.Hub is set, attaches its FlowPerf
// fold to the hub's synchronous drain path.
func New(cfg Config) *Monitor {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 4096
	}
	m := &Monitor{
		cfg:   cfg,
		pol:   cfg.Policy.withDefaults(),
		db:    hwdb.New(cfg.Clock),
		homes: make(map[uint64]*homeState),
	}
	// Resolve the FlowPerf column layout from the standard Homework
	// schema once, instead of hard-coding positions.
	proto := hwdb.NewHomework(cfg.Clock, 1)
	pt, _ := proto.Table(hwdb.TableFlowPerf)
	m.pTx, _ = pt.Schema().Index("tx_pkts")
	m.pLost, _ = pt.Schema().Index("lost_pkts")

	must := func(_ *hwdb.Table, err error) {
		if err != nil {
			panic(err)
		}
	}
	must(m.db.CreateTable(TableHealth, hwdb.NewSchema(
		hwdb.Column{Name: "home", Type: hwdb.TInt},
		hwdb.Column{Name: "state", Type: hwdb.TString},
		hwdb.Column{Name: "prev", Type: hwdb.TString},
		hwdb.Column{Name: "reason", Type: hwdb.TString},
	), cfg.RingSize))
	must(m.db.CreateTable(TableRemedy, hwdb.NewSchema(
		hwdb.Column{Name: "home", Type: hwdb.TInt},
		hwdb.Column{Name: "action", Type: hwdb.TString},
		hwdb.Column{Name: "ok", Type: hwdb.TBool},
		hwdb.Column{Name: "detail", Type: hwdb.TString},
	), cfg.RingSize))

	if cfg.Hub != nil {
		cfg.Hub.SubscribeFunc(m.fold)
	}
	return m
}

// DB returns the monitor's audit database (Health and Remedy tables).
func (m *Monitor) DB() *hwdb.DB { return m.db }

// Policy returns the effective (default-filled) policy.
func (m *Monitor) Policy() Policy { return m.pol }

// fold accumulates FlowPerf loss into the target home's current window.
// It runs inside the hub's drain pass, so it must stay cheap and must
// not call back into the hub.
func (m *Monitor) fold(d telemetry.Delta) {
	if d.Source.Table != hwdb.TableFlowPerf {
		return
	}
	var tx, lost uint64
	for _, r := range d.Rows {
		tx += uint64(r.Vals[m.pTx].Int)
		lost += uint64(r.Vals[m.pLost].Int)
	}
	if tx == 0 && lost == 0 {
		return
	}
	m.mu.Lock()
	if hs := m.homes[d.Source.Home]; hs != nil && hs.state != Retired {
		hs.winTx += tx
		hs.winLost += lost
	}
	m.mu.Unlock()
}

// Track starts evaluating a home (initial verdict: Healthy). Tracking an
// already-tracked home is a no-op.
func (m *Monitor) Track(id uint64) {
	m.mu.Lock()
	if _, dup := m.homes[id]; dup {
		m.mu.Unlock()
		return
	}
	m.homes[id] = &homeState{state: Healthy}
	m.counts.Verdicts++
	m.mu.Unlock()
	_ = m.db.Insert(TableHealth, hwdb.Int64(int64(id)),
		hwdb.Str(Healthy.String()), hwdb.Str(""), hwdb.Str("tracked"))
}

// Forget drops a home from evaluation without recording a verdict (the
// home left the fleet for reasons outside the remediation loop).
func (m *Monitor) Forget(id uint64) {
	m.mu.Lock()
	delete(m.homes, id)
	m.mu.Unlock()
}

// State returns a home's current verdict.
func (m *Monitor) State(id uint64) (State, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	hs, ok := m.homes[id]
	if !ok {
		return Healthy, false
	}
	return hs.state, true
}

// States snapshots every tracked home's verdict.
func (m *Monitor) States() map[uint64]State {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[uint64]State, len(m.homes))
	for id, hs := range m.homes {
		out[id] = hs.state
	}
	return out
}

// Converged reports whether every non-retired home is Healthy — the
// condition the chaos soak requires after its last episode drains.
func (m *Monitor) Converged() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, hs := range m.homes {
		if hs.state != Healthy && hs.state != Retired {
			return false
		}
	}
	return true
}

// Counts returns the cumulative verdict/action counters; each equals the
// rows recorded in the corresponding audit table.
func (m *Monitor) Counts() Counts {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts
}

// Tick evaluates one window for every tracked home, in ascending home
// order, advancing the Healthy → Sick → Cordoned state machine and
// firing remediation actions as the policy dictates. Call it between
// fleet steps, after the telemetry hub has flushed the step's rows.
func (m *Monitor) Tick() {
	m.mu.Lock()
	ids := make([]uint64, 0, len(m.homes))
	for id := range m.homes {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m.evalHome(id)
	}
}

// evalHome runs one home's window. The monitor mutex is held only for
// the short reads/writes the hub fold and concurrent readers share —
// never across a remediation action, which may re-enter the hub (a
// restart retires telemetry sources, whose final drain runs the fold).
func (m *Monitor) evalHome(id uint64) {
	m.mu.Lock()
	hs := m.homes[id]
	if hs == nil || hs.state == Retired {
		m.mu.Unlock()
		return
	}
	tx, lost := hs.winTx, hs.winLost
	hs.winTx, hs.winLost = 0, 0
	st := hs.state
	m.mu.Unlock()

	if st == Cordoned {
		m.evalCordoned(id, hs)
		return
	}

	// Evaluate the window: loss from the telemetry fold, lag and settle
	// failures from the live vitals.
	var reasons []string
	if m.cfg.Vitals != nil {
		v, ok := m.cfg.Vitals(id)
		if !ok {
			return // home not reachable this window (e.g. mid-churn)
		}
		if v.PuntLag > m.pol.MaxPuntLag {
			reasons = append(reasons, fmt.Sprintf("punt_lag=%d", v.PuntLag))
		}
		dErr := v.SettleErrs
		if v.SettleErrs >= hs.lastSettleErrs {
			dErr = v.SettleErrs - hs.lastSettleErrs
		}
		hs.lastSettleErrs = v.SettleErrs
		if dErr > m.pol.MaxSettleErrs {
			reasons = append(reasons, fmt.Sprintf("settle_errs=%d", dErr))
		}
	}
	if tx >= m.pol.MinTxPkts {
		if ratio := float64(lost) / float64(tx); ratio > m.pol.LossRatioMax {
			reasons = append(reasons, fmt.Sprintf("loss=%.3f", ratio))
		}
	}
	breached := len(reasons) > 0

	switch st {
	case Healthy:
		if !breached {
			hs.breach = 0
			return
		}
		hs.breach++
		if hs.breach >= m.pol.SickAfter {
			hs.sickBreach, hs.clear = 0, 0
			m.setState(id, hs, Sick, strings.Join(reasons, " "))
		}
	case Sick:
		if breached {
			hs.clear = 0
			hs.sickBreach++
			if hs.sickBreach >= m.pol.CordonAfter {
				m.act(id, "cordon", m.boolAction(m.cfg.Actions.Cordon, id))
				hs.dwell = 0
				m.setState(id, hs, Cordoned, strings.Join(reasons, " "))
			}
			return
		}
		hs.clear++
		if hs.clear >= m.pol.HealthyAfter {
			hs.breach = 0
			m.setState(id, hs, Healthy, "recovered")
		}
	}
}

// evalCordoned advances a cordoned home: rest for the dwell, then
// restart in place while the budget lasts, then replace.
func (m *Monitor) evalCordoned(id uint64, hs *homeState) {
	hs.dwell++
	if hs.dwell < m.pol.RestartDwell {
		return
	}
	if hs.restarts < m.pol.MaxRestarts {
		hs.restarts++
		err := m.errAction(m.cfg.Actions.Restart, id)
		m.act(id, "restart", err)
		if err != nil {
			hs.dwell = 0 // rest another dwell, then try again
			return
		}
		m.act(id, "uncordon", m.boolAction(m.cfg.Actions.Uncordon, id))
		// Probation: the fresh incarnation re-earns Healthy through the
		// normal clear-window path, with its vitals baseline reset.
		hs.sickBreach, hs.clear, hs.lastSettleErrs = 0, 0, 0
		m.mu.Lock()
		hs.winTx, hs.winLost = 0, 0
		m.mu.Unlock()
		m.setState(id, hs, Sick, fmt.Sprintf("restarted (%d/%d)", hs.restarts, m.pol.MaxRestarts))
		return
	}
	// Restart budget spent: escalate to replacement.
	newID, err := m.replaceAction(id)
	if err != nil {
		m.act(id, "replace", err)
		hs.dwell = 0
		return
	}
	m.actDetail(id, "replace", nil, fmt.Sprintf("successor=%d", newID))
	m.setState(id, hs, Retired, fmt.Sprintf("replaced by %d", newID))
	if m.cfg.Actions.Replace != nil {
		m.Track(newID)
	}
}

// boolAction adapts a bool-returning hook to the error convention; a nil
// hook is an observe-only no-op.
func (m *Monitor) boolAction(fn func(uint64) bool, id uint64) error {
	if fn == nil {
		return nil
	}
	if !fn(id) {
		return fmt.Errorf("health: home %d not found", id)
	}
	return nil
}

func (m *Monitor) errAction(fn func(uint64) error, id uint64) error {
	if fn == nil {
		return nil
	}
	return fn(id)
}

func (m *Monitor) replaceAction(id uint64) (uint64, error) {
	if m.cfg.Actions.Replace == nil {
		return 0, nil
	}
	return m.cfg.Actions.Replace(id)
}

// setState records a verdict transition: one Health row plus the state
// change under the mutex.
func (m *Monitor) setState(id uint64, hs *homeState, to State, reason string) {
	m.mu.Lock()
	from := hs.state
	hs.state = to
	m.counts.Verdicts++
	switch to {
	case Sick:
		m.counts.SickVerdicts++
	case Cordoned:
		m.counts.CordonedVerdicts++
	}
	m.mu.Unlock()
	_ = m.db.Insert(TableHealth, hwdb.Int64(int64(id)),
		hwdb.Str(to.String()), hwdb.Str(from.String()), hwdb.Str(reason))
	if m.cfg.OnVerdict != nil {
		m.cfg.OnVerdict(VerdictEvent{Home: id, From: from, To: to, Reason: reason})
	}
}

// act records one remediation action outcome as a Remedy row.
func (m *Monitor) act(id uint64, action string, err error) {
	detail := ""
	if err != nil {
		detail = err.Error()
	}
	m.actDetail(id, action, err, detail)
}

func (m *Monitor) actDetail(id uint64, action string, err error, detail string) {
	m.mu.Lock()
	if err != nil {
		m.counts.Failures++
	} else {
		switch action {
		case "cordon":
			m.counts.Cordons++
		case "uncordon":
			m.counts.Uncordons++
		case "restart":
			m.counts.Restarts++
		case "replace":
			m.counts.Replaces++
		}
	}
	m.mu.Unlock()
	_ = m.db.Insert(TableRemedy, hwdb.Int64(int64(id)),
		hwdb.Str(action), hwdb.Bool(err == nil), hwdb.Str(detail))
	if m.cfg.OnAction != nil {
		m.cfg.OnAction(ActionEvent{Home: id, Action: action, OK: err == nil, Detail: detail})
	}
}
