package health

import (
	"fmt"
	"testing"

	"repro/internal/clock"
	"repro/internal/hwdb"
	"repro/internal/telemetry"
)

// rowCount returns the insert count of one of the monitor's audit tables.
func rowCount(t *testing.T, m *Monitor, name string) int {
	t.Helper()
	tbl, ok := m.DB().Table(name)
	if !ok {
		t.Fatalf("audit table %q missing", name)
	}
	ins, _ := tbl.Stats()
	return int(ins)
}

func wantState(t *testing.T, m *Monitor, id uint64, want State) {
	t.Helper()
	got, ok := m.State(id)
	if !ok {
		t.Fatalf("home %d not tracked", id)
	}
	if got != want {
		t.Fatalf("home %d state = %v, want %v", id, got, want)
	}
}

// TestEscalationLadder scripts a home that never stops breaching through
// the whole remediation ladder: Healthy → Sick → Cordoned → restart ×2 →
// replace, with every action recorded and the successor tracked.
func TestEscalationLadder(t *testing.T) {
	lag := uint64(100) // breaches MaxPuntLag every window
	var actions []string
	m := New(Config{
		Clock:  clock.NewSimulated(),
		Vitals: func(id uint64) (Vitals, bool) { return Vitals{PuntLag: lag}, true },
		Actions: Actions{
			Cordon:   func(id uint64) bool { actions = append(actions, fmt.Sprintf("cordon:%d", id)); return true },
			Uncordon: func(id uint64) bool { actions = append(actions, fmt.Sprintf("uncordon:%d", id)); return true },
			Restart:  func(id uint64) error { actions = append(actions, fmt.Sprintf("restart:%d", id)); return nil },
			Replace: func(id uint64) (uint64, error) {
				actions = append(actions, fmt.Sprintf("replace:%d", id))
				return id + 100, nil
			},
		},
	})
	m.Track(7)
	wantState(t, m, 7, Healthy)
	step := func(n int) {
		for i := 0; i < n; i++ {
			m.Tick()
		}
	}

	// Defaults: SickAfter=2, CordonAfter=3, RestartDwell=2, MaxRestarts=2.
	step(1)
	wantState(t, m, 7, Healthy) // one breach is not a verdict
	step(1)
	wantState(t, m, 7, Sick)
	step(2)
	wantState(t, m, 7, Sick) // two more breaches: still short of CordonAfter
	step(1)
	wantState(t, m, 7, Cordoned)
	step(1)
	wantState(t, m, 7, Cordoned) // dwelling
	step(1)
	wantState(t, m, 7, Sick) // restart #1, back on probation
	step(3)
	wantState(t, m, 7, Cordoned) // probation failed
	step(2)
	wantState(t, m, 7, Sick) // restart #2
	step(3)
	wantState(t, m, 7, Cordoned)
	step(2)
	wantState(t, m, 7, Retired) // restart budget spent: replaced
	wantState(t, m, 107, Healthy)

	wantActions := []string{
		"cordon:7", "restart:7", "uncordon:7",
		"cordon:7", "restart:7", "uncordon:7",
		"cordon:7", "replace:7",
	}
	if fmt.Sprint(actions) != fmt.Sprint(wantActions) {
		t.Errorf("actions = %v, want %v", actions, wantActions)
	}

	c := m.Counts()
	want := Counts{Verdicts: 9, Cordons: 3, Uncordons: 2, Restarts: 2, Replaces: 1,
		SickVerdicts: 3, CordonedVerdicts: 3}
	if c != want {
		t.Errorf("counts = %+v, want %+v", c, want)
	}
	// Full audit: the counters equal the rows in the audit tables.
	if got := rowCount(t, m, TableHealth); got != c.Verdicts {
		t.Errorf("Health rows = %d, verdicts counted = %d", got, c.Verdicts)
	}
	if got := rowCount(t, m, TableRemedy); got != c.Actions() {
		t.Errorf("Remedy rows = %d, actions counted = %d", got, c.Actions())
	}

	// A retired home is no longer evaluated; the successor is.
	lag = 0
	step(2)
	wantState(t, m, 7, Retired)
	wantState(t, m, 107, Healthy)
}

// TestSickRecovers scripts a transient fault: the home turns Sick, the
// breach clears, and consecutive clear windows earn Healthy back with no
// remediation action fired.
func TestSickRecovers(t *testing.T) {
	lag := uint64(100)
	m := New(Config{
		Clock:  clock.NewSimulated(),
		Vitals: func(id uint64) (Vitals, bool) { return Vitals{PuntLag: lag}, true },
	})
	m.Track(1)
	m.Tick()
	m.Tick()
	wantState(t, m, 1, Sick)

	lag = 0 // fault lifts
	m.Tick()
	wantState(t, m, 1, Sick) // one clear window is not recovery
	m.Tick()
	wantState(t, m, 1, Healthy)

	if c := m.Counts(); c.Actions() != 0 {
		t.Errorf("transient fault fired remediation: %+v", c)
	}
	if !m.Converged() {
		t.Error("recovered fleet not converged")
	}
}

// TestSettleErrCounterReset checks the per-window settle-failure delta
// tolerates the cumulative counter resetting (a restarted router starts
// from zero): the first window after a reset uses the raw value, not a
// wrapped difference.
func TestSettleErrCounterReset(t *testing.T) {
	errs := uint64(5)
	m := New(Config{
		Clock:  clock.NewSimulated(),
		Vitals: func(id uint64) (Vitals, bool) { return Vitals{SettleErrs: errs}, true },
	})
	m.Track(1)
	m.Tick() // delta 5: breach 1
	m.Tick() // delta 0: clear, breach streak resets
	wantState(t, m, 1, Healthy)

	errs = 1 // counter reset below the last sample, then one new failure
	m.Tick()
	errs = 2
	m.Tick()
	wantState(t, m, 1, Sick) // both post-reset windows breached
}

// TestLossFold feeds FlowPerf deltas straight into the monitor's hub fold
// and checks the loss evaluator flags exactly the lossy home, ignores
// windows below the minimum sample size, and ignores other tables.
func TestLossFold(t *testing.T) {
	m := New(Config{Clock: clock.NewSimulated()})
	m.Track(1)
	m.Track(2)
	m.Track(3)

	width := m.pTx + 1
	if m.pLost >= width {
		width = m.pLost + 1
	}
	perfDelta := func(home uint64, tx, lost int64) telemetry.Delta {
		vals := make([]hwdb.Value, width)
		vals[m.pTx] = hwdb.Int64(tx)
		vals[m.pLost] = hwdb.Int64(lost)
		return telemetry.Delta{
			Source: telemetry.SourceID{Home: home, Table: hwdb.TableFlowPerf},
			Rows:   []hwdb.Row{{Vals: vals}},
		}
	}

	for i := 0; i < 2; i++ {
		m.fold(perfDelta(1, 100, 20)) // 20% loss: breach
		m.fold(perfDelta(2, 100, 1))  // 1% loss: under LossRatioMax
		m.fold(perfDelta(3, 5, 5))    // under MinTxPkts: not meaningful
		// Loss on the wrong table must not count against anyone.
		d := perfDelta(1, 1000, 1000)
		d.Source.Table = hwdb.TableFlows
		m.fold(d)
		m.Tick()
	}
	wantState(t, m, 1, Sick)
	wantState(t, m, 2, Healthy)
	wantState(t, m, 3, Healthy)

	// The window resets on every Tick: stopping the lossy feed clears it.
	m.Tick()
	m.Tick()
	wantState(t, m, 1, Healthy)
}

// TestObserveOnly runs the monitor with nil action hooks: the state
// machine still walks the ladder and records every transition, but
// nothing outside the monitor is touched.
func TestObserveOnly(t *testing.T) {
	m := New(Config{
		Clock:  clock.NewSimulated(),
		Vitals: func(id uint64) (Vitals, bool) { return Vitals{PuntLag: 100}, true },
	})
	m.Track(1)
	for i := 0; i < 20; i++ {
		m.Tick()
	}
	if st, _ := m.State(1); st != Retired {
		t.Fatalf("observe-only ladder ended at %v, want Retired", st)
	}
	c := m.Counts()
	if c.Actions() == 0 || c.Failures != 0 {
		t.Errorf("observe-only counts: %+v", c)
	}
	if got := rowCount(t, m, TableRemedy); got != c.Actions() {
		t.Errorf("Remedy rows = %d, actions counted = %d", got, c.Actions())
	}
}
