// Package health turns the fleet's live telemetry into per-home verdicts
// and drives the self-remediation loop: an evaluator folds FlowPerf loss
// from the hub's streamed deltas and reads control-plane vitals
// (punt-credit lag, settle failures) each evaluation window, a policy
// turns consecutive breached windows into state transitions (Healthy →
// Sick → Cordoned), and the monitor escalates a cordoned home through
// restart-in-place to full replacement, recording every verdict and
// every remediation action as hwdb rows so the loop's decisions are
// auditable after the fact.
//
// Concurrency: the monitor is driven from one goroutine (Tick between
// fleet steps); the FlowPerf fold runs synchronously inside the hub's
// drain pass and only touches the monitor's mutex-guarded window
// accumulators, so hub flushes may race Tick safely. State reads
// (State, States, Counts) are safe from any goroutine.
package health

import "fmt"

// State is one home's health verdict.
type State int

// Health states. Retired is terminal: the home was replaced by a fresh
// one and no longer exists under its old ID.
const (
	Healthy State = iota
	Sick
	Cordoned
	Retired
)

// String names the state.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Sick:
		return "sick"
	case Cordoned:
		return "cordoned"
	case Retired:
		return "retired"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Policy sets the evaluator thresholds and the remediation escalation
// schedule, all in units of evaluation windows (one Tick = one window).
type Policy struct {
	// LossRatioMax is the FlowPerf lost/tx ratio above which a window is
	// breached (default 0.05).
	LossRatioMax float64
	// MinTxPkts is the minimum transmitted packets a window needs before
	// its loss ratio is meaningful; below it loss is ignored (default 10).
	MinTxPkts uint64
	// MaxPuntLag is the punt-credit backlog (punted − processed) above
	// which a window is breached (default 8).
	MaxPuntLag uint64
	// MaxSettleErrs is how many new settle failures a window tolerates
	// before breaching (default 0: any failure breaches).
	MaxSettleErrs uint64
	// SickAfter is how many consecutive breached windows turn a Healthy
	// home Sick (default 2).
	SickAfter int
	// HealthyAfter is how many consecutive clear windows turn a Sick home
	// Healthy again (default 2).
	HealthyAfter int
	// CordonAfter is how many further breached windows a Sick home gets
	// before it is cordoned out of rotation (default 3).
	CordonAfter int
	// RestartDwell is how many windows a cordoned home rests before the
	// loop restarts it in place (default 2).
	RestartDwell int
	// MaxRestarts bounds restart attempts per home; one more cordon after
	// the budget is spent escalates to replacement (default 2).
	MaxRestarts int
}

// DefaultPolicy returns the thresholds the chaos soak gates on.
func DefaultPolicy() Policy {
	return Policy{
		LossRatioMax:  0.05,
		MinTxPkts:     10,
		MaxPuntLag:    8,
		MaxSettleErrs: 0,
		SickAfter:     2,
		HealthyAfter:  2,
		CordonAfter:   3,
		RestartDwell:  2,
		MaxRestarts:   2,
	}
}

// withDefaults fills zero-valued fields from DefaultPolicy, so callers
// can override just the thresholds they care about.
func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.LossRatioMax <= 0 {
		p.LossRatioMax = d.LossRatioMax
	}
	if p.MinTxPkts == 0 {
		p.MinTxPkts = d.MinTxPkts
	}
	if p.MaxPuntLag == 0 {
		p.MaxPuntLag = d.MaxPuntLag
	}
	if p.SickAfter <= 0 {
		p.SickAfter = d.SickAfter
	}
	if p.HealthyAfter <= 0 {
		p.HealthyAfter = d.HealthyAfter
	}
	if p.CordonAfter <= 0 {
		p.CordonAfter = d.CordonAfter
	}
	if p.RestartDwell <= 0 {
		p.RestartDwell = d.RestartDwell
	}
	if p.MaxRestarts <= 0 {
		p.MaxRestarts = d.MaxRestarts
	}
	return p
}

// Vitals are the control-plane signals the evaluator reads directly from
// a home each window, complementing the telemetry-streamed loss.
type Vitals struct {
	// PuntLag is the current punt-credit backlog on the home's quiescence
	// epoch (punted − processed).
	PuntLag uint64
	// SettleErrs is the home's cumulative settle-failure count for the
	// current router incarnation; the evaluator differences it per window
	// and tolerates the counter resetting on restart.
	SettleErrs uint64
}

// Actions are the remediation hooks the monitor drives; the fleet layer
// provides them (chaos.Soak wires them to fleet.Fleet). A nil hook makes
// the corresponding transition a recorded no-op, so evaluators can run
// observe-only. Replace returns the successor home's ID, which the
// monitor starts tracking as Healthy.
type Actions struct {
	Cordon   func(id uint64) bool
	Uncordon func(id uint64) bool
	Restart  func(id uint64) error
	Replace  func(id uint64) (newID uint64, err error)
}

// Counts summarizes everything the monitor has decided and done. Each
// counter equals the number of hwdb rows recorded for it (Verdicts in the
// Health table, the action counters in the Remedy table).
type Counts struct {
	Verdicts  int // state transitions recorded
	Cordons   int
	Uncordons int
	Restarts  int
	Replaces  int
	Failures  int // remediation actions that returned an error

	// Per-state verdict breakdown for the incident recorder's bundle
	// reconciliation: how many verdicts landed in Sick / Cordoned.
	SickVerdicts     int
	CordonedVerdicts int
}

// Actions returns the total remediation actions recorded (the Remedy
// table row count): everything except verdicts.
func (c Counts) Actions() int {
	return c.Cordons + c.Uncordons + c.Restarts + c.Replaces + c.Failures
}
