package netsim

import (
	"sync"

	"repro/internal/packet"
)

// AppKind selects a canned traffic profile: the workloads the paper's
// bandwidth interface displays.
type AppKind uint8

// Application profiles.
const (
	AppWeb   AppKind = iota // bursty HTTP/HTTPS request-response
	AppVideo                // steady high-rate streaming over TCP 443
	AppVoIP                 // constant small UDP at 5060
	AppP2P                  // several parallel TCP flows on 6881
	AppIoT                  // periodic tiny UDP telemetry
	AppDNS                  // bare DNS chatter
)

// String names the profile.
func (k AppKind) String() string {
	switch k {
	case AppWeb:
		return "web"
	case AppVideo:
		return "video"
	case AppVoIP:
		return "voip"
	case AppP2P:
		return "p2p"
	case AppIoT:
		return "iot"
	case AppDNS:
		return "dns"
	}
	return "app"
}

// App generates traffic from a host to a target (hostname or literal IP).
// Each Step emits the frames for one simulated tick.
type App struct {
	Kind   AppKind
	Target string // hostname to resolve, or dotted IP
	// RateBps is the target payload rate in bytes per second.
	RateBps int
	// PacketSize is the payload bytes per packet (default per profile).
	PacketSize int

	host    *Host
	srcPort uint16

	mu       sync.Mutex
	dst      packet.IP4
	resolved bool
	failed   bool
	synSent  bool
	seq      uint32
	carry    float64 // fractional packet accumulation
	sent     uint64  // payload bytes sent
	flows    int     // parallel flows for p2p
	payload  []byte  // reused all-zero payload scratch, PacketSize bytes

	churnEvery float64 // seconds between fresh connections (0 = one flow)
	churnCarry float64
}

// NewApp builds an application with profile defaults.
func NewApp(kind AppKind, target string, rateBps int) *App {
	a := &App{Kind: kind, Target: target, RateBps: rateBps}
	switch kind {
	case AppWeb:
		a.PacketSize = 1200
	case AppVideo:
		a.PacketSize = 1400
	case AppVoIP:
		a.PacketSize = 160
	case AppP2P:
		a.PacketSize = 1400
		a.flows = 4
	case AppIoT:
		a.PacketSize = 64
	case AppDNS:
		a.PacketSize = 48
	}
	return a
}

// SetFlowChurn makes the app open a fresh connection (a new source port,
// hence a new five-tuple) every sec simulated seconds instead of holding
// one long-lived flow. Under the paper's reactive design every new flow's
// first packet punts to the controller, so churn keeps the control plane
// exercised the way real browsing does. Zero disables churn.
func (a *App) SetFlowChurn(sec float64) {
	a.mu.Lock()
	a.churnEvery = sec
	a.mu.Unlock()
}

// DstPort returns the destination port of the profile.
func (a *App) DstPort() uint16 {
	switch a.Kind {
	case AppWeb:
		return 80
	case AppVideo:
		return 443
	case AppVoIP:
		return 5060
	case AppP2P:
		return 6881
	case AppIoT:
		return 8883
	case AppDNS:
		return 53
	}
	return 9
}

// Proto returns the transport protocol of the profile.
func (a *App) Proto() packet.IPProto {
	switch a.Kind {
	case AppVoIP, AppIoT, AppDNS:
		return packet.ProtoUDP
	default:
		return packet.ProtoTCP
	}
}

// SentBytes returns payload bytes emitted so far.
func (a *App) SentBytes() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sent
}

// Step advances the application by dt seconds, emitting traffic.
func (a *App) Step(dt float64) {
	if a.host == nil || !a.host.Bound() {
		return
	}
	a.mu.Lock()
	if a.failed {
		a.mu.Unlock()
		return
	}
	if !a.resolved {
		a.mu.Unlock()
		a.resolve()
		return
	}
	if a.churnEvery > 0 {
		a.churnCarry += dt
		if a.churnCarry >= a.churnEvery {
			a.churnCarry -= a.churnEvery
			// A fresh connection: new source port, new five-tuple. The
			// first packet of the new flow misses in the datapath and
			// punts, exactly like a real page load's next connection; the
			// old flow idles out of the table.
			a.srcPort++
			if a.srcPort < 32768 {
				a.srcPort = 32768
			}
			a.synSent = false
			a.seq = 0
		}
	}
	dst := a.dst
	budget := a.carry + float64(a.RateBps)*dt
	n := int(budget / float64(a.PacketSize))
	a.carry = budget - float64(n*a.PacketSize)
	needSyn := a.Proto() == packet.ProtoTCP && !a.synSent
	if needSyn {
		a.synSent = true
	}
	seq := a.seq
	a.seq += uint32(n * a.PacketSize)
	a.sent += uint64(n * a.PacketSize)
	flows := a.flows
	if flows == 0 {
		flows = 1
	}
	srcPort := a.srcPort
	// The payload is opaque zero filler: one per-app buffer serves every
	// packet (frame builders copy it), so Step allocates nothing in
	// steady state.
	if cap(a.payload) < a.PacketSize {
		a.payload = make([]byte, a.PacketSize)
	}
	payload := a.payload[:a.PacketSize]
	a.mu.Unlock()

	if needSyn {
		for f := 0; f < flows; f++ {
			a.host.sendTCP(dst, srcPort+uint16(f), a.DstPort(), packet.TCPSyn, 0, nil)
		}
	}
	for i := 0; i < n; i++ {
		port := srcPort + uint16(i%flows)
		switch a.Proto() {
		case packet.ProtoUDP:
			a.host.sendUDP(dst, port, a.DstPort(), payload)
		default:
			a.host.sendTCP(dst, port, a.DstPort(), packet.TCPAck|packet.TCPPsh, seq+uint32(i*a.PacketSize), payload)
		}
	}
}

// resolve kicks off target resolution (idempotent; retried on failure so a
// policy change can unblock a previously denied name).
func (a *App) resolve() {
	if ip, err := packet.ParseIP4(a.Target); err == nil {
		a.mu.Lock()
		a.dst, a.resolved = ip, true
		a.mu.Unlock()
		return
	}
	a.host.Resolve(a.Target, func(ip packet.IP4, ok bool) {
		a.mu.Lock()
		if ok {
			a.dst, a.resolved = ip, true
		}
		a.mu.Unlock()
	})
}

// deliver observes inbound packets addressed to the app's flow (responses
// from the upstream server); the default profiles just absorb them.
func (a *App) deliver(d *packet.Decoded) {}
