package netsim

import (
	"sync"

	"repro/internal/packet"
)

// zeroPayload is the shared all-zero filler for synthesized response
// traffic; frame builders copy from it, so one buffer serves every reply.
var zeroPayload [1400]byte

// Upstream stands in for the ISP uplink and the public Internet: it
// answers ARP for every off-home address (it is the default route's next
// hop), serves an authoritative DNS zone on DNSAddr, and responds to
// transport flows addressed to any of its server addresses with a
// service-dependent volume of reply traffic. Replies to one delivered
// frame are serialized into a reused batch and handed to the datapath in
// a single call.
type Upstream struct {
	MAC     packet.MAC
	IP      packet.IP4 // next-hop address on the WAN side
	DNSAddr packet.IP4 // the "8.8.8.8" this network forwards queries to

	net  *Network
	port uint16

	mu       sync.Mutex
	localNet packet.IP4
	localLen int
	zone     map[string]packet.IP4
	rev      map[packet.IP4]string // deterministic reverse index, see ReverseLookup
	ratio    map[uint16]float64    // dst port -> response bytes per request byte
	rxBytes  uint64
	txBytes  uint64
	queries  uint64
	txFree   []*upstreamTx // bounded free-list of reply batches
}

// upstreamTx is the per-delivery working set: a decode buffer and the
// reply batch. A free-list (rather than a single instance) keeps nested
// deliveries safe: a reply can traverse the datapath and come back before
// the outer Deliver returns.
type upstreamTx struct {
	d  packet.Decoded
	fb packet.FrameBatch
}

// NewUpstream builds an upstream with a synthetic zone covering the sites
// the paper's policy interface names.
func NewUpstream() *Upstream {
	u := &Upstream{
		MAC:     packet.MustMAC("02:ee:00:00:00:01"),
		IP:      packet.MustIP4("100.64.0.1"),
		DNSAddr: packet.MustIP4("8.8.8.8"),
		zone: map[string]packet.IP4{
			"facebook.com":     packet.MustIP4("157.240.1.35"),
			"www.facebook.com": packet.MustIP4("157.240.1.35"),
			"youtube.com":      packet.MustIP4("142.250.180.14"),
			"www.youtube.com":  packet.MustIP4("142.250.180.14"),
			"bbc.co.uk":        packet.MustIP4("151.101.0.81"),
			"www.bbc.co.uk":    packet.MustIP4("151.101.0.81"),
			"example.com":      packet.MustIP4("93.184.216.34"),
			"www.example.com":  packet.MustIP4("93.184.216.34"),
			"iot.example.com":  packet.MustIP4("93.184.216.40"),
			"voip.example.com": packet.MustIP4("93.184.216.41"),
			"tracker.example":  packet.MustIP4("93.184.216.50"),
		},
		rev: make(map[packet.IP4]string),
		ratio: map[uint16]float64{
			80:   8,    // web: download-heavy
			443:  20,   // streaming video
			5060: 1,    // voip: symmetric
			6881: 1.5,  // p2p
			8883: 0.25, // iot telemetry acks
			53:   2,    // dns
		},
		txFree: make([]*upstreamTx, 0, 4),
	}
	for name, ip := range u.zone {
		u.indexLocked(name, ip)
	}
	return u
}

// preferredName reports whether a should win over b as the canonical
// reverse-lookup name for an address: the shortest name wins, ties broken
// lexicographically. The rule is a pure function of the candidate set, so
// the index is identical however the zone was populated.
func preferredName(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// indexLocked folds one name into the reverse index (caller holds u.mu).
func (u *Upstream) indexLocked(name string, ip packet.IP4) {
	if cur, ok := u.rev[ip]; !ok || preferredName(name, cur) {
		u.rev[ip] = name
	}
}

// reindexLocked rebuilds the reverse entry for ip from the zone (caller
// holds u.mu); used when a name is retargeted away from ip.
func (u *Upstream) reindexLocked(ip packet.IP4) {
	delete(u.rev, ip)
	for name, a := range u.zone {
		if a == ip {
			u.indexLocked(name, a)
		}
	}
}

// SetLocalNet tells the upstream which prefix is the home network, so it
// never answers ARP for addresses inside it.
func (u *Upstream) SetLocalNet(prefix packet.IP4, length int) {
	u.mu.Lock()
	u.localNet, u.localLen = prefix, length
	u.mu.Unlock()
}

// AddZone adds or overrides a DNS name, keeping the reverse index
// consistent.
func (u *Upstream) AddZone(name string, ip packet.IP4) {
	u.mu.Lock()
	old, existed := u.zone[name]
	u.zone[name] = ip
	if existed && old != ip {
		u.reindexLocked(old)
	}
	u.indexLocked(name, ip)
	u.mu.Unlock()
}

// Lookup resolves a name in the synthetic zone.
func (u *Upstream) Lookup(name string) (packet.IP4, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	ip, ok := u.zone[name]
	return ip, ok
}

// ReverseLookup finds the canonical name for an address (used by the DNS
// proxy's reverse path). Addresses with several names resolve to the same
// name on every run — the shortest, ties broken lexicographically — so
// hwdb flow→name attribution never flickers between runs.
func (u *Upstream) ReverseLookup(ip packet.IP4) (string, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	name, ok := u.rev[ip]
	return name, ok
}

// Counters returns bytes received/sent and DNS queries answered.
func (u *Upstream) Counters() (rx, tx, queries uint64) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.rxBytes, u.txBytes, u.queries
}

// getTx borrows a working set off the free-list.
func (u *Upstream) getTx() *upstreamTx {
	u.mu.Lock()
	if n := len(u.txFree); n > 0 {
		tx := u.txFree[n-1]
		u.txFree = u.txFree[:n-1]
		u.mu.Unlock()
		return tx
	}
	u.mu.Unlock()
	return &upstreamTx{}
}

// putTx returns a working set; the free-list is bounded by its
// preallocated capacity.
func (u *Upstream) putTx(tx *upstreamTx) {
	tx.fb.Reset()
	u.mu.Lock()
	if len(u.txFree) < cap(u.txFree) {
		u.txFree = append(u.txFree, tx)
	}
	u.mu.Unlock()
}

// Deliver processes a frame forwarded out of the home, emitting any reply
// traffic as one batch.
func (u *Upstream) Deliver(frame []byte) {
	u.mu.Lock()
	u.rxBytes += uint64(len(frame))
	u.mu.Unlock()

	tx := u.getTx()
	defer u.putTx(tx)
	if err := tx.d.Decode(frame); err != nil {
		return
	}
	d, fb := &tx.d, &tx.fb
	switch {
	case d.HasARP && d.ARP.Op == packet.ARPRequest:
		// The upstream is the next hop for everything beyond the home —
		// but it must not claim home-subnet addresses.
		u.mu.Lock()
		local := u.localLen > 0 &&
			d.ARP.TargetIP.Mask(u.localLen) == u.localNet.Mask(u.localLen)
		u.mu.Unlock()
		if local {
			return
		}
		fb.Commit(packet.AppendARPReply(fb.Buf(), u.MAC, d.ARP.TargetIP, &d.ARP))
	case d.HasUDP && d.UDP.DstPort == packet.DNSPort && d.IP.Dst == u.DNSAddr:
		u.serveDNS(d, fb)
	case d.HasTCP:
		u.serveTCP(d, fb)
	case d.HasUDP:
		u.serveUDP(d, fb)
	}
	u.flush(fb)
}

// flush hands the accumulated replies to the datapath in one call.
func (u *Upstream) flush(fb *packet.FrameBatch) {
	if fb.Len() == 0 {
		return
	}
	u.mu.Lock()
	u.txBytes += uint64(fb.TotalBytes())
	u.mu.Unlock()
	u.net.fromUpstreamBatch(u, fb)
	fb.Reset()
}

func (u *Upstream) serveDNS(d *packet.Decoded, fb *packet.FrameBatch) {
	var q packet.DNS
	if err := q.DecodeFromBytes(d.UDP.Payload); err != nil || len(q.Questions) == 0 {
		return
	}
	u.mu.Lock()
	u.queries++
	u.mu.Unlock()

	resp := &packet.DNS{
		ID: q.ID, Response: true, RD: q.RD, RA: true,
		Questions: q.Questions,
	}
	qu := q.Questions[0]
	switch qu.Type {
	case packet.DNSTypeA:
		if ip, ok := u.Lookup(qu.Name); ok {
			resp.AnswerA(ip, 300)
		} else {
			resp.Rcode = packet.DNSRcodeNXDomain
		}
	case packet.DNSTypePTR:
		if ip, ok := packet.ParseReverseName(qu.Name); ok {
			if name, found := u.ReverseLookup(ip); found {
				resp.Answers = append(resp.Answers, packet.DNSRR{
					Name: qu.Name, Type: packet.DNSTypePTR, Class: packet.DNSClassIN,
					TTL: 300, Target: name,
				})
			} else {
				resp.Rcode = packet.DNSRcodeNXDomain
			}
		} else {
			resp.Rcode = packet.DNSRcodeNXDomain
		}
	default:
		resp.Rcode = packet.DNSRcodeNXDomain
	}
	raw, err := resp.Bytes()
	if err != nil {
		return
	}
	u.reply(d, fb, raw, packet.ProtoUDP)
}

// serveTCP answers SYNs with SYN-ACK and data with a service-dependent
// response volume.
func (u *Upstream) serveTCP(d *packet.Decoded, fb *packet.FrameBatch) {
	if d.TCP.Flags&packet.TCPSyn != 0 && d.TCP.Flags&packet.TCPAck == 0 {
		fb.Commit(packet.AppendTCPFrame(fb.Buf(), u.MAC, d.Eth.Src,
			d.IP.Dst, d.IP.Src, d.TCP.DstPort, d.TCP.SrcPort,
			packet.TCPSyn|packet.TCPAck, 0, d.TCP.Seq+1, nil))
		return
	}
	if len(d.TCP.Payload) == 0 {
		return
	}
	u.respondData(d, fb, len(d.TCP.Payload), d.TCP.DstPort, packet.ProtoTCP)
}

func (u *Upstream) serveUDP(d *packet.Decoded, fb *packet.FrameBatch) {
	if len(d.UDP.Payload) == 0 {
		return
	}
	u.respondData(d, fb, len(d.UDP.Payload), d.UDP.DstPort, packet.ProtoUDP)
}

// respondData emits ratio-scaled response bytes back toward the client,
// split into MTU-sized frames (capped to bound simulation cost).
func (u *Upstream) respondData(d *packet.Decoded, fb *packet.FrameBatch, reqLen int, dstPort uint16, proto packet.IPProto) {
	u.mu.Lock()
	ratio, ok := u.ratio[dstPort]
	u.mu.Unlock()
	if !ok {
		ratio = 1
	}
	total := int(float64(reqLen) * ratio)
	const mtuPayload = len(zeroPayload)
	const maxFrames = 32
	frames := 0
	for total > 0 && frames < maxFrames {
		sz := total
		if sz > mtuPayload {
			sz = mtuPayload
		}
		total -= sz
		frames++
		u.reply(d, fb, zeroPayload[:sz], proto)
	}
}

// reply serializes one transport reply toward the source of d, addressed
// at Ethernet level to whoever forwarded the frame (the router's WAN
// side), into the batch.
func (u *Upstream) reply(d *packet.Decoded, fb *packet.FrameBatch, payload []byte, proto packet.IPProto) {
	switch proto {
	case packet.ProtoUDP:
		fb.Commit(packet.AppendUDPFrame(fb.Buf(), u.MAC, d.Eth.Src,
			d.IP.Dst, d.IP.Src, d.UDP.DstPort, d.UDP.SrcPort, payload))
	default:
		fb.Commit(packet.AppendTCPFrame(fb.Buf(), u.MAC, d.Eth.Src,
			d.IP.Dst, d.IP.Src, d.TCP.DstPort, d.TCP.SrcPort,
			packet.TCPAck|packet.TCPPsh, d.TCP.Ack, d.TCP.Seq+uint32(len(d.TCP.Payload)), payload))
	}
}
