package netsim

import (
	"sync"

	"repro/internal/packet"
)

// Upstream stands in for the ISP uplink and the public Internet: it
// answers ARP for every off-home address (it is the default route's next
// hop), serves an authoritative DNS zone on DNSAddr, and responds to
// transport flows addressed to any of its server addresses with a
// service-dependent volume of reply traffic.
type Upstream struct {
	MAC     packet.MAC
	IP      packet.IP4 // next-hop address on the WAN side
	DNSAddr packet.IP4 // the "8.8.8.8" this network forwards queries to

	net  *Network
	port uint16

	mu       sync.Mutex
	localNet packet.IP4
	localLen int
	zone     map[string]packet.IP4
	ratio    map[uint16]float64 // dst port -> response bytes per request byte
	rxBytes  uint64
	txBytes  uint64
	queries  uint64
}

// NewUpstream builds an upstream with a synthetic zone covering the sites
// the paper's policy interface names.
func NewUpstream() *Upstream {
	u := &Upstream{
		MAC:     packet.MustMAC("02:ee:00:00:00:01"),
		IP:      packet.MustIP4("100.64.0.1"),
		DNSAddr: packet.MustIP4("8.8.8.8"),
		zone: map[string]packet.IP4{
			"facebook.com":     packet.MustIP4("157.240.1.35"),
			"www.facebook.com": packet.MustIP4("157.240.1.35"),
			"youtube.com":      packet.MustIP4("142.250.180.14"),
			"www.youtube.com":  packet.MustIP4("142.250.180.14"),
			"bbc.co.uk":        packet.MustIP4("151.101.0.81"),
			"www.bbc.co.uk":    packet.MustIP4("151.101.0.81"),
			"example.com":      packet.MustIP4("93.184.216.34"),
			"www.example.com":  packet.MustIP4("93.184.216.34"),
			"iot.example.com":  packet.MustIP4("93.184.216.40"),
			"voip.example.com": packet.MustIP4("93.184.216.41"),
			"tracker.example":  packet.MustIP4("93.184.216.50"),
		},
		ratio: map[uint16]float64{
			80:   8,    // web: download-heavy
			443:  20,   // streaming video
			5060: 1,    // voip: symmetric
			6881: 1.5,  // p2p
			8883: 0.25, // iot telemetry acks
			53:   2,    // dns
		},
	}
	return u
}

// SetLocalNet tells the upstream which prefix is the home network, so it
// never answers ARP for addresses inside it.
func (u *Upstream) SetLocalNet(prefix packet.IP4, length int) {
	u.mu.Lock()
	u.localNet, u.localLen = prefix, length
	u.mu.Unlock()
}

// AddZone adds or overrides a DNS name.
func (u *Upstream) AddZone(name string, ip packet.IP4) {
	u.mu.Lock()
	u.zone[name] = ip
	u.mu.Unlock()
}

// Lookup resolves a name in the synthetic zone.
func (u *Upstream) Lookup(name string) (packet.IP4, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	ip, ok := u.zone[name]
	return ip, ok
}

// ReverseLookup finds a name for an address (used by the DNS proxy's
// reverse path).
func (u *Upstream) ReverseLookup(ip packet.IP4) (string, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	for name, a := range u.zone {
		if a == ip {
			return name, true
		}
	}
	return "", false
}

// Counters returns bytes received/sent and DNS queries answered.
func (u *Upstream) Counters() (rx, tx, queries uint64) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.rxBytes, u.txBytes, u.queries
}

// Deliver processes a frame forwarded out of the home.
func (u *Upstream) Deliver(frame []byte) {
	u.mu.Lock()
	u.rxBytes += uint64(len(frame))
	u.mu.Unlock()

	var d packet.Decoded
	if err := d.Decode(frame); err != nil {
		return
	}
	switch {
	case d.HasARP && d.ARP.Op == packet.ARPRequest:
		// The upstream is the next hop for everything beyond the home —
		// but it must not claim home-subnet addresses.
		u.mu.Lock()
		local := u.localLen > 0 &&
			d.ARP.TargetIP.Mask(u.localLen) == u.localNet.Mask(u.localLen)
		u.mu.Unlock()
		if local {
			return
		}
		reply := packet.NewARPReply(u.MAC, d.ARP.TargetIP, &d.ARP)
		u.transmit(reply.Bytes())
	case d.HasUDP && d.UDP.DstPort == packet.DNSPort && d.IP.Dst == u.DNSAddr:
		u.serveDNS(&d)
	case d.HasTCP:
		u.serveTCP(&d)
	case d.HasUDP:
		u.serveUDP(&d)
	}
}

func (u *Upstream) transmit(frame []byte) {
	u.mu.Lock()
	u.txBytes += uint64(len(frame))
	u.mu.Unlock()
	u.net.fromUpstream(u, frame)
}

func (u *Upstream) serveDNS(d *packet.Decoded) {
	var q packet.DNS
	if err := q.DecodeFromBytes(d.UDP.Payload); err != nil || len(q.Questions) == 0 {
		return
	}
	u.mu.Lock()
	u.queries++
	u.mu.Unlock()

	resp := &packet.DNS{
		ID: q.ID, Response: true, RD: q.RD, RA: true,
		Questions: q.Questions,
	}
	qu := q.Questions[0]
	switch qu.Type {
	case packet.DNSTypeA:
		if ip, ok := u.Lookup(qu.Name); ok {
			resp.AnswerA(ip, 300)
		} else {
			resp.Rcode = packet.DNSRcodeNXDomain
		}
	case packet.DNSTypePTR:
		if ip, ok := packet.ParseReverseName(qu.Name); ok {
			if name, found := u.ReverseLookup(ip); found {
				resp.Answers = append(resp.Answers, packet.DNSRR{
					Name: qu.Name, Type: packet.DNSTypePTR, Class: packet.DNSClassIN,
					TTL: 300, Target: name,
				})
			} else {
				resp.Rcode = packet.DNSRcodeNXDomain
			}
		} else {
			resp.Rcode = packet.DNSRcodeNXDomain
		}
	default:
		resp.Rcode = packet.DNSRcodeNXDomain
	}
	raw, err := resp.Bytes()
	if err != nil {
		return
	}
	u.reply(d, raw, packet.ProtoUDP)
}

// serveTCP answers SYNs with SYN-ACK and data with a service-dependent
// response volume.
func (u *Upstream) serveTCP(d *packet.Decoded) {
	if d.TCP.Flags&packet.TCPSyn != 0 && d.TCP.Flags&packet.TCPAck == 0 {
		syn := packet.TCP{
			SrcPort: d.TCP.DstPort, DstPort: d.TCP.SrcPort,
			Seq: 0, Ack: d.TCP.Seq + 1,
			Flags: packet.TCPSyn | packet.TCPAck, Window: 65535,
		}
		ip := packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, Src: d.IP.Dst, Dst: d.IP.Src,
			Payload: syn.Bytes(d.IP.Dst, d.IP.Src)}
		eth := packet.Ethernet{Dst: d.Eth.Src, Src: u.MAC, Type: packet.EtherTypeIPv4, Payload: ip.Bytes()}
		u.transmit(eth.Bytes())
		return
	}
	if len(d.TCP.Payload) == 0 {
		return
	}
	u.respondData(d, len(d.TCP.Payload), d.TCP.DstPort, packet.ProtoTCP)
}

func (u *Upstream) serveUDP(d *packet.Decoded) {
	if len(d.UDP.Payload) == 0 {
		return
	}
	u.respondData(d, len(d.UDP.Payload), d.UDP.DstPort, packet.ProtoUDP)
}

// respondData sends ratio-scaled response bytes back toward the client,
// split into MTU-sized frames (capped to bound simulation cost).
func (u *Upstream) respondData(d *packet.Decoded, reqLen int, dstPort uint16, proto packet.IPProto) {
	u.mu.Lock()
	ratio, ok := u.ratio[dstPort]
	u.mu.Unlock()
	if !ok {
		ratio = 1
	}
	total := int(float64(reqLen) * ratio)
	const mtuPayload = 1400
	const maxFrames = 32
	frames := 0
	for total > 0 && frames < maxFrames {
		sz := total
		if sz > mtuPayload {
			sz = mtuPayload
		}
		total -= sz
		frames++
		u.reply(d, make([]byte, sz), proto)
	}
}

// reply sends a transport payload back to the source of d, addressed at
// Ethernet level to whoever forwarded the frame (the router's WAN side).
func (u *Upstream) reply(d *packet.Decoded, payload []byte, proto packet.IPProto) {
	var ipPayload []byte
	switch proto {
	case packet.ProtoUDP:
		udp := packet.UDP{SrcPort: d.UDP.DstPort, DstPort: d.UDP.SrcPort, Payload: payload}
		ipPayload = udp.Bytes(d.IP.Dst, d.IP.Src)
	default:
		tcp := packet.TCP{
			SrcPort: d.TCP.DstPort, DstPort: d.TCP.SrcPort,
			Seq: d.TCP.Ack, Ack: d.TCP.Seq + uint32(len(d.TCP.Payload)),
			Flags: packet.TCPAck | packet.TCPPsh, Window: 65535, Payload: payload,
		}
		ipPayload = tcp.Bytes(d.IP.Dst, d.IP.Src)
	}
	ip := packet.IPv4{TTL: 64, Protocol: proto, Src: d.IP.Dst, Dst: d.IP.Src, Payload: ipPayload}
	eth := packet.Ethernet{Dst: d.Eth.Src, Src: u.MAC, Type: packet.EtherTypeIPv4, Payload: ip.Bytes()}
	u.transmit(eth.Bytes())
}
