package netsim

import (
	"fmt"
	"sync"

	"repro/internal/packet"
)

// DHCP client states.
type dhcpState uint8

const (
	dhcpInit dhcpState = iota
	dhcpDiscovering
	dhcpRequesting
	dhcpBound
	dhcpDenied
)

// Host is one simulated device: a network interface with a minimal stack
// (ARP, DHCP client, DNS stub resolver) and a set of traffic applications.
type Host struct {
	Name     string
	MAC      packet.MAC
	Wireless bool

	net  *Network
	port uint16

	mu       sync.Mutex
	pos      Pos
	ip       packet.IP4
	mask     int // prefix length of the lease
	gw       packet.IP4
	dns      packet.IP4
	state    dhcpState
	xid      uint32
	arp      map[packet.IP4]packet.MAC
	arpWait  map[packet.IP4][][]byte
	resolved map[string]packet.IP4
	dnsWait  map[uint16]dnsQuery
	nextDNS  uint16
	nextPort uint16
	apps     []*App

	// txFree is a bounded free-list of transmit scratch buffers. Frame
	// builds on the hot path borrow a buffer, serialize in one pass, hand
	// the frame to the network synchronously and return the buffer, so
	// steady-state sends do not allocate. The list (rather than a single
	// buffer) keeps nested sends safe: delivering a frame can trigger a
	// reply from inside the send call stack.
	txFree [][]byte
	// batch, when non-nil, is the per-step frame batch set by
	// Network.Step: application traffic is serialized into it and handed
	// to the datapath in one call after the host's apps have stepped.
	batch *packet.FrameBatch
	// txBatch is the host's owned batch, lazily created and reused.
	txBatch *packet.FrameBatch

	// RxBytes/RxFrames count frames delivered to this host.
	RxBytes  uint64
	RxFrames uint64
	// OnFrame, when set, observes every delivered frame (tests, UIs).
	// The frame may alias a sender's reused scratch buffer and is only
	// valid for the duration of the call; copy it to retain it.
	OnFrame func(frame []byte)
}

type dnsQuery struct {
	name string
	cb   func(packet.IP4, bool)
}

func newHost(name string, mac packet.MAC, wireless bool, pos Pos) *Host {
	return &Host{
		Name: name, MAC: mac, Wireless: wireless, pos: pos,
		arp:      make(map[packet.IP4]packet.MAC),
		arpWait:  make(map[packet.IP4][][]byte),
		resolved: make(map[string]packet.IP4),
		dnsWait:  make(map[uint16]dnsQuery),
		nextPort: 49152,
		txFree:   make([][]byte, 0, 4),
	}
}

// IP returns the host's leased address (zero until DHCP completes).
func (h *Host) IP() packet.IP4 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ip
}

// Bound reports whether DHCP has completed.
func (h *Host) Bound() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state == dhcpBound
}

// Denied reports whether the DHCP server NAKed this host.
func (h *Host) Denied() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state == dhcpDenied
}

// LeaseMask returns the prefix length of the lease (32 under the Homework
// /32 allocation scheme).
func (h *Host) LeaseMask() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.mask
}

// Pos returns the host's position.
func (h *Host) Pos() Pos {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.pos
}

// MoveTo relocates the host (changing its RSSI).
func (h *Host) MoveTo(p Pos) {
	h.mu.Lock()
	h.pos = p
	h.mu.Unlock()
}

// send transmits a frame out of the host's interface.
func (h *Host) send(frame []byte) { h.net.fromHost(h, frame) }

// SendRaw transmits a prebuilt frame (tests and special probes).
func (h *Host) SendRaw(frame []byte) { h.send(frame) }

// RxStats returns how many frames and bytes the host has received.
func (h *Host) RxStats() (frames, bytes uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.RxFrames, h.RxBytes
}

// StartDHCP begins address acquisition.
func (h *Host) StartDHCP() {
	h.mu.Lock()
	h.state = dhcpDiscovering
	h.xid++
	xid := h.xid
	h.mu.Unlock()

	d := &packet.DHCP{Op: packet.DHCPBootRequest, XID: xid, Flags: 0x8000, CHAddr: h.MAC}
	d.AddMsgType(packet.DHCPDiscover)
	d.AddOption(packet.DHCPOptHostname, []byte(h.Name))
	frame := packet.NewDHCPFrame(d, h.MAC, packet.Broadcast,
		packet.IP4{}, packet.IP4{255, 255, 255, 255},
		packet.DHCPClientPort, packet.DHCPServerPort)
	h.send(frame.Bytes())
}

// Release sends a DHCP release and forgets the lease.
func (h *Host) Release() {
	h.mu.Lock()
	ip, server := h.ip, h.gw
	h.ip, h.state = packet.IP4{}, dhcpInit
	h.mu.Unlock()
	if ip.IsZero() {
		return
	}
	d := &packet.DHCP{Op: packet.DHCPBootRequest, XID: 99, CIAddr: ip, CHAddr: h.MAC}
	d.AddMsgType(packet.DHCPRelease)
	d.AddIPOption(packet.DHCPOptServerID, server)
	frame := packet.NewDHCPFrame(d, h.MAC, packet.Broadcast, ip, server,
		packet.DHCPClientPort, packet.DHCPServerPort)
	h.send(frame.Bytes())
}

// Deliver hands a frame received from the network to the host stack.
func (h *Host) Deliver(frame []byte) {
	h.mu.Lock()
	h.RxFrames++
	h.RxBytes += uint64(len(frame))
	onFrame := h.OnFrame
	h.mu.Unlock()
	if onFrame != nil {
		onFrame(frame)
	}

	var d packet.Decoded
	if err := d.Decode(frame); err != nil {
		return
	}
	if !d.Eth.Dst.IsBroadcast() && !d.Eth.Dst.IsMulticast() && d.Eth.Dst != h.MAC {
		return
	}
	switch {
	case d.HasARP:
		h.handleARP(&d)
	case d.HasUDP && d.UDP.DstPort == packet.DHCPClientPort:
		h.handleDHCP(&d)
	case d.HasUDP && d.UDP.SrcPort == packet.DNSPort:
		h.handleDNS(&d)
	case d.HasTCP || d.HasUDP || d.HasICMP:
		h.handleData(&d)
	}
}

func (h *Host) handleARP(d *packet.Decoded) {
	h.mu.Lock()
	myIP := h.ip
	h.mu.Unlock()
	switch d.ARP.Op {
	case packet.ARPRequest:
		if !myIP.IsZero() && d.ARP.TargetIP == myIP {
			reply := packet.NewARPReply(h.MAC, myIP, &d.ARP)
			h.send(reply.Bytes())
		}
	case packet.ARPReply:
		h.mu.Lock()
		h.arp[d.ARP.SenderIP] = d.ARP.SenderHW
		queued := h.arpWait[d.ARP.SenderIP]
		delete(h.arpWait, d.ARP.SenderIP)
		h.mu.Unlock()
		for _, f := range queued {
			// Queued frames were serialized with a zero destination MAC;
			// patch the resolved one in place and transmit.
			if len(f) >= packet.EthernetHeaderLen {
				copy(f[0:6], d.ARP.SenderHW[:])
				h.send(f)
			}
		}
	}
}

func (h *Host) handleDHCP(d *packet.Decoded) {
	var msg packet.DHCP
	if err := msg.DecodeFromBytes(d.UDP.Payload); err != nil {
		return
	}
	if msg.CHAddr != h.MAC {
		return
	}
	// The REQUEST (if any) is sent after the lock is released, but on
	// this same goroutine: the control plane's quiescence protocol
	// (docs/CONTROL_PLANE.md) relies on the host stack responding
	// synchronously within the delivery call, so a settle barrier that
	// delivered the OFFER observes the REQUEST punt before it completes.
	var reply []byte
	h.mu.Lock()
	if msg.XID != h.xid {
		h.mu.Unlock()
		return
	}
	switch msg.MsgType() {
	case packet.DHCPOffer:
		if h.state != dhcpDiscovering {
			break
		}
		server, _ := msg.ServerID()
		req := &packet.DHCP{Op: packet.DHCPBootRequest, XID: h.xid, Flags: 0x8000, CHAddr: h.MAC}
		req.AddMsgType(packet.DHCPRequest)
		req.AddIPOption(packet.DHCPOptRequestedIP, msg.YIAddr)
		req.AddIPOption(packet.DHCPOptServerID, server)
		req.AddOption(packet.DHCPOptHostname, []byte(h.Name))
		h.state = dhcpRequesting
		reply = packet.NewDHCPFrame(req, h.MAC, packet.Broadcast,
			packet.IP4{}, packet.IP4{255, 255, 255, 255},
			packet.DHCPClientPort, packet.DHCPServerPort).Bytes()
	case packet.DHCPAck:
		if h.state != dhcpRequesting {
			break
		}
		h.ip = msg.YIAddr
		h.mask = 32
		if m, ok := msg.SubnetMask(); ok {
			h.mask = prefixLen(m)
		}
		if v, ok := msg.Option(packet.DHCPOptRouter); ok && len(v) == 4 {
			h.gw = packet.IP4{v[0], v[1], v[2], v[3]}
		}
		if v, ok := msg.Option(packet.DHCPOptDNSServer); ok && len(v) >= 4 {
			h.dns = packet.IP4{v[0], v[1], v[2], v[3]}
		}
		h.state = dhcpBound
	case packet.DHCPNak:
		h.state = dhcpDenied
	}
	h.mu.Unlock()
	if reply != nil {
		h.send(reply)
	}
}

func prefixLen(mask packet.IP4) int {
	v := mask.Uint32()
	n := 0
	for v&0x80000000 != 0 {
		n++
		v <<= 1
	}
	return n
}

// Resolve looks up a name via the configured DNS server, invoking cb with
// the answer (or ok=false on NXDOMAIN/refusal).
func (h *Host) Resolve(name string, cb func(packet.IP4, bool)) {
	h.mu.Lock()
	if ip, ok := h.resolved[name]; ok {
		h.mu.Unlock()
		cb(ip, true)
		return
	}
	h.nextDNS++
	id := h.nextDNS
	h.dnsWait[id] = dnsQuery{name: name, cb: cb}
	dnsIP := h.dns
	h.mu.Unlock()
	if dnsIP.IsZero() {
		cb(packet.IP4{}, false)
		return
	}
	q := packet.NewDNSQuery(id, name, packet.DNSTypeA)
	raw, err := q.Bytes()
	if err != nil {
		cb(packet.IP4{}, false)
		return
	}
	h.sendUDP(dnsIP, 5353, packet.DNSPort, raw)
}

func (h *Host) handleDNS(d *packet.Decoded) {
	var msg packet.DNS
	if err := msg.DecodeFromBytes(d.UDP.Payload); err != nil {
		return
	}
	h.mu.Lock()
	q, ok := h.dnsWait[msg.ID]
	if ok {
		delete(h.dnsWait, msg.ID)
	}
	h.mu.Unlock()
	if !ok {
		return
	}
	for _, rr := range msg.Answers {
		if ip, isA := rr.A(); isA {
			h.mu.Lock()
			h.resolved[q.name] = ip
			h.mu.Unlock()
			q.cb(ip, true)
			return
		}
	}
	q.cb(packet.IP4{}, false)
}

// handleData feeds inbound transport packets to the apps (for echo-style
// protocols) — the default host simply absorbs them.
func (h *Host) handleData(d *packet.Decoded) {
	h.mu.Lock()
	apps := append([]*App(nil), h.apps...)
	h.mu.Unlock()
	for _, a := range apps {
		a.deliver(d)
	}
}

// sendUDP emits a UDP datagram through the routing logic. The frame is
// serialized in one pass into the step batch (when Network.Step is
// driving the host) or a borrowed scratch buffer, so steady-state sends
// do not allocate.
func (h *Host) sendUDP(dst packet.IP4, srcPort, dstPort uint16, payload []byte) {
	h.mu.Lock()
	src := h.ip
	fb := h.batch
	var ext []byte
	start := 0
	if fb != nil {
		start = len(fb.Buf())
		ext = packet.AppendUDPFrame(fb.Buf(), h.MAC, packet.MAC{}, src, dst, srcPort, dstPort, payload)
	} else {
		ext = packet.AppendUDPFrame(h.txBufLocked(), h.MAC, packet.MAC{}, src, dst, srcPort, dstPort, payload)
	}
	h.finishSendLocked(dst, ext, ext[start:], fb)
}

// sendTCP emits a TCP segment through the routing logic; see sendUDP for
// the buffering scheme.
func (h *Host) sendTCP(dst packet.IP4, srcPort, dstPort uint16, flags uint8, seq uint32, payload []byte) {
	h.mu.Lock()
	src := h.ip
	fb := h.batch
	var ext []byte
	start := 0
	if fb != nil {
		start = len(fb.Buf())
		ext = packet.AppendTCPFrame(fb.Buf(), h.MAC, packet.MAC{}, src, dst, srcPort, dstPort, flags, seq, 0, payload)
	} else {
		ext = packet.AppendTCPFrame(h.txBufLocked(), h.MAC, packet.MAC{}, src, dst, srcPort, dstPort, flags, seq, 0, payload)
	}
	h.finishSendLocked(dst, ext, ext[start:], fb)
}

// finishSendLocked routes and transmits a frame just built under h.mu.
// ext is the whole extended buffer (the batch's backing buffer when fb is
// non-nil, else a borrowed scratch buffer) and frame the newly appended
// frame within it. It unlocks h.mu.
func (h *Host) finishSendLocked(dst packet.IP4, ext, frame []byte, fb *packet.FrameBatch) {
	ready, arpFor, myIP := h.routeLocked(dst, frame)
	if ready && fb != nil {
		fb.Commit(ext)
		h.mu.Unlock()
		return
	}
	h.mu.Unlock()
	if ready {
		h.send(frame)
		h.putTxBuf(ext)
		return
	}
	// Unroutable or queued pending ARP: a batch build is simply left
	// uncommitted; a scratch build is returned.
	if fb == nil {
		h.putTxBuf(ext)
	}
	if !arpFor.IsZero() {
		req := packet.NewARPRequest(h.MAC, myIP, arpFor)
		h.send(req.Bytes())
	}
}

// routeLocked resolves the next-hop MAC for a frame serialized with a
// zero destination MAC, patching it in place. Under a /32 lease every
// destination is off-link, so everything goes via the gateway — the
// Homework mechanism that forces all flows through the router. When the
// next hop's MAC is unresolved the frame is copied onto the ARP wait
// queue and the address to ARP for is returned. Caller holds h.mu.
func (h *Host) routeLocked(dst packet.IP4, frame []byte) (ready bool, arpFor, myIP packet.IP4) {
	nexthop := dst
	if h.mask < 32 {
		if dst.Mask(h.mask) != h.ip.Mask(h.mask) {
			nexthop = h.gw
		}
	} else {
		nexthop = h.gw
	}
	if nexthop.IsZero() {
		return false, packet.IP4{}, packet.IP4{}
	}
	if mac, known := h.arp[nexthop]; known {
		copy(frame[0:6], mac[:])
		return true, packet.IP4{}, packet.IP4{}
	}
	h.arpWait[nexthop] = append(h.arpWait[nexthop], append([]byte(nil), frame...))
	return false, nexthop, h.ip
}

// txBufLocked pops a transmit scratch buffer off the free-list (caller
// holds h.mu).
func (h *Host) txBufLocked() []byte {
	if n := len(h.txFree); n > 0 {
		b := h.txFree[n-1]
		h.txFree = h.txFree[:n-1]
		return b[:0]
	}
	return make([]byte, 0, 2048)
}

// putTxBuf returns a transmit scratch buffer to the free-list. The list
// is bounded by its preallocated capacity, so returning never allocates.
func (h *Host) putTxBuf(b []byte) {
	h.mu.Lock()
	if len(h.txFree) < cap(h.txFree) {
		h.txFree = append(h.txFree, b)
	}
	h.mu.Unlock()
}

// beginBatch enters the batching window: subsequent app sends serialize
// into the returned per-step batch instead of transmitting one by one.
// Only Network.Step calls this, and only one step runs per network at a
// time.
func (h *Host) beginBatch() *packet.FrameBatch {
	h.mu.Lock()
	if h.txBatch == nil {
		h.txBatch = &packet.FrameBatch{}
	}
	h.batch = h.txBatch
	h.mu.Unlock()
	return h.txBatch
}

// endBatch leaves the batching window; the caller then delivers the
// batch and resets it.
func (h *Host) endBatch() {
	h.mu.Lock()
	h.batch = nil
	h.mu.Unlock()
}

// ephemeralPort hands out client port numbers.
func (h *Host) ephemeralPort() uint16 {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.nextPort
	h.nextPort++
	if h.nextPort == 0 {
		h.nextPort = 49152
	}
	return p
}

// AddApp attaches a traffic application to the host.
func (h *Host) AddApp(a *App) {
	a.host = h
	a.srcPort = h.ephemeralPort()
	h.mu.Lock()
	h.apps = append(h.apps, a)
	h.mu.Unlock()
}

// Apps returns the host's applications.
func (h *Host) Apps() []*App {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*App(nil), h.apps...)
}

// appsSnapshot returns the apps slice without copying: the list is
// append-only, so a slice-header snapshot taken under the lock is an
// immutable view (the tick path uses this to avoid a per-host copy per
// step).
func (h *Host) appsSnapshot() []*App {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.apps
}

// String identifies the host in logs.
func (h *Host) String() string { return fmt.Sprintf("%s(%s)", h.Name, h.MAC) }
