// Package netsim simulates the home network the Homework router manages:
// wired and wireless hosts with small DHCP/ARP/DNS client stacks, traffic
// applications (web, video streaming, VoIP, peer-to-peer, IoT telemetry),
// a log-distance wireless propagation model producing per-station RSSI and
// retry counts, and an upstream host standing in for the ISP and the
// public Internet.
//
// The simulator substitutes for the paper's physical testbed (a small
// form-factor PC with real Ethernet/WiFi ports): frames enter the datapath
// through switch ports, so the OpenFlow pipeline, the NOX modules and the
// measurement plane all run exactly as they would against hardware.
//
// Concurrency: drive Step from one goroutine at a time; frames also
// re-enter concurrently from the control plane (packet-outs delivered on
// the secure-channel goroutine), so per-host and network-wide state are
// mutex-guarded. Host stacks respond to deliveries synchronously on the
// delivering goroutine — a DHCP OFFER produces its REQUEST before
// Deliver returns — which is the property the control plane's
// quiescence protocol relies on (docs/CONTROL_PLANE.md).
package netsim

import (
	"math"
	"math/rand"
	"sync"
)

// Pos is a position in the home, in metres; the router sits at the origin.
type Pos struct{ X, Y float64 }

// Dist returns the Euclidean distance between two positions.
func (p Pos) Dist(q Pos) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Wireless is a log-distance path-loss model with shadowing:
//
//	RSSI(d) = TxPower - (PL0 + 10·n·log10(d/D0)) + N(0, Shadow)
//
// mapped onto delivery probability and 802.11g rate tiers.
type Wireless struct {
	TxPower  float64 // dBm at the antenna
	PL0      float64 // path loss at reference distance, dB
	Exponent float64 // path-loss exponent n
	D0       float64 // reference distance, metres
	Shadow   float64 // shadowing stddev, dB

	mu           sync.Mutex
	rng          *rand.Rand
	interference float64 // extra attenuation, dB (chaos episodes)
}

// DefaultWireless returns parameters typical of a 2.4 GHz home deployment.
func DefaultWireless(seed int64) *Wireless {
	return &Wireless{
		TxPower:  20,
		PL0:      40,
		Exponent: 3.0, // indoor with walls
		D0:       1,
		Shadow:   2.0,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// SetInterference adds db decibels of attenuation to every subsequent
// RSSI sample — a microwave oven, a neighbouring AP, a chaos episode.
// Zero restores the clean channel. Safe to call concurrently with RSSI.
func (w *Wireless) SetInterference(db float64) {
	w.mu.Lock()
	w.interference = db
	w.mu.Unlock()
}

// Interference returns the extra attenuation currently applied, in dB.
func (w *Wireless) Interference() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.interference
}

// RSSI returns the received signal strength in dBm at distance d metres.
func (w *Wireless) RSSI(d float64) int {
	if d < w.D0 {
		d = w.D0
	}
	pl := w.PL0 + 10*w.Exponent*math.Log10(d/w.D0)
	w.mu.Lock()
	shadow := w.rng.NormFloat64()*w.Shadow - w.interference
	w.mu.Unlock()
	return int(math.Round(w.TxPower - pl + shadow))
}

// DeliveryProb maps RSSI to first-attempt frame delivery probability: ~1
// above -65 dBm falling to ~0 below -90 dBm.
func (w *Wireless) DeliveryProb(rssi int) float64 {
	// Logistic centred at -80 dBm with a 4 dB slope.
	return 1 / (1 + math.Exp(-(float64(rssi)+80)/4))
}

// Retries samples how many retransmissions a frame needs at the given RSSI
// before success (capped at max; the frame is lost if the cap is hit).
func (w *Wireless) Retries(rssi int, max int) (retries int, delivered bool) {
	p := w.DeliveryProb(rssi)
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := 0; i <= max; i++ {
		if w.rng.Float64() < p {
			return i, true
		}
	}
	return max, false
}

// Rate maps RSSI to an 802.11g PHY rate in Mbit/s.
func (w *Wireless) Rate(rssi int) float64 {
	switch {
	case rssi >= -55:
		return 54
	case rssi >= -60:
		return 48
	case rssi >= -65:
		return 36
	case rssi >= -70:
		return 24
	case rssi >= -75:
		return 18
	case rssi >= -80:
		return 12
	case rssi >= -85:
		return 9
	default:
		return 6
	}
}
