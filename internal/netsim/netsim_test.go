package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/datapath"
	"repro/internal/packet"
)

func TestWirelessRSSIMonotoneInDistance(t *testing.T) {
	w := DefaultWireless(1)
	w.Shadow = 0 // deterministic
	prev := math.Inf(1)
	for _, d := range []float64{1, 2, 5, 10, 20, 40} {
		r := float64(w.RSSI(d))
		if r > prev {
			t.Errorf("RSSI(%gm) = %g > RSSI at shorter distance %g", d, r, prev)
		}
		prev = r
	}
}

func TestWirelessDeliveryProb(t *testing.T) {
	w := DefaultWireless(1)
	if p := w.DeliveryProb(-50); p < 0.99 {
		t.Errorf("strong signal delivery = %g", p)
	}
	if p := w.DeliveryProb(-95); p > 0.05 {
		t.Errorf("weak signal delivery = %g", p)
	}
	if w.DeliveryProb(-70) <= w.DeliveryProb(-85) {
		t.Error("delivery probability not monotone in RSSI")
	}
}

func TestWirelessRateTiers(t *testing.T) {
	w := DefaultWireless(1)
	if w.Rate(-40) != 54 || w.Rate(-90) != 6 {
		t.Errorf("rate tiers wrong: %g, %g", w.Rate(-40), w.Rate(-90))
	}
	prev := w.Rate(-40)
	for rssi := -45; rssi >= -90; rssi -= 5 {
		r := w.Rate(rssi)
		if r > prev {
			t.Errorf("Rate(%d) = %g increases as signal weakens", rssi, r)
		}
		prev = r
	}
}

func TestWirelessRetriesDistribution(t *testing.T) {
	w := DefaultWireless(42)
	// At strong signal nearly everything delivers on the first attempt.
	total, fails := 0, 0
	for i := 0; i < 500; i++ {
		r, ok := w.Retries(-50, 7)
		total += r
		if !ok {
			fails++
		}
	}
	if fails > 0 || total > 50 {
		t.Errorf("strong signal: %d fails, %d retries", fails, total)
	}
	// At very weak signal, losses occur.
	fails = 0
	for i := 0; i < 500; i++ {
		if _, ok := w.Retries(-95, 3); !ok {
			fails++
		}
	}
	if fails == 0 {
		t.Error("no losses at -95 dBm")
	}
}

func TestPosDist(t *testing.T) {
	if d := (Pos{3, 4}).Dist(Pos{0, 0}); d != 5 {
		t.Errorf("Dist = %g", d)
	}
}

func TestRetriesQuickNeverExceedMax(t *testing.T) {
	w := DefaultWireless(7)
	f := func(rssi int8, max uint8) bool {
		m := int(max % 16)
		r, _ := w.Retries(int(rssi), m)
		return r >= 0 && r <= m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNetworkAddHostAndPorts(t *testing.T) {
	dp := datapath.New(datapath.Config{ID: 1})
	n := New(dp, DefaultWireless(1))
	h, err := n.AddHost("laptop", packet.MustMAC("02:aa:00:00:00:01"), true, Pos{X: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Host(h.MAC); !ok {
		t.Error("host not registered")
	}
	if _, err := n.AddHost("dup", h.MAC, false, Pos{}); err == nil {
		t.Error("duplicate MAC accepted")
	}
	if len(n.Hosts()) != 1 {
		t.Errorf("hosts = %d", len(n.Hosts()))
	}
	// The host has a datapath port delivering to it.
	if _, ok := dp.Port(1); !ok {
		t.Error("no datapath port for host")
	}
}

func TestLinkInfosTrackPosition(t *testing.T) {
	dp := datapath.New(datapath.Config{ID: 1})
	w := DefaultWireless(1)
	w.Shadow = 0
	n := New(dp, w)
	h, _ := n.AddHost("phone", packet.MustMAC("02:aa:00:00:00:01"), true, Pos{X: 1})
	near := n.LinkInfos()[0].RSSI
	h.MoveTo(Pos{X: 30})
	far := n.LinkInfos()[0].RSSI
	if far >= near {
		t.Errorf("RSSI near=%d far=%d", near, far)
	}
}

func TestUpstreamDNSZone(t *testing.T) {
	u := NewUpstream()
	ip, ok := u.Lookup("facebook.com")
	if !ok || ip != packet.MustIP4("157.240.1.35") {
		t.Errorf("Lookup = %v, %v", ip, ok)
	}
	name, ok := u.ReverseLookup(ip)
	if !ok || (name != "facebook.com" && name != "www.facebook.com") {
		t.Errorf("ReverseLookup = %q, %v", name, ok)
	}
	u.AddZone("new.example", packet.MustIP4("1.2.3.4"))
	if _, ok := u.Lookup("new.example"); !ok {
		t.Error("AddZone failed")
	}
	if _, ok := u.Lookup("no.such.name"); ok {
		t.Error("phantom zone entry")
	}
}

// A multi-name address must resolve to the same name on every run: the
// canonical name is the shortest, ties broken lexicographically,
// independent of zone-map iteration order.
func TestReverseLookupDeterministic(t *testing.T) {
	want := map[string]string{
		"157.240.1.35":   "facebook.com",
		"142.250.180.14": "youtube.com",
		"151.101.0.81":   "bbc.co.uk",
		"93.184.216.34":  "example.com",
	}
	for i := 0; i < 20; i++ {
		u := NewUpstream()
		for addr, name := range want {
			got, ok := u.ReverseLookup(packet.MustIP4(addr))
			if !ok || got != name {
				t.Fatalf("run %d: ReverseLookup(%s) = %q, %v; want %q", i, addr, got, ok, name)
			}
		}
	}
}

func TestReverseLookupFollowsZoneChanges(t *testing.T) {
	u := NewUpstream()
	ip := packet.MustIP4("198.51.100.7")
	// Later-but-shorter and tie-length names must win deterministically.
	u.AddZone("bb.example", ip)
	u.AddZone("aa.example", ip)
	if name, _ := u.ReverseLookup(ip); name != "aa.example" {
		t.Errorf("tie-break = %q, want aa.example", name)
	}
	u.AddZone("x.example", ip)
	if name, _ := u.ReverseLookup(ip); name != "x.example" {
		t.Errorf("shorter name did not win: %q", name)
	}
	// Retargeting the canonical name away must fall back to the next
	// preferred name for the old address.
	u.AddZone("x.example", packet.MustIP4("198.51.100.8"))
	if name, _ := u.ReverseLookup(ip); name != "aa.example" {
		t.Errorf("after retarget = %q, want aa.example", name)
	}
	if name, _ := u.ReverseLookup(packet.MustIP4("198.51.100.8")); name != "x.example" {
		t.Errorf("retargeted address = %q, want x.example", name)
	}
}

// Network.Step must hand each host's tick of traffic to the datapath as
// one batch with the same per-frame outcome as frame-by-frame receive.
func TestStepBatchesHostTraffic(t *testing.T) {
	dp := datapath.New(datapath.Config{ID: 1})
	n := New(dp, DefaultWireless(1))
	h, err := n.AddHost("gen", packet.MustMAC("02:aa:00:00:00:01"), false, Pos{})
	if err != nil {
		t.Fatal(err)
	}
	gwMAC := packet.MustMAC("02:01:00:00:00:01")
	h.mu.Lock()
	h.state = dhcpBound
	h.ip = packet.MustIP4("192.168.1.10")
	h.gw = packet.MustIP4("192.168.1.1")
	h.mask = 32
	h.arp[h.gw] = gwMAC
	h.mu.Unlock()

	a := NewApp(AppVoIP, "10.0.0.9", 16000)
	h.AddApp(a)
	n.Step(0) // resolve the literal target
	n.Step(0.5)

	// Every emitted frame reached the (empty-table) datapath and punted;
	// port counters were charged for the whole batch.
	p, _ := dp.Port(1)
	stats := p.Stats()
	wantFrames := uint64(a.SentBytes())/160 + 0 // 160-byte VoIP packets
	if stats.RxPackets == 0 || stats.RxPackets != wantFrames {
		t.Errorf("rx packets = %d, want %d", stats.RxPackets, wantFrames)
	}
	if dp.PuntCount() != wantFrames {
		t.Errorf("punts = %d, want %d", dp.PuntCount(), wantFrames)
	}
}

func TestHostEphemeralPortsAdvance(t *testing.T) {
	h := newHost("x", packet.MAC{1}, false, Pos{})
	p1 := h.ephemeralPort()
	p2 := h.ephemeralPort()
	if p1 == p2 || p2 != p1+1 {
		t.Errorf("ports %d, %d", p1, p2)
	}
}

func TestAppProfiles(t *testing.T) {
	cases := []struct {
		kind  AppKind
		port  uint16
		proto packet.IPProto
	}{
		{AppWeb, 80, packet.ProtoTCP},
		{AppVideo, 443, packet.ProtoTCP},
		{AppVoIP, 5060, packet.ProtoUDP},
		{AppP2P, 6881, packet.ProtoTCP},
		{AppIoT, 8883, packet.ProtoUDP},
		{AppDNS, 53, packet.ProtoUDP},
	}
	for _, c := range cases {
		a := NewApp(c.kind, "example.com", 1000)
		if a.DstPort() != c.port || a.Proto() != c.proto {
			t.Errorf("%v: port=%d proto=%v", c.kind, a.DstPort(), a.Proto())
		}
		if c.kind.String() == "app" {
			t.Errorf("%v has no name", c.kind)
		}
	}
}

func TestAppRateAccounting(t *testing.T) {
	// An app on a bound host emits RateBps*seconds payload bytes.
	dp := datapath.New(datapath.Config{ID: 1})
	n := New(dp, DefaultWireless(1))
	h, _ := n.AddHost("gen", packet.MustMAC("02:aa:00:00:00:01"), false, Pos{})
	// Short-circuit DHCP: force a bound lease state.
	h.mu.Lock()
	h.state = dhcpBound
	h.ip = packet.MustIP4("192.168.1.10")
	h.gw = packet.MustIP4("192.168.1.1")
	h.mask = 32
	h.arp[h.gw] = packet.MustMAC("02:01:00:00:00:01")
	h.mu.Unlock()

	a := NewApp(AppVoIP, "10.0.0.9", 16000)
	h.AddApp(a)
	n.Step(0) // first step resolves the (literal) target
	for i := 0; i < 10; i++ {
		n.Step(0.1) // 1 second total
	}
	sent := a.SentBytes()
	if sent < 15000 || sent > 17000 {
		t.Errorf("sent %d bytes, want ~16000", sent)
	}
}
