package netsim

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/datapath"
	"repro/internal/packet"
)

// LinkInfo is the link-layer state of one station, as the router's WiFi
// driver would report it; the measurement plane polls it into the hwdb
// Links table.
type LinkInfo struct {
	MAC     packet.MAC
	RSSI    int
	Retries int // cumulative retransmissions
	Rate    float64
}

// Network wires simulated hosts to datapath ports and applies the wireless
// model on station uplinks.
type Network struct {
	dp       *datapath.Datapath
	wireless *Wireless
	routerAt Pos

	mu       sync.Mutex
	hosts    map[packet.MAC]*Host
	byPort   map[uint16]*Host
	upstream *Upstream
	nextPort uint16
	links    map[packet.MAC]*LinkInfo
	maxRetry int
	directL2 bool
	bypass   uint64  // frames delivered host-to-host without the router
	ordered  []*Host // port-ordered host cache; nil when membership changed

	// Link-fault injection (chaos): while faultDen > 0, faultNum out of
	// every faultDen host frames are dropped on their way into the
	// datapath, counted on the transmitting port's rx-drop counter. The
	// drop pattern is a deterministic counter, not a coin flip, so the
	// loss is partial and reproducible — the measurement plane only
	// attributes drops to flows that stayed active in the round.
	faultNum  int
	faultDen  int
	faultCtr  uint64
	faultDrop uint64
}

// New creates a network around an existing datapath. Wireless hosts are
// attached with the given propagation model (DefaultWireless if nil).
func New(dp *datapath.Datapath, w *Wireless) *Network {
	if w == nil {
		w = DefaultWireless(1)
	}
	return &Network{
		dp:       dp,
		wireless: w,
		hosts:    make(map[packet.MAC]*Host),
		byPort:   make(map[uint16]*Host),
		links:    make(map[packet.MAC]*LinkInfo),
		nextPort: 1,
		maxRetry: 7,
	}
}

// Datapath returns the underlying switch.
func (n *Network) Datapath() *datapath.Datapath { return n.dp }

// Wireless returns the propagation model applied to station uplinks (the
// chaos layer's hook for interference bursts).
func (n *Network) Wireless() *Wireless { return n.wireless }

// SetLinkFault makes the host fabric drop num out of every den frames on
// the way into the datapath — a flapping cable, a failing switch chip.
// num <= 0 (or den <= 0) clears the fault. Drops land on the
// transmitting port's rx-drop counter so the measurement plane
// attributes the loss to the flows crossing it.
func (n *Network) SetLinkFault(num, den int) {
	n.mu.Lock()
	n.faultNum, n.faultDen = num, den
	n.faultCtr = 0
	n.mu.Unlock()
}

// LinkFaultDrops returns how many frames the injected link fault has
// discarded since the network came up.
func (n *Network) LinkFaultDrops() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.faultDrop
}

// linkFaultDrop advances the fault pattern by one frame and reports
// whether that frame is dropped.
func (n *Network) linkFaultDrop() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.faultNum <= 0 || n.faultDen <= 0 {
		return false
	}
	n.faultCtr++
	if int(n.faultCtr%uint64(n.faultDen)) < n.faultNum {
		n.faultDrop++
		return true
	}
	return false
}

// AddHost creates a host, attaches it to a fresh datapath port, and
// returns it. Wireless hosts are subject to the propagation model.
func (n *Network) AddHost(name string, mac packet.MAC, wireless bool, pos Pos) (*Host, error) {
	h := newHost(name, mac, wireless, pos)
	h.net = n
	n.mu.Lock()
	if _, dup := n.hosts[mac]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("netsim: duplicate MAC %s", mac)
	}
	port := n.nextPort
	n.nextPort++
	h.port = port
	n.hosts[mac] = h
	n.byPort[port] = h
	n.ordered = nil
	if wireless {
		n.links[mac] = &LinkInfo{MAC: mac, RSSI: n.wireless.RSSI(pos.Dist(n.routerAt)), Rate: 54}
	}
	n.mu.Unlock()

	err := n.dp.AddPort(&datapath.Port{
		No: port, Name: fmt.Sprintf("port%d-%s", port, name), HWAddr: mac,
		Out: func(frame []byte) { h.Deliver(frame) },
	})
	if err != nil {
		return nil, err
	}
	return h, nil
}

// RemoveHost detaches a host from its datapath port and forgets its link
// state: the device left the home (fleet churn, or simply powered off).
// The host object stays usable as a record but can no longer transmit.
func (n *Network) RemoveHost(mac packet.MAC) error {
	n.mu.Lock()
	h, ok := n.hosts[mac]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("netsim: no host %s", mac)
	}
	delete(n.hosts, mac)
	delete(n.byPort, h.port)
	delete(n.links, mac)
	n.ordered = nil
	n.mu.Unlock()
	n.dp.RemovePort(h.port)
	return nil
}

// Host returns a host by MAC.
func (n *Network) Host(mac packet.MAC) (*Host, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[mac]
	return h, ok
}

// HostCount returns the number of attached hosts without building the
// slice Hosts allocates — telemetry reads it once per home per commit.
func (n *Network) HostCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.hosts)
}

// Hosts returns all hosts.
func (n *Network) Hosts() []*Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		out = append(out, h)
	}
	return out
}

// AttachUpstream creates the upstream (ISP + Internet) host on a fresh
// port and returns it.
func (n *Network) AttachUpstream(u *Upstream) (uint16, error) {
	n.mu.Lock()
	port := n.nextPort
	n.nextPort++
	n.upstream = u
	n.mu.Unlock()
	u.net = n
	u.port = port
	err := n.dp.AddPort(&datapath.Port{
		No: port, Name: "eth0-upstream", HWAddr: u.MAC,
		Out: func(frame []byte) { u.Deliver(frame) },
	})
	if err != nil {
		return 0, err
	}
	return port, nil
}

// UpstreamPort returns the upstream's port number (0 if not attached).
func (n *Network) UpstreamPort() uint16 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.upstream == nil {
		return 0
	}
	return n.upstream.port
}

// SetDirectL2 models a conventional home switch fabric: frames addressed
// to another host's MAC are delivered directly, bypassing the router's
// datapath. Meaningful only with /24 leases (under the Homework /32 scheme
// hosts never address each other at layer 2) — the ablation that shows why
// the paper's DHCP trick matters.
func (n *Network) SetDirectL2(on bool) {
	n.mu.Lock()
	n.directL2 = on
	n.mu.Unlock()
}

// BypassedFrames counts frames that crossed host-to-host without ever
// reaching the router (invisible traffic).
func (n *Network) BypassedFrames() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.bypass
}

// fromHost carries a host transmission onto its switch port, applying the
// wireless model on station uplinks.
func (n *Network) fromHost(h *Host, frame []byte) {
	if h.Wireless {
		rssi := n.wireless.RSSI(h.Pos().Dist(n.routerAt))
		retries, delivered := n.wireless.Retries(rssi, n.maxRetry)
		n.mu.Lock()
		li := n.links[h.MAC]
		if li == nil {
			li = &LinkInfo{MAC: h.MAC}
			n.links[h.MAC] = li
		}
		li.RSSI = rssi
		li.Retries += retries
		li.Rate = n.wireless.Rate(rssi)
		n.mu.Unlock()
		if !delivered {
			if p, ok := n.dp.Port(h.port); ok {
				p.CountRxDrop()
			}
			return
		}
	}
	if n.linkFaultDrop() {
		if p, ok := n.dp.Port(h.port); ok {
			p.CountRxDrop()
		}
		return
	}

	// Conventional-switch shortcut (ablation): unicast frames between
	// hosts never reach the router.
	n.mu.Lock()
	direct := n.directL2
	n.mu.Unlock()
	if direct {
		var e packet.Ethernet
		if err := e.DecodeFromBytes(frame); err == nil && !e.Dst.IsBroadcast() && !e.Dst.IsMulticast() {
			if peer, ok := n.Host(e.Dst); ok && peer != h {
				n.mu.Lock()
				n.bypass++
				n.mu.Unlock()
				peer.Deliver(frame)
				return
			}
		}
		// Broadcasts reach every host on the segment as well as the router.
		if err := e.DecodeFromBytes(frame); err == nil && e.Dst.IsBroadcast() {
			for _, peer := range n.Hosts() {
				if peer != h {
					peer.Deliver(frame)
				}
			}
		}
	}
	n.dp.Receive(h.port, frame)
}

// fromUpstreamBatch carries a batch of upstream transmissions onto the
// uplink port in one datapath call.
func (n *Network) fromUpstreamBatch(u *Upstream, fb *packet.FrameBatch) {
	n.dp.ReceiveBatch(u.port, fb)
}

// LinkInfos returns a snapshot of wireless link state for every station,
// refreshing RSSI from current positions (so a silent station still
// reports signal strength, as the artifact's walk-through mode needs).
func (n *Network) LinkInfos() []LinkInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]LinkInfo, 0, len(n.links))
	for mac, li := range n.links {
		if h, ok := n.hosts[mac]; ok {
			li.RSSI = n.wireless.RSSI(h.Pos().Dist(n.routerAt))
			li.Rate = n.wireless.Rate(li.RSSI)
		}
		out = append(out, *li)
	}
	return out
}

// Step advances every application by dt seconds of simulated traffic.
// Hosts are stepped in ascending port order (not map order), so a tick's
// emission sequence is deterministic. Each host's application traffic is
// serialized into a per-step frame batch and handed to the datapath in
// one call, amortizing port lookup, receive accounting and frame decode
// state across the tick; the batch's backing buffer is reused across
// ticks, so steady-state traffic generation does not allocate. Frames
// handed to the datapath alias that buffer and are only valid within the
// tick.
func (n *Network) Step(dt float64) {
	for _, h := range n.orderedHosts() {
		fb := h.beginBatch()
		for _, a := range h.appsSnapshot() {
			a.Step(dt)
		}
		h.endBatch()
		n.deliverBatch(h, fb)
	}
}

// orderedHosts returns the hosts sorted by port number. The list is
// cached and rebuilt only when membership changes, so a steady-state
// tick does not allocate or sort; the returned snapshot stays valid (and
// immutable) even if a host joins or leaves mid-iteration.
func (n *Network) orderedHosts() []*Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ordered == nil {
		out := make([]*Host, 0, len(n.hosts))
		for _, h := range n.hosts {
			out = append(out, h)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].port < out[j].port })
		n.ordered = out
	}
	return n.ordered
}

// deliverBatch injects one host's per-step batch into the datapath. Wired
// hosts on the plain fabric take the batched fast path; wireless hosts
// (per-frame loss model) and the direct-L2 ablation fall back to the
// frame-by-frame path.
func (n *Network) deliverBatch(h *Host, fb *packet.FrameBatch) {
	defer fb.Reset()
	if fb.Len() == 0 {
		return
	}
	n.mu.Lock()
	direct := n.directL2
	faulty := n.faultNum > 0 && n.faultDen > 0
	n.mu.Unlock()
	if h.Wireless || direct || faulty {
		for i := 0; i < fb.Len(); i++ {
			n.fromHost(h, fb.Frame(i))
		}
		return
	}
	n.dp.ReceiveBatch(h.port, fb)
}
