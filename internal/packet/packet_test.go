package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMACString(t *testing.T) {
	m := MAC{0x00, 0x1c, 0xb3, 0x09, 0x85, 0x15}
	if got, want := m.String(), "00:1c:b3:09:85:15"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestParseMACRoundTrip(t *testing.T) {
	for _, s := range []string{"00:00:00:00:00:00", "ff:ff:ff:ff:ff:ff", "02:20:11:ab:cd:ef"} {
		m, err := ParseMAC(s)
		if err != nil {
			t.Fatalf("ParseMAC(%q): %v", s, err)
		}
		if m.String() != s {
			t.Errorf("round trip %q -> %q", s, m.String())
		}
	}
}

func TestParseMACRejects(t *testing.T) {
	for _, s := range []string{"", "nonsense", "00:00:00:00:00", "zz:00:00:00:00:00"} {
		if _, err := ParseMAC(s); err == nil {
			t.Errorf("ParseMAC(%q) unexpectedly succeeded", s)
		}
	}
}

func TestMACPredicates(t *testing.T) {
	if !Broadcast.IsBroadcast() || !Broadcast.IsMulticast() {
		t.Error("broadcast predicates wrong")
	}
	if (MAC{0x02, 0, 0, 0, 0, 1}).IsMulticast() {
		t.Error("unicast reported as multicast")
	}
	if !(MAC{0x01, 0, 0x5e, 0, 0, 1}).IsMulticast() {
		t.Error("group address not reported as multicast")
	}
	if !(MAC{}).IsZero() || Broadcast.IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestIP4RoundTrip(t *testing.T) {
	ip := MustIP4("192.168.1.77")
	if ip.String() != "192.168.1.77" {
		t.Errorf("String() = %q", ip.String())
	}
	if IP4FromUint32(ip.Uint32()) != ip {
		t.Error("Uint32 round trip failed")
	}
}

func TestParseIP4Rejects(t *testing.T) {
	for _, s := range []string{"", "256.1.1.1", "1.2.3", "a.b.c.d"} {
		if _, err := ParseIP4(s); err == nil {
			t.Errorf("ParseIP4(%q) unexpectedly succeeded", s)
		}
	}
}

func TestIP4Mask(t *testing.T) {
	ip := MustIP4("192.168.13.77")
	cases := []struct {
		prefix int
		want   string
	}{
		{32, "192.168.13.77"},
		{24, "192.168.13.0"},
		{16, "192.168.0.0"},
		{8, "192.0.0.0"},
		{0, "0.0.0.0"},
	}
	for _, c := range cases {
		if got := ip.Mask(c.prefix).String(); got != c.want {
			t.Errorf("Mask(%d) = %s, want %s", c.prefix, got, c.want)
		}
	}
}

func TestIP4Predicates(t *testing.T) {
	if !MustIP4("255.255.255.255").IsBroadcast() {
		t.Error("broadcast not detected")
	}
	if !MustIP4("224.0.0.251").IsMulticast() || MustIP4("192.168.1.1").IsMulticast() {
		t.Error("multicast detection wrong")
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst: MustMAC("aa:bb:cc:dd:ee:ff"), Src: MustMAC("11:22:33:44:55:66"),
		Type: EtherTypeIPv4, Payload: []byte("hello"),
	}
	var got Ethernet
	if err := got.DecodeFromBytes(e.Bytes()); err != nil {
		t.Fatal(err)
	}
	if got.Dst != e.Dst || got.Src != e.Src || got.Type != e.Type || !bytes.Equal(got.Payload, e.Payload) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestEthernetVLANRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst: Broadcast, Src: MustMAC("11:22:33:44:55:66"),
		Type: EtherTypeARP, Tagged: true, VLANID: 42, VLANPriority: 5,
		Payload: []byte{1, 2, 3},
	}
	var got Ethernet
	if err := got.DecodeFromBytes(e.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !got.Tagged || got.VLANID != 42 || got.VLANPriority != 5 || got.Type != EtherTypeARP {
		t.Errorf("VLAN round trip mismatch: %+v", got)
	}
}

func TestEthernetTruncated(t *testing.T) {
	var e Ethernet
	if err := e.DecodeFromBytes(make([]byte, 13)); err != ErrTruncated {
		t.Errorf("want ErrTruncated, got %v", err)
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := ARP{
		Op:       ARPRequest,
		SenderHW: MustMAC("11:22:33:44:55:66"), SenderIP: MustIP4("10.0.0.1"),
		TargetHW: MAC{}, TargetIP: MustIP4("10.0.0.2"),
	}
	var got ARP
	if err := got.DecodeFromBytes(a.Bytes()); err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Errorf("round trip mismatch: %+v != %+v", got, a)
	}
}

func TestARPHelpers(t *testing.T) {
	hw := MustMAC("11:22:33:44:55:66")
	req := NewARPRequest(hw, MustIP4("10.0.0.1"), MustIP4("10.0.0.2"))
	var d Decoded
	if err := d.Decode(req.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !d.HasARP || d.ARP.Op != ARPRequest || !d.Eth.Dst.IsBroadcast() {
		t.Fatalf("bad request: %+v", d.ARP)
	}
	rep := NewARPReply(MustMAC("66:55:44:33:22:11"), MustIP4("10.0.0.2"), &d.ARP)
	if err := d.Decode(rep.Bytes()); err != nil {
		t.Fatal(err)
	}
	if d.ARP.Op != ARPReply || d.ARP.TargetHW != hw || d.Eth.Dst != hw {
		t.Fatalf("bad reply: %+v", d.ARP)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	ip := IPv4{
		TOS: 0x10, ID: 4711, Flags: IPv4DontFragment, TTL: 64,
		Protocol: ProtoUDP, Src: MustIP4("10.0.0.1"), Dst: MustIP4("10.0.0.2"),
		Payload: []byte("payload!"),
	}
	var got IPv4
	if err := got.DecodeFromBytes(ip.Bytes()); err != nil {
		t.Fatal(err)
	}
	if got.Src != ip.Src || got.Dst != ip.Dst || got.TTL != 64 ||
		got.Protocol != ProtoUDP || !bytes.Equal(got.Payload, ip.Payload) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestIPv4ChecksumValidates(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: ProtoTCP, Src: MustIP4("1.2.3.4"), Dst: MustIP4("5.6.7.8")}
	raw := ip.Bytes()
	if cs := Checksum(raw[:IPv4HeaderLen], 0); cs != 0 {
		t.Errorf("header checksum does not verify: %04x", cs)
	}
	raw[8] = 63 // corrupt TTL
	if cs := Checksum(raw[:IPv4HeaderLen], 0); cs == 0 {
		t.Error("corrupted header still verifies")
	}
}

func TestIPv4RejectsBadVersion(t *testing.T) {
	ip := IPv4{TTL: 1, Protocol: ProtoUDP}
	raw := ip.Bytes()
	raw[0] = 0x65 // version 6
	var got IPv4
	if err := got.DecodeFromBytes(raw); err != ErrMalformed {
		t.Errorf("want ErrMalformed, got %v", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	src, dst := MustIP4("10.0.0.1"), MustIP4("10.0.0.2")
	u := UDP{SrcPort: 5353, DstPort: 53, Payload: []byte("query")}
	var got UDP
	if err := got.DecodeFromBytes(u.Bytes(src, dst)); err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 5353 || got.DstPort != 53 || !bytes.Equal(got.Payload, u.Payload) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestUDPChecksumValidates(t *testing.T) {
	src, dst := MustIP4("10.0.0.1"), MustIP4("10.0.0.2")
	u := UDP{SrcPort: 1000, DstPort: 2000, Payload: []byte("abcde")}
	raw := u.Bytes(src, dst)
	sum := Checksum(raw, pseudoHeaderSum(src, dst, ProtoUDP, len(raw)))
	if sum != 0 && sum != 0xffff {
		t.Errorf("UDP checksum does not verify: %04x", sum)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	src, dst := MustIP4("10.0.0.1"), MustIP4("93.184.216.34")
	tc := TCP{
		SrcPort: 49152, DstPort: 443, Seq: 1e9, Ack: 77,
		Flags: TCPSyn | TCPAck, Window: 29200, Payload: []byte("tls hello"),
	}
	var got TCP
	if err := got.DecodeFromBytes(tc.Bytes(src, dst)); err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != tc.SrcPort || got.DstPort != tc.DstPort || got.Seq != tc.Seq ||
		got.Flags != tc.Flags || !bytes.Equal(got.Payload, tc.Payload) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestICMPRoundTrip(t *testing.T) {
	c := ICMP{Type: ICMPEchoRequest, ID: 77, Seq: 3, Payload: []byte("ping")}
	var got ICMP
	if err := got.DecodeFromBytes(c.Bytes()); err != nil {
		t.Fatal(err)
	}
	if got.Type != c.Type || got.ID != 77 || got.Seq != 3 || !bytes.Equal(got.Payload, c.Payload) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if cs := Checksum(c.Bytes(), 0); cs != 0 {
		t.Errorf("ICMP checksum does not verify: %04x", cs)
	}
}

func TestDHCPRoundTrip(t *testing.T) {
	d := DHCP{
		Op: DHCPBootRequest, XID: 0xdeadbeef, Flags: 0x8000,
		CHAddr: MustMAC("11:22:33:44:55:66"), SName: "router", File: "boot.img",
	}
	d.AddMsgType(DHCPDiscover)
	d.AddOption(DHCPOptHostname, []byte("toms-mac-air"))
	var got DHCP
	if err := got.DecodeFromBytes(d.Bytes()); err != nil {
		t.Fatal(err)
	}
	if got.XID != d.XID || got.CHAddr != d.CHAddr || got.MsgType() != DHCPDiscover {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.Hostname() != "toms-mac-air" {
		t.Errorf("Hostname() = %q", got.Hostname())
	}
	if got.SName != "router" || got.File != "boot.img" {
		t.Errorf("sname/file = %q/%q", got.SName, got.File)
	}
	if len(got.Bytes()) < 300 {
		t.Error("DHCP message shorter than BOOTP minimum")
	}
}

func TestDHCPOptions(t *testing.T) {
	var d DHCP
	d.AddMsgType(DHCPOffer)
	d.AddIPOption(DHCPOptServerID, MustIP4("192.168.1.1"))
	d.AddIPOption(DHCPOptSubnetMask, MustIP4("255.255.255.255"))
	d.AddDurationOption(DHCPOptLeaseTime, 3600e9)
	d.Op = DHCPBootReply
	d.CHAddr = MustMAC("11:22:33:44:55:66")

	var got DHCP
	if err := got.DecodeFromBytes(d.Bytes()); err != nil {
		t.Fatal(err)
	}
	if sid, ok := got.ServerID(); !ok || sid != MustIP4("192.168.1.1") {
		t.Errorf("ServerID = %v, %v", sid, ok)
	}
	if mask, ok := got.SubnetMask(); !ok || mask != MustIP4("255.255.255.255") {
		t.Errorf("SubnetMask = %v, %v", mask, ok)
	}
	if lt, ok := got.LeaseTime(); !ok || lt.Seconds() != 3600 {
		t.Errorf("LeaseTime = %v, %v", lt, ok)
	}
}

func TestDHCPRejectsBadMagic(t *testing.T) {
	d := DHCP{Op: DHCPBootRequest, CHAddr: MAC{1}}
	raw := d.Bytes()
	raw[236] = 0
	var got DHCP
	if err := got.DecodeFromBytes(raw); err != ErrMalformed {
		t.Errorf("want ErrMalformed, got %v", err)
	}
}

func TestDNSQueryRoundTrip(t *testing.T) {
	q := NewDNSQuery(0x1234, "www.facebook.com", DNSTypeA)
	raw, err := q.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	var got DNS
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.ID != 0x1234 || got.Response || len(got.Questions) != 1 {
		t.Fatalf("bad decode: %+v", got)
	}
	if got.Questions[0].Name != "www.facebook.com" || got.Questions[0].Type != DNSTypeA {
		t.Errorf("bad question: %+v", got.Questions[0])
	}
}

func TestDNSResponseRoundTrip(t *testing.T) {
	q := NewDNSQuery(7, "facebook.com", DNSTypeA)
	q.Response = true
	q.RA = true
	q.AnswerA(MustIP4("157.240.1.35"), 300)
	raw, err := q.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	var got DNS
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if !got.Response || len(got.Answers) != 1 {
		t.Fatalf("bad decode: %+v", got)
	}
	if ip, ok := got.Answers[0].A(); !ok || ip != MustIP4("157.240.1.35") {
		t.Errorf("A() = %v, %v", ip, ok)
	}
}

func TestDNSCompressionPointer(t *testing.T) {
	// Hand-built response with a compressed answer name pointing at the
	// question name (offset 12).
	raw := []byte{
		0x00, 0x07, 0x81, 0x80, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
		3, 'w', 'w', 'w', 7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0,
		0x00, 0x01, 0x00, 0x01, // qtype A, qclass IN
		0xc0, 0x0c, // pointer to offset 12
		0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x3c, // A IN TTL 60
		0x00, 0x04, 93, 184, 216, 34,
	}
	var got DNS
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Name != "www.example.com" {
		t.Errorf("compressed name = %q", got.Answers[0].Name)
	}
	if ip, _ := got.Answers[0].A(); ip != MustIP4("93.184.216.34") {
		t.Errorf("A = %v", ip)
	}
}

func TestDNSCompressionLoopRejected(t *testing.T) {
	raw := []byte{
		0x00, 0x07, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0xc0, 0x0c, // pointer to itself
		0x00, 0x01, 0x00, 0x01,
	}
	var got DNS
	if err := got.DecodeFromBytes(raw); err == nil {
		t.Error("self-referential compression pointer accepted")
	}
}

func TestReverseName(t *testing.T) {
	ip := MustIP4("192.168.1.54")
	name := ReverseName(ip)
	if name != "54.1.168.192.in-addr.arpa" {
		t.Errorf("ReverseName = %q", name)
	}
	back, ok := ParseReverseName(name)
	if !ok || back != ip {
		t.Errorf("ParseReverseName = %v, %v", back, ok)
	}
	if _, ok := ParseReverseName("not.a.reverse.name"); ok {
		t.Error("bogus reverse name accepted")
	}
}

func TestFiveTupleReverseAndHash(t *testing.T) {
	ft := FiveTuple{
		Src: MustIP4("10.0.0.1"), Dst: MustIP4("8.8.8.8"),
		Proto: ProtoTCP, SrcPort: 49152, DstPort: 443,
	}
	rev := ft.Reverse()
	if rev.Src != ft.Dst || rev.SrcPort != ft.DstPort {
		t.Errorf("Reverse() = %+v", rev)
	}
	if ft.FastHash() != rev.FastHash() {
		t.Error("FastHash not symmetric")
	}
	other := ft
	other.DstPort = 80
	if ft.FastHash() == other.FastHash() {
		t.Error("distinct flows hash equal (unlikely collision)")
	}
}

func TestFlowKeyAndDecoded(t *testing.T) {
	f := NewTCPFrame(
		MustMAC("11:22:33:44:55:66"), MustMAC("66:55:44:33:22:11"),
		MustIP4("10.0.0.2"), MustIP4("93.184.216.34"), 49152, 80, TCPSyn, 1, nil)
	ft, ok := FlowKey(f)
	if !ok {
		t.Fatal("FlowKey failed")
	}
	if ft.Proto != ProtoTCP || ft.DstPort != 80 {
		t.Errorf("FlowKey = %+v", ft)
	}
	var d Decoded
	if err := d.Decode(f.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !d.HasTCP || d.TCP.Flags != TCPSyn {
		t.Errorf("Decoded = %+v", d)
	}
	ft2, ok := d.FiveTuple()
	if !ok || ft2 != ft {
		t.Errorf("Decoded.FiveTuple = %+v, %v", ft2, ok)
	}
}

func TestWellKnownService(t *testing.T) {
	cases := []struct {
		proto IPProto
		port  uint16
		want  string
	}{
		{ProtoTCP, 80, "http"},
		{ProtoTCP, 443, "https"},
		{ProtoUDP, 53, "dns"},
		{ProtoUDP, 5060, "voip"},
		{ProtoTCP, 6881, "p2p"},
		{ProtoICMP, 0, "icmp"},
		{ProtoTCP, 12345, "other"},
	}
	for _, c := range cases {
		if got := WellKnownService(c.proto, c.port); got != c.want {
			t.Errorf("WellKnownService(%v,%d) = %q, want %q", c.proto, c.port, got, c.want)
		}
	}
}

func TestChecksumOddLength(t *testing.T) {
	// RFC 1071: odd final byte is padded with zero.
	if Checksum([]byte{0x01}, 0) != ^uint16(0x0100) {
		t.Error("odd-length checksum wrong")
	}
}

// Property: Ethernet round trip preserves all fields for arbitrary payloads.
func TestEthernetRoundTripQuick(t *testing.T) {
	f := func(dst, src [6]byte, payload []byte) bool {
		e := Ethernet{Dst: MAC(dst), Src: MAC(src), Type: EtherTypeIPv4, Payload: payload}
		var got Ethernet
		if err := got.DecodeFromBytes(e.Bytes()); err != nil {
			return false
		}
		return got.Dst == e.Dst && got.Src == e.Src && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: UDP checksums always verify against the pseudo-header.
func TestUDPChecksumQuick(t *testing.T) {
	f := func(sp, dp uint16, src, dst [4]byte, payload []byte) bool {
		u := UDP{SrcPort: sp, DstPort: dp, Payload: payload}
		raw := u.Bytes(IP4(src), IP4(dst))
		sum := Checksum(raw, pseudoHeaderSum(IP4(src), IP4(dst), ProtoUDP, len(raw)))
		return sum == 0 || sum == 0xffff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FastHash symmetry holds for arbitrary tuples.
func TestFiveTupleHashSymmetryQuick(t *testing.T) {
	f := func(src, dst [4]byte, sp, dp uint16, proto uint8) bool {
		ft := FiveTuple{Src: IP4(src), Dst: IP4(dst), Proto: IPProto(proto), SrcPort: sp, DstPort: dp}
		return ft.FastHash() == ft.Reverse().FastHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: decoder never panics on arbitrary input.
func TestDecodeNeverPanicsQuick(t *testing.T) {
	f := func(data []byte) bool {
		var d Decoded
		_ = d.Decode(data)
		var dns DNS
		_ = dns.DecodeFromBytes(data)
		var dhcp DHCP
		_ = dhcp.DecodeFromBytes(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDecodeTCPFrame(b *testing.B) {
	f := NewTCPFrame(MAC{1}, MAC{2}, IP4{10, 0, 0, 1}, IP4{10, 0, 0, 2}, 1234, 80, TCPAck, 1, make([]byte, 1000))
	raw := f.Bytes()
	var d Decoded
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerializeTCPFrame(b *testing.B) {
	buf := make([]byte, 0, 1600)
	tcp := TCP{SrcPort: 1234, DstPort: 80, Flags: TCPAck, Payload: make([]byte, 1000)}
	src, dst := IP4{10, 0, 0, 1}, IP4{10, 0, 0, 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tcp.AppendTo(buf[:0], src, dst)
	}
}
