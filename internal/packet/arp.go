package packet

import "encoding/binary"

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARPLen is the length of an Ethernet/IPv4 ARP payload.
const ARPLen = 28

// ARP is an Ethernet/IPv4 ARP packet.
type ARP struct {
	Op       uint16
	SenderHW MAC
	SenderIP IP4
	TargetHW MAC
	TargetIP IP4
}

// DecodeFromBytes parses an ARP payload (the bytes after the Ethernet header).
func (a *ARP) DecodeFromBytes(data []byte) error {
	if len(data) < ARPLen {
		return ErrTruncated
	}
	htype := binary.BigEndian.Uint16(data[0:2])
	ptype := binary.BigEndian.Uint16(data[2:4])
	hlen, plen := data[4], data[5]
	if htype != 1 || ptype != uint16(EtherTypeIPv4) || hlen != 6 || plen != 4 {
		return ErrMalformed
	}
	a.Op = binary.BigEndian.Uint16(data[6:8])
	copy(a.SenderHW[:], data[8:14])
	copy(a.SenderIP[:], data[14:18])
	copy(a.TargetHW[:], data[18:24])
	copy(a.TargetIP[:], data[24:28])
	return nil
}

// AppendTo appends the encoded ARP payload to b and returns the extended
// buffer.
func (a *ARP) AppendTo(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, 1) // Ethernet
	b = binary.BigEndian.AppendUint16(b, uint16(EtherTypeIPv4))
	b = append(b, 6, 4)
	b = binary.BigEndian.AppendUint16(b, a.Op)
	b = append(b, a.SenderHW[:]...)
	b = append(b, a.SenderIP[:]...)
	b = append(b, a.TargetHW[:]...)
	b = append(b, a.TargetIP[:]...)
	return b
}

// Bytes returns the encoded ARP payload as a fresh slice.
func (a *ARP) Bytes() []byte { return a.AppendTo(make([]byte, 0, ARPLen)) }

// AppendARPReply appends a complete unicast is-at reply frame answering
// req, built in one pass with no intermediate per-layer slices.
func AppendARPReply(b []byte, senderHW MAC, senderIP IP4, req *ARP) []byte {
	b = appendEthernetHeader(b, req.SenderHW, senderHW, EtherTypeARP)
	arp := ARP{
		Op:       ARPReply,
		SenderHW: senderHW, SenderIP: senderIP,
		TargetHW: req.SenderHW, TargetIP: req.SenderIP,
	}
	return arp.AppendTo(b)
}

// NewARPRequest builds a who-has request frame from sender for targetIP.
func NewARPRequest(senderHW MAC, senderIP, targetIP IP4) *Ethernet {
	arp := &ARP{Op: ARPRequest, SenderHW: senderHW, SenderIP: senderIP, TargetIP: targetIP}
	return &Ethernet{Dst: Broadcast, Src: senderHW, Type: EtherTypeARP, Payload: arp.Bytes()}
}

// NewARPReply builds a unicast is-at reply frame answering req.
func NewARPReply(senderHW MAC, senderIP IP4, req *ARP) *Ethernet {
	arp := &ARP{
		Op:       ARPReply,
		SenderHW: senderHW, SenderIP: senderIP,
		TargetHW: req.SenderHW, TargetIP: req.SenderIP,
	}
	return &Ethernet{Dst: req.SenderHW, Src: senderHW, Type: EtherTypeARP, Payload: arp.Bytes()}
}
