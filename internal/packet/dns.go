package packet

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// DNS record types used by the proxy.
const (
	DNSTypeA     uint16 = 1
	DNSTypeNS    uint16 = 2
	DNSTypeCNAME uint16 = 5
	DNSTypePTR   uint16 = 12
	DNSTypeTXT   uint16 = 16
	DNSTypeAAAA  uint16 = 28
	DNSTypeANY   uint16 = 255
)

// DNS classes.
const DNSClassIN uint16 = 1

// DNS response codes.
const (
	DNSRcodeNoError  uint8 = 0
	DNSRcodeFormErr  uint8 = 1
	DNSRcodeServFail uint8 = 2
	DNSRcodeNXDomain uint8 = 3
	DNSRcodeRefused  uint8 = 5
)

// DNSQuestion is a single query in a DNS message.
type DNSQuestion struct {
	Name  string
	Type  uint16
	Class uint16
}

// DNSRR is a DNS resource record. For A records Data holds the 4 address
// bytes; for CNAME/PTR records Target holds the decoded name.
type DNSRR struct {
	Name   string
	Type   uint16
	Class  uint16
	TTL    uint32
	Data   []byte
	Target string
}

// A returns the record's address for A records.
func (rr *DNSRR) A() (IP4, bool) {
	if rr.Type == DNSTypeA && len(rr.Data) == 4 {
		return IP4{rr.Data[0], rr.Data[1], rr.Data[2], rr.Data[3]}, true
	}
	return IP4{}, false
}

// DNS is a DNS message.
type DNS struct {
	ID        uint16
	Response  bool
	Opcode    uint8
	AA        bool
	TC        bool
	RD        bool
	RA        bool
	Rcode     uint8
	Questions []DNSQuestion
	Answers   []DNSRR
	Authority []DNSRR
	Extra     []DNSRR
}

// DNSHeaderLen is the length of a DNS message header.
const DNSHeaderLen = 12

// DecodeFromBytes parses a DNS message, following compression pointers.
func (d *DNS) DecodeFromBytes(data []byte) error {
	if len(data) < DNSHeaderLen {
		return ErrTruncated
	}
	d.ID = binary.BigEndian.Uint16(data[0:2])
	flags := binary.BigEndian.Uint16(data[2:4])
	d.Response = flags&0x8000 != 0
	d.Opcode = uint8(flags >> 11 & 0xf)
	d.AA = flags&0x0400 != 0
	d.TC = flags&0x0200 != 0
	d.RD = flags&0x0100 != 0
	d.RA = flags&0x0080 != 0
	d.Rcode = uint8(flags & 0xf)
	qd := int(binary.BigEndian.Uint16(data[4:6]))
	an := int(binary.BigEndian.Uint16(data[6:8]))
	ns := int(binary.BigEndian.Uint16(data[8:10]))
	ar := int(binary.BigEndian.Uint16(data[10:12]))

	off := DNSHeaderLen
	d.Questions = d.Questions[:0]
	for i := 0; i < qd; i++ {
		name, n, err := decodeName(data, off)
		if err != nil {
			return err
		}
		off = n
		if off+4 > len(data) {
			return ErrTruncated
		}
		d.Questions = append(d.Questions, DNSQuestion{
			Name:  name,
			Type:  binary.BigEndian.Uint16(data[off : off+2]),
			Class: binary.BigEndian.Uint16(data[off+2 : off+4]),
		})
		off += 4
	}
	var err error
	if d.Answers, off, err = decodeRRs(data, off, an, d.Answers[:0]); err != nil {
		return err
	}
	if d.Authority, off, err = decodeRRs(data, off, ns, d.Authority[:0]); err != nil {
		return err
	}
	if d.Extra, _, err = decodeRRs(data, off, ar, d.Extra[:0]); err != nil {
		return err
	}
	return nil
}

func decodeRRs(data []byte, off, count int, out []DNSRR) ([]DNSRR, int, error) {
	for i := 0; i < count; i++ {
		name, n, err := decodeName(data, off)
		if err != nil {
			return out, off, err
		}
		off = n
		if off+10 > len(data) {
			return out, off, ErrTruncated
		}
		rr := DNSRR{
			Name:  name,
			Type:  binary.BigEndian.Uint16(data[off : off+2]),
			Class: binary.BigEndian.Uint16(data[off+2 : off+4]),
			TTL:   binary.BigEndian.Uint32(data[off+4 : off+8]),
		}
		rdlen := int(binary.BigEndian.Uint16(data[off+8 : off+10]))
		off += 10
		if off+rdlen > len(data) {
			return out, off, ErrTruncated
		}
		rr.Data = data[off : off+rdlen]
		if rr.Type == DNSTypeCNAME || rr.Type == DNSTypePTR || rr.Type == DNSTypeNS {
			if t, _, err := decodeName(data, off); err == nil {
				rr.Target = t
			}
		}
		off += rdlen
		out = append(out, rr)
	}
	return out, off, nil
}

// decodeName reads a possibly-compressed domain name starting at off,
// returning the dotted name and the offset just past its in-place encoding.
func decodeName(data []byte, off int) (string, int, error) {
	var sb strings.Builder
	end := -1 // offset after the name in the original stream
	ptrBudget := 16
	for {
		if off >= len(data) {
			return "", 0, ErrTruncated
		}
		l := int(data[off])
		switch {
		case l == 0:
			if end < 0 {
				end = off + 1
			}
			name := sb.String()
			if name == "" {
				name = "."
			}
			return name, end, nil
		case l&0xc0 == 0xc0:
			if off+1 >= len(data) {
				return "", 0, ErrTruncated
			}
			if end < 0 {
				end = off + 2
			}
			ptr := (l&0x3f)<<8 | int(data[off+1])
			if ptr >= off || ptrBudget == 0 {
				return "", 0, ErrMalformed
			}
			ptrBudget--
			off = ptr
		case l&0xc0 != 0:
			return "", 0, ErrMalformed
		default:
			if off+1+l > len(data) {
				return "", 0, ErrTruncated
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(data[off+1 : off+1+l])
			off += 1 + l
			if sb.Len() > 255 {
				return "", 0, ErrMalformed
			}
		}
	}
}

// appendName encodes a dotted name without compression.
func appendName(b []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 || len(label) > 63 {
				return b, fmt.Errorf("packet: bad DNS label %q in %q", label, name)
			}
			b = append(b, byte(len(label)))
			b = append(b, label...)
		}
	}
	return append(b, 0), nil
}

// Serialize appends the encoded message (no compression) to b.
func (d *DNS) Serialize(b []byte) ([]byte, error) {
	b = binary.BigEndian.AppendUint16(b, d.ID)
	var flags uint16
	if d.Response {
		flags |= 0x8000
	}
	flags |= uint16(d.Opcode&0xf) << 11
	if d.AA {
		flags |= 0x0400
	}
	if d.TC {
		flags |= 0x0200
	}
	if d.RD {
		flags |= 0x0100
	}
	if d.RA {
		flags |= 0x0080
	}
	flags |= uint16(d.Rcode & 0xf)
	b = binary.BigEndian.AppendUint16(b, flags)
	b = binary.BigEndian.AppendUint16(b, uint16(len(d.Questions)))
	b = binary.BigEndian.AppendUint16(b, uint16(len(d.Answers)))
	b = binary.BigEndian.AppendUint16(b, uint16(len(d.Authority)))
	b = binary.BigEndian.AppendUint16(b, uint16(len(d.Extra)))
	var err error
	for _, q := range d.Questions {
		if b, err = appendName(b, q.Name); err != nil {
			return b, err
		}
		b = binary.BigEndian.AppendUint16(b, q.Type)
		b = binary.BigEndian.AppendUint16(b, q.Class)
	}
	for _, set := range [][]DNSRR{d.Answers, d.Authority, d.Extra} {
		for _, rr := range set {
			if b, err = appendRR(b, rr); err != nil {
				return b, err
			}
		}
	}
	return b, nil
}

func appendRR(b []byte, rr DNSRR) ([]byte, error) {
	b, err := appendName(b, rr.Name)
	if err != nil {
		return b, err
	}
	b = binary.BigEndian.AppendUint16(b, rr.Type)
	b = binary.BigEndian.AppendUint16(b, rr.Class)
	b = binary.BigEndian.AppendUint32(b, rr.TTL)
	data := rr.Data
	if rr.Target != "" && (rr.Type == DNSTypeCNAME || rr.Type == DNSTypePTR || rr.Type == DNSTypeNS) {
		data, err = appendName(nil, rr.Target)
		if err != nil {
			return b, err
		}
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(data)))
	return append(b, data...), nil
}

// Bytes returns the encoded message as a fresh slice.
func (d *DNS) Bytes() ([]byte, error) { return d.Serialize(make([]byte, 0, 128)) }

// NewDNSQuery builds a recursive query for one name.
func NewDNSQuery(id uint16, name string, qtype uint16) *DNS {
	return &DNS{
		ID: id, RD: true,
		Questions: []DNSQuestion{{Name: name, Type: qtype, Class: DNSClassIN}},
	}
}

// AnswerA appends an A answer for the message's first question.
func (d *DNS) AnswerA(ip IP4, ttl uint32) {
	if len(d.Questions) == 0 {
		return
	}
	d.Answers = append(d.Answers, DNSRR{
		Name: d.Questions[0].Name, Type: DNSTypeA, Class: DNSClassIN,
		TTL: ttl, Data: append([]byte(nil), ip[:]...),
	})
}

// ReverseName returns the in-addr.arpa name for an IPv4 address.
func ReverseName(ip IP4) string {
	return fmt.Sprintf("%d.%d.%d.%d.in-addr.arpa", ip[3], ip[2], ip[1], ip[0])
}

// ParseReverseName inverts ReverseName.
func ParseReverseName(name string) (IP4, bool) {
	name = strings.TrimSuffix(strings.TrimSuffix(name, "."), ".in-addr.arpa")
	parts := strings.Split(name, ".")
	if len(parts) != 4 {
		return IP4{}, false
	}
	var ip IP4
	for i := 0; i < 4; i++ {
		var v int
		if _, err := fmt.Sscanf(parts[i], "%d", &v); err != nil || v < 0 || v > 255 {
			return IP4{}, false
		}
		ip[3-i] = byte(v)
	}
	return ip, true
}

// DNSPort is the well-known DNS port.
const DNSPort = 53
