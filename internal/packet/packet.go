// Package packet implements encoding and decoding of the network protocols
// the Homework router handles: Ethernet, ARP, IPv4, ICMP, UDP, TCP, DHCP and
// DNS.
//
// The design follows the gopacket "decoding layer" idiom: every protocol is a
// concrete struct with DecodeFromBytes and a serialization method, so hot
// paths can reuse preallocated layer values without per-packet allocation.
// Addresses are fixed-size arrays (not slices) so they are comparable and can
// be used directly as map keys.
//
// Concurrency: layer values, Decoded and FrameBatch carry no
// synchronization — reuse each from one goroutine at a time. A Decoded's
// byte-slice fields alias the frame it parsed, so it is valid only until
// that buffer is reused; the control plane's batched dispatch documents
// the same rule for handlers (see internal/nox).
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors shared by the decoders in this package.
var (
	ErrTruncated = errors.New("packet: truncated")
	ErrMalformed = errors.New("packet: malformed")
)

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// Broadcast is the all-ones Ethernet broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String renders the address in the conventional colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address is the Ethernet broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// IsMulticast reports whether the address is an Ethernet group address.
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// IsZero reports whether the address is all zeros.
func (m MAC) IsZero() bool { return m == MAC{} }

// ParseMAC parses a colon-separated Ethernet address.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	var b [6]int
	n, err := fmt.Sscanf(s, "%02x:%02x:%02x:%02x:%02x:%02x", &b[0], &b[1], &b[2], &b[3], &b[4], &b[5])
	if err != nil || n != 6 {
		return m, fmt.Errorf("packet: bad MAC %q", s)
	}
	for i, v := range b {
		m[i] = byte(v)
	}
	return m, nil
}

// IP4 is an IPv4 address.
type IP4 [4]byte

// String renders the address in dotted-quad form.
func (ip IP4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// IsZero reports whether the address is 0.0.0.0.
func (ip IP4) IsZero() bool { return ip == IP4{} }

// IsBroadcast reports whether the address is 255.255.255.255.
func (ip IP4) IsBroadcast() bool { return ip == IP4{255, 255, 255, 255} }

// IsMulticast reports whether the address is in 224.0.0.0/4.
func (ip IP4) IsMulticast() bool { return ip[0] >= 224 && ip[0] <= 239 }

// Uint32 returns the address as a big-endian 32-bit integer.
func (ip IP4) Uint32() uint32 { return binary.BigEndian.Uint32(ip[:]) }

// IP4FromUint32 builds an address from a big-endian 32-bit integer.
func IP4FromUint32(v uint32) IP4 {
	var ip IP4
	binary.BigEndian.PutUint32(ip[:], v)
	return ip
}

// ParseIP4 parses a dotted-quad IPv4 address.
func ParseIP4(s string) (IP4, error) {
	var ip IP4
	var b [4]int
	n, err := fmt.Sscanf(s, "%d.%d.%d.%d", &b[0], &b[1], &b[2], &b[3])
	if err != nil || n != 4 {
		return ip, fmt.Errorf("packet: bad IPv4 %q", s)
	}
	for i, v := range b {
		if v < 0 || v > 255 {
			return ip, fmt.Errorf("packet: bad IPv4 %q", s)
		}
		ip[i] = byte(v)
	}
	return ip, nil
}

// MustIP4 is ParseIP4 that panics on error; for tests and fixed configuration.
func MustIP4(s string) IP4 {
	ip, err := ParseIP4(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// MustMAC is ParseMAC that panics on error; for tests and fixed configuration.
func MustMAC(s string) MAC {
	m, err := ParseMAC(s)
	if err != nil {
		panic(err)
	}
	return m
}

// Mask applies a prefix-length netmask to the address.
func (ip IP4) Mask(prefix int) IP4 {
	if prefix <= 0 {
		return IP4{}
	}
	if prefix >= 32 {
		return ip
	}
	m := ^uint32(0) << (32 - uint(prefix))
	return IP4FromUint32(ip.Uint32() & m)
}

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// EtherTypes handled by the router.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
	EtherTypeVLAN EtherType = 0x8100
	EtherTypeIPv6 EtherType = 0x86dd
)

// String names well-known EtherTypes.
func (t EtherType) String() string {
	switch t {
	case EtherTypeIPv4:
		return "IPv4"
	case EtherTypeARP:
		return "ARP"
	case EtherTypeVLAN:
		return "VLAN"
	case EtherTypeIPv6:
		return "IPv6"
	}
	return fmt.Sprintf("EtherType(0x%04x)", uint16(t))
}

// IPProto identifies the payload protocol of an IPv4 packet.
type IPProto uint8

// IP protocol numbers handled by the router.
const (
	ProtoICMP IPProto = 1
	ProtoTCP  IPProto = 6
	ProtoUDP  IPProto = 17
)

// String names well-known IP protocols.
func (p IPProto) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	}
	return fmt.Sprintf("IPProto(%d)", uint8(p))
}

// Checksum computes the RFC 1071 Internet checksum over data with an initial
// partial sum, for use with pseudo-headers.
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the partial sum of the IPv4 pseudo-header used by
// TCP and UDP checksums.
func pseudoHeaderSum(src, dst IP4, proto IPProto, length int) uint32 {
	sum := uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}
