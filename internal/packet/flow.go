package packet

import (
	"fmt"
)

// FiveTuple identifies a transport flow: the unit of measurement in the
// Homework Database Flows table.
type FiveTuple struct {
	Src     IP4
	Dst     IP4
	Proto   IPProto
	SrcPort uint16
	DstPort uint16
}

// String renders the tuple as "proto src:sport->dst:dport".
func (f FiveTuple) String() string {
	return fmt.Sprintf("%s %s:%d->%s:%d", f.Proto, f.Src, f.SrcPort, f.Dst, f.DstPort)
}

// Reverse returns the tuple of the opposite direction.
func (f FiveTuple) Reverse() FiveTuple {
	return FiveTuple{Src: f.Dst, Dst: f.Src, Proto: f.Proto, SrcPort: f.DstPort, DstPort: f.SrcPort}
}

// FastHash returns a 64-bit non-cryptographic hash that is symmetric: a flow
// and its reverse hash identically, so bidirectional traffic can be grouped
// (the gopacket Flow.FastHash property).
func (f FiveTuple) FastHash() uint64 {
	a := fnvMix(uint64(f.Src.Uint32())<<16 | uint64(f.SrcPort))
	b := fnvMix(uint64(f.Dst.Uint32())<<16 | uint64(f.DstPort))
	return (a ^ b) + uint64(f.Proto)*0x9e3779b97f4a7c15
}

func fnvMix(v uint64) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// FlowKey extracts the five-tuple from a decoded Ethernet frame, reporting ok
// only for IPv4 TCP/UDP packets (ICMP flows use type/code as ports).
func FlowKey(eth *Ethernet) (FiveTuple, bool) {
	if eth.Type != EtherTypeIPv4 {
		return FiveTuple{}, false
	}
	var ip IPv4
	if err := ip.DecodeFromBytes(eth.Payload); err != nil {
		return FiveTuple{}, false
	}
	ft := FiveTuple{Src: ip.Src, Dst: ip.Dst, Proto: ip.Protocol}
	switch ip.Protocol {
	case ProtoTCP:
		var t TCP
		if err := t.DecodeFromBytes(ip.Payload); err != nil {
			return FiveTuple{}, false
		}
		ft.SrcPort, ft.DstPort = t.SrcPort, t.DstPort
	case ProtoUDP:
		var u UDP
		if err := u.DecodeFromBytes(ip.Payload); err != nil {
			return FiveTuple{}, false
		}
		ft.SrcPort, ft.DstPort = u.SrcPort, u.DstPort
	case ProtoICMP:
		var c ICMP
		if err := c.DecodeFromBytes(ip.Payload); err != nil {
			return FiveTuple{}, false
		}
		ft.SrcPort, ft.DstPort = uint16(c.Type), uint16(c.Code)
	default:
		return FiveTuple{}, false
	}
	return ft, true
}

// WellKnownService maps a destination port to the protocol label the
// bandwidth interface displays ("the imperfect application-protocol
// mapping" the paper describes).
func WellKnownService(proto IPProto, port uint16) string {
	if proto == ProtoUDP {
		switch port {
		case 53:
			return "dns"
		case 67, 68:
			return "dhcp"
		case 123:
			return "ntp"
		case 5060:
			return "voip"
		case 443:
			return "quic"
		}
	}
	if proto == ProtoTCP {
		switch port {
		case 80, 8080:
			return "http"
		case 443:
			return "https"
		case 25, 587:
			return "smtp"
		case 143, 993:
			return "imap"
		case 22:
			return "ssh"
		case 1935:
			return "rtmp"
		case 554:
			return "rtsp"
		case 6881, 6882, 6883, 6884, 6885, 6886, 6887, 6888, 6889:
			return "p2p"
		}
	}
	if proto == ProtoICMP {
		return "icmp"
	}
	return "other"
}
