package packet

// FrameBatch accumulates serialized frames in one contiguous buffer that
// is reused across ticks, so a tick's worth of traffic is built with zero
// steady-state allocations and handed to the datapath in a single call.
//
// The intended build sequence is
//
//	fb.Commit(AppendUDPFrame(fb.Buf(), ...))
//
// Buf returns the committed region of the backing buffer; the builder
// appends one frame to it and Commit records the new boundary. Bytes
// appended to Buf() but never committed are simply overwritten by the
// next build (useful when routing decides a built frame cannot be sent
// yet).
//
// Frames returned by Frame alias the backing buffer: they are valid only
// until Reset, and a FrameBatch is not safe for concurrent use. Frame
// boundaries are stored as offsets, so frames committed before the buffer
// grows remain addressable afterwards.
type FrameBatch struct {
	buf  []byte
	ends []int
}

// Len returns the number of committed frames.
func (fb *FrameBatch) Len() int { return len(fb.ends) }

// TotalBytes returns the byte count summed over all committed frames.
func (fb *FrameBatch) TotalBytes() int { return len(fb.buf) }

// Frame returns the i-th committed frame, aliasing the backing buffer.
func (fb *FrameBatch) Frame(i int) []byte {
	start := 0
	if i > 0 {
		start = fb.ends[i-1]
	}
	return fb.buf[start:fb.ends[i]:fb.ends[i]]
}

// Buf returns the committed region of the backing buffer as the append
// target for the next frame build.
func (fb *FrameBatch) Buf() []byte { return fb.buf }

// Commit records b — which must be the result of appending exactly one
// frame to Buf() — as the batch's new backing buffer, adding the appended
// bytes as one frame.
func (fb *FrameBatch) Commit(b []byte) {
	fb.buf = b
	fb.ends = append(fb.ends, len(b))
}

// Append copies an already-serialized frame into the batch.
func (fb *FrameBatch) Append(frame []byte) {
	fb.Commit(append(fb.buf, frame...))
}

// Reset forgets all frames, retaining the backing buffer for reuse.
func (fb *FrameBatch) Reset() {
	fb.buf = fb.buf[:0]
	fb.ends = fb.ends[:0]
}
