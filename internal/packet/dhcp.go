package packet

import (
	"encoding/binary"
	"time"
)

// DHCP op codes.
const (
	DHCPBootRequest uint8 = 1
	DHCPBootReply   uint8 = 2
)

// DHCPMsgType is the value of DHCP option 53.
type DHCPMsgType uint8

// DHCP message types (RFC 2131).
const (
	DHCPDiscover DHCPMsgType = 1
	DHCPOffer    DHCPMsgType = 2
	DHCPRequest  DHCPMsgType = 3
	DHCPDecline  DHCPMsgType = 4
	DHCPAck      DHCPMsgType = 5
	DHCPNak      DHCPMsgType = 6
	DHCPRelease  DHCPMsgType = 7
	DHCPInform   DHCPMsgType = 8
)

// String names the DHCP message type.
func (t DHCPMsgType) String() string {
	switch t {
	case DHCPDiscover:
		return "DISCOVER"
	case DHCPOffer:
		return "OFFER"
	case DHCPRequest:
		return "REQUEST"
	case DHCPDecline:
		return "DECLINE"
	case DHCPAck:
		return "ACK"
	case DHCPNak:
		return "NAK"
	case DHCPRelease:
		return "RELEASE"
	case DHCPInform:
		return "INFORM"
	}
	return "DHCP?"
}

// DHCP option codes used by the Homework DHCP server.
const (
	DHCPOptPad           uint8 = 0
	DHCPOptSubnetMask    uint8 = 1
	DHCPOptRouter        uint8 = 3
	DHCPOptDNSServer     uint8 = 6
	DHCPOptHostname      uint8 = 12
	DHCPOptRequestedIP   uint8 = 50
	DHCPOptLeaseTime     uint8 = 51
	DHCPOptMsgType       uint8 = 53
	DHCPOptServerID      uint8 = 54
	DHCPOptParamRequest  uint8 = 55
	DHCPOptMessage       uint8 = 56
	DHCPOptRenewalTime   uint8 = 58
	DHCPOptRebindingTime uint8 = 59
	DHCPOptClientID      uint8 = 61
	DHCPOptEnd           uint8 = 255
)

// dhcpMagic is the BOOTP vendor extension magic cookie.
var dhcpMagic = [4]byte{99, 130, 83, 99}

// dhcpFixedLen is the length of the fixed BOOTP header before options.
const dhcpFixedLen = 240 // 236-byte BOOTP + 4-byte magic

// DHCP is a DHCP message (BOOTP header + options).
type DHCP struct {
	Op      uint8
	XID     uint32
	Secs    uint16
	Flags   uint16 // bit 15: broadcast
	CIAddr  IP4    // client's current address
	YIAddr  IP4    // "your" (allocated) address
	SIAddr  IP4    // next server
	GIAddr  IP4    // relay agent
	CHAddr  MAC    // client hardware address
	SName   string
	File    string
	Options []DHCPOption
}

// DHCPOption is a single tag-length-value DHCP option.
type DHCPOption struct {
	Code uint8
	Data []byte
}

// DecodeFromBytes parses a DHCP message from a UDP payload.
func (d *DHCP) DecodeFromBytes(data []byte) error {
	if len(data) < dhcpFixedLen {
		return ErrTruncated
	}
	d.Op = data[0]
	if data[1] != 1 || data[2] != 6 { // htype Ethernet, hlen 6
		return ErrMalformed
	}
	d.XID = binary.BigEndian.Uint32(data[4:8])
	d.Secs = binary.BigEndian.Uint16(data[8:10])
	d.Flags = binary.BigEndian.Uint16(data[10:12])
	copy(d.CIAddr[:], data[12:16])
	copy(d.YIAddr[:], data[16:20])
	copy(d.SIAddr[:], data[20:24])
	copy(d.GIAddr[:], data[24:28])
	copy(d.CHAddr[:], data[28:34])
	d.SName = cstring(data[44:108])
	d.File = cstring(data[108:236])
	if [4]byte(data[236:240]) != dhcpMagic {
		return ErrMalformed
	}
	d.Options = d.Options[:0]
	opts := data[240:]
	for i := 0; i < len(opts); {
		code := opts[i]
		i++
		if code == DHCPOptPad {
			continue
		}
		if code == DHCPOptEnd {
			break
		}
		if i >= len(opts) {
			return ErrTruncated
		}
		l := int(opts[i])
		i++
		if i+l > len(opts) {
			return ErrTruncated
		}
		d.Options = append(d.Options, DHCPOption{Code: code, Data: opts[i : i+l]})
		i += l
	}
	return nil
}

func cstring(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}

// Serialize appends the encoded message to b.
func (d *DHCP) Serialize(b []byte) []byte {
	start := len(b)
	b = append(b, d.Op, 1, 6, 0)
	b = binary.BigEndian.AppendUint32(b, d.XID)
	b = binary.BigEndian.AppendUint16(b, d.Secs)
	b = binary.BigEndian.AppendUint16(b, d.Flags)
	b = append(b, d.CIAddr[:]...)
	b = append(b, d.YIAddr[:]...)
	b = append(b, d.SIAddr[:]...)
	b = append(b, d.GIAddr[:]...)
	b = append(b, d.CHAddr[:]...)
	b = append(b, make([]byte, 10)...) // chaddr padding
	b = appendFixedString(b, d.SName, 64)
	b = appendFixedString(b, d.File, 128)
	b = append(b, dhcpMagic[:]...)
	for _, o := range d.Options {
		b = append(b, o.Code, byte(len(o.Data)))
		b = append(b, o.Data...)
	}
	b = append(b, DHCPOptEnd)
	// BOOTP messages are conventionally padded to at least 300 bytes.
	for len(b)-start < 300 {
		b = append(b, 0)
	}
	return b
}

func appendFixedString(b []byte, s string, n int) []byte {
	if len(s) > n {
		s = s[:n]
	}
	b = append(b, s...)
	return append(b, make([]byte, n-len(s))...)
}

// Bytes returns the encoded message as a fresh slice.
func (d *DHCP) Bytes() []byte { return d.Serialize(make([]byte, 0, 300)) }

// Option returns the raw data of the first option with the given code.
func (d *DHCP) Option(code uint8) ([]byte, bool) {
	for _, o := range d.Options {
		if o.Code == code {
			return o.Data, true
		}
	}
	return nil, false
}

// MsgType returns the DHCP message type option, or 0 if absent.
func (d *DHCP) MsgType() DHCPMsgType {
	if v, ok := d.Option(DHCPOptMsgType); ok && len(v) == 1 {
		return DHCPMsgType(v[0])
	}
	return 0
}

// Hostname returns the client-supplied hostname option.
func (d *DHCP) Hostname() string {
	if v, ok := d.Option(DHCPOptHostname); ok {
		return string(v)
	}
	return ""
}

// RequestedIP returns the requested-address option.
func (d *DHCP) RequestedIP() (IP4, bool) {
	if v, ok := d.Option(DHCPOptRequestedIP); ok && len(v) == 4 {
		return IP4{v[0], v[1], v[2], v[3]}, true
	}
	return IP4{}, false
}

// ServerID returns the server-identifier option.
func (d *DHCP) ServerID() (IP4, bool) {
	if v, ok := d.Option(DHCPOptServerID); ok && len(v) == 4 {
		return IP4{v[0], v[1], v[2], v[3]}, true
	}
	return IP4{}, false
}

// AddOption appends a raw option.
func (d *DHCP) AddOption(code uint8, data []byte) {
	d.Options = append(d.Options, DHCPOption{Code: code, Data: data})
}

// AddMsgType appends option 53.
func (d *DHCP) AddMsgType(t DHCPMsgType) { d.AddOption(DHCPOptMsgType, []byte{byte(t)}) }

// AddIPOption appends a 4-byte address-valued option.
func (d *DHCP) AddIPOption(code uint8, ip IP4) { d.AddOption(code, ip[:]) }

// AddDurationOption appends a 4-byte seconds-valued option.
func (d *DHCP) AddDurationOption(code uint8, dur time.Duration) {
	var v [4]byte
	binary.BigEndian.PutUint32(v[:], uint32(dur/time.Second))
	d.AddOption(code, v[:])
}

// LeaseTime returns option 51 as a duration.
func (d *DHCP) LeaseTime() (time.Duration, bool) {
	if v, ok := d.Option(DHCPOptLeaseTime); ok && len(v) == 4 {
		return time.Duration(binary.BigEndian.Uint32(v)) * time.Second, true
	}
	return 0, false
}

// SubnetMask returns option 1 as an address.
func (d *DHCP) SubnetMask() (IP4, bool) {
	if v, ok := d.Option(DHCPOptSubnetMask); ok && len(v) == 4 {
		return IP4{v[0], v[1], v[2], v[3]}, true
	}
	return IP4{}, false
}

// DHCP well-known ports.
const (
	DHCPServerPort = 67
	DHCPClientPort = 68
)

// NewDHCPFrame wraps a DHCP message in UDP/IPv4/Ethernet ready for the wire.
// dstIP may be the broadcast address; dstMAC likewise.
func NewDHCPFrame(d *DHCP, srcMAC, dstMAC MAC, srcIP, dstIP IP4, srcPort, dstPort uint16) *Ethernet {
	udp := UDP{SrcPort: srcPort, DstPort: dstPort, Payload: d.Bytes()}
	ip := IPv4{TTL: 64, Protocol: ProtoUDP, Src: srcIP, Dst: dstIP, Payload: udp.Bytes(srcIP, dstIP)}
	return &Ethernet{Dst: dstMAC, Src: srcMAC, Type: EtherTypeIPv4, Payload: ip.Bytes()}
}
