package packet

import "encoding/binary"

// EthernetHeaderLen is the length of an untagged Ethernet header.
const EthernetHeaderLen = 14

// Ethernet is an Ethernet II frame header plus payload. VLAN-tagged frames
// are decoded transparently: the tag is exposed via VLANID/VLANPriority and
// Tagged.
type Ethernet struct {
	Dst          MAC
	Src          MAC
	Type         EtherType
	Tagged       bool
	VLANID       uint16
	VLANPriority uint8
	Payload      []byte
}

// DecodeFromBytes parses an Ethernet frame. The Payload field aliases data.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < EthernetHeaderLen {
		return ErrTruncated
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.Type = EtherType(binary.BigEndian.Uint16(data[12:14]))
	e.Tagged = false
	e.VLANID = 0
	e.VLANPriority = 0
	rest := data[14:]
	if e.Type == EtherTypeVLAN {
		if len(rest) < 4 {
			return ErrTruncated
		}
		tci := binary.BigEndian.Uint16(rest[0:2])
		e.Tagged = true
		e.VLANPriority = uint8(tci >> 13)
		e.VLANID = tci & 0x0fff
		e.Type = EtherType(binary.BigEndian.Uint16(rest[2:4]))
		rest = rest[4:]
	}
	e.Payload = rest
	return nil
}

// HeaderLen returns the encoded header length, accounting for a VLAN tag.
func (e *Ethernet) HeaderLen() int {
	if e.Tagged {
		return EthernetHeaderLen + 4
	}
	return EthernetHeaderLen
}

// AppendTo appends the encoded frame (header + payload) to b and returns
// the extended buffer. Hot paths pass a reused scratch buffer so
// steady-state serialization does not allocate.
func (e *Ethernet) AppendTo(b []byte) []byte {
	b = append(b, e.Dst[:]...)
	b = append(b, e.Src[:]...)
	if e.Tagged {
		b = binary.BigEndian.AppendUint16(b, uint16(EtherTypeVLAN))
		tci := uint16(e.VLANPriority)<<13 | e.VLANID&0x0fff
		b = binary.BigEndian.AppendUint16(b, tci)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(e.Type))
	return append(b, e.Payload...)
}

// Bytes returns the encoded frame as a fresh slice.
func (e *Ethernet) Bytes() []byte {
	return e.AppendTo(make([]byte, 0, e.HeaderLen()+len(e.Payload)))
}
