package packet

import "encoding/binary"

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// IPv4 is an IPv4 packet header plus payload.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Protocol IPProto
	Checksum uint16
	Src      IP4
	Dst      IP4
	Options  []byte
	Payload  []byte
}

// IPv4 flag bits.
const (
	IPv4DontFragment  = 0x2
	IPv4MoreFragments = 0x1
)

// DecodeFromBytes parses an IPv4 packet. Options and Payload alias data.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4HeaderLen {
		return ErrTruncated
	}
	vihl := data[0]
	if vihl>>4 != 4 {
		return ErrMalformed
	}
	ihl := int(vihl&0x0f) * 4
	if ihl < IPv4HeaderLen || len(data) < ihl {
		return ErrMalformed
	}
	totalLen := int(binary.BigEndian.Uint16(data[2:4]))
	if totalLen < ihl {
		return ErrMalformed
	}
	if totalLen > len(data) {
		totalLen = len(data) // tolerate link-layer padding absence
	}
	ip.TOS = data[1]
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = IPProto(data[9])
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(ip.Src[:], data[12:16])
	copy(ip.Dst[:], data[16:20])
	ip.Options = data[IPv4HeaderLen:ihl]
	ip.Payload = data[ihl:totalLen]
	return nil
}

// HeaderLen returns the encoded header length including options.
func (ip *IPv4) HeaderLen() int {
	opt := (len(ip.Options) + 3) &^ 3
	return IPv4HeaderLen + opt
}

// AppendTo appends the encoded packet to b, computing the header checksum,
// and returns the extended buffer.
func (ip *IPv4) AppendTo(b []byte) []byte {
	hl := ip.HeaderLen()
	total := hl + len(ip.Payload)
	start := len(b)
	b = append(b, byte(4<<4|hl/4), ip.TOS)
	b = binary.BigEndian.AppendUint16(b, uint16(total))
	b = binary.BigEndian.AppendUint16(b, ip.ID)
	b = binary.BigEndian.AppendUint16(b, uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	b = append(b, ip.TTL, byte(ip.Protocol))
	b = append(b, 0, 0) // checksum placeholder
	b = append(b, ip.Src[:]...)
	b = append(b, ip.Dst[:]...)
	b = append(b, ip.Options...)
	for len(b)-start < hl {
		b = append(b, 0) // pad options to 32-bit boundary
	}
	cs := Checksum(b[start:start+hl], 0)
	binary.BigEndian.PutUint16(b[start+10:start+12], cs)
	return append(b, ip.Payload...)
}

// Bytes returns the encoded packet as a fresh slice.
func (ip *IPv4) Bytes() []byte {
	return ip.AppendTo(make([]byte, 0, ip.HeaderLen()+len(ip.Payload)))
}

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// UDP is a UDP datagram header plus payload.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Checksum uint16
	Payload  []byte
}

// DecodeFromBytes parses a UDP datagram. Payload aliases data.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < UDPHeaderLen {
		return ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	length := int(binary.BigEndian.Uint16(data[4:6]))
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	if length < UDPHeaderLen {
		return ErrMalformed
	}
	if length > len(data) {
		length = len(data)
	}
	u.Payload = data[UDPHeaderLen:length]
	return nil
}

// AppendTo appends the encoded datagram to b with a checksum computed over
// the pseudo-header for src/dst, and returns the extended buffer.
func (u *UDP) AppendTo(b []byte, src, dst IP4) []byte {
	length := UDPHeaderLen + len(u.Payload)
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, u.SrcPort)
	b = binary.BigEndian.AppendUint16(b, u.DstPort)
	b = binary.BigEndian.AppendUint16(b, uint16(length))
	b = append(b, 0, 0)
	b = append(b, u.Payload...)
	cs := Checksum(b[start:], pseudoHeaderSum(src, dst, ProtoUDP, length))
	if cs == 0 {
		cs = 0xffff
	}
	binary.BigEndian.PutUint16(b[start+6:start+8], cs)
	return b
}

// Bytes returns the encoded datagram as a fresh slice.
func (u *UDP) Bytes(src, dst IP4) []byte {
	return u.AppendTo(make([]byte, 0, UDPHeaderLen+len(u.Payload)), src, dst)
}

// TCPHeaderLen is the length of a TCP header without options.
const TCPHeaderLen = 20

// TCP flag bits.
const (
	TCPFin = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// TCP is a TCP segment header plus payload.
type TCP struct {
	SrcPort  uint16
	DstPort  uint16
	Seq      uint32
	Ack      uint32
	Flags    uint8
	Window   uint16
	Checksum uint16
	Urgent   uint16
	Options  []byte
	Payload  []byte
}

// DecodeFromBytes parses a TCP segment. Options and Payload alias data.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < TCPHeaderLen {
		return ErrTruncated
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	off := int(data[12]>>4) * 4
	if off < TCPHeaderLen || off > len(data) {
		return ErrMalformed
	}
	t.Flags = data[13] & 0x3f
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	t.Options = data[TCPHeaderLen:off]
	t.Payload = data[off:]
	return nil
}

// HeaderLen returns the encoded header length including options.
func (t *TCP) HeaderLen() int {
	opt := (len(t.Options) + 3) &^ 3
	return TCPHeaderLen + opt
}

// AppendTo appends the encoded segment to b with a checksum computed over
// the pseudo-header for src/dst, and returns the extended buffer.
func (t *TCP) AppendTo(b []byte, src, dst IP4) []byte {
	hl := t.HeaderLen()
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, t.SrcPort)
	b = binary.BigEndian.AppendUint16(b, t.DstPort)
	b = binary.BigEndian.AppendUint32(b, t.Seq)
	b = binary.BigEndian.AppendUint32(b, t.Ack)
	b = append(b, byte(hl/4)<<4, t.Flags)
	b = binary.BigEndian.AppendUint16(b, t.Window)
	b = append(b, 0, 0)
	b = binary.BigEndian.AppendUint16(b, t.Urgent)
	b = append(b, t.Options...)
	for len(b)-start < hl {
		b = append(b, 0)
	}
	b = append(b, t.Payload...)
	cs := Checksum(b[start:], pseudoHeaderSum(src, dst, ProtoTCP, hl+len(t.Payload)))
	binary.BigEndian.PutUint16(b[start+16:start+18], cs)
	return b
}

// Bytes returns the encoded segment as a fresh slice.
func (t *TCP) Bytes(src, dst IP4) []byte {
	return t.AppendTo(make([]byte, 0, t.HeaderLen()+len(t.Payload)), src, dst)
}

// ICMP message types.
const (
	ICMPEchoReply    uint8 = 0
	ICMPDestUnreach  uint8 = 3
	ICMPEchoRequest  uint8 = 8
	ICMPTimeExceeded uint8 = 11
)

// ICMP is an ICMPv4 message.
type ICMP struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	ID       uint16 // echo only
	Seq      uint16 // echo only
	Payload  []byte
}

// ICMPHeaderLen is the length of an ICMP echo header.
const ICMPHeaderLen = 8

// DecodeFromBytes parses an ICMP message. Payload aliases data.
func (c *ICMP) DecodeFromBytes(data []byte) error {
	if len(data) < ICMPHeaderLen {
		return ErrTruncated
	}
	c.Type = data[0]
	c.Code = data[1]
	c.Checksum = binary.BigEndian.Uint16(data[2:4])
	c.ID = binary.BigEndian.Uint16(data[4:6])
	c.Seq = binary.BigEndian.Uint16(data[6:8])
	c.Payload = data[ICMPHeaderLen:]
	return nil
}

// AppendTo appends the encoded message to b, computing the checksum, and
// returns the extended buffer.
func (c *ICMP) AppendTo(b []byte) []byte {
	start := len(b)
	b = append(b, c.Type, c.Code, 0, 0)
	b = binary.BigEndian.AppendUint16(b, c.ID)
	b = binary.BigEndian.AppendUint16(b, c.Seq)
	b = append(b, c.Payload...)
	cs := Checksum(b[start:], 0)
	binary.BigEndian.PutUint16(b[start+2:start+4], cs)
	return b
}

// Bytes returns the encoded message as a fresh slice.
func (c *ICMP) Bytes() []byte {
	return c.AppendTo(make([]byte, 0, ICMPHeaderLen+len(c.Payload)))
}
