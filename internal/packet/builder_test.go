package packet

import (
	"bytes"
	"testing"
)

var (
	testSrcMAC = MAC{2, 0, 0, 0, 0, 1}
	testDstMAC = MAC{2, 0, 0, 0, 0, 2}
	testSrcIP  = IP4{192, 168, 1, 10}
	testDstIP  = IP4{93, 184, 216, 34}
)

// The single-pass appenders must be byte-identical to the layered
// builders they replace on the hot paths.
func TestAppendFrameBuildersMatchLayered(t *testing.T) {
	payload := []byte("hello, datapath")

	udpWant := NewUDPFrame(testSrcMAC, testDstMAC, testSrcIP, testDstIP, 5000, 53, payload).Bytes()
	udpGot := AppendUDPFrame(nil, testSrcMAC, testDstMAC, testSrcIP, testDstIP, 5000, 53, payload)
	if !bytes.Equal(udpGot, udpWant) {
		t.Errorf("AppendUDPFrame differs from NewUDPFrame().Bytes():\n got %x\nwant %x", udpGot, udpWant)
	}

	tcpWant := NewTCPFrame(testSrcMAC, testDstMAC, testSrcIP, testDstIP, 40000, 80, TCPAck|TCPPsh, 77, payload).Bytes()
	tcpGot := AppendTCPFrame(nil, testSrcMAC, testDstMAC, testSrcIP, testDstIP, 40000, 80, TCPAck|TCPPsh, 77, 0, payload)
	if !bytes.Equal(tcpGot, tcpWant) {
		t.Errorf("AppendTCPFrame differs from NewTCPFrame().Bytes():\n got %x\nwant %x", tcpGot, tcpWant)
	}

	icmpWant := NewICMPEchoFrame(testSrcMAC, testDstMAC, testSrcIP, testDstIP, ICMPEchoRequest, 3, 4, payload).Bytes()
	icmpGot := AppendICMPEchoFrame(nil, testSrcMAC, testDstMAC, testSrcIP, testDstIP, ICMPEchoRequest, 3, 4, payload)
	if !bytes.Equal(icmpGot, icmpWant) {
		t.Errorf("AppendICMPEchoFrame differs from NewICMPEchoFrame().Bytes():\n got %x\nwant %x", icmpGot, icmpWant)
	}
}

// AppendTCPFrame's extra acknowledgement parameter must land in the TCP
// header (New*Frame cannot express it).
func TestAppendTCPFrameAck(t *testing.T) {
	f := AppendTCPFrame(nil, testSrcMAC, testDstMAC, testSrcIP, testDstIP,
		80, 40000, TCPSyn|TCPAck, 0, 1234, nil)
	var d Decoded
	if err := d.Decode(f); err != nil {
		t.Fatal(err)
	}
	if !d.HasTCP || d.TCP.Ack != 1234 || d.TCP.Flags != TCPSyn|TCPAck {
		t.Errorf("decoded ack=%d flags=%x", d.TCP.Ack, d.TCP.Flags)
	}
	if d.TCP.Window != 65535 {
		t.Errorf("window = %d", d.TCP.Window)
	}
}

// The ARP reply appender must match the layered reply builder.
func TestAppendARPReplyMatchesLayered(t *testing.T) {
	req := ARP{Op: ARPRequest, SenderHW: testSrcMAC, SenderIP: testSrcIP, TargetIP: testDstIP}
	want := NewARPReply(testDstMAC, testDstIP, &req).Bytes()
	got := AppendARPReply(nil, testDstMAC, testDstIP, &req)
	if !bytes.Equal(got, want) {
		t.Errorf("AppendARPReply differs:\n got %x\nwant %x", got, want)
	}
}

// Steady-state frame building into a reused buffer must not allocate:
// this pins the hot path the hosts, apps and upstream ride every tick.
func TestAppendFrameZeroAllocs(t *testing.T) {
	payload := make([]byte, 1400)
	buf := make([]byte, 0, 2048)
	if allocs := testing.AllocsPerRun(200, func() {
		buf = AppendTCPFrame(buf[:0], testSrcMAC, testDstMAC, testSrcIP, testDstIP,
			40000, 443, TCPAck, 9, 9, payload)
	}); allocs != 0 {
		t.Errorf("AppendTCPFrame allocs/op = %g, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		buf = AppendUDPFrame(buf[:0], testSrcMAC, testDstMAC, testSrcIP, testDstIP,
			5060, 5060, payload)
	}); allocs != 0 {
		t.Errorf("AppendUDPFrame allocs/op = %g, want 0", allocs)
	}
}

// Reusing one Decoded across frames must not allocate: this pins the
// per-frame receive path in the datapath and upstream loops.
func TestDecodeReuseZeroAllocs(t *testing.T) {
	frame := AppendTCPFrame(nil, testSrcMAC, testDstMAC, testSrcIP, testDstIP,
		40000, 80, TCPAck, 0, 0, make([]byte, 512))
	var d Decoded
	if allocs := testing.AllocsPerRun(200, func() {
		if err := d.Decode(frame); err != nil {
			panic(err)
		}
	}); allocs != 0 {
		t.Errorf("Decode allocs/op = %g, want 0", allocs)
	}
}

func TestFrameBatch(t *testing.T) {
	var fb FrameBatch
	if fb.Len() != 0 || fb.TotalBytes() != 0 {
		t.Fatal("fresh batch not empty")
	}
	// Commit three frames, forcing buffer growth along the way: earlier
	// frames must remain addressable afterwards.
	frames := [][]byte{
		AppendUDPFrame(nil, testSrcMAC, testDstMAC, testSrcIP, testDstIP, 1, 2, []byte("a")),
		AppendUDPFrame(nil, testSrcMAC, testDstMAC, testSrcIP, testDstIP, 3, 4, make([]byte, 4000)),
		AppendUDPFrame(nil, testSrcMAC, testDstMAC, testSrcIP, testDstIP, 5, 6, []byte("ccc")),
	}
	total := 0
	for _, f := range frames {
		fb.Commit(append(fb.Buf(), f...))
		total += len(f)
	}
	if fb.Len() != 3 || fb.TotalBytes() != total {
		t.Fatalf("Len=%d TotalBytes=%d want 3/%d", fb.Len(), fb.TotalBytes(), total)
	}
	for i, f := range frames {
		if !bytes.Equal(fb.Frame(i), f) {
			t.Errorf("frame %d corrupted", i)
		}
	}
	// Uncommitted bytes must not surface as frames.
	_ = AppendUDPFrame(fb.Buf(), testSrcMAC, testDstMAC, testSrcIP, testDstIP, 7, 8, nil)
	if fb.Len() != 3 {
		t.Errorf("uncommitted build changed Len to %d", fb.Len())
	}
	fb.Reset()
	if fb.Len() != 0 || fb.TotalBytes() != 0 {
		t.Error("Reset did not empty the batch")
	}
}

// A warmed batch refilled each tick must not allocate.
func TestFrameBatchZeroAllocsSteadyState(t *testing.T) {
	var fb FrameBatch
	payload := make([]byte, 256)
	fill := func() {
		fb.Reset()
		for i := 0; i < 16; i++ {
			fb.Commit(AppendUDPFrame(fb.Buf(), testSrcMAC, testDstMAC, testSrcIP, testDstIP,
				uint16(1000+i), 53, payload))
		}
	}
	fill() // warm the backing buffer
	if allocs := testing.AllocsPerRun(100, fill); allocs != 0 {
		t.Errorf("steady-state batch fill allocs/op = %g, want 0", allocs)
	}
}
