package packet

import "encoding/binary"

// Decoded is a one-pass parse of a frame up to the transport layer, used by
// the datapath for flow matching and by the measurement plane for accounting.
// All byte-slice fields alias the original frame buffer.
type Decoded struct {
	Eth  Ethernet
	ARP  ARP
	IP   IPv4
	TCP  TCP
	UDP  UDP
	ICMP ICMP

	HasARP  bool
	HasIP   bool
	HasTCP  bool
	HasUDP  bool
	HasICMP bool
}

// Decode parses as many layers as the frame contains. Unknown payloads above
// a decoded layer are not an error: decoding stops at the last understood
// layer, mirroring gopacket's DecodingLayerParser behaviour.
func (d *Decoded) Decode(frame []byte) error {
	d.HasARP, d.HasIP, d.HasTCP, d.HasUDP, d.HasICMP = false, false, false, false, false
	if err := d.Eth.DecodeFromBytes(frame); err != nil {
		return err
	}
	switch d.Eth.Type {
	case EtherTypeARP:
		if err := d.ARP.DecodeFromBytes(d.Eth.Payload); err != nil {
			return err
		}
		d.HasARP = true
	case EtherTypeIPv4:
		if err := d.IP.DecodeFromBytes(d.Eth.Payload); err != nil {
			return err
		}
		d.HasIP = true
		switch d.IP.Protocol {
		case ProtoTCP:
			if err := d.TCP.DecodeFromBytes(d.IP.Payload); err != nil {
				return err
			}
			d.HasTCP = true
		case ProtoUDP:
			if err := d.UDP.DecodeFromBytes(d.IP.Payload); err != nil {
				return err
			}
			d.HasUDP = true
		case ProtoICMP:
			if err := d.ICMP.DecodeFromBytes(d.IP.Payload); err != nil {
				return err
			}
			d.HasICMP = true
		}
	}
	return nil
}

// FiveTuple returns the transport five-tuple of the decoded frame.
func (d *Decoded) FiveTuple() (FiveTuple, bool) {
	if !d.HasIP {
		return FiveTuple{}, false
	}
	ft := FiveTuple{Src: d.IP.Src, Dst: d.IP.Dst, Proto: d.IP.Protocol}
	switch {
	case d.HasTCP:
		ft.SrcPort, ft.DstPort = d.TCP.SrcPort, d.TCP.DstPort
	case d.HasUDP:
		ft.SrcPort, ft.DstPort = d.UDP.SrcPort, d.UDP.DstPort
	case d.HasICMP:
		ft.SrcPort, ft.DstPort = uint16(d.ICMP.Type), uint16(d.ICMP.Code)
	default:
		return FiveTuple{}, false
	}
	return ft, true
}

// NewUDPFrame builds a complete Ethernet/IPv4/UDP frame.
func NewUDPFrame(srcMAC, dstMAC MAC, srcIP, dstIP IP4, srcPort, dstPort uint16, payload []byte) *Ethernet {
	udp := UDP{SrcPort: srcPort, DstPort: dstPort, Payload: payload}
	ip := IPv4{TTL: 64, Protocol: ProtoUDP, Src: srcIP, Dst: dstIP, Payload: udp.Bytes(srcIP, dstIP)}
	return &Ethernet{Dst: dstMAC, Src: srcMAC, Type: EtherTypeIPv4, Payload: ip.Bytes()}
}

// NewTCPFrame builds a complete Ethernet/IPv4/TCP frame.
func NewTCPFrame(srcMAC, dstMAC MAC, srcIP, dstIP IP4, srcPort, dstPort uint16, flags uint8, seq uint32, payload []byte) *Ethernet {
	tcp := TCP{SrcPort: srcPort, DstPort: dstPort, Seq: seq, Flags: flags, Window: 65535, Payload: payload}
	ip := IPv4{TTL: 64, Protocol: ProtoTCP, Src: srcIP, Dst: dstIP, Payload: tcp.Bytes(srcIP, dstIP)}
	return &Ethernet{Dst: dstMAC, Src: srcMAC, Type: EtherTypeIPv4, Payload: ip.Bytes()}
}

// NewICMPEchoFrame builds an ICMP echo request or reply frame.
func NewICMPEchoFrame(srcMAC, dstMAC MAC, srcIP, dstIP IP4, typ uint8, id, seq uint16, payload []byte) *Ethernet {
	icmp := ICMP{Type: typ, ID: id, Seq: seq, Payload: payload}
	ip := IPv4{TTL: 64, Protocol: ProtoICMP, Src: srcIP, Dst: dstIP, Payload: icmp.Bytes()}
	return &Ethernet{Dst: dstMAC, Src: srcMAC, Type: EtherTypeIPv4, Payload: ip.Bytes()}
}

// The Append*Frame family serializes whole frames in a single pass into a
// caller-supplied buffer: no intermediate per-layer payload slices, so a
// reused scratch buffer gives allocation-free steady-state frame building.
// Output is byte-identical to the corresponding New*Frame(...).Bytes().

// appendEthernetHeader appends an untagged Ethernet II header.
func appendEthernetHeader(b []byte, dst, src MAC, typ EtherType) []byte {
	b = append(b, dst[:]...)
	b = append(b, src[:]...)
	return binary.BigEndian.AppendUint16(b, uint16(typ))
}

// appendIPv4Header appends an option-less IPv4 header (TTL 64, no
// fragmentation) with its checksum for a payload of payloadLen bytes.
func appendIPv4Header(b []byte, proto IPProto, src, dst IP4, payloadLen int) []byte {
	start := len(b)
	b = append(b, 4<<4|IPv4HeaderLen/4, 0) // version+IHL, TOS
	b = binary.BigEndian.AppendUint16(b, uint16(IPv4HeaderLen+payloadLen))
	b = append(b, 0, 0, 0, 0)            // ID, flags+fragment offset
	b = append(b, 64, byte(proto), 0, 0) // TTL, protocol, checksum placeholder
	b = append(b, src[:]...)
	b = append(b, dst[:]...)
	cs := Checksum(b[start:start+IPv4HeaderLen], 0)
	binary.BigEndian.PutUint16(b[start+10:start+12], cs)
	return b
}

// AppendUDPFrame appends a complete Ethernet/IPv4/UDP frame to b.
func AppendUDPFrame(b []byte, srcMAC, dstMAC MAC, srcIP, dstIP IP4, srcPort, dstPort uint16, payload []byte) []byte {
	length := UDPHeaderLen + len(payload)
	b = appendEthernetHeader(b, dstMAC, srcMAC, EtherTypeIPv4)
	b = appendIPv4Header(b, ProtoUDP, srcIP, dstIP, length)
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, srcPort)
	b = binary.BigEndian.AppendUint16(b, dstPort)
	b = binary.BigEndian.AppendUint16(b, uint16(length))
	b = append(b, 0, 0)
	b = append(b, payload...)
	cs := Checksum(b[start:], pseudoHeaderSum(srcIP, dstIP, ProtoUDP, length))
	if cs == 0 {
		cs = 0xffff
	}
	binary.BigEndian.PutUint16(b[start+6:start+8], cs)
	return b
}

// AppendTCPFrame appends a complete Ethernet/IPv4/TCP frame to b. Unlike
// NewTCPFrame it also takes the acknowledgement number, which the upstream
// simulator needs for SYN-ACKs and data acks; the window is fixed at 65535
// as everywhere else in the simulator.
func AppendTCPFrame(b []byte, srcMAC, dstMAC MAC, srcIP, dstIP IP4, srcPort, dstPort uint16, flags uint8, seq, ack uint32, payload []byte) []byte {
	length := TCPHeaderLen + len(payload)
	b = appendEthernetHeader(b, dstMAC, srcMAC, EtherTypeIPv4)
	b = appendIPv4Header(b, ProtoTCP, srcIP, dstIP, length)
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, srcPort)
	b = binary.BigEndian.AppendUint16(b, dstPort)
	b = binary.BigEndian.AppendUint32(b, seq)
	b = binary.BigEndian.AppendUint32(b, ack)
	b = append(b, byte(TCPHeaderLen/4)<<4, flags)
	b = binary.BigEndian.AppendUint16(b, 65535)
	b = append(b, 0, 0) // checksum placeholder
	b = append(b, 0, 0) // urgent pointer
	b = append(b, payload...)
	cs := Checksum(b[start:], pseudoHeaderSum(srcIP, dstIP, ProtoTCP, length))
	binary.BigEndian.PutUint16(b[start+16:start+18], cs)
	return b
}

// AppendICMPEchoFrame appends a complete ICMP echo request or reply frame
// to b.
func AppendICMPEchoFrame(b []byte, srcMAC, dstMAC MAC, srcIP, dstIP IP4, typ uint8, id, seq uint16, payload []byte) []byte {
	b = appendEthernetHeader(b, dstMAC, srcMAC, EtherTypeIPv4)
	b = appendIPv4Header(b, ProtoICMP, srcIP, dstIP, ICMPHeaderLen+len(payload))
	start := len(b)
	b = append(b, typ, 0, 0, 0)
	b = binary.BigEndian.AppendUint16(b, id)
	b = binary.BigEndian.AppendUint16(b, seq)
	b = append(b, payload...)
	cs := Checksum(b[start:], 0)
	binary.BigEndian.PutUint16(b[start+2:start+4], cs)
	return b
}
