package packet

// Decoded is a one-pass parse of a frame up to the transport layer, used by
// the datapath for flow matching and by the measurement plane for accounting.
// All byte-slice fields alias the original frame buffer.
type Decoded struct {
	Eth  Ethernet
	ARP  ARP
	IP   IPv4
	TCP  TCP
	UDP  UDP
	ICMP ICMP

	HasARP  bool
	HasIP   bool
	HasTCP  bool
	HasUDP  bool
	HasICMP bool
}

// Decode parses as many layers as the frame contains. Unknown payloads above
// a decoded layer are not an error: decoding stops at the last understood
// layer, mirroring gopacket's DecodingLayerParser behaviour.
func (d *Decoded) Decode(frame []byte) error {
	d.HasARP, d.HasIP, d.HasTCP, d.HasUDP, d.HasICMP = false, false, false, false, false
	if err := d.Eth.DecodeFromBytes(frame); err != nil {
		return err
	}
	switch d.Eth.Type {
	case EtherTypeARP:
		if err := d.ARP.DecodeFromBytes(d.Eth.Payload); err != nil {
			return err
		}
		d.HasARP = true
	case EtherTypeIPv4:
		if err := d.IP.DecodeFromBytes(d.Eth.Payload); err != nil {
			return err
		}
		d.HasIP = true
		switch d.IP.Protocol {
		case ProtoTCP:
			if err := d.TCP.DecodeFromBytes(d.IP.Payload); err != nil {
				return err
			}
			d.HasTCP = true
		case ProtoUDP:
			if err := d.UDP.DecodeFromBytes(d.IP.Payload); err != nil {
				return err
			}
			d.HasUDP = true
		case ProtoICMP:
			if err := d.ICMP.DecodeFromBytes(d.IP.Payload); err != nil {
				return err
			}
			d.HasICMP = true
		}
	}
	return nil
}

// FiveTuple returns the transport five-tuple of the decoded frame.
func (d *Decoded) FiveTuple() (FiveTuple, bool) {
	if !d.HasIP {
		return FiveTuple{}, false
	}
	ft := FiveTuple{Src: d.IP.Src, Dst: d.IP.Dst, Proto: d.IP.Protocol}
	switch {
	case d.HasTCP:
		ft.SrcPort, ft.DstPort = d.TCP.SrcPort, d.TCP.DstPort
	case d.HasUDP:
		ft.SrcPort, ft.DstPort = d.UDP.SrcPort, d.UDP.DstPort
	case d.HasICMP:
		ft.SrcPort, ft.DstPort = uint16(d.ICMP.Type), uint16(d.ICMP.Code)
	default:
		return FiveTuple{}, false
	}
	return ft, true
}

// NewUDPFrame builds a complete Ethernet/IPv4/UDP frame.
func NewUDPFrame(srcMAC, dstMAC MAC, srcIP, dstIP IP4, srcPort, dstPort uint16, payload []byte) *Ethernet {
	udp := UDP{SrcPort: srcPort, DstPort: dstPort, Payload: payload}
	ip := IPv4{TTL: 64, Protocol: ProtoUDP, Src: srcIP, Dst: dstIP, Payload: udp.Bytes(srcIP, dstIP)}
	return &Ethernet{Dst: dstMAC, Src: srcMAC, Type: EtherTypeIPv4, Payload: ip.Bytes()}
}

// NewTCPFrame builds a complete Ethernet/IPv4/TCP frame.
func NewTCPFrame(srcMAC, dstMAC MAC, srcIP, dstIP IP4, srcPort, dstPort uint16, flags uint8, seq uint32, payload []byte) *Ethernet {
	tcp := TCP{SrcPort: srcPort, DstPort: dstPort, Seq: seq, Flags: flags, Window: 65535, Payload: payload}
	ip := IPv4{TTL: 64, Protocol: ProtoTCP, Src: srcIP, Dst: dstIP, Payload: tcp.Bytes(srcIP, dstIP)}
	return &Ethernet{Dst: dstMAC, Src: srcMAC, Type: EtherTypeIPv4, Payload: ip.Bytes()}
}

// NewICMPEchoFrame builds an ICMP echo request or reply frame.
func NewICMPEchoFrame(srcMAC, dstMAC MAC, srcIP, dstIP IP4, typ uint8, id, seq uint16, payload []byte) *Ethernet {
	icmp := ICMP{Type: typ, ID: id, Seq: seq, Payload: payload}
	ip := IPv4{TTL: 64, Protocol: ProtoICMP, Src: srcIP, Dst: dstIP, Payload: icmp.Bytes()}
	return &Ethernet{Dst: dstMAC, Src: srcMAC, Type: EtherTypeIPv4, Payload: ip.Bytes()}
}
