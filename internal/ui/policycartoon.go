package ui

import (
	"fmt"
	"strings"

	"repro/internal/policy"
	"repro/internal/usbmon"
)

// PolicyCartoon is the Figure-4 interface: a cartoon of panels the user
// fills in ("who", "what", "when", "key") that compiles to a policy and is
// written onto a USB storage key; inserting the key at the router enacts
// it.
type PolicyCartoon struct {
	// Who are the governed devices, as "name=MAC" pairs for display.
	Who []CartoonDevice
	// What lists the permitted web-hosted services (DNS suffixes).
	What []string
	// WhenDays and WhenFrom/WhenUntil fill the schedule panel.
	WhenDays  []string
	WhenFrom  string
	WhenUntil string
	// KeyID names the physical key that mediates the policy.
	KeyID string
	// Name labels the policy.
	Name string
}

// CartoonDevice is one figure in the "who" panel.
type CartoonDevice struct {
	Label string
	MAC   string
}

// Compile turns the cartoon into the policy the router enforces.
func (c *PolicyCartoon) Compile() (*policy.Policy, error) {
	p := &policy.Policy{
		Name:         c.Name,
		AllowedSites: append([]string(nil), c.What...),
		Schedule: policy.Schedule{
			Days: append([]string(nil), c.WhenDays...),
			From: c.WhenFrom, Until: c.WhenUntil,
		},
		RequireKey: c.KeyID,
	}
	for _, d := range c.Who {
		p.Devices = append(p.Devices, d.MAC)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// WriteToUSB lays the compiled policy out on a key directory with the
// filesystem layout the udev monitor recognises.
func (c *PolicyCartoon) WriteToUSB(dir string) error {
	p, err := c.Compile()
	if err != nil {
		return err
	}
	return usbmon.WriteKey(dir, c.KeyID, p)
}

// Render draws the cartoon panels as text.
func (c *PolicyCartoon) Render() string {
	var sb strings.Builder
	sb.WriteString("+----------------- policy: " + c.Name + " -----------------+\n")
	panel := func(title string, lines []string) {
		fmt.Fprintf(&sb, "| %-8s |", title)
		if len(lines) == 0 {
			sb.WriteString(" (anything)")
		}
		sb.WriteString(" " + strings.Join(lines, ", ") + "\n")
	}
	var who []string
	for _, d := range c.Who {
		who = append(who, fmt.Sprintf("%s (%s)", d.Label, d.MAC))
	}
	panel("WHO", who)
	panel("WHAT", c.What)
	when := append([]string(nil), c.WhenDays...)
	if c.WhenFrom != "" || c.WhenUntil != "" {
		when = append(when, c.WhenFrom+"-"+c.WhenUntil)
	}
	panel("WHEN", when)
	panel("KEY", []string{c.KeyID})
	sb.WriteString("+" + strings.Repeat("-", 52) + "+\n")
	return sb.String()
}
