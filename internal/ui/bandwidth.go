// Package ui implements the four novel management interfaces the paper
// demonstrates, as display models fed from the platform's measurement and
// control APIs: the per-device per-protocol bandwidth view (Figure 1), the
// physical network artifact with its three LED modes (Figure 2), the
// situated DHCP control interface (Figure 3) and the USB-mediated cartoon
// policy interface (Figure 4). Each model renders to text so examples,
// tests and the figures harness can show exactly what the paper's screens
// showed.
//
// Concurrency: display models hold no locks of their own — each Render
// runs on its caller's goroutine over hwdb query results and module
// snapshots that are internally consistent. Share a model across
// goroutines only if the callers serialize.
package ui

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/hwdb"
	"repro/internal/packet"
)

// BandwidthRow is one line of the Figure-1 display.
type BandwidthRow struct {
	Device   string // hostname if known, else MAC
	MAC      packet.MAC
	Service  string // protocol label ("http", "dns", ...)
	Bytes    uint64
	BytesPer float64 // bytes/second over the window
}

// BandwidthView computes the per-device per-protocol bandwidth consumption
// the iPhone interface displays, from the hwdb Flows and Leases tables.
type BandwidthView struct {
	DB *hwdb.DB
	// Window is the temporal window shown (default 10 seconds).
	Window time.Duration
}

// NewBandwidthView builds a view over db.
func NewBandwidthView(db *hwdb.DB) *BandwidthView {
	return &BandwidthView{DB: db, Window: 10 * time.Second}
}

// hostnames maps MAC -> latest hostname from the Leases table.
func (v *BandwidthView) hostnames() map[packet.MAC]string {
	out := make(map[packet.MAC]string)
	res, err := v.DB.Query("SELECT mac, hostname, action FROM Leases")
	if err != nil {
		return out
	}
	for _, row := range res.Rows {
		if row[2].Str == "add" && row[1].Str != "" {
			out[row[0].MAC()] = row[1].Str
		}
	}
	return out
}

// Rows computes the current display rows, most-consuming device first (the
// left-hand side of Figure 5's screenshot), each device's services sorted
// by volume (its right-hand side).
func (v *BandwidthView) Rows() ([]BandwidthRow, error) {
	window := v.Window
	if window <= 0 {
		window = 10 * time.Second
	}
	secs := window.Seconds()
	q := fmt.Sprintf(
		"SELECT mac, proto, dport, sport, sum(bytes) AS bytes FROM Flows [RANGE %g SECONDS] GROUP BY mac, proto, dport, sport",
		secs)
	res, err := v.DB.Query(q)
	if err != nil {
		return nil, err
	}
	names := v.hostnames()

	type key struct {
		mac     packet.MAC
		service string
	}
	agg := make(map[key]uint64)
	for _, row := range res.Rows {
		mac := row[0].MAC()
		proto := packet.IPProto(row[1].Int)
		dport := uint16(row[2].Int)
		sport := uint16(row[3].Int)
		// The service is identified by whichever side is well-known (the
		// paper's "imperfect application-protocol mapping").
		svc := packet.WellKnownService(proto, dport)
		if svc == "other" {
			svc = packet.WellKnownService(proto, sport)
		}
		agg[key{mac, svc}] += uint64(row[4].AsFloat())
	}

	rows := make([]BandwidthRow, 0, len(agg))
	for k, bytes := range agg {
		name := names[k.mac]
		if name == "" {
			name = k.mac.String()
		}
		rows = append(rows, BandwidthRow{
			Device: name, MAC: k.mac, Service: k.service,
			Bytes: bytes, BytesPer: float64(bytes) / secs,
		})
	}
	// Order: devices by total desc, then services by bytes desc.
	totals := make(map[packet.MAC]uint64)
	for _, r := range rows {
		totals[r.MAC] += r.Bytes
	}
	sort.Slice(rows, func(i, j int) bool {
		ti, tj := totals[rows[i].MAC], totals[rows[j].MAC]
		if ti != tj {
			return ti > tj
		}
		if rows[i].MAC != rows[j].MAC {
			return rows[i].MAC.String() < rows[j].MAC.String()
		}
		return rows[i].Bytes > rows[j].Bytes
	})
	return rows, nil
}

// Render draws the display as text: one block per device with its protocol
// breakdown, mirroring Figure 1.
func (v *BandwidthView) Render() (string, error) {
	rows, err := v.Rows()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Per-device bandwidth (last %s)\n", v.Window)
	sb.WriteString(strings.Repeat("-", 46))
	sb.WriteByte('\n')
	if len(rows) == 0 {
		sb.WriteString("(no traffic)\n")
		return sb.String(), nil
	}
	current := ""
	var devTotal uint64
	flush := func() {
		if current != "" {
			fmt.Fprintf(&sb, "  %-34s %9s\n", "total", humanRate(float64(devTotal)/v.Window.Seconds()))
		}
	}
	for _, r := range rows {
		if r.Device != current {
			flush()
			current = r.Device
			devTotal = 0
			fmt.Fprintf(&sb, "%s\n", r.Device)
		}
		devTotal += r.Bytes
		fmt.Fprintf(&sb, "  %-34s %9s\n", r.Service, humanRate(r.BytesPer))
	}
	flush()
	return sb.String(), nil
}

// humanRate formats bytes/second.
func humanRate(bps float64) string {
	switch {
	case bps >= 1e6:
		return fmt.Sprintf("%.1fMB/s", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.1fkB/s", bps/1e3)
	default:
		return fmt.Sprintf("%.0fB/s", bps)
	}
}
