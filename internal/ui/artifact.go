package ui

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/hwdb"
	"repro/internal/packet"
)

// ArtifactMode selects one of the physical artifact's three behaviours.
type ArtifactMode uint8

// The artifact's modes, exactly as the paper lists them.
const (
	// ModeSignal maps wireless signal strength from the artifact to the
	// hub onto the number of lit LEDs, so carrying the artifact around
	// exposes areas of high and low signal strength in the home.
	ModeSignal ArtifactMode = 1
	// ModeBandwidth maps current total bandwidth, as a proportion of the
	// peak observed in the last day, onto the speed of the LED animation.
	ModeBandwidth ArtifactMode = 2
	// ModeDHCP signals lease grants with green flashes and revocations
	// with blue, and high packet-retry proportions with red flashes.
	ModeDHCP ArtifactMode = 3
)

// LED is one RGB LED's displayed colour.
type LED byte

// LED colours used by the three modes.
const (
	LEDOff   LED = '.'
	LEDWhite LED = 'W'
	LEDGreen LED = 'G'
	LEDBlue  LED = 'B'
	LEDRed   LED = 'R'
)

// Artifact models the Arduino-based network artifact: a strip of RGB LEDs
// driven from hwdb subscriptions.
type Artifact struct {
	DB *hwdb.DB
	// MAC identifies the artifact itself on the wireless network (mode 1
	// shows the artifact's own RSSI as it is carried around).
	MAC packet.MAC
	// NumLEDs is the strip length (default 8).
	NumLEDs int
	// RetryFlashThreshold is the retries-per-sample level that triggers
	// red flashes in mode 3 (default 3).
	RetryFlashThreshold int

	mu        sync.Mutex
	mode      ArtifactMode
	phase     float64 // animation position, LEDs
	peak      float64 // peak bandwidth seen (bytes/s)
	flash     LED     // pending flash colour for mode 3
	flashLeft int     // remaining flash frames
}

// NewArtifact builds an artifact display. Register its DHCP interest with
// WatchLeases to animate mode 3 from lease events.
func NewArtifact(db *hwdb.DB, mac packet.MAC) *Artifact {
	return &Artifact{DB: db, MAC: mac, NumLEDs: 8, RetryFlashThreshold: 3, mode: ModeSignal}
}

// SetMode switches the artifact's behaviour.
func (a *Artifact) SetMode(m ArtifactMode) {
	a.mu.Lock()
	a.mode = m
	a.mu.Unlock()
}

// Mode returns the current mode.
func (a *Artifact) Mode() ArtifactMode {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.mode
}

// WatchLeases subscribes to lease events so mode 3 flashes on grants and
// revocations. Call once after construction.
func (a *Artifact) WatchLeases() {
	tbl, ok := a.DB.Table(hwdb.TableLeases)
	if !ok {
		return
	}
	schema := tbl.Schema()
	actionIdx, _ := schema.Index("action")
	tbl.OnInsert(func(r hwdb.Row) {
		a.mu.Lock()
		defer a.mu.Unlock()
		switch r.Vals[actionIdx].Str {
		case "add":
			a.flash, a.flashLeft = LEDGreen, 3
		case "del":
			a.flash, a.flashLeft = LEDBlue, 3
		}
	})
}

// rssi reads the artifact's latest signal strength from Links.
func (a *Artifact) rssi() (int, bool) {
	q := fmt.Sprintf("SELECT rssi FROM Links [ROWS 200] WHERE mac = %s ORDER BY rssi LIMIT 200", a.MAC)
	res, err := a.DB.Query(q)
	if err != nil || len(res.Rows) == 0 {
		return 0, false
	}
	// Use the most recent sample: rows come ordered by rssi from the
	// query above, so re-query narrowly for the latest.
	res, err = a.DB.Query(fmt.Sprintf("SELECT rssi FROM Links WHERE mac = %s", a.MAC))
	if err != nil || len(res.Rows) == 0 {
		return 0, false
	}
	return int(res.Rows[len(res.Rows)-1][0].Int), true
}

// totalBandwidth sums Flows bytes over the last second-ish window.
func (a *Artifact) totalBandwidth() float64 {
	res, err := a.DB.Query("SELECT sum(bytes) AS b FROM Flows [RANGE 2 SECONDS]")
	if err != nil || len(res.Rows) == 0 {
		return 0
	}
	return res.Rows[0][0].AsFloat() / 2
}

// retryRate reads the recent average retry count per link sample.
func (a *Artifact) retryRate() float64 {
	res, err := a.DB.Query("SELECT avg(retries) AS r FROM Links [ROWS 20]")
	if err != nil || len(res.Rows) == 0 {
		return 0
	}
	return res.Rows[0][0].AsFloat()
}

// SignalLEDs maps an RSSI reading onto a number of lit LEDs: full strip at
// -40 dBm and above, none at -90 and below.
func (a *Artifact) SignalLEDs(rssi int) int {
	n := a.NumLEDs
	frac := (float64(rssi) + 90) / 50 // -90..-40 -> 0..1
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return int(frac*float64(n) + 0.5)
}

// Step advances the artifact by dt and returns the LED frame.
func (a *Artifact) Step(dt time.Duration) []LED {
	a.mu.Lock()
	mode := a.mode
	a.mu.Unlock()

	leds := make([]LED, a.NumLEDs)
	for i := range leds {
		leds[i] = LEDOff
	}
	switch mode {
	case ModeSignal:
		lit := 0
		if rssi, ok := a.rssi(); ok {
			lit = a.SignalLEDs(rssi)
		}
		for i := 0; i < lit && i < len(leds); i++ {
			leds[i] = LEDWhite
		}
	case ModeBandwidth:
		bw := a.totalBandwidth()
		a.mu.Lock()
		if bw > a.peak {
			a.peak = bw
		}
		frac := 0.0
		if a.peak > 0 {
			frac = bw / a.peak
		}
		// Lights move faster across the face as more bandwidth is used:
		// 0.5..8 LEDs/second.
		speed := 0.5 + 7.5*frac
		a.phase += speed * dt.Seconds()
		pos := int(a.phase) % a.NumLEDs
		a.mu.Unlock()
		leds[pos] = LEDWhite
	case ModeDHCP:
		a.mu.Lock()
		flash, left := a.flash, a.flashLeft
		if a.flashLeft > 0 {
			a.flashLeft--
		}
		a.mu.Unlock()
		if left > 0 {
			for i := range leds {
				leds[i] = flash
			}
			break
		}
		if a.retryRate() >= float64(a.RetryFlashThreshold) {
			for i := range leds {
				leds[i] = LEDRed
			}
		}
	}
	return leds
}

// AnimationSpeed reports the current LEDs-per-second speed of mode 2 (for
// the figures harness).
func (a *Artifact) AnimationSpeed() float64 {
	bw := a.totalBandwidth()
	a.mu.Lock()
	defer a.mu.Unlock()
	if bw > a.peak {
		a.peak = bw
	}
	frac := 0.0
	if a.peak > 0 {
		frac = bw / a.peak
	}
	return 0.5 + 7.5*frac
}

// RenderFrame draws one frame as text, e.g. "[WWWW....]".
func RenderFrame(leds []LED) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for _, l := range leds {
		sb.WriteByte(byte(l))
	}
	sb.WriteByte(']')
	return sb.String()
}
