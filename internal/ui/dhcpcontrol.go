package ui

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// DHCPControl is the situated control display of Figure 3: it lists the
// devices the DHCP server knows in three categories, lets the user attach
// metadata, and implements the drag gesture as permit/deny calls against
// the control API — exactly how the paper's interface exercises control.
type DHCPControl struct {
	// BaseURL is the control API root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client is the HTTP client (http.DefaultClient if nil).
	Client *http.Client
}

// NewDHCPControl builds a control display talking to the API at baseURL.
func NewDHCPControl(baseURL string) *DHCPControl {
	return &DHCPControl{BaseURL: strings.TrimSuffix(baseURL, "/")}
}

func (c *DHCPControl) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

// DeviceTab is one device tab on the display.
type DeviceTab struct {
	MAC      string `json:"mac"`
	Hostname string `json:"hostname"`
	Metadata string `json:"metadata"`
	State    string `json:"state"`
	IP       string `json:"ip"`
}

// Devices fetches the current device tabs.
func (c *DHCPControl) Devices() ([]DeviceTab, error) {
	resp, err := c.client().Get(c.BaseURL + "/api/devices")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("ui: control API status %s", resp.Status)
	}
	var tabs []DeviceTab
	if err := json.NewDecoder(resp.Body).Decode(&tabs); err != nil {
		return nil, err
	}
	return tabs, nil
}

// DragTo implements the drag gesture: moving a device's tab into the
// "permitted" or "denied" category.
func (c *DHCPControl) DragTo(mac, category string) error {
	switch category {
	case "permitted":
		return c.post("/api/devices/" + mac + "/permit")
	case "denied":
		return c.post("/api/devices/" + mac + "/deny")
	}
	return fmt.Errorf("ui: unknown category %q", category)
}

// Annotate attaches user-supplied metadata to a device.
func (c *DHCPControl) Annotate(mac, note string) error {
	resp, err := c.client().Post(
		c.BaseURL+"/api/devices/"+mac+"/annotate", "text/plain",
		bytes.NewBufferString(note))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ui: control API status %s", resp.Status)
	}
	return nil
}

func (c *DHCPControl) post(path string) error {
	resp, err := c.client().Post(c.BaseURL+path, "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ui: control API status %s", resp.Status)
	}
	return nil
}

// Render draws the three-category display.
func (c *DHCPControl) Render() (string, error) {
	tabs, err := c.Devices()
	if err != nil {
		return "", err
	}
	cats := map[string][]DeviceTab{}
	for _, t := range tabs {
		cats[t.State] = append(cats[t.State], t)
	}
	var sb strings.Builder
	sb.WriteString("DHCP control\n")
	for _, cat := range []string{"pending", "permitted", "denied"} {
		fmt.Fprintf(&sb, "== %s ==\n", cat)
		list := cats[cat]
		sort.Slice(list, func(i, j int) bool { return list[i].MAC < list[j].MAC })
		if len(list) == 0 {
			sb.WriteString("  (none)\n")
			continue
		}
		for _, t := range list {
			name := t.Hostname
			if name == "" {
				name = "?"
			}
			line := fmt.Sprintf("  [%s] %s", t.MAC, name)
			if t.IP != "" {
				line += " " + t.IP
			}
			if t.Metadata != "" {
				line += " — " + t.Metadata
			}
			sb.WriteString(line + "\n")
		}
	}
	return sb.String(), nil
}
