package ui

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/controlapi"
	"repro/internal/dhcp"
	"repro/internal/hwdb"
	"repro/internal/packet"
	"repro/internal/policy"
)

var (
	laptopMAC = packet.MustMAC("02:aa:00:00:00:01")
	phoneMAC  = packet.MustMAC("02:aa:00:00:00:02")
)

func seededDB(clk clock.Clock) *hwdb.DB {
	db := hwdb.NewHomework(clk, 4096)
	_ = db.InsertLease("add", laptopMAC, packet.MustIP4("192.168.1.10"), "toms-mac-air")
	_ = db.InsertLease("add", phoneMAC, packet.MustIP4("192.168.1.11"), "kids-phone")
	web := packet.FiveTuple{
		Src: packet.MustIP4("192.168.1.10"), Dst: packet.MustIP4("93.184.216.34"),
		Proto: packet.ProtoTCP, SrcPort: 50000, DstPort: 80,
	}
	video := packet.FiveTuple{
		Src: packet.MustIP4("192.168.1.10"), Dst: packet.MustIP4("142.250.180.14"),
		Proto: packet.ProtoTCP, SrcPort: 50001, DstPort: 443,
	}
	dns := packet.FiveTuple{
		Src: packet.MustIP4("192.168.1.11"), Dst: packet.MustIP4("192.168.1.1"),
		Proto: packet.ProtoUDP, SrcPort: 5353, DstPort: 53,
	}
	_ = db.InsertFlow(laptopMAC, web, 10, 50_000)
	_ = db.InsertFlow(laptopMAC, video, 100, 400_000)
	_ = db.InsertFlow(phoneMAC, dns, 2, 300)
	// Response direction: service identified by the source port.
	webBack := web.Reverse()
	_ = db.InsertFlow(laptopMAC, webBack, 20, 150_000)
	return db
}

func TestBandwidthRows(t *testing.T) {
	clk := clock.NewSimulated()
	db := seededDB(clk)
	v := NewBandwidthView(db)
	rows, err := v.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// The laptop dominates and appears first, with https (video) as its
	// top service.
	if rows[0].Device != "toms-mac-air" {
		t.Errorf("top device = %q", rows[0].Device)
	}
	if rows[0].Service != "https" {
		t.Errorf("top service = %q", rows[0].Service)
	}
	// Both directions of the web flow aggregate under "http".
	var httpBytes uint64
	for _, r := range rows {
		if r.Service == "http" && r.MAC == laptopMAC {
			httpBytes = r.Bytes
		}
	}
	if httpBytes != 200_000 {
		t.Errorf("http bytes = %d, want 200000 (both directions)", httpBytes)
	}
}

func TestBandwidthRenderAndWindow(t *testing.T) {
	clk := clock.NewSimulated()
	db := seededDB(clk)
	v := NewBandwidthView(db)
	out, err := v.Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"toms-mac-air", "kids-phone", "https", "dns", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Old traffic falls out of the window.
	clk.Advance(time.Minute)
	v.Window = 5 * time.Second
	out, err = v.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(no traffic)") {
		t.Errorf("stale traffic still shown:\n%s", out)
	}
}

func TestArtifactSignalMode(t *testing.T) {
	clk := clock.NewSimulated()
	db := hwdb.NewHomework(clk, 1024)
	a := NewArtifact(db, phoneMAC)
	if a.Mode() != ModeSignal {
		t.Fatal("default mode not signal")
	}

	_ = db.InsertLink(phoneMAC, -45, 0, 54)
	frame := a.Step(100 * time.Millisecond)
	litStrong := countLit(frame)

	_ = db.InsertLink(phoneMAC, -85, 3, 9)
	frame = a.Step(100 * time.Millisecond)
	litWeak := countLit(frame)

	if litStrong <= litWeak {
		t.Errorf("lit strong=%d weak=%d", litStrong, litWeak)
	}
	if litStrong != a.SignalLEDs(-45) {
		t.Errorf("frame does not match SignalLEDs: %d vs %d", litStrong, a.SignalLEDs(-45))
	}
}

func TestArtifactSignalLEDMapping(t *testing.T) {
	a := NewArtifact(hwdb.NewHomework(clock.NewSimulated(), 64), phoneMAC)
	if a.SignalLEDs(-30) != a.NumLEDs {
		t.Error("strong signal should light the whole strip")
	}
	if a.SignalLEDs(-95) != 0 {
		t.Error("no signal should light nothing")
	}
	prev := a.NumLEDs + 1
	for rssi := -40; rssi >= -90; rssi -= 10 {
		n := a.SignalLEDs(rssi)
		if n > prev {
			t.Errorf("SignalLEDs(%d) = %d not monotone", rssi, n)
		}
		prev = n
	}
}

func TestArtifactBandwidthModeSpeeds(t *testing.T) {
	clk := clock.NewSimulated()
	db := hwdb.NewHomework(clk, 4096)
	a := NewArtifact(db, phoneMAC)
	a.SetMode(ModeBandwidth)

	ft := packet.FiveTuple{Proto: packet.ProtoTCP, DstPort: 443}
	// Establish a peak.
	_ = db.InsertFlow(laptopMAC, ft, 100, 1_000_000)
	fast := a.AnimationSpeed()
	clk.Advance(3 * time.Second) // flows age out of the 2s window
	slow := a.AnimationSpeed()
	if fast <= slow {
		t.Errorf("speed fast=%g slow=%g", fast, slow)
	}
	// The animation position advances.
	f1 := a.Step(100 * time.Millisecond)
	_ = f1
	var moved bool
	pos1 := litIndex(a.Step(0))
	a.phase += 1.0
	if litIndex(a.Step(0)) != pos1 {
		moved = true
	}
	if !moved {
		t.Error("animation does not move")
	}
}

func TestArtifactDHCPMode(t *testing.T) {
	clk := clock.NewSimulated()
	db := hwdb.NewHomework(clk, 1024)
	a := NewArtifact(db, phoneMAC)
	a.SetMode(ModeDHCP)
	a.WatchLeases()

	// A lease grant flashes green.
	_ = db.InsertLease("add", laptopMAC, packet.MustIP4("192.168.1.10"), "laptop")
	frame := a.Step(100 * time.Millisecond)
	if frame[0] != LEDGreen {
		t.Errorf("grant frame = %s", RenderFrame(frame))
	}
	// Flashes decay after a few frames.
	for i := 0; i < 4; i++ {
		frame = a.Step(100 * time.Millisecond)
	}
	if frame[0] == LEDGreen {
		t.Error("flash never decays")
	}
	// A revocation flashes blue.
	_ = db.InsertLease("del", laptopMAC, packet.MustIP4("192.168.1.10"), "laptop")
	frame = a.Step(100 * time.Millisecond)
	if frame[0] != LEDBlue {
		t.Errorf("revoke frame = %s", RenderFrame(frame))
	}
	// High retry rates flash red.
	for i := 0; i < 4; i++ {
		a.Step(100 * time.Millisecond)
	}
	for i := 0; i < 25; i++ {
		_ = db.InsertLink(phoneMAC, -80, 6, 9)
	}
	frame = a.Step(100 * time.Millisecond)
	if frame[0] != LEDRed {
		t.Errorf("retry frame = %s", RenderFrame(frame))
	}
}

func TestRenderFrame(t *testing.T) {
	s := RenderFrame([]LED{LEDWhite, LEDOff, LEDRed})
	if s != "[W.R]" {
		t.Errorf("RenderFrame = %q", s)
	}
}

func countLit(leds []LED) int {
	n := 0
	for _, l := range leds {
		if l != LEDOff {
			n++
		}
	}
	return n
}

func litIndex(leds []LED) int {
	for i, l := range leds {
		if l != LEDOff {
			return i
		}
	}
	return -1
}

func TestDHCPControlAgainstAPI(t *testing.T) {
	clk := clock.NewSimulated()
	srv := dhcp.NewServer(dhcp.Config{
		ServerIP:  packet.MustIP4("192.168.1.1"),
		ServerMAC: packet.MustMAC("02:01:00:00:00:01"),
		PoolStart: packet.MustIP4("192.168.1.10"),
		PoolEnd:   packet.MustIP4("192.168.1.250"),
		Clock:     clk,
	})
	eng := policy.NewEngine(clk)
	api := controlapi.New(srv, eng, packet.MustIP4("192.168.1.1"))
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	// Two devices show up pending.
	srv.Annotate(laptopMAC, "")
	srv.Annotate(phoneMAC, "")

	ctl := NewDHCPControl(ts.URL)
	tabs, err := ctl.Devices()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 || tabs[0].State != "pending" {
		t.Fatalf("tabs = %+v", tabs)
	}

	// Drag one to permitted, one to denied; annotate the first.
	if err := ctl.DragTo(laptopMAC.String(), "permitted"); err != nil {
		t.Fatal(err)
	}
	if err := ctl.DragTo(phoneMAC.String(), "denied"); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Annotate(laptopMAC.String(), "Tom's laptop"); err != nil {
		t.Fatal(err)
	}
	if err := ctl.DragTo(laptopMAC.String(), "sideways"); err == nil {
		t.Error("bogus category accepted")
	}

	out, err := ctl.Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"== pending ==", "== permitted ==", "== denied ==", "Tom's laptop"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	d1, _ := srv.Lookup(laptopMAC)
	d2, _ := srv.Lookup(phoneMAC)
	if d1.State != dhcp.Permitted || d2.State != dhcp.Denied {
		t.Errorf("states = %v, %v", d1.State, d2.State)
	}
}

func TestPolicyCartoonCompileAndRender(t *testing.T) {
	c := &PolicyCartoon{
		Name: "kids-facebook",
		Who:  []CartoonDevice{{Label: "kids tablet", MAC: phoneMAC.String()}},
		What: []string{"facebook.com"},
		WhenDays: []string{
			"monday", "tuesday", "wednesday", "thursday", "friday",
		},
		WhenFrom: "16:00", WhenUntil: "20:00",
		KeyID: "parent-key",
	}
	p, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if p.RequireKey != "parent-key" || len(p.Devices) != 1 {
		t.Errorf("policy = %+v", p)
	}
	out := c.Render()
	for _, want := range []string{"WHO", "WHAT", "WHEN", "KEY", "facebook.com", "parent-key"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Writing to USB produces the key layout.
	dir := t.TempDir() + "/usb0"
	if err := c.WriteToUSB(dir); err != nil {
		t.Fatal(err)
	}

	bad := &PolicyCartoon{Name: "x"}
	if _, err := bad.Compile(); err == nil {
		t.Error("empty cartoon compiled")
	}
}
